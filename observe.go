package mobilenet

import (
	"fmt"
	"io"

	"mobilenet/internal/obs"
	"mobilenet/internal/scenario"
)

// Observation requests per-step time-series observables from a simulation:
// which series to record, how often, and an optional point cap. It is the
// public mirror of a scenario's `observe` block and marshals to the same
// JSON. Unlike execution-only knobs, an observation changes the result
// payload, so it is part of the scenario content hash: two scenarios that
// differ only in their observation are different simulations.
type Observation struct {
	// Observables names the series to record; see ObservableNames for the
	// vocabulary ("informed", "components", "largest_component",
	// "coverage", "meeting"). Engines record the subset they can produce.
	Observables []string `json:"observables"`
	// Every is the sampling cadence: record steps t with t % Every == 0
	// (t=0 always included). Zero selects every step.
	Every int `json:"every,omitempty"`
	// MaxPoints caps the recorded points per replicate: when a new sample
	// would exceed it, every other retained sample is dropped and the
	// stride doubles, so runs of any length fit at uniform resolution.
	// Zero means uncapped; positive values must be even and at least 2.
	MaxPoints int `json:"max_points,omitempty"`
}

// spec converts the public Observation to the internal observe block.
func (o Observation) spec() *obs.Spec {
	return &obs.Spec{Observables: o.Observables, Every: o.Every, MaxPoints: o.MaxPoints}
}

// fromObsSpec mirrors an internal observe block back to the public type.
func fromObsSpec(s *obs.Spec) *Observation {
	if s == nil {
		return nil
	}
	return &Observation{Observables: s.Observables, Every: s.Every, MaxPoints: s.MaxPoints}
}

// ObservableNames returns every defined observable name, sorted.
func ObservableNames() []string { return obs.Names() }

// EngineObservables returns the observables the named engine can record,
// sorted; nil for unknown engines.
func EngineObservables(engine string) []string { return scenario.Observables(engine) }

// WithObservations makes every simulation the Network runs record the
// requested per-step series; the engine-specific subset of the observables
// is recorded (e.g. Broadcast fills "informed" and the component series,
// CoverTime fills "coverage") and returned in the result's Series field.
// Observation costs no per-step allocation.
func WithObservations(o Observation) Option {
	return func(opt *options) error {
		if err := o.spec().Validate(); err != nil {
			return fmt.Errorf("mobilenet: %w", err)
		}
		opt.observe = o.spec()
		return nil
	}
}

// RepSeries is one replicate's recorded time series: the sampled steps
// and, per observable, the values at those steps (parallel to Steps).
type RepSeries struct {
	// Steps lists the sampled step indices, ascending.
	Steps []int `json:"steps"`
	// Values holds one value series per recorded observable.
	Values map[string][]float64 `json:"values"`
}

// fromSeriesSet mirrors an internal series set to the public type.
func fromSeriesSet(s *obs.SeriesSet) *RepSeries {
	if s == nil {
		return nil
	}
	return &RepSeries{Steps: s.Steps, Values: s.Values}
}

// Series is one observable's aggregate across a scenario's replicates: at
// every step sampled by at least one replicate, the across-replicate mean
// and Student-t 95% confidence interval. The arrays are parallel.
type Series struct {
	// Name is the observable.
	Name string `json:"name"`
	// Steps lists the aggregated step indices, ascending.
	Steps []int `json:"steps"`
	// N counts the replicates contributing at each step.
	N []int `json:"n"`
	// Mean is the across-replicate mean at each step.
	Mean []float64 `json:"mean"`
	// CILow and CIHigh bound the Student-t 95% confidence interval of the
	// mean at each step.
	CILow  []float64 `json:"ci95_low"`
	CIHigh []float64 `json:"ci95_high"`
}

// fromAggSeries mirrors internal aggregates to the public type.
func fromAggSeries(in []obs.AggSeries) []Series {
	if in == nil {
		return nil
	}
	out := make([]Series, len(in))
	for i, s := range in {
		out[i] = Series{Name: s.Name, Steps: s.Steps, N: s.N,
			Mean: s.Mean, CILow: s.CILow, CIHigh: s.CIHigh}
	}
	return out
}

// toAggSeries converts public aggregates back to the internal type (the
// NDJSON renderer's input).
func toAggSeries(in []Series) []obs.AggSeries {
	out := make([]obs.AggSeries, len(in))
	for i, s := range in {
		out[i] = obs.AggSeries{Name: s.Name, Steps: s.Steps, N: s.N,
			Mean: s.Mean, CILow: s.CILow, CIHigh: s.CIHigh}
	}
	return out
}

// WriteSeriesNDJSON streams the result's aggregated series as
// newline-delimited JSON, one object per (observable, step) sample. This
// is the canonical series wire encoding: `mobisim -series-out -` and the
// mobiserved GET /v1/results/{hash}/series endpoint emit exactly these
// bytes for the same scenario.
func (r *ScenarioResult) WriteSeriesNDJSON(w io.Writer) error {
	return obs.WriteNDJSON(w, toAggSeries(r.Series))
}

// WriteSeriesCSV renders the aggregated series as a rectangular CSV table
// — one row per (observable, step) sample — the form `mobisim -series-out
// file.csv` exports.
func (r *ScenarioResult) WriteSeriesCSV(w io.Writer) error {
	return obs.Table(toAggSeries(r.Series)).WriteCSV(w)
}

// WriteSeriesTableJSON renders the aggregated series as the tabular JSON
// object ({columns, rows}, cells as rendered strings) the CSV form mirrors
// — the `mobisim -series-out file.json` export.
func (r *ScenarioResult) WriteSeriesTableJSON(w io.Writer) error {
	return obs.Table(toAggSeries(r.Series)).WriteJSON(w)
}

// recorder builds the Network's observation recorder for one engine, or
// nil when no observation was requested or the engine records none of the
// requested observables.
func (nw *Network) recorder(engine string) *obs.Recorder {
	if nw.opt.observe == nil {
		return nil
	}
	vocab := map[string]bool{}
	for _, n := range scenario.Observables(engine) {
		vocab[n] = true
	}
	spec, ok, err := nw.opt.observe.Canonical(func(n string) bool { return vocab[n] })
	if err != nil || !ok {
		// Validation ran in WithObservations; an empty filter result just
		// means this engine records nothing.
		return nil
	}
	return obs.NewRecorder(spec)
}
