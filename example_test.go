package mobilenet_test

import (
	"fmt"
	"log"

	"mobilenet"
)

// The smallest complete use of the library: build a sparse network,
// broadcast a rumor, compare with the paper's scale.
func ExampleNew() {
	net, err := mobilenet.New(64*64, 16, mobilenet.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nodes=%d agents=%d r_c=%.0f subcritical=%v\n",
		net.Nodes(), net.Agents(), net.PercolationRadius(), net.Subcritical())
	// Output:
	// nodes=4096 agents=16 r_c=16 subcritical=true
}

// Broadcast returns the dissemination time T_B; with a fixed seed the run
// is fully reproducible.
func ExampleNetwork_Broadcast() {
	net, err := mobilenet.New(16*16, 8, mobilenet.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	res, err := net.Broadcast()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed=%v informed=%d/%d\n",
		res.Completed, res.InformedCurve[len(res.InformedCurve)-1], net.Agents())
	// Output:
	// completed=true informed=8/8
}

// Gossip measures the all-to-all time T_G (Corollary 2 of the paper).
func ExampleNetwork_Gossip() {
	net, err := mobilenet.New(12*12, 6, mobilenet.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	res, err := net.Gossip()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed=%v\n", res.Completed)
	// Output:
	// completed=true
}

// Census inspects the static component structure of the visibility graph —
// the percolation picture behind the paper's sparse/supercritical split.
func ExampleNetwork_Census() {
	net, err := mobilenet.New(32*32, 64, mobilenet.WithSeed(23))
	if err != nil {
		log.Fatal(err)
	}
	// At a grid-spanning radius everyone is one component.
	c, err := net.Census(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components=%d giant=%.0f%%\n", c.Components, 100*c.GiantFraction)
	// Output:
	// components=1 giant=100%
}

// BroadcastWithObstacles exercises the §4 future-work extension: mobility
// barriers that block movement but not radio.
func ExampleNetwork_BroadcastWithObstacles() {
	net, err := mobilenet.New(24*24, 12, mobilenet.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	res, err := net.BroadcastWithObstacles(mobilenet.Obstacles{WallColumn: 12, WallGap: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed=%v\n", res.Completed)
	// Output:
	// completed=true
}

// RunSweep measures a whole parameter grid — here the paper's headline
// k-dependence at tiny scale — as one declarative object. The same JSON
// drives `mobisim -sweep` and the mobiserved POST /v1/sweeps endpoint,
// with byte-identical per-point results.
func ExampleRunSweep() {
	sw, err := mobilenet.ParseSweep([]byte(`{
	  "base": {"engine": "broadcast", "nodes": 1024, "agents": 4, "seed": 7, "reps": 2},
	  "axes": [{"field": "agents", "values": [4, 8, 16]}],
	  "fit": "agents"
	}`))
	if err != nil {
		log.Fatal(err)
	}
	res, err := mobilenet.RunSweep(sw)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range res.Points {
		fmt.Printf("k=%v median T_B=%.0f\n", pt.Values[0], pt.Steps.Median)
	}
	fmt.Printf("fit: T_B ~ k^%.1f\n", res.Fit.Alpha)
	// Output:
	// k=4 median T_B=3448
	// k=8 median T_B=2074
	// k=16 median T_B=1467
	// fit: T_B ~ k^-0.6
}
