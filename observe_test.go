package mobilenet

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mobilenet/internal/scenario"
)

func TestWithObservationsBroadcast(t *testing.T) {
	t.Parallel()
	nw, err := New(256, 16, WithRadius(1), WithSeed(3),
		WithObservations(Observation{Observables: []string{"informed", "coverage"}, Every: 2}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("broadcast did not complete")
	}
	if res.Series == nil {
		t.Fatal("no series recorded under WithObservations")
	}
	informed := res.Series.Values["informed"]
	if len(informed) == 0 || informed[len(informed)-1] != 16 {
		t.Errorf("informed series %v does not end at k", informed)
	}
	for _, st := range res.Series.Steps {
		if st%2 != 0 {
			t.Errorf("cadence 2 recorded odd step %d", st)
		}
	}
	if len(res.Series.Values["coverage"]) != len(res.Series.Steps) {
		t.Error("coverage series not parallel to steps")
	}
}

// TestWithObservationsAllMethods: every Network simulation method records
// its engine's subset of a shared observation request.
func TestWithObservationsAllMethods(t *testing.T) {
	t.Parallel()
	nw, err := New(256, 8, WithRadius(1), WithSeed(5),
		WithObservations(Observation{Observables: ObservableNames()}))
	if err != nil {
		t.Fatal(err)
	}
	if b, err := nw.Broadcast(); err != nil || b.Series == nil {
		t.Errorf("broadcast: err=%v series=%v", err, b.Series != nil)
	}
	if g, err := nw.Gossip(); err != nil || g.Series == nil {
		t.Errorf("gossip: err=%v series=%v", err, g.Series != nil)
	} else if _, ok := g.Series.Values["coverage"]; ok {
		t.Error("gossip recorded coverage, which it cannot fill")
	}
	if f, err := nw.FrogBroadcast(); err != nil || f.Series == nil {
		t.Errorf("frog: err=%v series=%v", err, f.Series != nil)
	}
	if c, err := nw.CoverTime(); err != nil || c.Series == nil {
		t.Errorf("cover: err=%v series=%v", err, c.Series != nil)
	}
	if e, err := nw.Extinction(4); err != nil || e.Series == nil {
		t.Errorf("extinction: err=%v series=%v", err, e.Series != nil)
	}
	// Without the option, no series is recorded anywhere.
	plain, err := New(256, 8, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if b, err := plain.Broadcast(); err != nil || b.Series != nil {
		t.Errorf("unobserved broadcast: err=%v series=%+v", err, b.Series)
	}
}

func TestWithObservationsValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(256, 8, WithObservations(Observation{Observables: []string{"velocity"}})); err == nil {
		t.Error("unknown observable accepted")
	}
	if _, err := New(256, 8, WithObservations(Observation{})); err == nil {
		t.Error("empty observation accepted")
	}
}

// TestScenarioObserveRoundTrip: the public Scenario's observe block
// marshals to the same JSON as the internal spec and survives
// Parse/Canonical round trips.
func TestScenarioObserveRoundTrip(t *testing.T) {
	t.Parallel()
	sc := Scenario{Engine: "broadcast", Nodes: 256, Agents: 8, Seed: 1,
		Observe: &Observation{Observables: []string{"informed"}, Every: 4, MaxPoints: 32}}
	pub, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	internal, err := json.Marshal(sc.spec())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pub, internal) {
		t.Errorf("public and internal encodings diverge:\npublic:   %s\ninternal: %s", pub, internal)
	}
	parsed, err := ParseScenario(pub)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Observe, sc.Observe) {
		t.Errorf("observe block did not survive the round trip: %+v", parsed.Observe)
	}
	c, err := sc.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.Observe == nil || c.Observe.Every != 4 {
		t.Errorf("canonical observe = %+v", c.Observe)
	}
}

// TestRunScenarioSeriesAndNDJSON: RunScenario surfaces per-rep and
// aggregated series, and WriteSeriesNDJSON matches the internal renderer
// byte for byte (the contract the CLI and service lean on).
func TestRunScenarioSeriesAndNDJSON(t *testing.T) {
	t.Parallel()
	sc := Scenario{Engine: "broadcast", Nodes: 256, Agents: 8, Radius: 1, Seed: 9, Reps: 2,
		Observe: &Observation{Observables: []string{"informed"}}}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || res.Series[0].Name != "informed" {
		t.Fatalf("series = %+v", res.Series)
	}
	for i, r := range res.Reps {
		if r.Series == nil {
			t.Fatalf("rep %d has no series", i)
		}
	}
	var pub bytes.Buffer
	if err := res.WriteSeriesNDJSON(&pub); err != nil {
		t.Fatal(err)
	}
	internal, err := scenario.Run(sc.spec())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(internal)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("public result encoding diverges from internal:\npublic:   %s\ninternal: %s", gotJSON, wantJSON)
	}
	if pub.Len() == 0 || !strings.Contains(pub.String(), `"name":"informed"`) {
		t.Errorf("NDJSON render: %q", pub.String())
	}
}

func TestEngineObservables(t *testing.T) {
	t.Parallel()
	if got := EngineObservables("meeting"); !reflect.DeepEqual(got, []string{"meeting"}) {
		t.Errorf("meeting observables = %v", got)
	}
	if len(ObservableNames()) != 5 {
		t.Errorf("ObservableNames() = %v", ObservableNames())
	}
}
