module mobilenet

go 1.24
