package mobilenet

import (
	"reflect"
	"testing"
)

// TestRunScenarioMatchesNetworkBroadcast pins the scenario dispatch to the
// established public API: a 1-rep broadcast scenario reproduces
// Network.Broadcast with the same parameters and seed exactly.
func TestRunScenarioMatchesNetworkBroadcast(t *testing.T) {
	t.Parallel()
	sc := Scenario{Engine: "broadcast", Nodes: 1024, Agents: 16, Radius: 1, Seed: 2011,
		Metrics: []string{"curve", "coverage"}}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(1024, 16, WithRadius(1), WithSeed(2011))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := net.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Reps[0]
	if rep.Steps != direct.Steps || rep.Completed != direct.Completed ||
		rep.Source != direct.Source || rep.CoverageSteps != direct.CoverageSteps {
		t.Errorf("scenario rep %+v diverges from Network.Broadcast %+v", rep, direct)
	}
	if !reflect.DeepEqual(rep.Curve, direct.InformedCurve) {
		t.Error("scenario curve diverges from Network.Broadcast curve")
	}
}

func TestRunScenarioAllEngines(t *testing.T) {
	t.Parallel()
	for _, engine := range ScenarioEngines() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			t.Parallel()
			sc := Scenario{Engine: engine, Nodes: 256, Agents: 8, Seed: 1}
			if engine == "meeting" {
				// The meeting engine needs a separation d >= 1, and a
				// single trial may legitimately end without a meeting —
				// the completed fraction IS the measurement.
				sc.Radius = 4
			}
			res, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if engine != "meeting" && !res.AllCompleted {
				t.Errorf("%s did not complete", engine)
			}
		})
	}
}

func TestWithScenarioAppliesOptions(t *testing.T) {
	t.Parallel()
	sc := Scenario{Engine: "broadcast", Nodes: 1024, Agents: 16, Radius: 2, Seed: 99,
		MaxSteps: 12345, Mobility: "ballistic:turn=0.1"}
	net, err := New(1024, 16, WithScenario(sc))
	if err != nil {
		t.Fatal(err)
	}
	if net.Radius() != 2 {
		t.Errorf("radius = %d", net.Radius())
	}
	if got := net.Mobility().String(); got != "ballistic" {
		t.Errorf("mobility = %s", got)
	}
	// The applied seed makes the run identical to WithSeed(99).
	a, err := net.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	net2, err := New(1024, 16, WithRadius(2), WithSeed(99), WithMaxSteps(12345),
		WithMobility(Ballistic(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net2.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Source != b.Source {
		t.Errorf("WithScenario run %+v diverges from explicit options %+v", a, b)
	}
	if _, err := New(1024, 16, WithScenario(Scenario{Engine: "teleport", Nodes: 1024, Agents: 16})); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestParseScenarioAndHash(t *testing.T) {
	t.Parallel()
	sc, err := ParseScenario([]byte(`{"engine":"gossip","nodes":256,"agents":8,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Engine != "gossip" || sc.Seed != 3 {
		t.Fatalf("parsed %+v", sc)
	}
	if _, err := ParseScenario([]byte(`{"engine":"gossip","nodez":256}`)); err == nil {
		t.Error("unknown field accepted")
	}
	h1, err := sc.Hash()
	if err != nil {
		t.Fatal(err)
	}
	c, err := sc.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || h1 == "" {
		t.Errorf("hash unstable under canonicalisation: %q vs %q", h1, h2)
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != h1 {
		t.Errorf("result hash %s != scenario hash %s", res.Hash, h1)
	}
}
