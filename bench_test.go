package mobilenet

// One benchmark per experiment in the validation suite: every "table and
// figure" of the reproduction (E1-E17, see DESIGN.md §5) has a bench target
// that regenerates it at reduced scale. Full-scale numbers come from
// cmd/paperrepro; these benches exist so `go test -bench=.` exercises every
// experiment pipeline end to end and tracks its cost over time.
//
// Scale 0.15 keeps each iteration in the tens-to-hundreds of milliseconds.
// Verdicts at this scale are logged, not asserted: tiny grids add noise
// that full-scale runs do not have.

import (
	"context"
	"testing"

	"mobilenet/internal/agent"
	"mobilenet/internal/experiments"
	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/rng"
	"mobilenet/internal/scenario"
	"mobilenet/internal/simserve"
	"mobilenet/internal/trace"
)

const (
	benchScale = 0.15
	benchReps  = 2
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(experiments.Params{
			Scale: benchScale,
			Reps:  benchReps,
			Seed:  uint64(i) + 1,
		})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			b.Logf("%s verdict at bench scale: %s", id, res.Verdict)
		}
	}
}

// BenchmarkE01BroadcastVsK regenerates E1: T_B vs k at fixed n (Theorems 1-2).
func BenchmarkE01BroadcastVsK(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE02BroadcastVsN regenerates E2: T_B vs n at fixed k (Theorems 1-2).
func BenchmarkE02BroadcastVsN(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE03RadiusSweep regenerates E3: radius-independence below r_c (headline).
func BenchmarkE03RadiusSweep(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE04Percolation regenerates E4: the percolation transition of G_0(r).
func BenchmarkE04Percolation(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE05Islands regenerates E5: Lemma 6 island-size caps.
func BenchmarkE05Islands(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE06Meeting regenerates E6: Lemma 3 meeting probabilities.
func BenchmarkE06Meeting(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE07Hitting regenerates E7: Lemma 1 hitting probabilities.
func BenchmarkE07Hitting(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE08WalkRange regenerates E8: Lemma 2 range and displacement.
func BenchmarkE08WalkRange(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE09Gossip regenerates E9: Corollary 2 gossip-vs-broadcast.
func BenchmarkE09Gossip(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10Frog regenerates E10: §4 Frog-model scaling.
func BenchmarkE10Frog(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Coverage regenerates E11: §4 coverage-vs-broadcast.
func BenchmarkE11Coverage(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12CoverTime regenerates E12: §4 multi-walk cover time.
func BenchmarkE12CoverTime(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13PredatorPrey regenerates E13: §4 predator-prey extinction.
func BenchmarkE13PredatorPrey(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14WangRefutation regenerates E14: the Wang et al. [28] refutation.
func BenchmarkE14WangRefutation(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15Frontier regenerates E15: Lemma 7 frontier-speed scaling.
func BenchmarkE15Frontier(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16Stationarity regenerates E16: §2 stationarity of the walk.
func BenchmarkE16Stationarity(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17FarAgent regenerates E17: Theorem 2's far-agent premise.
func BenchmarkE17FarAgent(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkX01Barriers regenerates X1: mobility-barrier domains (§4 future work).
func BenchmarkX01Barriers(b *testing.B) { benchExperiment(b, "X1") }

// BenchmarkX02CellReach regenerates X2: Theorem 1's cell-by-cell exploration.
func BenchmarkX02CellReach(b *testing.B) { benchExperiment(b, "X2") }

// BenchmarkX03LazinessAblation regenerates X3: the parity-deadlock ablation.
func BenchmarkX03LazinessAblation(b *testing.B) { benchExperiment(b, "X3") }

// BenchmarkX04Supercritical regenerates X4: the Peres et al. regime contrast.
func BenchmarkX04Supercritical(b *testing.B) { benchExperiment(b, "X4") }

// BenchmarkX05PartialGossip regenerates X5: gossip time vs rumor count.
func BenchmarkX05PartialGossip(b *testing.B) { benchExperiment(b, "X5") }

// BenchmarkX06PercolationThreshold regenerates X6: the empirical r_c scaling.
func BenchmarkX06PercolationThreshold(b *testing.B) { benchExperiment(b, "X6") }

// BenchmarkX07BoundaryAblation regenerates X7: bounded grid vs torus.
func BenchmarkX07BoundaryAblation(b *testing.B) { benchExperiment(b, "X7") }

// BenchmarkX08SynchronyAblation regenerates X8: lockstep vs random
// sequential updates.
func BenchmarkX08SynchronyAblation(b *testing.B) { benchExperiment(b, "X8") }

// BenchmarkMobilityModels measures the raw cost of one synchronized
// population step under each mobility model at fixed n and k — the
// motion-layer baseline for future perf work (sharded populations, batched
// stepping). Dissemination bookkeeping is deliberately excluded: this is
// the price of motion alone.
func BenchmarkMobilityModels(b *testing.B) {
	const side, k = 128, 256
	g := grid.MustNew(side)
	models := []mobility.Model{
		mobility.LazyWalk{},
		mobility.RandomWaypoint{Pause: 2},
		mobility.LevyFlight{},
		mobility.Ballistic{},
	}
	// The trace model replays a short recorded lazy run, looping.
	{
		pop, err := agent.New(g, k, rng.New(1))
		if err != nil {
			b.Fatal(err)
		}
		rec, err := trace.NewRecorder(side, pop.Positions())
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 512; s++ {
			pop.Step()
			if err := rec.Record(pop.Positions()); err != nil {
				b.Fatal(err)
			}
		}
		models = append(models, mobility.TraceReplay{Trace: rec.Trace(), Loop: true})
	}
	for _, m := range models {
		b.Run(m.Name(), func(b *testing.B) {
			pop, err := agent.NewWithModel(g, k, rng.New(1), m)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pop.Step()
			}
		})
	}
}

// BenchmarkScenarioThroughput measures scenarios/sec through the service
// worker pool at GOMAXPROCS workers (the daemon's default sizing): "cold"
// submits distinct scenarios that all have to run, "cached" replays one
// scenario so every submission is answered from the LRU cache. The cold/
// cached gap is the value of content-hash caching; BENCH_service.json
// records the baseline so later PRs have a perf trajectory.
func BenchmarkScenarioThroughput(b *testing.B) {
	spec := func(seed uint64) scenario.Spec {
		return scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 1024, Agents: 16, Seed: seed}
	}
	b.Run("cold", func(b *testing.B) {
		s := simserve.New(simserve.Config{
			QueueDepth: b.N + 1, MaxJobs: b.N + 1, CacheEntries: b.N + 1,
		})
		defer s.Shutdown(context.Background())
		ids := make([]string, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ticket, err := s.Submit(spec(uint64(i) + 1))
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, ticket.JobID)
		}
		for _, id := range ids {
			if _, err := s.Wait(context.Background(), id); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		s := simserve.New(simserve.Config{})
		defer s.Shutdown(context.Background())
		ticket, err := s.Submit(spec(1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), ticket.JobID); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ticket, err := s.Submit(spec(1))
			if err != nil {
				b.Fatal(err)
			}
			if !ticket.Cached {
				b.Fatal("expected a cache hit")
			}
		}
	})
}

// BenchmarkBroadcastThroughput measures raw simulation speed through the
// public API: one full broadcast on a 64x64 grid with 32 agents.
func BenchmarkBroadcastThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := New(64*64, 32, WithSeed(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := net.Broadcast()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("broadcast incomplete")
		}
	}
}

// BenchmarkGossipThroughput measures a full gossip run through the public
// API at the same scale.
func BenchmarkGossipThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := New(48*48, 24, WithSeed(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := net.Gossip()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("gossip incomplete")
		}
	}
}
