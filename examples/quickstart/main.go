// Quickstart: the smallest useful program against the public API.
//
// It builds a sparse mobile network (64x64 grid, 32 agents, radius 0),
// broadcasts one rumor and reports the measured broadcast time next to the
// paper's Θ̃(n/√k) scale.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobilenet"
)

func main() {
	const (
		nodes  = 64 * 64
		agents = 32
	)
	net, err := mobilenet.New(nodes, agents,
		mobilenet.WithSeed(2011), // PODC 2011 — any seed works
		mobilenet.WithRadius(0),  // exchange on co-location only
		mobilenet.WithSource(0),  // agent 0 has the rumor at t=0
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n=%d nodes, k=%d agents, r=%d\n", net.Nodes(), net.Agents(), net.Radius())
	fmt.Printf("percolation radius r_c = %.1f — subcritical: %v\n",
		net.PercolationRadius(), net.Subcritical())

	res, err := net.Broadcast()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Completed {
		log.Fatalf("broadcast did not finish within the step cap (%d steps)", res.Steps)
	}

	fmt.Printf("\nbroadcast time T_B = %d steps\n", res.Steps)
	fmt.Printf("coverage  time T_C = %d steps\n", res.CoverageSteps)
	fmt.Printf("theory scale n/√k  = %.0f  (T_B/scale = %.2f)\n",
		net.ExpectedBroadcastScale(), float64(res.Steps)/net.ExpectedBroadcastScale())

	// The informed-count curve shows the typical S-shape: slow seeding,
	// exponential middle, long tail chasing the last stragglers.
	fmt.Println("\ninformed agents over time:")
	stride := len(res.InformedCurve)/10 + 1
	for t := 0; t < len(res.InformedCurve); t += stride {
		bar := ""
		for i := 0; i < res.InformedCurve[t]; i++ {
			bar += "#"
		}
		fmt.Printf("  t=%6d %s %d\n", t, bar, res.InformedCurve[t])
	}
}
