// Quickstart: the smallest useful program against the public API.
//
// A scenario spec — the same JSON object cmd/mobiserved serves over HTTP —
// declares a sparse mobile network (64x64 grid, 32 agents, radius 0) and a
// broadcast on it; RunScenario executes it and reports the measured
// broadcast time next to the paper's Θ̃(n/√k) scale.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobilenet"
)

func main() {
	spec := []byte(`{
		"engine":  "broadcast",
		"nodes":   4096,
		"agents":  32,
		"radius":  0,
		"seed":    2011,
		"metrics": ["curve", "coverage"]
	}`)
	sc, err := mobilenet.ParseScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	hash, err := sc.Hash()
	if err != nil {
		log.Fatal(err)
	}

	// The Network view gives the theory-side quantities for the same spec.
	net, err := mobilenet.New(sc.Nodes, sc.Agents, mobilenet.WithScenario(sc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s\n", hash[:12])
	fmt.Printf("n=%d nodes, k=%d agents, r=%d\n", net.Nodes(), net.Agents(), net.Radius())
	fmt.Printf("percolation radius r_c = %.1f — subcritical: %v\n",
		net.PercolationRadius(), net.Subcritical())

	res, err := mobilenet.RunScenario(sc)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Reps[0]
	if !rep.Completed {
		log.Fatalf("broadcast did not finish within the step cap (%d steps)", rep.Steps)
	}

	fmt.Printf("\nbroadcast time T_B = %d steps\n", rep.Steps)
	fmt.Printf("coverage  time T_C = %d steps\n", rep.CoverageSteps)
	fmt.Printf("theory scale n/√k  = %.0f  (T_B/scale = %.2f)\n",
		net.ExpectedBroadcastScale(), float64(rep.Steps)/net.ExpectedBroadcastScale())

	// The informed-count curve shows the typical S-shape: slow seeding,
	// exponential middle, long tail chasing the last stragglers.
	fmt.Println("\ninformed agents over time:")
	stride := len(rep.Curve)/10 + 1
	for t := 0; t < len(rep.Curve); t += stride {
		bar := ""
		for i := 0; i < rep.Curve[t]; i++ {
			bar += "#"
		}
		fmt.Printf("  t=%6d %s %d\n", t, bar, rep.Curve[t])
	}
}
