// Barriers scenario: dissemination in a domain with mobility obstacles —
// the extension the paper names as future work in Section 4 ("more complex
// planar domains that include both communication and mobility barriers").
//
// Picture a campus split by a fenced rail line with one underpass, or a
// nature reserve cut by a river with a single ford: radios still work
// across the obstacle, but agents cannot cross except at the gap. How much
// does the constriction cost? This example compares an open domain, walls
// with narrowing gaps, and random obstacle fields.
//
// Run with:
//
//	go run ./examples/barriers
package main

import (
	"fmt"
	"log"
	"sort"

	"mobilenet"
)

func main() {
	const (
		side  = 48
		nodes = side * side
		k     = 24
		reps  = 5
	)

	scenarios := []struct {
		name string
		obs  mobilenet.Obstacles
	}{
		{"open field", mobilenet.OpenDomain},
		{"wall, wide gap (12)", mobilenet.Obstacles{WallColumn: side / 2, WallGap: 12}},
		{"wall, narrow gap (2)", mobilenet.Obstacles{WallColumn: side / 2, WallGap: 2}},
		{"10% random obstacles", mobilenet.Obstacles{WallColumn: -1, Density: 0.10}},
		{"30% random obstacles", mobilenet.Obstacles{WallColumn: -1, Density: 0.30}},
	}

	fmt.Printf("broadcast with mobility barriers: %dx%d domain, k=%d agents, r=0\n\n", side, side, k)
	fmt.Printf("%-24s %-12s %s\n", "scenario", "median T_B", "vs open")

	var openMedian float64
	for _, sc := range scenarios {
		var times []float64
		for seed := uint64(1); seed <= reps; seed++ {
			net, err := mobilenet.New(nodes, k, mobilenet.WithSeed(seed))
			if err != nil {
				log.Fatal(err)
			}
			res, err := net.BroadcastWithObstacles(sc.obs)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Completed {
				log.Fatalf("%s seed=%d: broadcast incomplete after %d steps", sc.name, seed, res.Steps)
			}
			times = append(times, float64(res.Steps))
		}
		med := median(times)
		if openMedian == 0 {
			openMedian = med
		}
		fmt.Printf("%-24s %-12.0f %.2fx\n", sc.name, med, med/openMedian)
	}

	fmt.Println("\nbarriers cost constant factors, not new asymptotics: dissemination")
	fmt.Println("survives walls and obstacle fields, with the worst slowdowns coming from")
	fmt.Println("severe constriction (single narrow gaps on larger domains — see X1 in")
	fmt.Println("EXPERIMENTS.md) and from dense obstacle mazes that slow the walk's")
	fmt.Println("mixing. Radio penetrates all barriers here — only mobility is blocked.")
}

func median(xs []float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}
