// MANET scenario: how much transmission power does a mobile ad-hoc network
// actually need?
//
// The paper's headline result says: below the percolation radius, none of
// it matters — the broadcast time is Θ̃(n/√k) regardless of the radio
// range, because dissemination is bottlenecked by the mobility (walks
// meeting each other), not by the radio. Power spent on a bigger antenna
// buys nothing until the network crosses the percolation point, where the
// behaviour switches to the polylogarithmic supercritical regime.
//
// This example sweeps the radius across r_c for a vehicular-scale network
// and prints the measured broadcast times, reproducing the E3 shape
// through the public API.
//
// Run with:
//
//	go run ./examples/manet
package main

import (
	"fmt"
	"log"
	"math"

	"mobilenet"
)

func main() {
	const (
		nodes  = 128 * 128 // city grid: 16384 intersections
		agents = 64        // 64 vehicles carrying radios
		reps   = 5         // medians over a few seeds
	)

	probe, err := mobilenet.New(nodes, agents)
	if err != nil {
		log.Fatal(err)
	}
	rc := probe.PercolationRadius()
	fmt.Printf("vehicular MANET: n=%d locations, k=%d vehicles\n", probe.Nodes(), agents)
	fmt.Printf("percolation radius r_c = %.1f, mobility scale n/√k = %.0f\n\n",
		rc, probe.ExpectedBroadcastScale())
	fmt.Printf("%-8s %-8s %-12s %s\n", "radius", "r/r_c", "median T_B", "regime")

	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0} {
		r := int(math.Round(frac * rc))
		times := make([]int, 0, reps)
		for seed := uint64(1); seed <= reps; seed++ {
			net, err := mobilenet.New(nodes, agents,
				mobilenet.WithRadius(r), mobilenet.WithSeed(seed))
			if err != nil {
				log.Fatal(err)
			}
			res, err := net.Broadcast()
			if err != nil {
				log.Fatal(err)
			}
			if !res.Completed {
				log.Fatalf("r=%d seed=%d: broadcast did not complete", r, seed)
			}
			times = append(times, res.Steps)
		}
		regime := "subcritical — radio range wasted"
		if float64(r) >= rc {
			regime = "supercritical — radius finally pays off"
		}
		fmt.Printf("%-8d %-8.2f %-12d %s\n", r, frac, median(times), regime)
	}

	fmt.Println("\nlesson: below r_c every radius gives the same Θ̃(n/√k) broadcast time;")
	fmt.Println("power budgets should either cross the percolation point or stay at minimum.")
}

func median(xs []int) int {
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	return sorted[len(sorted)/2]
}
