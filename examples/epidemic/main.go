// Epidemic scenario: the "infection time" of a mobile population, and why
// the Wang et al. [28] estimate was wrong.
//
// The related-work literature modelled virus propagation between mobile
// devices as exactly this process: k walkers, one initially infected,
// infection on contact. Wang et al. claimed the infection time scales as
// Θ((n log n log k)/k) — i.e. doubling the population roughly halves the
// infection time. The paper proves the real answer is Θ̃(n/√k): doubling
// the population only buys a √2 speed-up. This example measures both
// predictions head to head (the E14 analysis through the public API).
//
// Run with:
//
//	go run ./examples/epidemic
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"mobilenet"
)

func main() {
	const (
		nodes = 64 * 64
		reps  = 7
	)
	n := float64(nodes)

	fmt.Printf("epidemic on n=%d locations; infection on contact (r=0)\n\n", nodes)
	fmt.Printf("%-6s %-12s %-14s %-14s %-10s %-10s\n",
		"k", "median T", "paper n/√k", "Wang claim", "T/paper", "T/Wang")

	type row struct {
		k     int
		medT  float64
		paper float64
		wang  float64
	}
	var rows []row
	for _, k := range []int{8, 16, 32, 64, 128, 256} {
		times := make([]float64, 0, reps)
		for seed := uint64(1); seed <= reps; seed++ {
			net, err := mobilenet.New(nodes, k, mobilenet.WithSeed(seed))
			if err != nil {
				log.Fatal(err)
			}
			res, err := net.Broadcast()
			if err != nil {
				log.Fatal(err)
			}
			if !res.Completed {
				log.Fatalf("k=%d seed=%d incomplete", k, seed)
			}
			times = append(times, float64(res.Steps))
		}
		sort.Float64s(times)
		medT := times[len(times)/2]
		paper := n / math.Sqrt(float64(k))
		wang := n * math.Log(n) * math.Log(float64(k)) / float64(k)
		rows = append(rows, row{k, medT, paper, wang})
		fmt.Printf("%-6d %-12.0f %-14.0f %-14.0f %-10.2f %-10.3f\n",
			k, medT, paper, wang, medT/paper, medT/wang)
	}

	// If Wang et al. were right, T/Wang would be constant across k.
	// If the paper is right, T/paper is the constant column.
	first, last := rows[0], rows[len(rows)-1]
	wangDrift := (last.medT / last.wang) / (first.medT / first.wang)
	paperDrift := (last.medT / last.paper) / (first.medT / first.paper)
	fmt.Printf("\nconstancy check across k=%d..%d:\n", first.k, last.k)
	fmt.Printf("  T/paper drift: %.2fx   (≈1 means the paper's Θ̃(n/√k) is the right law)\n", paperDrift)
	fmt.Printf("  T/Wang  drift: %.2fx   (≫1 exposes the claimed Θ((n log n log k)/k) as too optimistic)\n", wangDrift)
}
