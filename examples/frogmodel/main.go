// Frog model scenario: dissemination when only informed devices move.
//
// The paper's Section 4 extends its bounds to the Frog model: initially a
// single active walker carries the rumor while everyone else sleeps in
// place; waking happens by proximity, and woken agents start walking and
// spreading. Think of a drone swarm in power-saving mode: parked drones
// wake when an active neighbour passes by. The claim is that the same
// Θ̃(n/√k) law governs this much lazier system — activation costs a
// constant factor, not an asymptotic one.
//
// This example compares the Frog model against the fully dynamic model at
// identical parameters (the E10 analysis through the public API).
//
// Run with:
//
//	go run ./examples/frogmodel
package main

import (
	"fmt"
	"log"
	"sort"

	"mobilenet"
)

func main() {
	const (
		nodes = 96 * 96
		reps  = 5
	)

	fmt.Printf("frog model vs dynamic model, n=%d, r=0\n\n", nodes)
	fmt.Printf("%-6s %-14s %-14s %-12s\n", "k", "frog T_B", "dynamic T_B", "frog cost")

	var prevFrog float64
	for _, k := range []int{16, 32, 64, 128, 256} {
		var frogT, dynT []float64
		for seed := uint64(1); seed <= reps; seed++ {
			net, err := mobilenet.New(nodes, k, mobilenet.WithSeed(seed))
			if err != nil {
				log.Fatal(err)
			}
			fres, err := net.FrogBroadcast()
			if err != nil {
				log.Fatal(err)
			}
			dres, err := net.Broadcast()
			if err != nil {
				log.Fatal(err)
			}
			if !fres.Completed || !dres.Completed {
				log.Fatalf("k=%d seed=%d incomplete", k, seed)
			}
			frogT = append(frogT, float64(fres.Steps))
			dynT = append(dynT, float64(dres.Steps))
		}
		mf, md := median(frogT), median(dynT)
		fmt.Printf("%-6d %-14.0f %-14.0f %-12.2f\n", k, mf, md, mf/md)
		if prevFrog > 0 {
			speedup := prevFrog / mf
			fmt.Printf("       └─ doubling k sped the frog system up %.2fx (√2 ≈ 1.41 predicted)\n", speedup)
		}
		prevFrog = mf
	}

	fmt.Println("\nthe frog system pays a constant activation premium over the dynamic")
	fmt.Println("model but follows the same Θ̃(n/√k) curve — §4 of the paper.")
}

func median(xs []float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}
