// ZebraNet scenario: gossip and coverage in a wildlife-tracking sensor
// network.
//
// The paper motivates its model with sensor networks attached to animals in
// a nature reserve (its reference [17], the ZebraNet project): every
// collar logs its own observations (a distinct rumor), animals wander
// independently, and collars opportunistically sync complete databases
// whenever herds come within radio range. Two questions matter to the
// biologists:
//
//  1. gossip time T_G — how long until every collar carries every record
//     (so that retrieving any one animal recovers the full dataset), and
//  2. coverage time T_C — how long until record-carrying animals have
//     physically visited every cell of the reserve.
//
// Corollary 2 says T_G = Õ(n/√k) just like broadcast, and §4 shows
// T_C ≈ T_B. This example measures all three through the public API.
//
// Run with:
//
//	go run ./examples/zebranet
package main

import (
	"fmt"
	"log"

	"mobilenet"
)

func main() {
	const (
		nodes = 48 * 48 // reserve tessellated into 2304 cells
		reps  = 5
	)

	fmt.Printf("ZebraNet-style reserve: n=%d cells\n\n", nodes)
	fmt.Printf("%-8s %-12s %-12s %-12s %-10s\n", "collars", "median T_B", "median T_G", "median T_C", "T_G/T_B")

	for _, k := range []int{8, 16, 32, 64} {
		var tb, tg, tc []int
		for seed := uint64(1); seed <= reps; seed++ {
			net, err := mobilenet.New(nodes, k,
				mobilenet.WithSeed(seed), mobilenet.WithRadius(1))
			if err != nil {
				log.Fatal(err)
			}
			bres, err := net.Broadcast()
			if err != nil {
				log.Fatal(err)
			}
			gres, err := net.Gossip()
			if err != nil {
				log.Fatal(err)
			}
			if !bres.Completed || !gres.Completed {
				log.Fatalf("k=%d seed=%d: runs incomplete", k, seed)
			}
			tb = append(tb, bres.Steps)
			tg = append(tg, gres.Steps)
			if bres.CoverageSteps >= 0 {
				tc = append(tc, bres.CoverageSteps)
			}
		}
		mb, mg, mc := median(tb), median(tg), median(tc)
		ratio := float64(mg) / float64(maxInt(mb, 1))
		fmt.Printf("%-8d %-12d %-12d %-12d %-10.2f\n", k, mb, mg, mc, ratio)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - T_G tracks T_B within a small factor (Corollary 2): all-to-all sync")
	fmt.Println("    costs barely more than one-to-all broadcast;")
	fmt.Println("  - T_C stays comparable to T_B (§4): by the time the herd is synced,")
	fmt.Println("    the reserve has been physically surveyed as well;")
	fmt.Println("  - quadrupling the herd roughly halves all three times (the √k law).")
}

func median(xs []int) int {
	if len(xs) == 0 {
		return -1
	}
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	return sorted[len(sorted)/2]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
