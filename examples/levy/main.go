// Mobility contrast: does HOW the agents move change how fast a rumor
// spreads?
//
// The paper proves T_B = Θ̃(n/√k) for one motion law — the lazy random
// walk — and related work suggests the answer depends strongly on the
// mobility family: Lévy flights and ballistic motion "stir" the population
// super-diffusively, while waypoint motion funnels agents through the grid
// centre. With the mobility subsystem the comparison is a one-line change:
// the same n, k, r, the same seeds, only WithMobility varies.
//
// Typical output shows the diffusive lazy walk is the slowest disseminator
// (its broadcast time carries the full n/√k mobility bottleneck) while
// every model with long directed legs — waypoint, ballistic and especially
// Lévy flights — completes the broadcast in a fraction of the time. That
// ordering is exactly the mobile-conductance prediction of Zhang et al.
//
// Run with:
//
//	go run ./examples/levy
package main

import (
	"fmt"
	"log"

	"mobilenet"
)

func main() {
	const (
		nodes  = 64 * 64 // n grid nodes
		agents = 32      // k agents
		radius = 0       // co-location contact only: pure mobility bottleneck
		reps   = 5       // medians over a few seeds
	)

	probe, err := mobilenet.New(nodes, agents)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mobility contrast: n=%d, k=%d, r=%d (subcritical)\n", probe.Nodes(), agents, radius)
	fmt.Printf("lazy-walk theory scale n/√k = %.0f\n\n", probe.ExpectedBroadcastScale())

	models := []struct {
		name string
		mob  mobilenet.Mobility
	}{
		{"lazy walk (paper)", mobilenet.LazyWalk()},
		{"waypoint, pause=2", mobilenet.RandomWaypoint(2)},
		{"levy, alpha=2.4", mobilenet.LevyFlight(2.4, 0)},
		{"levy, alpha=1.4", mobilenet.LevyFlight(1.4, 0)},
		{"ballistic, turn=0.05", mobilenet.Ballistic(0.05)},
	}

	fmt.Printf("%-22s %-12s %s\n", "mobility", "median T_B", "vs lazy")
	var lazy int
	for _, m := range models {
		times := make([]int, 0, reps)
		for seed := uint64(1); seed <= reps; seed++ {
			net, err := mobilenet.New(nodes, agents,
				mobilenet.WithRadius(radius),
				mobilenet.WithSeed(seed),
				mobilenet.WithMobility(m.mob))
			if err != nil {
				log.Fatal(err)
			}
			res, err := net.Broadcast()
			if err != nil {
				log.Fatal(err)
			}
			if !res.Completed {
				log.Fatalf("%s seed=%d: broadcast did not complete in %d steps", m.name, seed, res.Steps)
			}
			times = append(times, res.Steps)
		}
		med := median(times)
		if lazy == 0 {
			lazy = med
			fmt.Printf("%-22s %-12d %s\n", m.name, med, "1.00x (baseline)")
			continue
		}
		fmt.Printf("%-22s %-12d %.2fx\n", m.name, med, float64(med)/float64(lazy))
	}

	fmt.Println("\nlesson: the Θ̃(n/√k) bound is a property of diffusive motion, not of")
	fmt.Println("sparse networks per se — stronger stirring beats the mobility bottleneck.")
}

func median(xs []int) int {
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	return sorted[len(sorted)/2]
}
