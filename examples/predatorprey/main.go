// Predator-prey scenario: the paper's §4 random pursuit system.
//
// k predators and m preys all perform independent lazy random walks; a
// prey is removed when a predator comes within the capture radius. The
// paper proves a high-probability O((n log²n)/k) bound on the extinction
// time. Ecologically: how fast does a patrol fleet of k drones sweep a
// reserve clear of k intruders, as a function of fleet size?
//
// Run with:
//
//	go run ./examples/predatorprey
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"mobilenet"
)

func main() {
	const (
		nodes = 48 * 48
		reps  = 7
	)
	n := float64(nodes)
	lnN := math.Log(n)

	fmt.Printf("predator-prey on n=%d cells, preys m=k, capture on contact\n\n", nodes)
	fmt.Printf("%-6s %-18s %-22s %-10s\n", "k", "median extinction", "bound (n ln²n)/k", "measured/bound")

	var prev float64
	for _, k := range []int{8, 16, 32, 64, 128} {
		var times []float64
		for seed := uint64(1); seed <= reps; seed++ {
			net, err := mobilenet.New(nodes, k, mobilenet.WithSeed(seed))
			if err != nil {
				log.Fatal(err)
			}
			res, err := net.Extinction(k)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Completed {
				log.Fatalf("k=%d seed=%d: %d preys survived the step cap", k, seed, res.Survivors)
			}
			times = append(times, float64(res.Steps))
		}
		med := median(times)
		bound := n * lnN * lnN / float64(k)
		fmt.Printf("%-6d %-18.0f %-22.0f %-10.3f\n", k, med, bound, med/bound)
		if prev > 0 {
			fmt.Printf("       └─ doubling the fleet sped extinction up %.2fx (bound predicts 2x)\n", prev/med)
		}
		prev = med
	}

	fmt.Println("\nthe measured extinction times sit comfortably under the paper's")
	fmt.Println("O((n log²n)/k) envelope and halve (roughly) with every fleet doubling —")
	fmt.Println("the 1/k law of §4.")
}

func median(xs []float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}
