// Predator-prey scenario: the paper's §4 random pursuit system.
//
// k predators and m preys all perform independent lazy random walks; a
// prey is removed when a predator comes within the capture radius. The
// paper proves a high-probability O((n log²n)/k) bound on the extinction
// time. Ecologically: how fast does a patrol fleet of k drones sweep a
// reserve clear of k intruders, as a function of fleet size?
//
// Each fleet size is one declarative scenario with 7 replicates; the
// scenario layer derives a deterministic per-replicate seed schedule and
// returns the mean, so the whole sweep is a handful of specs — the same
// objects a mobiserved instance would batch-serve.
//
// Run with:
//
//	go run ./examples/predatorprey
package main

import (
	"fmt"
	"log"
	"math"

	"mobilenet"
)

func main() {
	const (
		nodes = 48 * 48
		reps  = 7
	)
	n := float64(nodes)
	lnN := math.Log(n)

	fmt.Printf("predator-prey on n=%d cells, preys m=k, capture on contact\n\n", nodes)
	fmt.Printf("%-6s %-18s %-22s %-10s\n", "k", "mean extinction", "bound (n ln²n)/k", "measured/bound")

	var prev float64
	for _, k := range []int{8, 16, 32, 64, 128} {
		res, err := mobilenet.RunScenario(mobilenet.Scenario{
			Label:  fmt.Sprintf("patrol fleet k=%d", k),
			Engine: "predator",
			Nodes:  nodes,
			Agents: k,
			Seed:   1,
			Reps:   reps,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.AllCompleted {
			log.Fatalf("k=%d: some replicates hit the step cap with preys surviving", k)
		}
		mean := res.MeanSteps
		bound := n * lnN * lnN / float64(k)
		fmt.Printf("%-6d %-18.0f %-22.0f %-10.3f\n", k, mean, bound, mean/bound)
		if prev > 0 {
			fmt.Printf("       └─ doubling the fleet sped extinction up %.2fx (bound predicts 2x)\n", prev/mean)
		}
		prev = mean
	}

	fmt.Println("\nthe measured extinction times sit comfortably under the paper's")
	fmt.Println("O((n log²n)/k) envelope and halve (roughly) with every fleet doubling —")
	fmt.Println("the 1/k law of §4.")
}
