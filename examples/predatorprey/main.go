// Predator-prey scenario: the paper's §4 random pursuit system.
//
// k predators and m preys all perform independent lazy random walks; a
// prey is removed when a predator comes within the capture radius. The
// paper proves a high-probability O((n log²n)/k) bound on the extinction
// time. Ecologically: how fast does a patrol fleet of k drones sweep a
// reserve clear of k intruders, as a function of fleet size?
//
// The whole fleet-size contrast is ONE declarative sweep: a predator base
// scenario with an agents axis, 7 replicates per point under the
// deterministic per-replicate seed schedule. The same JSON-able object
// runs through mobilenet.RunSweep here, `mobisim -sweep`, or a mobiserved
// instance's POST /v1/sweeps — where every fleet size is deduplicated
// point by point against the service's result cache.
//
// Run with:
//
//	go run ./examples/predatorprey
package main

import (
	"fmt"
	"log"
	"math"

	"mobilenet"
)

func main() {
	const (
		nodes = 48 * 48
		reps  = 7
	)
	n := float64(nodes)
	lnN := math.Log(n)

	res, err := mobilenet.RunSweep(mobilenet.Sweep{
		Label: "patrol fleet sizes",
		Base: mobilenet.Scenario{
			Engine: "predator",
			Nodes:  nodes,
			Agents: 8, // overridden by the axis
			Seed:   1,
			Reps:   reps,
		},
		Axes: []mobilenet.SweepAxis{{Field: "agents", Values: []any{8, 16, 32, 64, 128}}},
		// The bound predicts extinction ∝ 1/k: ask the sweep layer for the
		// log-log slope.
		Fit: "agents",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("predator-prey on n=%d cells, preys m=k, capture on contact\n\n", nodes)
	fmt.Printf("%-6s %-18s %-22s %-10s\n", "k", "mean extinction", "bound (n ln²n)/k", "measured/bound")

	var prev float64
	for _, pt := range res.Points {
		if !pt.AllCompleted {
			log.Fatalf("k=%v: some replicates hit the step cap with preys surviving", pt.Values[0])
		}
		k := float64(pt.Values[0].(int64))
		mean := pt.Steps.Mean
		bound := n * lnN * lnN / k
		fmt.Printf("%-6.0f %-18.0f %-22.0f %-10.3f\n", k, mean, bound, mean/bound)
		if prev > 0 {
			fmt.Printf("       └─ doubling the fleet sped extinction up %.2fx (bound predicts 2x)\n", prev/mean)
		}
		prev = mean
	}

	fmt.Printf("\nsweep fit: extinction time ∝ k^%.2f (bound predicts exponent -1)\n", res.Fit.Alpha)
	fmt.Println("the measured extinction times sit comfortably under the paper's")
	fmt.Println("O((n log²n)/k) envelope and halve (roughly) with every fleet doubling —")
	fmt.Println("the 1/k law of §4.")
}
