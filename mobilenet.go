package mobilenet

import (
	"fmt"
	"io"

	"mobilenet/internal/barrier"
	"mobilenet/internal/core"
	"mobilenet/internal/coverage"
	"mobilenet/internal/frog"
	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/obs"
	"mobilenet/internal/percolation"
	"mobilenet/internal/predator"
	"mobilenet/internal/rng"
	"mobilenet/internal/theory"
	"mobilenet/internal/trace"
	"mobilenet/internal/visibility"
)

// Network describes one simulation setting: a grid, a population size and
// the dissemination parameters. A Network is immutable; every simulation
// method places a fresh population from the configured seed, so repeated
// calls with the same configuration reproduce the same result.
type Network struct {
	g   *grid.Grid
	k   int
	opt options
}

type options struct {
	radius   int
	seed     uint64
	source   int
	maxSteps int
	mobility mobility.Model
	observe  *obs.Spec
}

// Option customises a Network.
type Option func(*options) error

// WithRadius sets the transmission radius r (Manhattan distance). Agents in
// the same connected component of G_t(r) exchange all rumors each step.
// The default is 0: exchange on co-location only.
func WithRadius(r int) Option {
	return func(o *options) error {
		if r < 0 {
			return fmt.Errorf("mobilenet: negative radius %d", r)
		}
		o.radius = r
		return nil
	}
}

// WithSeed fixes the randomness seed; runs with equal seeds are identical.
// The default seed is 1.
func WithSeed(seed uint64) Option {
	return func(o *options) error {
		o.seed = seed
		return nil
	}
}

// WithSource selects the initially informed agent for broadcast-style runs.
// The default is agent 0; pass RandomSource for a random choice.
func WithSource(agentIdx int) Option {
	return func(o *options) error {
		if agentIdx != RandomSource && agentIdx < 0 {
			return fmt.Errorf("mobilenet: invalid source %d", agentIdx)
		}
		o.source = agentIdx
		return nil
	}
}

// RandomSource selects a uniformly random source agent (see WithSource).
const RandomSource = core.SourceRandom

// Mobility selects the motion model agents follow; build values with
// LazyWalk, RandomWaypoint, LevyFlight, Ballistic, TraceReplay or
// ParseMobility. The zero value selects the lazy walk.
type Mobility struct {
	model mobility.Model
}

// String returns the model's canonical spec name.
func (m Mobility) String() string {
	if m.model == nil {
		return mobility.Default().Name()
	}
	return m.model.Name()
}

// LazyWalk selects the paper's §2 mobility model, the 1/5-lazy simple
// random walk. It is the default; runs under it reproduce the historical
// (pre-mobility-subsystem) results bit for bit under equal seeds, and it is
// the only model the Θ̃(n/√k) bounds are proved for.
func LazyWalk() Mobility { return Mobility{mobility.LazyWalk{}} }

// RandomWaypoint selects waypoint motion: each agent repeatedly picks a
// uniform destination node, walks toward it one lattice step per tick, and
// rests pauseSteps ticks on arrival. Note the classical caveat: waypoint
// occupancy is centre-biased, not uniform.
func RandomWaypoint(pauseSteps int) Mobility {
	return Mobility{mobility.RandomWaypoint{Pause: pauseSteps}}
}

// LevyFlight selects Lévy motion: one jump per tick with uniform heading
// and truncated power-law length ∝ l^(-alpha) on [1, maxJump], wrapped on
// the torus so uniform occupancy stays stationary. Zero alpha selects 1.6;
// zero maxJump selects half the grid side.
func LevyFlight(alpha float64, maxJump int) Mobility {
	return Mobility{mobility.LevyFlight{Alpha: alpha, MaxJump: maxJump}}
}

// Ballistic selects straight-line motion on the torus with the given
// per-tick probability of resampling the direction.
func Ballistic(turnProb float64) Mobility {
	return Mobility{mobility.Ballistic{TurnProb: turnProb}}
}

// TraceReplay selects trace-driven motion, replaying a trajectory in the
// binary format written by the trace recorder (cmd/mobisim -trace). When
// loop is true agents restart at their recorded origin after exhausting the
// trace; otherwise they freeze at their final position.
func TraceReplay(r io.Reader, loop bool) (Mobility, error) {
	t, err := trace.Read(r)
	if err != nil {
		return Mobility{}, fmt.Errorf("mobilenet: %w", err)
	}
	return Mobility{mobility.TraceReplay{Trace: t, Loop: loop}}, nil
}

// ParseMobility builds a Mobility from a CLI-style spec string:
//
//	lazy | waypoint[:pause=N] | levy[:alpha=F,max=N] |
//	ballistic[:turn=F] | trace:FILE[,loop]
func ParseMobility(spec string) (Mobility, error) {
	m, err := mobility.Parse(spec)
	if err != nil {
		return Mobility{}, fmt.Errorf("mobilenet: %w", err)
	}
	return Mobility{m}, nil
}

// WithMobility sets the motion model for every simulation the Network
// runs (broadcast, gossip, frog, cover, extinction). The default is the
// paper's lazy walk.
func WithMobility(m Mobility) Option {
	return func(o *options) error {
		o.mobility = m.model
		return nil
	}
}

// WithScenario applies a scenario spec's simulation options — radius,
// seed, source, step cap and mobility — to the Network. The arena and
// population still come from New's arguments, and the engine is chosen by
// the simulation method called (or use RunScenario to let the spec drive
// everything, including n, k and the engine).
func WithScenario(s Scenario) Option {
	return func(o *options) error {
		if err := s.Validate(); err != nil {
			return err
		}
		o.radius = s.Radius
		o.seed = s.Seed
		o.source = s.Source
		o.maxSteps = s.MaxSteps
		if s.Mobility != "" {
			m, err := mobility.Parse(s.Mobility)
			if err != nil {
				return fmt.Errorf("mobilenet: %w", err)
			}
			o.mobility = m
		}
		return nil
	}
}

// WithMaxSteps caps simulation length. The default derives a generous cap
// from the theoretical Õ(n/√k) bound.
func WithMaxSteps(steps int) Option {
	return func(o *options) error {
		if steps < 0 {
			return fmt.Errorf("mobilenet: negative step cap %d", steps)
		}
		o.maxSteps = steps
		return nil
	}
}

// New builds a Network with at least nodes grid nodes (rounded up to the
// next perfect square) and the given number of agents.
func New(nodes, agents int, opts ...Option) (*Network, error) {
	g, err := grid.FromNodes(nodes)
	if err != nil {
		return nil, err
	}
	if agents <= 0 {
		return nil, fmt.Errorf("mobilenet: agent count must be positive, got %d", agents)
	}
	o := options{seed: 1}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.source != RandomSource && o.source >= agents {
		return nil, fmt.Errorf("mobilenet: source %d out of range [0,%d)", o.source, agents)
	}
	return &Network{g: g, k: agents, opt: o}, nil
}

// Nodes returns the number of grid nodes n (a perfect square).
func (nw *Network) Nodes() int { return nw.g.N() }

// Side returns the grid side length sqrt(n).
func (nw *Network) Side() int { return nw.g.Side() }

// Agents returns the number of agents k.
func (nw *Network) Agents() int { return nw.k }

// Radius returns the configured transmission radius.
func (nw *Network) Radius() int { return nw.opt.radius }

// Mobility returns the configured motion model.
func (nw *Network) Mobility() Mobility { return Mobility{nw.opt.mobility} }

// PercolationRadius returns r_c ≈ sqrt(n/k), the critical transmission
// radius separating the sparse regime (this paper) from the supercritical
// regime (Peres et al.).
func (nw *Network) PercolationRadius() float64 {
	return theory.PercolationRadius(nw.g.N(), nw.k)
}

// Subcritical reports whether the configured radius is below the
// percolation radius, i.e. whether the network is in the paper's sparse
// regime where T_B = Θ̃(n/√k).
func (nw *Network) Subcritical() bool {
	return float64(nw.opt.radius) < nw.PercolationRadius()
}

// ExpectedBroadcastScale returns n/√k, the Θ̃ scale of the broadcast time
// in the sparse regime.
func (nw *Network) ExpectedBroadcastScale() float64 {
	return theory.BroadcastScale(nw.g.N(), nw.k)
}

func (nw *Network) coreConfig() core.Config {
	return core.Config{
		Grid:     nw.g,
		K:        nw.k,
		Radius:   nw.opt.radius,
		Seed:     nw.opt.seed,
		Source:   nw.opt.source,
		MaxSteps: nw.opt.maxSteps,
		Mobility: nw.opt.mobility,
	}
}

// BroadcastResult reports the outcome of a broadcast simulation.
type BroadcastResult struct {
	// Steps is the broadcast time T_B (valid when Completed).
	Steps int
	// Completed is false when the step cap was reached first.
	Completed bool
	// Source is the index of the source agent.
	Source int
	// InformedCurve holds the informed-agent count after each step,
	// starting at t=0.
	InformedCurve []int
	// CoverageSteps is the coverage time T_C (first time informed agents
	// have visited every node), or -1 when the run ended first.
	CoverageSteps int
	// Series holds the per-step observed series under WithObservations;
	// nil otherwise.
	Series *RepSeries
}

// Broadcast runs a single-rumor dissemination from the source agent and
// returns the broadcast time along with the informed-count curve and the
// coverage time T_C.
func (nw *Network) Broadcast() (BroadcastResult, error) {
	cfg := nw.coreConfig()
	cfg.RecordCurve = true
	cfg.TrackInformedArea = true
	rec := nw.recorder("broadcast")
	cfg.Observer = rec
	r, err := core.RunBroadcast(cfg)
	if err != nil {
		return BroadcastResult{}, err
	}
	res := BroadcastResult{
		Steps:         r.Steps,
		Completed:     r.Completed,
		Source:        r.Source,
		InformedCurve: r.InformedCurve,
		CoverageSteps: r.CoverageSteps,
	}
	if rec != nil {
		res.Series = fromSeriesSet(rec.Series())
	}
	return res, nil
}

// GossipResult reports the outcome of a gossip (all-to-all) simulation.
type GossipResult struct {
	// Steps is the gossip time T_G (valid when Completed).
	Steps int
	// Completed is false when the step cap was reached first.
	Completed bool
	// Series holds the per-step observed series under WithObservations;
	// nil otherwise.
	Series *RepSeries
}

// Gossip runs the all-to-all problem: every agent starts with its own rumor
// and the run ends when everyone knows everything.
func (nw *Network) Gossip() (GossipResult, error) {
	return nw.gossip(0)
}

// GossipPartial runs the multi-rumor problem with the given number of
// distinct rumors |M| ≤ k, held initially by distinct agents (the paper's
// §2 general setting). Zero selects the classical |M| = k.
func (nw *Network) GossipPartial(rumors int) (GossipResult, error) {
	return nw.gossip(rumors)
}

func (nw *Network) gossip(rumors int) (GossipResult, error) {
	cfg := nw.coreConfig()
	rec := nw.recorder("gossip")
	cfg.Observer = rec
	r, err := core.RunPartialGossip(cfg, rumors)
	if err != nil {
		return GossipResult{}, err
	}
	res := GossipResult{Steps: r.Steps, Completed: r.Completed}
	if rec != nil {
		res.Series = fromSeriesSet(rec.Series())
	}
	return res, nil
}

// FrogBroadcast runs the Frog-model variant: only informed agents move,
// sleepers stay at their initial nodes until woken.
func (nw *Network) FrogBroadcast() (BroadcastResult, error) {
	src := nw.opt.source
	rec := nw.recorder("frog")
	r, err := frog.RunFrog(frog.Config{
		Grid:     nw.g,
		K:        nw.k,
		Radius:   nw.opt.radius,
		Seed:     nw.opt.seed,
		Source:   src,
		MaxSteps: nw.opt.maxSteps,
		Mobility: nw.opt.mobility,
		Observer: rec,
	})
	if err != nil {
		return BroadcastResult{}, err
	}
	res := BroadcastResult{Steps: r.Steps, Completed: r.Completed, Source: src, CoverageSteps: -1}
	if rec != nil {
		res.Series = fromSeriesSet(rec.Series())
	}
	return res, nil
}

// CoverResult reports a cover-time measurement.
type CoverResult struct {
	// Steps is the cover time (valid when Completed).
	Steps int
	// Completed is false when the step cap was reached first.
	Completed bool
	// Covered is the number of nodes visited by the end of the run.
	Covered int
	// Series holds the per-step observed series under WithObservations;
	// nil otherwise.
	Series *RepSeries
}

// CoverTime measures how long the network's k agents (as plain independent
// walks, no rumors) take to visit every grid node.
func (nw *Network) CoverTime() (CoverResult, error) {
	rec := nw.recorder("coverage")
	r, err := coverage.Run(coverage.Config{
		Grid:     nw.g,
		Walkers:  nw.k,
		Seed:     nw.opt.seed,
		MaxSteps: nw.opt.maxSteps,
		Mobility: nw.opt.mobility,
		Observer: rec,
	})
	if err != nil {
		return CoverResult{}, err
	}
	res := CoverResult{Steps: r.Steps, Completed: r.Completed, Covered: r.Covered}
	if rec != nil {
		res.Series = fromSeriesSet(rec.Series())
	}
	return res, nil
}

// ExtinctionResult reports a predator-prey run.
type ExtinctionResult struct {
	// Steps is the extinction time (valid when Completed).
	Steps int
	// Completed is false when the step cap was reached with survivors.
	Completed bool
	// Survivors is the number of preys alive at the end.
	Survivors int
	// Series holds the per-step observed series under WithObservations;
	// nil otherwise.
	Series *RepSeries
}

// Extinction runs a predator-prey system with the network's k agents as
// predators chasing the given number of moving preys; capture happens
// within the configured transmission radius.
func (nw *Network) Extinction(preys int) (ExtinctionResult, error) {
	rec := nw.recorder("predator")
	r, err := predator.RunExtinction(predator.Config{
		Grid:      nw.g,
		Predators: nw.k,
		Preys:     preys,
		Radius:    nw.opt.radius,
		Seed:      nw.opt.seed,
		MaxSteps:  nw.opt.maxSteps,
		Mobility:  nw.opt.mobility,
		Observer:  rec,
	})
	if err != nil {
		return ExtinctionResult{}, err
	}
	res := ExtinctionResult{Steps: r.Steps, Completed: r.Completed, Survivors: r.Survivors}
	if rec != nil {
		res.Series = fromSeriesSet(rec.Series())
	}
	return res, nil
}

// ComponentCensus summarises the component structure of the initial
// visibility graph G_0(r) at an arbitrary probe radius.
type ComponentCensus struct {
	// Components is the number of connected components.
	Components int
	// MaxSize is the largest component's agent count.
	MaxSize int
	// GiantFraction is MaxSize/k.
	GiantFraction float64
	// Isolated is the number of singleton agents.
	Isolated int
}

// Census places a fresh population (per the configured seed) and censuses
// the components of G_0 at the given radius.
func (nw *Network) Census(radius int) (ComponentCensus, error) {
	if radius < 0 {
		return ComponentCensus{}, fmt.Errorf("mobilenet: negative census radius %d", radius)
	}
	pos, err := nw.initialPositions()
	if err != nil {
		return ComponentCensus{}, err
	}
	c := percolation.Snapshot(pos, radius, nil)
	return ComponentCensus{
		Components:    c.Components,
		MaxSize:       c.MaxSize,
		GiantFraction: c.GiantFraction,
		Isolated:      c.Isolated,
	}, nil
}

func (nw *Network) initialPositions() ([]grid.Point, error) {
	// Reuse core's placement so the census sees exactly the population a
	// simulation with this seed would start from.
	cfg := nw.coreConfig()
	b, err := core.NewBroadcast(cfg)
	if err != nil {
		return nil, err
	}
	pos := b.Population().Positions()
	out := make([]grid.Point, len(pos))
	copy(out, pos)
	return out, nil
}

// FloorRadius converts a real radius (e.g. a theoretical threshold) to the
// equivalent integer Manhattan radius.
func FloorRadius(r float64) int { return visibility.FloorRadius(r) }

// Obstacles describes mobility barriers for BroadcastWithObstacles — the
// extension the paper names as future work in §4. Barriers block movement
// but not radio; agents are placed on the largest connected free region.
type Obstacles struct {
	// WallColumn, when >= 0, erects a vertical wall at that x with a
	// centred gap of WallGap nodes.
	WallColumn int
	// WallGap is the opening width of the wall (only with WallColumn >= 0).
	WallGap int
	// Density, in [0, 1), additionally blocks approximately Density*n
	// uniformly random nodes.
	Density float64
}

// None reports whether the spec describes an obstacle-free domain.
func (o Obstacles) None() bool { return o.WallColumn < 0 && o.Density == 0 }

// OpenDomain is the Obstacles zero-configuration: no wall, no obstacles.
var OpenDomain = Obstacles{WallColumn: -1}

// BroadcastWithObstacles runs a broadcast on a copy of the network's grid
// with the given mobility barriers. The step cap defaults to 400*n when
// WithMaxSteps was not supplied (constricted domains have no closed-form
// envelope).
func (nw *Network) BroadcastWithObstacles(o Obstacles) (BroadcastResult, error) {
	d, err := barrier.NewDomain(nw.g)
	if err != nil {
		return BroadcastResult{}, err
	}
	if o.WallColumn >= 0 {
		if err := d.AddWall(o.WallColumn, o.WallGap); err != nil {
			return BroadcastResult{}, err
		}
	}
	if o.Density != 0 {
		if err := d.AddRandomObstacles(o.Density, rng.New(nw.opt.seed^0x0b57ac1e)); err != nil {
			return BroadcastResult{}, err
		}
	}
	maxSteps := nw.opt.maxSteps
	if maxSteps == 0 {
		maxSteps = 400 * nw.g.N()
	}
	r, err := barrier.RunBroadcast(barrier.Config{
		Domain:             d,
		K:                  nw.k,
		Radius:             nw.opt.radius,
		Seed:               nw.opt.seed,
		MaxSteps:           maxSteps,
		ConnectedPlacement: true,
	})
	if err != nil {
		return BroadcastResult{}, err
	}
	return BroadcastResult{Steps: r.Steps, Completed: r.Completed, CoverageSteps: -1}, nil
}
