// Package mobilenet is a simulator and analysis toolkit for information
// dissemination in sparse mobile networks, reproducing the system studied
// in "Tight Bounds on Information Dissemination in Sparse Mobile Networks"
// (Pettarin, Pietracaprina, Pucci, Upfal — PODC 2011, arXiv:1101.4609).
//
// # Model
//
// k agents perform independent lazy random walks on an n-node square grid:
// at each synchronized step an agent moves to each of its grid neighbours
// with probability 1/5 and stays put otherwise, which keeps the uniform
// placement stationary. Two agents are connected in the visibility graph
// G_t(r) when their Manhattan distance is at most the transmission radius
// r, and a rumor floods an entire connected component in one time step
// (radio propagation is much faster than motion).
//
// The paper proves that below the percolation radius r_c ≈ sqrt(n/k) the
// broadcast time is Θ̃(n/√k) for every transmission radius — surprisingly
// independent of r — and this module's experiment suite (E1-E17, described
// in EXPERIMENTS.md, with the architecture in DESIGN.md) validates each
// theorem, lemma and corollary empirically.
//
// # Quick start
//
//	net, err := mobilenet.New(128*128, 64, mobilenet.WithSeed(42))
//	if err != nil { ... }
//	res, err := net.Broadcast()
//	fmt.Println("T_B =", res.Steps)
//
// # Mobility models
//
// The motion law is pluggable. The default is the paper's lazy walk, and
// four alternatives ship with the module:
//
//   - LazyWalk: the paper's §2 kernel (default). The only model the
//     Θ̃(n/√k) bounds are proved for; reproduces pre-subsystem results
//     bit for bit under equal seeds.
//   - RandomWaypoint: repeatedly walk toward a uniform destination node,
//     resting on arrival. Occupancy is centre-biased (the classical
//     waypoint pathology), not uniform.
//   - LevyFlight: truncated power-law jumps with uniform headings, on the
//     torus; uniform occupancy stays exactly stationary.
//   - Ballistic: straight lattice lines with a per-tick turn-and-rest
//     probability, on the torus; uniform occupancy stays stationary.
//   - TraceReplay: replay a recorded trajectory (looping or truncating),
//     the bridge to empirical mobility datasets.
//
// Select a model with WithMobility:
//
//	net, _ := mobilenet.New(128*128, 64, mobilenet.WithMobility(mobilenet.LevyFlight(1.6, 0)))
//
// Every simulation a Network runs — Broadcast, Gossip, FrogBroadcast,
// CoverTime, Extinction — honours the configured model. ParseMobility
// converts CLI-style specs such as "levy:alpha=1.6,max=40"; cmd/mobisim
// exposes the same grammar as its -mobility flag.
//
// # Scenario specs
//
// A Scenario declares one simulation as plain data — engine (broadcast,
// gossip, frog, coverage, predator), arena, population, radius, seed,
// replicates, mobility and requested metrics — and runs through one shared
// dispatch path:
//
//	sc, _ := mobilenet.ParseScenario([]byte(`{"engine":"broadcast","nodes":16384,"agents":64,"seed":1}`))
//	res, _ := mobilenet.RunScenario(sc)
//	fmt.Println("T_B =", res.Reps[0].Steps)
//
// Scenarios canonicalise to a content hash (Scenario.Hash) usable as a
// cache key; cmd/mobiserved serves them over HTTP with hash-keyed result
// caching, returning payloads byte-identical to a local RunScenario call.
//
// The examples/ directory contains runnable scenarios (MANET radius sweeps,
// epidemic spreading, wildlife-tracking gossip, the Frog model, the
// cross-model mobility contrast in examples/levy), and the cmd/ directory
// ships the simulation and experiment CLIs.
package mobilenet
