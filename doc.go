// Package mobilenet is a simulator and analysis toolkit for information
// dissemination in sparse mobile networks, reproducing the system studied
// in "Tight Bounds on Information Dissemination in Sparse Mobile Networks"
// (Pettarin, Pietracaprina, Pucci, Upfal — PODC 2011, arXiv:1101.4609).
//
// # Model
//
// k agents perform independent lazy random walks on an n-node square grid:
// at each synchronized step an agent moves to each of its grid neighbours
// with probability 1/5 and stays put otherwise, which keeps the uniform
// placement stationary. Two agents are connected in the visibility graph
// G_t(r) when their Manhattan distance is at most the transmission radius
// r, and a rumor floods an entire connected component in one time step
// (radio propagation is much faster than motion).
//
// The paper proves that below the percolation radius r_c ≈ sqrt(n/k) the
// broadcast time is Θ̃(n/√k) for every transmission radius — surprisingly
// independent of r — and this module's experiment suite (E1-E17, see
// DESIGN.md and EXPERIMENTS.md) validates each theorem, lemma and
// corollary empirically.
//
// # Quick start
//
//	net, err := mobilenet.New(128*128, 64, mobilenet.WithSeed(42))
//	if err != nil { ... }
//	res, err := net.Broadcast()
//	fmt.Println("T_B =", res.Steps)
//
// The examples/ directory contains runnable scenarios (MANET radius sweeps,
// epidemic spreading, wildlife-tracking gossip, the Frog model), and the
// cmd/ directory ships the simulation and experiment CLIs.
package mobilenet
