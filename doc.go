// Package mobilenet is a simulator and analysis toolkit for information
// dissemination in sparse mobile networks, reproducing the system studied
// in "Tight Bounds on Information Dissemination in Sparse Mobile Networks"
// (Pettarin, Pietracaprina, Pucci, Upfal — PODC 2011, arXiv:1101.4609).
//
// # Model
//
// k agents perform independent lazy random walks on an n-node square grid:
// at each synchronized step an agent moves to each of its grid neighbours
// with probability 1/5 and stays put otherwise, which keeps the uniform
// placement stationary. Two agents are connected in the visibility graph
// G_t(r) when their Manhattan distance is at most the transmission radius
// r, and a rumor floods an entire connected component in one time step
// (radio propagation is much faster than motion).
//
// The paper proves that below the percolation radius r_c ≈ sqrt(n/k) the
// broadcast time is Θ̃(n/√k) for every transmission radius — surprisingly
// independent of r — and this module's experiment suite (E1-E17, described
// in EXPERIMENTS.md, with the architecture in DESIGN.md) validates each
// theorem, lemma and corollary empirically.
//
// # Quick start
//
//	net, err := mobilenet.New(128*128, 64, mobilenet.WithSeed(42))
//	if err != nil { ... }
//	res, err := net.Broadcast()
//	fmt.Println("T_B =", res.Steps)
//
// # Mobility models
//
// The motion law is pluggable. The default is the paper's lazy walk, and
// four alternatives ship with the module:
//
//   - LazyWalk: the paper's §2 kernel (default). The only model the
//     Θ̃(n/√k) bounds are proved for; reproduces pre-subsystem results
//     bit for bit under equal seeds.
//   - RandomWaypoint: repeatedly walk toward a uniform destination node,
//     resting on arrival. Occupancy is centre-biased (the classical
//     waypoint pathology), not uniform.
//   - LevyFlight: truncated power-law jumps with uniform headings, on the
//     torus; uniform occupancy stays exactly stationary.
//   - Ballistic: straight lattice lines with a per-tick turn-and-rest
//     probability, on the torus; uniform occupancy stays stationary.
//   - TraceReplay: replay a recorded trajectory (looping or truncating),
//     the bridge to empirical mobility datasets.
//
// Select a model with WithMobility:
//
//	net, _ := mobilenet.New(128*128, 64, mobilenet.WithMobility(mobilenet.LevyFlight(1.6, 0)))
//
// Every simulation a Network runs — Broadcast, Gossip, FrogBroadcast,
// CoverTime, Extinction — honours the configured model. ParseMobility
// converts CLI-style specs such as "levy:alpha=1.6,max=40"; cmd/mobisim
// exposes the same grammar as its -mobility flag.
//
// # Scenario specs
//
// A Scenario declares one simulation as plain data — engine (broadcast,
// gossip, frog, coverage, predator), arena, population, radius, seed,
// replicates, mobility and requested metrics — and runs through one shared
// dispatch path:
//
//	sc, _ := mobilenet.ParseScenario([]byte(`{"engine":"broadcast","nodes":16384,"agents":64,"seed":1}`))
//	res, _ := mobilenet.RunScenario(sc)
//	fmt.Println("T_B =", res.Reps[0].Steps)
//
// Scenarios canonicalise to a content hash (Scenario.Hash) usable as a
// cache key; cmd/mobiserved serves them over HTTP with hash-keyed result
// caching, returning payloads byte-identical to a local RunScenario call.
//
// # Parameter sweeps
//
// The paper's results are scaling laws, and a scaling law is measured as
// a sweep. A Sweep is a base Scenario plus axes — value lists or integer
// ranges over any numeric or enum scenario field, cartesian or zipped —
// that expands deterministically into canonical scenarios, runs them on
// a bounded pool with per-point statistics (mean/stddev/median/95% CI)
// and an optional log-log scaling-law fit, and hashes
// order-independently over the expanded point set:
//
//	sw, _ := mobilenet.ParseSweep([]byte(`{
//	  "base": {"engine":"broadcast","nodes":16384,"agents":8,"radius":0,"seed":1,"reps":12},
//	  "axes": [{"field":"agents","values":[8,32,128,512]}],
//	  "fit":  "agents"}`))
//	res, _ := mobilenet.RunSweep(sw)
//	fmt.Printf("T_B ~ k^%.2f\n", res.Fit.Alpha) // ≈ -0.5, the n/√k law
//
// The same JSON drives `mobisim -sweep` and the mobiserved POST
// /v1/sweeps batch endpoint, where every point is deduplicated against
// the hash-keyed result cache.
//
// # Package tree
//
// Public API (this package): mobilenet.go (Network, options, engines),
// scenario.go (Scenario specs), sweep.go (Sweep specs), observe.go
// (per-step observation: Observation, WithObservations, Series), doc.go.
//
// Commands:
//
//   - cmd/mobisim — single-run and sweep CLI (specs, tracing, profiling)
//   - cmd/mobiserved — the HTTP simulation service (runs + sweep batches)
//   - cmd/mobibench — closed-loop load generator for the service
//     (BENCH_load.json baseline)
//   - cmd/experiments, cmd/paperrepro — the E1–E17/X1–X8 validation suite
//   - cmd/percmap, cmd/tracecat — percolation maps, trace inspection
//   - cmd/doccheck — CI gate for godoc coverage and Markdown links
//
// Internal layers, substrate to surface:
//
//   - internal/grid, internal/rng, internal/walk — arena, deterministic
//     randomness, the §2 lazy-walk kernel
//   - internal/mobility — pluggable motion laws (lazy, waypoint, Lévy,
//     ballistic, trace replay)
//   - internal/agent, internal/visibility, internal/unionfind,
//     internal/bitset — populations and the CSR component labeller (the
//     per-step hot path)
//   - internal/core, internal/frog, internal/coverage,
//     internal/predator, internal/meeting, internal/barrier — the
//     dissemination engines and lemma probes
//   - internal/obs — the per-step observation pipeline: time-series
//     observables recorded with zero step-loop allocation, aggregated
//     across replicates, rendered as NDJSON/CSV
//   - internal/scenario — declarative specs, canonicalisation, content
//     hashes, the Runner registry
//   - internal/sweep — declarative parameter sweeps over scenarios
//   - internal/telemetry — dependency-free metrics kernel: atomic
//     counters, gauges, log-bucketed latency histograms, Prometheus
//     text exposition
//   - internal/simserve — worker pool, result cache, HTTP service,
//     request-lifecycle stage histograms
//   - internal/experiments, internal/stats, internal/tableio,
//     internal/plot, internal/theory — the validation suite and its
//     statistics, rendering and closed-form envelopes
//   - internal/percolation, internal/trace — phase structure, trajectory
//     format
//
// The examples/ directory contains runnable scenarios (MANET radius
// sweeps, epidemic spreading, wildlife-tracking gossip, the Frog model,
// the cross-model mobility contrast in examples/levy, the predator-prey
// fleet sweep) plus ready-to-run sweep specs under examples/sweeps.
package mobilenet
