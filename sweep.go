package mobilenet

import (
	"mobilenet/internal/scenario"
	"mobilenet/internal/sweep"
)

// SweepAxis varies one scenario field across a sweep. Exactly one of
// Values or the From/To/Step range must be given; see SweepFields for the
// sweepable field names.
type SweepAxis struct {
	// Field is the canonical JSON name of the scenario field to vary:
	// "engine", "mobility" (string-valued), or "nodes", "agents",
	// "radius", "seed", "source", "max_steps", "reps", "preys", "rumors"
	// (integer-valued).
	Field string `json:"field"`
	// Values lists the axis values explicitly: integers for numeric
	// fields, strings for enum fields.
	Values []any `json:"values,omitempty"`
	// From, To, Step describe an inclusive integer range as an
	// alternative to Values (numeric fields only; Step must be positive).
	From *int64 `json:"from,omitempty"`
	To   *int64 `json:"to,omitempty"`
	Step *int64 `json:"step,omitempty"`
}

// Sweep declares a parameter sweep: a base scenario plus the axes that
// vary it, expanded cartesian (default) or zipped ("zip"). Like
// scenarios, sweeps are plain data — the same JSON object drives
// RunSweep, `mobisim -sweep`, and the mobiserved POST /v1/sweeps
// endpoint — and the expanded point set canonicalises to an
// order-independent content hash (Sweep.Hash).
type Sweep struct {
	// Label is an optional human-readable name, ignored by hashing.
	Label string `json:"label,omitempty"`
	// Base is the scenario every point starts from. It is validated only
	// as part of the expanded points, so fields an axis always overrides
	// may be left zero.
	Base Scenario `json:"base"`
	// Axes lists the varied fields; at least one is required.
	Axes []SweepAxis `json:"axes"`
	// Mode selects how the axes combine: "cartesian" (default) or "zip".
	Mode string `json:"mode,omitempty"`
	// Fit optionally names a numeric axis to fit a log-log power law of
	// per-point median steps against — the scaling-law check the paper's
	// Θ̃ statements call for.
	Fit string `json:"fit,omitempty"`
}

// spec converts the public Sweep to the internal spec, field for field.
func (s Sweep) spec() sweep.Spec {
	axes := make([]sweep.Axis, len(s.Axes))
	for i, a := range s.Axes {
		axes[i] = sweep.Axis{Field: a.Field, Values: a.Values, From: a.From, To: a.To, Step: a.Step}
	}
	return sweep.Spec{Label: s.Label, Base: s.Base.spec(), Axes: axes, Mode: s.Mode, Fit: s.Fit}
}

func fromSweepSpec(sp sweep.Spec) Sweep {
	axes := make([]SweepAxis, len(sp.Axes))
	for i, a := range sp.Axes {
		axes[i] = SweepAxis{Field: a.Field, Values: a.Values, From: a.From, To: a.To, Step: a.Step}
	}
	return Sweep{Label: sp.Label, Base: fromSpec(sp.Base), Axes: axes, Mode: sp.Mode, Fit: sp.Fit}
}

// ParseSweep decodes a Sweep from JSON, rejecting unknown fields.
func ParseSweep(data []byte) (Sweep, error) {
	sp, err := sweep.Parse(data)
	if err != nil {
		return Sweep{}, err
	}
	return fromSweepSpec(sp), nil
}

// SweepFields returns the sweepable scenario field names, sorted.
func SweepFields() []string { return sweep.Fields() }

// Validate checks the sweep's structure (axes, modes, value types, point
// count) without running it.
func (s Sweep) Validate() error { return s.spec().Validate() }

// Hash expands the sweep and returns its content hash: the SHA-256 over
// the sorted set of point content hashes, so the same grid of
// simulations declared with axes in a different order hashes identically.
func (s Sweep) Hash() (string, error) { return s.spec().Hash() }

// SweepAggregate summarises the Steps measurement across one sweep
// point's replicates.
type SweepAggregate struct {
	// Reps is the replicate count.
	Reps int `json:"reps"`
	// Mean and StdDev are the sample mean and standard deviation.
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	// Median is the sample median (the statistic scaling-law fits use).
	Median float64 `json:"median"`
	// CILow and CIHigh bound the Student-t 95% confidence interval of the
	// mean.
	CILow  float64 `json:"ci95_low"`
	CIHigh float64 `json:"ci95_high"`
	// Min and Max are the sample extremes.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// SweepFit is the optional log-log power-law fit of per-point median
// steps against the numeric axis named by Sweep.Fit.
type SweepFit struct {
	// Axis is the fitted axis field.
	Axis string `json:"axis"`
	// Alpha is the exponent (the log-log slope) and C the multiplicative
	// constant of median ≈ C * axis^Alpha.
	Alpha float64 `json:"alpha"`
	C     float64 `json:"c"`
	// AlphaErr is the standard error of the slope, R2 the coefficient of
	// determination in log space, N the number of fitted points.
	AlphaErr float64 `json:"alpha_err"`
	R2       float64 `json:"r2"`
	N        int     `json:"n"`
}

// SweepPoint is one expanded, executed sweep coordinate.
type SweepPoint struct {
	// Index is the point's position in expansion order.
	Index int `json:"index"`
	// Values holds the axis values in axis order.
	Values []any `json:"values"`
	// Scenario is the point's canonical scenario.
	Scenario Scenario `json:"spec"`
	// Hash is the point's scenario content hash (the result-cache key).
	Hash string `json:"hash"`
	// Steps summarises the Steps measurement across replicates.
	Steps SweepAggregate `json:"steps"`
	// AllCompleted reports whether every replicate finished under the cap.
	AllCompleted bool `json:"all_completed"`
	// Result is the point's full scenario result — byte-identical, once
	// encoded, to a RunScenario call or a mobiserved payload for the
	// same point.
	Result *ScenarioResult `json:"result"`
}

// SweepResult is the outcome of a sweep: every point in expansion order
// plus the sweep-level aggregates. Its JSON encoding matches the
// mobiserved sweep result payload field for field.
type SweepResult struct {
	// Label echoes the sweep's label.
	Label string `json:"label,omitempty"`
	// Hash is the sweep content hash.
	Hash string `json:"hash"`
	// AxisFields names the axis columns, in axis order.
	AxisFields []string `json:"axis_fields"`
	// Points holds the per-point results in expansion order.
	Points []SweepPoint `json:"points"`
	// Fit is the optional scaling-law fit; nil unless the sweep asked.
	Fit *SweepFit `json:"fit,omitempty"`
}

// RunSweep validates, expands and executes a sweep through the shared
// engine dispatch: every distinct point runs once on a bounded worker
// pool (duplicate points share a result, the in-process analogue of the
// service's hash-keyed cache), a failing point cancels remaining
// dispatch and surfaces the lowest-indexed point's error, and per-point
// replicate statistics are aggregated. The same sweep submitted to a
// mobiserved instance produces byte-identical per-point results.
func RunSweep(s Sweep) (*SweepResult, error) {
	res, err := sweep.Run(s.spec(), sweep.Options{})
	if err != nil {
		return nil, err
	}
	return fromSweepResult(res), nil
}

func fromSweepResult(res *sweep.Result) *SweepResult {
	out := &SweepResult{
		Label:      res.Label,
		Hash:       res.Hash,
		AxisFields: res.AxisFields,
		Points:     make([]SweepPoint, len(res.Points)),
	}
	if res.Fit != nil {
		out.Fit = &SweepFit{Axis: res.Fit.Axis, Alpha: res.Fit.Alpha, C: res.Fit.C,
			AlphaErr: res.Fit.AlphaErr, R2: res.Fit.R2, N: res.Fit.N}
	}
	for i, p := range res.Points {
		out.Points[i] = SweepPoint{
			Index:    p.Index,
			Values:   p.Values,
			Scenario: fromSpec(p.Spec),
			Hash:     p.Hash,
			Steps: SweepAggregate{Reps: p.Steps.Reps, Mean: p.Steps.Mean, StdDev: p.Steps.StdDev,
				Median: p.Steps.Median, CILow: p.Steps.CILow, CIHigh: p.Steps.CIHigh,
				Min: p.Steps.Min, Max: p.Steps.Max},
			AllCompleted: p.AllCompleted,
			Result:       fromScenarioResult(p.Result),
		}
	}
	return out
}

// fromScenarioResult converts an internal scenario result to the public
// mirror, field for field.
func fromScenarioResult(res *scenario.Result) *ScenarioResult {
	out := &ScenarioResult{
		Engine:       res.Engine,
		Hash:         res.Hash,
		Reps:         make([]ScenarioRep, len(res.Reps)),
		MeanSteps:    res.MeanSteps,
		AllCompleted: res.AllCompleted,
		Series:       fromAggSeries(res.Series),
		Phases:       fromBreakdown(res.Phases),
	}
	for i, r := range res.Reps {
		out.Reps[i] = ScenarioRep{
			Seed:          r.Seed,
			Steps:         r.Steps,
			Completed:     r.Completed,
			Source:        r.Source,
			CoverageSteps: r.CoverageSteps,
			Covered:       r.Covered,
			Survivors:     r.Survivors,
			Curve:         r.Curve,
			Series:        fromSeriesSet(r.Series),
			Phases:        fromBreakdown(r.Phases),
		}
	}
	return out
}
