package mobilenet

import (
	"bytes"
	"strings"
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/trace"
)

// TestDefaultModelMatchesSeedImplementation pins, under fixed seeds, the
// exact results the simulator produced before motion was extracted into the
// mobility subsystem (values captured from the seed implementation). The
// default lazy-walk model must keep reproducing them bit for bit; any drift
// here means the refactored stepping path consumes randomness differently.
func TestDefaultModelMatchesSeedImplementation(t *testing.T) {
	t.Parallel()

	t.Run("broadcast", func(t *testing.T) {
		t.Parallel()
		cases := []struct {
			n, k, r                   int
			seed                      uint64
			steps, coverage, curveSum int
		}{
			{32 * 32, 16, 0, 42, 1064, 1823, 8727},
			{24 * 24, 12, 2, 7, 160, 1157, 1031},
			{20 * 20, 8, 1, 3, 245, 1394, 1176},
		}
		for _, c := range cases {
			nw, err := New(c.n, c.k, WithSeed(c.seed), WithRadius(c.r))
			if err != nil {
				t.Fatal(err)
			}
			res, err := nw.Broadcast()
			if err != nil {
				t.Fatal(err)
			}
			sum := 0
			for _, v := range res.InformedCurve {
				sum += v
			}
			if !res.Completed || res.Steps != c.steps || res.CoverageSteps != c.coverage || sum != c.curveSum {
				t.Errorf("n=%d k=%d r=%d seed=%d: steps=%d cov=%d curveSum=%d completed=%v, want %d/%d/%d",
					c.n, c.k, c.r, c.seed, res.Steps, res.CoverageSteps, sum, res.Completed,
					c.steps, c.coverage, c.curveSum)
			}
		}
	})

	t.Run("gossip", func(t *testing.T) {
		t.Parallel()
		cases := []struct {
			n, k, r int
			seed    uint64
			steps   int
		}{
			{20 * 20, 8, 1, 3, 317},
			{16 * 16, 6, 0, 11, 677},
		}
		for _, c := range cases {
			nw, err := New(c.n, c.k, WithSeed(c.seed), WithRadius(c.r))
			if err != nil {
				t.Fatal(err)
			}
			res, err := nw.Gossip()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed || res.Steps != c.steps {
				t.Errorf("n=%d k=%d r=%d seed=%d: steps=%d completed=%v, want %d",
					c.n, c.k, c.r, c.seed, res.Steps, res.Completed, c.steps)
			}
		}
	})

	t.Run("engines", func(t *testing.T) {
		t.Parallel()
		nw, err := New(16*16, 8, WithSeed(13))
		if err != nil {
			t.Fatal(err)
		}
		fr, err := nw.FrogBroadcast()
		if err != nil {
			t.Fatal(err)
		}
		if !fr.Completed || fr.Steps != 861 {
			t.Errorf("frog: steps=%d completed=%v, want 861", fr.Steps, fr.Completed)
		}
		cv, err := nw.CoverTime()
		if err != nil {
			t.Fatal(err)
		}
		if !cv.Completed || cv.Steps != 698 {
			t.Errorf("cover: steps=%d completed=%v, want 698", cv.Steps, cv.Completed)
		}
		ex, err := nw.Extinction(5)
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Completed || ex.Steps != 137 {
			t.Errorf("extinction: steps=%d completed=%v, want 137", ex.Steps, ex.Completed)
		}
	})
}

// TestWithMobilitySelectsModels drives a small broadcast under every
// stochastic model through the public API; all must complete and the
// explicit lazy walk must equal the default.
func TestWithMobilitySelectsModels(t *testing.T) {
	t.Parallel()
	models := map[string]Mobility{
		"lazy":      LazyWalk(),
		"waypoint":  RandomWaypoint(1),
		"levy":      LevyFlight(1.6, 8),
		"ballistic": Ballistic(0.1),
	}
	results := make(map[string]int)
	for name, m := range models {
		nw, err := New(20*20, 10, WithSeed(9), WithRadius(1), WithMobility(m))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := nw.Mobility().String(); got != name {
			t.Errorf("Mobility() = %q, want %q", got, name)
		}
		res, err := nw.Broadcast()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed {
			t.Fatalf("%s: broadcast incomplete after %d steps", name, res.Steps)
		}
		results[name] = res.Steps
	}

	def, err := New(20*20, 10, WithSeed(9), WithRadius(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := def.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != results["lazy"] {
		t.Errorf("explicit LazyWalk (%d steps) differs from default (%d steps)", results["lazy"], res.Steps)
	}
	if def.Mobility().String() != "lazy" {
		t.Errorf("default Mobility() = %q, want lazy", def.Mobility().String())
	}
}

// TestTraceReplayThroughPublicAPI runs a broadcast whose motion replays a
// serialised trace supplied through the io.Reader-based public constructor.
func TestTraceReplayThroughPublicAPI(t *testing.T) {
	t.Parallel()
	const side, k = 14, 8

	// Build a looping trace with deterministic sweeps and serialise it to
	// the wire format the public API accepts.
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(i % side), Y: int32((i * 3) % side)}
	}
	rec, err := trace.NewRecorder(side, pos)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 300; s++ {
		for i := range pos {
			// A deterministic tour: sweep each agent across its row.
			if (s/side)%2 == 0 {
				pos[i].X = (pos[i].X + 1) % int32(side)
				if pos[i].X == 0 { // wrap would be a jump; step back instead
					pos[i].X = int32(side) - 1
				}
			} else {
				if pos[i].X > 0 {
					pos[i].X--
				}
			}
		}
		if err := rec.Record(pos); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := rec.Trace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	mob, err := TraceReplay(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if mob.String() != "trace" {
		t.Errorf("trace mobility String() = %q", mob.String())
	}
	replayNet, err := New(side*side, k, WithSeed(1), WithRadius(2), WithMobility(mob), WithMaxSteps(5000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := replayNet.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	// Horizontal sweeps never change Y, so agents on different rows meet
	// only within the radius; with these synthetic rows the run must at
	// least progress deterministically: re-running reproduces it exactly.
	res2, err := replayNet.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != res2.Steps || res.Completed != res2.Completed {
		t.Errorf("trace replay not deterministic: %+v vs %+v", res, res2)
	}

	if _, err := TraceReplay(strings.NewReader("garbage"), false); err == nil {
		t.Error("corrupt trace accepted")
	}
}

// TestParseMobilityPublic exercises the public spec parser.
func TestParseMobilityPublic(t *testing.T) {
	t.Parallel()
	for _, spec := range []string{"lazy", "waypoint:pause=2", "levy:alpha=1.8", "ballistic:turn=0.2"} {
		m, err := ParseMobility(spec)
		if err != nil {
			t.Errorf("ParseMobility(%q): %v", spec, err)
			continue
		}
		want, _, _ := strings.Cut(spec, ":")
		if m.String() != want {
			t.Errorf("ParseMobility(%q).String() = %q", spec, m.String())
		}
	}
	if _, err := ParseMobility("warp"); err == nil {
		t.Error("unknown model accepted")
	}
}
