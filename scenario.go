package mobilenet

import (
	"io"

	"mobilenet/internal/prof"
	"mobilenet/internal/scenario"
)

// Scenario declares one simulation as plain data: the engine, the arena,
// the population, the dissemination parameters and the requested metrics.
// It is the single source of truth for "what is a simulation" — the same
// spec drives RunScenario here, cmd/mobisim, and the mobiserved HTTP
// service, and canonicalises to a content hash usable as a cache key.
// Zero-valued optional fields select engine defaults; the minimal useful
// spec is just Engine, Nodes and Agents.
type Scenario struct {
	// Label is an optional human-readable name, ignored by hashing.
	Label string `json:"label,omitempty"`
	// Engine is one of "broadcast", "gossip", "frog", "coverage",
	// "predator" (see ScenarioEngines).
	Engine string `json:"engine"`
	// Nodes is the grid size n, rounded up to the next perfect square.
	Nodes int `json:"nodes"`
	// Agents is the population size k.
	Agents int `json:"agents"`
	// Radius is the transmission (or capture) radius in Manhattan distance.
	Radius int `json:"radius"`
	// Seed drives all randomness; replicate r runs under a seed derived
	// from it by position (replicate 0 runs under Seed itself).
	Seed uint64 `json:"seed"`
	// Source is the initially informed/active agent for broadcast and
	// frog; RandomSource picks uniformly.
	Source int `json:"source,omitempty"`
	// MaxSteps caps the run; 0 selects the engine's theory-derived default.
	MaxSteps int `json:"max_steps,omitempty"`
	// Reps is the replicate count; 0 selects 1.
	Reps int `json:"reps,omitempty"`
	// Preys is the prey count for the predator engine; 0 selects Agents.
	Preys int `json:"preys,omitempty"`
	// Rumors is the distinct-rumor count for gossip; 0 selects the
	// classical all-to-all.
	Rumors int `json:"rumors,omitempty"`
	// Mobility is a ParseMobility spec string; empty selects the lazy walk.
	Mobility string `json:"mobility,omitempty"`
	// Metrics requests extra measurements: "curve" (per-step progress) and
	// "coverage" (broadcast coverage time T_C).
	Metrics []string `json:"metrics,omitempty"`
	// Observe requests per-step time-series observables (see Observation).
	// The engine's supported subset is recorded per replicate and
	// aggregated across replicates into ScenarioResult.Series. Unlike
	// Parallelism, the observe block IS part of the content hash: the
	// recorded series change the result payload.
	Observe *Observation `json:"observe,omitempty"`
	// Parallelism sets the component labeller's worker count for engines
	// that rebuild visibility components each step (broadcast, gossip,
	// frog): 0 selects the automatic policy, 1 forces sequential. Like
	// Label it never affects results or the content hash; it only governs
	// how a library or CLI run executes. The mobiserved service ignores
	// it: its worker pool already fans replicates across every core, so
	// each replicate labels sequentially there.
	Parallelism int `json:"parallelism,omitempty"`
	// Profile enables per-replicate step-phase profiling: every replicate
	// reports a wall-clock breakdown over the fixed phase vocabulary
	// (move, index, label, spread, observe) in ScenarioRep.Phases, and the
	// result aggregates them in ScenarioResult.Phases. Like Parallelism it
	// is execution-only: outcomes are identical either way, profiling adds
	// only a few clock reads per step, and the flag never affects the
	// content hash.
	Profile bool `json:"profile,omitempty"`
}

// spec converts the public Scenario to the internal spec, field for field.
func (s Scenario) spec() scenario.Spec {
	sp := scenario.Spec{
		Label:       s.Label,
		Engine:      s.Engine,
		Nodes:       s.Nodes,
		Agents:      s.Agents,
		Radius:      s.Radius,
		Seed:        s.Seed,
		Source:      s.Source,
		MaxSteps:    s.MaxSteps,
		Reps:        s.Reps,
		Preys:       s.Preys,
		Rumors:      s.Rumors,
		Mobility:    s.Mobility,
		Metrics:     s.Metrics,
		Parallelism: s.Parallelism,
		Profile:     s.Profile,
	}
	if s.Observe != nil {
		sp.Observe = s.Observe.spec()
	}
	return sp
}

func fromSpec(sp scenario.Spec) Scenario {
	return Scenario{
		Label:       sp.Label,
		Engine:      sp.Engine,
		Nodes:       sp.Nodes,
		Agents:      sp.Agents,
		Radius:      sp.Radius,
		Seed:        sp.Seed,
		Source:      sp.Source,
		MaxSteps:    sp.MaxSteps,
		Reps:        sp.Reps,
		Preys:       sp.Preys,
		Rumors:      sp.Rumors,
		Mobility:    sp.Mobility,
		Metrics:     sp.Metrics,
		Observe:     fromObsSpec(sp.Observe),
		Parallelism: sp.Parallelism,
		Profile:     sp.Profile,
	}
}

// ParseScenario decodes a Scenario from JSON, rejecting unknown fields.
func ParseScenario(data []byte) (Scenario, error) {
	sp, err := scenario.Parse(data)
	if err != nil {
		return Scenario{}, err
	}
	return fromSpec(sp), nil
}

// ScenarioEngines returns the available engine names, sorted.
func ScenarioEngines() []string { return scenario.Engines() }

// Validate checks the scenario without running it.
func (s Scenario) Validate() error { return s.spec().Validate() }

// Canonical returns the scenario's canonical form: defaults resolved,
// engine-irrelevant fields zeroed, metrics normalised. Two scenarios that
// describe the same simulation canonicalise identically.
func (s Scenario) Canonical() (Scenario, error) {
	c, err := s.spec().Canonical()
	if err != nil {
		return Scenario{}, err
	}
	return fromSpec(c), nil
}

// Hash returns the scenario's canonical content hash — the key mobiserved
// caches results under. Equal hashes mean equal simulations.
func (s Scenario) Hash() (string, error) { return s.spec().Hash() }

// ScenarioRep is the outcome of one scenario replicate. Fields an engine
// does not produce hold their zero value (CoverageSteps is -1 when not
// measured).
type ScenarioRep struct {
	// Seed is the seed this replicate ran under.
	Seed uint64 `json:"seed"`
	// Steps is the engine's primary time measurement (T_B, T_G, the frog
	// broadcast time, the cover time or the extinction time).
	Steps int `json:"steps"`
	// Completed is false when the step cap ended the run first.
	Completed bool `json:"completed"`
	// Source is the realised source agent (broadcast, frog).
	Source int `json:"source"`
	// CoverageSteps is T_C under the "coverage" metric, else -1.
	CoverageSteps int `json:"coverage_steps"`
	// Covered is the covered-node count (coverage engine).
	Covered int `json:"covered"`
	// Survivors is the surviving-prey count (predator engine).
	Survivors int `json:"survivors"`
	// Curve is the per-step progress curve under the "curve" metric.
	Curve []int `json:"curve,omitempty"`
	// Series holds this replicate's observed time series under the
	// scenario's observe block; nil when nothing was observed.
	Series *RepSeries `json:"series,omitempty"`
	// Phases is this replicate's step-phase wall-clock breakdown under
	// Scenario.Profile; nil when profiling was off.
	Phases *PhaseBreakdown `json:"phases,omitempty"`
}

// PhaseBreakdown reports where a run's step time went, split over the fixed
// phase vocabulary: "move" (motion stepping), "index" (spatial-index
// build), "label" (connectivity resolution), "spread" (information
// propagation) and "observe" (measurement). Only phases with nonzero time
// appear; timings are wall-clock measurements of the executing machine, not
// simulation outcomes.
type PhaseBreakdown struct {
	// Steps is the number of profiled steps the breakdown covers.
	Steps int `json:"steps"`
	// Seconds maps phase name to accumulated wall-clock seconds.
	Seconds map[string]float64 `json:"seconds"`
	// Fractions maps phase name to its share of the profiled total.
	Fractions map[string]float64 `json:"fractions,omitempty"`
}

// fromBreakdown converts the internal breakdown to its public mirror.
func fromBreakdown(b *prof.Breakdown) *PhaseBreakdown {
	if b == nil {
		return nil
	}
	return &PhaseBreakdown{Steps: b.Steps, Seconds: b.Seconds, Fractions: b.Fractions}
}

// ScenarioResult is the uniform outcome of a scenario run: every replicate
// in replicate order plus summary statistics. It is a deterministic
// function of the canonical scenario.
type ScenarioResult struct {
	// Engine is the canonical engine name.
	Engine string `json:"engine"`
	// Hash is the canonical content hash of the scenario.
	Hash string `json:"hash"`
	// Reps holds the replicate outcomes in replicate order.
	Reps []ScenarioRep `json:"reps"`
	// MeanSteps is the mean of Steps over all replicates.
	MeanSteps float64 `json:"mean_steps"`
	// AllCompleted reports whether every replicate finished under the cap.
	AllCompleted bool `json:"all_completed"`
	// Series aggregates the replicates' observed time series per
	// observable; nil when the scenario observed nothing. Render with
	// WriteSeriesNDJSON for the canonical wire form.
	Series []Series `json:"series,omitempty"`
	// Phases merges the replicates' step-phase breakdowns under
	// Scenario.Profile; nil when profiling was off.
	Phases *PhaseBreakdown `json:"phases,omitempty"`
}

// RunScenario validates, canonicalises and executes a scenario through the
// shared engine dispatch — the same path cmd/mobisim and the mobiserved
// service use, so a library run reproduces a service run bit for bit.
func RunScenario(s Scenario) (*ScenarioResult, error) {
	res, err := scenario.Run(s.spec())
	if err != nil {
		return nil, err
	}
	return fromScenarioResult(res), nil
}

// ExecTrace is the execution trace of a scenario run: one span per
// replicate (annotated with its step-phase breakdown when the scenario
// profiled), on a shared timeline starting at the run's submission.
// Traces record wall-clock facts about one execution of this machine —
// they are observability artifacts, never part of the result.
type ExecTrace struct {
	tr *prof.Trace
}

// WriteChromeTrace writes the trace in the Chrome trace-event JSON format,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *ExecTrace) WriteChromeTrace(w io.Writer) error { return t.tr.WriteChromeTrace(w) }

// RunScenarioTraced is RunScenario recording an execution trace: per-
// replicate spans with wall-clock timings, plus the per-phase split when
// s.Profile is set. The result is identical to an untraced run.
func RunScenarioTraced(s Scenario) (*ScenarioResult, *ExecTrace, error) {
	tr := prof.NewTrace()
	res, err := scenario.RunWithTrace(s.spec(), tr)
	if err != nil {
		return nil, nil, err
	}
	return fromScenarioResult(res), &ExecTrace{tr: tr}, nil
}
