package mobilenet

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(0, 4); err == nil {
		t.Error("nodes=0 accepted")
	}
	if _, err := New(100, 0); err == nil {
		t.Error("agents=0 accepted")
	}
	if _, err := New(100, 4, WithRadius(-1)); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := New(100, 4, WithMaxSteps(-1)); err == nil {
		t.Error("negative cap accepted")
	}
	if _, err := New(100, 4, WithSource(-5)); err == nil {
		t.Error("invalid source accepted")
	}
	if _, err := New(100, 4, WithSource(4)); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := New(100, 4, WithSource(RandomSource)); err != nil {
		t.Errorf("RandomSource rejected: %v", err)
	}
}

func TestNewRoundsUpToSquare(t *testing.T) {
	t.Parallel()
	nw, err := New(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Nodes() != 100 || nw.Side() != 10 {
		t.Errorf("Nodes=%d Side=%d", nw.Nodes(), nw.Side())
	}
	nw2, err := New(101, 8)
	if err != nil {
		t.Fatal(err)
	}
	if nw2.Nodes() != 121 || nw2.Side() != 11 {
		t.Errorf("non-square request: Nodes=%d Side=%d, want 121/11", nw2.Nodes(), nw2.Side())
	}
}

func TestAccessors(t *testing.T) {
	t.Parallel()
	nw, err := New(64*64, 16, WithRadius(3))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Agents() != 16 || nw.Radius() != 3 {
		t.Errorf("Agents=%d Radius=%d", nw.Agents(), nw.Radius())
	}
	rc := nw.PercolationRadius()
	if want := math.Sqrt(4096.0 / 16); rc != want {
		t.Errorf("PercolationRadius = %v, want %v", rc, want)
	}
	if !nw.Subcritical() {
		t.Error("r=3 < rc=16 should be subcritical")
	}
	if scale := nw.ExpectedBroadcastScale(); scale != 1024 {
		t.Errorf("ExpectedBroadcastScale = %v, want 1024", scale)
	}
	sup, err := New(64*64, 16, WithRadius(17))
	if err != nil {
		t.Fatal(err)
	}
	if sup.Subcritical() {
		t.Error("r=17 > rc=16 should be supercritical")
	}
}

func TestBroadcastEndToEnd(t *testing.T) {
	t.Parallel()
	nw, err := New(16*16, 8, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("broadcast incomplete: %+v", res)
	}
	if len(res.InformedCurve) != res.Steps+1 {
		t.Errorf("curve length %d, steps %d", len(res.InformedCurve), res.Steps)
	}
	if res.InformedCurve[len(res.InformedCurve)-1] != 8 {
		t.Error("curve does not end with everyone informed")
	}
	if res.Source != 0 {
		t.Errorf("default source = %d, want 0", res.Source)
	}
}

func TestBroadcastDeterministicAndSeedSensitive(t *testing.T) {
	t.Parallel()
	run := func(seed uint64) BroadcastResult {
		nw, err := New(20*20, 6, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Broadcast()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a1, a2 := run(5), run(5)
	if a1.Steps != a2.Steps {
		t.Error("same seed, different T_B")
	}
	// Different seeds nearly always differ; tolerate the rare coincidence
	// by checking a couple of seeds.
	if run(6).Steps == a1.Steps && run(7).Steps == a1.Steps {
		t.Error("three different seeds all matched; randomness suspicious")
	}
}

func TestGossipEndToEnd(t *testing.T) {
	t.Parallel()
	nw, err := New(12*12, 5, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Gossip()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("gossip incomplete: %+v", res)
	}
}

func TestGossipPartialEndToEnd(t *testing.T) {
	t.Parallel()
	nw, err := New(12*12, 6, WithSeed(37))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.GossipPartial(2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("partial gossip incomplete: %+v", res)
	}
	if _, err := nw.GossipPartial(7); err == nil {
		t.Error("rumors > k accepted")
	}
	if _, err := nw.GossipPartial(-1); err == nil {
		t.Error("negative rumors accepted")
	}
}

func TestFrogBroadcastEndToEnd(t *testing.T) {
	t.Parallel()
	nw, err := New(12*12, 5, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.FrogBroadcast()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("frog broadcast incomplete: %+v", res)
	}
	if res.CoverageSteps != -1 {
		t.Errorf("frog coverage = %d, want -1 (not tracked)", res.CoverageSteps)
	}
}

func TestCoverTimeEndToEnd(t *testing.T) {
	t.Parallel()
	nw, err := New(8*8, 4, WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.CoverTime()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Covered != 64 {
		t.Fatalf("cover time: %+v", res)
	}
}

func TestExtinctionEndToEnd(t *testing.T) {
	t.Parallel()
	nw, err := New(10*10, 6, WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Extinction(4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Survivors != 0 {
		t.Fatalf("extinction: %+v", res)
	}
	if _, err := nw.Extinction(0); err == nil {
		t.Error("preys=0 accepted")
	}
}

func TestCensus(t *testing.T) {
	t.Parallel()
	nw, err := New(32*32, 64, WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	// Radius 0: components are tiny. Radius = diameter: one component.
	c0, err := nw.Census(0)
	if err != nil {
		t.Fatal(err)
	}
	if c0.Components < 32 || c0.MaxSize > 8 {
		t.Errorf("r=0 census implausible: %+v", c0)
	}
	cAll, err := nw.Census(2 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if cAll.Components != 1 || cAll.GiantFraction != 1 {
		t.Errorf("full-radius census: %+v", cAll)
	}
	if _, err := nw.Census(-1); err == nil {
		t.Error("negative census radius accepted")
	}
}

func TestCensusMatchesSimulationPlacement(t *testing.T) {
	t.Parallel()
	// The census and a broadcast with the same seed see the same initial
	// population, so a grid-spanning radius census must agree with the
	// instant-broadcast observation.
	nw, err := New(16*16, 10, WithSeed(29), WithRadius(30))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 {
		t.Fatalf("radius 30 on 16x16 grid should broadcast instantly, got %d", res.Steps)
	}
	c, err := nw.Census(30)
	if err != nil {
		t.Fatal(err)
	}
	if c.Components != 1 {
		t.Fatalf("census disagrees with simulation: %+v", c)
	}
}

func TestMaxStepsOption(t *testing.T) {
	t.Parallel()
	nw, err := New(64*64, 2, WithSeed(31), WithMaxSteps(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Skip("improbable instant completion")
	}
	if res.Steps > 2 {
		t.Errorf("cap exceeded: %d steps", res.Steps)
	}
}

func TestBroadcastWithObstacles(t *testing.T) {
	t.Parallel()
	nw, err := New(16*16, 8, WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	open, err := nw.BroadcastWithObstacles(OpenDomain)
	if err != nil {
		t.Fatal(err)
	}
	if !open.Completed {
		t.Fatalf("open-domain obstacle broadcast incomplete: %+v", open)
	}
	walled, err := nw.BroadcastWithObstacles(Obstacles{WallColumn: 8, WallGap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !walled.Completed {
		t.Fatalf("walled broadcast incomplete: %+v", walled)
	}
	if _, err := nw.BroadcastWithObstacles(Obstacles{WallColumn: 99, WallGap: 2}); err == nil {
		t.Error("off-grid wall accepted")
	}
	if _, err := nw.BroadcastWithObstacles(Obstacles{WallColumn: -1, Density: 1.5}); err == nil {
		t.Error("invalid density accepted")
	}
}

func TestObstaclesNone(t *testing.T) {
	t.Parallel()
	if !OpenDomain.None() {
		t.Error("OpenDomain.None() = false")
	}
	if (Obstacles{WallColumn: 3}).None() {
		t.Error("walled spec reported None")
	}
	if (Obstacles{WallColumn: -1, Density: 0.1}).None() {
		t.Error("obstacle spec reported None")
	}
}

func TestFloorRadius(t *testing.T) {
	t.Parallel()
	if FloorRadius(3.7) != 3 {
		t.Error("FloorRadius(3.7) != 3")
	}
	if FloorRadius(-1) != -1 {
		t.Error("FloorRadius(-1) != -1")
	}
}
