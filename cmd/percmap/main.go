// Command percmap explores the percolation structure of the visibility
// graph: it sweeps the transmission radius through the critical point
// r_c ≈ sqrt(n/k) and prints the component census plus an ASCII occupancy
// map of the largest component.
//
// Usage:
//
//	percmap -n 4096 -k 256 -reps 8
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"

	"mobilenet/internal/agent"
	"mobilenet/internal/grid"
	"mobilenet/internal/percolation"
	"mobilenet/internal/rng"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
	"mobilenet/internal/visibility"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "percmap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("percmap", flag.ContinueOnError)
	var (
		n    = fs.Int("n", 4096, "number of grid nodes")
		k    = fs.Int("k", 256, "number of agents")
		reps = fs.Int("reps", 8, "replicates per radius")
		seed = fs.Uint64("seed", 1, "randomness seed")
		view = fs.Float64("view", 1.0, "radius (in units of r_c) for the ASCII component map")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := grid.FromNodes(*n)
	if err != nil {
		return err
	}
	rc := theory.PercolationRadius(g.N(), *k)
	fmt.Printf("grid %dx%d (n=%d), k=%d, r_c = %.2f\n\n", g.Side(), g.Side(), g.N(), *k, rc)

	var radii []int
	seen := map[int]bool{}
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0} {
		r := int(math.Round(f * rc))
		if !seen[r] {
			seen[r] = true
			radii = append(radii, r)
		}
	}
	sweep := percolation.Sweep{Grid: g, K: *k, Radii: radii, Replicates: *reps, Seed: *seed}
	rows, err := sweep.Run()
	if err != nil {
		return err
	}
	table := tableio.NewTable("Component census vs radius",
		"r", "r/r_c", "mean max comp", "giant fraction", "mean #components", "mean isolated")
	for _, row := range rows {
		table.AddRow(row.Radius, float64(row.Radius)/rc, row.MeanMaxSize,
			row.MeanGiantFraction, row.MeanComponents, row.MeanIsolated)
	}
	if err := table.WriteText(os.Stdout); err != nil {
		return err
	}

	// ASCII map of one placement at the requested view radius.
	viewR := int(math.Round(*view * rc))
	fmt.Printf("\ncomponent map at r = %d (%.2f r_c): '#' largest component, 'o' other agents\n\n", viewR, *view)
	return printMap(g, *k, viewR, *seed)
}

func printMap(g *grid.Grid, k, radius int, seed uint64) error {
	pop, err := agent.New(g, k, rng.New(seed))
	if err != nil {
		return err
	}
	lab := visibility.NewLabeller(k)
	labels, count := lab.Components(pop.Positions(), radius)
	sizes := visibility.Sizes(labels, count, nil)
	largest := int32(0)
	for l, s := range sizes {
		if s > sizes[largest] {
			largest = int32(l)
		}
	}
	// Downsample the grid to at most 64x64 character cells.
	cell := g.Side() / 64
	if cell < 1 {
		cell = 1
	}
	w := (g.Side() + cell - 1) / cell
	rows := make([][]byte, w)
	for i := range rows {
		rows[i] = bytes.Repeat([]byte{'.'}, w)
	}
	for i, p := range pop.Positions() {
		cx, cy := int(p.X)/cell, int(p.Y)/cell
		glyph := byte('o')
		if labels[i] == largest && sizes[largest] > 1 {
			glyph = '#'
		}
		if rows[cy][cx] != '#' { // largest-component marks win
			rows[cy][cx] = glyph
		}
	}
	for _, r := range rows {
		fmt.Println(string(r))
	}
	fmt.Printf("\nlargest component: %d/%d agents in %d components\n", sizes[largest], k, count)
	return nil
}
