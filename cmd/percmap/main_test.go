package main

import "testing"

func TestRunDefaultsSmall(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-n", "256", "-k", "32", "-reps", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomView(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-n", "256", "-k", "16", "-reps", "1", "-view", "2.0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-n", "0"}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
