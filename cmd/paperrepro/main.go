// Command paperrepro runs the complete validation suite E1-E17 at full
// scale and regenerates the Markdown experiment report quoted in
// EXPERIMENTS.md, plus per-experiment CSVs and SVG figures.
//
// Usage:
//
//	paperrepro -out results/ [-scale 1.0] [-seed 1]
//
// Expect a few minutes of CPU time at full scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mobilenet/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	var (
		outDir = fs.String("out", "results", "output directory")
		scale  = fs.Float64("scale", 1.0, "problem-size scale in (0,1]")
		reps   = fs.Int("reps", 0, "replicates per point (0 = defaults)")
		seed   = fs.Uint64("seed", 1, "master seed")
		quiet  = fs.Bool("q", false, "suppress progress logging")
		ext    = fs.Bool("ext", true, "also run the extension suite X1-X3")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	report, err := os.Create(filepath.Join(*outDir, "report.md"))
	if err != nil {
		return err
	}
	defer report.Close()

	fmt.Fprintf(report, "# Paper reproduction report\n\n")
	fmt.Fprintf(report, "Suite run at scale %.2f, seed %d, %s.\n\n", *scale, *seed,
		time.Now().Format("2006-01-02 15:04"))

	params := experiments.Params{Scale: *scale, Reps: *reps, Seed: *seed}
	if !*quiet {
		params.Log = os.Stderr
	}

	suite := experiments.All()
	if *ext {
		suite = append(suite, experiments.Extensions()...)
	}
	summary := make([]string, 0, len(suite))
	failures := 0
	for _, e := range suite {
		start := time.Now()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "--- running %s: %s\n", e.ID, e.Title)
		}
		res, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := res.WriteMarkdown(report); err != nil {
			return err
		}
		if err := writeArtifacts(*outDir, res); err != nil {
			return err
		}
		line := fmt.Sprintf("%-4s %-4s %-45s (%.1fs)", res.ID, res.Verdict, e.Title, time.Since(start).Seconds())
		summary = append(summary, line)
		if !*quiet {
			fmt.Fprintln(os.Stderr, line)
		}
		if res.Verdict == experiments.VerdictFail {
			failures++
		}
	}

	fmt.Fprintf(report, "## Summary\n\n```\n%s\n```\n", strings.Join(summary, "\n"))
	fmt.Println(strings.Join(summary, "\n"))
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) FAILED", failures)
	}
	fmt.Printf("\nreport written to %s\n", filepath.Join(*outDir, "report.md"))
	return nil
}

func writeArtifacts(dir string, res *experiments.Result) error {
	for i, table := range res.Tables {
		name := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", strings.ToLower(res.ID), i+1))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := table.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for i, fig := range res.Figures {
		name := filepath.Join(dir, fmt.Sprintf("%s_fig%d.svg", strings.ToLower(res.ID), i+1))
		if err := os.WriteFile(name, []byte(fig.SVG(640, 480)), 0o644); err != nil {
			return err
		}
	}
	return nil
}
