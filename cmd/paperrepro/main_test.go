package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFullSuiteTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run skipped in -short mode")
	}
	t.Parallel()
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-scale", "0.1", "-reps", "2", "-q", "-ext=false"})
	if err != nil {
		// A FAIL verdict at tiny scale is possible but the harness itself
		// must have produced the report; distinguish the two.
		if _, statErr := os.Stat(filepath.Join(dir, "report.md")); statErr != nil {
			t.Fatalf("suite failed without a report: %v", err)
		}
		t.Logf("suite returned %v at tiny scale (verdict noise tolerated)", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "report.md"))
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{"### E1 —", "### E17 —", "## Summary"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every experiment must have left at least one CSV.
	csvs, err := filepath.Glob(filepath.Join(dir, "*_table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(csvs) < 17 {
		t.Errorf("only %d table CSVs written, want >= 17", len(csvs))
	}
}

func TestBadOutputDir(t *testing.T) {
	t.Parallel()
	// A file where the directory should be.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", f, "-scale", "0.1", "-q"}); err == nil {
		t.Fatal("file-as-directory accepted")
	}
}
