// Command experiments runs experiments from the paper-validation suite
// (E1-E17) and writes tables, ASCII figures and SVGs.
//
// Usage:
//
//	experiments -list
//	experiments -run E3 -scale 0.5
//	experiments -run all -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mobilenet/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list available experiments")
		runID   = fs.String("run", "", "experiment ID to run (e.g. E3), or 'all'")
		scale   = fs.Float64("scale", 1.0, "problem-size scale in (0,1]")
		reps    = fs.Int("reps", 0, "replicates per sweep point (0 = experiment default)")
		seed    = fs.Uint64("seed", 1, "master seed")
		outDir  = fs.String("out", "", "directory for CSV/SVG outputs (empty = stdout only)")
		verbose = fs.Bool("v", false, "log per-point progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-45s %s\n", e.ID, e.Title, e.Claim)
		}
		for _, e := range experiments.Extensions() {
			fmt.Printf("%-4s %-45s %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}
	if *runID == "" {
		return fmt.Errorf("nothing to do: pass -list or -run <ID|all|ext>")
	}

	var toRun []experiments.Experiment
	switch {
	case strings.EqualFold(*runID, "all"):
		toRun = experiments.All()
	case strings.EqualFold(*runID, "ext"):
		toRun = experiments.Extensions()
	default:
		e, ok := experiments.Get(*runID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *runID)
		}
		toRun = []experiments.Experiment{e}
	}

	params := experiments.Params{Scale: *scale, Reps: *reps, Seed: *seed}
	if *verbose {
		params.Log = os.Stderr
	}

	failures := 0
	for _, e := range toRun {
		res, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if res.Verdict == experiments.VerdictFail {
			failures++
		}
		if *outDir != "" {
			if err := writeArtifacts(*outDir, res); err != nil {
				return err
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) returned FAIL verdicts", failures)
	}
	return nil
}

func writeArtifacts(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, table := range res.Tables {
		name := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", strings.ToLower(res.ID), i+1))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := table.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for i, fig := range res.Figures {
		name := filepath.Join(dir, fmt.Sprintf("%s_fig%d.svg", strings.ToLower(res.ID), i+1))
		if err := os.WriteFile(name, []byte(fig.SVG(640, 480)), 0o644); err != nil {
			return err
		}
	}
	return nil
}
