package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestList(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentWithArtifacts(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	err := run([]string{"-run", "E17", "-scale", "0.1", "-reps", "2", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	// A CSV table and an SVG figure must exist.
	csvs, err := filepath.Glob(filepath.Join(dir, "e17_table*.csv"))
	if err != nil || len(csvs) == 0 {
		t.Fatalf("no CSV artifacts: %v %v", csvs, err)
	}
	svgs, err := filepath.Glob(filepath.Join(dir, "e17_fig*.svg"))
	if err != nil || len(svgs) == 0 {
		t.Fatalf("no SVG artifacts: %v %v", svgs, err)
	}
	data, err := os.ReadFile(csvs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV artifact")
	}
}

func TestRunUnknownID(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNoActionIsError(t *testing.T) {
	t.Parallel()
	if err := run(nil); err == nil {
		t.Fatal("no action accepted")
	}
}

func TestRunExtensionByID(t *testing.T) {
	t.Parallel()
	// X3 at tiny scale is fast and exercises the extension lookup path.
	if err := run([]string{"-run", "X3", "-scale", "0.1", "-reps", "2"}); err != nil {
		t.Fatal(err)
	}
}
