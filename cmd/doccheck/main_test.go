package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGodocModeFlagsMissingDocs(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	write(t, dir+"/bad.go", `package bad

func Exported() {}

type AlsoExported struct{}

const LooseConst = 1
`)
	problems, err := checkPackage(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Package comment + function + type + const = 4 problems.
	if len(problems) != 4 {
		t.Fatalf("got %d problems, want 4: %v", len(problems), problems)
	}
}

func TestGodocModeAcceptsDocumentedPackage(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	write(t, dir+"/good.go", `// Package good is fully documented.
package good

// Exported does nothing.
func Exported() {}

// T is a documented type.
type T struct{}

// M is a documented method; methods on unexported types are exempt.
func (T) M() {}

type hidden struct{}

func (hidden) NoDocNeeded() {}

// Group doc covers the block.
const (
	A = 1
	B = 2
)
`)
	problems, err := checkPackage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("documented package flagged: %v", problems)
	}
}

func TestLinkMode(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	write(t, dir+"/exists.md", "target")
	write(t, dir+"/doc.md", `See [good](exists.md), [anchor](exists.md#sec),
[web](https://example.com/x), [pure anchor](#local),
and [broken](missing.md).
`)
	problems, err := checkLinks(dir + "/doc.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 {
		t.Fatalf("got %d problems, want 1 (the broken link): %v", len(problems), problems)
	}
}

func TestRunModes(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	write(t, dir+"/good.go", "// Package good.\npackage good\n")
	write(t, dir+"/doc.md", "[ok](good.go)\n")
	if err := run([]string{dir}, os.Stdout); err != nil {
		t.Errorf("clean package failed: %v", err)
	}
	if err := run([]string{"-links", dir + "/doc.md"}, os.Stdout); err != nil {
		t.Errorf("clean links failed: %v", err)
	}
	if err := run([]string{}, os.Stdout); err == nil {
		t.Error("empty invocation accepted")
	}
	write(t, dir+"/bad/bad.go", "package bad\n\nfunc Exported() {}\n")
	if err := run([]string{dir + "/bad"}, os.Stdout); err == nil {
		t.Error("undocumented package accepted")
	}
}
