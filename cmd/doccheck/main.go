// Command doccheck enforces the repository's documentation invariants in
// CI without external dependencies. It has two modes:
//
//	doccheck ./internal/sweep ./internal/scenario .        # godoc mode
//	doccheck -links README.md DESIGN.md EXPERIMENTS.md     # link mode
//
// Godoc mode parses each package directory (test files excluded) and
// fails when the package lacks a package comment or when any exported
// top-level declaration — functions, methods on exported types, types,
// and const/var groups — has no doc comment. Link mode scans Markdown
// files for relative links and fails when a target file does not exist,
// catching renamed files and section moves before they land as dead
// links.
//
// The CI "docs" job runs both modes over the packages and documents this
// repository treats as API surface.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("doccheck", flag.ContinueOnError)
	links := fs.Bool("links", false, "check Markdown relative links instead of godoc coverage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("nothing to check: pass package directories (or -links FILES)")
	}
	var problems []string
	for _, arg := range fs.Args() {
		var (
			found []string
			err   error
		)
		if *links {
			found, err = checkLinks(arg)
		} else {
			found, err = checkPackage(arg)
		}
		if err != nil {
			return err
		}
		problems = append(problems, found...)
	}
	for _, p := range problems {
		fmt.Fprintln(out, p)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d problem(s)", len(problems))
	}
	return nil
}

// checkPackage parses one package directory and reports exported
// declarations without doc comments.
func checkPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var problems []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Tok == token.IMPORT {
						continue
					}
					checkGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// exportedReceiver reports whether a method's receiver type (if any) is
// exported; methods on unexported types are internal details.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl reports exported types, consts and vars lacking both a
// group doc and a per-spec doc.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
					break
				}
			}
		}
	}
}

// mdLink matches Markdown inline links; the first capture is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks scans one Markdown file and reports relative link targets
// that do not exist on disk. Absolute URLs and pure anchors are skipped —
// CI must not depend on the network.
func checkLinks(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken relative link %q", path, i+1, m[1]))
			}
		}
	}
	return problems, nil
}
