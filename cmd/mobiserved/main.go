// Command mobiserved serves simulations over HTTP: POST a scenario spec,
// poll the job, fetch the result by its content hash. Repeated submissions
// of the same scenario are answered from an LRU cache; replicates run on a
// bounded worker pool under position-derived seeds, so every result is a
// deterministic function of the spec alone.
//
// Parameter sweeps are first-class batch jobs: POST a sweep spec (a base
// scenario plus axes, the same object `mobisim -sweep` runs) to
// /v1/sweeps, poll /v1/sweeps/{id} for per-point progress, and each point
// flows through the same hash-keyed result cache — repeated or
// overlapping sweeps are answered point by point without re-running
// anything.
//
// Scenarios with an `observe` block record per-step time series
// (informed count, component structure, coverage; see internal/obs), and
// GET /v1/results/{hash}/series streams the across-replicate aggregate as
// NDJSON — byte-identical to a library or `mobisim -series-out -` render
// of the same scenario, and cached through the same LRU.
//
// Usage:
//
//	mobiserved -addr :8080 -workers 8 -queue 256 -cache 256 -sweep-points 1024 -series-points 1048576
//
// Quickstart:
//
//	curl -s localhost:8080/v1/run -d '{"engine":"broadcast","nodes":16384,"agents":64,"seed":1}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s localhost:8080/v1/results/<hash>
//	curl -s localhost:8080/v1/run -d '{"engine":"broadcast","nodes":16384,"agents":64,"seed":1,"observe":{"observables":["informed"],"every":4}}'
//	curl -s localhost:8080/v1/results/<hash>/series
//	curl -s localhost:8080/v1/sweeps -d '{"base":{"engine":"broadcast","nodes":16384,"agents":64,"seed":1},"axes":[{"field":"agents","values":[16,64,256]}]}'
//	curl -s localhost:8080/v1/sweeps/sweep-1
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain the queue and shut the server down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobilenet/internal/simserve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobiserved:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out *os.File) error {
	fs := flag.NewFlagSet("mobiserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "run-queue depth in replicate tasks (0 = 256)")
		cache        = fs.Int("cache", 0, "result-cache entries (0 = 256)")
		sweepPoints  = fs.Int("sweep-points", 0, "max expanded points per submitted sweep (0 = 1024)")
		seriesPoints = fs.Int("series-points", 0, "max recorded series points per replicate of an observed scenario (0 = 1048576)")
		grace        = fs.Duration("grace", 30*time.Second, "graceful-shutdown budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 || *queue < 0 || *cache < 0 || *sweepPoints < 0 || *seriesPoints < 0 {
		return fmt.Errorf("workers, queue, cache, sweep-points and series-points must be non-negative")
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	return serve(ctx, l, simserve.Config{
		Workers: *workers, QueueDepth: *queue, CacheEntries: *cache,
		MaxSweepPoints: *sweepPoints, MaxSeriesPoints: *seriesPoints,
	}, *grace, out)
}

// serve runs the service on the given listener until ctx is cancelled,
// then shuts down gracefully: in-flight HTTP requests finish, the queue
// drains, and the worker pool exits, all within the grace budget.
func serve(ctx context.Context, l net.Listener, cfg simserve.Config, grace time.Duration, out *os.File) error {
	svc := simserve.New(cfg)
	httpSrv := &http.Server{
		Handler: svc,
		// The daemon faces untrusted clients: bound how long a connection
		// may dribble its headers or sit idle, or slowloris-style clients
		// exhaust goroutines and file descriptors.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(out, "mobiserved listening on %s\n", l.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(l) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "mobiserved shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := httpSrv.Shutdown(shutCtx)
	if serr := svc.Shutdown(shutCtx); err == nil {
		err = serr
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}
