// Command mobiserved serves simulations over HTTP: POST a scenario spec,
// poll the job, fetch the result by its content hash. Repeated submissions
// of the same scenario are answered from an LRU cache; replicates run on a
// bounded worker pool under position-derived seeds, so every result is a
// deterministic function of the spec alone.
//
// Parameter sweeps are first-class batch jobs: POST a sweep spec (a base
// scenario plus axes, the same object `mobisim -sweep` runs) to
// /v1/sweeps, poll /v1/sweeps/{id} for per-point progress, and each point
// flows through the same hash-keyed result cache — repeated or
// overlapping sweeps are answered point by point without re-running
// anything.
//
// Scenarios with an `observe` block record per-step time series
// (informed count, component structure, coverage; see internal/obs), and
// GET /v1/results/{hash}/series streams the across-replicate aggregate as
// NDJSON — byte-identical to a library or `mobisim -series-out -` render
// of the same scenario, and cached through the same LRU.
//
// The daemon is observable end to end (internal/telemetry, internal/prof):
// /metrics serves the service counters plus request-lifecycle latency
// histograms (admission, queue wait, per-replicate execution, assembly,
// cache writes, sweep expansion, series rendering), per-engine step-phase
// histograms (mobiserved_engine_phase_seconds{engine,phase}) and per-route
// HTTP latencies, alongside process uptime and build info. Every response
// carries an X-Request-Id header (the client's own when it sent a sane
// one, generated otherwise) that follows the request through logs, job
// traces and sweep points; every request is logged through log/slog under
// that id, and requests slower than -slow-ms are logged at warn level
// with a per-stage stage_*_ms breakdown of where the time went. Finished
// jobs export an execution trace (submit, per-replicate queue wait and
// run with its phase split, assembly) as Chrome trace-event JSON on
// GET /v1/jobs/{id}/trace — loadable in Perfetto or chrome://tracing.
// -pprof mounts the standard net/http/pprof handlers under /debug/pprof/
// for live CPU and heap profiling (off by default: profiles expose
// internals, so opt in).
//
// The daemon is hardened for untrusted, impatient clients. Every job can
// carry a deadline (X-Deadline-Ms header, bounded by -max-deadline, with
// -default-deadline applied to jobs that ask for none); a job past its
// deadline stops mid-replicate within one engine check interval and
// reports status "cancelled". Engine panics are confined to the job that
// triggered them (mobiserved_panics_recovered_total counts them). Workers
// drain a weighted fair queue keyed by client id (X-Client-Id header, or
// the remote host), so one client's batch flood cannot starve another's
// interactive submission, and -rate-limit/-rate-burst shed over-limit
// clients with 429 + Retry-After before their specs are even parsed
// (mobiserved_shed_total{reason} counts queue-full and rate-limit sheds).
// -chaos arms the internal/chaos fault-injection harness — injected
// worker panics, engine step stalls, dropped cache writes, dequeue
// latency — for resilience testing against a live daemon; see
// EXPERIMENTS.md, "Breaking the server on purpose".
//
// The daemon scales past one process along two axes (internal/store,
// internal/cluster; see DESIGN.md §15). -store DIR arms a disk-backed,
// content-hash-addressed result store as a spill tier under the LRU:
// evicted and computed payloads persist (fsync + checksum framing, bounded
// by -store-cap with oldest-first eviction), so a restarted daemon serves
// previously computed points from disk instead of re-running them.
// -coordinator host:port,... turns the process into a fleet coordinator:
// sweeps are expanded exactly as in a single process, then each distinct
// point is dispatched to the worker that wins its rendezvous hash — one
// home per point fleet-wide, so overlapping sweeps from many clients
// converge on one execution per distinct point. A worker that stops
// answering has its points re-routed to the next worker in their hash
// order (bounded retries with jittered exponential backoff,
// mobiserved_points_rerouted_total counts the failovers), and a /healthz
// probe loop clears recovered workers early. The flag is the worker list
// because -workers already names the local pool size.
//
// Usage:
//
//	mobiserved -addr :8080 -workers 8 -queue 256 -cache 256 -sweep-points 1024 -series-points 1048576 \
//	           -log-level info -slow-ms 1000 -pprof \
//	           -default-deadline 0 -max-deadline 0 -rate-limit 0 -rate-burst 0 \
//	           -shutdown-timeout 0 -chaos '' \
//	           -store '' -store-cap 1073741824 -coordinator '' -probe-interval 2s
//
// Quickstart:
//
//	curl -s localhost:8080/v1/run -d '{"engine":"broadcast","nodes":16384,"agents":64,"seed":1}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s localhost:8080/v1/results/<hash>
//	curl -s localhost:8080/v1/run -d '{"engine":"broadcast","nodes":16384,"agents":64,"seed":1,"observe":{"observables":["informed"],"every":4}}'
//	curl -s localhost:8080/v1/results/<hash>/series
//	curl -s localhost:8080/v1/sweeps -d '{"base":{"engine":"broadcast","nodes":16384,"agents":64,"seed":1},"axes":[{"field":"agents","values":[16,64,256]}]}'
//	curl -s localhost:8080/v1/sweeps/sweep-1
//	curl -s localhost:8080/v1/jobs/job-1/trace > trace.json   # open in ui.perfetto.dev
//	curl -s localhost:8080/metrics
//	go tool pprof localhost:8080/debug/pprof/profile?seconds=10   # with -pprof
//
// SIGINT/SIGTERM drain the queue and shut the server down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"mobilenet/internal/chaos"
	"mobilenet/internal/cluster"
	"mobilenet/internal/simserve"
	"mobilenet/internal/store"
	"mobilenet/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobiserved:", err)
		os.Exit(1)
	}
}

// serveOpts bundles everything serve needs beyond the service config.
type serveOpts struct {
	cfg      simserve.Config
	fleet    []string      // coordinator mode: worker addresses to shard sweeps across
	probe    time.Duration // worker health-probe interval (coordinator mode)
	grace    time.Duration // drain budget: HTTP requests finish, queue drains
	shutdown time.Duration // hard bound: past this, in-flight jobs are cancelled; 0 = grace
	pprof    bool          // mount /debug/pprof/
	slow     time.Duration // warn-level threshold for request logs; 0 disables
	logger   *slog.Logger
}

func run(ctx context.Context, args []string, out *os.File) error {
	fs := flag.NewFlagSet("mobiserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "run-queue depth in replicate tasks (0 = 256)")
		cache        = fs.Int("cache", 0, "result-cache entries (0 = 256)")
		sweepPoints  = fs.Int("sweep-points", 0, "max expanded points per submitted sweep (0 = 1024)")
		seriesPoints = fs.Int("series-points", 0, "max recorded series points per replicate of an observed scenario (0 = 1048576)")
		grace        = fs.Duration("grace", 30*time.Second, "graceful-shutdown budget for in-flight HTTP requests and queue drain")
		shutdownTO   = fs.Duration("shutdown-timeout", 0, "hard shutdown bound: past this, in-flight jobs are cancelled mid-replicate (0 = same as -grace)")
		pprofFlag    = fs.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
		logLevel     = fs.String("log-level", "info", "request-log level: debug, info, warn or error")
		slowMS       = fs.Int("slow-ms", 1000, "log requests slower than this many milliseconds at warn level (0 disables)")
		defDeadline  = fs.Duration("default-deadline", 0, "deadline applied to jobs that request none (0 = unbounded)")
		maxDeadline  = fs.Duration("max-deadline", 0, "cap on every job's effective deadline, including deadline-less jobs (0 = no cap)")
		rateLimit    = fs.Float64("rate-limit", 0, "per-client submissions per second; over-limit requests get 429 + Retry-After (0 disables)")
		rateBurst    = fs.Int("rate-burst", 0, "per-client submission burst (0 = one second's worth of -rate-limit)")
		chaosSpec    = fs.String("chaos", "", "fault-injection spec, e.g. 'worker-panic:0.05,slow-step:0.02:1ms' (see internal/chaos; empty disables)")
		storeDir     = fs.String("store", "", "disk result-store directory: spill tier under the LRU, survives restarts (empty disables)")
		storeCap     = fs.Int64("store-cap", 1<<30, "disk result-store size bound in bytes; oldest entries are evicted past it")
		coordinators = fs.String("coordinator", "", "coordinator mode: comma-separated worker addresses (host:port) to shard sweep points across (empty = run as a plain worker)")
		probeEvery   = fs.Duration("probe-interval", 2*time.Second, "coordinator worker /healthz probe interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 || *queue < 0 || *cache < 0 || *sweepPoints < 0 || *seriesPoints < 0 || *slowMS < 0 {
		return fmt.Errorf("workers, queue, cache, sweep-points, series-points and slow-ms must be non-negative")
	}
	if *defDeadline < 0 || *maxDeadline < 0 || *shutdownTO < 0 || *rateLimit < 0 || *rateBurst < 0 {
		return fmt.Errorf("default-deadline, max-deadline, shutdown-timeout, rate-limit and rate-burst must be non-negative")
	}
	if *storeDir != "" && *storeCap <= 0 {
		return fmt.Errorf("store-cap must be positive when -store is set")
	}
	if *probeEvery <= 0 {
		return fmt.Errorf("probe-interval must be positive")
	}
	fleet := splitFleet(*coordinators)
	if *coordinators != "" && len(fleet) == 0 {
		return fmt.Errorf("coordinator flag %q names no worker addresses", *coordinators)
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	injector, err := chaos.Parse(*chaosSpec)
	if err != nil {
		return err
	}
	var diskStore *store.Store
	if *storeDir != "" {
		diskStore, err = store.Open(*storeDir, *storeCap)
		if err != nil {
			return fmt.Errorf("opening result store: %w", err)
		}
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	return serve(ctx, l, serveOpts{
		cfg: simserve.Config{
			Workers: *workers, QueueDepth: *queue, CacheEntries: *cache,
			MaxSweepPoints: *sweepPoints, MaxSeriesPoints: *seriesPoints,
			DefaultDeadline: *defDeadline, MaxDeadline: *maxDeadline,
			RateLimit: *rateLimit, RateBurst: *rateBurst,
			Chaos: injector, Store: diskStore,
		},
		fleet:    fleet,
		probe:    *probeEvery,
		grace:    *grace,
		shutdown: *shutdownTO,
		pprof:    *pprofFlag,
		slow:     time.Duration(*slowMS) * time.Millisecond,
		logger:   logger,
	}, out)
}

// splitFleet parses the -coordinator worker list: comma-separated
// addresses, whitespace tolerated, empties dropped.
func splitFleet(s string) []string {
	var fleet []string
	for _, part := range strings.Split(s, ",") {
		if addr := strings.TrimSpace(part); addr != "" {
			fleet = append(fleet, addr)
		}
	}
	return fleet
}

// parseLogLevel maps the -log-level flag onto a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// serve runs the service on the given listener until ctx is cancelled,
// then shuts down gracefully: in-flight HTTP requests finish, the queue
// drains, and the worker pool exits, all within the grace budget.
func serve(ctx context.Context, l net.Listener, opts serveOpts, out *os.File) error {
	// Coordinator mode: sweeps shard across the fleet instead of the local
	// pool. The executor's hooks close over svc and the telemetry handles,
	// both assigned below before the listener accepts its first request —
	// nothing dispatches a point until a sweep arrives over HTTP.
	var (
		svc      *simserve.Server
		exec     *cluster.Executor
		rerouted *telemetry.Counter
		dispatch = make(map[string]*telemetry.Histogram, len(opts.fleet))
	)
	if len(opts.fleet) > 0 {
		var err error
		exec, err = cluster.New(cluster.Config{
			Workers: opts.fleet,
			Lookup:  func(hash string) ([]byte, bool) { return svc.Result(hash) },
			Persist: func(hash string, payload []byte) { svc.PutResult(hash, payload) },
			OnReroute: func(worker string) {
				rerouted.Inc()
				opts.logger.Warn("worker abandoned; points re-routed", "worker", worker)
			},
			OnDispatch: func(worker string, d time.Duration) { dispatch[worker].Record(d) },
		})
		if err != nil {
			return err
		}
		opts.cfg.Executor = exec
	}
	svc = simserve.New(opts.cfg)
	registerProcessMetrics(svc.Metrics())
	if exec != nil {
		m := svc.Metrics()
		rerouted = m.Counter("mobiserved_points_rerouted_total",
			"Sweep-point failovers: a worker exhausted its retry budget and its points moved to the next worker in their rendezvous order.")
		for _, w := range opts.fleet {
			dispatch[w] = m.Histogram("mobiserved_worker_dispatch_seconds",
				"End-to-end remote point dispatch latency (submit, poll, fetch) per worker.",
				telemetry.Label{Name: "worker", Value: w})
		}
		m.IntGaugeFunc("mobiserved_fleet_workers",
			"Workers configured on this coordinator.",
			func() int64 { return int64(len(opts.fleet)) })
		m.IntGaugeFunc("mobiserved_fleet_healthy_workers",
			"Workers not currently marked down.",
			func() int64 { return int64(exec.Healthy()) })
		probeStop := make(chan struct{})
		go exec.ProbeLoop(probeStop, opts.probe)
		defer close(probeStop)
		fmt.Fprintf(out, "mobiserved coordinating %d workers: %s\n", len(opts.fleet), strings.Join(opts.fleet, ", "))
	}
	var handler http.Handler = requestLogger(svc, opts.logger, opts.slow)
	if opts.pprof {
		// Explicit handler registration instead of the package's
		// DefaultServeMux side effect: profiling stays opt-in per process,
		// and the profiled mux bypasses the request logger (a 30-second
		// CPU profile is not a slow request).
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{
		Handler: handler,
		// The daemon faces untrusted clients: bound how long a connection
		// may dribble its headers or sit idle, or slowloris-style clients
		// exhaust goroutines and file descriptors.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(out, "mobiserved listening on %s\n", l.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(l) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "mobiserved shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), opts.grace)
	defer cancel()
	err := httpSrv.Shutdown(shutCtx)
	// The service gets its own drain budget (-shutdown-timeout, defaulting
	// to -grace): once it expires, in-flight jobs are cancelled
	// mid-replicate and finish as cancelled instead of being waited out.
	// That escalation is expected behaviour under a hard deadline, so it
	// is logged rather than surfaced as a daemon error.
	svcBudget := opts.shutdown
	if svcBudget <= 0 {
		svcBudget = opts.grace
	}
	svcCtx, svcCancel := context.WithTimeout(context.Background(), svcBudget)
	defer svcCancel()
	if serr := svc.Shutdown(svcCtx); serr != nil {
		opts.logger.Warn("shutdown budget expired; in-flight jobs cancelled", "budget", svcBudget.String())
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}

// registerProcessMetrics adds the daemon-level gauges to the service's
// /metrics exposition: uptime (computed at scrape) and build info (the
// constant-1 Prometheus convention with the payload in labels).
func registerProcessMetrics(m *telemetry.Registry) {
	start := time.Now()
	m.GaugeFunc("mobiserved_uptime_seconds", "Seconds since the process started serving.",
		func() float64 { return time.Since(start).Seconds() })
	revision := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	m.Info("mobiserved_build_info", "Build metadata; the value is always 1.",
		telemetry.Label{Name: "go_version", Value: runtime.Version()},
		telemetry.Label{Name: "revision", Value: revision})
}

// statusWriter captures the status code and body size a handler wrote, for
// the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// requestLogger wraps the service with structured per-request logging:
// every line carries the request id the service echoed in X-Request-Id
// (the client's own id when it sent one, generated otherwise), plus
// method, path, status, bytes and duration; requests at or above the slow
// threshold are promoted to warn level so tail latency shows up in logs
// even when /metrics is not being watched. Slow-request lines additionally
// break the time down by lifecycle stage (stage_queue_wait_ms,
// stage_execute_ms, stage_assemble_ms, ...) via the per-request stage
// recorder the service fills in, so the log says WHERE a slow request's
// time went, not just that it was slow.
func requestLogger(next http.Handler, log *slog.Logger, slow time.Duration) http.Handler {
	var seq atomic.Uint64
	base := time.Now().UnixNano()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		stages := simserve.NewStageRecorder()
		r = r.WithContext(simserve.WithStageRecorder(r.Context(), stages))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		d := time.Since(t0)
		id := sw.Header().Get("X-Request-Id")
		if id == "" {
			// Fallback for handlers outside the service (none today): the
			// log line still gets a unique id even without the echo.
			id = fmt.Sprintf("%x-%d", base, seq.Add(1))
		}
		attrs := []any{
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(d.Microseconds()) / 1000,
			"remote", r.RemoteAddr,
		}
		if slow > 0 && d >= slow {
			log.Warn("slow request", append(attrs, stageAttrs(stages)...)...)
		} else {
			log.Info("request", attrs...)
		}
	})
}

// stageAttrs renders the recorder's per-stage durations as log attributes
// in deterministic (sorted) order.
func stageAttrs(rec *simserve.StageRecorder) []any {
	stages := rec.Stages()
	if len(stages) == 0 {
		return nil
	}
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	attrs := make([]any, 0, 2*len(names))
	for _, name := range names {
		attrs = append(attrs, "stage_"+name+"_ms", float64(stages[name].Microseconds())/1000)
	}
	return attrs
}
