package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"mobilenet/internal/simserve"
)

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{
		{"-workers", "-1"},
		{"-queue", "-1"},
		{"-cache", "-1"},
		{"-definitely-not-a-flag"},
		{"-addr", "not-an-address:-1:-1"},
	} {
		if err := run(context.Background(), args, os.Stdout); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestServeEndToEnd boots the daemon on an ephemeral port, drives the whole
// submit/poll/fetch cycle over real HTTP, and checks graceful shutdown.
func TestServeEndToEnd(t *testing.T) {
	t.Parallel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, l, simserve.Config{Workers: 2}, 30*time.Second, os.Stdout)
	}()

	waitHealthy(t, base)

	resp, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"engine":"broadcast","nodes":256,"agents":8,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var ticket struct {
		JobID string `json:"job_id"`
		Hash  string `json:"hash"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ticket)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ticket.JobID == "" || ticket.Hash == "" {
		t.Fatalf("ticket %+v", ticket)
	}

	var result []byte
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(base + "/v1/results/" + ticket.Hash)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			result = body
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !bytes.Contains(result, []byte(`"engine":"broadcast"`)) {
		t.Fatalf("result payload: %s", result)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v on graceful shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}
