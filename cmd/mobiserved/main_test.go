package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"mobilenet/internal/simserve"
)

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{
		{"-workers", "-1"},
		{"-queue", "-1"},
		{"-cache", "-1"},
		{"-slow-ms", "-1"},
		{"-log-level", "loud"},
		{"-definitely-not-a-flag"},
		{"-addr", "not-an-address:-1:-1"},
	} {
		if err := run(context.Background(), args, os.Stdout); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseLogLevel(t *testing.T) {
	t.Parallel()
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := parseLogLevel(s)
		if err != nil || got != want {
			t.Errorf("parseLogLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseLogLevel("verbose"); err == nil {
		t.Error("unknown level accepted")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output
// from the server's handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

func testLogger(buf *syncBuffer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(buf, &slog.HandlerOptions{Level: level}))
}

// TestServeEndToEnd boots the daemon on an ephemeral port, drives the whole
// submit/poll/fetch cycle over real HTTP, and checks graceful shutdown.
func TestServeEndToEnd(t *testing.T) {
	t.Parallel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	var logs syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, l, serveOpts{
			cfg:    simserve.Config{Workers: 2},
			grace:  30 * time.Second,
			pprof:  true,
			slow:   time.Nanosecond, // everything is "slow": exercises the warn path
			logger: testLogger(&logs, slog.LevelInfo),
		}, os.Stdout)
	}()

	waitHealthy(t, base)

	resp, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"engine":"broadcast","nodes":256,"agents":8,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var ticket struct {
		JobID string `json:"job_id"`
		Hash  string `json:"hash"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ticket)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ticket.JobID == "" || ticket.Hash == "" {
		t.Fatalf("ticket %+v", ticket)
	}

	var result []byte
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(base + "/v1/results/" + ticket.Hash)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			result = body
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !bytes.Contains(result, []byte(`"engine":"broadcast"`)) {
		t.Fatalf("result payload: %s", result)
	}

	// The daemon's own telemetry: /metrics carries the process gauges and
	// the lifecycle histograms the completed job recorded into.
	metrics, code := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"mobiserved_uptime_seconds ",
		`mobiserved_build_info{go_version="`,
		`mobiserved_stage_seconds_bucket{stage="queue_wait"`,
		`mobiserved_stage_seconds_bucket{stage="execute"`,
		`mobiserved_http_request_seconds_bucket{route="run"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// -pprof mounted the profiling index.
	if body, code := getBody(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profiles") {
		t.Errorf("pprof index: status %d body %.80s", code, body)
	}

	// Every request was logged with an id; the 1 ns slow threshold forces
	// the warn path.
	logged := logs.String()
	for _, want := range []string{"slow request", "id=", "path=/v1/run", "status=", "duration_ms="} {
		if !strings.Contains(logged, want) {
			t.Errorf("request log missing %q:\n%s", want, logged)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v on graceful shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}
