package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"mobilenet/internal/simserve"
	"mobilenet/internal/store"
)

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{
		{"-workers", "-1"},
		{"-queue", "-1"},
		{"-cache", "-1"},
		{"-slow-ms", "-1"},
		{"-log-level", "loud"},
		{"-definitely-not-a-flag"},
		{"-addr", "not-an-address:-1:-1"},
		{"-store", "/tmp/x", "-store-cap", "0"},
		{"-probe-interval", "-1s"},
		{"-coordinator", " , "},
	} {
		if err := run(context.Background(), args, os.Stdout); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseLogLevel(t *testing.T) {
	t.Parallel()
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := parseLogLevel(s)
		if err != nil || got != want {
			t.Errorf("parseLogLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseLogLevel("verbose"); err == nil {
		t.Error("unknown level accepted")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output
// from the server's handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

func testLogger(buf *syncBuffer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(buf, &slog.HandlerOptions{Level: level}))
}

// TestServeEndToEnd boots the daemon on an ephemeral port, drives the whole
// submit/poll/fetch cycle over real HTTP, and checks graceful shutdown.
func TestServeEndToEnd(t *testing.T) {
	t.Parallel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	var logs syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, l, serveOpts{
			cfg:    simserve.Config{Workers: 2},
			grace:  30 * time.Second,
			pprof:  true,
			slow:   time.Nanosecond, // everything is "slow": exercises the warn path
			logger: testLogger(&logs, slog.LevelInfo),
		}, os.Stdout)
	}()

	waitHealthy(t, base)

	resp, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"engine":"broadcast","nodes":256,"agents":8,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var ticket struct {
		JobID string `json:"job_id"`
		Hash  string `json:"hash"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ticket)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ticket.JobID == "" || ticket.Hash == "" {
		t.Fatalf("ticket %+v", ticket)
	}

	var result []byte
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(base + "/v1/results/" + ticket.Hash)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			result = body
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !bytes.Contains(result, []byte(`"engine":"broadcast"`)) {
		t.Fatalf("result payload: %s", result)
	}

	// The daemon's own telemetry: /metrics carries the process gauges and
	// the lifecycle histograms the completed job recorded into.
	metrics, code := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"mobiserved_uptime_seconds ",
		`mobiserved_build_info{go_version="`,
		`mobiserved_stage_seconds_bucket{stage="queue_wait"`,
		`mobiserved_stage_seconds_bucket{stage="execute"`,
		`mobiserved_http_request_seconds_bucket{route="run"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// -pprof mounted the profiling index.
	if body, code := getBody(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profiles") {
		t.Errorf("pprof index: status %d body %.80s", code, body)
	}

	// Every request was logged with an id; the 1 ns slow threshold forces
	// the warn path.
	logged := logs.String()
	for _, want := range []string{"slow request", "id=", "path=/v1/run", "status=", "duration_ms="} {
		if !strings.Contains(logged, want) {
			t.Errorf("request log missing %q:\n%s", want, logged)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v on graceful shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

// TestSplitFleet pins the -coordinator list parsing.
func TestSplitFleet(t *testing.T) {
	t.Parallel()
	got := splitFleet(" w1:8081, w2:8082 ,,w3:8083")
	want := []string{"w1:8081", "w2:8082", "w3:8083"}
	if len(got) != len(want) {
		t.Fatalf("splitFleet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitFleet = %v, want %v", got, want)
		}
	}
	if splitFleet("") != nil {
		t.Fatal("empty list should parse to nil")
	}
}

// startDaemon boots one daemon through the real serve path on an ephemeral
// port and returns its base URL plus a shutdown func.
func startDaemon(t *testing.T, opts serveOpts) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if opts.logger == nil {
		opts.logger = testLogger(&syncBuffer{}, slog.LevelError)
	}
	if opts.grace == 0 {
		opts.grace = 30 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, l, opts, os.Stdout) }()
	base := "http://" + l.Addr().String()
	waitHealthy(t, base)
	return base, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve returned %v on shutdown", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("serve did not shut down")
		}
	}
}

// TestServeCoordinatorEndToEnd boots two workers and a coordinator through
// the real daemon path and drives a sweep over HTTP: the coordinator must
// shard, assemble, and expose the fleet metric families.
func TestServeCoordinatorEndToEnd(t *testing.T) {
	t.Parallel()
	w1, stop1 := startDaemon(t, serveOpts{cfg: simserve.Config{Workers: 2}})
	defer stop1()
	w2, stop2 := startDaemon(t, serveOpts{cfg: simserve.Config{Workers: 2}})
	defer stop2()
	coord, stopC := startDaemon(t, serveOpts{
		cfg:   simserve.Config{Workers: 2},
		fleet: []string{strings.TrimPrefix(w1, "http://"), strings.TrimPrefix(w2, "http://")},
		probe: 50 * time.Millisecond,
	})
	defer stopC()

	resp, err := http.Post(coord+"/v1/sweeps", "application/json", strings.NewReader(
		`{"base":{"engine":"broadcast","nodes":256,"agents":8,"radius":1,"seed":1,"metrics":["curve"]},
		  "axes":[{"field":"seed","from":1,"to":4,"step":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ticket struct {
		SweepID string `json:"sweep_id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ticket)
	resp.Body.Close()
	if err != nil || ticket.SweepID == "" {
		t.Fatalf("sweep ticket: %+v err %v", ticket, err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		body, code := getBody(t, coord+"/v1/sweeps/"+ticket.SweepID)
		if code != http.StatusOK {
			t.Fatalf("sweep poll: status %d", code)
		}
		if strings.Contains(body, `"status":"done"`) {
			break
		}
		if strings.Contains(body, `"status":"failed"`) || time.Now().After(deadline) {
			t.Fatalf("sweep did not complete: %.400s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	metrics, code := getBody(t, coord+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"mobiserved_fleet_workers 2",
		"mobiserved_fleet_healthy_workers 2",
		"mobiserved_points_rerouted_total 0",
		"mobiserved_worker_dispatch_seconds_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}
}

// TestServeStoreSurvivesRestart pins the daemon-level durability claim: a
// result computed before a restart is served as cached after it, because
// the disk store under the LRU outlives the process.
func TestServeStoreSurvivesRestart(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	spec := `{"engine":"broadcast","nodes":256,"agents":8,"radius":1,"seed":9}`

	open := func() (string, func()) {
		st, err := store.Open(dir, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return startDaemon(t, serveOpts{cfg: simserve.Config{Workers: 2, Store: st}})
	}

	base, stop := open()
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var ticket struct {
		Hash   string `json:"hash"`
		Cached bool   `json:"cached"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ticket)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var before []byte
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		body, code := getBody(t, base+"/v1/results/"+ticket.Hash)
		if code == http.StatusOK {
			before = []byte(body)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(before) == 0 {
		t.Fatal("job never finished")
	}
	stop() // flushes the write-behind spill on shutdown

	base2, stop2 := open()
	defer stop2()
	resp, err = http.Post(base2+"/v1/run", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var ticket2 struct {
		Hash   string `json:"hash"`
		Cached bool   `json:"cached"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ticket2)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !ticket2.Cached {
		t.Fatal("restarted daemon re-ran a point the disk store already holds")
	}
	after, code := getBody(t, base2+"/v1/results/"+ticket2.Hash)
	if code != http.StatusOK || after != string(before) {
		t.Fatalf("payload changed across restart (status %d, %d vs %d bytes)", code, len(after), len(before))
	}
}

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}
