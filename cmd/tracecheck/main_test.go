package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunValidatesTraces(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(good, []byte(`{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":2,"pid":1,"tid":0}]}`), 0o644)
	os.WriteFile(bad, []byte(`{"traceEvents":[{"ph":"X","ts":1,"dur":2}]}`), 0o644)

	if err := run([]string{good}, os.Stdout); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if err := run([]string{bad}, os.Stdout); err == nil {
		t.Fatal("nameless event accepted")
	} else if !strings.Contains(err.Error(), "missing name") {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := run([]string{filepath.Join(dir, "absent.json")}, os.Stdout); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(nil, os.Stdout); err == nil {
		t.Fatal("empty argument list accepted")
	}
}
