// Command tracecheck validates Chrome trace-event JSON files against the
// structural invariants the repository's exporters guarantee (see
// internal/prof.ValidateChromeTrace): a traceEvents array whose entries
// carry a name and a known phase, with non-negative timing on complete
// spans. CI runs it over exported trace artifacts so a malformed export
// fails the build instead of failing silently in a viewer.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
//
// Exits non-zero on the first file that does not parse as a trace; on
// success prints one line per file with its span count.
package main

import (
	"fmt"
	"os"

	"mobilenet/internal/prof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

// run validates each named file, reporting span counts to out.
func run(args []string, out *os.File) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tracecheck <trace.json> [more.json ...]")
	}
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		spans, err := prof.ValidateChromeTrace(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "%s: valid chrome trace (%d spans)\n", path, spans)
	}
	return nil
}
