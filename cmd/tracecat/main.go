// Command tracecat inspects trajectory traces recorded with
// `mobisim -trace`: it prints the header, verifies every move stays on the
// grid, and reports per-agent displacement and range statistics from a full
// replay.
//
// Usage:
//
//	tracecat run.mtrace
//	tracecat -agents run.mtrace   # add a per-agent table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobilenet/internal/bitset"
	"mobilenet/internal/grid"
	"mobilenet/internal/tableio"
	"mobilenet/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracecat:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracecat", flag.ContinueOnError)
	perAgent := fs.Bool("agents", false, "print per-agent statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tracecat [-agents] <trace-file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace: %d agents, %d steps, %dx%d grid\n",
		tr.K(), tr.Steps(), tr.Side(), tr.Side())

	// Replay with verification and statistics.
	rp := tr.Replay()
	k := tr.K()
	start := make([]grid.Point, k)
	copy(start, rp.Positions())
	visited := make([]*bitset.Set, k)
	g, err := grid.New(tr.Side())
	if err != nil {
		return err
	}
	for i := range visited {
		visited[i] = bitset.New(g.N())
		visited[i].Add(int(g.ID(start[i])))
	}
	maxDisp := make([]int, k)
	for rp.Step() {
		for i, p := range rp.Positions() {
			if !g.Contains(p) {
				return fmt.Errorf("corrupt trace: agent %d off-grid at t=%d", i, rp.Time())
			}
			visited[i].Add(int(g.ID(p)))
			if d := grid.ManhattanPoints(start[i], p); d > maxDisp[i] {
				maxDisp[i] = d
			}
		}
	}

	totalRange, totalDisp := 0, 0
	for i := 0; i < k; i++ {
		totalRange += visited[i].Len()
		totalDisp += maxDisp[i]
	}
	fmt.Fprintf(out, "verified: all moves on-grid\n")
	fmt.Fprintf(out, "mean range: %.1f nodes, mean max displacement: %.1f\n",
		float64(totalRange)/float64(k), float64(totalDisp)/float64(k))

	if *perAgent {
		table := tableio.NewTable("Per-agent statistics",
			"agent", "start", "end", "range", "max displacement")
		for i := 0; i < k; i++ {
			end := rp.Positions()[i]
			table.AddRow(i,
				fmt.Sprintf("(%d,%d)", start[i].X, start[i].Y),
				fmt.Sprintf("(%d,%d)", end.X, end.Y),
				visited[i].Len(), maxDisp[i])
		}
		if err := table.WriteText(out); err != nil {
			return err
		}
	}
	return nil
}
