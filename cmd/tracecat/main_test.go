package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilenet/internal/agent"
	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/trace"
)

func writeTestTrace(t *testing.T, steps int) string {
	t.Helper()
	g := grid.MustNew(12)
	pop, err := agent.New(g, 5, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(12, pop.Positions())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		pop.Step()
		if err := rec.Record(pop.Positions()); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "t.mtrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Trace().WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummary(t *testing.T) {
	t.Parallel()
	path := writeTestTrace(t, 80)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"5 agents", "80 steps", "12x12 grid", "verified", "mean range"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunPerAgent(t *testing.T) {
	t.Parallel()
	path := writeTestTrace(t, 40)
	var out bytes.Buffer
	if err := run([]string{"-agents", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Per-agent statistics") {
		t.Errorf("per-agent table missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing file argument accepted")
	}
	if err := run([]string{"/nonexistent/file"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	// Corrupt file.
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil {
		t.Error("corrupt file accepted")
	}
}
