package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilenet/internal/sweep"
	"mobilenet/internal/trace"
)

func TestRunModels(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{"-n", "256", "-k", "8", "-model", "broadcast"},
		{"-n", "256", "-k", "8", "-model", "broadcast", "-curve"},
		{"-n", "256", "-k", "8", "-model", "gossip"},
		{"-n", "256", "-k", "8", "-model", "frog"},
		{"-n", "256", "-k", "8", "-model", "cover"},
		{"-n", "256", "-k", "8", "-model", "coverage"},
		{"-n", "256", "-k", "8", "-model", "extinction"},
		{"-n", "256", "-k", "8", "-model", "predator"},
		{"-n", "256", "-k", "8", "-model", "extinction", "-preys", "3"},
		{"-n", "256", "-k", "8", "-model", "gossip", "-reps", "3"},
		{"-n", "256", "-k", "8", "-json"},
		{"-n", "256", "-k", "8", "-model", "broadcast", "-par", "2"},
		{"-n", "256", "-k", "8", "-model", "frog", "-par", "1"},
	}
	for _, args := range cases {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			t.Parallel()
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunWithTrace(t *testing.T) {
	t.Parallel()
	path := t.TempDir() + "/run.mtrace"
	if err := run([]string{"-n", "256", "-k", "8", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 16 {
		t.Errorf("trace file suspiciously small: %d bytes", st.Size())
	}
	// The recorded trace must parse back.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.K() != 8 || tr.Side() != 16 {
		t.Errorf("trace shape k=%d side=%d", tr.K(), tr.Side())
	}
}

func TestRunFromSpecFile(t *testing.T) {
	t.Parallel()
	path := t.TempDir() + "/scenario.json"
	spec := `{"engine":"gossip","nodes":256,"agents":8,"seed":3}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", path}); err != nil {
		t.Fatal(err)
	}
	// A flag set explicitly on the command line overrides the file.
	if err := run([]string{"-spec", path, "-model", "frog"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", t.TempDir() + "/missing.json"}); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestRunTraceReplayMobility(t *testing.T) {
	t.Parallel()
	path := t.TempDir() + "/run.mtrace"
	if err := run([]string{"-n", "256", "-k", "8", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	// Replaying the recorded trajectory runs through the library fallback
	// path (trace motion is not scenario-addressable).
	if err := run([]string{"-n", "256", "-k", "8", "-mobility", "trace:" + path + ",loop"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "256", "-k", "8", "-model", "gossip", "-mobility", "trace:" + path + ",loop"}); err != nil {
		t.Fatal(err)
	}
	// Scenario-only conveniences fail loudly on the trace path rather
	// than being silently dropped.
	for _, args := range [][]string{
		{"-mobility", "trace:" + path, "-json"},
		{"-mobility", "trace:" + path, "-spec", "whatever.json"},
		{"-mobility", "trace:" + path, "-reps", "5"},
		{"-trace", t.TempDir() + "/out.mtrace", "-json"},
		{"-trace", t.TempDir() + "/out.mtrace", "-reps", "5"},
	} {
		if err := run(append([]string{"-n", "256", "-k", "8"}, args...)); err == nil {
			t.Errorf("args %v accepted on the trace path", args)
		}
	}
}

// TestRunWritesProfiles checks the pprof entry point: both profile files
// must exist and be non-empty after a run.
func TestRunWritesProfiles(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	args := []string{"-n", "256", "-k", "8", "-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestRunRejectsUnknownModel(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-model", "teleport"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-k", "0"}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := run([]string{"-r", "-3"}); err == nil {
		t.Fatal("negative radius accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunMeetingModel(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-model", "meeting", "-r", "4", "-reps", "8"}); err != nil {
		t.Fatal(err)
	}
	// The separation is required.
	if err := run([]string{"-model", "meeting", "-r", "0"}); err == nil {
		t.Error("meeting with r=0 accepted")
	}
}

func TestRunSweepFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := dir + "/sweep.json"
	spec := `{
		"base": {"engine":"broadcast","nodes":256,"agents":4,"seed":3,"reps":2},
		"axes": [{"field":"agents","values":[4,8]}],
		"fit": "agents"
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", path, "-json"}); err != nil {
		t.Fatal(err)
	}
	// Table export in both formats.
	for _, out := range []string{dir + "/table.csv", dir + "/table.json"} {
		if err := run([]string{"-sweep", path, "-table", out}); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(out)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", out)
		}
	}
	// Incompatible flag combinations fail loudly.
	for _, args := range [][]string{
		{"-sweep", path, "-spec", path},
		{"-sweep", path, "-trace", dir + "/out.mtrace"},
		{"-table", dir + "/t.csv"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if err := run([]string{"-sweep", dir + "/missing.json"}); err == nil {
		t.Error("missing sweep file accepted")
	}
	// A sweep whose expansion contains an invalid point fails with the
	// point named.
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{
		"base": {"engine":"broadcast","nodes":256,"agents":4},
		"axes": [{"field":"agents","values":[4,0]}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-sweep", bad})
	if err == nil || !strings.Contains(err.Error(), "point 1") {
		t.Errorf("invalid sweep point not surfaced, got %v", err)
	}
}

// exampleSweepFiles is the pinned list of sweep specs shipped under
// examples/sweeps/; TestExampleSweepREADMECoversDirectory keeps it in
// sync with the directory contents.
var exampleSweepFiles = []string{"e1_k_sweep.json", "mobility_contrast.json", "observe_informed.json"}

// TestExampleSweepFilesAreRunnable pins the sweep specs shipped under
// examples/sweeps/ (and quoted in EXPERIMENTS.md) to the current grammar:
// they must parse, validate and expand.
func TestExampleSweepFilesAreRunnable(t *testing.T) {
	t.Parallel()
	for _, name := range exampleSweepFiles {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile("../../examples/sweeps/" + name)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := sweep.Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			points, err := sp.Expand()
			if err != nil {
				t.Fatal(err)
			}
			if len(points) < 2 {
				t.Errorf("%s expands to %d points", name, len(points))
			}
		})
	}
}

// TestExampleSweepREADMECoversDirectory pins examples/sweeps/README.md to
// the directory: every shipped spec file must appear in the README's
// table, and every spec file on disk must be in the pinned list above —
// adding a spec without documenting it (or documenting one that was
// removed) fails here.
func TestExampleSweepREADMECoversDirectory(t *testing.T) {
	t.Parallel()
	readme, err := os.ReadFile("../../examples/sweeps/README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range exampleSweepFiles {
		if !strings.Contains(string(readme), name) {
			t.Errorf("examples/sweeps/README.md does not list %s", name)
		}
	}
	entries, err := os.ReadDir("../../examples/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	pinned := make(map[string]bool, len(exampleSweepFiles))
	for _, name := range exampleSweepFiles {
		pinned[name] = true
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" && !pinned[e.Name()] {
			t.Errorf("examples/sweeps/%s is not in exampleSweepFiles (and so neither run nor documented by these tests)", e.Name())
		}
	}
}
