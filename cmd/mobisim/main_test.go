package main

import (
	"os"
	"strings"
	"testing"

	"mobilenet/internal/trace"
)

func TestRunModels(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{"-n", "256", "-k", "8", "-model", "broadcast"},
		{"-n", "256", "-k", "8", "-model", "broadcast", "-curve"},
		{"-n", "256", "-k", "8", "-model", "gossip"},
		{"-n", "256", "-k", "8", "-model", "frog"},
		{"-n", "256", "-k", "8", "-model", "cover"},
		{"-n", "256", "-k", "8", "-model", "extinction"},
		{"-n", "256", "-k", "8", "-model", "extinction", "-preys", "3"},
	}
	for _, args := range cases {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			t.Parallel()
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunWithTrace(t *testing.T) {
	t.Parallel()
	path := t.TempDir() + "/run.mtrace"
	if err := run([]string{"-n", "256", "-k", "8", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 16 {
		t.Errorf("trace file suspiciously small: %d bytes", st.Size())
	}
	// The recorded trace must parse back.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.K() != 8 || tr.Side() != 16 {
		t.Errorf("trace shape k=%d side=%d", tr.K(), tr.Side())
	}
}

func TestRunRejectsUnknownModel(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-model", "teleport"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-k", "0"}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := run([]string{"-r", "-3"}); err == nil {
		t.Fatal("negative radius accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
