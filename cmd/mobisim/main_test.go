package main

import (
	"os"
	"strings"
	"testing"

	"mobilenet/internal/trace"
)

func TestRunModels(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{"-n", "256", "-k", "8", "-model", "broadcast"},
		{"-n", "256", "-k", "8", "-model", "broadcast", "-curve"},
		{"-n", "256", "-k", "8", "-model", "gossip"},
		{"-n", "256", "-k", "8", "-model", "frog"},
		{"-n", "256", "-k", "8", "-model", "cover"},
		{"-n", "256", "-k", "8", "-model", "coverage"},
		{"-n", "256", "-k", "8", "-model", "extinction"},
		{"-n", "256", "-k", "8", "-model", "predator"},
		{"-n", "256", "-k", "8", "-model", "extinction", "-preys", "3"},
		{"-n", "256", "-k", "8", "-model", "gossip", "-reps", "3"},
		{"-n", "256", "-k", "8", "-json"},
		{"-n", "256", "-k", "8", "-model", "broadcast", "-par", "2"},
		{"-n", "256", "-k", "8", "-model", "frog", "-par", "1"},
	}
	for _, args := range cases {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			t.Parallel()
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunWithTrace(t *testing.T) {
	t.Parallel()
	path := t.TempDir() + "/run.mtrace"
	if err := run([]string{"-n", "256", "-k", "8", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 16 {
		t.Errorf("trace file suspiciously small: %d bytes", st.Size())
	}
	// The recorded trace must parse back.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.K() != 8 || tr.Side() != 16 {
		t.Errorf("trace shape k=%d side=%d", tr.K(), tr.Side())
	}
}

func TestRunFromSpecFile(t *testing.T) {
	t.Parallel()
	path := t.TempDir() + "/scenario.json"
	spec := `{"engine":"gossip","nodes":256,"agents":8,"seed":3}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", path}); err != nil {
		t.Fatal(err)
	}
	// A flag set explicitly on the command line overrides the file.
	if err := run([]string{"-spec", path, "-model", "frog"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", t.TempDir() + "/missing.json"}); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestRunTraceReplayMobility(t *testing.T) {
	t.Parallel()
	path := t.TempDir() + "/run.mtrace"
	if err := run([]string{"-n", "256", "-k", "8", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	// Replaying the recorded trajectory runs through the library fallback
	// path (trace motion is not scenario-addressable).
	if err := run([]string{"-n", "256", "-k", "8", "-mobility", "trace:" + path + ",loop"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "256", "-k", "8", "-model", "gossip", "-mobility", "trace:" + path + ",loop"}); err != nil {
		t.Fatal(err)
	}
	// Scenario-only conveniences fail loudly on the trace path rather
	// than being silently dropped.
	for _, args := range [][]string{
		{"-mobility", "trace:" + path, "-json"},
		{"-mobility", "trace:" + path, "-spec", "whatever.json"},
		{"-mobility", "trace:" + path, "-reps", "5"},
		{"-trace", t.TempDir() + "/out.mtrace", "-json"},
		{"-trace", t.TempDir() + "/out.mtrace", "-reps", "5"},
	} {
		if err := run(append([]string{"-n", "256", "-k", "8"}, args...)); err == nil {
			t.Errorf("args %v accepted on the trace path", args)
		}
	}
}

// TestRunWritesProfiles checks the pprof entry point: both profile files
// must exist and be non-empty after a run.
func TestRunWritesProfiles(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	args := []string{"-n", "256", "-k", "8", "-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestRunRejectsUnknownModel(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-model", "teleport"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-k", "0"}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := run([]string{"-r", "-3"}); err == nil {
		t.Fatal("negative radius accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
