package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"mobilenet"
	"mobilenet/internal/scenario"
	"mobilenet/internal/simserve"
)

// captureStdout runs fn with os.Stdout redirected into a buffer. Not safe
// alongside parallel tests that print, so callers stay sequential.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("captured run failed: %v", ferr)
	}
	return out
}

// TestSeriesByteIdentityAcrossSurfaces is the PR's acceptance pin: for one
// observed broadcast scenario, the informed-count series is monotone
// non-decreasing and ends at the population size n=k, and the NDJSON bytes
// are identical across all three surfaces — the library
// (WriteSeriesNDJSON), the CLI (`mobisim -observe informed -series-out -`),
// and the service (GET /v1/results/{hash}/series).
func TestSeriesByteIdentityAcrossSurfaces(t *testing.T) {
	sc := mobilenet.Scenario{Engine: "broadcast", Nodes: 256, Agents: 8, Radius: 1, Seed: 3,
		Observe: &mobilenet.Observation{Observables: []string{"informed"}}}

	// Surface 1: the library.
	res, err := mobilenet.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	var lib bytes.Buffer
	if err := res.WriteSeriesNDJSON(&lib); err != nil {
		t.Fatal(err)
	}

	// The acceptance shape: monotone informed counts ending at n.
	lines := strings.Split(strings.TrimRight(lib.String(), "\n"), "\n")
	prev := 0.0
	last := 0.0
	for _, line := range lines {
		var p struct {
			Name string  `json:"name"`
			Mean float64 `json:"mean"`
		}
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if p.Name != "informed" {
			t.Fatalf("unexpected observable %q", p.Name)
		}
		if p.Mean < prev {
			t.Fatalf("informed series not monotone: %v after %v", p.Mean, prev)
		}
		prev, last = p.Mean, p.Mean
	}
	if last != 8 {
		t.Fatalf("informed series ends at %v, want the full population 8", last)
	}

	// Surface 2: the CLI, -spec + -series-out -.
	specJSON, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	specPath := t.TempDir() + "/observed.json"
	if err := os.WriteFile(specPath, specJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	cli := captureStdout(t, func() error {
		return run([]string{"-spec", specPath, "-series-out", "-"})
	})
	if !bytes.Equal(cli, lib.Bytes()) {
		t.Errorf("CLI series diverges from library:\nCLI:     %s\nlibrary: %s", cli, lib.Bytes())
	}

	// The flag-assembled path (no spec file) matches a library run of its
	// effective scenario too. Flag-assembled broadcasts inject the
	// historical "coverage" metric, which continues the run to T_C (a
	// longer series), so the reference run carries the same metric.
	flagged := sc
	flagged.Metrics = []string{"coverage"}
	flaggedRes, err := mobilenet.RunScenario(flagged)
	if err != nil {
		t.Fatal(err)
	}
	var flaggedLib bytes.Buffer
	if err := flaggedRes.WriteSeriesNDJSON(&flaggedLib); err != nil {
		t.Fatal(err)
	}
	cliFlags := captureStdout(t, func() error {
		return run([]string{"-n", "256", "-k", "8", "-r", "1", "-seed", "3",
			"-observe", "informed", "-series-out", "-"})
	})
	if !bytes.Equal(cliFlags, flaggedLib.Bytes()) {
		t.Errorf("flag-assembled CLI series diverges from library:\nCLI:     %s\nlibrary: %s", cliFlags, flaggedLib.Bytes())
	}

	// Surface 3: the simulation service.
	internalSpec, err := scenario.Parse(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	srv := simserve.New(simserve.Config{Workers: 2})
	defer srv.Shutdown(context.Background())
	ticket, err := srv.Submit(internalSpec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := srv.Wait(ctx, ticket.JobID); err != nil {
		t.Fatal(err)
	}
	served, ok, err := srv.Series(ticket.Hash)
	if !ok || err != nil {
		t.Fatalf("service series: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(served, lib.Bytes()) {
		t.Errorf("service series diverges from library:\nservice: %s\nlibrary: %s", served, lib.Bytes())
	}
}

// TestRunSeriesOutFiles exercises the tabular exports and the error paths
// of -series-out.
func TestRunSeriesOutFiles(t *testing.T) {
	dir := t.TempDir()
	for _, out := range []string{dir + "/series.csv", dir + "/series.json", dir + "/series.ndjson"} {
		if err := run([]string{"-n", "256", "-k", "8", "-observe", "informed,coverage",
			"-observe-every", "4", "-series-out", out}); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(out)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", out)
		}
	}
	data, err := os.ReadFile(dir + "/series.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "observable,step,n,mean,ci95_low,ci95_high\n") {
		t.Errorf("series CSV header: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	// -series-out without observation fails loudly.
	if err := run([]string{"-n", "256", "-k", "8", "-series-out", dir + "/nope.csv"}); err == nil {
		t.Error("-series-out without -observe accepted")
	}
	// Cadence/cap flags without -observe fail loudly.
	if err := run([]string{"-n", "256", "-k", "8", "-observe-every", "4"}); err == nil {
		t.Error("-observe-every without -observe accepted")
	}
	// Unknown observable surfaces the obs validation error.
	if err := run([]string{"-n", "256", "-k", "8", "-observe", "velocity"}); err == nil {
		t.Error("unknown observable accepted")
	}
	// Stdout conflicts and non-scenario paths are rejected.
	for _, args := range [][]string{
		{"-n", "256", "-k", "8", "-observe", "informed", "-series-out", "-", "-json"},
		{"-n", "256", "-k", "8", "-observe", "informed", "-trace", dir + "/t.mtrace"},
		{"-sweep", dir + "/missing.json", "-observe", "informed"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunObserveMeetingAndPredator covers the non-broadcast observable
// vocabularies through the CLI path.
func TestRunObserveMeetingAndPredator(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-model", "meeting", "-r", "4", "-reps", "4",
		"-observe", "meeting", "-series-out", dir + "/meeting.csv"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "256", "-k", "8", "-model", "predator",
		"-observe", "informed", "-series-out", dir + "/pred.csv"}); err != nil {
		t.Fatal(err)
	}
}
