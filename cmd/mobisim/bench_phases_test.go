package main

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"mobilenet/internal/prof"
)

// TestBenchPhasesBaselineSchema pins the standing BENCH_phases.json at the
// repo root: it must carry its own regeneration command, a parseable
// recording date, and per-k phase splits over the fixed vocabulary whose
// fractions sum to one — so the file stays a usable before-picture for the
// incremental-CSR work it motivates.
func TestBenchPhasesBaselineSchema(t *testing.T) {
	t.Parallel()
	data, err := os.ReadFile("../../BENCH_phases.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Description string `json:"description"`
		Recorded    string `json:"recorded"`
		Environment struct {
			GoVersion string `json:"go_version"`
		} `json:"environment"`
		Config struct {
			Engine  string `json:"engine"`
			Density int    `json:"density_nodes_per_agent"`
		} `json:"config"`
		Results map[string]struct {
			Nodes            int                `json:"nodes"`
			Agents           int                `json:"agents"`
			ProfiledSteps    int                `json:"profiled_steps"`
			StepSecondsTotal float64            `json:"step_seconds_total"`
			Seconds          map[string]float64 `json:"seconds"`
			Fractions        map[string]float64 `json:"fractions"`
		} `json:"results"`
		Notes string `json:"notes"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []string{"Regenerate with:", "go run ./cmd/mobisim", "-profile"} {
		if !strings.Contains(doc.Description, probe) {
			t.Errorf("description lacks %q", probe)
		}
	}
	if _, err := time.Parse("2006-01-02", doc.Recorded); err != nil {
		t.Errorf("recorded date %q: %v", doc.Recorded, err)
	}
	if doc.Config.Engine != "broadcast" || doc.Config.Density <= 0 {
		t.Errorf("config = %+v", doc.Config)
	}
	vocab := map[string]bool{}
	for _, name := range prof.PhaseNames() {
		vocab[name] = true
	}
	for _, k := range []string{"k=1000", "k=10000", "k=100000", "k=1000000"} {
		r, ok := doc.Results[k]
		if !ok {
			t.Errorf("results misses %s", k)
			continue
		}
		if r.Nodes != doc.Config.Density*r.Agents {
			t.Errorf("%s: nodes %d break the recorded density %d", k, r.Nodes, doc.Config.Density)
		}
		if r.ProfiledSteps <= 0 || r.StepSecondsTotal <= 0 {
			t.Errorf("%s: degenerate result %+v", k, r)
		}
		var ssum, fsum float64
		for name, s := range r.Seconds {
			if !vocab[name] {
				t.Errorf("%s: phase %q outside the fixed vocabulary", k, name)
			}
			ssum += s
		}
		for _, f := range r.Fractions {
			fsum += f
		}
		// The file rounds seconds to 1µs and fractions to 1e-4, so allow
		// that much accumulation slack.
		if math.Abs(ssum-r.StepSecondsTotal) > 1e-4 {
			t.Errorf("%s: seconds sum %v != step_seconds_total %v", k, ssum, r.StepSecondsTotal)
		}
		if math.Abs(fsum-1) > 1e-3 {
			t.Errorf("%s: fractions sum to %v", k, fsum)
		}
	}
	if !strings.Contains(doc.Notes, "ROADMAP") {
		t.Error("notes do not tie the baseline to its roadmap item")
	}
}
