// Command mobisim runs a single dissemination simulation — or a whole
// parameter sweep — and prints the measured times alongside the paper's
// theoretical scales. Flags assemble a scenario spec (the same declarative
// object cmd/mobiserved serves and mobilenet.RunScenario executes), so one
// dispatch path drives every engine; -spec skips the flag assembly and
// runs a JSON spec file, and -sweep runs a sweep spec file (a base
// scenario plus axes, the same object POST /v1/sweeps accepts) through
// the sweep subsystem, printing the per-point table and optional
// scaling-law fit.
//
// Usage:
//
//	mobisim -n 16384 -k 64 -r 0 -seed 1 -model broadcast
//	mobisim -n 16384 -k 64 -mobility levy:alpha=1.6,max=40
//	mobisim -spec scenario.json -reps 5
//	mobisim -sweep sweep.json                  # table to stdout
//	mobisim -sweep sweep.json -table out.csv   # also export CSV (.json for a JSON table)
//	mobisim -sweep sweep.json -json            # full sweep result as JSON
//	mobisim -observe informed -series-out -    # per-step series as NDJSON to stdout
//	mobisim -observe informed,coverage -observe-every 4 -reps 8 -series-out series.csv
//	mobisim -profile                           # step-phase breakdown (move/index/label/spread/observe)
//	mobisim -reps 4 -trace-out run.trace.json  # execution trace, loadable in Perfetto
//
// Observation (-observe) records per-step time series — the
// dissemination-front curves behind the paper's figures — through the
// scenario's observe block: the same request a -spec file spells as
// {"observe":{...}} and mobiserved serves at /v1/results/{hash}/series.
// -series-out renders the across-replicate aggregate: "-" streams NDJSON
// to stdout (byte-identical to the library and service renders), a .csv
// or .json path exports the tabular form.
//
// Models: broadcast (default), gossip, frog, coverage (alias: cover),
// predator (alias: extinction), meeting (one Lemma 3 trial per replicate;
// -r is the initial separation d).
//
// Mobility (-mobility) selects the motion law, with model-specific
// sub-options after a colon:
//
//	lazy                   the paper's lazy random walk (default)
//	waypoint[:pause=N]     random waypoint with N-tick rest on arrival
//	levy[:alpha=F,max=N]   Lévy flight, tail exponent F, truncation N
//	ballistic[:turn=F]     straight lines, per-tick turn probability F
//	trace:FILE[,loop]      replay a trajectory recorded with -trace
//
// Trace replay is the one motion law that cannot ride a scenario spec (the
// trajectory bytes live outside the spec, so no content hash could address
// the run); it executes through the library API directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"mobilenet"
	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/prof"
	"mobilenet/internal/sweep"
	"mobilenet/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobisim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobisim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 16384, "number of grid nodes (rounded up to a square)")
		k        = fs.Int("k", 64, "number of agents")
		r        = fs.Int("r", 0, "transmission radius (Manhattan)")
		seed     = fs.Uint64("seed", 1, "randomness seed")
		model    = fs.String("model", "broadcast", "engine: broadcast|gossip|frog|coverage|predator|meeting (aliases: cover, extinction)")
		mobSpec  = fs.String("mobility", "lazy", "mobility model: lazy|waypoint[:pause=N]|levy[:alpha=F,max=N]|ballistic[:turn=F]|trace:FILE[,loop]")
		preys    = fs.Int("preys", 0, "prey count for -model predator (default k)")
		reps     = fs.Int("reps", 1, "replicates (position-derived seeds; prints the mean)")
		maxSteps = fs.Int("max-steps", 0, "cap the run at this many steps (0 = engine's theory-derived default)")
		curve    = fs.Bool("curve", false, "print the informed-count curve (broadcast only)")
		observe  = fs.String("observe", "", "comma-separated per-step observables to record: informed|components|largest_component|coverage|meeting")
		obsEvery = fs.Int("observe-every", 0, "observation cadence in steps (0 = every step; needs -observe)")
		obsMax   = fs.Int("observe-max", 0, "max recorded series points per replicate, stride doubling past it (0 = uncapped; needs -observe)")
		series   = fs.String("series-out", "", "write the aggregated series: '-' = NDJSON to stdout, a .csv/.json path = table export")
		specPath = fs.String("spec", "", "run a scenario spec JSON file instead of assembling one from flags")
		sweepIn  = fs.String("sweep", "", "run a sweep spec JSON file (base scenario + axes) through the sweep subsystem")
		tableOut = fs.String("table", "", "with -sweep: export the sweep table to this file (.csv or .json)")
		jsonOut  = fs.Bool("json", false, "print the full scenario (or sweep) result as JSON")
		traceOut = fs.String("trace", "", "record the full trajectory to this file (broadcast only)")
		par      = fs.Int("par", 0, "component-labeller workers: 0 = automatic, 1 = sequential (results identical)")
		profFlag = fs.Bool("profile", false, "record step-phase timings (move/index/label/spread/observe) and print the breakdown")
		execOut  = fs.String("trace-out", "", "export an execution trace of the run as Chrome trace-event JSON to this file (open in Perfetto); implies -profile")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProfiles()
	engine := canonicalEngine(strings.ToLower(strings.TrimSpace(*model)))

	if *observe == "" && (*obsEvery != 0 || *obsMax != 0) {
		return fmt.Errorf("-observe-every and -observe-max need -observe (or an observe block in -spec)")
	}

	if *sweepIn != "" {
		switch {
		case *specPath != "":
			return fmt.Errorf("-sweep cannot be combined with -spec (the sweep file carries its own base scenario)")
		case *traceOut != "":
			return fmt.Errorf("-trace is not supported with -sweep")
		case *observe != "" || *series != "":
			return fmt.Errorf("-observe/-series-out are single-scenario flags; put an observe block in the sweep's base scenario instead")
		case *profFlag || *execOut != "":
			return fmt.Errorf("-profile/-trace-out are single-scenario flags")
		}
		return runSweepFile(*sweepIn, *tableOut, *jsonOut)
	}
	if *tableOut != "" {
		return fmt.Errorf("-table requires -sweep")
	}

	if *traceOut != "" {
		// Recording drives the engine step by step through the library,
		// outside the scenario pipeline; scenario-only conveniences fail
		// loudly here too rather than being silently dropped.
		if *jsonOut {
			return fmt.Errorf("-json is not supported with -trace recording")
		}
		if *reps != 1 {
			return fmt.Errorf("-reps is not supported with -trace recording")
		}
		if *observe != "" || *series != "" {
			return fmt.Errorf("-observe/-series-out are not supported with -trace recording")
		}
		if *profFlag || *execOut != "" {
			return fmt.Errorf("-profile/-trace-out are not supported with -trace recording")
		}
	}

	if isTraceMobility(*mobSpec) {
		// Trace runs are not scenario-addressable, so the scenario-only
		// conveniences must fail loudly instead of being dropped.
		if *jsonOut {
			return fmt.Errorf("-json is not supported with trace mobility (trace runs are not scenario-addressable)")
		}
		if *specPath != "" {
			return fmt.Errorf("-spec cannot be combined with trace mobility (trace runs are not scenario-addressable)")
		}
		if *reps != 1 {
			return fmt.Errorf("-reps is not supported with trace mobility (the replicate schedule is a scenario feature)")
		}
		if *observe != "" || *series != "" {
			return fmt.Errorf("-observe/-series-out are not supported with trace mobility (observation is a scenario feature)")
		}
		if *profFlag || *execOut != "" {
			return fmt.Errorf("-profile/-trace-out are not supported with trace mobility (profiling is a scenario feature)")
		}
		return runTraceMobility(engine, *n, *k, *r, *seed, *mobSpec, *preys, *curve, *traceOut)
	}

	sc, err := buildScenario(fs, *specPath, engine, *n, *k, *r, *seed, *mobSpec, *preys, *reps, *maxSteps, *par, *curve,
		*observe, *obsEvery, *obsMax, *profFlag || *execOut != "")
	if err != nil {
		return err
	}
	// Canonicalisation zeroes the execution-only knobs (they never split
	// the content hash); re-apply them so the run honours the flags.
	parallelism, profiled := sc.Parallelism, sc.Profile
	sc, err = sc.Canonical()
	if err != nil {
		return err
	}
	sc.Parallelism, sc.Profile = parallelism, profiled
	// -series-out conflicts are statically knowable from the canonical
	// spec; fail before the (possibly long) run, next to the other guards.
	if *series != "" {
		if *series == "-" && *jsonOut {
			return fmt.Errorf("-series-out - and -json both write stdout; give -series-out a file path")
		}
		if sc.Observe == nil {
			return fmt.Errorf("-series-out: the scenario observes nothing (add -observe or an observe block the %s engine supports)", sc.Engine)
		}
	}
	net, err := mobilenet.New(sc.Nodes, sc.Agents, mobilenet.WithScenario(sc))
	if err != nil {
		return err
	}
	// NDJSON-to-stdout mode keeps stdout machine-clean, like -json: the
	// human header and result lines are suppressed so the stream is
	// exactly the canonical series bytes.
	if !*jsonOut && *series != "-" {
		hash, err := sc.Hash()
		if err != nil {
			return err
		}
		printHeader(net, sc.Engine, hash[:12])
	}

	if *traceOut != "" {
		if sc.Engine != "broadcast" {
			return fmt.Errorf("-trace records broadcast runs only, engine is %s", sc.Engine)
		}
		// The early flag guard cannot see reps coming from a -spec file.
		if sc.Reps != 1 {
			return fmt.Errorf("-trace recording runs a single replicate; the scenario requests %d reps", sc.Reps)
		}
		mob, err := mobility.Parse(sc.Mobility)
		if err != nil {
			return err
		}
		return tracedBroadcast(net, sc.Seed, sc.Radius, mob, *traceOut)
	}

	var res *mobilenet.ScenarioResult
	if *execOut != "" {
		var tr *mobilenet.ExecTrace
		res, tr, err = mobilenet.RunScenarioTraced(sc)
		if err != nil {
			return err
		}
		if err := writeExecTrace(tr, *execOut, *jsonOut); err != nil {
			return err
		}
	} else {
		res, err = mobilenet.RunScenario(sc)
		if err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		// quiet: -json promises machine-clean stdout.
		return writeSeriesOut(res, *series, true)
	}
	if *series != "-" {
		printEngineResult(net, sc.Engine, res.Reps[0], *curve)
		if len(res.Reps) > 1 {
			fmt.Printf("reps: %d  mean steps: %.1f  all completed: %v\n",
				len(res.Reps), res.MeanSteps, res.AllCompleted)
		}
		printPhases(res.Phases)
	}
	return writeSeriesOut(res, *series, false)
}

// writeExecTrace exports the run's execution trace as Chrome trace-event
// JSON. quiet suppresses the confirmation line (-json keeps stdout clean).
func writeExecTrace(tr *mobilenet.ExecTrace, path string, quiet bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tr.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("trace-out: %s (load in Perfetto or chrome://tracing)\n", path)
	}
	return nil
}

// printPhases renders the aggregated step-phase breakdown in the fixed
// phase order; nil (profiling off) prints nothing.
func printPhases(b *mobilenet.PhaseBreakdown) {
	if b == nil {
		return
	}
	var total float64
	for _, sec := range b.Seconds {
		total += sec
	}
	fmt.Printf("\nstep-phase profile (%d steps, %.4fs total):\n", b.Steps, total)
	for _, name := range prof.PhaseNames() {
		sec, ok := b.Seconds[name]
		if !ok {
			continue
		}
		fmt.Printf("  %-8s %10.4fs  %5.1f%%\n", name, sec, b.Fractions[name]*100)
	}
}

// writeSeriesOut renders the scenario's aggregated series per the
// -series-out flag: nothing when unset, the canonical NDJSON stream on
// "-", or a CSV/JSON table export by file extension. quiet suppresses the
// human confirmation line (-json keeps stdout machine-clean).
func writeSeriesOut(res *mobilenet.ScenarioResult, path string, quiet bool) error {
	if path == "" {
		return nil
	}
	if len(res.Series) == 0 {
		// Unreachable after the pre-run observe check; kept defensive.
		return fmt.Errorf("-series-out: the scenario observed nothing")
	}
	if path == "-" {
		return res.WriteSeriesNDJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(path, ".json"):
		err = res.WriteSeriesTableJSON(f)
	case strings.HasSuffix(path, ".csv"):
		err = res.WriteSeriesCSV(f)
	default:
		err = res.WriteSeriesNDJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("series: %s\n", path)
	}
	return nil
}

// runSweepFile executes a sweep spec file through the sweep subsystem and
// renders the per-point table (stdout or -table file) plus the optional
// scaling-law fit. With -json the full sweep result — whose per-point
// results are byte-identical to mobiserved payloads — is printed instead.
func runSweepFile(path, tableOut string, jsonOut bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sp, err := sweep.Parse(data)
	if err != nil {
		return err
	}
	res, err := sweep.Run(sp, sweep.Options{})
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Printf("sweep: %s  points: %d  axes: %s\n\n",
			res.Hash[:12], len(res.Points), strings.Join(res.AxisFields, ", "))
		if err := res.Table().WriteText(os.Stdout); err != nil {
			return err
		}
		if res.Fit != nil {
			fmt.Printf("\nscaling-law fit: %s\n", res.Fit)
		}
	}
	if tableOut != "" {
		f, err := os.Create(tableOut)
		if err != nil {
			return err
		}
		if strings.HasSuffix(tableOut, ".json") {
			err = res.Table().WriteJSON(f)
		} else {
			err = res.Table().WriteCSV(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("\ntable: %s\n", tableOut)
	}
	return nil
}

// buildScenario assembles the scenario from -spec or from the individual
// flags. Flags explicitly set alongside -spec override the file's fields.
func buildScenario(fs *flag.FlagSet, specPath, engine string, n, k, r int, seed uint64,
	mobSpec string, preys, reps, maxSteps, par int, curve bool,
	observe string, obsEvery, obsMax int, profile bool) (mobilenet.Scenario, error) {
	var observation *mobilenet.Observation
	if observe != "" {
		observation = &mobilenet.Observation{
			Observables: strings.Split(observe, ","),
			Every:       obsEvery,
			MaxPoints:   obsMax,
		}
	}
	sc := mobilenet.Scenario{
		Engine:      engine,
		Nodes:       n,
		Agents:      k,
		Radius:      r,
		Seed:        seed,
		Mobility:    mobSpec,
		Preys:       preys,
		Reps:        reps,
		MaxSteps:    maxSteps,
		Observe:     observation,
		Parallelism: par,
		Profile:     profile,
	}
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return mobilenet.Scenario{}, err
		}
		fromFile, err := mobilenet.ParseScenario(data)
		if err != nil {
			return mobilenet.Scenario{}, err
		}
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["model"] {
			fromFile.Engine = engine
		}
		if set["n"] {
			fromFile.Nodes = n
		}
		if set["k"] {
			fromFile.Agents = k
		}
		if set["r"] {
			fromFile.Radius = r
		}
		if set["seed"] {
			fromFile.Seed = seed
		}
		if set["mobility"] {
			fromFile.Mobility = mobSpec
		}
		if set["preys"] {
			fromFile.Preys = preys
		}
		if set["reps"] {
			fromFile.Reps = reps
		}
		if set["max-steps"] {
			fromFile.MaxSteps = maxSteps
		}
		if set["par"] {
			fromFile.Parallelism = par
		}
		if set["observe"] {
			fromFile.Observe = observation
		}
		// -profile (or -trace-out implying it) turns profiling on over a
		// spec file; a file's own profile:true is honoured either way.
		fromFile.Profile = fromFile.Profile || profile
		sc = fromFile
	}
	if strings.EqualFold(strings.TrimSpace(sc.Engine), "broadcast") {
		// Flag-assembled broadcasts keep the historical mobisim behaviour
		// (always measure T_C; record the curve when asked). A -spec file
		// is left exactly as written — it is the same declarative object
		// mobiserved would serve, and silently injecting metrics would
		// change its hash and payload — except that an explicit -curve
		// flag still opts in. Case-insensitive: a spec file may spell the
		// engine any way Validate accepts.
		if specPath == "" {
			sc.Metrics = append(sc.Metrics, "coverage")
		}
		if curve {
			sc.Metrics = append(sc.Metrics, "curve")
		}
	}
	return sc, nil
}

// startProfiles arms the requested pprof outputs and returns the teardown
// to defer: it stops the CPU profile and snapshots the heap (after a final
// GC, so the profile shows retained memory rather than garbage). Either
// path may be empty. This is the first-class profiling entry point for
// perf work on the simulation hot paths; see EXPERIMENTS.md.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mobisim: cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mobisim: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mobisim: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mobisim: memprofile:", err)
			}
		}
	}, nil
}

// canonicalEngine maps the historical -model aliases onto engine names.
func canonicalEngine(model string) string {
	switch model {
	case "cover":
		return "coverage"
	case "extinction":
		return "predator"
	default:
		return model
	}
}

func isTraceMobility(spec string) bool {
	name, _, _ := strings.Cut(spec, ":")
	return strings.ToLower(strings.TrimSpace(name)) == "trace"
}

// runTraceMobility executes the one non-scenario path: trace-replay motion,
// driven through the library API.
func runTraceMobility(engine string, n, k, r int, seed uint64, mobSpec string, preys int, curve bool, traceOut string) error {
	mob, err := mobilenet.ParseMobility(mobSpec)
	if err != nil {
		return err
	}
	net, err := mobilenet.New(n, k,
		mobilenet.WithRadius(r), mobilenet.WithSeed(seed), mobilenet.WithMobility(mob))
	if err != nil {
		return err
	}
	printHeader(net, engine, "trace-driven (not addressable)")
	if traceOut != "" {
		if engine != "broadcast" {
			return fmt.Errorf("-trace records broadcast runs only, engine is %s", engine)
		}
		m, err := mobility.Parse(mobSpec)
		if err != nil {
			return err
		}
		return tracedBroadcast(net, seed, r, m, traceOut)
	}
	var rep mobilenet.ScenarioRep
	switch engine {
	case "broadcast":
		res, err := net.Broadcast()
		if err != nil {
			return err
		}
		rep = mobilenet.ScenarioRep{Steps: res.Steps, Completed: res.Completed,
			Source: res.Source, CoverageSteps: res.CoverageSteps, Curve: res.InformedCurve}
	case "gossip":
		res, err := net.Gossip()
		if err != nil {
			return err
		}
		rep = mobilenet.ScenarioRep{Steps: res.Steps, Completed: res.Completed, CoverageSteps: -1}
	case "frog":
		res, err := net.FrogBroadcast()
		if err != nil {
			return err
		}
		rep = mobilenet.ScenarioRep{Steps: res.Steps, Completed: res.Completed, CoverageSteps: -1}
	case "coverage":
		res, err := net.CoverTime()
		if err != nil {
			return err
		}
		rep = mobilenet.ScenarioRep{Steps: res.Steps, Completed: res.Completed,
			Covered: res.Covered, CoverageSteps: -1}
	case "predator":
		if preys <= 0 {
			preys = k
		}
		res, err := net.Extinction(preys)
		if err != nil {
			return err
		}
		rep = mobilenet.ScenarioRep{Steps: res.Steps, Completed: res.Completed,
			Survivors: res.Survivors, CoverageSteps: -1}
	default:
		return fmt.Errorf("unknown model %q", engine)
	}
	printEngineResult(net, engine, rep, curve)
	return nil
}

func printHeader(net *mobilenet.Network, engine, scenarioID string) {
	fmt.Printf("grid: %dx%d (n=%d)  agents: k=%d  radius: r=%d  mobility: %s\n",
		net.Side(), net.Side(), net.Nodes(), net.Agents(), net.Radius(), net.Mobility())
	fmt.Printf("engine: %s  scenario: %s\n", engine, scenarioID)
	fmt.Printf("percolation radius r_c = %.2f  regime: %s\n",
		net.PercolationRadius(), regime(net))
	fmt.Printf("theoretical scale n/sqrt(k) = %.1f\n\n", net.ExpectedBroadcastScale())
}

func printEngineResult(net *mobilenet.Network, engine string, rep mobilenet.ScenarioRep, curve bool) {
	switch engine {
	case "broadcast":
		report("broadcast time T_B", rep.Steps, rep.Completed)
		if rep.CoverageSteps >= 0 {
			fmt.Printf("coverage time T_C = %d\n", rep.CoverageSteps)
		}
		if curve {
			printCurve(rep.Curve)
		}
	case "gossip":
		report("gossip time T_G", rep.Steps, rep.Completed)
	case "frog":
		report("frog-model broadcast time", rep.Steps, rep.Completed)
	case "coverage":
		report("cover time", rep.Steps, rep.Completed)
		fmt.Printf("nodes covered: %d/%d\n", rep.Covered, net.Nodes())
	case "predator":
		report("extinction time", rep.Steps, rep.Completed)
		fmt.Printf("surviving preys: %d\n", rep.Survivors)
	case "meeting":
		// One Lemma 3 trial: not meeting within the horizon is a
		// legitimate outcome, not a failed run.
		if rep.Completed {
			fmt.Printf("walks met in the lens after %d steps\n", rep.Steps)
		} else {
			fmt.Printf("no lens meeting within the %d-step horizon\n", rep.Steps)
		}
	}
}

// tracedBroadcast runs a broadcast step by step, recording every position
// into a trace file for later replay/debugging. Recording requires a
// unit-step mobility model (lazy or waypoint); torus-wrapping models
// produce displacements the delta encoding rejects.
func tracedBroadcast(net *mobilenet.Network, seed uint64, radius int, mob mobility.Model, path string) error {
	g, err := grid.New(net.Side())
	if err != nil {
		return err
	}
	b, err := core.NewBroadcast(core.Config{
		Grid: g, K: net.Agents(), Radius: radius, Seed: seed, Source: 0, Mobility: mob,
	})
	if err != nil {
		return err
	}
	rec, err := trace.NewRecorder(net.Side(), b.Population().Positions())
	if err != nil {
		return err
	}
	for !b.Done() {
		b.Step()
		if err := rec.Record(b.Population().Positions()); err != nil {
			return err
		}
	}
	report("broadcast time T_B", b.Time(), true)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := rec.Trace().WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d agents x %d steps -> %s (%d bytes)\n",
		rec.K(), rec.Steps(), path, n)
	return nil
}

func regime(net *mobilenet.Network) string {
	if net.Subcritical() {
		return "subcritical (sparse, T_B = Θ̃(n/√k))"
	}
	return "supercritical (T_B polylog, Peres et al.)"
}

func report(name string, steps int, completed bool) {
	if completed {
		fmt.Printf("%s = %d\n", name, steps)
		return
	}
	fmt.Printf("%s: DID NOT COMPLETE within %d steps\n", name, steps)
}

func printCurve(curve []int) {
	fmt.Println("\ninformed agents over time (sampled):")
	stride := len(curve)/20 + 1
	for t := 0; t < len(curve); t += stride {
		fmt.Printf("  t=%7d  informed=%d\n", t, curve[t])
	}
	if len(curve) > 0 {
		fmt.Printf("  t=%7d  informed=%d\n", len(curve)-1, curve[len(curve)-1])
	}
}
