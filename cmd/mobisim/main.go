// Command mobisim runs a single dissemination simulation and prints the
// measured times alongside the paper's theoretical scales.
//
// Usage:
//
//	mobisim -n 16384 -k 64 -r 0 -seed 1 -model broadcast
//	mobisim -n 16384 -k 64 -mobility levy:alpha=1.6,max=40
//
// Models: broadcast (default), gossip, frog, cover, extinction.
//
// Mobility (-mobility) selects the motion law, with model-specific
// sub-options after a colon:
//
//	lazy                   the paper's lazy random walk (default)
//	waypoint[:pause=N]     random waypoint with N-tick rest on arrival
//	levy[:alpha=F,max=N]   Lévy flight, tail exponent F, truncation N
//	ballistic[:turn=F]     straight lines, per-tick turn probability F
//	trace:FILE[,loop]      replay a trajectory recorded with -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilenet"
	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobisim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mobisim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 16384, "number of grid nodes (rounded up to a square)")
		k        = fs.Int("k", 64, "number of agents")
		r        = fs.Int("r", 0, "transmission radius (Manhattan)")
		seed     = fs.Uint64("seed", 1, "randomness seed")
		model    = fs.String("model", "broadcast", "model: broadcast|gossip|frog|cover|extinction")
		mobSpec  = fs.String("mobility", "lazy", "mobility model: lazy|waypoint[:pause=N]|levy[:alpha=F,max=N]|ballistic[:turn=F]|trace:FILE[,loop]")
		preys    = fs.Int("preys", 0, "prey count for -model extinction (default k)")
		curve    = fs.Bool("curve", false, "print the informed-count curve (broadcast only)")
		traceOut = fs.String("trace", "", "record the full trajectory to this file (broadcast only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The spec is parsed once per representation, up front: the public
	// Mobility for the Network, and (only when recording) the internal
	// model for the core-level traced run.
	mob, err := mobilenet.ParseMobility(*mobSpec)
	if err != nil {
		return err
	}
	net, err := mobilenet.New(*n, *k,
		mobilenet.WithRadius(*r), mobilenet.WithSeed(*seed), mobilenet.WithMobility(mob))
	if err != nil {
		return err
	}
	fmt.Printf("grid: %dx%d (n=%d)  agents: k=%d  radius: r=%d  mobility: %s\n",
		net.Side(), net.Side(), net.Nodes(), net.Agents(), net.Radius(), net.Mobility())
	fmt.Printf("percolation radius r_c = %.2f  regime: %s\n",
		net.PercolationRadius(), regime(net))
	fmt.Printf("theoretical scale n/sqrt(k) = %.1f\n\n", net.ExpectedBroadcastScale())

	switch *model {
	case "broadcast":
		if *traceOut != "" {
			mobModel, err := mobility.Parse(*mobSpec)
			if err != nil {
				return err
			}
			return tracedBroadcast(net, *seed, *r, mobModel, *traceOut)
		}
		res, err := net.Broadcast()
		if err != nil {
			return err
		}
		report("broadcast time T_B", res.Steps, res.Completed)
		if res.CoverageSteps >= 0 {
			fmt.Printf("coverage time T_C = %d\n", res.CoverageSteps)
		}
		if *curve {
			printCurve(res.InformedCurve)
		}
	case "gossip":
		res, err := net.Gossip()
		if err != nil {
			return err
		}
		report("gossip time T_G", res.Steps, res.Completed)
	case "frog":
		res, err := net.FrogBroadcast()
		if err != nil {
			return err
		}
		report("frog-model broadcast time", res.Steps, res.Completed)
	case "cover":
		res, err := net.CoverTime()
		if err != nil {
			return err
		}
		report("cover time", res.Steps, res.Completed)
		fmt.Printf("nodes covered: %d/%d\n", res.Covered, net.Nodes())
	case "extinction":
		m := *preys
		if m <= 0 {
			m = *k
		}
		res, err := net.Extinction(m)
		if err != nil {
			return err
		}
		report("extinction time", res.Steps, res.Completed)
		fmt.Printf("surviving preys: %d\n", res.Survivors)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	return nil
}

// tracedBroadcast runs a broadcast step by step, recording every position
// into a trace file for later replay/debugging. Recording requires a
// unit-step mobility model (lazy or waypoint); torus-wrapping models
// produce displacements the delta encoding rejects.
func tracedBroadcast(net *mobilenet.Network, seed uint64, radius int, mob mobility.Model, path string) error {
	g, err := grid.New(net.Side())
	if err != nil {
		return err
	}
	b, err := core.NewBroadcast(core.Config{
		Grid: g, K: net.Agents(), Radius: radius, Seed: seed, Source: 0, Mobility: mob,
	})
	if err != nil {
		return err
	}
	rec, err := trace.NewRecorder(net.Side(), b.Population().Positions())
	if err != nil {
		return err
	}
	for !b.Done() {
		b.Step()
		if err := rec.Record(b.Population().Positions()); err != nil {
			return err
		}
	}
	report("broadcast time T_B", b.Time(), true)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := rec.Trace().WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d agents x %d steps -> %s (%d bytes)\n",
		rec.K(), rec.Steps(), path, n)
	return nil
}

func regime(net *mobilenet.Network) string {
	if net.Subcritical() {
		return "subcritical (sparse, T_B = Θ̃(n/√k))"
	}
	return "supercritical (T_B polylog, Peres et al.)"
}

func report(name string, steps int, completed bool) {
	if completed {
		fmt.Printf("%s = %d\n", name, steps)
		return
	}
	fmt.Printf("%s: DID NOT COMPLETE within %d steps\n", name, steps)
}

func printCurve(curve []int) {
	fmt.Println("\ninformed agents over time (sampled):")
	stride := len(curve)/20 + 1
	for t := 0; t < len(curve); t += stride {
		fmt.Printf("  t=%7d  informed=%d\n", t, curve[t])
	}
	if len(curve) > 0 {
		fmt.Printf("  t=%7d  informed=%d\n", len(curve)-1, curve[len(curve)-1])
	}
}
