package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{
		{"-c", "0"},
		{"-d", "0s"},
		{"-nodes", "1"},
		{"-agents", "0"},
		{"-workloads", "cold,warmish"},
		{"-workloads", ","},
		{"-definitely-not-a-flag"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestNormalizeAddr(t *testing.T) {
	t.Parallel()
	for in, want := range map[string]string{
		"":                      "",
		"localhost:8080":        "http://localhost:8080",
		"127.0.0.1:18080":       "http://127.0.0.1:18080",
		"http://localhost:8080": "http://localhost:8080",
		"https://bench.example": "https://bench.example",
	} {
		if got := normalizeAddr(in); got != want {
			t.Errorf("normalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSmoke is the CI entry point's twin: the full in-process bench at
// smoke scale, every workload phase exercised, the report schema
// validated, and nothing written to disk.
func TestSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run([]string{"-smoke"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "schema ok") {
		t.Errorf("smoke output missing validation line:\n%s", out.String())
	}
}

// TestWritesBaselineFile runs a tiny two-workload bench into a temp file
// and checks the acceptance-criterion fields survive a JSON round trip:
// p50/p99 latency and throughput for the cold and cached workloads, and
// the regeneration command in the description.
func TestWritesBaselineFile(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	var out bytes.Buffer
	err := run([]string{"-c", "2", "-d", "200ms", "-workloads", "cold,cached", "-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Description, "go run ./cmd/mobibench") {
		t.Error("description lacks the regeneration command")
	}
	for _, name := range []string{"cold", "cached"} {
		res, ok := rep.Results[name]
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		if res.LatencyMS.P50 <= 0 || res.LatencyMS.P99 < res.LatencyMS.P50 || res.ThroughputRPS <= 0 {
			t.Errorf("%s: degenerate result %+v", name, res)
		}
	}
	// The cold workload must have recorded server-side queue-wait and
	// execution stages for its window.
	cold := rep.Results["cold"]
	for _, stage := range []string{"queue_wait", "execute"} {
		if q, ok := cold.ServerStagesMS[stage]; !ok || q.P99 <= 0 {
			t.Errorf("cold workload missing server stage %q (got %+v)", stage, cold.ServerStagesMS)
		}
	}
}

func TestValidateReport(t *testing.T) {
	t.Parallel()
	good := func() *Report {
		return &Report{
			Description: "x. Regenerate with: go run ./cmd/mobibench",
			Recorded:    time.Now().Format("2006-01-02"),
			Results: map[string]WorkloadResult{
				"cold": {Requests: 10, ThroughputRPS: 5, LatencyMS: Quantiles{P50: 1, P99: 2}},
			},
		}
	}
	if err := validateReport(good(), []string{"cold"}); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	for name, breakIt := range map[string]func(*Report){
		"missing regen command": func(r *Report) { r.Description = "nope" },
		"missing workload":      func(r *Report) { delete(r.Results, "cold") },
		"zero requests":         func(r *Report) { r.Results["cold"] = WorkloadResult{} },
		"errors": func(r *Report) {
			w := r.Results["cold"]
			w.Errors = 1
			r.Results["cold"] = w
		},
		"inverted quantiles": func(r *Report) {
			w := r.Results["cold"]
			w.LatencyMS = Quantiles{P50: 5, P99: 1}
			r.Results["cold"] = w
		},
	} {
		r := good()
		breakIt(r)
		if err := validateReport(r, []string{"cold"}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
