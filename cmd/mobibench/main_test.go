package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	for _, args := range [][]string{
		{"-c", "0"},
		{"-d", "0s"},
		{"-nodes", "1"},
		{"-agents", "0"},
		{"-workloads", "cold,warmish"},
		{"-workloads", ","},
		{"-definitely-not-a-flag"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestNormalizeAddr(t *testing.T) {
	t.Parallel()
	for in, want := range map[string]string{
		"":                      "",
		"localhost:8080":        "http://localhost:8080",
		"127.0.0.1:18080":       "http://127.0.0.1:18080",
		"http://localhost:8080": "http://localhost:8080",
		"https://bench.example": "https://bench.example",
	} {
		if got := normalizeAddr(in); got != want {
			t.Errorf("normalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSmoke is the CI entry point's twin: the full in-process bench at
// smoke scale, every workload phase exercised, the report schema
// validated, and nothing written to disk.
func TestSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run([]string{"-smoke"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "schema ok") {
		t.Errorf("smoke output missing validation line:\n%s", out.String())
	}
}

// TestWritesBaselineFile runs a tiny two-workload bench into a temp file
// and checks the acceptance-criterion fields survive a JSON round trip:
// p50/p99 latency and throughput for the cold and cached workloads, and
// the regeneration command in the description.
func TestWritesBaselineFile(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	var out bytes.Buffer
	err := run([]string{"-c", "2", "-d", "200ms", "-workloads", "cold,cached", "-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Description, "go run ./cmd/mobibench") {
		t.Error("description lacks the regeneration command")
	}
	for _, name := range []string{"cold", "cached"} {
		res, ok := rep.Results[name]
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		if res.LatencyMS.P50 <= 0 || res.LatencyMS.P99 < res.LatencyMS.P50 || res.ThroughputRPS <= 0 {
			t.Errorf("%s: degenerate result %+v", name, res)
		}
	}
	// The cold workload must have recorded server-side queue-wait and
	// execution stages for its window.
	cold := rep.Results["cold"]
	for _, stage := range []string{"queue_wait", "execute"} {
		if q, ok := cold.ServerStagesMS[stage]; !ok || q.P99 <= 0 {
			t.Errorf("cold workload missing server stage %q (got %+v)", stage, cold.ServerStagesMS)
		}
	}
}

// TestDistributedWorkloadsSmoke drives the store and fleet workloads at
// smoke scale: each boots its own backend (store-armed server, two-worker
// fleet) and must produce a schema-valid phase.
func TestDistributedWorkloadsSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-workloads", "store,fleet"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "schema ok") {
		t.Errorf("smoke output missing validation line:\n%s", out.String())
	}
}

// TestStoreBenchSmoke runs the BENCH_store.json recorder end to end at
// smoke scale (8 points, short fleet rungs) and checks it validates its
// own report without writing anything.
func TestStoreBenchSmoke(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-store-bench"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "store-bench schema ok") {
		t.Errorf("store-bench output missing validation line:\n%s", out.String())
	}
}

// TestBenchStoreBaselineSchema pins the standing BENCH_store.json at the
// repo root, mirroring the BENCH_phases.json pin: regeneration command,
// parseable date, every cache tier with ordered quantiles, and the fleet
// ladder at its fixed rungs.
func TestBenchStoreBaselineSchema(t *testing.T) {
	t.Parallel()
	data, err := os.ReadFile("../../BENCH_store.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep StoreReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if err := validateStoreReport(&rep); err != nil {
		t.Fatal(err)
	}
	if _, err := time.Parse("2006-01-02", rep.Recorded); err != nil {
		t.Errorf("recorded date %q: %v", rep.Recorded, err)
	}
	// The tiers must relate the way the architecture promises: a memory or
	// disk hit beats re-running the simulation. The margin is large (a
	// cache hit is one round trip; cold includes a full run plus polling),
	// so the pin survives noisy hardware.
	cold, lru, disk := rep.PointLatencyMS["cold"], rep.PointLatencyMS["lru_warm"], rep.PointLatencyMS["disk_warm"]
	if lru.P50 >= cold.P50 {
		t.Errorf("lru_warm p50 %.3fms not faster than cold p50 %.3fms", lru.P50, cold.P50)
	}
	if disk.P50 >= cold.P50 {
		t.Errorf("disk_warm p50 %.3fms not faster than cold p50 %.3fms", disk.P50, cold.P50)
	}
	if !strings.Contains(rep.Notes, "ROADMAP") {
		t.Error("notes do not tie the baseline to its roadmap item")
	}
}

func TestValidateStoreReport(t *testing.T) {
	t.Parallel()
	good := func() *StoreReport {
		return &StoreReport{
			Description: "x. Regenerate with: go run ./cmd/mobibench -store-bench -out BENCH_store.json",
			Recorded:    time.Now().Format("2006-01-02"),
			PointLatencyMS: map[string]Quantiles{
				"cold": {P50: 2, P90: 3, P99: 4}, "lru_warm": {P50: 0.1, P90: 0.2, P99: 0.3},
				"disk_warm": {P50: 0.2, P90: 0.4, P99: 0.6},
			},
			FleetThroughput: []FleetPoint{
				{Workers: 1, Sweeps: 10, SweepsPerS: 5, PointsPerS: 10},
				{Workers: 2, Sweeps: 20, SweepsPerS: 10, PointsPerS: 20},
				{Workers: 4, Sweeps: 30, SweepsPerS: 15, PointsPerS: 30},
			},
		}
	}
	if err := validateStoreReport(good()); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	for name, breakIt := range map[string]func(*StoreReport){
		"missing regen command": func(r *StoreReport) { r.Description = "nope" },
		"missing tier":          func(r *StoreReport) { delete(r.PointLatencyMS, "disk_warm") },
		"inverted quantiles":    func(r *StoreReport) { r.PointLatencyMS["cold"] = Quantiles{P50: 4, P90: 3, P99: 2} },
		"missing rung":          func(r *StoreReport) { r.FleetThroughput = r.FleetThroughput[:2] },
		"wrong rung order":      func(r *StoreReport) { r.FleetThroughput[0].Workers = 2 },
		"zero throughput":       func(r *StoreReport) { r.FleetThroughput[1].SweepsPerS = 0 },
	} {
		r := good()
		breakIt(r)
		if err := validateStoreReport(r); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestValidateReport(t *testing.T) {
	t.Parallel()
	good := func() *Report {
		return &Report{
			Description: "x. Regenerate with: go run ./cmd/mobibench",
			Recorded:    time.Now().Format("2006-01-02"),
			Results: map[string]WorkloadResult{
				"cold": {Requests: 10, ThroughputRPS: 5, LatencyMS: Quantiles{P50: 1, P99: 2}},
			},
		}
	}
	if err := validateReport(good(), []string{"cold"}); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	for name, breakIt := range map[string]func(*Report){
		"missing regen command": func(r *Report) { r.Description = "nope" },
		"missing workload":      func(r *Report) { delete(r.Results, "cold") },
		"zero requests":         func(r *Report) { r.Results["cold"] = WorkloadResult{} },
		"errors": func(r *Report) {
			w := r.Results["cold"]
			w.Errors = 1
			r.Results["cold"] = w
		},
		"inverted quantiles": func(r *Report) {
			w := r.Results["cold"]
			w.LatencyMS = Quantiles{P50: 5, P99: 1}
			r.Results["cold"] = w
		},
	} {
		r := good()
		breakIt(r)
		if err := validateReport(r, []string{"cold"}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
