// Command mobibench is a closed-loop load generator for the simulation
// service: it drives a real mobiserved — an in-process instance by
// default, or any running daemon via -addr — with a configurable number
// of concurrent clients for a fixed duration per workload, measures
// end-to-end request latency client-side on internal/telemetry histograms
// (p50/p90/p99), reads the server's own request-lifecycle stage
// histograms back off /metrics (queue wait, per-replicate execution, …)
// for the same window, and writes the whole baseline into
// BENCH_load.json — the standing traffic baseline every later scaling PR
// must beat.
//
// Workloads (run as separate phases, so each gets its own quantiles):
//
//	cold    unique-seed broadcast scenarios; every request executes a
//	        full simulation (cache miss by construction)
//	cached  one fixed scenario submitted repeatedly; after warm-up every
//	        request is answered from the hash-keyed result cache
//	sweep   small two-point sweeps with unique base seeds, polled to
//	        completion through /v1/sweeps
//	series  NDJSON series fetches of a pre-warmed observed scenario
//	chaos   opt-in: cold-style submissions retried with capped
//	        exponential backoff + jitter against a fault-injecting
//	        server (-chaos, or an external daemon started with one)
//	store   opt-in: resubmissions of a pre-warmed spec set against a
//	        server whose LRU is too small to hold it, so nearly every
//	        hit is served through the disk result store (internal/store);
//	        boots its own store-armed in-process server unless -addr
//	        names a daemon started with -store
//	fleet   opt-in: unique-seed sweeps against a coordinator that shards
//	        points across workers by rendezvous hash (internal/cluster);
//	        boots its own two-worker in-process fleet unless -addr names
//	        a daemon started with -coordinator
//
// -store-bench switches to the disk-store baseline recorder instead of the
// workload phases: it measures the same point's end-to-end latency cold
// (full simulation), LRU-warm (memory hit) and disk-warm (store hit after
// a restart empties the LRU), plus fleet sweep throughput at 1, 2 and 4
// workers, and writes BENCH_store.json — the standing baseline for the
// distributed execution tier.
//
// The loop is closed: each client submits, waits for the result, then
// submits again — so the reported throughput at concurrency -c is the
// service's saturation throughput at that offered concurrency, and
// latency includes queueing exactly as a real caller sees it.
//
// Usage:
//
//	go run ./cmd/mobibench -c 8 -d 3s -out BENCH_load.json
//	go run ./cmd/mobibench -addr http://localhost:8080 -workloads cold,cached
//	go run ./cmd/mobibench -smoke          # CI: seconds, schema-validated, no file written
//	go run ./cmd/mobibench -smoke -trace-out bench-trace.json   # plus a Perfetto-loadable trace
//	go run ./cmd/mobibench -smoke -workloads chaos -chaos 'worker-panic:0.05'   # retry-path smoke
//	go run ./cmd/mobibench -smoke -workloads store,fleet        # distributed-tier smoke
//	go run ./cmd/mobibench -store-bench -out BENCH_store.json   # disk-store + fleet baseline
//
// -trace-out additionally records a client-side execution trace — one span
// per request on a lane per (workload, client), capped per phase so long
// runs stay loadable — validates it as Chrome trace-event JSON, and writes
// it to the given file. Load it in Perfetto (ui.perfetto.dev) or
// chrome://tracing to see the closed loop's request pacing.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobilenet/internal/chaos"
	"mobilenet/internal/cluster"
	"mobilenet/internal/prof"
	"mobilenet/internal/simserve"
	"mobilenet/internal/store"
	"mobilenet/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobibench:", err)
		os.Exit(1)
	}
}

// benchConfig is the parsed flag set.
type benchConfig struct {
	addr       string // base URL of a running mobiserved; "" = in-process
	conc       int
	duration   time.Duration
	workloads  []string
	nodes      int
	agents     int
	out        string // "-" = stdout; "" = validate only
	traceOut   string // "" = no trace export
	smoke      bool
	storeBench bool    // record the BENCH_store.json baseline instead of workload phases
	chaosSpec  string  // fault-injection spec for the in-process server
	rateLimit  float64 // per-client rate limit for the in-process server
}

// knownWorkloads in report order. chaos, store and fleet are opt-in (not
// part of defaultWorkloads): chaos expects a fault-injecting server and
// measures the retry path; store and fleet boot their own store-armed or
// sharded backends — all three would only muddy the standing baseline.
var knownWorkloads = []string{"cold", "cached", "sweep", "series", "chaos", "store", "fleet"}

// defaultWorkloads are the phases a plain run benches.
var defaultWorkloads = []string{"cold", "cached", "sweep", "series"}

// normalizeAddr turns a bare host:port into a base URL, so
// `-addr localhost:8080` and `-addr http://localhost:8080` both work.
func normalizeAddr(addr string) string {
	if addr == "" || strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mobibench", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "host:port or base URL of a running mobiserved (default: start one in-process)")
		conc      = fs.Int("c", 8, "concurrent closed-loop clients per workload")
		duration  = fs.Duration("d", 3*time.Second, "measured duration per workload phase")
		workloads = fs.String("workloads", strings.Join(defaultWorkloads, ","), "comma-separated workload phases to run (chaos is opt-in)")
		nodes     = fs.Int("nodes", 256, "grid nodes of the probe scenario")
		agents    = fs.Int("agents", 8, "agents of the probe scenario")
		outPath   = fs.String("out", "BENCH_load.json", "baseline file to write ('-' = stdout)")
		traceOut  = fs.String("trace-out", "", "export a client-side bench trace (Chrome trace-event JSON, validated before writing) to this file")
		smoke     = fs.Bool("smoke", false, "CI smoke mode: short phases, validate the report schema, write no baseline (honours -addr)")
		storeB    = fs.Bool("store-bench", false, "record the disk-store + fleet baseline (BENCH_store.json) instead of the workload phases")
		chaosSpec = fs.String("chaos", "", "arm the in-process server with this fault-injection spec (see internal/chaos; ignored with -addr)")
		rateLim   = fs.Float64("rate-limit", 0, "per-client rate limit for the in-process server (ignored with -addr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := benchConfig{
		addr: normalizeAddr(*addr), conc: *conc, duration: *duration,
		nodes: *nodes, agents: *agents, out: *outPath, traceOut: *traceOut, smoke: *smoke,
		storeBench: *storeB, chaosSpec: *chaosSpec, rateLimit: *rateLim,
	}
	if cfg.smoke {
		// Seconds, not minutes: every workload path is exercised, but just
		// long enough to produce non-degenerate quantiles. -addr is
		// honoured so CI can smoke a chaos-armed external daemon.
		cfg.conc = 4
		cfg.duration = 250 * time.Millisecond
		cfg.out = ""
	}
	if cfg.conc < 1 || cfg.duration <= 0 || cfg.nodes < 4 || cfg.agents < 1 {
		return fmt.Errorf("c, d, nodes and agents must be positive (and nodes at least 4)")
	}
	if cfg.storeBench {
		if cfg.out == "BENCH_load.json" {
			cfg.out = "BENCH_store.json" // retarget the mode's default; an explicit -out wins
		}
		return runStoreBench(cfg, out)
	}
	for _, w := range strings.Split(*workloads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		known := false
		for _, k := range knownWorkloads {
			known = known || w == k
		}
		if !known {
			return fmt.Errorf("unknown workload %q (want a subset of %s)", w, strings.Join(knownWorkloads, ","))
		}
		cfg.workloads = append(cfg.workloads, w)
	}
	if len(cfg.workloads) == 0 {
		return fmt.Errorf("no workloads selected")
	}

	report, err := runBench(cfg, out)
	if err != nil {
		return err
	}
	if err := validateReport(report, cfg.workloads); err != nil {
		return fmt.Errorf("report failed schema validation: %w", err)
	}
	encoded, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	encoded = append(encoded, '\n')
	switch cfg.out {
	case "":
		fmt.Fprintf(out, "mobibench: schema ok, %d workloads validated, nothing written\n", len(report.Results))
	case "-":
		out.Write(encoded)
	default:
		if err := os.WriteFile(cfg.out, encoded, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "mobibench: wrote %s\n", cfg.out)
	}
	return nil
}

// Report is the BENCH_load.json schema, following the repo's baseline-file
// convention (description with the regeneration command, recorded date,
// environment, per-key results).
type Report struct {
	Description string                    `json:"description"`
	Recorded    string                    `json:"recorded"`
	Environment Environment               `json:"environment"`
	Config      RunConfig                 `json:"config"`
	Results     map[string]WorkloadResult `json:"results"`
	Notes       string                    `json:"notes,omitempty"`
}

// Environment records where the baseline was taken.
type Environment struct {
	Goos       string `json:"goos"`
	Goarch     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	Gomaxprocs int    `json:"gomaxprocs"`
}

// RunConfig records the offered load.
type RunConfig struct {
	Target      string  `json:"target"` // "in-process" or the -addr URL
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"` // per workload phase
	Nodes       int     `json:"nodes"`
	Agents      int     `json:"agents"`
}

// Quantiles are latency quantiles in milliseconds.
type Quantiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
}

// WorkloadResult is one workload phase's outcome: client-side end-to-end
// latency, saturation throughput at the offered concurrency, and the
// server's own stage latencies recovered from /metrics for the same
// window (scrape-resolution quantiles; absent for stages that did not
// fire during the phase).
type WorkloadResult struct {
	Requests       uint64               `json:"requests"`
	Errors         uint64               `json:"errors"`
	ThroughputRPS  float64              `json:"throughput_rps"`
	LatencyMS      Quantiles            `json:"latency_ms"`
	ServerStagesMS map[string]Quantiles `json:"server_stages_ms,omitempty"`
}

// runBench stands up (or connects to) the service, runs every selected
// workload phase, and assembles the report.
func runBench(cfg benchConfig, progress io.Writer) (*Report, error) {
	base := cfg.addr
	if base == "" {
		local, shutdown, err := startLocal(cfg)
		if err != nil {
			return nil, err
		}
		defer shutdown()
		base = local
	}
	cl := newClient(base, cfg.conc)
	if err := cl.waitHealthy(10 * time.Second); err != nil {
		return nil, err
	}

	target := "in-process"
	if cfg.addr != "" {
		target = cfg.addr
	}
	report := &Report{
		Description: fmt.Sprintf(
			"Service load baseline: closed-loop mobibench clients against a real mobiserved (%s), one phase per workload at concurrency %d for %s each. latency_ms is client-measured end-to-end (submit to result available) on log-bucketed telemetry histograms; server_stages_ms are the daemon's own mobiserved_stage_seconds histograms scraped off /metrics and differenced over the phase window; throughput_rps is completed requests over the phase wall-clock — the saturation throughput at this offered concurrency. Regenerate with: go run ./cmd/mobibench -c %d -d %s -out BENCH_load.json",
			target, cfg.conc, cfg.duration, cfg.conc, cfg.duration),
		Recorded: time.Now().Format("2006-01-02"),
		Environment: Environment{
			Goos: runtime.GOOS, Goarch: runtime.GOARCH,
			GoVersion: runtime.Version(), Gomaxprocs: runtime.GOMAXPROCS(0),
		},
		Config: RunConfig{
			Target: target, Concurrency: cfg.conc,
			DurationS: cfg.duration.Seconds(), Nodes: cfg.nodes, Agents: cfg.agents,
		},
		Results: make(map[string]WorkloadResult, len(cfg.workloads)),
		Notes:   "Workloads: cold = unique-seed scenarios (every request simulates), cached = one scenario re-submitted (LRU hit path), sweep = two-point sweeps with unique base seeds, series = NDJSON series fetches of one observed scenario. The cold/cached latency gap is the value of content-hash caching at the service level; queue_wait vs execute in server_stages_ms separates saturation from simulation cost.",
	}
	var tr *prof.Trace
	if cfg.traceOut != "" {
		tr = prof.NewTrace()
	}
	for i, name := range cfg.workloads {
		fmt.Fprintf(progress, "mobibench: workload %s (c=%d, %s)\n", name, cfg.conc, cfg.duration)
		res, err := runPhase(cl, name, cfg, tr, i)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", name, err)
		}
		report.Results[name] = res
	}
	if tr != nil {
		if err := writeBenchTrace(tr, cfg.traceOut, progress); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// traceSampleCap bounds the recorded request spans per workload phase, so
// a long bench run exports a trace a viewer can still load; the cap is a
// sample of the closed loop's steady state, not a census.
const traceSampleCap = 2048

// writeBenchTrace validates the bench trace as Chrome trace-event JSON
// (the same validator the schema tests and CI use) and writes it out.
func writeBenchTrace(tr *prof.Trace, path string, progress io.Writer) error {
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		return err
	}
	spans, err := prof.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		return fmt.Errorf("bench trace failed validation: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(progress, "mobibench: trace %s (%d spans, validated)\n", path, spans)
	return nil
}

// runPhase prepares one workload, scrapes the server's histograms, runs
// the closed loop for the configured duration, scrapes again, and folds
// both views into the result.
func runPhase(cl *client, name string, cfg benchConfig, tr *prof.Trace, phase int) (WorkloadResult, error) {
	request, cleanup, err := makeWorkload(cl, name, cfg)
	if err != nil {
		return WorkloadResult{}, err
	}
	if cleanup != nil {
		defer cleanup()
	}
	before, err := cl.scrape()
	if err != nil {
		return WorkloadResult{}, err
	}

	var (
		hist     telemetry.Histogram
		requests atomic.Uint64
		errCount atomic.Uint64
		sampled  atomic.Uint64
		errMu    sync.Mutex
		firstErr error
	)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.conc; w++ {
		// One trace lane per (workload, client): a closed loop's spans
		// never overlap within a lane, which is what makes the exported
		// timeline readable.
		tid := int64(phase*cfg.conc+w) + 1
		tr.NameThread(tid, fmt.Sprintf("%s client %d", name, w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if err := request(); err != nil {
					errCount.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				d := time.Since(t0)
				hist.Record(d)
				if tr != nil && sampled.Add(1) <= traceSampleCap {
					tr.Add("request", name, tid, t0, d, nil)
				}
				requests.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := cl.scrape()
	if err != nil {
		return WorkloadResult{}, err
	}
	n := requests.Load()
	if n == 0 {
		if firstErr != nil {
			return WorkloadResult{}, fmt.Errorf("no request succeeded; first error: %w", firstErr)
		}
		return WorkloadResult{}, fmt.Errorf("no request completed within %s", cfg.duration)
	}

	res := WorkloadResult{
		Requests:      n,
		Errors:        errCount.Load(),
		ThroughputRPS: float64(n) / elapsed.Seconds(),
		LatencyMS: Quantiles{
			P50:  ms(hist.Quantile(0.50)),
			P90:  ms(hist.Quantile(0.90)),
			P99:  ms(hist.Quantile(0.99)),
			Mean: hist.Sum().Seconds() * 1e3 / float64(n),
		},
		ServerStagesMS: make(map[string]Quantiles),
	}
	for _, stage := range []string{"admission", "queue_wait", "execute", "assemble", "cache_write", "sweep_expand", "series_render"} {
		key := `mobiserved_stage_seconds{stage="` + stage + `"}`
		a, okA := after[key]
		if !okA {
			continue
		}
		window := a
		if b, okB := before[key]; okB {
			if diff, ok := a.Sub(b); ok {
				window = diff
			}
		}
		if window.Count() == 0 {
			continue
		}
		res.ServerStagesMS[stage] = Quantiles{
			P50:  window.Quantile(0.50) * 1e3,
			P90:  window.Quantile(0.90) * 1e3,
			P99:  window.Quantile(0.99) * 1e3,
			Mean: window.Sum / float64(window.Count()) * 1e3,
		}
	}
	if len(res.ServerStagesMS) == 0 {
		res.ServerStagesMS = nil
	}
	return res, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// makeWorkload returns the request function one closed-loop client calls
// repeatedly, after any pre-warm the workload needs, plus an optional
// cleanup for workloads that boot their own backends (store, fleet). Seeds
// come from a package-level counter so every "unique" request is unique
// across the whole bench run, phases included.
func makeWorkload(cl *client, name string, cfg benchConfig) (func() error, func(), error) {
	spec := func(seed uint64) []byte {
		return []byte(fmt.Sprintf(`{"engine":"broadcast","nodes":%d,"agents":%d,"reps":1,"seed":%d}`, cfg.nodes, cfg.agents, seed))
	}
	sweepSpec := func(seed uint64) []byte {
		return []byte(fmt.Sprintf(
			`{"base":{"engine":"broadcast","nodes":%d,"agents":%d,"reps":1,"seed":%d},"axes":[{"field":"agents","values":[%d,%d]}]}`,
			cfg.nodes, cfg.agents, seed, cfg.agents, cfg.agents*2))
	}
	switch name {
	case "cold":
		return func() error {
			_, err := cl.submitAndWait(spec(nextSeed()))
			return err
		}, nil, nil
	case "cached":
		warm := spec(1)
		if _, err := cl.submitAndWait(warm); err != nil {
			return nil, nil, fmt.Errorf("pre-warm: %w", err)
		}
		return func() error {
			_, err := cl.submitAndWait(warm)
			return err
		}, nil, nil
	case "sweep":
		return func() error {
			return cl.sweepAndWait(sweepSpec(nextSeed()))
		}, nil, nil
	case "series":
		observed := []byte(fmt.Sprintf(
			`{"engine":"broadcast","nodes":%d,"agents":%d,"reps":1,"seed":2,"observe":{"observables":["informed"],"every":4}}`,
			cfg.nodes, cfg.agents))
		hash, err := cl.submitAndWait(observed)
		if err != nil {
			return nil, nil, fmt.Errorf("pre-warm: %w", err)
		}
		return func() error { return cl.getSeries(hash) }, nil, nil
	case "store":
		// The disk-hit path: a pre-warmed spec set resubmitted against a
		// server whose LRU holds only two entries, so nearly every answer
		// reads through to the content-addressed disk store. With -addr the
		// external daemon is assumed to carry -store (and its own -cache).
		target, cleanup := cl, func() {}
		if cfg.addr == "" {
			base, shutdown, err := startStoreServer()
			if err != nil {
				return nil, nil, err
			}
			cleanup = shutdown
			target = newClient(base, cfg.conc)
			if err := target.waitHealthy(10 * time.Second); err != nil {
				cleanup()
				return nil, nil, err
			}
		}
		const specSet = 32
		specs := make([][]byte, specSet)
		for i := range specs {
			specs[i] = spec(nextSeed())
			if _, err := target.submitAndWait(specs[i]); err != nil {
				cleanup()
				return nil, nil, fmt.Errorf("pre-warm: %w", err)
			}
		}
		var next atomic.Uint64
		return func() error {
			_, err := target.submitAndWait(specs[next.Add(1)%specSet])
			return err
		}, cleanup, nil
	case "fleet":
		// Unique-seed two-point sweeps against a coordinator: each point is
		// dispatched to its rendezvous home over real HTTP. With -addr the
		// external daemon is assumed to run -coordinator.
		target, cleanup := cl, func() {}
		if cfg.addr == "" {
			base, shutdown, err := startFleet(2)
			if err != nil {
				return nil, nil, err
			}
			cleanup = shutdown
			target = newClient(base, cfg.conc)
			if err := target.waitHealthy(10 * time.Second); err != nil {
				cleanup()
				return nil, nil, err
			}
		}
		return func() error {
			return target.sweepAndWait(sweepSpec(nextSeed()))
		}, cleanup, nil
	case "chaos":
		// The resilience workload: cold-style submissions against a
		// fault-injecting server, retried the way a well-behaved client
		// should — capped exponential backoff with jitter. One logical
		// request keeps one spec across its attempts (a real client
		// retries the same work), and counts as an error only when every
		// attempt fails.
		return func() error {
			s := spec(nextSeed())
			var lastErr error
			backoff := chaosRetryBase
			for attempt := 0; attempt < chaosRetryAttempts; attempt++ {
				if attempt > 0 {
					time.Sleep(jitter(backoff))
					if backoff *= 2; backoff > chaosRetryCap {
						backoff = chaosRetryCap
					}
				}
				if _, err := cl.submitAndWait(s); err == nil {
					return nil
				} else {
					lastErr = err
				}
			}
			return fmt.Errorf("%d attempts exhausted: %w", chaosRetryAttempts, lastErr)
		}, nil, nil
	}
	return nil, nil, fmt.Errorf("unknown workload %q", name)
}

// Chaos-workload retry policy: a handful of attempts, exponential backoff
// from a few milliseconds, capped well under the request budget.
const (
	chaosRetryAttempts = 4
	chaosRetryBase     = 5 * time.Millisecond
	chaosRetryCap      = 200 * time.Millisecond
)

// jitter spreads a backoff uniformly over [d/2, 3d/2), so a fleet of
// retrying clients does not resubmit in lockstep.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

var seedCounter atomic.Uint64

// nextSeed returns a seed no other request of this bench run has used.
// The fixed offset keeps the generated specs clear of the small seeds the
// warm workloads and the repo's examples pin.
func nextSeed() uint64 { return 1_000_000 + seedCounter.Add(1) }

// startLocal boots an in-process mobiserved-equivalent (the same
// simserve.Server behind a plain http.Server on a loopback port) and
// returns its base URL and a shutdown func. -chaos and -rate-limit arm
// the local server so the chaos workload can bench the retry path
// without an external daemon.
func startLocal(cfg benchConfig) (string, func(), error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	injector, err := chaos.Parse(cfg.chaosSpec)
	if err != nil {
		return "", nil, err
	}
	// The deadline machinery is always armed, at the client's own request
	// budget — hardening on, at a level the bench never trips, which is
	// exactly the regime BENCH_load.json records.
	svc := simserve.New(simserve.Config{
		Chaos:           injector,
		RateLimit:       cfg.rateLimit,
		DefaultDeadline: requestBudget,
	})
	hs := &http.Server{Handler: svc}
	go hs.Serve(l)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		svc.Shutdown(ctx)
	}
	return "http://" + l.Addr().String(), shutdown, nil
}

// serveOne puts a service behind a loopback HTTP listener and returns the
// base URL plus a shutdown that drains both layers.
func serveOne(svc *simserve.Server) (string, func(), error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: svc}
	go hs.Serve(l)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		svc.Shutdown(ctx)
	}
	return "http://" + l.Addr().String(), shutdown, nil
}

// startStoreServer boots an in-process server with a disk result store in
// a throwaway directory and an LRU deliberately too small (2 entries) to
// answer the store workload's 32-spec set from memory.
func startStoreServer() (string, func(), error) {
	dir, err := os.MkdirTemp("", "mobibench-store-")
	if err != nil {
		return "", nil, err
	}
	st, err := store.Open(dir, 1<<30)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	svc := simserve.New(simserve.Config{CacheEntries: 2, Store: st, DefaultDeadline: requestBudget})
	base, shutdown, err := serveOne(svc)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	return base, func() { shutdown(); os.RemoveAll(dir) }, nil
}

// startFleet boots n in-process workers plus a coordinator sharding sweep
// points across them — the same wiring cmd/mobiserved -coordinator uses —
// and returns the coordinator's base URL and a fleet-wide shutdown.
func startFleet(n int) (string, func(), error) {
	var shutdowns []func()
	shutdownAll := func() {
		// Coordinator first: it stops dispatching before its workers go away.
		for i := len(shutdowns) - 1; i >= 0; i-- {
			shutdowns[i]()
		}
	}
	fail := func(err error) (string, func(), error) {
		shutdownAll()
		return "", nil, err
	}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		base, shutdown, err := serveOne(simserve.New(simserve.Config{DefaultDeadline: requestBudget}))
		if err != nil {
			return fail(err)
		}
		shutdowns = append(shutdowns, shutdown)
		addrs = append(addrs, strings.TrimPrefix(base, "http://"))
	}
	var coord *simserve.Server
	exec, err := cluster.New(cluster.Config{
		Workers: addrs,
		Lookup:  func(hash string) ([]byte, bool) { return coord.Result(hash) },
		Persist: func(hash string, payload []byte) { coord.PutResult(hash, payload) },
	})
	if err != nil {
		return fail(err)
	}
	coord = simserve.New(simserve.Config{Executor: exec, DefaultDeadline: requestBudget})
	base, shutdown, err := serveOne(coord)
	if err != nil {
		return fail(err)
	}
	shutdowns = append(shutdowns, shutdown)
	return base, shutdownAll, nil
}

// StoreReport is the BENCH_store.json schema: the same point measured
// through each cache tier, plus fleet sweep throughput as workers scale.
type StoreReport struct {
	Description     string               `json:"description"`
	Recorded        string               `json:"recorded"`
	Environment     Environment          `json:"environment"`
	Config          StoreRunConfig       `json:"config"`
	PointLatencyMS  map[string]Quantiles `json:"point_latency_ms"`
	FleetThroughput []FleetPoint         `json:"fleet_throughput"`
	Notes           string               `json:"notes"`
}

// StoreRunConfig records the store-bench shape.
type StoreRunConfig struct {
	Points      int     `json:"points"` // distinct specs in the latency set
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"` // per fleet-throughput rung
	Nodes       int     `json:"nodes"`
	Agents      int     `json:"agents"`
}

// FleetPoint is one fleet-throughput rung: closed-loop unique-seed
// two-point sweeps against a coordinator with that many workers.
type FleetPoint struct {
	Workers    int     `json:"workers"`
	Sweeps     uint64  `json:"sweeps"`
	SweepsPerS float64 `json:"sweeps_per_s"`
	PointsPerS float64 `json:"points_per_s"`
}

// fleetRungs are the worker counts the store bench ladders through.
var fleetRungs = []int{1, 2, 4}

// runStoreBench records the BENCH_store.json baseline: each cache tier's
// point latency (cold = full simulation; lru_warm = memory hit; disk_warm
// = store hit on a restarted server whose LRU starts empty), then fleet
// sweep throughput at 1, 2 and 4 workers.
func runStoreBench(cfg benchConfig, out io.Writer) error {
	points := 64
	if cfg.smoke {
		points = 8
	}
	dir, err := os.MkdirTemp("", "mobibench-storebench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	openServer := func() (*client, func(), error) {
		st, err := store.Open(dir, 1<<30)
		if err != nil {
			return nil, nil, err
		}
		base, shutdown, err := serveOne(simserve.New(simserve.Config{Store: st, DefaultDeadline: requestBudget}))
		if err != nil {
			return nil, nil, err
		}
		cl := newClient(base, cfg.conc)
		if err := cl.waitHealthy(10 * time.Second); err != nil {
			shutdown()
			return nil, nil, err
		}
		return cl, shutdown, nil
	}
	seeds := make([]uint64, points)
	for i := range seeds {
		seeds[i] = nextSeed()
	}
	spec := func(seed uint64) []byte {
		return []byte(fmt.Sprintf(`{"engine":"broadcast","nodes":%d,"agents":%d,"reps":1,"seed":%d}`, cfg.nodes, cfg.agents, seed))
	}
	measure := func(cl *client, class string) (Quantiles, error) {
		var hist telemetry.Histogram
		for _, seed := range seeds {
			t0 := time.Now()
			if _, err := cl.submitAndWait(spec(seed)); err != nil {
				return Quantiles{}, fmt.Errorf("%s point: %w", class, err)
			}
			hist.Record(time.Since(t0))
		}
		return Quantiles{
			P50:  ms(hist.Quantile(0.50)),
			P90:  ms(hist.Quantile(0.90)),
			P99:  ms(hist.Quantile(0.99)),
			Mean: hist.Sum().Seconds() * 1e3 / float64(points),
		}, nil
	}

	fmt.Fprintf(out, "mobibench: store tiers (%d points)\n", points)
	cl, shutdown, err := openServer()
	if err != nil {
		return err
	}
	cold, err := measure(cl, "cold")
	if err != nil {
		shutdown()
		return err
	}
	lru, err := measure(cl, "lru_warm")
	if err != nil {
		shutdown()
		return err
	}
	shutdown() // flushes the write-behind spill; the store now holds every point
	cl, shutdown, err = openServer()
	if err != nil {
		return err
	}
	disk, err := measure(cl, "disk_warm")
	shutdown()
	if err != nil {
		return err
	}

	report := &StoreReport{
		Description: fmt.Sprintf(
			"Distributed execution tier baseline. point_latency_ms measures the same %d distinct scenario points end to end through each cache tier: cold (first submission, full simulation), lru_warm (resubmission answered by the in-memory LRU), disk_warm (resubmission against a restarted server whose LRU starts empty, answered through the content-addressed disk store). fleet_throughput is closed-loop unique-seed two-point sweeps at concurrency %d for %s against an in-process coordinator sharding points by rendezvous hash across 1, 2 and 4 workers. Regenerate with: go run ./cmd/mobibench -store-bench -out BENCH_store.json",
			points, cfg.conc, cfg.duration),
		Recorded: time.Now().Format("2006-01-02"),
		Environment: Environment{
			Goos: runtime.GOOS, Goarch: runtime.GOARCH,
			GoVersion: runtime.Version(), Gomaxprocs: runtime.GOMAXPROCS(0),
		},
		Config: StoreRunConfig{
			Points: points, Concurrency: cfg.conc,
			DurationS: cfg.duration.Seconds(), Nodes: cfg.nodes, Agents: cfg.agents,
		},
		PointLatencyMS: map[string]Quantiles{"cold": cold, "lru_warm": lru, "disk_warm": disk},
		Notes:          "The cold/disk_warm gap is what a restart no longer costs (ROADMAP item 1: results survive the process); the disk_warm/lru_warm gap is the price of a store read-through vs a memory hit. Fleet rungs all run the same in-process workers on one machine, so points_per_s scaling understates what distinct hosts would give — the rung structure (1 vs 2 vs 4) is the comparable shape, not the absolute numbers.",
	}

	for _, n := range fleetRungs {
		fmt.Fprintf(out, "mobibench: fleet rung (%d workers, c=%d, %s)\n", n, cfg.conc, cfg.duration)
		base, stopFleet, err := startFleet(n)
		if err != nil {
			return err
		}
		tcl := newClient(base, cfg.conc)
		if err := tcl.waitHealthy(10 * time.Second); err != nil {
			stopFleet()
			return err
		}
		var sweeps atomic.Uint64
		var firstErr atomic.Value
		deadline := time.Now().Add(cfg.duration)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < cfg.conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					body := fmt.Sprintf(
						`{"base":{"engine":"broadcast","nodes":%d,"agents":%d,"reps":1,"seed":%d},"axes":[{"field":"agents","values":[%d,%d]}]}`,
						cfg.nodes, cfg.agents, nextSeed(), cfg.agents, cfg.agents*2)
					if err := tcl.sweepAndWait([]byte(body)); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					sweeps.Add(1)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		stopFleet()
		if err, _ := firstErr.Load().(error); err != nil {
			return fmt.Errorf("fleet rung %d: %w", n, err)
		}
		done := sweeps.Load()
		if done == 0 {
			return fmt.Errorf("fleet rung %d completed no sweeps within %s", n, cfg.duration)
		}
		rate := float64(done) / elapsed.Seconds()
		report.FleetThroughput = append(report.FleetThroughput, FleetPoint{
			Workers: n, Sweeps: done, SweepsPerS: rate, PointsPerS: 2 * rate,
		})
	}

	if err := validateStoreReport(report); err != nil {
		return fmt.Errorf("store report failed schema validation: %w", err)
	}
	encoded, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	encoded = append(encoded, '\n')
	switch cfg.out {
	case "":
		fmt.Fprintf(out, "mobibench: store-bench schema ok, nothing written\n")
	case "-":
		out.Write(encoded)
	default:
		if err := os.WriteFile(cfg.out, encoded, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "mobibench: wrote %s\n", cfg.out)
	}
	return nil
}

// validateStoreReport checks the BENCH_store.json invariants the schema
// pin and CI rely on: the regeneration command, every cache tier present
// with ordered positive quantiles, and one positive throughput rung per
// fleet size.
func validateStoreReport(r *StoreReport) error {
	if !strings.Contains(r.Description, "go run ./cmd/mobibench -store-bench") {
		return fmt.Errorf("description lacks the regeneration command")
	}
	if r.Recorded == "" {
		return fmt.Errorf("recorded date missing")
	}
	for _, tier := range []string{"cold", "lru_warm", "disk_warm"} {
		q, ok := r.PointLatencyMS[tier]
		if !ok {
			return fmt.Errorf("point_latency_ms misses tier %q", tier)
		}
		if q.P50 <= 0 || q.P90 < q.P50 || q.P99 < q.P90 {
			return fmt.Errorf("tier %q quantiles degenerate: %+v", tier, q)
		}
	}
	if len(r.FleetThroughput) != len(fleetRungs) {
		return fmt.Errorf("fleet_throughput has %d rungs, want %d", len(r.FleetThroughput), len(fleetRungs))
	}
	for i, fp := range r.FleetThroughput {
		if fp.Workers != fleetRungs[i] || fp.Sweeps == 0 || fp.SweepsPerS <= 0 || fp.PointsPerS <= 0 {
			return fmt.Errorf("fleet rung %d degenerate: %+v", i, fp)
		}
	}
	return nil
}

// client is a thin HTTP client over the service API with the polling
// loops the closed-loop workers run.
type client struct {
	base string
	hc   *http.Client
}

func newClient(base string, conc int) *client {
	tr := &http.Transport{
		MaxIdleConns:        conc * 2,
		MaxIdleConnsPerHost: conc * 2,
	}
	return &client{base: strings.TrimRight(base, "/"), hc: &http.Client{Transport: tr, Timeout: 60 * time.Second}}
}

func (c *client) waitHealthy(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		resp, err := c.hc.Get(c.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("server at %s never became healthy", c.base)
}

// pollInterval paces job/sweep polling; well under the cold scenario's
// execution time, so polling quantisation stays small against the
// latencies being measured.
const pollInterval = 300 * time.Microsecond

// requestBudget caps one closed-loop request end to end, so a wedged
// server fails the bench instead of hanging it.
const requestBudget = 30 * time.Second

var errJobFailed = errors.New("job failed")

// submitAndWait POSTs a scenario and blocks until its result exists,
// returning the content hash. A 200 is the cached fast path; a 202 is
// polled through /v1/jobs/{id}.
func (c *client) submitAndWait(spec []byte) (string, error) {
	resp, err := c.hc.Post(c.base+"/v1/run", "application/json", bytes.NewReader(spec))
	if err != nil {
		return "", err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("POST /v1/run: status %d: %.200s", resp.StatusCode, body)
	}
	var ticket struct {
		JobID  string `json:"job_id"`
		Hash   string `json:"hash"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(body, &ticket); err != nil {
		return "", err
	}
	if ticket.Cached {
		return ticket.Hash, nil
	}
	deadline := time.Now().Add(requestBudget)
	for time.Now().Before(deadline) {
		resp, err := c.hc.Get(c.base + "/v1/jobs/" + ticket.JobID)
		if err != nil {
			return "", err
		}
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch view.Status {
		case "done":
			return ticket.Hash, nil
		case "failed":
			return "", fmt.Errorf("%w: %s", errJobFailed, view.Error)
		case "cancelled":
			return "", fmt.Errorf("%w (cancelled): %s", errJobFailed, view.Error)
		}
		time.Sleep(pollInterval)
	}
	return "", fmt.Errorf("job %s did not finish within %s", ticket.JobID, requestBudget)
}

// sweepAndWait POSTs a sweep spec and polls /v1/sweeps/{id} to completion.
func (c *client) sweepAndWait(spec []byte) error {
	resp, err := c.hc.Post(c.base+"/v1/sweeps", "application/json", bytes.NewReader(spec))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("POST /v1/sweeps: status %d: %.200s", resp.StatusCode, body)
	}
	var ticket struct {
		SweepID string `json:"sweep_id"`
	}
	if err := json.Unmarshal(body, &ticket); err != nil {
		return err
	}
	deadline := time.Now().Add(requestBudget)
	for time.Now().Before(deadline) {
		resp, err := c.hc.Get(c.base + "/v1/sweeps/" + ticket.SweepID)
		if err != nil {
			return err
		}
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch view.Status {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("sweep failed: %s", view.Error)
		}
		time.Sleep(pollInterval)
	}
	return fmt.Errorf("sweep %s did not finish within %s", ticket.SweepID, requestBudget)
}

// getSeries fetches a cached result's NDJSON series.
func (c *client) getSeries(hash string) error {
	resp, err := c.hc.Get(c.base + "/v1/results/" + hash + "/series")
	if err != nil {
		return err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET series: status %d", resp.StatusCode)
	}
	return nil
}

// scrape fetches /metrics and parses every histogram series out of it.
func (c *client) scrape() (map[string]telemetry.ScrapedHistogram, error) {
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	return telemetry.ParseHistograms(string(body)), nil
}

// chaosErrorBudget is the error fraction the chaos workload tolerates:
// its retries are expected to absorb injected faults, but a server
// injecting panics at a high rate can legitimately exhaust a few retry
// chains. Every other workload still requires zero errors.
const chaosErrorBudget = 0.2

// validateReport checks the BENCH_load.json invariants every consumer
// (and the CI smoke job) relies on: the regeneration command in the
// description, and per requested workload a non-degenerate result with
// ordered quantiles and no errors (chaos alone gets a bounded error
// budget — surviving injected faults is its whole point).
func validateReport(r *Report, workloads []string) error {
	if !strings.Contains(r.Description, "go run ./cmd/mobibench") {
		return fmt.Errorf("description lacks the regeneration command")
	}
	if r.Recorded == "" {
		return fmt.Errorf("recorded date missing")
	}
	for _, name := range workloads {
		res, ok := r.Results[name]
		if !ok {
			return fmt.Errorf("workload %s missing from results", name)
		}
		total := res.Requests + res.Errors
		switch {
		case res.Requests == 0:
			return fmt.Errorf("workload %s completed zero requests", name)
		case name == "chaos" && float64(res.Errors) > chaosErrorBudget*float64(total):
			return fmt.Errorf("workload chaos exhausted retries on %d of %d requests (budget %g%%)", res.Errors, total, chaosErrorBudget*100)
		case name != "chaos" && res.Errors != 0:
			return fmt.Errorf("workload %s had %d errors", name, res.Errors)
		case res.ThroughputRPS <= 0:
			return fmt.Errorf("workload %s throughput %g", name, res.ThroughputRPS)
		case res.LatencyMS.P50 <= 0 || res.LatencyMS.P99 < res.LatencyMS.P50:
			return fmt.Errorf("workload %s quantiles out of order: p50 %g p99 %g", name, res.LatencyMS.P50, res.LatencyMS.P99)
		}
	}
	return nil
}
