// Command mobibench is a closed-loop load generator for the simulation
// service: it drives a real mobiserved — an in-process instance by
// default, or any running daemon via -addr — with a configurable number
// of concurrent clients for a fixed duration per workload, measures
// end-to-end request latency client-side on internal/telemetry histograms
// (p50/p90/p99), reads the server's own request-lifecycle stage
// histograms back off /metrics (queue wait, per-replicate execution, …)
// for the same window, and writes the whole baseline into
// BENCH_load.json — the standing traffic baseline every later scaling PR
// must beat.
//
// Workloads (run as separate phases, so each gets its own quantiles):
//
//	cold    unique-seed broadcast scenarios; every request executes a
//	        full simulation (cache miss by construction)
//	cached  one fixed scenario submitted repeatedly; after warm-up every
//	        request is answered from the hash-keyed result cache
//	sweep   small two-point sweeps with unique base seeds, polled to
//	        completion through /v1/sweeps
//	series  NDJSON series fetches of a pre-warmed observed scenario
//	chaos   opt-in: cold-style submissions retried with capped
//	        exponential backoff + jitter against a fault-injecting
//	        server (-chaos, or an external daemon started with one)
//
// The loop is closed: each client submits, waits for the result, then
// submits again — so the reported throughput at concurrency -c is the
// service's saturation throughput at that offered concurrency, and
// latency includes queueing exactly as a real caller sees it.
//
// Usage:
//
//	go run ./cmd/mobibench -c 8 -d 3s -out BENCH_load.json
//	go run ./cmd/mobibench -addr http://localhost:8080 -workloads cold,cached
//	go run ./cmd/mobibench -smoke          # CI: seconds, schema-validated, no file written
//	go run ./cmd/mobibench -smoke -trace-out bench-trace.json   # plus a Perfetto-loadable trace
//	go run ./cmd/mobibench -smoke -workloads chaos -chaos 'worker-panic:0.05'   # retry-path smoke
//
// -trace-out additionally records a client-side execution trace — one span
// per request on a lane per (workload, client), capped per phase so long
// runs stay loadable — validates it as Chrome trace-event JSON, and writes
// it to the given file. Load it in Perfetto (ui.perfetto.dev) or
// chrome://tracing to see the closed loop's request pacing.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobilenet/internal/chaos"
	"mobilenet/internal/prof"
	"mobilenet/internal/simserve"
	"mobilenet/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobibench:", err)
		os.Exit(1)
	}
}

// benchConfig is the parsed flag set.
type benchConfig struct {
	addr      string // base URL of a running mobiserved; "" = in-process
	conc      int
	duration  time.Duration
	workloads []string
	nodes     int
	agents    int
	out       string  // "-" = stdout; "" = validate only
	traceOut  string  // "" = no trace export
	smoke     bool
	chaosSpec string  // fault-injection spec for the in-process server
	rateLimit float64 // per-client rate limit for the in-process server
}

// knownWorkloads in report order. chaos is opt-in (not part of
// defaultWorkloads): it expects a fault-injecting server and measures the
// retry path, which would only muddy the standing baseline.
var knownWorkloads = []string{"cold", "cached", "sweep", "series", "chaos"}

// defaultWorkloads are the phases a plain run benches.
var defaultWorkloads = []string{"cold", "cached", "sweep", "series"}

// normalizeAddr turns a bare host:port into a base URL, so
// `-addr localhost:8080` and `-addr http://localhost:8080` both work.
func normalizeAddr(addr string) string {
	if addr == "" || strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mobibench", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "host:port or base URL of a running mobiserved (default: start one in-process)")
		conc      = fs.Int("c", 8, "concurrent closed-loop clients per workload")
		duration  = fs.Duration("d", 3*time.Second, "measured duration per workload phase")
		workloads = fs.String("workloads", strings.Join(defaultWorkloads, ","), "comma-separated workload phases to run (chaos is opt-in)")
		nodes     = fs.Int("nodes", 256, "grid nodes of the probe scenario")
		agents    = fs.Int("agents", 8, "agents of the probe scenario")
		outPath   = fs.String("out", "BENCH_load.json", "baseline file to write ('-' = stdout)")
		traceOut  = fs.String("trace-out", "", "export a client-side bench trace (Chrome trace-event JSON, validated before writing) to this file")
		smoke     = fs.Bool("smoke", false, "CI smoke mode: short phases, validate the report schema, write no baseline (honours -addr)")
		chaosSpec = fs.String("chaos", "", "arm the in-process server with this fault-injection spec (see internal/chaos; ignored with -addr)")
		rateLim   = fs.Float64("rate-limit", 0, "per-client rate limit for the in-process server (ignored with -addr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := benchConfig{
		addr: normalizeAddr(*addr), conc: *conc, duration: *duration,
		nodes: *nodes, agents: *agents, out: *outPath, traceOut: *traceOut, smoke: *smoke,
		chaosSpec: *chaosSpec, rateLimit: *rateLim,
	}
	if cfg.smoke {
		// Seconds, not minutes: every workload path is exercised, but just
		// long enough to produce non-degenerate quantiles. -addr is
		// honoured so CI can smoke a chaos-armed external daemon.
		cfg.conc = 4
		cfg.duration = 250 * time.Millisecond
		cfg.out = ""
	}
	if cfg.conc < 1 || cfg.duration <= 0 || cfg.nodes < 4 || cfg.agents < 1 {
		return fmt.Errorf("c, d, nodes and agents must be positive (and nodes at least 4)")
	}
	for _, w := range strings.Split(*workloads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		known := false
		for _, k := range knownWorkloads {
			known = known || w == k
		}
		if !known {
			return fmt.Errorf("unknown workload %q (want a subset of %s)", w, strings.Join(knownWorkloads, ","))
		}
		cfg.workloads = append(cfg.workloads, w)
	}
	if len(cfg.workloads) == 0 {
		return fmt.Errorf("no workloads selected")
	}

	report, err := runBench(cfg, out)
	if err != nil {
		return err
	}
	if err := validateReport(report, cfg.workloads); err != nil {
		return fmt.Errorf("report failed schema validation: %w", err)
	}
	encoded, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	encoded = append(encoded, '\n')
	switch cfg.out {
	case "":
		fmt.Fprintf(out, "mobibench: schema ok, %d workloads validated, nothing written\n", len(report.Results))
	case "-":
		out.Write(encoded)
	default:
		if err := os.WriteFile(cfg.out, encoded, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "mobibench: wrote %s\n", cfg.out)
	}
	return nil
}

// Report is the BENCH_load.json schema, following the repo's baseline-file
// convention (description with the regeneration command, recorded date,
// environment, per-key results).
type Report struct {
	Description string                    `json:"description"`
	Recorded    string                    `json:"recorded"`
	Environment Environment               `json:"environment"`
	Config      RunConfig                 `json:"config"`
	Results     map[string]WorkloadResult `json:"results"`
	Notes       string                    `json:"notes,omitempty"`
}

// Environment records where the baseline was taken.
type Environment struct {
	Goos       string `json:"goos"`
	Goarch     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	Gomaxprocs int    `json:"gomaxprocs"`
}

// RunConfig records the offered load.
type RunConfig struct {
	Target      string  `json:"target"` // "in-process" or the -addr URL
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"` // per workload phase
	Nodes       int     `json:"nodes"`
	Agents      int     `json:"agents"`
}

// Quantiles are latency quantiles in milliseconds.
type Quantiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
}

// WorkloadResult is one workload phase's outcome: client-side end-to-end
// latency, saturation throughput at the offered concurrency, and the
// server's own stage latencies recovered from /metrics for the same
// window (scrape-resolution quantiles; absent for stages that did not
// fire during the phase).
type WorkloadResult struct {
	Requests       uint64               `json:"requests"`
	Errors         uint64               `json:"errors"`
	ThroughputRPS  float64              `json:"throughput_rps"`
	LatencyMS      Quantiles            `json:"latency_ms"`
	ServerStagesMS map[string]Quantiles `json:"server_stages_ms,omitempty"`
}

// runBench stands up (or connects to) the service, runs every selected
// workload phase, and assembles the report.
func runBench(cfg benchConfig, progress io.Writer) (*Report, error) {
	base := cfg.addr
	if base == "" {
		local, shutdown, err := startLocal(cfg)
		if err != nil {
			return nil, err
		}
		defer shutdown()
		base = local
	}
	cl := newClient(base, cfg.conc)
	if err := cl.waitHealthy(10 * time.Second); err != nil {
		return nil, err
	}

	target := "in-process"
	if cfg.addr != "" {
		target = cfg.addr
	}
	report := &Report{
		Description: fmt.Sprintf(
			"Service load baseline: closed-loop mobibench clients against a real mobiserved (%s), one phase per workload at concurrency %d for %s each. latency_ms is client-measured end-to-end (submit to result available) on log-bucketed telemetry histograms; server_stages_ms are the daemon's own mobiserved_stage_seconds histograms scraped off /metrics and differenced over the phase window; throughput_rps is completed requests over the phase wall-clock — the saturation throughput at this offered concurrency. Regenerate with: go run ./cmd/mobibench -c %d -d %s -out BENCH_load.json",
			target, cfg.conc, cfg.duration, cfg.conc, cfg.duration),
		Recorded: time.Now().Format("2006-01-02"),
		Environment: Environment{
			Goos: runtime.GOOS, Goarch: runtime.GOARCH,
			GoVersion: runtime.Version(), Gomaxprocs: runtime.GOMAXPROCS(0),
		},
		Config: RunConfig{
			Target: target, Concurrency: cfg.conc,
			DurationS: cfg.duration.Seconds(), Nodes: cfg.nodes, Agents: cfg.agents,
		},
		Results: make(map[string]WorkloadResult, len(cfg.workloads)),
		Notes:   "Workloads: cold = unique-seed scenarios (every request simulates), cached = one scenario re-submitted (LRU hit path), sweep = two-point sweeps with unique base seeds, series = NDJSON series fetches of one observed scenario. The cold/cached latency gap is the value of content-hash caching at the service level; queue_wait vs execute in server_stages_ms separates saturation from simulation cost.",
	}
	var tr *prof.Trace
	if cfg.traceOut != "" {
		tr = prof.NewTrace()
	}
	for i, name := range cfg.workloads {
		fmt.Fprintf(progress, "mobibench: workload %s (c=%d, %s)\n", name, cfg.conc, cfg.duration)
		res, err := runPhase(cl, name, cfg, tr, i)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", name, err)
		}
		report.Results[name] = res
	}
	if tr != nil {
		if err := writeBenchTrace(tr, cfg.traceOut, progress); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// traceSampleCap bounds the recorded request spans per workload phase, so
// a long bench run exports a trace a viewer can still load; the cap is a
// sample of the closed loop's steady state, not a census.
const traceSampleCap = 2048

// writeBenchTrace validates the bench trace as Chrome trace-event JSON
// (the same validator the schema tests and CI use) and writes it out.
func writeBenchTrace(tr *prof.Trace, path string, progress io.Writer) error {
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		return err
	}
	spans, err := prof.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		return fmt.Errorf("bench trace failed validation: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(progress, "mobibench: trace %s (%d spans, validated)\n", path, spans)
	return nil
}

// runPhase prepares one workload, scrapes the server's histograms, runs
// the closed loop for the configured duration, scrapes again, and folds
// both views into the result.
func runPhase(cl *client, name string, cfg benchConfig, tr *prof.Trace, phase int) (WorkloadResult, error) {
	request, err := makeWorkload(cl, name, cfg)
	if err != nil {
		return WorkloadResult{}, err
	}
	before, err := cl.scrape()
	if err != nil {
		return WorkloadResult{}, err
	}

	var (
		hist     telemetry.Histogram
		requests atomic.Uint64
		errCount atomic.Uint64
		sampled  atomic.Uint64
		errMu    sync.Mutex
		firstErr error
	)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.conc; w++ {
		// One trace lane per (workload, client): a closed loop's spans
		// never overlap within a lane, which is what makes the exported
		// timeline readable.
		tid := int64(phase*cfg.conc+w) + 1
		tr.NameThread(tid, fmt.Sprintf("%s client %d", name, w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if err := request(); err != nil {
					errCount.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				d := time.Since(t0)
				hist.Record(d)
				if tr != nil && sampled.Add(1) <= traceSampleCap {
					tr.Add("request", name, tid, t0, d, nil)
				}
				requests.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := cl.scrape()
	if err != nil {
		return WorkloadResult{}, err
	}
	n := requests.Load()
	if n == 0 {
		if firstErr != nil {
			return WorkloadResult{}, fmt.Errorf("no request succeeded; first error: %w", firstErr)
		}
		return WorkloadResult{}, fmt.Errorf("no request completed within %s", cfg.duration)
	}

	res := WorkloadResult{
		Requests:      n,
		Errors:        errCount.Load(),
		ThroughputRPS: float64(n) / elapsed.Seconds(),
		LatencyMS: Quantiles{
			P50:  ms(hist.Quantile(0.50)),
			P90:  ms(hist.Quantile(0.90)),
			P99:  ms(hist.Quantile(0.99)),
			Mean: hist.Sum().Seconds() * 1e3 / float64(n),
		},
		ServerStagesMS: make(map[string]Quantiles),
	}
	for _, stage := range []string{"admission", "queue_wait", "execute", "assemble", "cache_write", "sweep_expand", "series_render"} {
		key := `mobiserved_stage_seconds{stage="` + stage + `"}`
		a, okA := after[key]
		if !okA {
			continue
		}
		window := a
		if b, okB := before[key]; okB {
			if diff, ok := a.Sub(b); ok {
				window = diff
			}
		}
		if window.Count() == 0 {
			continue
		}
		res.ServerStagesMS[stage] = Quantiles{
			P50:  window.Quantile(0.50) * 1e3,
			P90:  window.Quantile(0.90) * 1e3,
			P99:  window.Quantile(0.99) * 1e3,
			Mean: window.Sum / float64(window.Count()) * 1e3,
		}
	}
	if len(res.ServerStagesMS) == 0 {
		res.ServerStagesMS = nil
	}
	return res, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// makeWorkload returns the request function one closed-loop client calls
// repeatedly, after any pre-warm the workload needs. Seeds come from a
// package-level counter so every "unique" request is unique across the
// whole bench run, phases included.
func makeWorkload(cl *client, name string, cfg benchConfig) (func() error, error) {
	spec := func(seed uint64) []byte {
		return []byte(fmt.Sprintf(`{"engine":"broadcast","nodes":%d,"agents":%d,"reps":1,"seed":%d}`, cfg.nodes, cfg.agents, seed))
	}
	switch name {
	case "cold":
		return func() error {
			_, err := cl.submitAndWait(spec(nextSeed()))
			return err
		}, nil
	case "cached":
		warm := spec(1)
		if _, err := cl.submitAndWait(warm); err != nil {
			return nil, fmt.Errorf("pre-warm: %w", err)
		}
		return func() error {
			_, err := cl.submitAndWait(warm)
			return err
		}, nil
	case "sweep":
		return func() error {
			seed := nextSeed()
			body := fmt.Sprintf(
				`{"base":{"engine":"broadcast","nodes":%d,"agents":%d,"reps":1,"seed":%d},"axes":[{"field":"agents","values":[%d,%d]}]}`,
				cfg.nodes, cfg.agents, seed, cfg.agents, cfg.agents*2)
			return cl.sweepAndWait([]byte(body))
		}, nil
	case "series":
		observed := []byte(fmt.Sprintf(
			`{"engine":"broadcast","nodes":%d,"agents":%d,"reps":1,"seed":2,"observe":{"observables":["informed"],"every":4}}`,
			cfg.nodes, cfg.agents))
		hash, err := cl.submitAndWait(observed)
		if err != nil {
			return nil, fmt.Errorf("pre-warm: %w", err)
		}
		return func() error { return cl.getSeries(hash) }, nil
	case "chaos":
		// The resilience workload: cold-style submissions against a
		// fault-injecting server, retried the way a well-behaved client
		// should — capped exponential backoff with jitter. One logical
		// request keeps one spec across its attempts (a real client
		// retries the same work), and counts as an error only when every
		// attempt fails.
		return func() error {
			s := spec(nextSeed())
			var lastErr error
			backoff := chaosRetryBase
			for attempt := 0; attempt < chaosRetryAttempts; attempt++ {
				if attempt > 0 {
					time.Sleep(jitter(backoff))
					if backoff *= 2; backoff > chaosRetryCap {
						backoff = chaosRetryCap
					}
				}
				if _, err := cl.submitAndWait(s); err == nil {
					return nil
				} else {
					lastErr = err
				}
			}
			return fmt.Errorf("%d attempts exhausted: %w", chaosRetryAttempts, lastErr)
		}, nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// Chaos-workload retry policy: a handful of attempts, exponential backoff
// from a few milliseconds, capped well under the request budget.
const (
	chaosRetryAttempts = 4
	chaosRetryBase     = 5 * time.Millisecond
	chaosRetryCap      = 200 * time.Millisecond
)

// jitter spreads a backoff uniformly over [d/2, 3d/2), so a fleet of
// retrying clients does not resubmit in lockstep.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

var seedCounter atomic.Uint64

// nextSeed returns a seed no other request of this bench run has used.
// The fixed offset keeps the generated specs clear of the small seeds the
// warm workloads and the repo's examples pin.
func nextSeed() uint64 { return 1_000_000 + seedCounter.Add(1) }

// startLocal boots an in-process mobiserved-equivalent (the same
// simserve.Server behind a plain http.Server on a loopback port) and
// returns its base URL and a shutdown func. -chaos and -rate-limit arm
// the local server so the chaos workload can bench the retry path
// without an external daemon.
func startLocal(cfg benchConfig) (string, func(), error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	injector, err := chaos.Parse(cfg.chaosSpec)
	if err != nil {
		return "", nil, err
	}
	// The deadline machinery is always armed, at the client's own request
	// budget — hardening on, at a level the bench never trips, which is
	// exactly the regime BENCH_load.json records.
	svc := simserve.New(simserve.Config{
		Chaos:           injector,
		RateLimit:       cfg.rateLimit,
		DefaultDeadline: requestBudget,
	})
	hs := &http.Server{Handler: svc}
	go hs.Serve(l)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		svc.Shutdown(ctx)
	}
	return "http://" + l.Addr().String(), shutdown, nil
}

// client is a thin HTTP client over the service API with the polling
// loops the closed-loop workers run.
type client struct {
	base string
	hc   *http.Client
}

func newClient(base string, conc int) *client {
	tr := &http.Transport{
		MaxIdleConns:        conc * 2,
		MaxIdleConnsPerHost: conc * 2,
	}
	return &client{base: strings.TrimRight(base, "/"), hc: &http.Client{Transport: tr, Timeout: 60 * time.Second}}
}

func (c *client) waitHealthy(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		resp, err := c.hc.Get(c.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("server at %s never became healthy", c.base)
}

// pollInterval paces job/sweep polling; well under the cold scenario's
// execution time, so polling quantisation stays small against the
// latencies being measured.
const pollInterval = 300 * time.Microsecond

// requestBudget caps one closed-loop request end to end, so a wedged
// server fails the bench instead of hanging it.
const requestBudget = 30 * time.Second

var errJobFailed = errors.New("job failed")

// submitAndWait POSTs a scenario and blocks until its result exists,
// returning the content hash. A 200 is the cached fast path; a 202 is
// polled through /v1/jobs/{id}.
func (c *client) submitAndWait(spec []byte) (string, error) {
	resp, err := c.hc.Post(c.base+"/v1/run", "application/json", bytes.NewReader(spec))
	if err != nil {
		return "", err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("POST /v1/run: status %d: %.200s", resp.StatusCode, body)
	}
	var ticket struct {
		JobID  string `json:"job_id"`
		Hash   string `json:"hash"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(body, &ticket); err != nil {
		return "", err
	}
	if ticket.Cached {
		return ticket.Hash, nil
	}
	deadline := time.Now().Add(requestBudget)
	for time.Now().Before(deadline) {
		resp, err := c.hc.Get(c.base + "/v1/jobs/" + ticket.JobID)
		if err != nil {
			return "", err
		}
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch view.Status {
		case "done":
			return ticket.Hash, nil
		case "failed":
			return "", fmt.Errorf("%w: %s", errJobFailed, view.Error)
		case "cancelled":
			return "", fmt.Errorf("%w (cancelled): %s", errJobFailed, view.Error)
		}
		time.Sleep(pollInterval)
	}
	return "", fmt.Errorf("job %s did not finish within %s", ticket.JobID, requestBudget)
}

// sweepAndWait POSTs a sweep spec and polls /v1/sweeps/{id} to completion.
func (c *client) sweepAndWait(spec []byte) error {
	resp, err := c.hc.Post(c.base+"/v1/sweeps", "application/json", bytes.NewReader(spec))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("POST /v1/sweeps: status %d: %.200s", resp.StatusCode, body)
	}
	var ticket struct {
		SweepID string `json:"sweep_id"`
	}
	if err := json.Unmarshal(body, &ticket); err != nil {
		return err
	}
	deadline := time.Now().Add(requestBudget)
	for time.Now().Before(deadline) {
		resp, err := c.hc.Get(c.base + "/v1/sweeps/" + ticket.SweepID)
		if err != nil {
			return err
		}
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch view.Status {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("sweep failed: %s", view.Error)
		}
		time.Sleep(pollInterval)
	}
	return fmt.Errorf("sweep %s did not finish within %s", ticket.SweepID, requestBudget)
}

// getSeries fetches a cached result's NDJSON series.
func (c *client) getSeries(hash string) error {
	resp, err := c.hc.Get(c.base + "/v1/results/" + hash + "/series")
	if err != nil {
		return err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET series: status %d", resp.StatusCode)
	}
	return nil
}

// scrape fetches /metrics and parses every histogram series out of it.
func (c *client) scrape() (map[string]telemetry.ScrapedHistogram, error) {
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	return telemetry.ParseHistograms(string(body)), nil
}

// chaosErrorBudget is the error fraction the chaos workload tolerates:
// its retries are expected to absorb injected faults, but a server
// injecting panics at a high rate can legitimately exhaust a few retry
// chains. Every other workload still requires zero errors.
const chaosErrorBudget = 0.2

// validateReport checks the BENCH_load.json invariants every consumer
// (and the CI smoke job) relies on: the regeneration command in the
// description, and per requested workload a non-degenerate result with
// ordered quantiles and no errors (chaos alone gets a bounded error
// budget — surviving injected faults is its whole point).
func validateReport(r *Report, workloads []string) error {
	if !strings.Contains(r.Description, "go run ./cmd/mobibench") {
		return fmt.Errorf("description lacks the regeneration command")
	}
	if r.Recorded == "" {
		return fmt.Errorf("recorded date missing")
	}
	for _, name := range workloads {
		res, ok := r.Results[name]
		if !ok {
			return fmt.Errorf("workload %s missing from results", name)
		}
		total := res.Requests + res.Errors
		switch {
		case res.Requests == 0:
			return fmt.Errorf("workload %s completed zero requests", name)
		case name == "chaos" && float64(res.Errors) > chaosErrorBudget*float64(total):
			return fmt.Errorf("workload chaos exhausted retries on %d of %d requests (budget %g%%)", res.Errors, total, chaosErrorBudget*100)
		case name != "chaos" && res.Errors != 0:
			return fmt.Errorf("workload %s had %d errors", name, res.Errors)
		case res.ThroughputRPS <= 0:
			return fmt.Errorf("workload %s throughput %g", name, res.ThroughputRPS)
		case res.LatencyMS.P50 <= 0 || res.LatencyMS.P99 < res.LatencyMS.P50:
			return fmt.Errorf("workload %s quantiles out of order: p50 %g p99 %g", name, res.LatencyMS.P50, res.LatencyMS.P99)
		}
	}
	return nil
}
