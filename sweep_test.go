package mobilenet_test

import (
	"encoding/json"
	"strings"
	"testing"

	"mobilenet"
	"mobilenet/internal/sweep"
)

func testSweep() mobilenet.Sweep {
	return mobilenet.Sweep{
		Label: "public sweep",
		Base:  mobilenet.Scenario{Engine: "broadcast", Nodes: 256, Agents: 4, Seed: 17, Reps: 2},
		Axes: []mobilenet.SweepAxis{
			{Field: "agents", Values: []any{4, 8}},
			{Field: "radius", Values: []any{0, 1}},
		},
		Fit: "agents",
	}
}

func TestParseSweepRoundTrip(t *testing.T) {
	t.Parallel()
	s := testSweep()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := mobilenet.ParseSweep(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != s.Label || len(back.Axes) != 2 || back.Fit != "agents" {
		t.Fatalf("round trip changed the sweep: %+v", back)
	}
	if _, err := mobilenet.ParseSweep([]byte(`{"base":{},"axez":[]}`)); err == nil {
		t.Error("typoed field accepted")
	}
}

func TestSweepValidateAndHash(t *testing.T) {
	t.Parallel()
	s := testSweep()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	h1, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Axis order must not move the hash.
	r := s
	r.Axes = []mobilenet.SweepAxis{s.Axes[1], s.Axes[0]}
	h2, err := r.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("axis order split the sweep hash")
	}
	bad := s
	bad.Axes = nil
	if err := bad.Validate(); err == nil {
		t.Error("axis-free sweep validated")
	}
	if !strings.Contains(strings.Join(mobilenet.SweepFields(), ","), "agents") {
		t.Error("SweepFields misses agents")
	}
}

// TestRunSweepMatchesInternal pins the public mirror: RunSweep's JSON
// encoding is byte-identical to the internal sweep result (and therefore
// to the mobiserved sweep payload for the same spec).
func TestRunSweepMatchesInternal(t *testing.T) {
	t.Parallel()
	s := testSweep()
	pub, err := mobilenet.RunSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	internalRes, err := sweep.Run(mustInternalSpec(t, s), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(pub)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(internalRes)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("public sweep result diverges from internal:\n%s\nvs\n%s", a, b)
	}
	if pub.Fit == nil || pub.Fit.Axis != "agents" {
		t.Errorf("fit missing from public result: %+v", pub.Fit)
	}
	for i, p := range pub.Points {
		direct, err := mobilenet.RunScenario(p.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Hash != p.Hash {
			t.Errorf("point %d hash mismatch", i)
		}
		if direct.MeanSteps != p.Result.MeanSteps {
			t.Errorf("point %d result diverges from RunScenario", i)
		}
	}
}

// mustInternalSpec reparses the public sweep through the internal layer
// (the public struct marshals to the same JSON the internal Parse reads).
func mustInternalSpec(t *testing.T, s mobilenet.Sweep) sweep.Spec {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sweep.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestRunSweepSurfacesPointErrors(t *testing.T) {
	t.Parallel()
	s := mobilenet.Sweep{
		Base: mobilenet.Scenario{Engine: "broadcast", Nodes: 256, Agents: 4, Seed: 1},
		Axes: []mobilenet.SweepAxis{{Field: "agents", Values: []any{4, 0}}},
	}
	if _, err := mobilenet.RunSweep(s); err == nil || !strings.Contains(err.Error(), "point 1") {
		t.Errorf("invalid point not surfaced with its index, got %v", err)
	}
}
