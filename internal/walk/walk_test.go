package walk

import (
	"math"
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/stats"
	"mobilenet/internal/theory"
)

func TestStepStaysOnGrid(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(5)
	src := rng.New(1)
	p := grid.Point{X: 0, Y: 0}
	for i := 0; i < 10000; i++ {
		p = Step(g, p, src)
		if !g.Contains(p) {
			t.Fatalf("walk left the grid: %v", p)
		}
	}
}

func TestStepMovesByAtMostOne(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(9)
	src := rng.New(2)
	p := g.Center()
	for i := 0; i < 10000; i++ {
		q := Step(g, p, src)
		if d := grid.ManhattanPoints(p, q); d > 1 {
			t.Fatalf("step jumped distance %d: %v -> %v", d, p, q)
		}
		p = q
	}
}

func TestStepKernelProbabilities(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(99)
	src := rng.New(3)
	const trials = 250000

	checkKernel := func(t *testing.T, start grid.Point, nv int) {
		t.Helper()
		moves := make(map[grid.Point]int)
		for i := 0; i < trials; i++ {
			moves[Step(g, start, src)]++
		}
		stayWant := 1 - float64(nv)/5
		tol := 4 * math.Sqrt(0.2*0.8/float64(trials)) // ~4 sigma
		for q, c := range moves {
			got := float64(c) / trials
			want := 0.2
			if q == start {
				want = stayWant
			}
			if math.Abs(got-want) > tol {
				t.Errorf("start %v -> %v: rate %.4f, want %.4f", start, q, got, want)
			}
		}
		if len(moves) != nv+1 {
			t.Errorf("start %v: %d outcomes, want %d", start, len(moves), nv+1)
		}
	}

	t.Run("interior nv=4", func(t *testing.T) { checkKernel(t, g.Center(), 4) })
	t.Run("edge nv=3", func(t *testing.T) { checkKernel(t, grid.Point{X: 0, Y: 50}, 3) })
	t.Run("corner nv=2", func(t *testing.T) { checkKernel(t, grid.Point{X: 0, Y: 0}, 2) })
}

// The defining property of the lazy kernel: uniform stays uniform. March a
// population forward and chi-square test node occupancy (coarse buckets).
func TestStationarityPreserved(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(16) // 256 nodes
	src := rng.New(77)
	const agents = 6400
	const steps = 50
	pos := make([]grid.Point, agents)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(16)), Y: int32(src.Intn(16))}
	}
	for s := 0; s < steps; s++ {
		for i := range pos {
			pos[i] = Step(g, pos[i], src)
		}
	}
	// Bucket into 4x4 super-cells to keep expected counts high.
	counts := make([]int, 16)
	for _, p := range pos {
		counts[(p.Y/4)*4+p.X/4]++
	}
	stat, rejected, err := stats.ChiSquareUniform(counts, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if rejected {
		t.Errorf("occupancy rejected uniformity: chi2=%.1f counts=%v", stat, counts)
	}
}

func TestSimpleStepAlwaysMoves(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(9)
	src := rng.New(41)
	p := g.Center()
	for i := 0; i < 10000; i++ {
		q := SimpleStep(g, p, src)
		if q == p {
			t.Fatalf("simple walk stayed put at %v", p)
		}
		if grid.ManhattanPoints(p, q) != 1 {
			t.Fatalf("simple walk jumped: %v -> %v", p, q)
		}
		if !g.Contains(q) {
			t.Fatalf("simple walk left grid: %v", q)
		}
		p = q
	}
}

func TestSimpleStepPreservesParity(t *testing.T) {
	t.Parallel()
	// The defining flaw of the non-lazy kernel on the bipartite grid:
	// (x+y) mod 2 alternates deterministically every step.
	g := grid.MustNew(11)
	src := rng.New(43)
	p := grid.Point{X: 3, Y: 4}
	parity := (p.X + p.Y) % 2
	for i := 1; i <= 5000; i++ {
		p = SimpleStep(g, p, src)
		want := (parity + int32(i)) % 2
		if (p.X+p.Y)%2 != want {
			t.Fatalf("parity broken at step %d", i)
		}
	}
}

func TestSimpleStepDegenerateGrid(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(1)
	src := rng.New(47)
	p := grid.Point{X: 0, Y: 0}
	if q := SimpleStep(g, p, src); q != p {
		t.Fatalf("1x1 grid step moved to %v", q)
	}
}

func TestTorusStepWraps(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(5)
	src := rng.New(61)
	p := grid.Point{X: 0, Y: 0}
	wrapped := false
	for i := 0; i < 5000; i++ {
		q := TorusStep(g, p, src)
		if !g.Contains(q) {
			t.Fatalf("torus step left the grid: %v", q)
		}
		// Distance on the torus is at most 1 per axis with wraparound.
		dx := q.X - p.X
		dy := q.Y - p.Y
		stepLike := (dx == 0 && dy == 0) ||
			(abs32(dx) == 1 && dy == 0) || (dx == 0 && abs32(dy) == 1) ||
			(abs32(dx) == 4 && dy == 0) || (dx == 0 && abs32(dy) == 4)
		if !stepLike {
			t.Fatalf("torus jump %v -> %v", p, q)
		}
		if abs32(dx) == 4 || abs32(dy) == 4 {
			wrapped = true
		}
		p = q
	}
	if !wrapped {
		t.Error("walk never wrapped around in 5000 steps")
	}
}

func TestTorusStepUniformKernel(t *testing.T) {
	t.Parallel()
	// On the torus every node has the same kernel: stay probability exactly
	// 1/5 even at the former "corner".
	g := grid.MustNew(7)
	src := rng.New(67)
	const trials = 200000
	stays := 0
	start := grid.Point{X: 0, Y: 0}
	for i := 0; i < trials; i++ {
		if TorusStep(g, start, src) == start {
			stays++
		}
	}
	got := float64(stays) / trials
	if math.Abs(got-0.2) > 0.005 {
		t.Errorf("torus corner stay rate %.4f, want 0.2", got)
	}
}

func TestTorusStepDegenerate(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(1)
	src := rng.New(71)
	if q := TorusStep(g, grid.Point{X: 0, Y: 0}, src); q != (grid.Point{X: 0, Y: 0}) {
		t.Fatalf("1x1 torus moved to %v", q)
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestLazyStepBreaksParity(t *testing.T) {
	t.Parallel()
	// In contrast to SimpleStep, the paper's lazy kernel must visit both
	// parity classes from a fixed start.
	g := grid.MustNew(11)
	src := rng.New(53)
	seenParity := map[int32]bool{}
	p := g.Center()
	for i := 0; i < 100; i++ {
		p = Step(g, p, src)
		seenParity[(p.X+p.Y)%2] = true
	}
	if len(seenParity) != 2 {
		t.Fatal("lazy walk stuck on one parity class")
	}
}

func TestWalkerBasics(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(11)
	w := NewWalker(g, g.Center(), rng.New(5), true)
	if w.Pos() != g.Center() || w.Origin() != g.Center() {
		t.Fatal("initial position wrong")
	}
	if w.Range() != 1 {
		t.Fatalf("initial range = %d, want 1", w.Range())
	}
	for i := 0; i < 100; i++ {
		w.Step()
	}
	if w.Steps() != 100 {
		t.Errorf("Steps = %d", w.Steps())
	}
	if w.Range() < 2 {
		t.Errorf("range after 100 steps = %d, implausibly small", w.Range())
	}
	if w.Range() > 101 {
		t.Errorf("range %d exceeds steps+1", w.Range())
	}
	if !w.Visited(g.Center()) {
		t.Error("origin not marked visited")
	}
	if w.MaxDisplacement() < w.Displacement() {
		t.Error("max displacement below current displacement")
	}
}

func TestWalkerWithoutRangeTracking(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	w := NewWalker(g, g.Center(), rng.New(6), false)
	for i := 0; i < 10; i++ {
		w.Step()
	}
	if w.Range() != 0 {
		t.Errorf("Range = %d without tracking, want 0", w.Range())
	}
	if w.Visited(g.Center()) {
		t.Error("Visited true without tracking")
	}
}

func TestNewWalkerUniformOnGrid(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(7)
	src := rng.New(8)
	for i := 0; i < 100; i++ {
		w := NewWalkerUniform(g, src, false)
		if !g.Contains(w.Pos()) {
			t.Fatalf("uniform walker off grid: %v", w.Pos())
		}
	}
}

func TestWalkerDeterministic(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(21)
	w1 := NewWalker(g, g.Center(), rng.New(99), false)
	w2 := NewWalker(g, g.Center(), rng.New(99), false)
	for i := 0; i < 1000; i++ {
		if w1.Step() != w2.Step() {
			t.Fatalf("walks with equal seeds diverged at step %d", i)
		}
	}
}

// Lemma 2(1): Pr[displacement >= lambda*sqrt(l)] <= 2 exp(-lambda^2/2).
func TestDisplacementTailBound(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(301)
	src := rng.New(17)
	const l = 400
	const trials = 2000
	lambdas := []float64{2, 3}
	exceed := make([]int, len(lambdas))
	for tr := 0; tr < trials; tr++ {
		w := NewWalker(g, g.Center(), src.Split(), false)
		for i := 0; i < l; i++ {
			w.Step()
		}
		d := float64(w.MaxDisplacement())
		for j, lam := range lambdas {
			if d >= lam*math.Sqrt(l) {
				exceed[j]++
			}
		}
	}
	for j, lam := range lambdas {
		got := float64(exceed[j]) / trials
		bound := theory.DisplacementTail(lam)
		// Allow modest sampling slack above the theoretical bound.
		if got > bound+0.03 {
			t.Errorf("lambda=%v: tail %.4f exceeds bound %.4f", lam, got, bound)
		}
	}
}

// Lemma 2(2): with probability > 1/2 a walk visits >= c2*l/log(l) nodes.
func TestRangeLowerBound(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(201)
	src := rng.New(23)
	const l = 1024
	const trials = 400
	hits := 0
	bound := theory.RangeLowerBound(l, theory.DefaultC2)
	for tr := 0; tr < trials; tr++ {
		w := NewWalker(g, g.Center(), src.Split(), true)
		for i := 0; i < l; i++ {
			w.Step()
		}
		if float64(w.Range()) >= bound {
			hits++
		}
	}
	if frac := float64(hits) / trials; frac <= 0.5 {
		t.Errorf("range >= bound in only %.2f of runs, want > 0.5", frac)
	}
}

// TestStepAllMatchesStep is the seed-compatibility regression for the
// batched kernel: StepAll must consume the randomness stream exactly like
// successive Step calls, so two populations driven from equal seeds through
// the two paths stay identical for hundreds of steps — including on tiny
// grids where boundary clamping fires constantly.
func TestStepAllMatchesStep(t *testing.T) {
	t.Parallel()
	for _, side := range []int{1, 2, 3, 16, 64} {
		g := grid.MustNew(side)
		const k, steps = 37, 400
		bulkSrc := rng.New(1234)
		scalarSrc := rng.New(1234)
		bulk := make([]grid.Point, k)
		scalar := make([]grid.Point, k)
		for i := range bulk {
			p := grid.Point{X: int32(i % side), Y: int32((i * 7) % side)}
			bulk[i], scalar[i] = p, p
		}
		buf := make([]uint64, k)
		for s := 0; s < steps; s++ {
			StepAll(g, bulk, buf, bulkSrc)
			for i := range scalar {
				scalar[i] = Step(g, scalar[i], scalarSrc)
			}
			for i := range scalar {
				if bulk[i] != scalar[i] {
					t.Fatalf("side=%d t=%d agent %d: batched %v != scalar %v",
						side, s, i, bulk[i], scalar[i])
				}
			}
		}
	}
}

// TestStepAllMovedMatchesStepAll pins the moved-reporting kernel to the
// plain batched one: same seed, bit-identical trajectories, and a moved
// report that is exactly the set of agents whose position changed — the
// contract the incremental connectivity kernel and the coverage engine
// build on. Tiny grids keep boundary clamping (an unmoved "move") hot.
func TestStepAllMovedMatchesStepAll(t *testing.T) {
	t.Parallel()
	for _, side := range []int{1, 2, 3, 16, 64} {
		g := grid.MustNew(side)
		const k, steps = 37, 400
		plainSrc := rng.New(4321)
		movedSrc := rng.New(4321)
		plain := make([]grid.Point, k)
		withMoved := make([]grid.Point, k)
		for i := range plain {
			p := grid.Point{X: int32(i % side), Y: int32((i * 5) % side)}
			plain[i], withMoved[i] = p, p
		}
		buf := make([]uint64, k)
		moved := make([]int32, 0, k)
		prev := make([]grid.Point, k)
		for s := 0; s < steps; s++ {
			copy(prev, withMoved)
			StepAll(g, plain, buf, plainSrc)
			moved = StepAllMoved(g, withMoved, buf, movedSrc, moved[:0])
			for i := range plain {
				if plain[i] != withMoved[i] {
					t.Fatalf("side=%d t=%d agent %d: StepAllMoved %v != StepAll %v",
						side, s, i, withMoved[i], plain[i])
				}
			}
			j := 0
			for i := range withMoved {
				reported := j < len(moved) && moved[j] == int32(i)
				if reported {
					j++
				}
				if actually := withMoved[i] != prev[i]; actually != reported {
					t.Fatalf("side=%d t=%d agent %d: moved=%v but reported=%v",
						side, s, i, actually, reported)
				}
			}
			if j != len(moved) {
				t.Fatalf("side=%d t=%d: moved report not ascending or has extras: %v", side, s, moved)
			}
		}
	}
}

func BenchmarkStep(b *testing.B) {
	g := grid.MustNew(128)
	src := rng.New(1)
	p := g.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = Step(g, p, src)
	}
	_ = p
}

// BenchmarkStepPopulation compares the scalar per-agent loop against the
// batched StepAll kernel at population scale; one op = one synchronized
// step of k = 4096 agents.
func BenchmarkStepPopulation(b *testing.B) {
	const k = 4096
	g := grid.MustNew(512)
	newPos := func() []grid.Point {
		src := rng.New(3)
		pos := make([]grid.Point, k)
		for i := range pos {
			pos[i] = grid.Point{X: int32(src.Intn(512)), Y: int32(src.Intn(512))}
		}
		return pos
	}
	b.Run("scalar", func(b *testing.B) {
		pos := newPos()
		src := rng.New(4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range pos {
				pos[j] = Step(g, pos[j], src)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		pos := newPos()
		src := rng.New(4)
		buf := make([]uint64, k)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			StepAll(g, pos, buf, src)
		}
	})
}
