// Package walk implements the paper's mobility model: the lazy simple
// random walk on the square grid. At each step an agent on a node v with
// nv grid neighbours (nv ∈ {2, 3, 4}) moves to each neighbour with
// probability exactly 1/5 and stays on v with probability 1 − nv/5. This
// specific laziness makes the uniform distribution stationary (paper §2),
// which Experiment E16 verifies empirically.
//
// The package also provides the two walk instrumentations the paper's
// Lemmas 1–2 reason about: the range (number of distinct nodes visited)
// and the displacement from the origin.
package walk

import (
	"math/bits"

	"mobilenet/internal/bitset"
	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
)

// Step advances a single lazy-walk step from p on g, drawing randomness
// from src, and returns the new position.
//
// The draw picks uniformly among five outcomes: the four lattice directions
// and "stay". A direction that would leave the grid results in staying put,
// which yields exactly the paper's kernel: each existing neighbour with
// probability 1/5, stay with the remaining 1 − nv/5.
func Step(g *grid.Grid, p grid.Point, src *rng.Source) grid.Point {
	switch src.Intn(5) {
	case 0:
		if p.X > 0 {
			p.X--
		}
	case 1:
		if p.X < int32(g.Side())-1 {
			p.X++
		}
	case 2:
		if p.Y > 0 {
			p.Y--
		}
	case 3:
		if p.Y < int32(g.Side())-1 {
			p.Y++
		}
	default:
		// stay
	}
	return p
}

// StepAll advances every position one lazy step in index order, batching
// the per-agent randomness: the raw 64-bit draws for the whole population
// are generated first in one tight loop over the generator state (buf must
// have len(pos) capacity), and each is then decoded into both the laziness
// and the direction decision of one agent in a second, generator-free loop.
//
// The batched kernel consumes exactly the same randomness stream as
// len(pos) successive Step calls: Step's Intn(5) draws one Uint64 and keeps
// the high word of its 128-bit product with 5, redrawing only when the
// Lemire rejection fires — which for n = 5 happens precisely on a raw draw
// of zero, reproduced here by the inner redraw loop at the same position in
// the stream. Equal seeds therefore yield trajectories bit-for-bit
// identical to the scalar path, which TestStepAllMatchesStep pins.
func StepAll(g *grid.Grid, pos []grid.Point, buf []uint64, src *rng.Source) {
	buf = buf[:len(pos)]
	for i := range buf {
		u := src.Uint64()
		for u == 0 {
			u = src.Uint64()
		}
		buf[i] = u
	}
	edge := int32(g.Side()) - 1
	for i, u := range buf {
		outcome, _ := bits.Mul64(u, 5)
		p := pos[i]
		switch outcome {
		case 0:
			if p.X > 0 {
				p.X--
			}
		case 1:
			if p.X < edge {
				p.X++
			}
		case 2:
			if p.Y > 0 {
				p.Y--
			}
		case 3:
			if p.Y < edge {
				p.Y++
			}
		default:
			// stay
		}
		pos[i] = p
	}
}

// StepAllMoved advances every position one lazy step exactly like StepAll
// and additionally reports which agents actually changed position: the
// indices of agents whose new position differs from their old one (a "stay"
// outcome, or a direction clamped at the boundary, leaves an agent
// unmoved) are appended to moved in ascending order and the extended slice
// is returned.
//
// The kernel consumes the identical randomness stream as StepAll — and
// therefore as len(pos) successive Step calls — under equal seeds; the
// moved report is derived purely from the position comparison and never
// touches the generator. TestStepAllMovedMatchesStepAll pins both
// properties. The incremental connectivity kernel consumes the report to
// skip index and relabel work for unmoved agents.
func StepAllMoved(g *grid.Grid, pos []grid.Point, buf []uint64, src *rng.Source, moved []int32) []int32 {
	buf = buf[:len(pos)]
	for i := range buf {
		u := src.Uint64()
		for u == 0 {
			u = src.Uint64()
		}
		buf[i] = u
	}
	edge := int32(g.Side()) - 1
	for i, u := range buf {
		outcome, _ := bits.Mul64(u, 5)
		p := pos[i]
		q := p
		switch outcome {
		case 0:
			if q.X > 0 {
				q.X--
			}
		case 1:
			if q.X < edge {
				q.X++
			}
		case 2:
			if q.Y > 0 {
				q.Y--
			}
		case 3:
			if q.Y < edge {
				q.Y++
			}
		default:
			// stay
		}
		if q != p {
			pos[i] = q
			moved = append(moved, int32(i))
		}
	}
	return moved
}

// SimpleStep advances a non-lazy simple-random-walk step: the agent always
// moves, choosing uniformly among its nv grid neighbours.
//
// This kernel is NOT the paper's model — it exists for the laziness
// ablation (experiment X3). On the bipartite grid a simple walk preserves
// coordinate parity ((x+y) mod 2 alternates deterministically), so two
// simple walks whose initial separation is odd can never co-occupy a node:
// r=0 dissemination deadlocks. The paper's 1/5-lazy kernel breaks parity
// and avoids this failure mode.
func SimpleStep(g *grid.Grid, p grid.Point, src *rng.Source) grid.Point {
	side := int32(g.Side())
	if side == 1 {
		return p
	}
	// Collect valid directions; pick uniformly among them.
	var dirs [4]grid.Point
	n := 0
	if p.X > 0 {
		dirs[n] = grid.Point{X: p.X - 1, Y: p.Y}
		n++
	}
	if p.X < side-1 {
		dirs[n] = grid.Point{X: p.X + 1, Y: p.Y}
		n++
	}
	if p.Y > 0 {
		dirs[n] = grid.Point{X: p.X, Y: p.Y - 1}
		n++
	}
	if p.Y < side-1 {
		dirs[n] = grid.Point{X: p.X, Y: p.Y + 1}
		n++
	}
	return dirs[src.Intn(n)]
}

// TorusStep advances a lazy-walk step on the torus: the same 1/5 kernel as
// Step but with wraparound instead of boundary truncation, so every node
// has nv = 4 and the walk stays at each node with probability exactly 1/5.
//
// The paper works on the bounded grid and handles boundaries through the
// reflection principle (its Lemma 1 proof); the torus kernel exists for the
// boundary ablation (experiment X7), which checks that boundary effects
// only cost constants.
func TorusStep(g *grid.Grid, p grid.Point, src *rng.Source) grid.Point {
	side := int32(g.Side())
	if side == 1 {
		return p
	}
	switch src.Intn(5) {
	case 0:
		p.X--
		if p.X < 0 {
			p.X = side - 1
		}
	case 1:
		p.X++
		if p.X == side {
			p.X = 0
		}
	case 2:
		p.Y--
		if p.Y < 0 {
			p.Y = side - 1
		}
	case 3:
		p.Y++
		if p.Y == side {
			p.Y = 0
		}
	default:
		// stay
	}
	return p
}

// Walker is a single random walk with its own randomness stream and
// optional instrumentation.
type Walker struct {
	g      *grid.Grid
	pos    grid.Point
	origin grid.Point
	src    *rng.Source
	steps  int

	visited *bitset.Set // non-nil when range tracking is on
	maxDisp int
}

// NewWalker creates a walker at start on g. Pass trackRange to maintain the
// visited-node set (costs one bitset write per step).
func NewWalker(g *grid.Grid, start grid.Point, src *rng.Source, trackRange bool) *Walker {
	w := &Walker{g: g, pos: start, origin: start, src: src}
	if trackRange {
		w.visited = bitset.New(g.N())
		w.visited.Add(int(g.ID(start)))
	}
	return w
}

// NewWalkerUniform creates a walker at a uniformly random node.
func NewWalkerUniform(g *grid.Grid, src *rng.Source, trackRange bool) *Walker {
	start := grid.Point{
		X: int32(src.Intn(g.Side())),
		Y: int32(src.Intn(g.Side())),
	}
	return NewWalker(g, start, src, trackRange)
}

// Pos returns the current position.
func (w *Walker) Pos() grid.Point { return w.pos }

// Origin returns the starting position.
func (w *Walker) Origin() grid.Point { return w.origin }

// Steps returns how many steps have been taken.
func (w *Walker) Steps() int { return w.steps }

// Step advances the walk one step and returns the new position.
func (w *Walker) Step() grid.Point {
	w.pos = Step(w.g, w.pos, w.src)
	w.steps++
	if w.visited != nil {
		w.visited.Add(int(w.g.ID(w.pos)))
	}
	if d := grid.ManhattanPoints(w.pos, w.origin); d > w.maxDisp {
		w.maxDisp = d
	}
	return w.pos
}

// Range returns the number of distinct nodes visited so far, including the
// start. It returns 0 when range tracking was not enabled.
func (w *Walker) Range() int {
	if w.visited == nil {
		return 0
	}
	return w.visited.Len()
}

// Visited reports whether the walk has visited node p. It returns false
// when range tracking was not enabled.
func (w *Walker) Visited(p grid.Point) bool {
	if w.visited == nil {
		return false
	}
	return w.visited.Contains(int(w.g.ID(p)))
}

// Displacement returns the current Manhattan distance from the origin.
func (w *Walker) Displacement() int {
	return grid.ManhattanPoints(w.pos, w.origin)
}

// MaxDisplacement returns the largest Manhattan distance from the origin
// observed at any step so far.
func (w *Walker) MaxDisplacement() int { return w.maxDisp }
