// Package theory collects the closed-form quantities the paper derives, so
// that experiments and tests can compare measurements against the predicted
// envelopes in one place. Constants that the paper leaves unnamed (c1, c2,
// c3) are exposed as parameters; where an experiment needs a concrete value
// the calibrated defaults below are used.
//
// All formulas use natural logarithms, matching the paper's convention; the
// tilde notation Õ(f) hides polylog factors which the finite-size envelopes
// carry explicitly.
package theory

import "math"

// Defaults for the paper's unnamed constants. They are calibrated by the
// Lemma-validation experiments (E6-E8): c1 and c3 are lower-bound constants
// for hitting/meeting probabilities, c2 a lower-bound constant for the walk
// range. Only their existence matters for the theorems; these values make
// the finite-size envelopes plot sensibly.
const (
	DefaultC1 = 0.04 // Lemma 1 hitting-probability constant
	DefaultC2 = 0.55 // Lemma 2 range constant
	DefaultC3 = 0.05 // Lemma 3 meeting-probability constant
)

// PercolationRadius returns r_c ~ sqrt(n/k), the critical transmission
// radius of the visibility graph (paper, introduction and §3).
func PercolationRadius(n, k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(float64(n) / float64(k))
}

// IslandGamma returns gamma = sqrt(n/(4 e^6 k)), the island parameter of
// Lemma 6: below this scale no component exceeds log n agents w.h.p.
func IslandGamma(n, k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(float64(n) / (4 * math.Exp(6) * float64(k)))
}

// LowerBoundRadius returns sqrt(n/(64 e^6 k)), the radius ceiling under
// which Theorem 2's lower bound applies.
func LowerBoundRadius(n, k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(float64(n) / (64 * math.Exp(6) * float64(k)))
}

// BroadcastScale returns n/sqrt(k), the common scale of Theorems 1 and 2:
// T_B = Θ̃(n/√k).
func BroadcastScale(n, k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	return float64(n) / math.Sqrt(float64(k))
}

// BroadcastLowerEnvelope returns the explicit Theorem 2 lower bound
// n / (1152 e^3 sqrt(k) log^2 n) — the T used in the proof.
func BroadcastLowerEnvelope(n, k int) float64 {
	if k <= 0 || n < 2 {
		return 0
	}
	ln := math.Log(float64(n))
	return float64(n) / (1152 * math.Exp(3) * math.Sqrt(float64(k)) * ln * ln)
}

// WangInfectionClaim returns Θ((n log n log k)/k), the infection-time claim
// of Wang et al. [28] which the paper shows to be incorrect. Experiment E14
// contrasts this 1/k decay against the measured 1/sqrt(k).
func WangInfectionClaim(n, k int) float64 {
	if k <= 1 || n < 2 {
		return 0
	}
	return float64(n) * math.Log(float64(n)) * math.Log(float64(k)) / float64(k)
}

// CoverTimeBound returns O((n log^2 n)/k + n log n), the paper's §4 bound on
// the cover time of k independent random walks (constant factor 1).
func CoverTimeBound(n, k int) float64 {
	if k <= 0 || n < 2 {
		return 0
	}
	ln := math.Log(float64(n))
	return float64(n)*ln*ln/float64(k) + float64(n)*ln
}

// ExtinctionBound returns O((n log^2 n)/k), the paper's §4 bound on the
// extinction time of the predator-prey system (constant factor 1).
func ExtinctionBound(n, k int) float64 {
	if k <= 0 || n < 2 {
		return 0
	}
	ln := math.Log(float64(n))
	return float64(n) * ln * ln / float64(k)
}

// CellSide returns l = sqrt(14 n log^3 n / (c3 k)), the tessellation cell
// side used in the proof of Theorem 1. The result is at least 1.
func CellSide(n, k int, c3 float64) float64 {
	if k <= 0 || n < 2 || c3 <= 0 {
		return 1
	}
	ln := math.Log(float64(n))
	l := math.Sqrt(14 * float64(n) * ln * ln * ln / (c3 * float64(k)))
	if l < 1 {
		return 1
	}
	return l
}

// HittingLowerBound returns c1 / max(1, log d): Lemma 1's lower bound on the
// probability that a walk visits a node at distance d within d^2 steps.
func HittingLowerBound(d int, c1 float64) float64 {
	return c1 / logFloor1(d)
}

// MeetingLowerBound returns c3 / max(1, log d): Lemma 3's lower bound on the
// probability that two walks starting at distance d meet within d^2 steps at
// a node of the shared disc D.
func MeetingLowerBound(d int, c3 float64) float64 {
	return c3 / logFloor1(d)
}

// DisplacementTail returns 2 exp(-lambda^2/2): Lemma 2(1)'s bound on the
// probability that a walk strays at least lambda*sqrt(l) from its origin
// within l steps.
func DisplacementTail(lambda float64) float64 {
	return 2 * math.Exp(-lambda*lambda/2)
}

// RangeLowerBound returns c2 * l / log l: Lemma 2(2)'s bound on the number
// of distinct nodes visited in l steps (with probability > 1/2).
func RangeLowerBound(l int, c2 float64) float64 {
	if l < 2 {
		return float64(l)
	}
	return c2 * float64(l) / math.Log(float64(l))
}

// FrontierWindow returns gamma^2/(144 log n), the length of the time window
// in Lemma 7 over which the informed frontier advances at most
// FrontierAdvance.
func FrontierWindow(n, k int) float64 {
	if n < 2 {
		return 1
	}
	g := IslandGamma(n, k)
	w := g * g / (144 * math.Log(float64(n)))
	if w < 1 {
		return 1
	}
	return w
}

// FrontierAdvance returns (gamma log n)/2, Lemma 7's cap on frontier
// movement per FrontierWindow steps.
func FrontierAdvance(n, k int) float64 {
	if n < 2 {
		return 0
	}
	return IslandGamma(n, k) * math.Log(float64(n)) / 2
}

// IslandSizeCap returns log n, Lemma 6's w.h.p. ceiling on the number of
// agents in any island of parameter IslandGamma.
func IslandSizeCap(n int) float64 {
	if n < 3 {
		return 1
	}
	return math.Log(float64(n))
}

// FarAgentProbability returns 1 - 2^-(k-1), the probability (Theorem 2) that
// some agent starts at distance at least sqrt(n)/2 from the rumor source.
func FarAgentProbability(k int) float64 {
	if k < 2 {
		return 0
	}
	return 1 - math.Pow(2, -float64(k-1))
}

// logFloor1 returns max(1, ln d) treating d <= 1 as 1.
func logFloor1(d int) float64 {
	if d <= 1 {
		return 1
	}
	l := math.Log(float64(d))
	if l < 1 {
		return 1
	}
	return l
}
