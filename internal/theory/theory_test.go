package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPercolationRadius(t *testing.T) {
	t.Parallel()
	if got := PercolationRadius(10000, 100); got != 10 {
		t.Errorf("rc(10000,100) = %v, want 10", got)
	}
	if !math.IsInf(PercolationRadius(100, 0), 1) {
		t.Error("rc with k=0 should be +Inf")
	}
}

func TestRadiusOrdering(t *testing.T) {
	t.Parallel()
	// The paper's radii are strictly ordered:
	// LowerBoundRadius < IslandGamma < PercolationRadius.
	for _, tc := range []struct{ n, k int }{
		{1 << 10, 4}, {1 << 14, 64}, {1 << 16, 512}, {100, 50},
	} {
		lb := LowerBoundRadius(tc.n, tc.k)
		g := IslandGamma(tc.n, tc.k)
		rc := PercolationRadius(tc.n, tc.k)
		if !(lb < g && g < rc) {
			t.Errorf("n=%d k=%d: ordering violated: %v < %v < %v", tc.n, tc.k, lb, g, rc)
		}
		// Exact relations: gamma = rc/(2 e^3); lb = gamma/4.
		if math.Abs(g-rc/(2*math.Exp(3))) > 1e-9 {
			t.Errorf("gamma != rc/(2e^3): %v vs %v", g, rc/(2*math.Exp(3)))
		}
		if math.Abs(lb-g/4) > 1e-9 {
			t.Errorf("lb != gamma/4: %v vs %v", lb, g/4)
		}
	}
}

func TestBroadcastScale(t *testing.T) {
	t.Parallel()
	if got := BroadcastScale(100, 4); got != 50 {
		t.Errorf("BroadcastScale(100,4) = %v, want 50", got)
	}
	// Doubling k shrinks the scale by sqrt(2).
	a, b := BroadcastScale(1000, 10), BroadcastScale(1000, 20)
	if math.Abs(a/b-math.Sqrt(2)) > 1e-9 {
		t.Errorf("scale ratio %v, want sqrt(2)", a/b)
	}
}

func TestBroadcastLowerEnvelopeBelowScale(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ n, k int }{{1 << 12, 16}, {1 << 14, 64}} {
		lo := BroadcastLowerEnvelope(tc.n, tc.k)
		hi := BroadcastScale(tc.n, tc.k)
		if lo <= 0 || lo >= hi {
			t.Errorf("n=%d k=%d: envelope %v not in (0, %v)", tc.n, tc.k, lo, hi)
		}
	}
	if BroadcastLowerEnvelope(1, 4) != 0 || BroadcastLowerEnvelope(100, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestWangClaimDecaysFasterThanTruth(t *testing.T) {
	t.Parallel()
	n := 1 << 14
	// Ratio Wang/Θ̃(n/√k) must shrink as k grows: Wang ~ 1/k vs truth ~ 1/√k.
	r16 := WangInfectionClaim(n, 16) / BroadcastScale(n, 16)
	r256 := WangInfectionClaim(n, 256) / BroadcastScale(n, 256)
	if r256 >= r16 {
		t.Errorf("Wang ratio should decay with k: r16=%v r256=%v", r16, r256)
	}
	if WangInfectionClaim(100, 1) != 0 {
		t.Error("k=1 Wang claim should be 0 (log k = 0 edge)")
	}
}

func TestCoverTimeBoundShape(t *testing.T) {
	t.Parallel()
	n := 1 << 12
	// More walkers never raises the bound; the n log n term dominates for huge k.
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8, 1 << 20} {
		b := CoverTimeBound(n, k)
		if b > prev {
			t.Errorf("CoverTimeBound not monotone at k=%d", k)
		}
		prev = b
	}
	floor := float64(n) * math.Log(float64(n))
	if CoverTimeBound(n, 1<<20) < floor {
		t.Errorf("bound fell below the n log n floor")
	}
}

func TestExtinctionBound(t *testing.T) {
	t.Parallel()
	n := 1 << 12
	if ExtinctionBound(n, 16) <= ExtinctionBound(n, 64) {
		t.Error("extinction bound should decrease in k")
	}
	ratio := ExtinctionBound(n, 16) / ExtinctionBound(n, 64)
	if math.Abs(ratio-4) > 1e-9 {
		t.Errorf("1/k scaling violated: ratio %v, want 4", ratio)
	}
}

func TestCellSide(t *testing.T) {
	t.Parallel()
	n, k := 1<<14, 64
	l := CellSide(n, k, DefaultC3)
	if l < 1 {
		t.Errorf("cell side %v < 1", l)
	}
	// Cell side grows with n (fixed k) and shrinks with k (fixed n).
	if CellSide(1<<16, k, DefaultC3) <= l {
		t.Error("cell side should grow with n")
	}
	if CellSide(n, 4*k, DefaultC3) >= l {
		t.Error("cell side should shrink with k")
	}
	if CellSide(n, 0, DefaultC3) != 1 || CellSide(n, k, 0) != 1 {
		t.Error("degenerate inputs should clamp to 1")
	}
}

func TestLemmaBounds(t *testing.T) {
	t.Parallel()
	// Hitting/meeting bounds: equal to c at d<=e, decreasing beyond.
	if got := HittingLowerBound(1, 0.2); got != 0.2 {
		t.Errorf("HittingLowerBound(1) = %v, want 0.2", got)
	}
	if got := MeetingLowerBound(0, 0.15); got != 0.15 {
		t.Errorf("MeetingLowerBound(0) = %v", got)
	}
	if HittingLowerBound(100, 0.2) >= HittingLowerBound(10, 0.2) {
		t.Error("hitting bound should decrease with distance")
	}
	// Displacement tail: Gaussian decay, factor-of-e^2 checks.
	if math.Abs(DisplacementTail(0)-2) > 1e-12 {
		t.Errorf("DisplacementTail(0) = %v, want 2", DisplacementTail(0))
	}
	if DisplacementTail(3) >= DisplacementTail(2) {
		t.Error("tail should decrease in lambda")
	}
	// Range bound: sublinear but increasing.
	if RangeLowerBound(1, 0.5) != 1 {
		t.Errorf("RangeLowerBound(1) = %v", RangeLowerBound(1, 0.5))
	}
	if RangeLowerBound(1000, 0.5) <= RangeLowerBound(100, 0.5) {
		t.Error("range bound should increase in l")
	}
	if RangeLowerBound(1000, 0.5) >= 1000 {
		t.Error("range bound should be sublinear")
	}
}

func TestFrontierQuantities(t *testing.T) {
	t.Parallel()
	n, k := 1<<14, 64
	w := FrontierWindow(n, k)
	a := FrontierAdvance(n, k)
	if w < 1 {
		t.Errorf("window %v < 1", w)
	}
	if a <= 0 {
		t.Errorf("advance %v <= 0", a)
	}
	// Implied speed stays below 1 node/step at these parameters, consistent
	// with Lemma 7 bounding the frontier well below ballistic motion.
	if a/w <= 0 {
		t.Errorf("implied speed %v", a/w)
	}
	if FrontierWindow(1, 4) != 1 {
		t.Error("degenerate window should clamp to 1")
	}
}

func TestIslandSizeCap(t *testing.T) {
	t.Parallel()
	if IslandSizeCap(2) != 1 {
		t.Errorf("IslandSizeCap(2) = %v", IslandSizeCap(2))
	}
	if got, want := IslandSizeCap(1<<14), math.Log(1<<14); math.Abs(got-want) > 1e-12 {
		t.Errorf("IslandSizeCap = %v, want %v", got, want)
	}
}

func TestFarAgentProbability(t *testing.T) {
	t.Parallel()
	if FarAgentProbability(1) != 0 {
		t.Error("k=1 should give probability 0")
	}
	if got := FarAgentProbability(2); got != 0.5 {
		t.Errorf("FarAgentProbability(2) = %v, want 0.5", got)
	}
	if got := FarAgentProbability(11); math.Abs(got-(1-1.0/1024)) > 1e-12 {
		t.Errorf("FarAgentProbability(11) = %v", got)
	}
}

// Property: for all valid (n, k) the radius ordering and positivity hold.
func TestQuickRadiusInvariants(t *testing.T) {
	t.Parallel()
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw)%65000 + 4
		k := int(kRaw)%(n/2) + 2 // sparse regime n >= 2k
		lb := LowerBoundRadius(n, k)
		g := IslandGamma(n, k)
		rc := PercolationRadius(n, k)
		return lb > 0 && lb < g && g < rc && BroadcastScale(n, k) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
