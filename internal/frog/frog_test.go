package frog

import (
	"testing"

	"mobilenet/internal/grid"
)

func cfg(side, k, r int, seed uint64) Config {
	return Config{Grid: grid.MustNew(side), K: k, Radius: r, Seed: seed, Source: 0}
}

func TestValidation(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	bad := []Config{
		{K: 3},
		{Grid: g, K: 0},
		{Grid: g, K: 3, Source: 3},
		{Grid: g, K: 3, Source: -2},
		{Grid: g, K: 3, MaxSteps: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFrogCompletes(t *testing.T) {
	t.Parallel()
	res, err := RunFrog(cfg(8, 5, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("frog run incomplete: %+v", res)
	}
}

func TestSingleFrogInstant(t *testing.T) {
	t.Parallel()
	res, err := RunFrog(cfg(8, 1, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 0 {
		t.Fatalf("single frog: %+v", res)
	}
}

func TestGiantRadiusWakesEveryoneInstantly(t *testing.T) {
	t.Parallel()
	res, err := RunFrog(cfg(8, 6, 14, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 0 {
		t.Fatalf("grid-wide radius frog: %+v", res)
	}
}

func TestSleepersDoNotMove(t *testing.T) {
	t.Parallel()
	s, err := New(cfg(16, 6, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Record positions of sleeping agents, step a few times, verify the
	// ones that remained asleep never moved.
	type frozen struct {
		idx int
		pos grid.Point
	}
	var sleepers []frozen
	for i := 0; i < 6; i++ {
		if !s.Active(i) {
			sleepers = append(sleepers, frozen{i, s.pop.Position(i)})
		}
	}
	for step := 0; step < 20 && !s.Done(); step++ {
		s.Step()
		for _, f := range sleepers {
			if !s.Active(f.idx) && s.pop.Position(f.idx) != f.pos {
				t.Fatalf("sleeping agent %d moved", f.idx)
			}
		}
	}
}

func TestActiveCountMonotone(t *testing.T) {
	t.Parallel()
	s, err := New(cfg(10, 8, 0, 7))
	if err != nil {
		t.Fatal(err)
	}
	prev := s.ActiveCount()
	if prev < 1 {
		t.Fatalf("no active agent at t=0")
	}
	for step := 0; step < 500 && !s.Done(); step++ {
		s.Step()
		if s.ActiveCount() < prev {
			t.Fatalf("active count decreased at t=%d", s.Time())
		}
		prev = s.ActiveCount()
	}
}

func TestChainedWakeups(t *testing.T) {
	t.Parallel()
	// Source at (0,0); sleepers at distance 1 chained: with radius 1 the
	// whole chain wakes at t=0 because wake-ups flood components.
	c := cfg(10, 4, 1, 11)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	s.pop.SetPosition(0, grid.Point{X: 0, Y: 0})
	s.pop.SetPosition(1, grid.Point{X: 1, Y: 0})
	s.pop.SetPosition(2, grid.Point{X: 2, Y: 0})
	s.pop.SetPosition(3, grid.Point{X: 3, Y: 0})
	// Re-run the wake pass on the arranged configuration.
	s.active.Remove(1)
	s.active.Remove(2)
	s.active.Remove(3)
	s.wake()
	if !s.Done() {
		t.Fatalf("chain did not fully wake: %d active", s.ActiveCount())
	}
}

func TestDeterministicBySeed(t *testing.T) {
	t.Parallel()
	r1, err := RunFrog(cfg(9, 5, 0, 13))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFrog(cfg(9, 5, 0, 13))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("frog model not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestMaxStepsCap(t *testing.T) {
	t.Parallel()
	c := cfg(64, 2, 0, 17)
	c.MaxSteps = 2
	res, err := RunFrog(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Skip("improbable instant completion")
	}
	if res.Steps != 2 {
		t.Errorf("capped Steps = %d, want 2", res.Steps)
	}
}

func BenchmarkFrogSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunFrog(cfg(24, 12, 0, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
