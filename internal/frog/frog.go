// Package frog implements the Frog model variant discussed in the paper's
// related work and Section 4: initially a single agent (the source) is
// active and informed while all other agents sleep at their initial
// positions; whenever an active agent comes within the transmission radius
// of a sleeping agent, the sleeper wakes, learns the rumor and starts its
// own random walk. The paper shows the same Θ̃(n/√k) broadcast-time bounds
// hold in this model (Section 4), which Experiment E10 validates.
package frog

import (
	"fmt"

	"mobilenet/internal/agent"
	"mobilenet/internal/bitset"
	"mobilenet/internal/cancel"
	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/obs"
	"mobilenet/internal/prof"
	"mobilenet/internal/rng"
	"mobilenet/internal/theory"
	"mobilenet/internal/visibility"
)

// Config parameterises a Frog-model run.
type Config struct {
	// Grid is the arena. Required.
	Grid *grid.Grid
	// K is the total number of agents (one initially active). Required.
	K int
	// Radius is the wake-up radius; 0 means physical co-location, the
	// classical Frog model.
	Radius int
	// Seed drives placement and motion.
	Seed uint64
	// Source is the initially active agent, or core-style -1 for random.
	Source int
	// MaxSteps caps the run; 0 selects the same generous default used by
	// the dynamic model.
	MaxSteps int
	// Mobility selects the motion model active agents follow; nil selects
	// the paper's lazy walk. Sleepers stay frozen regardless of model.
	Mobility mobility.Model
	// Parallelism sets the component labeller's worker count (0 = automatic,
	// 1 = sequential); results are identical at every setting.
	Parallelism int
	// Observer, when non-nil, receives a per-step observation sample after
	// every wake-up pass (including the time-0 one) at the recorder's
	// cadence: the active count as "informed", plus the component
	// observables when requested (which force labelling even after the
	// last sleeper wakes).
	Observer *obs.Recorder
	// Profile, when non-nil, accumulates per-phase step timings (see
	// core.Config.Profile); a nil profile costs only a branch per phase.
	Profile *prof.StepProfile
	// Cancel, when non-nil, halts the run loop at a step boundary once its
	// context is cancelled (see core.Config.Cancel); nil costs a
	// constant-false branch.
	Cancel *cancel.Check
}

func (c *Config) validate() error {
	if c.Grid == nil {
		return fmt.Errorf("frog: config requires a grid")
	}
	if c.K <= 0 {
		return fmt.Errorf("frog: K must be positive, got %d", c.K)
	}
	if c.Source != -1 && (c.Source < 0 || c.Source >= c.K) {
		return fmt.Errorf("frog: source %d out of range [0,%d)", c.Source, c.K)
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("frog: negative MaxSteps %d", c.MaxSteps)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("frog: negative Parallelism %d", c.Parallelism)
	}
	return nil
}

func (c *Config) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	n := c.Grid.N()
	scale := theory.BroadcastScale(n, c.K)
	v := int(64 * scale * 16)
	if v < 4096 {
		v = 4096
	}
	return v
}

// newLabeller builds the wake-up labeller with the configured parallelism
// and profiler. Frog runs get the incremental kernel: sleepers are frozen,
// so on a typical step only the active minority moves and the dirty-cell
// path shines.
func newLabeller(cfg *Config) *visibility.Incremental {
	l := visibility.NewIncremental(cfg.K)
	l.SetParallelism(cfg.Parallelism)
	l.SetProfile(cfg.Profile)
	return l
}

// System is a running Frog-model simulation.
type System struct {
	cfg    Config
	pop    *agent.Population
	lab    *visibility.Incremental
	active *bitset.Set // active (= informed) agents
	newly  []int32     // per-step newly-woken scratch, reused

	obsr        *obs.Recorder
	sizeScratch []int32 // component-size buffer for the largest observable
	lastComps   int     // component count at the last observed step
	lastLargest int     // largest component size at the last observed step
}

// New places the population and wakes the source's component: sleepers
// within the wake-up radius chain at time 0 exactly as in the dynamic model.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	pop, err := agent.NewWithModel(cfg.Grid, cfg.K, src, cfg.Mobility)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		pop:    pop,
		lab:    newLabeller(&cfg),
		active: bitset.New(cfg.K),
		newly:  make([]int32, 0, cfg.K),
		obsr:   cfg.Observer,
	}
	if s.obsr != nil && s.obsr.NeedsComponents() {
		s.sizeScratch = make([]int32, 0, cfg.K)
	}
	source := cfg.Source
	if source == -1 {
		source = src.Intn(cfg.K)
	}
	s.active.Add(source)
	cfg.Profile.Mark()
	s.wake()
	return s, nil
}

// wake activates every sleeping agent in the same visibility component as
// an active agent. Chained wake-ups (sleeper A wakes sleeper B through
// proximity) are intentional: the rumor floods the whole component, per the
// paper's radio-faster-than-motion assumption.
func (s *System) wake() {
	observeComps := s.obsr != nil && s.obsr.NeedsComponents() && s.obsr.Wants(s.pop.Time())
	if s.active.Len() == s.pop.K() && !observeComps {
		s.observe()
		return
	}
	s.newly = s.newly[:0]
	if observeComps {
		labels, count := s.lab.Components(s.pop.Positions(), s.cfg.Radius)
		s.lastComps = count
		s.lastLargest, s.sizeScratch = visibility.MaxSizeScratch(labels, count, s.sizeScratch)
		if s.active.Len() < s.pop.K() {
			s.newly = s.lab.FloodWithLabels(labels, count, s.active, s.newly)
		}
	} else {
		// The common step: wake-ups flood the active bitset straight
		// through the union-find forest, no labels materialised.
		s.newly = s.lab.Flood(s.pop.Positions(), s.cfg.Radius, s.active, s.newly)
	}
	s.cfg.Profile.Lap(prof.Spread)
	s.observe()
}

// observe records the current step's sample when the observer's cadence
// asks for it.
func (s *System) observe() {
	if t := s.pop.Time(); s.obsr != nil && s.obsr.Wants(t) {
		s.obsr.Record(t, obs.Sample{
			Informed:   s.active.Len(),
			Components: s.lastComps,
			Largest:    s.lastLargest,
		})
	}
	s.cfg.Profile.Lap(prof.Observe)
}

// Step advances one time unit: active agents walk, sleepers stay, then
// wake-ups propagate.
func (s *System) Step() {
	p := s.cfg.Profile
	p.Mark()
	// Ascending agent-index order is part of the seed contract: StepAgent
	// draws from the shared randomness stream, so the iteration order must
	// match the pre-bitset []bool loop bit for bit.
	k := s.pop.K()
	for i := 0; i < k; i++ {
		if s.active.Contains(i) {
			s.pop.StepAgent(i)
		}
	}
	s.pop.Tick()
	p.Lap(prof.Move)
	s.wake()
	p.StepDone()
}

// Done reports whether every agent is active (equivalently, informed).
func (s *System) Done() bool { return s.active.Len() == s.pop.K() }

// Time returns the simulation time.
func (s *System) Time() int { return s.pop.Time() }

// ActiveCount returns the number of active agents.
func (s *System) ActiveCount() int { return s.active.Len() }

// Active reports whether agent i is active.
func (s *System) Active(i int) bool { return s.active.Contains(i) }

// Result summarises a Frog-model run.
type Result struct {
	// Steps is the Frog-model broadcast time. Valid only when Completed.
	Steps int
	// Completed is false when MaxSteps was reached first.
	Completed bool
}

// Run advances until all agents are active or the cap is reached.
func (s *System) Run() Result {
	stepCap := s.cfg.maxSteps()
	for !s.Done() && s.pop.Time() < stepCap && !s.cfg.Cancel.Stop() {
		s.Step()
	}
	return Result{Steps: s.pop.Time(), Completed: s.Done()}
}

// RunFrog is the one-shot convenience wrapper.
func RunFrog(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}
