package scenario

import (
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"

	"mobilenet/internal/prof"
)

// profileSpec builds a spec for engine that runs long enough for stepping to
// dominate setup, bounded so the test stays fast.
func profileSpec(engine string) Spec {
	spec := Spec{Engine: engine, Nodes: 4096, Agents: 32, Seed: 7, MaxSteps: 256, Profile: true}
	if engine == EngineMeeting {
		spec.Radius = 4
	}
	return spec
}

// TestPhaseSumsMatchStepWallClock is the profiler's accounting contract,
// checked across all six engines: under Spec.Profile every replicate reports
// a phase breakdown whose fractions sum to one and whose total seconds sit
// inside the measured RunRep wall-clock — at most the whole call, at least a
// visible share of it (laps tile the step loop, so only setup and loop
// overhead go uncharged).
func TestPhaseSumsMatchStepWallClock(t *testing.T) {
	for _, engine := range Engines() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			c, err := profileSpec(engine).Canonical()
			if err != nil {
				t.Fatal(err)
			}
			// Canonical zeroes execution-only knobs; re-enable profiling the
			// way RunWithTrace does.
			c.Profile = true
			r, ok := Lookup(engine)
			if !ok {
				t.Fatalf("engine %s not registered", engine)
			}
			t0 := time.Now()
			rep, err := r.RunRep(context.Background(), c, c.Seed)
			wall := time.Since(t0).Seconds()
			if err != nil {
				t.Fatal(err)
			}
			b := rep.Phases
			if b == nil {
				t.Fatal("profiled replicate carries no phase breakdown")
			}
			if b.Steps <= 0 {
				t.Fatalf("breakdown covers %d steps", b.Steps)
			}
			var fsum float64
			for name, f := range b.Fractions {
				if _, ok := b.Seconds[name]; !ok {
					t.Errorf("fraction for %s without a seconds entry", name)
				}
				fsum += f
			}
			if math.Abs(fsum-1) > 1e-3 {
				t.Errorf("fractions sum to %v, want 1 ± 0.001 (%v)", fsum, b.Fractions)
			}
			total := b.TotalSeconds()
			// Upper bound: charged time cannot exceed the whole RunRep call
			// (epsilon absorbs float rounding only — the clock reads nest).
			if total > wall*1.001+1e-6 {
				t.Errorf("phase total %.6fs exceeds RunRep wall-clock %.6fs", total, wall)
			}
			// Lower bound: the step loop dominates a 256-step run, so the
			// charged share must be a visible fraction of the wall-clock.
			// Generous (5%) to stay robust on loaded CI machines.
			if total < wall*0.05 {
				t.Errorf("phase total %.6fs is under 5%% of wall-clock %.6fs — laps are not tiling the loop", total, wall)
			}
			for name := range b.Seconds {
				if !validPhaseName(name) {
					t.Errorf("breakdown uses phase %q outside the fixed vocabulary", name)
				}
			}
		})
	}
}

func validPhaseName(name string) bool {
	for _, n := range prof.PhaseNames() {
		if n == name {
			return true
		}
	}
	return false
}

// TestProfileIsExecutionOnly pins the determinism contract: profiling never
// splits the content hash, and a profiled run's outcome — everything except
// the Phases timing annotation — is byte-identical to an unprofiled run.
func TestProfileIsExecutionOnly(t *testing.T) {
	t.Parallel()
	base := Spec{Engine: EngineBroadcast, Nodes: 1024, Agents: 16, Seed: 11, Reps: 2,
		Metrics: []string{MetricCurve, MetricCoverage}}
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	profiled := base
	profiled.Profile = true
	h, err := profiled.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != baseHash {
		t.Fatalf("profile split the hash: %s vs %s", h, baseHash)
	}
	c, err := profiled.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.Profile {
		t.Fatal("canonical form kept the profile flag")
	}

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	profd, err := Run(profiled)
	if err != nil {
		t.Fatal(err)
	}
	if profd.Phases == nil {
		t.Fatal("profiled run reports no aggregate phases")
	}
	if plain.Phases != nil || plain.Reps[0].Phases != nil {
		t.Fatal("unprofiled run reports phases")
	}
	// Strip the timing annotations; the remaining payloads must match byte
	// for byte.
	profd.Phases = nil
	for i := range profd.Reps {
		if profd.Reps[i].Phases == nil {
			t.Fatalf("profiled rep %d carries no phases", i)
		}
		profd.Reps[i].Phases = nil
	}
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(profd)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("profiling changed the result payload:\n%s\nvs\n%s", a, b)
	}
}

// TestRunWithTraceRecordsRepSpans pins the library trace path: one span per
// replicate on its own thread, annotated with the phase split, and the whole
// trace exports as valid Chrome trace-event JSON.
func TestRunWithTraceRecordsRepSpans(t *testing.T) {
	t.Parallel()
	spec := Spec{Engine: EngineBroadcast, Nodes: 1024, Agents: 16, Seed: 5, Reps: 3, Profile: true}
	tr := prof.NewTrace()
	res, err := RunWithTrace(spec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reps) != 3 {
		t.Fatalf("got %d reps", len(res.Reps))
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want one per replicate", len(spans))
	}
	tids := map[int64]bool{}
	for _, s := range spans {
		if s.Name != "run "+EngineBroadcast || s.Cat != "rep" {
			t.Errorf("span %+v", s)
		}
		if s.Args["seed"] == "" || s.Args["steps"] == "" {
			t.Errorf("span misses outcome args: %v", s.Args)
		}
		found := false
		for arg := range s.Args {
			if len(arg) > 6 && arg[:6] == "phase_" {
				found = true
			}
		}
		if !found {
			t.Errorf("profiled span carries no phase args: %v", s.Args)
		}
		tids[s.TID] = true
	}
	if len(tids) != 3 {
		t.Errorf("replicate spans share threads: %d distinct tids", len(tids))
	}
}
