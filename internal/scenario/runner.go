package scenario

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"mobilenet/internal/cancel"
	"mobilenet/internal/core"
	"mobilenet/internal/coverage"
	"mobilenet/internal/frog"
	"mobilenet/internal/grid"
	"mobilenet/internal/meeting"
	"mobilenet/internal/mobility"
	"mobilenet/internal/obs"
	"mobilenet/internal/predator"
	"mobilenet/internal/prof"
)

// Runner adapts one engine to the uniform Spec contract. RunRep executes a
// single replicate of a canonical spec under an explicit seed (callers
// derive it with RepSeed), which is the unit of work the simulation
// service's pool schedules. Runners are stateless and safe for concurrent
// use: every RunRep builds its own grid and engine state.
type Runner interface {
	// Engine returns the canonical engine name the runner serves.
	Engine() string
	// RunRep runs one replicate of the spec under the given seed. The
	// context's cancellation is honoured mid-run with amortized per-step
	// cost (see internal/cancel): a cancelled replicate returns an error
	// wrapping ErrCancelled within one check interval. An uncancellable
	// context (context.Background()) costs the step loop nothing.
	RunRep(ctx context.Context, spec Spec, seed uint64) (Rep, error)
}

// ErrCancelled is wrapped by the error a Runner returns when its context
// is cancelled mid-replicate; test with errors.Is. The replicate's partial
// state is discarded — a cancelled run never yields a Rep.
var ErrCancelled = errors.New("scenario: run cancelled")

// cancelled builds the ErrCancelled-wrapping error for a stopped check,
// carrying the context's cancellation cause (deadline, shutdown, ...).
func cancelled(ctx context.Context) error {
	return fmt.Errorf("%w: %v", ErrCancelled, context.Cause(ctx))
}

// runners is the engine registry. It is populated at init time and
// read-only afterwards, so Lookup needs no locking.
var runners = map[string]Runner{}

// register adds a runner to the registry; duplicate engines are programmer
// error.
func register(r Runner) {
	if _, dup := runners[r.Engine()]; dup {
		panic(fmt.Sprintf("scenario: duplicate runner for engine %q", r.Engine()))
	}
	runners[r.Engine()] = r
}

func init() {
	register(broadcastRunner{})
	register(gossipRunner{})
	register(frogRunner{})
	register(coverageRunner{})
	register(predatorRunner{})
	register(meetingRunner{})
}

// Lookup resolves an engine name (case-insensitive) to its Runner.
func Lookup(engine string) (Runner, bool) {
	r, ok := runners[strings.ToLower(strings.TrimSpace(engine))]
	return r, ok
}

// Engines returns the registered engine names, sorted.
func Engines() []string {
	out := make([]string, 0, len(runners))
	for name := range runners {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run canonicalises the spec and executes all its replicates serially in
// replicate order. This is the library execution path; internal/simserve
// produces the identical Result by fanning the same replicates across a
// worker pool.
func Run(spec Spec) (*Result, error) {
	return RunWithTrace(spec, nil)
}

// RunWithTrace is Run with an optional span trace: when tr is non-nil,
// every replicate's execution is recorded as a span on its own logical
// trace thread, annotated with the replicate seed and — under Spec.Profile
// — the per-phase breakdown. A nil tr makes RunWithTrace exactly Run; this
// is the CLI's -trace-out path.
func RunWithTrace(spec Spec, tr *prof.Trace) (*Result, error) {
	c, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	hash, err := HashCanonical(c)
	if err != nil {
		return nil, err
	}
	r, ok := Lookup(c.Engine)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown engine %q", c.Engine)
	}
	// Parallelism and Profile are execution-only knobs: canonicalisation
	// zeroed them so they cannot split the content hash, but the caller's
	// settings still govern how these replicates execute.
	c.Parallelism = spec.Parallelism
	c.Profile = spec.Profile
	reps := make([]Rep, c.Reps)
	for i := range reps {
		start := time.Now()
		rep, err := r.RunRep(context.Background(), c, RepSeed(c.Seed, i))
		if err != nil {
			return nil, err
		}
		reps[i] = rep
		if tr != nil {
			tid := int64(i)
			tr.NameThread(tid, "rep "+strconv.Itoa(i))
			tr.Add("run "+c.Engine, "rep", tid, start, time.Since(start), repSpanArgs(rep))
		}
	}
	return Assemble(c, hash, reps)
}

// repSpanArgs renders a replicate's outcome as trace-span annotations.
func repSpanArgs(rep Rep) map[string]string {
	args := map[string]string{
		"seed":      strconv.FormatUint(rep.Seed, 10),
		"steps":     strconv.Itoa(rep.Steps),
		"completed": strconv.FormatBool(rep.Completed),
	}
	if rep.Phases != nil {
		for name, s := range rep.Phases.Seconds {
			args["phase_"+name+"_ms"] = strconv.FormatFloat(s*1e3, 'f', 3, 64)
		}
	}
	return args
}

// buildGrid realises the spec's arena.
func buildGrid(spec Spec) (*grid.Grid, error) {
	g, err := grid.FromNodes(spec.Nodes)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return g, nil
}

// buildRecorder builds the replicate's observation recorder from the
// spec's canonical observe block, or nil when the spec observes nothing.
// Every replicate gets its own recorder (runners must stay safe for
// concurrent use), preallocated once so the engine's step loop records
// without allocating.
func buildRecorder(spec Spec) *obs.Recorder {
	if spec.Observe == nil {
		return nil
	}
	return obs.NewRecorder(*spec.Observe)
}

// attachSeries copies the recorder's series into the replicate outcome.
func attachSeries(rep *Rep, rec *obs.Recorder) {
	if rec != nil {
		rep.Series = rec.Series()
	}
}

// buildProfile allocates the replicate's step-phase profiler when the spec
// asks for profiling, nil otherwise (the engines' zero-overhead default).
func buildProfile(spec Spec) *prof.StepProfile {
	if !spec.Profile {
		return nil
	}
	return &prof.StepProfile{}
}

// attachPhases freezes the profiler into the replicate outcome; a nil
// profiler leaves Phases nil.
func attachPhases(rep *Rep, p *prof.StepProfile) {
	rep.Phases = p.Breakdown()
}

// buildMobility parses the spec's mobility model; validation has already
// vetted the string, so errors here are defensive.
func buildMobility(spec Spec) (mobility.Model, error) {
	if spec.Mobility == "" {
		return mobility.Default(), nil
	}
	m, err := mobility.Parse(spec.Mobility)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return m, nil
}

type broadcastRunner struct{}

func (broadcastRunner) Engine() string { return EngineBroadcast }

func (broadcastRunner) RunRep(ctx context.Context, spec Spec, seed uint64) (Rep, error) {
	g, err := buildGrid(spec)
	if err != nil {
		return Rep{}, err
	}
	m, err := buildMobility(spec)
	if err != nil {
		return Rep{}, err
	}
	rec := buildRecorder(spec)
	p := buildProfile(spec)
	chk := cancel.New(ctx, cancel.DefaultEvery)
	res, err := core.RunBroadcast(core.Config{
		Grid:              g,
		K:                 spec.Agents,
		Radius:            spec.Radius,
		Seed:              seed,
		Source:            spec.Source,
		MaxSteps:          spec.MaxSteps,
		Mobility:          m,
		Parallelism:       spec.Parallelism,
		RecordCurve:       spec.HasMetric(MetricCurve),
		TrackInformedArea: spec.HasMetric(MetricCoverage),
		Observer:          rec,
		Profile:           p,
		Cancel:            chk,
	})
	if err != nil {
		return Rep{}, err
	}
	if chk.Stopped() {
		return Rep{}, cancelled(ctx)
	}
	rep := Rep{
		Seed:          seed,
		Steps:         res.Steps,
		Completed:     res.Completed,
		Source:        res.Source,
		CoverageSteps: res.CoverageSteps,
		Curve:         res.InformedCurve,
	}
	attachSeries(&rep, rec)
	attachPhases(&rep, p)
	return rep, nil
}

type gossipRunner struct{}

func (gossipRunner) Engine() string { return EngineGossip }

func (gossipRunner) RunRep(ctx context.Context, spec Spec, seed uint64) (Rep, error) {
	g, err := buildGrid(spec)
	if err != nil {
		return Rep{}, err
	}
	m, err := buildMobility(spec)
	if err != nil {
		return Rep{}, err
	}
	rec := buildRecorder(spec)
	p := buildProfile(spec)
	chk := cancel.New(ctx, cancel.DefaultEvery)
	cfg := core.Config{
		Grid:        g,
		K:           spec.Agents,
		Radius:      spec.Radius,
		Seed:        seed,
		MaxSteps:    spec.MaxSteps,
		Mobility:    m,
		Parallelism: spec.Parallelism,
		Observer:    rec,
		Profile:     p,
		Cancel:      chk,
	}
	var res core.GossipResult
	if spec.Rumors == 0 {
		res, err = core.RunGossip(cfg)
	} else {
		res, err = core.RunPartialGossip(cfg, spec.Rumors)
	}
	if err != nil {
		return Rep{}, err
	}
	if chk.Stopped() {
		return Rep{}, cancelled(ctx)
	}
	rep := Rep{Seed: seed, Steps: res.Steps, Completed: res.Completed, CoverageSteps: -1}
	attachSeries(&rep, rec)
	attachPhases(&rep, p)
	return rep, nil
}

type frogRunner struct{}

func (frogRunner) Engine() string { return EngineFrog }

func (frogRunner) RunRep(ctx context.Context, spec Spec, seed uint64) (Rep, error) {
	g, err := buildGrid(spec)
	if err != nil {
		return Rep{}, err
	}
	m, err := buildMobility(spec)
	if err != nil {
		return Rep{}, err
	}
	rec := buildRecorder(spec)
	p := buildProfile(spec)
	chk := cancel.New(ctx, cancel.DefaultEvery)
	res, err := frog.RunFrog(frog.Config{
		Grid:        g,
		K:           spec.Agents,
		Radius:      spec.Radius,
		Seed:        seed,
		Source:      spec.Source,
		MaxSteps:    spec.MaxSteps,
		Mobility:    m,
		Parallelism: spec.Parallelism,
		Observer:    rec,
		Profile:     p,
		Cancel:      chk,
	})
	if err != nil {
		return Rep{}, err
	}
	if chk.Stopped() {
		return Rep{}, cancelled(ctx)
	}
	rep := Rep{Seed: seed, Steps: res.Steps, Completed: res.Completed, Source: spec.Source, CoverageSteps: -1}
	attachSeries(&rep, rec)
	attachPhases(&rep, p)
	return rep, nil
}

type coverageRunner struct{}

func (coverageRunner) Engine() string { return EngineCoverage }

func (coverageRunner) RunRep(ctx context.Context, spec Spec, seed uint64) (Rep, error) {
	g, err := buildGrid(spec)
	if err != nil {
		return Rep{}, err
	}
	m, err := buildMobility(spec)
	if err != nil {
		return Rep{}, err
	}
	rec := buildRecorder(spec)
	p := buildProfile(spec)
	chk := cancel.New(ctx, cancel.DefaultEvery)
	res, err := coverage.Run(coverage.Config{
		Grid:        g,
		Walkers:     spec.Agents,
		Seed:        seed,
		MaxSteps:    spec.MaxSteps,
		Mobility:    m,
		RecordCurve: spec.HasMetric(MetricCurve),
		Observer:    rec,
		Profile:     p,
		Cancel:      chk,
	})
	if err != nil {
		return Rep{}, err
	}
	if chk.Stopped() {
		return Rep{}, cancelled(ctx)
	}
	rep := Rep{
		Seed:          seed,
		Steps:         res.Steps,
		Completed:     res.Completed,
		Covered:       res.Covered,
		CoverageSteps: -1,
		Curve:         res.Curve,
	}
	attachSeries(&rep, rec)
	attachPhases(&rep, p)
	return rep, nil
}

type meetingRunner struct{}

func (meetingRunner) Engine() string { return EngineMeeting }

// RunRep executes one Lemma 3 meeting trial. Steps is the meeting time
// (the horizon when the walks never met) and Completed reports a meeting
// inside the lens, so the mean of Completed over replicates estimates the
// lemma's probability p(d).
func (meetingRunner) RunRep(ctx context.Context, spec Spec, seed uint64) (Rep, error) {
	rec := buildRecorder(spec)
	p := buildProfile(spec)
	chk := cancel.New(ctx, cancel.DefaultEvery)
	steps, met, err := meeting.TrialRunCancellable(spec.Radius, seed, spec.MaxSteps, rec, p, chk)
	if err != nil {
		return Rep{}, fmt.Errorf("scenario: %w", err)
	}
	if chk.Stopped() {
		return Rep{}, cancelled(ctx)
	}
	rep := Rep{Seed: seed, Steps: steps, Completed: met, CoverageSteps: -1}
	attachSeries(&rep, rec)
	attachPhases(&rep, p)
	return rep, nil
}

type predatorRunner struct{}

func (predatorRunner) Engine() string { return EnginePredator }

func (predatorRunner) RunRep(ctx context.Context, spec Spec, seed uint64) (Rep, error) {
	g, err := buildGrid(spec)
	if err != nil {
		return Rep{}, err
	}
	m, err := buildMobility(spec)
	if err != nil {
		return Rep{}, err
	}
	preys := spec.Preys
	if preys == 0 {
		preys = spec.Agents
	}
	rec := buildRecorder(spec)
	p := buildProfile(spec)
	chk := cancel.New(ctx, cancel.DefaultEvery)
	res, err := predator.RunExtinction(predator.Config{
		Grid:      g,
		Predators: spec.Agents,
		Preys:     preys,
		Radius:    spec.Radius,
		Seed:      seed,
		MaxSteps:  spec.MaxSteps,
		Mobility:  m,
		Observer:  rec,
		Profile:   p,
		Cancel:    chk,
	})
	if err != nil {
		return Rep{}, err
	}
	if chk.Stopped() {
		return Rep{}, cancelled(ctx)
	}
	rep := Rep{Seed: seed, Steps: res.Steps, Completed: res.Completed, Survivors: res.Survivors, CoverageSteps: -1}
	attachSeries(&rep, rec)
	attachPhases(&rep, p)
	return rep, nil
}
