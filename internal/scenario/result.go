package scenario

import (
	"fmt"

	"mobilenet/internal/obs"
	"mobilenet/internal/prof"
)

// Rep is the outcome of one replicate. Fields an engine does not produce
// hold their zero value (CoverageSteps uses -1 for "not measured", matching
// the engines' convention).
type Rep struct {
	// Seed is the seed this replicate ran under (see RepSeed).
	Seed uint64 `json:"seed"`
	// Steps is the engine's primary time measurement: T_B, T_G, the frog
	// broadcast time, the cover time, or the extinction time. Valid when
	// Completed; otherwise it equals the step cap that was hit.
	Steps int `json:"steps"`
	// Completed is false when the step cap ended the run first.
	Completed bool `json:"completed"`
	// Source is the realised source agent (broadcast and frog).
	Source int `json:"source"`
	// CoverageSteps is the broadcast coverage time T_C under the
	// "coverage" metric; -1 when not measured or not reached.
	CoverageSteps int `json:"coverage_steps"`
	// Covered is the covered-node count (coverage engine).
	Covered int `json:"covered"`
	// Survivors is the surviving-prey count (predator engine).
	Survivors int `json:"survivors"`
	// Curve is the per-step progress curve under the "curve" metric.
	Curve []int `json:"curve,omitempty"`
	// Series holds this replicate's recorded time series under the
	// spec's observe block; nil when the spec observes nothing.
	Series *obs.SeriesSet `json:"series,omitempty"`
	// Phases is the step-phase wall-clock breakdown recorded under
	// Spec.Profile; nil when profiling was off. Timings are measurements
	// of this machine, not simulation outcomes: the service strips them
	// before assembly so cached payloads stay deterministic.
	Phases *prof.Breakdown `json:"phases,omitempty"`
}

// Result is the uniform outcome of running a Spec: the canonical identity
// of the simulation plus every replicate in replicate order. Results are
// deterministic functions of the canonical spec — the library path
// (scenario.Run) and the service path (simserve) produce byte-identical
// encodings — which is what makes hash-keyed caching sound.
type Result struct {
	// Engine is the canonical engine name.
	Engine string `json:"engine"`
	// Hash is the canonical content hash of the spec that produced this.
	Hash string `json:"hash"`
	// Reps holds every replicate outcome, in replicate order.
	Reps []Rep `json:"reps"`
	// MeanSteps is the mean of Steps over all replicates (capped runs
	// contribute the cap they hit).
	MeanSteps float64 `json:"mean_steps"`
	// AllCompleted reports whether every replicate finished under the cap.
	AllCompleted bool `json:"all_completed"`
	// Series aggregates the replicates' observed time series per
	// observable (across-replicate mean and Student-t 95% CI at every
	// sampled step); nil when the spec observes nothing.
	Series []obs.AggSeries `json:"series,omitempty"`
	// Phases merges the replicates' step-phase breakdowns (summed seconds,
	// fractions over the merged total); nil when no replicate was profiled.
	Phases *prof.Breakdown `json:"phases,omitempty"`
}

// Assemble builds the Result for a canonical spec from its per-replicate
// outcomes, which must be in replicate order and complete; hash is the
// spec's precomputed content hash (callers always have it in hand, and
// recomputing it would re-validate the whole spec). Both execution paths
// (serial library, pooled service) funnel through this so their results
// are structurally identical.
func Assemble(canonical Spec, hash string, reps []Rep) (*Result, error) {
	if len(reps) != canonical.Reps {
		return nil, fmt.Errorf("scenario: %d replicate outcomes for %d requested reps", len(reps), canonical.Reps)
	}
	res := &Result{
		Engine:       canonical.Engine,
		Hash:         hash,
		Reps:         reps,
		AllCompleted: true,
	}
	var sum float64
	for _, r := range reps {
		sum += float64(r.Steps)
		if !r.Completed {
			res.AllCompleted = false
		}
	}
	res.MeanSteps = sum / float64(len(reps))
	if canonical.Observe != nil {
		sets := make([]*obs.SeriesSet, len(reps))
		for i := range reps {
			sets[i] = reps[i].Series
		}
		res.Series = obs.Aggregate(sets)
	}
	breakdowns := make([]*prof.Breakdown, len(reps))
	for i := range reps {
		breakdowns[i] = reps[i].Phases
	}
	res.Phases = prof.MergeBreakdowns(breakdowns...)
	return res, nil
}
