// Package scenario makes "one simulation" a declarative, named value. A
// Spec picks an engine (broadcast, gossip, frog, coverage, predator), the
// arena and population, the dissemination parameters and the requested
// metrics; it encodes to JSON, validates, and canonicalises to a
// content-addressed hash usable as a cache key. Behind the Spec, every
// engine is driven through the single Runner interface, so the CLI, the
// examples, the public API and the simulation service (internal/simserve)
// all share one dispatch path instead of bespoke per-engine wiring.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"mobilenet/internal/grid"
	"mobilenet/internal/meeting"
	"mobilenet/internal/mobility"
	"mobilenet/internal/obs"
	"mobilenet/internal/rng"
)

// Engine names. These are the canonical values of Spec.Engine; Lookup
// resolves them to Runners.
const (
	EngineBroadcast = "broadcast"
	EngineGossip    = "gossip"
	EngineFrog      = "frog"
	EngineCoverage  = "coverage"
	EnginePredator  = "predator"
	// EngineMeeting runs one Lemma 3 meeting trial per replicate: two
	// synchronized lazy walks start Radius apart and the replicate reports
	// whether (Completed) and when (Steps) they met inside the lens within
	// MaxSteps (0 selects the lemma's d² horizon). The fraction of
	// completed replicates estimates the meeting probability p(d), so the
	// whole estimate is one multi-rep spec — which is how experiment E6
	// rides the sweep subsystem. The arena is derived from Radius alone
	// (meeting.ArenaSide); Nodes and Agents are canonicalised away.
	EngineMeeting = "meeting"
)

// Metric names requestable in Spec.Metrics.
const (
	// MetricCurve records a per-step progress curve: the informed-agent
	// count (broadcast) or the covered-node count (coverage).
	MetricCurve = "curve"
	// MetricCoverage tracks the informed area and reports the coverage
	// time T_C (broadcast only).
	MetricCoverage = "coverage"
)

// SourceRandom selects a uniformly random source agent in Spec.Source.
const SourceRandom = -1

// Spec declares one simulation. The zero values of the optional fields
// select engine defaults, so the minimal useful spec is just engine, nodes
// and agents. Specs are plain data: they marshal to JSON, validate without
// side effects, and hash to a canonical content address.
type Spec struct {
	// Label is an optional human-readable name. It is ignored by
	// canonicalisation and hashing: two specs differing only in label are
	// the same simulation.
	Label string `json:"label,omitempty"`
	// Engine selects the dissemination process; see the Engine constants.
	Engine string `json:"engine"`
	// Nodes is the number of grid nodes n, rounded up to the next perfect
	// square exactly as mobilenet.New does.
	Nodes int `json:"nodes"`
	// Agents is the population size k (predators, for the predator engine).
	Agents int `json:"agents"`
	// Radius is the transmission/capture radius in Manhattan distance.
	Radius int `json:"radius"`
	// Seed drives all randomness. Replicate rep runs under RepSeed(Seed, rep).
	Seed uint64 `json:"seed"`
	// Source is the initially informed/active agent for broadcast and frog;
	// SourceRandom picks uniformly. Other engines ignore it.
	Source int `json:"source,omitempty"`
	// MaxSteps caps the run; 0 selects the engine's theory-derived default.
	MaxSteps int `json:"max_steps,omitempty"`
	// Reps is the number of replicates; 0 selects 1.
	Reps int `json:"reps,omitempty"`
	// Preys is the prey count for the predator engine; 0 selects Agents.
	Preys int `json:"preys,omitempty"`
	// Rumors is the distinct-rumor count |M| for gossip; 0 selects the
	// classical all-to-all |M| = k.
	Rumors int `json:"rumors,omitempty"`
	// Mobility is a mobility.Parse spec string; empty selects the paper's
	// lazy walk. Trace-driven motion ("trace:FILE") is rejected: the
	// trajectory contents live outside the spec, so the hash could not
	// content-address the simulation.
	Mobility string `json:"mobility,omitempty"`
	// Metrics lists the requested extra measurements; see the Metric
	// constants. Metrics an engine cannot produce are dropped by
	// canonicalisation.
	Metrics []string `json:"metrics,omitempty"`
	// Observe requests per-step time-series observables; see
	// internal/obs. Canonicalisation filters the request to the engine's
	// vocabulary (Observables), sorts and deduplicates the names, and
	// makes the cadence default explicit; a request nothing survives is
	// dropped entirely. Unlike Parallelism, the observe block IS part of
	// the content hash: observable names and cadence change the result
	// payload (the recorded series), so two specs differing in observe
	// are different simulations (DESIGN.md §10).
	Observe *obs.Spec `json:"observe,omitempty"`
	// Parallelism sets the component labeller's worker count for engines
	// that rebuild visibility components each step (broadcast, gossip,
	// frog): 0 selects the automatic policy, 1 forces sequential, larger
	// values request up to that many workers. Like Label it is an
	// execution-only knob: results are bit-for-bit identical at every
	// setting, so canonicalisation zeroes it and it never splits the
	// content hash or the result cache. It governs library (scenario.Run)
	// and CLI runs only; the simulation service ignores it, because its
	// worker pool already fans replicates across every core and pins each
	// replicate to sequential labelling.
	Parallelism int `json:"parallelism,omitempty"`
	// Profile enables per-replicate step-phase profiling (internal/prof):
	// each replicate's Rep carries a phases breakdown (move, index, label,
	// spread, observe) and the Result aggregates them. Like Parallelism it
	// is an execution-only knob — simulation outcomes are identical either
	// way and the measured timings are non-deterministic — so
	// canonicalisation zeroes it and it never splits the content hash. The
	// simulation service strips the per-rep breakdowns before assembly
	// (feeding them to telemetry and traces instead), keeping cached
	// payloads byte-identical to unprofiled runs.
	Profile bool `json:"profile,omitempty"`
}

// Parse decodes a Spec from JSON, rejecting unknown fields and trailing
// data so that typoed parameter names — or a second, accidentally
// concatenated spec — fail loudly instead of silently running the wrong
// simulation.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario: trailing data after the spec")
	}
	return s, nil
}

// Validate checks the spec without resolving defaults. A nil error
// guarantees Canonical and Run will not fail on parameter grounds.
func (s Spec) Validate() error {
	engine := strings.ToLower(strings.TrimSpace(s.Engine))
	if _, ok := Lookup(engine); !ok {
		return fmt.Errorf("scenario: unknown engine %q (want %s)", s.Engine, strings.Join(Engines(), "|"))
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("scenario: nodes must be positive, got %d", s.Nodes)
	}
	if s.Agents <= 0 {
		return fmt.Errorf("scenario: agents must be positive, got %d", s.Agents)
	}
	if s.Radius < 0 {
		return fmt.Errorf("scenario: negative radius %d", s.Radius)
	}
	if s.MaxSteps < 0 {
		return fmt.Errorf("scenario: negative max_steps %d", s.MaxSteps)
	}
	if s.Reps < 0 {
		return fmt.Errorf("scenario: negative reps %d", s.Reps)
	}
	if s.Source != SourceRandom && (s.Source < 0 || s.Source >= s.Agents) {
		return fmt.Errorf("scenario: source %d out of range [0,%d)", s.Source, s.Agents)
	}
	if s.Preys < 0 {
		return fmt.Errorf("scenario: negative preys %d", s.Preys)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("scenario: negative parallelism %d", s.Parallelism)
	}
	if s.Rumors < 0 || s.Rumors > s.Agents {
		return fmt.Errorf("scenario: rumors %d outside [0,%d]", s.Rumors, s.Agents)
	}
	if engine == EngineMeeting {
		if s.Radius < 1 {
			return fmt.Errorf("scenario: the meeting engine needs radius >= 1 (the initial separation d), got %d", s.Radius)
		}
		// The lemma is stated for the paper's lazy walk; silently running a
		// different motion law would estimate a different quantity.
		if s.Mobility != "" {
			m, err := mobility.Parse(s.Mobility)
			if err != nil {
				return fmt.Errorf("scenario: %w", err)
			}
			if mobility.CanonicalSpec(m) != mobility.Default().Name() {
				return fmt.Errorf("scenario: the meeting engine runs Lemma 3's lazy walk only, got mobility %q", s.Mobility)
			}
		}
	}
	if s.Mobility != "" {
		// Reject the trace scheme by name, before mobility.Parse would
		// open the referenced file: specs arrive from untrusted HTTP
		// clients, and probing server-side paths (or blocking on FIFOs)
		// on their behalf is not acceptable.
		name, _, _ := strings.Cut(s.Mobility, ":")
		if strings.ToLower(strings.TrimSpace(name)) == "trace" {
			return fmt.Errorf("scenario: trace-driven mobility is not scenario-addressable (the trajectory lives outside the spec)")
		}
		m, err := mobility.Parse(s.Mobility)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		// Parse defers parameter-range checks (negative pause, alpha <= 0,
		// turn > 1) to Bind time; surface them here by binding a single
		// agent against the spec's grid — grids are two ints, and k=1
		// keeps the throwaway state tiny — so a nil Validate really does
		// mean Run cannot fail on parameter grounds.
		g, err := grid.FromNodes(s.Nodes)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if _, err := m.Bind(g, 1, rng.New(1)); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	for _, m := range s.Metrics {
		switch m {
		case MetricCurve, MetricCoverage:
		default:
			return fmt.Errorf("scenario: unknown metric %q (want %s|%s)", m, MetricCurve, MetricCoverage)
		}
	}
	if s.Observe != nil {
		if err := s.Observe.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	return nil
}

// Canonical validates the spec and resolves it to its canonical form:
// engine name normalised, node count rounded to the realised square,
// defaults made explicit where they are engine-independent, fields the
// engine ignores zeroed, metrics filtered to the engine's vocabulary and
// sorted, and the mobility spec re-rendered canonically (grid-independent
// bind defaults resolved; see mobility.CanonicalSpec). Two specs that
// describe the same simulation canonicalise identically — the property
// Hash builds on — with one conservative exception: a mobility parameter
// left to a grid-dependent default (levy's max jump) hashes differently
// from the same value spelled explicitly, splitting the cache but never
// returning a wrong result.
func (s Spec) Canonical() (Spec, error) {
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	c := s
	c.Label = ""
	c.Parallelism = 0 // execution-only: identical results at every setting
	c.Profile = false // execution-only: timings never split the cache
	c.Engine = strings.ToLower(strings.TrimSpace(s.Engine))
	g, err := grid.FromNodes(s.Nodes)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	c.Nodes = g.N()
	if c.Reps == 0 {
		c.Reps = 1
	}
	if c.Mobility == "" {
		c.Mobility = mobility.Default().Name()
	} else {
		m, err := mobility.Parse(c.Mobility)
		if err != nil {
			return Spec{}, fmt.Errorf("scenario: %w", err)
		}
		c.Mobility = mobility.CanonicalSpec(m)
	}
	// Engine-irrelevant knobs are zeroed so they cannot split the cache.
	if c.Engine == EngineCoverage {
		c.Radius = 0 // plain cover time has no transmission radius
	}
	if c.Engine == EngineMeeting {
		// The trial geometry is a function of the separation d (= Radius)
		// alone: the arena side is meeting.ArenaSide(d) and exactly two
		// walkers take part, so the user-supplied Nodes and Agents cannot
		// be allowed to split the cache. The d² default horizon is made
		// explicit so the effective step bound is visible in the hash (and
		// to service-side admission checks).
		side := meeting.ArenaSide(c.Radius)
		c.Nodes = side * side
		c.Agents = 2
		c.Mobility = mobility.Default().Name()
		if c.MaxSteps == 0 {
			c.MaxSteps = c.Radius * c.Radius
		}
	}
	if c.Engine != EnginePredator {
		c.Preys = 0
	} else if c.Preys == 0 {
		c.Preys = c.Agents
	}
	if c.Engine != EngineGossip || c.Rumors == c.Agents {
		c.Rumors = 0 // |M| = k is the classical gossip, spelled 0
	}
	if c.Engine != EngineBroadcast && c.Engine != EngineFrog {
		c.Source = 0
	}
	c.Metrics = canonicalMetrics(c.Engine, s.Metrics)
	if s.Observe != nil {
		vocab := engineObservables[c.Engine]
		ob, ok, err := s.Observe.Canonical(func(n string) bool { return vocab[n] })
		if err != nil {
			return Spec{}, fmt.Errorf("scenario: %w", err)
		}
		if ok {
			c.Observe = &ob
		} else {
			c.Observe = nil
		}
	}
	return c, nil
}

// engineObservables is each engine's observable vocabulary: the obs names
// its runner can actually fill. Canonicalisation filters observe requests
// down to it, mirroring canonicalMetrics.
var engineObservables = map[string]map[string]bool{
	EngineBroadcast: {obs.Informed: true, obs.Components: true, obs.Largest: true, obs.Coverage: true},
	EngineGossip:    {obs.Informed: true, obs.Components: true, obs.Largest: true},
	EngineFrog:      {obs.Informed: true, obs.Components: true, obs.Largest: true},
	EngineCoverage:  {obs.Informed: true, obs.Coverage: true},
	EnginePredator:  {obs.Informed: true},
	EngineMeeting:   {obs.Meeting: true},
}

// Observables returns the observable names the engine can record, sorted;
// it returns nil for unknown engines.
func Observables(engine string) []string {
	vocab := engineObservables[strings.ToLower(strings.TrimSpace(engine))]
	if len(vocab) == 0 {
		return nil
	}
	out := make([]string, 0, len(vocab))
	for n := range vocab {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// canonicalMetrics keeps the metrics the engine can produce, deduplicated
// and sorted.
func canonicalMetrics(engine string, metrics []string) []string {
	keep := map[string]bool{}
	for _, m := range metrics {
		switch {
		case m == MetricCurve && (engine == EngineBroadcast || engine == EngineCoverage):
			keep[m] = true
		case m == MetricCoverage && engine == EngineBroadcast:
			keep[m] = true
		}
	}
	if len(keep) == 0 {
		return nil
	}
	out := make([]string, 0, len(keep))
	for m := range keep {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// HasMetric reports whether the spec requests the named metric.
func (s Spec) HasMetric(name string) bool {
	for _, m := range s.Metrics {
		if m == name {
			return true
		}
	}
	return false
}

// Hash returns the canonical content hash of the spec: the hex SHA-256 of
// the canonical form's JSON encoding. Equal hashes mean equal simulations
// (same engine, parameters, seed schedule and metrics), so the hash is a
// sound key for result caches and deduplication.
func (s Spec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	return HashCanonical(c)
}

// HashCanonical hashes an already-canonical spec without re-validating it.
// Callers that just canonicalised (the service's submit path) use this to
// avoid paying validation twice; for anything else use Hash.
func HashCanonical(c Spec) (string, error) {
	data, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("scenario: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// RepSeed returns the seed replicate rep of the spec's seed schedule runs
// under. Replicate 0 runs under the master seed itself, so a single-rep
// scenario reproduces a direct library run with the same seed bit for bit;
// later replicates use the shared position-based derivation
// (rng.DeriveSeed), so parallel execution is scheduling-independent.
func RepSeed(master uint64, rep int) uint64 {
	if rep == 0 {
		return master
	}
	return rng.DeriveSeed(master, 0, rep)
}
