package scenario

import (
	"encoding/json"
	"reflect"
	"testing"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
)

func TestEnginesRegistry(t *testing.T) {
	t.Parallel()
	want := []string{EngineBroadcast, EngineCoverage, EngineFrog, EngineGossip, EngineMeeting, EnginePredator}
	got := Engines()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Engines() = %v, want %v", got, want)
	}
	for _, e := range want {
		r, ok := Lookup(e)
		if !ok {
			t.Fatalf("engine %s not registered", e)
		}
		if r.Engine() != e {
			t.Errorf("runner for %s reports engine %s", e, r.Engine())
		}
	}
	if _, ok := Lookup("  BROADCAST "); !ok {
		t.Error("Lookup is not case/space insensitive")
	}
}

// TestAllEnginesRunThroughDispatch drives every registered engine through
// the one shared dispatch path on a small fixed-seed spec.
func TestAllEnginesRunThroughDispatch(t *testing.T) {
	t.Parallel()
	for _, engine := range Engines() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			t.Parallel()
			spec := Spec{Engine: engine, Nodes: 256, Agents: 8, Seed: 1}
			if engine == EngineMeeting {
				// The meeting engine needs a separation d >= 1, and a
				// single trial legitimately may not meet — the completion
				// fraction is the measurement, not a success criterion.
				spec.Radius = 4
			}
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Engine != engine {
				t.Errorf("result engine = %s", res.Engine)
			}
			if len(res.Reps) != 1 {
				t.Fatalf("got %d reps, want 1", len(res.Reps))
			}
			if engine != EngineMeeting && !res.Reps[0].Completed {
				t.Errorf("%s did not complete at this small size", engine)
			}
			if res.Reps[0].Steps <= 0 {
				t.Errorf("%s reported %d steps", engine, res.Reps[0].Steps)
			}
		})
	}
}

// TestBroadcastMatchesCoreEngine pins the dispatch path to the engines'
// PR-1 behaviour: a 1-rep broadcast scenario must reproduce a direct
// core.RunBroadcast with the same parameters and seed exactly.
func TestBroadcastMatchesCoreEngine(t *testing.T) {
	t.Parallel()
	const seed = 2011
	res, err := Run(Spec{Engine: EngineBroadcast, Nodes: 1024, Agents: 16, Radius: 1,
		Seed: seed, Metrics: []string{MetricCurve, MetricCoverage}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.FromNodes(1024)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.RunBroadcast(core.Config{Grid: g, K: 16, Radius: 1, Seed: seed,
		RecordCurve: true, TrackInformedArea: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Reps[0]
	if rep.Steps != direct.Steps || rep.Completed != direct.Completed ||
		rep.Source != direct.Source || rep.CoverageSteps != direct.CoverageSteps {
		t.Errorf("scenario rep %+v diverges from core result %+v", rep, direct)
	}
	if !reflect.DeepEqual(rep.Curve, direct.InformedCurve) {
		t.Error("scenario curve diverges from core curve")
	}
}

// TestRunIsDeterministic checks the whole pipeline is a pure function of
// the spec: equal specs yield byte-identical encoded results.
func TestRunIsDeterministic(t *testing.T) {
	t.Parallel()
	spec := Spec{Engine: EnginePredator, Nodes: 256, Agents: 8, Seed: 5, Reps: 3}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("same spec, different results:\n%s\n%s", aj, bj)
	}
}

// TestRepZeroMatchesSingleRun checks the seed schedule: replicate 0 of a
// multi-rep scenario is the same simulation as the 1-rep scenario.
func TestRepZeroMatchesSingleRun(t *testing.T) {
	t.Parallel()
	multi, err := Run(Spec{Engine: EngineGossip, Nodes: 256, Agents: 8, Seed: 9, Reps: 4})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(Spec{Engine: EngineGossip, Nodes: 256, Agents: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Reps) != 4 {
		t.Fatalf("got %d reps", len(multi.Reps))
	}
	if !reflect.DeepEqual(multi.Reps[0], single.Reps[0]) {
		t.Errorf("rep 0 %+v diverges from single run %+v", multi.Reps[0], single.Reps[0])
	}
	if reflect.DeepEqual(multi.Reps[1], multi.Reps[0]) {
		t.Error("distinct reps produced identical outcomes (seed schedule broken?)")
	}
}

// TestRunParallelismInvariant runs the same component-heavy scenarios at
// forced-sequential and forced-parallel labelling and requires bit-identical
// results — the end-to-end form of the labeller's determinism guarantee.
func TestRunParallelismInvariant(t *testing.T) {
	t.Parallel()
	for _, engine := range []string{EngineBroadcast, EngineGossip, EngineFrog} {
		seq := Spec{Engine: engine, Nodes: 1024, Agents: 24, Radius: 2, Seed: 11, Reps: 2, Parallelism: 1}
		par := seq
		par.Parallelism = 4
		a, err := Run(seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(par)
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("%s: parallelism changed the result:\nseq: %s\npar: %s", engine, aj, bj)
		}
	}
}

func TestResultHashMatchesSpecHash(t *testing.T) {
	t.Parallel()
	spec := Spec{Engine: EngineCoverage, Nodes: 256, Agents: 8, Seed: 3}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	h, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != h {
		t.Errorf("result hash %s != spec hash %s", res.Hash, h)
	}
}
