package scenario

import (
	"encoding/json"
	"reflect"
	"testing"

	"mobilenet/internal/obs"
)

func TestObserveValidation(t *testing.T) {
	t.Parallel()
	base := Spec{Engine: EngineBroadcast, Nodes: 256, Agents: 8, Seed: 1}
	ok := base
	ok.Observe = &obs.Spec{Observables: []string{obs.Informed}, Every: 2}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.Observe = &obs.Spec{Observables: []string{"velocity"}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown observable validated")
	}
	empty := base
	empty.Observe = &obs.Spec{}
	if err := empty.Validate(); err == nil {
		t.Error("empty observe block validated")
	}
}

// TestObserveCanonicalisation: the observe block is filtered to the
// engine's vocabulary, deduplicated, sorted and defaulted — and dropped
// entirely when nothing survives.
func TestObserveCanonicalisation(t *testing.T) {
	t.Parallel()
	s := Spec{Engine: EnginePredator, Nodes: 256, Agents: 8, Seed: 1,
		Observe: &obs.Spec{Observables: []string{obs.Largest, obs.Informed, obs.Informed}}}
	c, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	// Predator fills only "informed"; largest_component is dropped.
	if !reflect.DeepEqual(c.Observe.Observables, []string{obs.Informed}) {
		t.Errorf("canonical observables = %v", c.Observe.Observables)
	}
	if c.Observe.Every != 1 {
		t.Errorf("canonical cadence = %d, want 1", c.Observe.Every)
	}
	// The input spec's block is untouched (canonicalisation must not alias).
	if len(s.Observe.Observables) != 3 || s.Observe.Every != 0 {
		t.Errorf("input observe block mutated: %+v", s.Observe)
	}
	// Nothing survives -> block dropped.
	s.Observe = &obs.Spec{Observables: []string{obs.Meeting}}
	c, err = s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.Observe != nil {
		t.Errorf("unsupported-only observe block kept: %+v", c.Observe)
	}
}

// TestObserveSplitsHash pins the §10 hash rule: observable names and
// cadence change the payload, so they must split the content hash —
// unlike execution-only knobs.
func TestObserveSplitsHash(t *testing.T) {
	t.Parallel()
	base := Spec{Engine: EngineBroadcast, Nodes: 256, Agents: 8, Seed: 1}
	plain, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	observed := base
	observed.Observe = &obs.Spec{Observables: []string{obs.Informed}}
	h1, err := observed.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == plain {
		t.Error("observe block did not change the hash")
	}
	coarser := base
	coarser.Observe = &obs.Spec{Observables: []string{obs.Informed}, Every: 4}
	h2, err := coarser.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h1 {
		t.Error("cadence did not change the hash")
	}
	// Name order and duplicates do NOT split: canonicalisation normalises.
	shuffled := base
	shuffled.Observe = &obs.Spec{Observables: []string{obs.Informed, obs.Informed}, Every: 1}
	h3, err := shuffled.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h1 {
		t.Error("equivalent observe blocks hash differently")
	}
	// A block the engine's vocabulary empties is identical to no block.
	dropped := base
	dropped.Observe = &obs.Spec{Observables: []string{obs.Meeting}}
	h4, err := dropped.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h4 != plain {
		t.Error("fully filtered observe block split the hash")
	}
}

func TestObserveParseRoundTrip(t *testing.T) {
	t.Parallel()
	raw := []byte(`{"engine":"broadcast","nodes":256,"agents":8,"seed":1,
		"observe":{"observables":["informed","coverage"],"every":2,"max_points":64}}`)
	s, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if s.Observe == nil || s.Observe.Every != 2 || s.Observe.MaxPoints != 64 {
		t.Fatalf("parsed observe = %+v", s.Observe)
	}
	if _, err := Parse([]byte(`{"engine":"broadcast","nodes":256,"agents":8,
		"observe":{"observables":["informed"],"stride":3}}`)); err == nil {
		t.Error("unknown observe field accepted")
	}
}

// TestRunProducesSeries drives every engine through scenario.Run with an
// observe block and checks the assembled result carries per-rep series and
// the across-rep aggregate.
func TestRunProducesSeries(t *testing.T) {
	t.Parallel()
	specs := []Spec{
		{Engine: EngineBroadcast, Nodes: 256, Agents: 8, Seed: 7, Reps: 3,
			Observe: &obs.Spec{Observables: []string{obs.Informed, obs.Components, obs.Largest, obs.Coverage}}},
		{Engine: EngineGossip, Nodes: 256, Agents: 8, Seed: 7, Reps: 2,
			Observe: &obs.Spec{Observables: []string{obs.Informed, obs.Components, obs.Largest}}},
		{Engine: EngineFrog, Nodes: 256, Agents: 8, Seed: 7,
			Observe: &obs.Spec{Observables: []string{obs.Informed, obs.Largest}}},
		{Engine: EngineCoverage, Nodes: 256, Agents: 8, Seed: 7, Reps: 2,
			Observe: &obs.Spec{Observables: []string{obs.Coverage}, Every: 4}},
		{Engine: EnginePredator, Nodes: 256, Agents: 8, Seed: 7, Preys: 4,
			Observe: &obs.Spec{Observables: []string{obs.Informed}}},
		{Engine: EngineMeeting, Radius: 6, Nodes: 1, Agents: 1, Seed: 7, Reps: 4,
			Observe: &obs.Spec{Observables: []string{obs.Meeting}}},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Engine, func(t *testing.T) {
			t.Parallel()
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range res.Reps {
				if r.Series == nil || len(r.Series.Steps) == 0 {
					t.Fatalf("rep %d has no series", i)
				}
				if r.Series.Steps[0] != 0 && spec.Engine != EngineMeeting {
					t.Errorf("rep %d series misses t=0: %v", i, r.Series.Steps[:1])
				}
			}
			if len(res.Series) == 0 {
				t.Fatal("result has no aggregated series")
			}
			for _, s := range res.Series {
				if len(s.Steps) == 0 || len(s.Mean) != len(s.Steps) || len(s.N) != len(s.Steps) {
					t.Errorf("aggregate %s malformed: %+v", s.Name, s)
				}
			}
		})
	}
}

// TestBroadcastSeriesMonotoneToN is the acceptance shape: the informed
// series of a completed broadcast is monotone non-decreasing and ends at
// the full population k.
func TestBroadcastSeriesMonotoneToN(t *testing.T) {
	t.Parallel()
	res, err := Run(Spec{Engine: EngineBroadcast, Nodes: 256, Agents: 16, Radius: 1, Seed: 3,
		Observe: &obs.Spec{Observables: []string{obs.Informed}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCompleted {
		t.Fatal("broadcast did not complete")
	}
	series := res.Reps[0].Series.Values[obs.Informed]
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatalf("informed series not monotone at %d: %v", i, series)
		}
	}
	if last := series[len(series)-1]; last != 16 {
		t.Errorf("informed series ends at %v, want 16", last)
	}
}

// TestSeriesDeterministicAcrossRuns: equal specs produce byte-identical
// encoded results, series included — the property the service cache needs.
func TestSeriesDeterministicAcrossRuns(t *testing.T) {
	t.Parallel()
	spec := Spec{Engine: EngineBroadcast, Nodes: 256, Agents: 8, Seed: 11, Reps: 2,
		Observe: &obs.Spec{Observables: []string{obs.Informed, obs.Coverage}, Every: 2, MaxPoints: 32}}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Error("observed runs of an identical spec encode differently")
	}
}

func TestObservablesVocabulary(t *testing.T) {
	t.Parallel()
	if got := Observables(EngineBroadcast); !reflect.DeepEqual(got,
		[]string{obs.Components, obs.Coverage, obs.Informed, obs.Largest}) {
		t.Errorf("broadcast vocabulary = %v", got)
	}
	if got := Observables(EngineMeeting); !reflect.DeepEqual(got, []string{obs.Meeting}) {
		t.Errorf("meeting vocabulary = %v", got)
	}
	if Observables("teleport") != nil {
		t.Error("unknown engine has a vocabulary")
	}
	// Every registered engine has a non-empty vocabulary.
	for _, e := range Engines() {
		if len(Observables(e)) == 0 {
			t.Errorf("engine %s has no observables", e)
		}
	}
}
