package scenario

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunRepHonoursCancelledContext pins the cancellation contract for
// every registered engine: a replicate started under an already-cancelled
// context aborts within one check interval and returns an error wrapping
// ErrCancelled, never a partial Rep.
func TestRunRepHonoursCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancelCtx := context.WithCancel(context.Background())
	cancelCtx()
	for _, engine := range Engines() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			t.Parallel()
			// Long enough that every engine's run loop reaches the first
			// amortized poll instead of finishing outright.
			spec := Spec{Engine: engine, Nodes: 4096, Agents: 4, Seed: 11, MaxSteps: 1 << 20}
			if engine == EngineMeeting {
				spec.Radius = 64 // horizon d^2 = 4096 steps
			}
			c, err := spec.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			r, ok := Lookup(engine)
			if !ok {
				t.Fatalf("engine %s not registered", engine)
			}
			t0 := time.Now()
			_, err = r.RunRep(ctx, c, c.Seed)
			if !errors.Is(err, ErrCancelled) {
				t.Fatalf("RunRep under cancelled context: err = %v, want ErrCancelled", err)
			}
			if wall := time.Since(t0); wall > 5*time.Second {
				t.Errorf("cancelled replicate ran %v before stopping", wall)
			}
		})
	}
}

// TestRunRepBackgroundContextUnchanged: threading an uncancellable context
// must not perturb results — the library path's replicates stay bit-for-bit
// identical to the pre-context behaviour (Run itself passes Background).
func TestRunRepBackgroundContextUnchanged(t *testing.T) {
	t.Parallel()
	spec := Spec{Engine: EngineBroadcast, Nodes: 256, Agents: 8, Seed: 3}
	c, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := Lookup(EngineBroadcast)
	rep1, err := r.RunRep(context.Background(), c, c.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), time.Hour)
	defer cancelCtx()
	rep2, err := r.RunRep(ctx, c, c.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Steps != rep2.Steps || rep1.Completed != rep2.Completed || rep1.Seed != rep2.Seed {
		t.Errorf("cancellable context changed the run: %+v vs %+v", rep1, rep2)
	}
}
