package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestValidateRejectsBadSpecs(t *testing.T) {
	t.Parallel()
	base := Spec{Engine: EngineBroadcast, Nodes: 256, Agents: 8}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"unknown engine", func(s *Spec) { s.Engine = "teleport" }},
		{"zero nodes", func(s *Spec) { s.Nodes = 0 }},
		{"zero agents", func(s *Spec) { s.Agents = 0 }},
		{"negative radius", func(s *Spec) { s.Radius = -1 }},
		{"negative max_steps", func(s *Spec) { s.MaxSteps = -1 }},
		{"negative reps", func(s *Spec) { s.Reps = -1 }},
		{"source out of range", func(s *Spec) { s.Source = 8 }},
		{"source below random", func(s *Spec) { s.Source = -2 }},
		{"negative preys", func(s *Spec) { s.Preys = -1 }},
		{"rumors above k", func(s *Spec) { s.Rumors = 9 }},
		{"bad mobility", func(s *Spec) { s.Mobility = "teleport" }},
		{"trace mobility", func(s *Spec) { s.Mobility = "trace:run.mtr" }},
		{"negative waypoint pause", func(s *Spec) { s.Mobility = "waypoint:pause=-1" }},
		{"non-positive levy alpha", func(s *Spec) { s.Mobility = "levy:alpha=-2" }},
		{"ballistic turn above 1", func(s *Spec) { s.Mobility = "ballistic:turn=2" }},
		{"unknown metric", func(s *Spec) { s.Metrics = []string{"entropy"} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Fatalf("spec %+v validated", s)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	t.Parallel()
	if _, err := Parse([]byte(`{"engine":"broadcast","nodes":256,"agents":8,"radiuss":1}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	// Trailing data (e.g. two accidentally concatenated specs) must not
	// silently run the first one.
	if _, err := Parse([]byte(`{"engine":"broadcast","nodes":256,"agents":8}{"seed":99}`)); err == nil {
		t.Fatal("trailing spec accepted")
	}
	s, err := Parse([]byte(`{"engine":"broadcast","nodes":256,"agents":8,"seed":7}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || s.Engine != EngineBroadcast {
		t.Fatalf("parsed spec %+v", s)
	}
}

func TestCanonicalResolvesDefaults(t *testing.T) {
	t.Parallel()
	c, err := Spec{
		Label:   "my run",
		Engine:  " Broadcast ",
		Nodes:   250, // rounds up to 16^2
		Agents:  8,
		Preys:   3, // irrelevant to broadcast
		Rumors:  2, // irrelevant to broadcast
		Metrics: []string{"coverage", "curve", "curve"},
	}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Engine:   EngineBroadcast,
		Nodes:    256,
		Agents:   8,
		Reps:     1,
		Mobility: "lazy",
		Metrics:  []string{"coverage", "curve"},
	}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("canonical = %+v, want %+v", c, want)
	}
	// Canonicalisation is idempotent.
	c2, err := c.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c2, c) {
		t.Fatalf("canonical not idempotent: %+v vs %+v", c2, c)
	}
}

func TestCanonicalEngineSpecificDefaults(t *testing.T) {
	t.Parallel()
	p, err := Spec{Engine: EnginePredator, Nodes: 256, Agents: 8}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if p.Preys != 8 {
		t.Errorf("predator preys default = %d, want 8", p.Preys)
	}
	g, err := Spec{Engine: EngineGossip, Nodes: 256, Agents: 8, Rumors: 8}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if g.Rumors != 0 {
		t.Errorf("gossip rumors=k canonicalised to %d, want 0 (classical)", g.Rumors)
	}
	cov, err := Spec{Engine: EngineCoverage, Nodes: 256, Agents: 8, Source: SourceRandom,
		Radius: 3, Metrics: []string{"coverage", "curve"}}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cov.Source != 0 {
		t.Errorf("coverage source = %d, want 0 (ignored)", cov.Source)
	}
	if cov.Radius != 0 {
		t.Errorf("coverage radius = %d, want 0 (the cover-time engine has no radius)", cov.Radius)
	}
	if !reflect.DeepEqual(cov.Metrics, []string{"curve"}) {
		t.Errorf("coverage metrics = %v, want [curve]", cov.Metrics)
	}
}

// TestMeetingEngineSpec pins the meeting engine's spec contract: the
// separation d rides the radius field (and must be >= 1), the arena and
// population are functions of d alone, the d² horizon is made explicit,
// and non-lazy mobility is rejected rather than silently ignored.
func TestMeetingEngineSpec(t *testing.T) {
	t.Parallel()
	if err := (Spec{Engine: EngineMeeting, Nodes: 1, Agents: 1}).Validate(); err == nil {
		t.Error("meeting spec with radius 0 validated")
	}
	if err := (Spec{Engine: EngineMeeting, Nodes: 1, Agents: 1, Radius: 4, Mobility: "levy"}).Validate(); err == nil {
		t.Error("meeting spec with non-lazy mobility validated")
	}
	if err := (Spec{Engine: EngineMeeting, Nodes: 1, Agents: 1, Radius: 4, Mobility: "lazy"}).Validate(); err != nil {
		t.Errorf("explicit lazy mobility rejected: %v", err)
	}
	c, err := Spec{Engine: EngineMeeting, Nodes: 9999, Agents: 77, Radius: 4, Reps: 3}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes != 24*24 || c.Agents != 2 {
		t.Errorf("canonical arena = (nodes %d, agents %d), want (%d, 2)", c.Nodes, c.Agents, 24*24)
	}
	if c.MaxSteps != 16 {
		t.Errorf("canonical horizon = %d, want d² = 16", c.MaxSteps)
	}
	// Nodes and Agents must not split the cache: the trial geometry is a
	// function of d alone.
	h1, err := Spec{Engine: EngineMeeting, Nodes: 1, Agents: 1, Radius: 4, Seed: 9}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Spec{Engine: EngineMeeting, Nodes: 4096, Agents: 64, Radius: 4, Seed: 9}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("meeting specs differing only in nodes/agents hash differently")
	}
	h3, err := Spec{Engine: EngineMeeting, Nodes: 1, Agents: 1, Radius: 5, Seed: 9}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("changing the separation left the hash unchanged")
	}
}

func TestHashIsContentAddressed(t *testing.T) {
	t.Parallel()
	a := Spec{Engine: EngineBroadcast, Nodes: 256, Agents: 8, Seed: 3, Mobility: "levy:max=40,alpha=1.6"}
	// Same simulation spelled differently: label, engine case, equivalent
	// mobility option order, explicit 1-rep.
	b := Spec{Label: "named", Engine: "BROADCAST", Nodes: 250, Agents: 8, Seed: 3,
		Reps: 1, Mobility: "levy:alpha=1.6,max=40", Preys: 5}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("equivalent specs hash differently: %s vs %s", ha, hb)
	}
	// Grid-independent bind-time defaults resolve: leaving levy's alpha
	// (or ballistic's turn) unset is the same simulation as spelling the
	// default explicitly.
	for name, pair := range map[string][2]string{
		"levy alpha":     {"levy:max=40", "levy:alpha=1.6,max=40"},
		"ballistic turn": {"ballistic", "ballistic:turn=0.05"},
	} {
		s1 := Spec{Engine: EngineBroadcast, Nodes: 256, Agents: 8, Mobility: pair[0]}
		s2 := Spec{Engine: EngineBroadcast, Nodes: 256, Agents: 8, Mobility: pair[1]}
		h1, err := s1.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h2, err := s2.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h1 != h2 {
			t.Errorf("%s: default-equivalent specs hash differently", name)
		}
	}
	// Any parameter change moves the hash.
	for name, mut := range map[string]func(Spec) Spec{
		"seed":     func(s Spec) Spec { s.Seed++; return s },
		"agents":   func(s Spec) Spec { s.Agents++; return s },
		"radius":   func(s Spec) Spec { s.Radius++; return s },
		"engine":   func(s Spec) Spec { s.Engine = EngineGossip; return s },
		"mobility": func(s Spec) Spec { s.Mobility = "ballistic"; return s },
		"metrics":  func(s Spec) Spec { s.Metrics = []string{MetricCurve}; return s },
		"reps":     func(s Spec) Spec { s.Reps = 2; return s },
	} {
		h, err := mut(a).Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == ha {
			t.Errorf("changing %s left the hash unchanged", name)
		}
	}
}

// TestParallelismIsExecutionOnly pins the contract that the parallelism
// knob never splits the content address: canonicalisation zeroes it, so
// specs differing only in parallelism hash — and therefore cache —
// identically, while negative values are still rejected up front.
func TestParallelismIsExecutionOnly(t *testing.T) {
	t.Parallel()
	base := Spec{Engine: EngineBroadcast, Nodes: 256, Agents: 8, Seed: 3}
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 16} {
		s := base
		s.Parallelism = p
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h != baseHash {
			t.Errorf("parallelism %d split the hash: %s vs %s", p, h, baseHash)
		}
		c, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if c.Parallelism != 0 {
			t.Errorf("canonical form kept parallelism %d", c.Parallelism)
		}
	}
	bad := base
	bad.Parallelism = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative parallelism accepted")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	t.Parallel()
	s := Spec{Engine: EnginePredator, Nodes: 1024, Agents: 16, Radius: 1, Seed: 42,
		Preys: 8, Reps: 3, Mobility: "waypoint:pause=2"}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("round trip changed the spec: %+v vs %+v", back, s)
	}
}

func TestRepSeedSchedule(t *testing.T) {
	t.Parallel()
	if RepSeed(42, 0) != 42 {
		t.Errorf("rep 0 must run under the master seed, got %d", RepSeed(42, 0))
	}
	seen := map[uint64]bool{}
	for rep := 0; rep < 64; rep++ {
		s := RepSeed(42, rep)
		if seen[s] {
			t.Fatalf("rep seed collision at rep %d", rep)
		}
		seen[s] = true
	}
}
