// Package sweep makes a parameter sweep — the unit in which every one of
// the paper's results is actually measured — a first-class declarative
// object. A Spec is a base scenario plus a list of axes (explicit value
// lists or integer ranges over any numeric or enum scenario field,
// combined cartesian or zipped) that expands deterministically into
// canonical scenario specs. The expanded point set canonicalises to a
// content hash of its own (order-independent: the same grid declared with
// axes in a different order hashes identically), every point is executed
// through the scenario.Runner registry on a bounded worker pool with
// first-error cancellation, per-point replicate statistics are aggregated
// via internal/stats, and the result renders to CSV/JSON tables via
// internal/tableio. An optional log-log power-law fit over one numeric
// axis turns a sweep into a scaling-law check (T_B ∝ k^-1/2, and so on).
//
// The same Spec drives mobilenet.RunSweep, `mobisim -sweep`, and the
// simulation service's POST /v1/sweeps endpoint, where each point flows
// through the hash-keyed result cache so repeated or overlapping sweeps
// deduplicate point by point. A base scenario carrying an `observe` block
// (internal/obs) rides unchanged: every expanded point records and
// aggregates its per-step series, and — since observation is part of a
// scenario's content identity — observed and unobserved grids hash apart.
package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"mobilenet/internal/scenario"
)

// MaxPoints bounds the expanded size of a single sweep. It is a guard
// against typo'd cartesian products (three 100-value axes is a million
// simulations), not a service admission limit — the simulation service
// applies its own, smaller bound.
const MaxPoints = 1 << 16

// Modes of axis combination; see Spec.Mode.
const (
	// ModeCartesian expands the cartesian product of all axes, first axis
	// slowest (row-major). It is the default.
	ModeCartesian = "cartesian"
	// ModeZip expands axes of equal length position by position: point i
	// takes value i of every axis.
	ModeZip = "zip"
)

// Axis varies one scenario field across a sweep. Exactly one of Values or
// the From/To/Step range must be given; ranges are integer-only and
// inclusive of To when the step lands on it.
type Axis struct {
	// Field is the canonical JSON name of the scenario field to vary:
	// "engine", "mobility" (string-valued), or "nodes", "agents",
	// "radius", "seed", "source", "max_steps", "reps", "preys", "rumors"
	// (integer-valued).
	Field string `json:"field"`
	// Values lists the axis values explicitly: JSON numbers (integral)
	// for numeric fields, strings for enum fields.
	Values []any `json:"values,omitempty"`
	// From, To, Step describe an inclusive integer range as an
	// alternative to Values (numeric fields only). Step must be positive.
	From *int64 `json:"from,omitempty"`
	To   *int64 `json:"to,omitempty"`
	Step *int64 `json:"step,omitempty"`
}

// Spec declares one parameter sweep: a base scenario and the axes that
// vary it. Like scenario specs, sweep specs are plain data — they marshal
// to JSON, validate without side effects, expand deterministically, and
// hash to a canonical content address of the expanded point set.
type Spec struct {
	// Label is an optional human-readable name; like scenario labels it
	// never enters the content hash.
	Label string `json:"label,omitempty"`
	// Base is the scenario every point starts from. It is validated only
	// as part of the expanded points, so fields an axis always overrides
	// may be left zero.
	Base scenario.Spec `json:"base"`
	// Axes lists the varied fields; at least one is required (a sweep
	// without axes is just a scenario).
	Axes []Axis `json:"axes"`
	// Mode selects how the axes combine: ModeCartesian (default) or
	// ModeZip.
	Mode string `json:"mode,omitempty"`
	// Fit optionally names a numeric axis to fit a log-log power law of
	// the per-point median steps against — the scaling-law check the
	// paper's Θ̃ statements call for.
	Fit string `json:"fit,omitempty"`
}

// Point is one expanded sweep coordinate: the axis values that produced
// it and the resulting canonical scenario.
type Point struct {
	// Index is the point's position in expansion order.
	Index int `json:"index"`
	// Values holds the axis values in axis order (int64 or string).
	Values []any `json:"values"`
	// Spec is the point's canonical scenario spec.
	Spec scenario.Spec `json:"spec"`
	// Hash is the point's canonical scenario content hash — the key the
	// result cache dedupes it under.
	Hash string `json:"hash"`
}

// fieldDef describes one sweepable scenario field.
type fieldDef struct {
	numeric bool
	set     func(s *scenario.Spec, n int64)
	setText func(s *scenario.Spec, v string)
}

// fields enumerates the sweepable scenario fields by canonical JSON name.
// Label and parallelism are deliberately absent: both are execution-only
// and would expand to points with identical content hashes.
var fields = map[string]fieldDef{
	"engine":    {setText: func(s *scenario.Spec, v string) { s.Engine = v }},
	"mobility":  {setText: func(s *scenario.Spec, v string) { s.Mobility = v }},
	"nodes":     {numeric: true, set: func(s *scenario.Spec, n int64) { s.Nodes = int(n) }},
	"agents":    {numeric: true, set: func(s *scenario.Spec, n int64) { s.Agents = int(n) }},
	"radius":    {numeric: true, set: func(s *scenario.Spec, n int64) { s.Radius = int(n) }},
	"seed":      {numeric: true, set: func(s *scenario.Spec, n int64) { s.Seed = uint64(n) }},
	"source":    {numeric: true, set: func(s *scenario.Spec, n int64) { s.Source = int(n) }},
	"max_steps": {numeric: true, set: func(s *scenario.Spec, n int64) { s.MaxSteps = int(n) }},
	"reps":      {numeric: true, set: func(s *scenario.Spec, n int64) { s.Reps = int(n) }},
	"preys":     {numeric: true, set: func(s *scenario.Spec, n int64) { s.Preys = int(n) }},
	"rumors":    {numeric: true, set: func(s *scenario.Spec, n int64) { s.Rumors = int(n) }},
}

// Fields returns the sweepable scenario field names, sorted.
func Fields() []string {
	out := make([]string, 0, len(fields))
	for name := range fields {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parse decodes a sweep Spec from JSON, rejecting unknown fields and
// trailing data, mirroring scenario.Parse.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("sweep: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("sweep: trailing data after the spec")
	}
	return s, nil
}

// normalizeValue coerces one axis value to its canonical representation:
// int64 for numeric fields (JSON numbers arrive as float64 and must be
// integral), string for enum fields.
func normalizeValue(field string, def fieldDef, v any) (any, error) {
	if def.numeric {
		switch n := v.(type) {
		case int:
			return int64(n), nil
		case int32:
			return int64(n), nil
		case int64:
			return n, nil
		case uint64:
			if n > math.MaxInt64 {
				return nil, fmt.Errorf("sweep: axis %q value %d overflows", field, n)
			}
			return int64(n), nil
		case float64:
			if n != math.Trunc(n) || math.Abs(n) >= 1<<53 {
				return nil, fmt.Errorf("sweep: axis %q value %v is not an integer", field, n)
			}
			return int64(n), nil
		default:
			return nil, fmt.Errorf("sweep: axis %q needs integer values, got %T", field, v)
		}
	}
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("sweep: axis %q needs string values, got %T", field, v)
	}
	return s, nil
}

// axisValues resolves an axis to its normalized value list.
func axisValues(a Axis) ([]any, error) {
	def, ok := fields[a.Field]
	if !ok {
		return nil, fmt.Errorf("sweep: unknown axis field %q (want one of %s)", a.Field, strings.Join(Fields(), "|"))
	}
	hasRange := a.From != nil || a.To != nil || a.Step != nil
	if len(a.Values) > 0 && hasRange {
		return nil, fmt.Errorf("sweep: axis %q gives both values and a range", a.Field)
	}
	if len(a.Values) > 0 {
		out := make([]any, len(a.Values))
		for i, v := range a.Values {
			nv, err := normalizeValue(a.Field, def, v)
			if err != nil {
				return nil, err
			}
			out[i] = nv
		}
		return out, nil
	}
	if !hasRange {
		return nil, fmt.Errorf("sweep: axis %q has no values and no range", a.Field)
	}
	if !def.numeric {
		return nil, fmt.Errorf("sweep: axis %q is not numeric, ranges need integer fields", a.Field)
	}
	if a.From == nil || a.To == nil || a.Step == nil {
		return nil, fmt.Errorf("sweep: axis %q range needs all of from, to and step", a.Field)
	}
	if *a.Step <= 0 {
		return nil, fmt.Errorf("sweep: axis %q step must be positive, got %d", a.Field, *a.Step)
	}
	if *a.To < *a.From {
		return nil, fmt.Errorf("sweep: axis %q range is empty (from %d > to %d)", a.Field, *a.From, *a.To)
	}
	var out []any
	for v := *a.From; v <= *a.To; v += *a.Step {
		out = append(out, v)
		if len(out) > MaxPoints {
			return nil, fmt.Errorf("sweep: axis %q range exceeds %d values", a.Field, MaxPoints)
		}
	}
	return out, nil
}

// mode returns the canonical combination mode.
func (s Spec) mode() string {
	if strings.TrimSpace(s.Mode) == "" {
		return ModeCartesian
	}
	return strings.ToLower(strings.TrimSpace(s.Mode))
}

// Validate checks the sweep's structure: known, non-duplicate axis
// fields, well-formed values or ranges, matching lengths under zip mode,
// a known fit axis, and an expansion within MaxPoints. It does not
// canonicalise the individual points — Expand does, and reports the first
// offending point by index.
func (s Spec) Validate() error {
	_, err := s.resolveAxes()
	return err
}

// resolveAxes validates the structure and returns the normalized value
// list of every axis.
func (s Spec) resolveAxes() ([][]any, error) {
	if len(s.Axes) == 0 {
		return nil, fmt.Errorf("sweep: no axes (a sweep without axes is just a scenario)")
	}
	switch s.mode() {
	case ModeCartesian, ModeZip:
	default:
		return nil, fmt.Errorf("sweep: unknown mode %q (want %s|%s)", s.Mode, ModeCartesian, ModeZip)
	}
	seen := map[string]bool{}
	vals := make([][]any, len(s.Axes))
	for i, a := range s.Axes {
		if seen[a.Field] {
			return nil, fmt.Errorf("sweep: duplicate axis field %q", a.Field)
		}
		seen[a.Field] = true
		v, err := axisValues(a)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	total := 1
	if s.mode() == ModeZip {
		for i := range vals {
			if len(vals[i]) != len(vals[0]) {
				return nil, fmt.Errorf("sweep: zip mode needs equal-length axes, %q has %d values but %q has %d",
					s.Axes[i].Field, len(vals[i]), s.Axes[0].Field, len(vals[0]))
			}
		}
		total = len(vals[0])
	} else {
		for i := range vals {
			if total > MaxPoints/len(vals[i]) {
				return nil, fmt.Errorf("sweep: expansion exceeds %d points", MaxPoints)
			}
			total *= len(vals[i])
		}
	}
	if total > MaxPoints {
		return nil, fmt.Errorf("sweep: expansion of %d points exceeds %d", total, MaxPoints)
	}
	if s.Fit != "" {
		found := false
		for _, a := range s.Axes {
			if a.Field == s.Fit {
				def := fields[a.Field]
				if !def.numeric {
					return nil, fmt.Errorf("sweep: fit axis %q is not numeric", s.Fit)
				}
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("sweep: fit names %q, which is not an axis", s.Fit)
		}
	}
	return vals, nil
}

// AxisFields returns the axis field names in axis order.
func (s Spec) AxisFields() []string {
	out := make([]string, len(s.Axes))
	for i, a := range s.Axes {
		out[i] = a.Field
	}
	return out
}

// Expand validates the sweep and expands it into its points, in
// deterministic order: zip position order, or the cartesian product with
// the first axis slowest. Every point is canonicalised (and therefore
// fully validated); the first invalid point fails the whole expansion
// with its index and axis coordinates.
func (s Spec) Expand() ([]Point, error) {
	vals, err := s.resolveAxes()
	if err != nil {
		return nil, err
	}
	total := 1
	if s.mode() == ModeZip {
		total = len(vals[0])
	} else {
		for _, v := range vals {
			total *= len(v)
		}
	}
	points := make([]Point, 0, total)
	for idx := 0; idx < total; idx++ {
		pv := make([]any, len(vals))
		if s.mode() == ModeZip {
			for ai := range vals {
				pv[ai] = vals[ai][idx]
			}
		} else {
			rem := idx
			for ai := len(vals) - 1; ai >= 0; ai-- {
				rem, pv[ai] = rem/len(vals[ai]), vals[ai][rem%len(vals[ai])]
			}
		}
		spec := s.Base
		for ai, v := range pv {
			def := fields[s.Axes[ai].Field]
			if def.numeric {
				def.set(&spec, v.(int64))
			} else {
				def.setText(&spec, v.(string))
			}
		}
		c, err := spec.Canonical()
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d (%s): %w", idx, coordString(s.AxisFields(), pv), err)
		}
		hash, err := scenario.HashCanonical(c)
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", idx, err)
		}
		points = append(points, Point{Index: idx, Values: pv, Spec: c, Hash: hash})
	}
	return points, nil
}

// coordString renders a point's axis coordinates for error messages.
func coordString(fields []string, values []any) string {
	parts := make([]string, len(fields))
	for i := range fields {
		parts[i] = fmt.Sprintf("%s=%v", fields[i], values[i])
	}
	return strings.Join(parts, " ")
}

// DistinctPoint groups the expanded points that canonicalise to one
// scenario: the first-occurring Point plus the indices of every point
// sharing its hash.
type DistinctPoint struct {
	// Point is the group's first occurrence in expansion order.
	Point
	// Indices lists all point indices sharing the hash, ascending.
	Indices []int
}

// Distinct groups an expanded point set by content hash, in
// first-occurrence (= ascending index) order. Both execution paths — the
// library pool and the simulation service's dispatcher — run one
// simulation per group and fan the result back out, so the grouping must
// stay shared or their byte-identical results could diverge.
func Distinct(points []Point) []DistinctPoint {
	byHash := map[string]int{}
	var out []DistinctPoint
	for _, p := range points {
		if ui, ok := byHash[p.Hash]; ok {
			out[ui].Indices = append(out[ui].Indices, p.Index)
			continue
		}
		byHash[p.Hash] = len(out)
		out = append(out, DistinctPoint{Point: p, Indices: []int{p.Index}})
	}
	return out
}

// HashPoints returns the sweep content hash of an expanded point set: the
// hex SHA-256 over the sorted multiset of point hashes. Sorting makes the
// hash independent of expansion order, so the same grid of simulations
// declared with axes (or axis values) in a different order — or expanded
// cartesian versus zipped — addresses the same content.
func HashPoints(points []Point) string {
	hs := make([]string, len(points))
	for i, p := range points {
		hs[i] = p.Hash
	}
	sort.Strings(hs)
	h := sha256.New()
	for _, s := range hs {
		h.Write([]byte(s))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Hash expands the sweep and returns its content hash; see HashPoints.
func (s Spec) Hash() (string, error) {
	points, err := s.Expand()
	if err != nil {
		return "", err
	}
	return HashPoints(points), nil
}
