package sweep

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mobilenet/internal/obs"
	"mobilenet/internal/scenario"
)

// stubResult builds a plausible scenario result for a canonical spec.
func stubResult(spec scenario.Spec, steps int) *scenario.Result {
	reps := make([]scenario.Rep, spec.Reps)
	var sum float64
	for i := range reps {
		reps[i] = scenario.Rep{Seed: scenario.RepSeed(spec.Seed, i), Steps: steps + i, Completed: true, CoverageSteps: -1}
		sum += float64(steps + i)
	}
	hash, _ := scenario.HashCanonical(spec)
	return &scenario.Result{
		Engine: spec.Engine, Hash: hash, Reps: reps,
		MeanSteps: sum / float64(len(reps)), AllCompleted: true,
	}
}

func TestRunAgainstRegistryMatchesScenarioRun(t *testing.T) {
	t.Parallel()
	sp := Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 11, Reps: 2},
		Axes: []Axis{{Field: "agents", Values: []any{4, 8}}},
	}
	res, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points", len(res.Points))
	}
	for i, p := range res.Points {
		direct, err := scenario.Run(p.Spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(p.Result)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(direct)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("point %d result diverges from scenario.Run:\n%s\nvs\n%s", i, got, want)
		}
		if p.Steps.Reps != 2 {
			t.Errorf("point %d aggregated %d reps", i, p.Steps.Reps)
		}
	}
	if res.Hash == "" || len(res.AxisFields) != 1 || res.AxisFields[0] != "agents" {
		t.Errorf("result metadata wrong: %+v", res)
	}
}

// TestRunDedupesIdenticalPoints pins the in-process analogue of the
// service's cache: points that canonicalise to the same scenario execute
// once and share the result.
func TestRunDedupesIdenticalPoints(t *testing.T) {
	t.Parallel()
	var calls atomic.Int32
	sp := Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 1},
		Mode: ModeZip,
		// Rumors is ignored by broadcast, so all three points canonicalise
		// to the same scenario.
		Axes: []Axis{{Field: "rumors", Values: []any{0, 1, 2}}},
	}
	res, err := Run(sp, Options{
		Workers: 1,
		RunPoint: func(spec scenario.Spec) (*scenario.Result, error) {
			calls.Add(1)
			return stubResult(spec, 100), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("identical points ran %d times, want 1", got)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points", len(res.Points))
	}
	for i := 1; i < 3; i++ {
		if res.Points[i].Result != res.Points[0].Result {
			t.Errorf("point %d did not share the deduped result", i)
		}
	}
}

// TestRunFirstErrorSemantics is the regression test for runReps-style
// error handling at the point level: a failing point cancels remaining
// dispatch and the lowest-indexed failed point's error is surfaced.
func TestRunFirstErrorSemantics(t *testing.T) {
	t.Parallel()
	var (
		mu      sync.Mutex
		started []int
	)
	sp := Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 1},
		Axes: []Axis{{Field: "seed", From: i64(0), To: i64(63), Step: i64(1)}},
	}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	failAt := map[string]int{points[3].Hash: 3, points[5].Hash: 5}
	_, err = Run(sp, Options{
		Workers: 4,
		RunPoint: func(spec scenario.Spec) (*scenario.Result, error) {
			hash, herr := spec.Hash()
			if herr != nil {
				return nil, herr
			}
			if idx, ok := failAt[hash]; ok {
				return nil, fmt.Errorf("boom at %d", idx)
			}
			mu.Lock()
			for i, p := range points {
				if p.Hash == hash {
					started = append(started, i)
				}
			}
			mu.Unlock()
			return stubResult(spec, 10), nil
		},
	})
	if err == nil {
		t.Fatal("failing sweep returned nil error")
	}
	// Lowest-indexed failure wins, with point context attached.
	if !strings.Contains(err.Error(), "point 3") || !strings.Contains(err.Error(), "boom at 3") {
		t.Errorf("error %q does not surface the lowest-indexed failure", err)
	}
	// Dispatch stopped: with 64 points and a failure at index 3 that
	// returns instantly, the pool cannot have churned through the whole
	// sweep (the bound is loose on purpose — completions racing the
	// cancellation are legitimate).
	mu.Lock()
	n := len(started)
	mu.Unlock()
	if n > 48 {
		t.Errorf("%d points ran after the failure; dispatch was not cancelled", n)
	}
}

func TestRunRequireCompleted(t *testing.T) {
	t.Parallel()
	sp := Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 1},
		Axes: []Axis{{Field: "agents", Values: []any{4, 8}}},
	}
	opts := Options{
		Workers: 1,
		RunPoint: func(spec scenario.Spec) (*scenario.Result, error) {
			res := stubResult(spec, 10)
			if spec.Agents == 8 {
				res.AllCompleted = false
			}
			return res, nil
		},
	}
	opts.RequireCompleted = true
	if _, err := Run(sp, opts); err == nil || !strings.Contains(err.Error(), "step cap") {
		t.Errorf("capped point not surfaced as error, got %v", err)
	}
	opts.RequireCompleted = false
	res, err := Run(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[1].AllCompleted {
		t.Error("capped point reported all_completed")
	}
}

func TestRunFit(t *testing.T) {
	t.Parallel()
	sp := Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 1 << 16, Agents: 4, Seed: 1},
		Axes: []Axis{{Field: "agents", Values: []any{4, 16, 64}}},
		Fit:  "agents",
	}
	// Steps proportional to 1/sqrt(agents): exponent -0.5 exactly.
	res, err := Run(sp, Options{
		Workers: 1,
		RunPoint: func(spec scenario.Spec) (*scenario.Result, error) {
			return stubResult(spec, int(8192/sqrtInt(spec.Agents))), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit == nil {
		t.Fatal("fit missing")
	}
	if res.Fit.Axis != "agents" || res.Fit.N != 3 {
		t.Errorf("fit metadata wrong: %+v", res.Fit)
	}
	if res.Fit.Alpha > -0.4 || res.Fit.Alpha < -0.6 {
		t.Errorf("fit exponent %.3f, want ≈ -0.5", res.Fit.Alpha)
	}
	if res.Fit.String() == "" {
		t.Error("empty fit rendering")
	}
}

func sqrtInt(k int) float64 {
	x := 1.0
	for i := 0; i < 64; i++ {
		x = (x + float64(k)/x) / 2
	}
	return x
}

func TestAssembleRejectsMismatch(t *testing.T) {
	t.Parallel()
	sp := Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 1},
		Axes: []Axis{{Field: "agents", Values: []any{4, 8}}},
	}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(sp, points, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Assemble(sp, points, make([]*scenario.Result, len(points))); err == nil {
		t.Error("nil result accepted")
	}
}

func TestTableShape(t *testing.T) {
	t.Parallel()
	sp := Spec{
		Label: "demo sweep",
		Base:  scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 1, Reps: 2},
		Axes: []Axis{
			{Field: "agents", Values: []any{4, 8}},
			{Field: "mobility", Values: []any{"lazy", "ballistic"}},
		},
	}
	res, err := Run(sp, Options{
		Workers: 1,
		RunPoint: func(spec scenario.Spec) (*scenario.Result, error) {
			return stubResult(spec, 50*spec.Agents), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	if table.Title != "demo sweep" {
		t.Errorf("table title %q", table.Title)
	}
	wantCols := []string{"agents", "mobility", "reps", "mean_steps", "stddev", "median",
		"ci95_low", "ci95_high", "all_completed", "hash"}
	if !reflect.DeepEqual(table.Columns, wantCols) {
		t.Errorf("columns = %v, want %v", table.Columns, wantCols)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("got %d rows", len(table.Rows))
	}
	if table.Rows[0][0] != "4" || table.Rows[0][1] != "lazy" {
		t.Errorf("first row %v", table.Rows[0])
	}
}

func TestOnPointCallback(t *testing.T) {
	t.Parallel()
	var calls atomic.Int32
	sp := Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 1},
		Axes: []Axis{{Field: "agents", Values: []any{4, 8, 16}}},
	}
	_, err := Run(sp, Options{
		RunPoint: func(spec scenario.Spec) (*scenario.Result, error) {
			return stubResult(spec, 10), nil
		},
		OnPoint: func(p Point, res *scenario.Result) {
			if res == nil || p.Hash == "" {
				panic("bad callback args")
			}
			calls.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Errorf("OnPoint called %d times, want 3", calls.Load())
	}
}

// TestRunErrorIsNotWrappedTwice guards the error contract used by the
// service: point errors carry the point index exactly once.
func TestRunSerialMatchesParallel(t *testing.T) {
	t.Parallel()
	sp := Spec{
		Base: scenario.Spec{Engine: scenario.EngineCoverage, Nodes: 64, Agents: 4, Seed: 5, Reps: 2},
		Axes: []Axis{{Field: "agents", Values: []any{2, 4, 8}}},
	}
	serial, err := Run(sp, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(sp, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("sweep results depend on pool width")
	}
	var roundTrip Result
	if err := json.Unmarshal(a, &roundTrip); err != nil {
		t.Fatalf("sweep result does not round-trip: %v", err)
	}
	if roundTrip.Hash != serial.Hash {
		t.Error("hash lost in round trip")
	}
}

// TestRunCarriesObservedSeries: an observe block on the base scenario
// rides every expanded point — per-rep series and the across-rep aggregate
// land in each point's result, and the observe block participates in the
// point hashes (an observed sweep is a different grid from an unobserved
// one).
func TestRunCarriesObservedSeries(t *testing.T) {
	t.Parallel()
	sp := Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 11, Reps: 2,
			Observe: &obs.Spec{Observables: []string{obs.Informed}, MaxPoints: 64}},
		Axes: []Axis{{Field: "agents", Values: []any{4, 8}}},
	}
	res, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Points {
		if len(p.Result.Series) == 0 {
			t.Errorf("point %d lost the aggregated series", i)
		}
		for ri, r := range p.Result.Reps {
			if r.Series == nil || len(r.Series.Steps) == 0 {
				t.Errorf("point %d rep %d lost its series", i, ri)
			}
		}
	}
	plain := sp
	plain.Base.Observe = nil
	h1, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := plain.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("observe block does not split the sweep hash")
	}
}
