package sweep

import (
	"reflect"
	"strings"
	"testing"

	"mobilenet/internal/scenario"
)

func i64(v int64) *int64 { return &v }

func baseBroadcast() scenario.Spec {
	return scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 8, Seed: 3}
}

func TestValidateRejectsBadSweeps(t *testing.T) {
	t.Parallel()
	good := Spec{
		Base: baseBroadcast(),
		Axes: []Axis{{Field: "agents", Values: []any{4, 8}}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good sweep rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no axes", func(s *Spec) { s.Axes = nil }},
		{"unknown mode", func(s *Spec) { s.Mode = "diagonal" }},
		{"unknown field", func(s *Spec) { s.Axes[0].Field = "velocity" }},
		{"execution-only field", func(s *Spec) { s.Axes[0].Field = "parallelism" }},
		{"duplicate field", func(s *Spec) {
			s.Axes = append(s.Axes, Axis{Field: "agents", Values: []any{16}})
		}},
		{"empty axis", func(s *Spec) { s.Axes[0].Values = nil }},
		{"string on numeric axis", func(s *Spec) { s.Axes[0].Values = []any{"eight"} }},
		{"fractional on numeric axis", func(s *Spec) { s.Axes[0].Values = []any{8.5} }},
		{"number on enum axis", func(s *Spec) {
			s.Axes[0] = Axis{Field: "engine", Values: []any{7}}
		}},
		{"values and range", func(s *Spec) { s.Axes[0].From, s.Axes[0].To, s.Axes[0].Step = i64(1), i64(3), i64(1) }},
		{"partial range", func(s *Spec) { s.Axes[0].Values = nil; s.Axes[0].From = i64(1) }},
		{"non-positive step", func(s *Spec) {
			s.Axes[0] = Axis{Field: "agents", From: i64(1), To: i64(3), Step: i64(0)}
		}},
		{"empty range", func(s *Spec) {
			s.Axes[0] = Axis{Field: "agents", From: i64(5), To: i64(3), Step: i64(1)}
		}},
		{"range on enum axis", func(s *Spec) {
			s.Axes[0] = Axis{Field: "engine", From: i64(1), To: i64(3), Step: i64(1)}
		}},
		{"zip length mismatch", func(s *Spec) {
			s.Mode = ModeZip
			s.Axes = append(s.Axes, Axis{Field: "radius", Values: []any{0, 1, 2}})
		}},
		{"fit names non-axis", func(s *Spec) { s.Fit = "radius" }},
		{"fit names enum axis", func(s *Spec) {
			s.Axes = append(s.Axes, Axis{Field: "mobility", Values: []any{"lazy", "ballistic"}})
			s.Fit = "mobility"
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := good
			s.Axes = append([]Axis{}, good.Axes...)
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Fatalf("sweep %+v validated", s)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	t.Parallel()
	if _, err := Parse([]byte(`{"base":{"engine":"broadcast","nodes":256,"agents":8},"axez":[]}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	if _, err := Parse([]byte(`{"base":{"engine":"broadcast","nodes":256,"agents":8},"axes":[{"field":"agents","values":[4]}]}{}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	s, err := Parse([]byte(`{
		"base": {"engine":"broadcast","nodes":256,"agents":8,"seed":3},
		"axes": [{"field":"agents","values":[4,8]},{"field":"radius","from":0,"to":2,"step":1}],
		"fit": "agents"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Axes) != 2 || s.Fit != "agents" {
		t.Fatalf("parsed sweep %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExpandCartesianOrder(t *testing.T) {
	t.Parallel()
	s := Spec{
		Base: baseBroadcast(),
		Axes: []Axis{
			{Field: "agents", Values: []any{4, 8}},
			{Field: "radius", From: i64(0), To: i64(2), Step: i64(2)},
		},
	}
	points, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// First axis slowest, range expanded inclusively.
	want := [][]any{{int64(4), int64(0)}, {int64(4), int64(2)}, {int64(8), int64(0)}, {int64(8), int64(2)}}
	if len(points) != len(want) {
		t.Fatalf("expanded %d points, want %d", len(points), len(want))
	}
	for i, p := range points {
		if p.Index != i {
			t.Errorf("point %d has index %d", i, p.Index)
		}
		if !reflect.DeepEqual(p.Values, want[i]) {
			t.Errorf("point %d values %v, want %v", i, p.Values, want[i])
		}
		if p.Spec.Agents != int(want[i][0].(int64)) || p.Spec.Radius != int(want[i][1].(int64)) {
			t.Errorf("point %d spec not updated: %+v", i, p.Spec)
		}
		// Points are canonical: defaults resolved.
		if p.Spec.Reps != 1 || p.Spec.Mobility == "" {
			t.Errorf("point %d spec not canonical: %+v", i, p.Spec)
		}
		wantHash, err := p.Spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if p.Hash != wantHash {
			t.Errorf("point %d hash mismatch", i)
		}
	}
}

func TestExpandZipOrder(t *testing.T) {
	t.Parallel()
	s := Spec{
		Base: baseBroadcast(),
		Mode: ModeZip,
		Axes: []Axis{
			{Field: "agents", Values: []any{4, 8, 16}},
			{Field: "seed", Values: []any{10, 20, 30}},
		},
	}
	points, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("zip expanded %d points, want 3", len(points))
	}
	for i, p := range points {
		if p.Spec.Agents != []int{4, 8, 16}[i] || p.Spec.Seed != []uint64{10, 20, 30}[i] {
			t.Errorf("zip point %d spec %+v", i, p.Spec)
		}
	}
}

func TestExpandReportsOffendingPoint(t *testing.T) {
	t.Parallel()
	s := Spec{
		Base: baseBroadcast(),
		// 2k > n at the third value is fine (scenario allows it); use an
		// outright invalid agents value instead.
		Axes: []Axis{{Field: "agents", Values: []any{4, 8, 0}}},
	}
	_, err := s.Expand()
	if err == nil {
		t.Fatal("invalid point expanded")
	}
	if want := "point 2"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the offending point (%s)", err, want)
	}
}

func TestExpandCapsPointCount(t *testing.T) {
	t.Parallel()
	s := Spec{
		Base: baseBroadcast(),
		Axes: []Axis{
			{Field: "seed", From: i64(0), To: i64(1 << 9), Step: i64(1)},
			{Field: "max_steps", From: i64(1), To: i64(1 << 9), Step: i64(1)},
		},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("oversized cartesian product validated")
	}
}

// TestHashIsOrderIndependent pins the sweep content address: the same set
// of simulations declared differently — axes reordered, values reordered,
// cartesian versus equivalent zip — hashes identically, while changing
// any actual parameter moves the hash.
func TestHashIsOrderIndependent(t *testing.T) {
	t.Parallel()
	a := Spec{
		Base: baseBroadcast(),
		Axes: []Axis{
			{Field: "agents", Values: []any{4, 8}},
			{Field: "radius", Values: []any{0, 2}},
		},
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	b := Spec{
		Label: "same grid, reordered",
		Base:  baseBroadcast(),
		Axes: []Axis{
			{Field: "radius", Values: []any{2, 0}},
			{Field: "agents", Values: []any{8, 4}},
		},
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("reordered axes hash differently: %s vs %s", ha, hb)
	}
	z := Spec{
		Base: baseBroadcast(),
		Mode: ModeZip,
		Axes: []Axis{
			{Field: "agents", Values: []any{4, 4, 8, 8}},
			{Field: "radius", Values: []any{0, 2, 0, 2}},
		},
	}
	hz, err := z.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hz != ha {
		t.Error("equivalent zip expansion hashes differently from cartesian")
	}
	for name, mut := range map[string]func(Spec) Spec{
		"base seed":  func(s Spec) Spec { s.Base.Seed++; return s },
		"axis value": func(s Spec) Spec { s.Axes[1].Values = []any{0, 3}; return s },
		"extra axis": func(s Spec) Spec {
			s.Axes = append(s.Axes, Axis{Field: "reps", Values: []any{1, 2}})
			return s
		},
	} {
		s := mut(Spec{
			Base: baseBroadcast(),
			Axes: []Axis{
				{Field: "agents", Values: []any{4, 8}},
				{Field: "radius", Values: []any{0, 2}},
			},
		})
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == ha {
			t.Errorf("changing %s left the sweep hash unchanged", name)
		}
	}
}
