package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"mobilenet/internal/scenario"
	"mobilenet/internal/stats"
	"mobilenet/internal/tableio"
)

// Options tunes a sweep run. The zero value selects the defaults.
type Options struct {
	// Workers bounds the point pool; 0 selects GOMAXPROCS. Point runs are
	// pinned to sequential component labelling (the pool is the
	// parallelism layer), mirroring the simulation service.
	Workers int
	// RunPoint overrides how one canonical point spec is executed; nil
	// selects the scenario.Runner registry via scenario.Run. The
	// simulation service uses this seam to route points through its
	// hash-keyed result cache.
	RunPoint func(spec scenario.Spec) (*scenario.Result, error)
	// RequireCompleted turns a replicate that hit its step cap into a
	// point error. The scaling-law experiments set it: a capped T_B is
	// not a measurement.
	RequireCompleted bool
	// OnPoint, when non-nil, receives each point and its result as it
	// completes (in completion order, from pool goroutines — the callback
	// must be safe for concurrent use).
	OnPoint func(p Point, res *scenario.Result)
}

// Aggregate summarises the Steps measurement across one point's
// replicates.
type Aggregate struct {
	// Reps is the replicate count.
	Reps int `json:"reps"`
	// Mean and StdDev are the sample mean and standard deviation.
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	// Median is the sample median — the statistic the scaling-law fits
	// use, being robust to the heavy upper tails of dissemination times.
	Median float64 `json:"median"`
	// CILow and CIHigh bound the Student-t 95% confidence interval of the
	// mean (see stats.TCritical95).
	CILow  float64 `json:"ci95_low"`
	CIHigh float64 `json:"ci95_high"`
	// Min and Max are the sample extremes.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Fit is the optional log-log power-law fit of per-point median steps
// against the numeric axis named by Spec.Fit.
type Fit struct {
	// Axis is the fitted axis field.
	Axis string `json:"axis"`
	// Alpha is the exponent (the log-log slope).
	Alpha float64 `json:"alpha"`
	// C is the multiplicative constant.
	C float64 `json:"c"`
	// AlphaErr is the standard error of the slope.
	AlphaErr float64 `json:"alpha_err"`
	// R2 is the coefficient of determination in log space.
	R2 float64 `json:"r2"`
	// N is the number of fitted points.
	N int `json:"n"`
}

// String renders the fit in the repository's power-law convention.
func (f Fit) String() string {
	return fmt.Sprintf("median = %.3g * %s^%.3f (±%.3f, R²=%.3f, n=%d)",
		f.C, f.Axis, f.Alpha, f.AlphaErr, f.R2, f.N)
}

// PointResult couples one expanded point with its scenario result and
// replicate statistics.
type PointResult struct {
	Point
	// Steps summarises the Steps measurement across replicates.
	Steps Aggregate `json:"steps"`
	// AllCompleted reports whether every replicate finished under the cap.
	AllCompleted bool `json:"all_completed"`
	// Result is the full scenario result — byte-identical, once encoded,
	// to a scenario.Run or simulation-service payload for the same point.
	Result *scenario.Result `json:"result"`
}

// Result is the outcome of a sweep: every point in expansion order plus
// the sweep-level aggregates.
type Result struct {
	// Label echoes the spec's label.
	Label string `json:"label,omitempty"`
	// Hash is the sweep content hash (HashPoints of the expanded set).
	Hash string `json:"hash"`
	// AxisFields names the axis columns, in axis order.
	AxisFields []string `json:"axis_fields"`
	// Points holds the per-point results in expansion order.
	Points []PointResult `json:"points"`
	// Fit is the optional scaling-law fit; nil unless the spec asked.
	Fit *Fit `json:"fit,omitempty"`
}

// Steps extracts the per-replicate Steps measurements of a scenario
// result as floats, the sample every aggregate is computed over.
func Steps(res *scenario.Result) []float64 {
	out := make([]float64, len(res.Reps))
	for i, r := range res.Reps {
		out[i] = float64(r.Steps)
	}
	return out
}

// aggregate summarises one point result.
func aggregate(res *scenario.Result) (Aggregate, error) {
	s, err := stats.Summarize(Steps(res))
	if err != nil {
		return Aggregate{}, err
	}
	return Aggregate{
		Reps:   s.N,
		Mean:   s.Mean,
		StdDev: s.StdDev,
		Median: s.Median,
		CILow:  s.CILow,
		CIHigh: s.CIHigh,
		Min:    s.Min,
		Max:    s.Max,
	}, nil
}

// Assemble builds the sweep Result from an expanded point set and its
// per-point scenario results (parallel slices in expansion order). Both
// execution paths — the library pool here and the simulation service's
// cache-aware dispatcher — funnel through this, so their sweep results
// are structurally identical.
func Assemble(sp Spec, points []Point, results []*scenario.Result) (*Result, error) {
	if len(points) != len(results) {
		return nil, fmt.Errorf("sweep: %d results for %d points", len(results), len(points))
	}
	out := &Result{
		Label:      sp.Label,
		Hash:       HashPoints(points),
		AxisFields: sp.AxisFields(),
		Points:     make([]PointResult, len(points)),
	}
	for i, p := range points {
		if results[i] == nil {
			return nil, fmt.Errorf("sweep: missing result for point %d", i)
		}
		agg, err := aggregate(results[i])
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
		out.Points[i] = PointResult{
			Point:        p,
			Steps:        agg,
			AllCompleted: results[i].AllCompleted,
			Result:       results[i],
		}
	}
	if sp.Fit != "" {
		fit, err := fitPoints(sp, out.Points)
		if err != nil {
			return nil, err
		}
		out.Fit = fit
	}
	return out, nil
}

// fitPoints fits median steps against the fit axis in log-log space.
func fitPoints(sp Spec, points []PointResult) (*Fit, error) {
	axis := -1
	for i, f := range sp.AxisFields() {
		if f == sp.Fit {
			axis = i
		}
	}
	if axis < 0 {
		return nil, fmt.Errorf("sweep: fit names %q, which is not an axis", sp.Fit)
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		v, ok := p.Values[axis].(int64)
		if !ok {
			return nil, fmt.Errorf("sweep: fit axis %q has non-numeric value %v", sp.Fit, p.Values[axis])
		}
		xs[i] = float64(v)
		ys[i] = p.Steps.Median
	}
	pf, err := stats.FitPowerLaw(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("sweep: fit: %w", err)
	}
	return &Fit{
		Axis:     sp.Fit,
		Alpha:    pf.Alpha,
		C:        pf.C(),
		AlphaErr: pf.AlphaErr,
		R2:       pf.R2,
		N:        pf.N,
	}, nil
}

// Run expands the sweep and executes every distinct point on a bounded
// worker pool, sharing one execution between points that canonicalise to
// the same scenario (the in-process analogue of the service's hash-keyed
// dedup). Error semantics match the experiment harness's runReps: the
// first failure cancels the dispatch of further points (points already
// executing finish their run) and the error of the lowest-indexed failed
// point is returned.
func Run(sp Spec, opt Options) (*Result, error) {
	points, err := sp.Expand()
	if err != nil {
		return nil, err
	}
	results, err := runPoints(points, opt)
	if err != nil {
		return nil, err
	}
	return Assemble(sp, points, results)
}

// runPoints executes the distinct specs of an expanded point set and fans
// the results back out over duplicate points.
func runPoints(points []Point, opt Options) ([]*scenario.Result, error) {
	runPoint := opt.RunPoint
	if runPoint == nil {
		runPoint = func(spec scenario.Spec) (*scenario.Result, error) {
			// The pool is the parallelism layer: pin each point to
			// sequential component labelling, as the service does.
			spec.Parallelism = 1
			return scenario.Run(spec)
		}
	}
	uniq := Distinct(points)

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(uniq) {
		workers = len(uniq)
	}
	results := make([]*scenario.Result, len(points))
	errs := make([]error, len(uniq))
	exec := func(ui int) error {
		u := uniq[ui]
		res, err := runPoint(u.Spec)
		if err != nil {
			return fmt.Errorf("sweep: point %d: %w", u.Index, err)
		}
		if opt.RequireCompleted && !res.AllCompleted {
			return fmt.Errorf("sweep: point %d (%s) hit the step cap before completing", u.Index, u.Hash[:12])
		}
		for _, idx := range u.Indices {
			results[idx] = res
		}
		if opt.OnPoint != nil {
			opt.OnPoint(u.Point, res)
		}
		return nil
	}

	if workers <= 1 {
		for ui := range uniq {
			if err := exec(ui); err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	var (
		wg   sync.WaitGroup
		next = make(chan int)
		done = make(chan struct{})
		once sync.Once
	)
	fail := func() { once.Do(func() { close(done) }) }
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ui := range next {
				if errs[ui] = exec(ui); errs[ui] != nil {
					fail()
					return
				}
			}
		}()
	}
dispatch:
	for ui := range uniq {
		select {
		case next <- ui:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	// uniq is ordered by first point index, so the first recorded error
	// is the lowest-indexed point's.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Table renders the sweep as a rectangular table: one row per point, the
// axis coordinates first, then the replicate statistics. This is the
// shape `mobisim -sweep` prints and exports as CSV/JSON.
func (r *Result) Table() *tableio.Table {
	title := r.Label
	if title == "" {
		title = "sweep " + shortHash(r.Hash)
	}
	cols := append(append([]string{}, r.AxisFields...),
		"reps", "mean_steps", "stddev", "median", "ci95_low", "ci95_high", "all_completed", "hash")
	t := tableio.NewTable(title, cols...)
	for _, p := range r.Points {
		cells := make([]any, 0, len(cols))
		cells = append(cells, p.Values...)
		cells = append(cells, p.Steps.Reps, p.Steps.Mean, p.Steps.StdDev, p.Steps.Median,
			p.Steps.CILow, p.Steps.CIHigh, p.AllCompleted, shortHash(p.Hash))
		t.AddRow(cells...)
	}
	return t
}

// shortHash abbreviates a content hash for table cells.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
