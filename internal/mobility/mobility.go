// Package mobility makes the motion law of the agent population a
// first-class, pluggable component. The paper proves T_B = Θ̃(n/√k) for one
// specific kernel — the 1/5-lazy simple random walk of its §2 — but related
// work (Jacquet–Mans–Rodolakis on propagation speed under waypoint-style
// motion; Zhang et al. on mobile conductance across mobility families)
// treats the mobility model as the experimental variable. This package
// defines the Model/State pair every engine (core, frog, coverage,
// predator) steps populations through, and ships five implementations:
//
//   - LazyWalk: the paper's kernel, bit-for-bit identical to the historical
//     hardcoded stepping path under equal seeds.
//   - RandomWaypoint: pick a uniform destination node, walk toward it one
//     lattice step at a time, optionally pause on arrival, repick.
//   - LevyFlight: truncated power-law jump lengths with uniform headings,
//     on the torus so uniform occupancy stays stationary.
//   - Ballistic: straight-line motion with a per-step turn probability, on
//     the torus.
//   - TraceReplay: replays a recorded internal/trace trajectory, looping or
//     truncating at the end.
//
// A Model is a small immutable description (safe to share and reuse); Bind
// compiles it against a concrete grid and population size into a State that
// owns all per-agent bookkeeping. All randomness flows through the single
// *rng.Source handed to Bind, which keeps whole runs reproducible from one
// seed exactly as before the subsystem existed.
package mobility

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
)

// Model describes a motion law. Implementations are small value types that
// carry only parameters; Bind compiles them into per-population State.
type Model interface {
	// Name returns the canonical spec name of the model (e.g. "lazy",
	// "levy"). It is stable and used by CLI flags and error messages.
	Name() string

	// UniformStationary reports whether the model keeps the uniform
	// node-occupancy distribution stationary, the property the paper's
	// §2 model has and Experiment E16 checks. Models that report true are
	// held to the shared occupancy property test.
	UniformStationary() bool

	// Bind validates the model's parameters against a concrete grid and
	// population size and returns fresh per-population state. All
	// randomness the state will ever need is drawn from src, both inside
	// Bind and during later Place/Step calls.
	Bind(g *grid.Grid, k int, src *rng.Source) (State, error)
}

// State is the per-population motion state produced by Model.Bind. A State
// is bound to one position slice layout: agent i's bookkeeping lives at
// index i, and callers must keep indices stable for the population's
// lifetime (mark agents dead rather than compacting slices).
//
// States are not safe for concurrent use; they share the population's
// single randomness stream by design.
type State interface {
	// Place writes the initial position of every agent into pos. Most
	// models place uniformly at random (the paper's initial condition);
	// TraceReplay places agents at the trace's recorded start.
	Place(pos []grid.Point)

	// Step advances every agent one synchronized step, in index order,
	// mutating pos in place.
	Step(pos []grid.Point)

	// StepAgent advances only agent i (the Frog model moves only active
	// agents; the predator engine moves only surviving preys).
	StepAgent(pos []grid.Point, i int)
}

// MovedStepper is the optional State extension implemented by states that
// can report which agents changed position during a synchronized step.
// Engines use it to feed dirty-agent information to incremental per-step
// structures (the visibility kernel's pair cache, coverage's visited set):
// an agent not in the report is guaranteed to stand exactly where it stood
// before the step, so per-agent work keyed on motion can be skipped.
//
// Implementations must advance the population exactly like Step — same
// motion law, same randomness consumption, bit-identical trajectories —
// and derive the report from the realised positions alone (an agent whose
// move was clamped at a boundary, paused, or frozen is NOT moved). States
// without a cheap report simply don't implement the interface; callers
// fall back to Step.
type MovedStepper interface {
	// StepMoved steps every agent like State.Step and appends the indices
	// of agents whose position changed to moved, in ascending order,
	// returning the extended slice.
	StepMoved(pos []grid.Point, moved []int32) []int32
}

// Default returns the model engines fall back to when none is configured:
// the paper's lazy random walk.
func Default() Model { return LazyWalk{} }

// place fills pos with independent uniform positions, drawing X then Y for
// each agent — the exact draw order of the historical placement loop, which
// the bit-for-bit seed-compatibility guarantee depends on.
func place(g *grid.Grid, pos []grid.Point, src *rng.Source) {
	side := g.Side()
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(side)), Y: int32(src.Intn(side))}
	}
}

// stepAll advances every agent through StepAgent in index order; models
// whose Step has no cross-agent coupling share this loop.
func stepAll(s State, pos []grid.Point) {
	for i := range pos {
		s.StepAgent(pos, i)
	}
}

// stepAllMoved is the generic MovedStepper loop: it advances every agent
// through StepAgent in index order — consuming randomness identically to
// stepAll — and reports moves by comparing each position before and after.
// Models with per-agent freezes or pauses (trace truncation, waypoint rest
// ticks) share it.
func stepAllMoved(s State, pos []grid.Point, moved []int32) []int32 {
	for i := range pos {
		before := pos[i]
		s.StepAgent(pos, i)
		if pos[i] != before {
			moved = append(moved, int32(i))
		}
	}
	return moved
}

// bindCheck validates the arguments common to every Bind implementation.
func bindCheck(name string, g *grid.Grid, k int, src *rng.Source) error {
	if g == nil {
		return fmt.Errorf("mobility: %s: nil grid", name)
	}
	if k <= 0 {
		return fmt.Errorf("mobility: %s: population size must be positive, got %d", name, k)
	}
	if src == nil {
		return fmt.Errorf("mobility: %s: nil randomness source", name)
	}
	return nil
}
