package mobility

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
)

// RandomWaypoint is the classical random-waypoint model restricted to the
// grid: each agent holds a uniformly random destination node, moves one
// lattice step toward it per tick (choosing the axis in proportion to the
// remaining displacement, so trajectories approximate the straight line),
// optionally pauses on arrival, then picks a fresh destination.
//
// Random waypoint is the motion family Jacquet, Mans and Rodolakis analyse
// for propagation speed; note that unlike the paper's lazy walk it does NOT
// keep node occupancy uniform — the long-run distribution is biased toward
// the grid centre, the well-known waypoint density pathology.
type RandomWaypoint struct {
	// Pause is the number of ticks an agent rests after reaching its
	// destination before moving again. Zero means immediate departure.
	Pause int
}

// Name implements Model.
func (RandomWaypoint) Name() string { return "waypoint" }

// UniformStationary implements Model. Waypoint occupancy is centre-biased.
func (RandomWaypoint) UniformStationary() bool { return false }

// Bind implements Model.
func (m RandomWaypoint) Bind(g *grid.Grid, k int, src *rng.Source) (State, error) {
	if err := bindCheck(m.Name(), g, k, src); err != nil {
		return nil, err
	}
	if m.Pause < 0 {
		return nil, fmt.Errorf("mobility: waypoint: negative pause %d", m.Pause)
	}
	return &waypointState{
		g:     g,
		src:   src,
		pause: m.Pause,
		dest:  make([]grid.Point, k),
		wait:  make([]int, k),
	}, nil
}

type waypointState struct {
	g     *grid.Grid
	src   *rng.Source
	pause int
	dest  []grid.Point
	wait  []int
}

func (s *waypointState) Place(pos []grid.Point) {
	place(s.g, pos, s.src)
	side := s.g.Side()
	for i := range s.dest {
		s.dest[i] = grid.Point{X: int32(s.src.Intn(side)), Y: int32(s.src.Intn(side))}
	}
}

func (s *waypointState) Step(pos []grid.Point) { stepAll(s, pos) }

// StepMoved implements MovedStepper: paused and just-arrived agents hold
// their node for the tick, so the generic compare loop reports real motion
// only.
func (s *waypointState) StepMoved(pos []grid.Point, moved []int32) []int32 {
	return stepAllMoved(s, pos, moved)
}

func (s *waypointState) StepAgent(pos []grid.Point, i int) {
	if s.wait[i] > 0 {
		s.wait[i]--
		return
	}
	p := pos[i]
	if p == s.dest[i] {
		// Rest for the arrival tick (plus any configured pause) while
		// picking the next destination. Beyond waypoint realism, the rest
		// breaks the deterministic (x+y) parity flip of always-moving
		// agents, which would deadlock r = 0 dissemination (see
		// walk.SimpleStep and the Ballistic parity note).
		side := s.g.Side()
		s.dest[i] = grid.Point{X: int32(s.src.Intn(side)), Y: int32(s.src.Intn(side))}
		s.wait[i] = s.pause
		return
	}
	d := s.dest[i]
	dx, dy := abs32(d.X-p.X), abs32(d.Y-p.Y)
	// Move along x with probability dx/(dx+dy): the expected trajectory is
	// the straight segment to the destination.
	if dy == 0 || (dx > 0 && int32(s.src.Intn(int(dx+dy))) < dx) {
		if d.X > p.X {
			p.X++
		} else {
			p.X--
		}
	} else {
		if d.Y > p.Y {
			p.Y++
		} else {
			p.Y--
		}
	}
	pos[i] = p
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
