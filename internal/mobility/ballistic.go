package mobility

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
)

// Ballistic moves each agent in a straight lattice line — one node per tick
// along a persistent direction — with torus wraparound. With probability
// TurnProb per tick the agent instead rests and resamples its direction.
// It is the maximally stirring classical contrast to the diffusive lazy
// walk: displacement grows linearly in time between turns instead of as √t.
//
// The rest-on-turn tick matters beyond realism: an agent that moved every
// tick would flip its (x+y) parity deterministically, and two agents of
// opposite parity could never co-occupy a node — the same r = 0 deadlock
// walk.SimpleStep documents for the non-lazy walk. The occasional rest
// breaks parity, exactly as the paper's 1/5 laziness does.
//
// The per-tick displacement depends only on the agent's own direction
// state, never on its position, and every torus translation permutes the
// node set, so uniform occupancy is exactly stationary.
type Ballistic struct {
	// TurnProb is the per-tick probability of resting to resample the
	// direction uniformly among the four lattice directions, in (0, 1].
	// Zero selects the default 0.05.
	TurnProb float64
}

// Name implements Model.
func (Ballistic) Name() string { return "ballistic" }

// UniformStationary implements Model.
func (Ballistic) UniformStationary() bool { return true }

// Bind implements Model.
func (m Ballistic) Bind(g *grid.Grid, k int, src *rng.Source) (State, error) {
	if err := bindCheck(m.Name(), g, k, src); err != nil {
		return nil, err
	}
	turn := m.TurnProb
	if turn == 0 {
		turn = 0.05
	}
	if turn < 0 || turn > 1 {
		return nil, fmt.Errorf("mobility: ballistic: turn probability %v outside [0,1]", m.TurnProb)
	}
	return &ballisticState{g: g, src: src, turn: turn, dir: make([]uint8, k)}, nil
}

type ballisticState struct {
	g    *grid.Grid
	src  *rng.Source
	turn float64
	dir  []uint8 // 0: -x, 1: +x, 2: -y, 3: +y
}

func (s *ballisticState) Place(pos []grid.Point) {
	place(s.g, pos, s.src)
	for i := range s.dir {
		s.dir[i] = uint8(s.src.Intn(4))
	}
}

func (s *ballisticState) Step(pos []grid.Point) { stepAll(s, pos) }

func (s *ballisticState) StepAgent(pos []grid.Point, i int) {
	if s.src.Bernoulli(s.turn) {
		// Rest this tick while re-aiming; see the parity note on Ballistic.
		s.dir[i] = uint8(s.src.Intn(4))
		return
	}
	side := int32(s.g.Side())
	p := pos[i]
	switch s.dir[i] {
	case 0:
		p.X = wrap(p.X-1, side)
	case 1:
		p.X = wrap(p.X+1, side)
	case 2:
		p.Y = wrap(p.Y-1, side)
	default:
		p.Y = wrap(p.Y+1, side)
	}
	pos[i] = p
}
