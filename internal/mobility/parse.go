package mobility

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"mobilenet/internal/trace"
)

// Parse builds a Model from a CLI-style spec string. The grammar is
//
//	lazy
//	waypoint[:pause=N]
//	levy[:alpha=F][,max=N]
//	ballistic[:turn=F]
//	trace:FILE[,loop]
//
// with model-specific options after the first colon, comma-separated.
// Unknown models and malformed options are errors; parameter-range errors
// (e.g. a negative pause) surface later, at Bind time.
func Parse(spec string) (Model, error) {
	name, opts, _ := strings.Cut(spec, ":")
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "lazy", "lazywalk", "":
		if opts != "" {
			return nil, fmt.Errorf("mobility: lazy takes no options, got %q", opts)
		}
		return LazyWalk{}, nil
	case "waypoint":
		m := RandomWaypoint{}
		err := parseOpts(opts, map[string]func(string) error{
			"pause": func(v string) (err error) { m.Pause, err = strconv.Atoi(v); return },
		})
		return m, err
	case "levy":
		m := LevyFlight{}
		err := parseOpts(opts, map[string]func(string) error{
			"alpha": func(v string) (err error) { m.Alpha, err = strconv.ParseFloat(v, 64); return },
			"max":   func(v string) (err error) { m.MaxJump, err = strconv.Atoi(v); return },
		})
		return m, err
	case "ballistic":
		m := Ballistic{}
		err := parseOpts(opts, map[string]func(string) error{
			"turn": func(v string) (err error) { m.TurnProb, err = strconv.ParseFloat(v, 64); return },
		})
		return m, err
	case "trace":
		path, rest, _ := strings.Cut(opts, ",")
		if path == "" {
			return nil, fmt.Errorf("mobility: trace requires a file, e.g. trace:run.mtr")
		}
		loop := false
		switch rest {
		case "":
		case "loop":
			loop = true
		default:
			return nil, fmt.Errorf("mobility: unknown trace option %q (only \"loop\")", rest)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("mobility: %w", err)
		}
		defer f.Close()
		t, err := trace.Read(f)
		if err != nil {
			return nil, fmt.Errorf("mobility: reading %s: %w", path, err)
		}
		return TraceReplay{Trace: t, Loop: loop}, nil
	default:
		return nil, fmt.Errorf("mobility: unknown model %q (want lazy|waypoint|levy|ballistic|trace)", name)
	}
}

// parseOpts applies "key=value" options, comma-separated, through the given
// setters.
func parseOpts(opts string, set map[string]func(string) error) error {
	if opts == "" {
		return nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("mobility: option %q is not key=value", kv)
		}
		f, known := set[key]
		if !known {
			return fmt.Errorf("mobility: unknown option %q", key)
		}
		if err := f(val); err != nil {
			return fmt.Errorf("mobility: option %s: %w", key, err)
		}
	}
	return nil
}
