package mobility

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"mobilenet/internal/trace"
)

// Parse builds a Model from a CLI-style spec string. The grammar is
//
//	lazy
//	waypoint[:pause=N]
//	levy[:alpha=F][,max=N]
//	ballistic[:turn=F]
//	trace:FILE[,loop]
//
// with model-specific options after the first colon, comma-separated.
// Unknown models and malformed options are errors; parameter-range errors
// (e.g. a negative pause) surface later, at Bind time.
func Parse(spec string) (Model, error) {
	name, opts, _ := strings.Cut(spec, ":")
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "lazy", "lazywalk", "":
		if opts != "" {
			return nil, fmt.Errorf("mobility: lazy takes no options, got %q", opts)
		}
		return LazyWalk{}, nil
	case "waypoint":
		m := RandomWaypoint{}
		err := parseOpts(opts, map[string]func(string) error{
			"pause": func(v string) (err error) { m.Pause, err = strconv.Atoi(v); return },
		})
		return m, err
	case "levy":
		m := LevyFlight{}
		err := parseOpts(opts, map[string]func(string) error{
			"alpha": func(v string) (err error) { m.Alpha, err = strconv.ParseFloat(v, 64); return },
			"max":   func(v string) (err error) { m.MaxJump, err = strconv.Atoi(v); return },
		})
		return m, err
	case "ballistic":
		m := Ballistic{}
		err := parseOpts(opts, map[string]func(string) error{
			"turn": func(v string) (err error) { m.TurnProb, err = strconv.ParseFloat(v, 64); return },
		})
		return m, err
	case "trace":
		path, rest, _ := strings.Cut(opts, ",")
		if path == "" {
			return nil, fmt.Errorf("mobility: trace requires a file, e.g. trace:run.mtr")
		}
		loop := false
		switch rest {
		case "":
		case "loop":
			loop = true
		default:
			return nil, fmt.Errorf("mobility: unknown trace option %q (only \"loop\")", rest)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("mobility: %w", err)
		}
		defer f.Close()
		t, err := trace.Read(f)
		if err != nil {
			return nil, fmt.Errorf("mobility: reading %s: %w", path, err)
		}
		return TraceReplay{Trace: t, Loop: loop}, nil
	default:
		return nil, fmt.Errorf("mobility: unknown model %q (want lazy|waypoint|levy|ballistic|trace)", name)
	}
}

// CanonicalSpec renders a Model back into the spec string Parse accepts,
// with options in a fixed order and grid-independent bind-time defaults
// resolved (a zero levy alpha renders as the 1.6 it runs under; a zero
// ballistic turn probability as 0.05). Two spec strings that parse to the
// same motion law render identically, which makes the rendering usable as
// a canonical form (scenario hashing relies on this). The one exception is
// levy's MaxJump, whose default depends on the grid and so stays omitted
// when zero: "levy" and an explicit "levy:max=<side/2>" hash as different
// scenarios even though they run identically — a conservative split, never
// a wrong cache hit. TraceReplay renders as a bare "trace": the trajectory
// lives in memory, not in the string, so the rendering does not round-trip.
func CanonicalSpec(m Model) string {
	switch m := m.(type) {
	case LazyWalk:
		return "lazy"
	case RandomWaypoint:
		if m.Pause != 0 {
			return fmt.Sprintf("waypoint:pause=%d", m.Pause)
		}
		return "waypoint"
	case LevyFlight:
		alpha := m.Alpha
		if alpha == 0 {
			alpha = 1.6 // Bind's default
		}
		opts := []string{"alpha=" + strconv.FormatFloat(alpha, 'g', -1, 64)}
		if m.MaxJump != 0 {
			opts = append(opts, "max="+strconv.Itoa(m.MaxJump))
		}
		return "levy:" + strings.Join(opts, ",")
	case Ballistic:
		turn := m.TurnProb
		if turn == 0 {
			turn = 0.05 // Bind's default
		}
		return "ballistic:turn=" + strconv.FormatFloat(turn, 'g', -1, 64)
	default:
		return m.Name()
	}
}

// parseOpts applies "key=value" options, comma-separated, through the given
// setters.
func parseOpts(opts string, set map[string]func(string) error) error {
	if opts == "" {
		return nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("mobility: option %q is not key=value", kv)
		}
		f, known := set[key]
		if !known {
			return fmt.Errorf("mobility: unknown option %q", key)
		}
		if err := f(val); err != nil {
			return fmt.Errorf("mobility: option %s: %w", key, err)
		}
	}
	return nil
}
