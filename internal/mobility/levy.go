package mobility

import (
	"fmt"
	"math"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
)

// LevyFlight moves each agent one power-law-distributed jump per tick: a
// heading uniform in [0, 2π) and a length drawn from the truncated Pareto
// density p(l) ∝ l^(-Alpha) on [1, MaxJump], applied with torus wraparound.
// Heavy-tailed flights are the standard super-diffusive contrast to the
// paper's diffusive lazy walk (Zhang et al.'s mobile-conductance analysis
// orders mobility models by exactly this kind of stirring strength).
//
// Because the jump distribution is position-independent and the torus makes
// every displacement a bijection of the node set, the uniform occupancy
// distribution remains exactly stationary — the same E16 property the lazy
// walk has, so broadcast-time comparisons against it are apples to apples.
type LevyFlight struct {
	// Alpha is the power-law exponent (> 0). Small Alpha gives heavier
	// tails; Alpha in (1, 3) is the classical Lévy regime. Zero selects
	// the default 1.6.
	Alpha float64
	// MaxJump truncates the jump length (>= 1). Zero selects half the
	// grid side.
	MaxJump int
}

// Name implements Model.
func (LevyFlight) Name() string { return "levy" }

// UniformStationary implements Model.
func (LevyFlight) UniformStationary() bool { return true }

// Bind implements Model.
func (m LevyFlight) Bind(g *grid.Grid, k int, src *rng.Source) (State, error) {
	if err := bindCheck(m.Name(), g, k, src); err != nil {
		return nil, err
	}
	alpha := m.Alpha
	if alpha == 0 {
		alpha = 1.6
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("mobility: levy: alpha must be positive and finite, got %v", m.Alpha)
	}
	maxJump := m.MaxJump
	if maxJump == 0 {
		maxJump = g.Side() / 2
		if maxJump < 1 {
			maxJump = 1
		}
	}
	if maxJump < 1 {
		return nil, fmt.Errorf("mobility: levy: MaxJump must be >= 1, got %d", m.MaxJump)
	}
	return &levyState{g: g, src: src, alpha: alpha, maxJump: maxJump}, nil
}

type levyState struct {
	g       *grid.Grid
	src     *rng.Source
	alpha   float64
	maxJump int
}

func (s *levyState) Place(pos []grid.Point) { place(s.g, pos, s.src) }

func (s *levyState) Step(pos []grid.Point) { stepAll(s, pos) }

func (s *levyState) StepAgent(pos []grid.Point, i int) {
	l := s.jumpLength()
	theta := 2 * math.Pi * s.src.Float64()
	dx := int32(math.Round(l * math.Cos(theta)))
	dy := int32(math.Round(l * math.Sin(theta)))
	side := int32(s.g.Side())
	pos[i] = grid.Point{
		X: wrap(pos[i].X+dx, side),
		Y: wrap(pos[i].Y+dy, side),
	}
}

// jumpLength draws from the truncated Pareto density on [1, maxJump+1) by
// inverse-CDF sampling and floors, yielding an integral length in
// [1, maxJump]. The floor (rather than using the continuous draw directly)
// is what makes MaxJump a hard bound on the displacement: round(l·cosθ)
// with l ≤ maxJump cannot exceed maxJump.
func (s *levyState) jumpLength() float64 {
	u := s.src.Float64()
	xmax := float64(s.maxJump) + 1
	var l float64
	if s.alpha == 1 {
		l = math.Pow(xmax, u)
	} else {
		e := 1 - s.alpha
		l = math.Pow(1+u*(math.Pow(xmax, e)-1), 1/e)
	}
	l = math.Floor(l)
	if l > float64(s.maxJump) { // guard the u→1 numerical edge
		l = float64(s.maxJump)
	}
	return l
}

// wrap reduces a coordinate onto the torus [0, side).
func wrap(v, side int32) int32 {
	v %= side
	if v < 0 {
		v += side
	}
	return v
}
