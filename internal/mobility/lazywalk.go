package mobility

import (
	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/walk"
)

// LazyWalk is the paper's §2 mobility model: the 1/5-lazy simple random
// walk on the bounded grid. It is the default model and the one every
// theorem of the paper is proved for. The implementation delegates to
// walk.Step, so a population driven by LazyWalk consumes randomness in
// exactly the same order as the historical hardcoded stepping path:
// equal seeds reproduce the seed implementation bit for bit.
type LazyWalk struct{}

// Name implements Model.
func (LazyWalk) Name() string { return "lazy" }

// UniformStationary implements Model. The 1/5 laziness is chosen precisely
// so the uniform distribution is stationary (paper §2, Experiment E16).
func (LazyWalk) UniformStationary() bool { return true }

// Bind implements Model.
func (m LazyWalk) Bind(g *grid.Grid, k int, src *rng.Source) (State, error) {
	if err := bindCheck(m.Name(), g, k, src); err != nil {
		return nil, err
	}
	return &lazyState{g: g, src: src}, nil
}

type lazyState struct {
	g   *grid.Grid
	src *rng.Source
}

func (s *lazyState) Place(pos []grid.Point) { place(s.g, pos, s.src) }

func (s *lazyState) Step(pos []grid.Point) {
	g, src := s.g, s.src
	for i := range pos {
		pos[i] = walk.Step(g, pos[i], src)
	}
}

func (s *lazyState) StepAgent(pos []grid.Point, i int) {
	pos[i] = walk.Step(s.g, pos[i], s.src)
}
