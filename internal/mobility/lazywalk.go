package mobility

import (
	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/walk"
)

// LazyWalk is the paper's §2 mobility model: the 1/5-lazy simple random
// walk on the bounded grid. It is the default model and the one every
// theorem of the paper is proved for. Bulk stepping goes through the
// batched walk.StepAll kernel — one tight loop of raw draws feeds the
// laziness and direction decisions of the whole population — which consumes
// randomness in exactly the same order as the historical per-agent
// walk.Step path: equal seeds reproduce the seed implementation bit for
// bit, pinned by TestLazyWalkMatchesHistoricalKernel.
type LazyWalk struct{}

// Name implements Model.
func (LazyWalk) Name() string { return "lazy" }

// UniformStationary implements Model. The 1/5 laziness is chosen precisely
// so the uniform distribution is stationary (paper §2, Experiment E16).
func (LazyWalk) UniformStationary() bool { return true }

// Bind implements Model.
func (m LazyWalk) Bind(g *grid.Grid, k int, src *rng.Source) (State, error) {
	if err := bindCheck(m.Name(), g, k, src); err != nil {
		return nil, err
	}
	return &lazyState{g: g, src: src}, nil
}

type lazyState struct {
	g   *grid.Grid
	src *rng.Source
	buf []uint64 // raw-draw batch buffer for walk.StepAll
}

func (s *lazyState) Place(pos []grid.Point) { place(s.g, pos, s.src) }

func (s *lazyState) Step(pos []grid.Point) {
	if cap(s.buf) < len(pos) {
		s.buf = make([]uint64, len(pos))
	}
	walk.StepAll(s.g, pos, s.buf, s.src)
}

func (s *lazyState) StepAgent(pos []grid.Point, i int) {
	pos[i] = walk.Step(s.g, pos[i], s.src)
}

// StepMoved implements MovedStepper via the batched walk.StepAllMoved
// kernel, which consumes the identical randomness stream as Step.
func (s *lazyState) StepMoved(pos []grid.Point, moved []int32) []int32 {
	if cap(s.buf) < len(pos) {
		s.buf = make([]uint64, len(pos))
	}
	return walk.StepAllMoved(s.g, pos, s.buf, s.src, moved)
}
