package mobility

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/trace"
)

// TraceReplay drives agents along a recorded internal/trace trajectory
// instead of a stochastic law: agent i replays the trace's agent i exactly,
// move by move. Replay is the bridge to empirical mobility datasets (GPS or
// contact traces converted to the grid) and to regression debugging —
// re-running a recorded rare event under heavier instrumentation.
//
// Each agent carries its own trace clock, so engines that advance only a
// subset of agents per tick (the Frog model, surviving preys) stay
// well-defined: a frozen agent simply holds its trace position.
type TraceReplay struct {
	// Trace is the recorded trajectory. Required; its grid side must match
	// the population's grid and it must cover at least Offset+k agents.
	Trace *trace.Trace
	// Loop restarts an agent at its recorded start position after it
	// exhausts the trace (one teleport tick per lap). When false the agent
	// freezes at its final recorded position instead (truncation).
	Loop bool
	// Offset maps population agent i to trace agent Offset+i, letting
	// several populations replay disjoint slices of one recording (the
	// predator engine gives preys the slice after the predators').
	Offset int
}

// Name implements Model.
func (TraceReplay) Name() string { return "trace" }

// UniformStationary implements Model: a replay has whatever occupancy its
// recording had, so no uniformity is promised.
func (TraceReplay) UniformStationary() bool { return false }

// Bind implements Model.
func (m TraceReplay) Bind(g *grid.Grid, k int, src *rng.Source) (State, error) {
	if err := bindCheck(m.Name(), g, k, src); err != nil {
		return nil, err
	}
	if m.Trace == nil {
		return nil, fmt.Errorf("mobility: trace: nil trace")
	}
	if m.Trace.Side() != g.Side() {
		return nil, fmt.Errorf("mobility: trace: recorded on side %d, population grid has side %d",
			m.Trace.Side(), g.Side())
	}
	if m.Offset < 0 {
		return nil, fmt.Errorf("mobility: trace: negative offset %d", m.Offset)
	}
	if m.Trace.K() < m.Offset+k {
		return nil, fmt.Errorf("mobility: trace: records %d agents, population needs %d (offset %d + %d)",
			m.Trace.K(), m.Offset+k, m.Offset, k)
	}
	return &traceState{g: g, t: m.Trace, loop: m.Loop, off: m.Offset, at: make([]int, k)}, nil
}

type traceState struct {
	g    *grid.Grid
	t    *trace.Trace
	loop bool
	off  int
	at   []int // per-agent trace clock
}

func (s *traceState) Place(pos []grid.Point) {
	for i := range pos {
		pos[i] = s.t.Start(s.off + i)
	}
}

func (s *traceState) Step(pos []grid.Point) { stepAll(s, pos) }

// StepMoved implements MovedStepper: truncated agents are frozen at their
// final recorded position and recorded stay-moves hold their node, so the
// generic compare loop reports real motion only. A loop-wrap teleport back
// to the recorded start is reported as one (typically long) move.
func (s *traceState) StepMoved(pos []grid.Point, moved []int32) []int32 {
	return stepAllMoved(s, pos, moved)
}

func (s *traceState) StepAgent(pos []grid.Point, i int) {
	c := s.at[i]
	if c < s.t.Steps() {
		// Clamp guards against positions that were overridden after Place
		// (core.Config.Placement): recorded moves are valid from their
		// recorded positions, but an overridden agent could otherwise be
		// walked off the grid.
		pos[i] = s.g.Clamp(s.t.MoveAt(c, s.off+i).Apply(pos[i]))
		s.at[i] = c + 1
		return
	}
	if s.loop {
		pos[i] = s.t.Start(s.off + i)
		s.at[i] = 0
	}
}
