// The external test package breaks what would otherwise be an import
// cycle: these tests drive agent.Population, and agent depends on mobility.
package mobility_test

import (
	"testing"

	"mobilenet/internal/agent"
	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/rng"
	"mobilenet/internal/stats"
	"mobilenet/internal/trace"
	"mobilenet/internal/walk"
)

// recordLazyTrace records a lazy-walk population for the given number of
// steps, for use as TraceReplay input.
func recordLazyTrace(t testing.TB, side, k, steps int, seed uint64) *trace.Trace {
	t.Helper()
	g := grid.MustNew(side)
	pop, err := agent.New(g, k, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(side, pop.Positions())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		pop.Step()
		if err := rec.Record(pop.Positions()); err != nil {
			t.Fatal(err)
		}
	}
	return rec.Trace()
}

// allModels returns every shipped model, parameterised for a grid of the
// given side, paired with nothing else — the shared property tests iterate
// over this list so a future model cannot dodge them.
func allModels(t testing.TB, side int) []mobility.Model {
	return []mobility.Model{
		mobility.LazyWalk{},
		mobility.RandomWaypoint{Pause: 1},
		mobility.LevyFlight{},
		mobility.Ballistic{},
		mobility.TraceReplay{Trace: recordLazyTrace(t, side, 64, 300, 99), Loop: true},
	}
}

// TestModelsStayOnGrid is the shared sanity invariant: every model keeps
// every agent on the grid at every step, under both the bulk Step and the
// per-agent StepAgent paths.
func TestModelsStayOnGrid(t *testing.T) {
	t.Parallel()
	const side = 12
	g := grid.MustNew(side)
	for _, m := range allModels(t, side) {
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			st, err := m.Bind(g, 40, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			pos := make([]grid.Point, 40)
			st.Place(pos)
			for step := 0; step < 400; step++ {
				if step%2 == 0 {
					st.Step(pos)
				} else {
					for i := range pos {
						st.StepAgent(pos, i)
					}
				}
				for i, p := range pos {
					if !g.Contains(p) {
						t.Fatalf("step %d: agent %d off-grid at %v", step, i, p)
					}
				}
			}
		})
	}
}

// TestUniformOccupancy is the shared E16-style stationarity property: every
// model that claims UniformStationary must keep a large uniformly placed
// population chi-square-indistinguishable from uniform at several
// checkpoints. Each checkpoint snapshot is across independent agents, so
// the chi-square independence assumption holds.
func TestUniformOccupancy(t *testing.T) {
	t.Parallel()
	const side = 12
	g := grid.MustNew(side)
	for _, m := range allModels(t, side) {
		if !m.UniformStationary() {
			continue
		}
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			k := 8 * g.N()
			st, err := m.Bind(g, k, rng.New(2024))
			if err != nil {
				t.Fatal(err)
			}
			pos := make([]grid.Point, k)
			st.Place(pos)
			now := 0
			for _, checkpoint := range []int{0, 50, 250} {
				for ; now < checkpoint; now++ {
					st.Step(pos)
				}
				counts := make([]int, g.N())
				for _, p := range pos {
					counts[g.ID(p)]++
				}
				stat, rejected, err := stats.ChiSquareUniform(counts, 0.001)
				if err != nil {
					t.Fatal(err)
				}
				if rejected {
					t.Errorf("t=%d: occupancy not uniform (chi2=%.1f)", checkpoint, stat)
				}
			}
		})
	}
}

// TestWaypointIsDeclaredNonUniform pins the classical waypoint density
// pathology: the model must not claim the uniform-stationarity property.
func TestWaypointIsDeclaredNonUniform(t *testing.T) {
	t.Parallel()
	if (mobility.RandomWaypoint{}).UniformStationary() {
		t.Fatal("waypoint claims uniform stationarity; its occupancy is centre-biased")
	}
	if (mobility.TraceReplay{}).UniformStationary() {
		t.Fatal("trace replay cannot promise uniform occupancy")
	}
}

// TestLazyWalkMatchesHistoricalKernel pins the bit-for-bit guarantee the
// subsystem was built around: a population under the default model consumes
// randomness exactly like the historical hardcoded placement + walk.Step
// loop, so equal seeds yield equal trajectories.
func TestLazyWalkMatchesHistoricalKernel(t *testing.T) {
	t.Parallel()
	const side, k, steps = 16, 12, 300
	g := grid.MustNew(side)

	pop, err := agent.NewWithModel(g, k, rng.New(41), mobility.LazyWalk{})
	if err != nil {
		t.Fatal(err)
	}

	// The seed implementation, replicated inline.
	src := rng.New(41)
	ref := make([]grid.Point, k)
	for i := range ref {
		ref[i] = grid.Point{X: int32(src.Intn(side)), Y: int32(src.Intn(side))}
	}
	for s := 0; s <= steps; s++ {
		for i := range ref {
			if pop.Position(i) != ref[i] {
				t.Fatalf("t=%d agent %d: %v != historical %v", s, i, pop.Position(i), ref[i])
			}
		}
		pop.Step()
		for i := range ref {
			ref[i] = walk.Step(g, ref[i], src)
		}
	}
}

// TestTraceReplayReproducesInputExactly is the TraceReplay half of the
// shared property test: replaying a recorded population must reproduce the
// recorded trajectory position-for-position, and looping must restart at
// the recorded origins.
func TestTraceReplayReproducesInputExactly(t *testing.T) {
	t.Parallel()
	const side, k, steps = 10, 6, 120
	g := grid.MustNew(side)

	// Record a reference run and keep its full history.
	pop, err := agent.New(g, k, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(side, pop.Positions())
	if err != nil {
		t.Fatal(err)
	}
	history := [][]grid.Point{clonePos(pop.Positions())}
	for s := 0; s < steps; s++ {
		pop.Step()
		if err := rec.Record(pop.Positions()); err != nil {
			t.Fatal(err)
		}
		history = append(history, clonePos(pop.Positions()))
	}
	tr := rec.Trace()

	// Replay through a population; the rng seed must be irrelevant.
	replay, err := agent.NewWithModel(g, k, rng.New(777), mobility.TraceReplay{Trace: tr, Loop: true})
	if err != nil {
		t.Fatal(err)
	}
	for lap := 0; lap < 2; lap++ {
		for s := 0; s <= steps; s++ {
			for i := range history[s] {
				if got := replay.Position(i); got != history[s][i] {
					t.Fatalf("lap %d t=%d agent %d: %v != recorded %v", lap, s, i, got, history[s][i])
				}
			}
			replay.Step()
		}
	}

	// Truncating replay freezes at the final recorded positions.
	frozen, err := agent.NewWithModel(g, k, rng.New(777), mobility.TraceReplay{Trace: tr, Loop: false})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps+40; s++ {
		frozen.Step()
	}
	for i := range history[steps] {
		if got := frozen.Position(i); got != history[steps][i] {
			t.Fatalf("truncated replay moved past the end: agent %d at %v, want %v", i, got, history[steps][i])
		}
	}
}

// TestTraceReplayOffset checks that an offset replay follows the trace's
// later agents: two populations replaying disjoint slices of one recording
// reproduce the recording's agents 0..1 and 2..3 respectively.
func TestTraceReplayOffset(t *testing.T) {
	t.Parallel()
	const side, steps = 10, 60
	g := grid.MustNew(side)
	tr := recordLazyTrace(t, side, 4, steps, 21)

	full, err := agent.NewWithModel(g, 4, rng.New(1), mobility.TraceReplay{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	head, err := agent.NewWithModel(g, 2, rng.New(1), mobility.TraceReplay{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	tail, err := agent.NewWithModel(g, 2, rng.New(1), mobility.TraceReplay{Trace: tr, Offset: 2})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s <= steps; s++ {
		for i := 0; i < 2; i++ {
			if head.Position(i) != full.Position(i) {
				t.Fatalf("t=%d: head agent %d at %v, full replay has %v", s, i, head.Position(i), full.Position(i))
			}
			if tail.Position(i) != full.Position(2+i) {
				t.Fatalf("t=%d: offset agent %d at %v, full replay agent %d has %v",
					s, i, tail.Position(i), 2+i, full.Position(2+i))
			}
		}
		full.Step()
		head.Step()
		tail.Step()
	}
}

func TestBindValidation(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	src := rng.New(1)
	cases := []struct {
		name string
		m    mobility.Model
	}{
		{"waypoint negative pause", mobility.RandomWaypoint{Pause: -1}},
		{"levy negative alpha", mobility.LevyFlight{Alpha: -2}},
		{"levy zero max", mobility.LevyFlight{MaxJump: -1}},
		{"ballistic turn > 1", mobility.Ballistic{TurnProb: 1.5}},
		{"trace nil", mobility.TraceReplay{}},
		{"trace wrong side", mobility.TraceReplay{Trace: recordLazyTrace(t, 6, 4, 5, 1)}},
		{"trace negative offset", mobility.TraceReplay{Trace: recordLazyTrace(t, 8, 4, 5, 1), Offset: -1}},
		{"trace offset overruns", mobility.TraceReplay{Trace: recordLazyTrace(t, 8, 4, 5, 1), Offset: 1}},
	}
	for _, c := range cases {
		if _, err := c.m.Bind(g, 4, src); err == nil {
			t.Errorf("%s: Bind accepted", c.name)
		}
	}
	if _, err := (mobility.TraceReplay{Trace: recordLazyTrace(t, 8, 4, 5, 1)}).Bind(g, 6, src); err == nil {
		t.Error("trace with too few agents accepted")
	}
	for _, m := range allModels(t, 8) {
		if _, err := m.Bind(nil, 4, src); err == nil {
			t.Errorf("%s: nil grid accepted", m.Name())
		}
		if _, err := m.Bind(g, 0, src); err == nil {
			t.Errorf("%s: k=0 accepted", m.Name())
		}
		if _, err := m.Bind(g, 4, nil); err == nil {
			t.Errorf("%s: nil source accepted", m.Name())
		}
	}
}

func TestParse(t *testing.T) {
	t.Parallel()
	good := map[string]mobility.Model{
		"lazy":                 mobility.LazyWalk{},
		"lazywalk":             mobility.LazyWalk{},
		"waypoint":             mobility.RandomWaypoint{},
		"waypoint:pause=3":     mobility.RandomWaypoint{Pause: 3},
		"levy":                 mobility.LevyFlight{},
		"levy:alpha=2.5":       mobility.LevyFlight{Alpha: 2.5},
		"levy:alpha=1.2,max=9": mobility.LevyFlight{Alpha: 1.2, MaxJump: 9},
		"ballistic":            mobility.Ballistic{},
		"ballistic:turn=0.25":  mobility.Ballistic{TurnProb: 0.25},
	}
	for spec, want := range good {
		m, err := mobility.Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if m != want {
			t.Errorf("Parse(%q) = %#v, want %#v", spec, m, want)
		}
	}
	bad := []string{
		"teleport", "lazy:fast=1", "waypoint:pause=x", "levy:alpha",
		"levy:speed=3", "trace:", "trace:/definitely/missing.mtr",
		"ballistic:turn=a",
	}
	for _, spec := range bad {
		if _, err := mobility.Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func clonePos(pos []grid.Point) []grid.Point {
	out := make([]grid.Point, len(pos))
	copy(out, pos)
	return out
}

// TestStepMovedMatchesStep is the shared MovedStepper contract test: for
// every model whose state implements the interface, StepMoved must produce
// trajectories bit-identical to Step under equal seeds and report exactly
// the agents whose position changed, in ascending index order.
func TestStepMovedMatchesStep(t *testing.T) {
	t.Parallel()
	const side, k, steps = 12, 48, 200
	g := grid.MustNew(side)
	for _, m := range allModels(t, side) {
		t.Run(m.Name(), func(t *testing.T) {
			plainState, err := m.Bind(g, k, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			movedState, err := m.Bind(g, k, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			ms, ok := movedState.(mobility.MovedStepper)
			if !ok {
				t.Skipf("%s does not implement MovedStepper", m.Name())
			}
			plain := make([]grid.Point, k)
			reporting := make([]grid.Point, k)
			plainState.Place(plain)
			movedState.Place(reporting)
			prev := make([]grid.Point, k)
			moved := make([]int32, 0, k)
			for s := 0; s < steps; s++ {
				copy(prev, reporting)
				plainState.Step(plain)
				moved = ms.StepMoved(reporting, moved[:0])
				j := 0
				for i := range reporting {
					if plain[i] != reporting[i] {
						t.Fatalf("t=%d agent %d: StepMoved %v != Step %v", s, i, reporting[i], plain[i])
					}
					reported := j < len(moved) && moved[j] == int32(i)
					if reported {
						j++
					}
					if actually := reporting[i] != prev[i]; actually != reported {
						t.Fatalf("t=%d agent %d: moved=%v reported=%v", s, i, actually, reported)
					}
				}
				if j != len(moved) {
					t.Fatalf("t=%d: moved report not ascending: %v", s, moved)
				}
			}
		})
	}
}

// TestPopulationStepMoved pins the population-level wrapper: a lazy-walk
// population reports moves (ok true) with trajectories identical to Step,
// and a model without the interface still steps identically with ok false.
func TestPopulationStepMoved(t *testing.T) {
	t.Parallel()
	const side, k, steps = 16, 32, 100
	g := grid.MustNew(side)
	for _, m := range []mobility.Model{mobility.LazyWalk{}, mobility.LevyFlight{}} {
		plain, err := agent.NewWithModel(g, k, rng.New(11), m)
		if err != nil {
			t.Fatal(err)
		}
		reporting, err := agent.NewWithModel(g, k, rng.New(11), m)
		if err != nil {
			t.Fatal(err)
		}
		var moved []int32
		var sawOK bool
		for s := 0; s < steps; s++ {
			plain.Step()
			var ok bool
			moved, ok = reporting.StepMoved(moved[:0])
			sawOK = ok
			for i := 0; i < k; i++ {
				if plain.Position(i) != reporting.Position(i) {
					t.Fatalf("%s t=%d agent %d: StepMoved diverged from Step", m.Name(), s, i)
				}
			}
		}
		if reporting.Time() != steps {
			t.Fatalf("%s: StepMoved advanced time to %d, want %d", m.Name(), reporting.Time(), steps)
		}
		if m.Name() == "lazy" && !sawOK {
			t.Fatalf("lazy walk should report moves")
		}
		if m.Name() == "levy" && sawOK {
			t.Fatalf("levy flight unexpectedly implements MovedStepper; update this pin")
		}
	}
}
