package visibility

// Randomized cross-check of the CSR labeller (sequential and parallel)
// against the O(k²) brute force, over position streams produced by every
// shipped mobility model. Uniform placement alone would under-exercise the
// index: waypoint runs develop centre-biased clusters, Lévy flights leave
// large empty spans (stressing the bucket-grid bounding box), ballistic
// motion produces straight-line chains — each a different occupancy profile
// for the counting sort and the strip partition. The assertion is identical
// label slices, not mere partition equality: every implementation assigns
// labels by first appearance in agent-index order, so any divergence —
// including a nondeterministic parallel merge — fails loudly.

import (
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/rng"
	"mobilenet/internal/trace"
)

// crossCheckRadii are the paper-relevant radii: r=0 co-location, small radii
// around the sparse percolation regime, and r=17 where components get large.
var crossCheckRadii = []int{0, 1, 2, 5, 17}

// recordModelTrace records a short lazy-walk run for TraceReplay input,
// driving the model state directly so this package needs no agent import.
func recordModelTrace(t *testing.T, g *grid.Grid, k, steps int, seed uint64) *trace.Trace {
	t.Helper()
	st, err := mobility.LazyWalk{}.Bind(g, k, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]grid.Point, k)
	st.Place(pos)
	rec, err := trace.NewRecorder(g.Side(), pos)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		st.Step(pos)
		if err := rec.Record(pos); err != nil {
			t.Fatal(err)
		}
	}
	return rec.Trace()
}

func TestCrossCheckLabellersAcrossMobilityModels(t *testing.T) {
	t.Parallel()
	const side, k, steps = 48, 150, 24
	g := grid.MustNew(side)
	models := []mobility.Model{
		mobility.LazyWalk{},
		mobility.RandomWaypoint{Pause: 1},
		mobility.LevyFlight{},
		mobility.Ballistic{},
		mobility.TraceReplay{Trace: recordModelTrace(t, g, k, steps+4, 1789), Loop: true},
	}
	for _, m := range models {
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			st, err := m.Bind(g, k, rng.New(4242))
			if err != nil {
				t.Fatal(err)
			}
			pos := make([]grid.Point, k)
			st.Place(pos)

			seq := NewLabeller(k)
			seq.SetParallelism(1)
			par := NewLabeller(k)
			par.SetParallelism(3)

			for s := 0; s <= steps; s++ {
				if s > 0 {
					st.Step(pos)
				}
				for _, r := range crossCheckRadii {
					want, wantCount := bruteComponents(pos, r)
					sl, sc := seq.Components(pos, r)
					slCopy := append([]int32(nil), sl...)
					pl, pc := par.Components(pos, r)
					if sc != wantCount || pc != wantCount {
						t.Fatalf("t=%d r=%d: counts seq=%d par=%d, brute %d", s, r, sc, pc, wantCount)
					}
					for i := range want {
						if int(slCopy[i]) != want[i] || int(pl[i]) != want[i] {
							t.Fatalf("t=%d r=%d agent %d: labels seq=%d par=%d, brute %d",
								s, r, i, slCopy[i], pl[i], want[i])
						}
					}
				}
			}
		})
	}
}
