// Package visibility computes the dynamic communication graph G_t(r) of the
// paper: vertices are agents, and an edge joins two agents whose Manhattan
// distance is at most the transmission radius r. The simulator rebuilds the
// connected components of this graph at every time step, so the labeller is
// the per-step hot path of every engine. It is built around a flat CSR
// (compressed sparse row) bucket index — agent indices counting-sorted by
// coarse cell into one reusable slice with an offset array — plus
// union-find, and performs no steady-state allocation and no map
// operations.
//
// For large populations the union phase can additionally run in parallel:
// the bucket grid is strip-partitioned across workers, each worker unions
// its strip into a private disjoint-set forest while recording the spanning
// edges it finds, and the recorded edges are then merged sequentially into
// the master forest. The final dense label pass is always sequential and
// assigns labels by first appearance in agent-index order, a function of the
// partition alone — so the parallel path returns labels bit-for-bit
// identical to the sequential one. See Labeller.SetParallelism.
//
// The same machinery computes the paper's "islands" (Definition 2): the
// components of G_t(gamma) for the island parameter gamma of Lemma 6.
package visibility

import (
	"math"
	"runtime"
	"sync"

	"mobilenet/internal/grid"
	"mobilenet/internal/prof"
	"mobilenet/internal/unionfind"
)

// autoParallelK is the population size above which a Labeller with
// automatic parallelism (the default) fans the union phase across
// GOMAXPROCS workers. Below it the fixed per-call cost of spawning workers
// and resetting per-shard forests outweighs the union work.
const autoParallelK = 1 << 15

// maxShards caps the worker count: each shard owns a k-element disjoint-set
// forest, so the cap bounds the parallel path's memory at maxShards
// forests regardless of GOMAXPROCS.
const maxShards = 16

// Labeller computes connected-component labels for agent position sets.
// A zero Labeller is not usable; construct with NewLabeller. A Labeller is
// reusable across steps but not safe for concurrent use (the parallel path
// manages its own internal workers).
type Labeller struct {
	dsu *unionfind.DSU

	// CSR bucket index, rebuilt by buildIndex every call. order holds the
	// agent indices counting-sorted by cell; starts[c]..starts[c+1] is the
	// half-open range of cell c in order. cellOf is the per-agent cell id
	// scratch used by the counting sort.
	order  []int32
	starts []int32
	cellOf []int32

	// Geometry of the current index (valid between buildIndex and the end
	// of Components): cells of side cell, bucket grid gridW x gridH, cell
	// (0,0) anchored at (minX, minY).
	cell       int64
	gridW      int
	gridH      int
	minX, minY int32

	labels    []int32
	rootLabel []int32

	// par is the requested parallelism: 0 selects the automatic policy
	// (parallel above autoParallelK), 1 forces sequential, p > 1 requests
	// up to p workers.
	par int

	// prof, when non-nil, receives the index/label phase laps from
	// Components; laps are recorded on the calling goroutine even when the
	// union phase fans out. See SetProfile.
	prof *prof.StepProfile

	// shards holds per-worker union scratch for the parallel path,
	// allocated lazily on first parallel call.
	shards []shard
}

// shard is one parallel worker's private state: a disjoint-set forest over
// the full agent universe and the spanning edges discovered in its strip.
type shard struct {
	dsu   *unionfind.DSU
	edges []int32 // flat (a, b) pairs; every pair merged two components
}

// NewLabeller returns a labeller sized for populations of k agents. It
// transparently regrows if later called with more agents.
func NewLabeller(k int) *Labeller {
	return &Labeller{
		dsu:       unionfind.New(k),
		order:     make([]int32, k),
		cellOf:    make([]int32, k),
		labels:    make([]int32, k),
		rootLabel: make([]int32, k),
	}
}

// SetParallelism configures the union phase's worker count. p == 0 restores
// the automatic default: sequential below autoParallelK agents, GOMAXPROCS
// workers (capped at an internal shard limit) above. p == 1 forces the
// sequential path. p > 1 requests up to p workers regardless of population
// size — useful for tests and for callers that know their density profile.
// Negative values are treated as 0. Parallelism never changes results: the
// returned labels are bit-for-bit identical either way.
func (l *Labeller) SetParallelism(p int) {
	if p < 0 {
		p = 0
	}
	l.par = p
}

// SetProfile attaches a step-phase profiler: each Components call laps the
// CSR index build into prof.Index and the union plus dense label pass into
// prof.Label. A nil profile (the default) disables phase timing; the lap
// calls then compile to a branch, preserving the labeller's zero-allocation
// steady state. The caller is responsible for marking the profile before
// Components so the index lap starts from the right instant.
func (l *Labeller) SetProfile(p *prof.StepProfile) {
	l.prof = p
}

// workers resolves the worker count for a population of k agents on a
// bucket grid with rows cell rows.
func (l *Labeller) workers(k, rows int) int {
	p := l.par
	if p == 0 {
		if k < autoParallelK {
			return 1
		}
		p = runtime.GOMAXPROCS(0)
	}
	if p > maxShards {
		p = maxShards
	}
	if p > rows {
		p = rows
	}
	if p < 1 {
		p = 1
	}
	return p
}

func (l *Labeller) ensure(k int) {
	if l.dsu.Len() < k {
		l.dsu = unionfind.New(k)
		l.order = make([]int32, k)
		l.cellOf = make([]int32, k)
		l.labels = make([]int32, k)
		l.rootLabel = make([]int32, k)
		for i := range l.shards {
			l.shards[i].dsu = unionfind.New(k)
		}
	}
}

// buildIndex counting-sorts the agents into the CSR bucket index for cells
// of side max(r, 1). When the bounding box of the positions would need more
// cells than a small multiple of k, the cell side is doubled until the grid
// fits: cells only ever grow past r, which preserves the invariant that two
// agents within distance r differ by at most one cell per axis, and keeps
// the offset array — and hence the per-call clearing cost — O(k).
func (l *Labeller) buildIndex(pos []grid.Point, r int) {
	k := len(pos)

	minX, minY := pos[0].X, pos[0].Y
	maxX, maxY := minX, minY
	for _, p := range pos[1:] {
		if p.X < minX {
			minX = p.X
		} else if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		} else if p.Y > maxY {
			maxY = p.Y
		}
	}

	cell := int64(r)
	if cell < 1 {
		cell = 1
	}
	// The cap keeps every per-call O(numCells) pass — clearing, the prefix
	// sum, the bucket scan — proportional to the population, so tiny
	// populations on large arenas are not taxed by their bounding box.
	maxCells := 4 * k
	if maxCells < 64 {
		maxCells = 64
	}
	spanX := int64(maxX) - int64(minX)
	spanY := int64(maxY) - int64(minY)
	w := int(spanX/cell) + 1
	h := int(spanY/cell) + 1
	for w > maxCells || h > maxCells || w*h > maxCells {
		cell *= 2
		w = int(spanX/cell) + 1
		h = int(spanY/cell) + 1
	}
	l.cell, l.gridW, l.gridH, l.minX, l.minY = cell, w, h, minX, minY

	numCells := w * h
	if cap(l.starts) < numCells+1 {
		l.starts = make([]int32, numCells+1)
	}
	starts := l.starts[:numCells+1]
	clear(starts)

	// Counting sort: count per cell (offset by one), prefix-sum into
	// starts, scatter in ascending agent order so each bucket lists its
	// members ascending — the deterministic order the union scans rely on.
	cellOf := l.cellOf[:k]
	if cell == 1 {
		for i, p := range pos {
			c := int32(p.Y-minY)*int32(w) + int32(p.X-minX)
			cellOf[i] = c
			starts[c+1]++
		}
	} else {
		for i, p := range pos {
			cx := (int64(p.X) - int64(minX)) / cell
			cy := (int64(p.Y) - int64(minY)) / cell
			c := int32(cy)*int32(w) + int32(cx)
			cellOf[i] = c
			starts[c+1]++
		}
	}
	for c := 1; c < numCells; c++ {
		starts[c+1] += starts[c]
	}
	order := l.order[:k]
	for i := int32(0); i < int32(k); i++ {
		c := cellOf[i]
		order[starts[c]] = i
		starts[c]++
	}
	// The scatter advanced starts[c] to the end of cell c; shift back one
	// cell to restore the canonical CSR convention starts[c] = begin(c).
	copy(starts[1:], starts[:numCells])
	starts[0] = 0
}

// scanStrip unions every candidate pair owned by bucket rows [rowLo, rowHi)
// into d. A pair is owned by the cell of its lower row (ties broken by the
// leftmost cell): within-cell pairs plus the four forward neighbour cells
// (+1,0), (0,+1), (+1,+1), (-1,+1) cover every candidate pair exactly once,
// because cells have side >= max(r, 1) so two agents within distance r
// differ by at most one cell per axis.
//
// When rec is non-nil, every successful union is appended to it as a flat
// (a, b) pair and the extended slice is returned: the recorded pairs form a
// spanning forest of the strip's union graph, so replaying them into
// another forest reproduces exactly the strip's merges.
func (l *Labeller) scanStrip(d *unionfind.DSU, pos []grid.Point, r, rowLo, rowHi int, rec []int32) []int32 {
	starts, order := l.starts, l.order
	w := l.gridW

	if r == 0 {
		// Components are exactly the co-located groups, and co-located
		// agents always share a cell (whatever the cell side), so only
		// within-cell pairs matter. With unit cells a bucket holds one
		// location; with coarsened cells membership needs an equality
		// check against the group anchors found so far.
		unit := l.cell == 1
		for c := rowLo * w; c < rowHi*w; c++ {
			lo, hi := int(starts[c]), int(starts[c+1])
			if hi-lo < 2 {
				continue
			}
			b := order[lo:hi]
			if unit {
				for i := 1; i < len(b); i++ {
					if d.Union(int(b[0]), int(b[i])) && rec != nil {
						rec = append(rec, b[0], b[i])
					}
				}
				continue
			}
			for i := 0; i < len(b); i++ {
				pi := pos[b[i]]
				for j := i + 1; j < len(b); j++ {
					if pos[b[j]] == pi {
						if d.Union(int(b[i]), int(b[j])) && rec != nil {
							rec = append(rec, b[i], b[j])
						}
					}
				}
			}
		}
		return rec
	}

	h := l.gridH
	for cy := rowLo; cy < rowHi; cy++ {
		rowBase := cy * w
		for cx := 0; cx < w; cx++ {
			c := rowBase + cx
			lo, hi := int(starts[c]), int(starts[c+1])
			if lo == hi {
				continue
			}
			b := order[lo:hi]
			for i := 0; i < len(b); i++ {
				pi := pos[b[i]]
				for j := i + 1; j < len(b); j++ {
					if grid.ManhattanPoints(pi, pos[b[j]]) <= r {
						if d.Union(int(b[i]), int(b[j])) && rec != nil {
							rec = append(rec, b[i], b[j])
						}
					}
				}
			}
			// Forward neighbours, with bucket-grid bounds checks.
			if cx+1 < w {
				rec = l.scanPair(d, pos, r, b, c+1, rec)
			}
			if cy+1 < h {
				n := c + w
				rec = l.scanPair(d, pos, r, b, n, rec)
				if cx+1 < w {
					rec = l.scanPair(d, pos, r, b, n+1, rec)
				}
				if cx > 0 {
					rec = l.scanPair(d, pos, r, b, n-1, rec)
				}
			}
		}
	}
	return rec
}

// scanPair unions the cross pairs between bucket b and the agents of cell n
// that are within distance r, recording successful unions when rec != nil.
func (l *Labeller) scanPair(d *unionfind.DSU, pos []grid.Point, r int, b []int32, n int, rec []int32) []int32 {
	lo, hi := int(l.starts[n]), int(l.starts[n+1])
	if lo == hi {
		return rec
	}
	nb := l.order[lo:hi]
	for _, ai := range b {
		pi := pos[ai]
		for _, aj := range nb {
			if grid.ManhattanPoints(pi, pos[aj]) <= r {
				if d.Union(int(ai), int(aj)) && rec != nil {
					rec = append(rec, ai, aj)
				}
			}
		}
	}
	return rec
}

// unionParallel runs the union phase across nw workers: bucket rows are
// split into nw contiguous strips balanced by agent count, each worker
// unions its strip into a private forest (reading neighbouring rows is safe
// — the index is immutable during the scan), and the per-strip spanning
// edges are then replayed into the master forest in strip order. Any replay
// order yields the same partition, and labels are a function of the
// partition alone, so the result is bit-for-bit identical to sequential.
func (l *Labeller) unionParallel(pos []grid.Point, r, nw int) {
	k := len(pos)
	for len(l.shards) < nw {
		// The edge buffer starts non-nil: scanStrip records into rec only
		// when it is non-nil, and resliced-to-empty buffers must stay
		// recording across reuse.
		l.shards = append(l.shards, shard{
			dsu:   unionfind.New(l.dsu.Len()),
			edges: make([]int32, 0, 64),
		})
	}

	// Strip boundaries by cumulative agent count: row boundary b for worker
	// s is the first row where at least s/nw of the agents lie below it.
	w, h := l.gridW, l.gridH
	bounds := make([]int, nw+1) // small; dwarfed by the per-shard scans
	bounds[nw] = h
	row := 0
	for s := 1; s < nw; s++ {
		target := int32(k * s / nw)
		for row < h && l.starts[row*w] < target {
			row++
		}
		bounds[s] = row
	}

	var wg sync.WaitGroup
	for s := 0; s < nw; s++ {
		rowLo, rowHi := bounds[s], bounds[s+1]
		if rowLo >= rowHi {
			l.shards[s].edges = l.shards[s].edges[:0]
			continue
		}
		wg.Add(1)
		go func(s, rowLo, rowHi int) {
			defer wg.Done()
			sh := &l.shards[s]
			sh.dsu.Reset()
			sh.edges = l.scanStrip(sh.dsu, pos, r, rowLo, rowHi, sh.edges[:0])
		}(s, rowLo, rowHi)
	}
	wg.Wait()

	for s := 0; s < nw; s++ {
		l.dsu.UnionEdges(l.shards[s].edges)
	}
}

// Components labels the connected components of G(r) over the given agent
// positions. It returns a dense label per agent (labels[i] in [0, count))
// and the number of components. Labels are assigned deterministically in
// order of first appearance by agent index, and are identical whether the
// union phase ran sequentially or in parallel.
//
// The returned slice is owned by the Labeller and is valid only until the
// next call; callers that need to retain it must copy.
//
// A negative radius yields all-singleton components.
func (l *Labeller) Components(pos []grid.Point, r int) (labels []int32, count int) {
	k := len(pos)
	l.ensure(k)
	d := l.dsu
	d.Reset()

	if r >= 0 && k > 1 {
		l.buildIndex(pos, r)
		l.prof.Lap(prof.Index)
		if nw := l.workers(k, l.gridH); nw > 1 {
			l.unionParallel(pos, r, nw)
		} else {
			l.scanStrip(d, pos, r, 0, l.gridH, nil)
		}
	}

	// Dense deterministic labels without allocation. The label of an agent
	// depends only on which agents share its component — never on the
	// union order — because first appearance is scanned in index order.
	out := l.labels[:k]
	next := d.DenseLabels(out, l.rootLabel[:k])
	l.prof.Lap(prof.Label)
	return out, next
}

// FloorRadius converts a real-valued radius (such as Lemma 6's island
// parameter gamma) to the equivalent integer Manhattan radius: distances on
// the grid are integers, so d <= gamma iff d <= floor(gamma).
func FloorRadius(gamma float64) int {
	if gamma < 0 || math.IsNaN(gamma) {
		return -1
	}
	return int(math.Floor(gamma))
}

// Sizes computes component sizes from a labelling. It appends to buf (which
// may be nil) and returns one size per label.
func Sizes(labels []int32, count int, buf []int32) []int32 {
	if cap(buf) < count {
		buf = make([]int32, count)
	}
	buf = buf[:count]
	for i := range buf {
		buf[i] = 0
	}
	for _, lb := range labels {
		buf[lb]++
	}
	return buf
}

// MaxSizeScratch returns the size of the largest component in a
// labelling, computing the per-label sizes into buf (grown only when too
// small) and returning the buffer for the caller to reuse — the
// zero-steady-state-allocation variant of MaxSize that per-step observers
// use.
func MaxSizeScratch(labels []int32, count int, buf []int32) (int, []int32) {
	buf = Sizes(labels, count, buf)
	var max int32
	for _, s := range buf {
		if s > max {
			max = s
		}
	}
	return int(max), buf
}

// MaxSize returns the size of the largest component in a labelling, 0 for
// empty input.
func MaxSize(labels []int32, count int) int {
	if count == 0 {
		return 0
	}
	m, _ := MaxSizeScratch(labels, count, nil)
	return m
}
