// Package visibility computes the dynamic communication graph G_t(r) of the
// paper: vertices are agents, and an edge joins two agents whose Manhattan
// distance is at most the transmission radius r. The simulator rebuilds the
// connected components of this graph at every time step, so the labeller is
// built around a reusable spatial hash plus union-find and performs no
// steady-state allocation.
//
// The same machinery computes the paper's "islands" (Definition 2): the
// components of G_t(gamma) for the island parameter gamma of Lemma 6.
package visibility

import (
	"math"

	"mobilenet/internal/grid"
	"mobilenet/internal/unionfind"
)

// Labeller computes connected-component labels for agent position sets.
// A zero Labeller is not usable; construct with NewLabeller. A Labeller is
// reusable across steps but not safe for concurrent use.
type Labeller struct {
	dsu *unionfind.DSU

	// Spatial hash: agent indices bucketed by coarse cell of side max(r, 1).
	// Bucket slices are recycled through pool to avoid per-step allocation.
	buckets map[uint64][]int32
	keys    []uint64 // bucket keys in first-insertion order (deterministic)
	pool    [][]int32

	labels    []int32
	rootLabel []int32
}

// NewLabeller returns a labeller sized for populations of k agents. It
// transparently regrows if later called with more agents.
func NewLabeller(k int) *Labeller {
	return &Labeller{
		dsu:       unionfind.New(k),
		buckets:   make(map[uint64][]int32, k),
		labels:    make([]int32, k),
		rootLabel: make([]int32, k),
	}
}

func (l *Labeller) ensure(k int) {
	if l.dsu.Len() < k {
		l.dsu = unionfind.New(k)
		l.labels = make([]int32, k)
		l.rootLabel = make([]int32, k)
	}
}

func bucketKey(bx, by int32) uint64 {
	return uint64(uint32(bx))<<32 | uint64(uint32(by))
}

// Components labels the connected components of G(r) over the given agent
// positions. It returns a dense label per agent (labels[i] in [0, count))
// and the number of components. Labels are assigned deterministically in
// order of first appearance by agent index.
//
// The returned slice is owned by the Labeller and is valid only until the
// next call; callers that need to retain it must copy.
//
// A negative radius yields all-singleton components.
func (l *Labeller) Components(pos []grid.Point, r int) (labels []int32, count int) {
	k := len(pos)
	l.ensure(k)
	d := l.dsu
	d.Reset()

	if r >= 0 && k > 1 {
		cell := int32(r)
		if cell < 1 {
			cell = 1
		}

		// Recycle buckets from the previous call.
		for key, b := range l.buckets {
			l.pool = append(l.pool, b[:0])
			delete(l.buckets, key)
		}
		l.keys = l.keys[:0]

		// Fill the spatial hash.
		for i := 0; i < k; i++ {
			key := bucketKey(pos[i].X/cell, pos[i].Y/cell)
			b, ok := l.buckets[key]
			if !ok {
				if n := len(l.pool); n > 0 {
					b = l.pool[n-1]
					l.pool = l.pool[:n-1]
				}
				l.keys = append(l.keys, key)
			}
			l.buckets[key] = append(b, int32(i))
		}

		if r == 0 {
			// Fast path: components are exactly the co-located groups.
			for _, key := range l.keys {
				b := l.buckets[key]
				for i := 1; i < len(b); i++ {
					d.Union(int(b[0]), int(b[i]))
				}
			}
		} else {
			// Within-bucket pairs plus four forward neighbour buckets cover
			// every candidate pair exactly once: any two points at Manhattan
			// distance <= r differ by at most one cell per axis.
			forward := [4][2]int32{{1, 0}, {0, 1}, {1, 1}, {-1, 1}}
			for _, key := range l.keys {
				b := l.buckets[key]
				bx := int32(uint32(key >> 32))
				by := int32(uint32(key))
				for i := 0; i < len(b); i++ {
					pi := pos[b[i]]
					for j := i + 1; j < len(b); j++ {
						if grid.ManhattanPoints(pi, pos[b[j]]) <= r {
							d.Union(int(b[i]), int(b[j]))
						}
					}
				}
				for _, off := range forward {
					nb, ok := l.buckets[bucketKey(bx+off[0], by+off[1])]
					if !ok {
						continue
					}
					for _, ai := range b {
						pi := pos[ai]
						for _, aj := range nb {
							if grid.ManhattanPoints(pi, pos[aj]) <= r {
								d.Union(int(ai), int(aj))
							}
						}
					}
				}
			}
		}
	}

	// Dense deterministic labels without allocation.
	rl := l.rootLabel[:k]
	for i := range rl {
		rl[i] = -1
	}
	out := l.labels[:k]
	next := int32(0)
	for i := 0; i < k; i++ {
		root := d.Find(i)
		if rl[root] < 0 {
			rl[root] = next
			next++
		}
		out[i] = rl[root]
	}
	return out, int(next)
}

// FloorRadius converts a real-valued radius (such as Lemma 6's island
// parameter gamma) to the equivalent integer Manhattan radius: distances on
// the grid are integers, so d <= gamma iff d <= floor(gamma).
func FloorRadius(gamma float64) int {
	if gamma < 0 || math.IsNaN(gamma) {
		return -1
	}
	return int(math.Floor(gamma))
}

// Sizes computes component sizes from a labelling. It appends to buf (which
// may be nil) and returns one size per label.
func Sizes(labels []int32, count int, buf []int32) []int32 {
	if cap(buf) < count {
		buf = make([]int32, count)
	}
	buf = buf[:count]
	for i := range buf {
		buf[i] = 0
	}
	for _, lb := range labels {
		buf[lb]++
	}
	return buf
}

// MaxSize returns the size of the largest component in a labelling, 0 for
// empty input.
func MaxSize(labels []int32, count int) int {
	if count == 0 {
		return 0
	}
	sizes := make([]int32, count)
	for _, lb := range labels {
		sizes[lb]++
	}
	var max int32
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return int(max)
}
