package visibility

// Ablation benchmarks for the component-labelling design choices called out
// in DESIGN.md. Four generations of the labeller are compared: the O(k²)
// all-pairs brute force, the map-backed spatial hash it was first replaced
// by (retained here verbatim as mapLabeller), the flat CSR bucket index
// that rebuilds from scratch every call, and the incremental labeller that
// maintains the index across steps. Correctness equivalence is established
// by TestAblationBaselinesAgree, the differential harness in
// differential_test.go, and the brute-force comparison tests in
// visibility_test.go; these benchmarks quantify the gaps at sparse-regime
// densities. BENCH_visibility.json records the measured trajectory.

import (
	"fmt"
	"math"
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/unionfind"
	"mobilenet/internal/walk"
)

// bruteLabeller is the all-pairs baseline: check every agent pair.
type bruteLabeller struct {
	dsu    *unionfind.DSU
	labels []int32
}

func newBruteLabeller(k int) *bruteLabeller {
	return &bruteLabeller{dsu: unionfind.New(k), labels: make([]int32, k)}
}

func (b *bruteLabeller) components(pos []grid.Point, r int) ([]int32, int) {
	k := len(pos)
	b.dsu.Reset()
	if r >= 0 {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if grid.ManhattanPoints(pos[i], pos[j]) <= r {
					b.dsu.Union(i, j)
				}
			}
		}
	}
	return b.labels[:k], b.dsu.Labels(b.labels[:k])
}

// mapLabeller is the previous production labeller, frozen for the ablation:
// a map[uint64][]int32 spatial hash with a bucket recycle pool, the design
// the CSR index replaced. Its dense label pass is identical to the current
// one, so its labels — not just its partitions — must match.
type mapLabeller struct {
	dsu       *unionfind.DSU
	buckets   map[uint64][]int32
	keys      []uint64
	pool      [][]int32
	labels    []int32
	rootLabel []int32
}

func newMapLabeller(k int) *mapLabeller {
	return &mapLabeller{
		dsu:       unionfind.New(k),
		buckets:   make(map[uint64][]int32, k),
		labels:    make([]int32, k),
		rootLabel: make([]int32, k),
	}
}

func mapBucketKey(bx, by int32) uint64 {
	return uint64(uint32(bx))<<32 | uint64(uint32(by))
}

func (l *mapLabeller) components(pos []grid.Point, r int) ([]int32, int) {
	k := len(pos)
	d := l.dsu
	d.Reset()

	if r >= 0 && k > 1 {
		cell := int32(r)
		if cell < 1 {
			cell = 1
		}
		for key, b := range l.buckets {
			l.pool = append(l.pool, b[:0])
			delete(l.buckets, key)
		}
		l.keys = l.keys[:0]
		for i := 0; i < k; i++ {
			key := mapBucketKey(pos[i].X/cell, pos[i].Y/cell)
			b, ok := l.buckets[key]
			if !ok {
				if n := len(l.pool); n > 0 {
					b = l.pool[n-1]
					l.pool = l.pool[:n-1]
				}
				l.keys = append(l.keys, key)
			}
			l.buckets[key] = append(b, int32(i))
		}
		if r == 0 {
			for _, key := range l.keys {
				b := l.buckets[key]
				for i := 1; i < len(b); i++ {
					d.Union(int(b[0]), int(b[i]))
				}
			}
		} else {
			forward := [4][2]int32{{1, 0}, {0, 1}, {1, 1}, {-1, 1}}
			for _, key := range l.keys {
				b := l.buckets[key]
				bx := int32(uint32(key >> 32))
				by := int32(uint32(key))
				for i := 0; i < len(b); i++ {
					pi := pos[b[i]]
					for j := i + 1; j < len(b); j++ {
						if grid.ManhattanPoints(pi, pos[b[j]]) <= r {
							d.Union(int(b[i]), int(b[j]))
						}
					}
				}
				for _, off := range forward {
					nb, ok := l.buckets[mapBucketKey(bx+off[0], by+off[1])]
					if !ok {
						continue
					}
					for _, ai := range b {
						pi := pos[ai]
						for _, aj := range nb {
							if grid.ManhattanPoints(pi, pos[aj]) <= r {
								d.Union(int(ai), int(aj))
							}
						}
					}
				}
			}
		}
	}

	rl := l.rootLabel[:k]
	for i := range rl {
		rl[i] = -1
	}
	out := l.labels[:k]
	next := int32(0)
	for i := 0; i < k; i++ {
		root := d.Find(i)
		if rl[root] < 0 {
			rl[root] = next
			next++
		}
		out[i] = rl[root]
	}
	return out, int(next)
}

// benchPositions places k agents uniformly on a side x side box, the
// sparse-regime density all ablation points share (k/n = 1/64, the regime
// where T_B = Θ̃(n/√k) is the binding bound).
func benchPositions(k, side int) []grid.Point {
	src := rng.New(99)
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(side)), Y: int32(src.Intn(side))}
	}
	return pos
}

// benchSide keeps the density fixed as k scales: side = 8√k gives
// n = 64k nodes, matching the historical k=1024/side=256 ablation point.
func benchSide(k int) int {
	return int(8 * math.Sqrt(float64(k)))
}

const benchRadius = 8

// BenchmarkComponents is the labeller ablation grid: implementation x
// population size at fixed sparse density. "maphash" is the retired
// map-backed spatial hash, "csr" the flat CSR index (sequential), "csrpar"
// the CSR index with the parallel union phase forced to 4 workers (on a
// single-core host it measures shard overhead; on multicore hardware,
// speedup).
func BenchmarkComponents(b *testing.B) {
	for _, k := range []int{1000, 10000, 100000, 1000000} {
		pos := benchPositions(k, benchSide(k))

		b.Run(fmt.Sprintf("impl=maphash/k=%d", k), func(b *testing.B) {
			l := newMapLabeller(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.components(pos, benchRadius)
			}
		})
		b.Run(fmt.Sprintf("impl=csr/k=%d", k), func(b *testing.B) {
			l := NewLabeller(k)
			l.SetParallelism(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Components(pos, benchRadius)
			}
		})
		b.Run(fmt.Sprintf("impl=csrpar/k=%d", k), func(b *testing.B) {
			l := NewLabeller(k)
			l.SetParallelism(4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Components(pos, benchRadius)
			}
		})
	}
}

// BenchmarkComponentsStepped is the incremental-kernel ablation: each op
// advances every agent one lazy-walk step and then relabels — the exact
// shape of an engine step loop. The rebuild generations (maphash, csr) pay
// their full per-call cost no matter how little moved; the incremental
// labeller (inc sequential, incpar with the recheck fanned to 4 workers)
// pays only for dirty cells plus the frontier recheck of the cached pair
// set. The gap here — not the static BenchmarkComponents figures, which an
// incremental labeller would short-circuit through its clean-labels path —
// is the design's operating speedup. Every row includes the walk.StepAll
// cost, so the inc rows understate the pure relabel gain.
//
// Two radii are swept: r=1 is the operating regime of the standing phase
// baseline (BENCH_phases.json runs broadcast at r=1), where the pair cache
// is small and most steps flip nothing; r=benchRadius (8) is the saturated
// worst case where ~every cached pair has a moved endpoint every step and
// the pass set is rebuilt wholesale.
func BenchmarkComponentsStepped(b *testing.B) {
	for _, k := range []int{1000, 10000, 100000, 1000000} {
		side := benchSide(k)
		g := grid.MustNew(side)
		impls := []struct {
			name string
			mk   func(r int) (func(pos []grid.Point), *Incremental)
		}{
			// steponly times walk.StepAll with no relabel at all: the
			// motion floor every other row includes. Subtracting it from a
			// labelled row gives that labeller's net per-step cost, which
			// is what the ≥2x acceptance ratio against the static csr
			// record is computed from (see BENCH_visibility.json notes).
			{"steponly", func(r int) (func([]grid.Point), *Incremental) {
				return func(pos []grid.Point) {}, nil
			}},
			{"maphash", func(r int) (func([]grid.Point), *Incremental) {
				l := newMapLabeller(k)
				return func(pos []grid.Point) { l.components(pos, r) }, nil
			}},
			{"csr", func(r int) (func([]grid.Point), *Incremental) {
				l := NewLabeller(k)
				l.SetParallelism(1)
				return func(pos []grid.Point) { l.Components(pos, r) }, nil
			}},
			{"inc", func(r int) (func([]grid.Point), *Incremental) {
				l := NewIncremental(k)
				l.SetParallelism(1)
				return func(pos []grid.Point) { l.Components(pos, r) }, l
			}},
			{"incpar", func(r int) (func([]grid.Point), *Incremental) {
				l := NewIncremental(k)
				l.SetParallelism(4)
				return func(pos []grid.Point) { l.Components(pos, r) }, l
			}},
		}
		for _, r := range []int{1, benchRadius} {
			for _, im := range impls {
				b.Run(fmt.Sprintf("impl=%s/k=%d/r=%d", im.name, k, r), func(b *testing.B) {
					pos := benchPositions(k, side)
					buf := make([]uint64, 0, k)
					src := rng.New(2024)
					relabel, probe := im.mk(r)
					// Warm-up establishes the incremental pair cache's
					// high-water mark so steady state is what gets timed.
					for w := 0; w < 8; w++ {
						walk.StepAll(g, pos, buf, src)
						relabel(pos)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						walk.StepAll(g, pos, buf, src)
						relabel(pos)
					}
					if probe != nil {
						// Frontier occupancy of the final timed step: the
						// fraction of agents that moved and of cached pairs
						// with a moved endpoint. These are the figures the
						// DESIGN.md §14 "no pair-walk index" decision rests
						// on — the lazy walk moves half the agents per step,
						// so ~3/4 of cached pairs are on the frontier and a
						// moved-pair index could skip only the last quarter.
						b.ReportMetric(float64(len(probe.movedList))/float64(k), "moved-frac")
						b.ReportMetric(movedPairFraction(probe), "moved-pair-frac")
					}
				})
			}
		}
	}
}

// movedPairFraction reports the fraction of the incremental labeller's
// cached candidate pairs with at least one endpoint in the last step's
// moved set — the share of the pair slab a moved-endpoint-only walk index
// would still have to visit.
func movedPairFraction(x *Incremental) float64 {
	n := len(x.pairs) / 2
	if n == 0 {
		return 0
	}
	mask := make([]uint64, (x.k+63)/64)
	for _, i := range x.movedList {
		mask[i>>6] |= 1 << (uint(i) & 63)
	}
	moved := 0
	for pi := 0; pi < n; pi++ {
		a, b := x.pairs[2*pi], x.pairs[2*pi+1]
		if mask[a>>6]&(1<<(uint(a)&63)) != 0 || mask[b>>6]&(1<<(uint(b)&63)) != 0 {
			moved++
		}
	}
	return float64(moved) / float64(n)
}

// BenchmarkAblationBruteForceK1024 keeps the all-pairs baseline in the
// record; it is too slow to sweep past k=1024.
func BenchmarkAblationBruteForceK1024(b *testing.B) {
	pos := benchPositions(1024, 256)
	l := newBruteLabeller(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.components(pos, benchRadius)
	}
}

// TestAblationBaselinesAgree pins all five implementations to each other at
// bench parameters: identical labels, not just partitions. Every
// implementation assigns labels by first appearance in agent-index order —
// a function of the partition alone — so label slices must match exactly
// however the unions were ordered. (The radius sweep forces the incremental
// labeller to rebuild each round; its stepped dirty-cell path is pinned by
// the differential harness in differential_test.go.)
func TestAblationBaselinesAgree(t *testing.T) {
	t.Parallel()
	pos := benchPositions(256, 128)
	legacy := newMapLabeller(256)
	csr := NewLabeller(256)
	csr.SetParallelism(1)
	par := NewLabeller(256)
	par.SetParallelism(3)
	inc := NewIncremental(256)
	inc.SetParallelism(1)
	slow := newBruteLabeller(256)
	for _, r := range []int{0, 4, 8, 16} {
		ml, mc := legacy.components(pos, r)
		mlCopy := append([]int32(nil), ml...)
		cl, cc := csr.Components(pos, r)
		clCopy := append([]int32(nil), cl...)
		pl, pc := par.Components(pos, r)
		plCopy := append([]int32(nil), pl...)
		il, ic := inc.Components(pos, r)
		ilCopy := append([]int32(nil), il...)
		sl, sc := slow.components(pos, r)
		if mc != cc || cc != pc || pc != ic || ic != sc {
			t.Fatalf("r=%d: counts differ map=%d csr=%d par=%d inc=%d brute=%d", r, mc, cc, pc, ic, sc)
		}
		for i := range clCopy {
			if clCopy[i] != mlCopy[i] || clCopy[i] != plCopy[i] || clCopy[i] != ilCopy[i] || clCopy[i] != sl[i] {
				t.Fatalf("r=%d: labels differ at %d: map=%d csr=%d par=%d inc=%d brute=%d",
					r, i, mlCopy[i], clCopy[i], plCopy[i], ilCopy[i], sl[i])
			}
		}
	}
}
