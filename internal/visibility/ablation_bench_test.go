package visibility

// Ablation benchmarks for the component-labelling design choice called out
// in DESIGN.md: the spatial-hash labeller against the O(k²) all-pairs
// brute force it replaced. Correctness equivalence is established by the
// brute-force comparison tests in visibility_test.go; these benchmarks
// quantify the performance gap at sparse-regime densities.

import (
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/unionfind"
)

// bruteLabeller is the all-pairs baseline: check every agent pair.
type bruteLabeller struct {
	dsu    *unionfind.DSU
	labels []int32
}

func newBruteLabeller(k int) *bruteLabeller {
	return &bruteLabeller{dsu: unionfind.New(k), labels: make([]int32, k)}
}

func (b *bruteLabeller) components(pos []grid.Point, r int) ([]int32, int) {
	k := len(pos)
	b.dsu.Reset()
	if r >= 0 {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if grid.ManhattanPoints(pos[i], pos[j]) <= r {
					b.dsu.Union(i, j)
				}
			}
		}
	}
	return b.labels[:k], b.dsu.Labels(b.labels[:k])
}

func benchPositions(k, side int) []grid.Point {
	src := rng.New(99)
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(side)), Y: int32(src.Intn(side))}
	}
	return pos
}

func BenchmarkAblationSpatialHashK1024(b *testing.B) {
	pos := benchPositions(1024, 256)
	l := NewLabeller(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Components(pos, 8) // r = rc for n=65536, k=1024
	}
}

func BenchmarkAblationBruteForceK1024(b *testing.B) {
	pos := benchPositions(1024, 256)
	l := newBruteLabeller(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.components(pos, 8)
	}
}

func BenchmarkAblationSpatialHashK256(b *testing.B) {
	pos := benchPositions(256, 128)
	l := NewLabeller(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Components(pos, 8)
	}
}

func BenchmarkAblationBruteForceK256(b *testing.B) {
	pos := benchPositions(256, 128)
	l := newBruteLabeller(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.components(pos, 8)
	}
}

// The ablations must agree, at bench parameters too.
func TestAblationBaselinesAgree(t *testing.T) {
	t.Parallel()
	pos := benchPositions(256, 128)
	fast := NewLabeller(256)
	slow := newBruteLabeller(256)
	for _, r := range []int{0, 4, 8, 16} {
		fl, fc := fast.Components(pos, r)
		flCopy := make([]int32, len(fl))
		copy(flCopy, fl)
		sl, sc := slow.components(pos, r)
		if fc != sc {
			t.Fatalf("r=%d: counts differ %d vs %d", r, fc, sc)
		}
		for i := range flCopy {
			for j := range flCopy {
				if (flCopy[i] == flCopy[j]) != (sl[i] == sl[j]) {
					t.Fatalf("r=%d: grouping differs at (%d,%d)", r, i, j)
				}
			}
		}
	}
}
