package visibility

// Ablation benchmarks for the component-labelling design choices called out
// in DESIGN.md. Three generations of the labeller are compared: the O(k²)
// all-pairs brute force, the map-backed spatial hash it was first replaced
// by (retained here verbatim as mapLabeller), and the current flat CSR
// bucket index in both its sequential and parallel configurations.
// Correctness equivalence is established by TestAblationBaselinesAgree and
// the brute-force comparison tests in visibility_test.go; these benchmarks
// quantify the gaps at sparse-regime densities. BENCH_visibility.json
// records the measured trajectory.

import (
	"fmt"
	"math"
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/unionfind"
)

// bruteLabeller is the all-pairs baseline: check every agent pair.
type bruteLabeller struct {
	dsu    *unionfind.DSU
	labels []int32
}

func newBruteLabeller(k int) *bruteLabeller {
	return &bruteLabeller{dsu: unionfind.New(k), labels: make([]int32, k)}
}

func (b *bruteLabeller) components(pos []grid.Point, r int) ([]int32, int) {
	k := len(pos)
	b.dsu.Reset()
	if r >= 0 {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if grid.ManhattanPoints(pos[i], pos[j]) <= r {
					b.dsu.Union(i, j)
				}
			}
		}
	}
	return b.labels[:k], b.dsu.Labels(b.labels[:k])
}

// mapLabeller is the previous production labeller, frozen for the ablation:
// a map[uint64][]int32 spatial hash with a bucket recycle pool, the design
// the CSR index replaced. Its dense label pass is identical to the current
// one, so its labels — not just its partitions — must match.
type mapLabeller struct {
	dsu       *unionfind.DSU
	buckets   map[uint64][]int32
	keys      []uint64
	pool      [][]int32
	labels    []int32
	rootLabel []int32
}

func newMapLabeller(k int) *mapLabeller {
	return &mapLabeller{
		dsu:       unionfind.New(k),
		buckets:   make(map[uint64][]int32, k),
		labels:    make([]int32, k),
		rootLabel: make([]int32, k),
	}
}

func mapBucketKey(bx, by int32) uint64 {
	return uint64(uint32(bx))<<32 | uint64(uint32(by))
}

func (l *mapLabeller) components(pos []grid.Point, r int) ([]int32, int) {
	k := len(pos)
	d := l.dsu
	d.Reset()

	if r >= 0 && k > 1 {
		cell := int32(r)
		if cell < 1 {
			cell = 1
		}
		for key, b := range l.buckets {
			l.pool = append(l.pool, b[:0])
			delete(l.buckets, key)
		}
		l.keys = l.keys[:0]
		for i := 0; i < k; i++ {
			key := mapBucketKey(pos[i].X/cell, pos[i].Y/cell)
			b, ok := l.buckets[key]
			if !ok {
				if n := len(l.pool); n > 0 {
					b = l.pool[n-1]
					l.pool = l.pool[:n-1]
				}
				l.keys = append(l.keys, key)
			}
			l.buckets[key] = append(b, int32(i))
		}
		if r == 0 {
			for _, key := range l.keys {
				b := l.buckets[key]
				for i := 1; i < len(b); i++ {
					d.Union(int(b[0]), int(b[i]))
				}
			}
		} else {
			forward := [4][2]int32{{1, 0}, {0, 1}, {1, 1}, {-1, 1}}
			for _, key := range l.keys {
				b := l.buckets[key]
				bx := int32(uint32(key >> 32))
				by := int32(uint32(key))
				for i := 0; i < len(b); i++ {
					pi := pos[b[i]]
					for j := i + 1; j < len(b); j++ {
						if grid.ManhattanPoints(pi, pos[b[j]]) <= r {
							d.Union(int(b[i]), int(b[j]))
						}
					}
				}
				for _, off := range forward {
					nb, ok := l.buckets[mapBucketKey(bx+off[0], by+off[1])]
					if !ok {
						continue
					}
					for _, ai := range b {
						pi := pos[ai]
						for _, aj := range nb {
							if grid.ManhattanPoints(pi, pos[aj]) <= r {
								d.Union(int(ai), int(aj))
							}
						}
					}
				}
			}
		}
	}

	rl := l.rootLabel[:k]
	for i := range rl {
		rl[i] = -1
	}
	out := l.labels[:k]
	next := int32(0)
	for i := 0; i < k; i++ {
		root := d.Find(i)
		if rl[root] < 0 {
			rl[root] = next
			next++
		}
		out[i] = rl[root]
	}
	return out, int(next)
}

// benchPositions places k agents uniformly on a side x side box, the
// sparse-regime density all ablation points share (k/n = 1/64, the regime
// where T_B = Θ̃(n/√k) is the binding bound).
func benchPositions(k, side int) []grid.Point {
	src := rng.New(99)
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(side)), Y: int32(src.Intn(side))}
	}
	return pos
}

// benchSide keeps the density fixed as k scales: side = 8√k gives
// n = 64k nodes, matching the historical k=1024/side=256 ablation point.
func benchSide(k int) int {
	return int(8 * math.Sqrt(float64(k)))
}

const benchRadius = 8

// BenchmarkComponents is the labeller ablation grid: implementation x
// population size at fixed sparse density. "maphash" is the retired
// map-backed spatial hash, "csr" the flat CSR index (sequential), "csrpar"
// the CSR index with the parallel union phase forced to 4 workers (on a
// single-core host it measures shard overhead; on multicore hardware,
// speedup).
func BenchmarkComponents(b *testing.B) {
	for _, k := range []int{1000, 10000, 100000, 1000000} {
		pos := benchPositions(k, benchSide(k))

		b.Run(fmt.Sprintf("impl=maphash/k=%d", k), func(b *testing.B) {
			l := newMapLabeller(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.components(pos, benchRadius)
			}
		})
		b.Run(fmt.Sprintf("impl=csr/k=%d", k), func(b *testing.B) {
			l := NewLabeller(k)
			l.SetParallelism(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Components(pos, benchRadius)
			}
		})
		b.Run(fmt.Sprintf("impl=csrpar/k=%d", k), func(b *testing.B) {
			l := NewLabeller(k)
			l.SetParallelism(4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Components(pos, benchRadius)
			}
		})
	}
}

// BenchmarkAblationBruteForceK1024 keeps the all-pairs baseline in the
// record; it is too slow to sweep past k=1024.
func BenchmarkAblationBruteForceK1024(b *testing.B) {
	pos := benchPositions(1024, 256)
	l := newBruteLabeller(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.components(pos, benchRadius)
	}
}

// TestAblationBaselinesAgree pins all four implementations to each other at
// bench parameters: identical labels, not just partitions. Every
// implementation assigns labels by first appearance in agent-index order —
// a function of the partition alone — so label slices must match exactly
// however the unions were ordered.
func TestAblationBaselinesAgree(t *testing.T) {
	t.Parallel()
	pos := benchPositions(256, 128)
	legacy := newMapLabeller(256)
	csr := NewLabeller(256)
	csr.SetParallelism(1)
	par := NewLabeller(256)
	par.SetParallelism(3)
	slow := newBruteLabeller(256)
	for _, r := range []int{0, 4, 8, 16} {
		ml, mc := legacy.components(pos, r)
		mlCopy := append([]int32(nil), ml...)
		cl, cc := csr.Components(pos, r)
		clCopy := append([]int32(nil), cl...)
		pl, pc := par.Components(pos, r)
		plCopy := append([]int32(nil), pl...)
		sl, sc := slow.components(pos, r)
		if mc != cc || cc != pc || pc != sc {
			t.Fatalf("r=%d: counts differ map=%d csr=%d par=%d brute=%d", r, mc, cc, pc, sc)
		}
		for i := range clCopy {
			if clCopy[i] != mlCopy[i] || clCopy[i] != plCopy[i] || clCopy[i] != sl[i] {
				t.Fatalf("r=%d: labels differ at %d: map=%d csr=%d par=%d brute=%d",
					r, i, mlCopy[i], clCopy[i], plCopy[i], sl[i])
			}
		}
	}
}
