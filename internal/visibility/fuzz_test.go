package visibility

// Native fuzz targets for the incremental connectivity kernel. Both decode
// a raw byte stream into a deterministic scenario — agent count, radius,
// initial layout, and a sequence of per-step move deltas or teleports —
// then drive the incremental kernel against the from-scratch reference and
// the white-box invariant oracle.
//
//   FuzzIncrementalIndex   random move deltas (smooth drift, teleports,
//                          window escapes) vs a from-scratch rebuild:
//                          labels, counts, and CSR internals must match.
//   FuzzFrontierRelabel    random dirty sets driven through the frontier
//                          recheck (including the zero-flip label-reuse
//                          fast path) vs a full relabel, plus informed-set
//                          floods on both paths.
//
// Seed corpora live under testdata/fuzz/<Target>/; CI runs each target for
// a short -fuzztime smoke in the fuzz-smoke job.

import (
	"testing"

	"mobilenet/internal/bitset"
	"mobilenet/internal/grid"
)

// fuzzReader doles out bytes from the fuzz input, falling back to a fixed
// cycle when the stream runs dry so every prefix decodes to a full
// scenario.
type fuzzReader struct {
	data []byte
	off  int
}

func (fr *fuzzReader) byte() byte {
	if fr.off >= len(fr.data) {
		fr.off++
		return byte(fr.off * 131)
	}
	b := fr.data[fr.off]
	fr.off++
	return b
}

func (fr *fuzzReader) int(n int) int {
	if n <= 0 {
		return 0
	}
	v := int(fr.byte())<<8 | int(fr.byte())
	return v % n
}

// fuzzScenario decodes the common preamble: a small population on a
// bounded coordinate range with a small radius, so components are dense
// enough to exercise unions but the brute-force oracle stays cheap.
func fuzzScenario(fr *fuzzReader) (pos []grid.Point, r int) {
	k := 2 + fr.int(40)
	r = fr.int(10)
	span := 4 + fr.int(60)
	pos = make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(fr.int(span)), Y: int32(fr.int(span))}
	}
	return pos, r
}

// applyFuzzMoves mutates pos in place from the stream: mostly short
// deltas, occasionally a long teleport (stressing window re-anchor and
// budget blowout) or a coordinate near the int32 extremes (stressing the
// saturating window arithmetic).
func applyFuzzMoves(fr *fuzzReader, pos []grid.Point) {
	moves := fr.int(len(pos) * 2)
	for m := 0; m < moves; m++ {
		i := fr.int(len(pos))
		switch fr.byte() % 8 {
		case 0: // teleport within a wide box
			pos[i] = grid.Point{X: int32(fr.int(4096)) - 2048, Y: int32(fr.int(4096)) - 2048}
		case 1: // extreme coordinates
			x := int32(1<<31 - 1 - fr.int(3))
			if fr.byte()&1 == 0 {
				x = int32(-1<<31 + fr.int(3))
			}
			pos[i] = grid.Point{X: x, Y: int32(fr.int(64))}
		default: // short drift, the steady-state case
			pos[i].X += int32(fr.int(5)) - 2
			pos[i].Y += int32(fr.int(5)) - 2
		}
	}
}

// requireSameLabels compares an incremental result against the
// from-scratch reference byte for byte.
func requireSameLabels(t *testing.T, step int, gotL []int32, gotC int, wantL []int32, wantC int) {
	t.Helper()
	if gotC != wantC {
		t.Fatalf("step %d: count %d, reference %d", step, gotC, wantC)
	}
	for i := range wantL {
		if gotL[i] != wantL[i] {
			t.Fatalf("step %d agent %d: label %d, reference %d", step, i, gotL[i], wantL[i])
		}
	}
}

// FuzzIncrementalIndex drives random move deltas through the incremental
// kernel and checks labels against a from-scratch rebuild plus the CSR
// internal-consistency oracle after every step.
func FuzzIncrementalIndex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 2, 0, 16, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5})
	f.Add([]byte{0, 40, 0, 9, 0, 8, 255, 255, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &fuzzReader{data: data}
		pos, r := fuzzScenario(fr)
		k := len(pos)
		inc := NewIncremental(k)
		ref := NewIncremental(k)
		ref.SetFullRebuild(true)
		refLabels := make([]int32, k)
		steps := 2 + fr.int(12)
		for s := 0; s < steps; s++ {
			if s > 0 {
				applyFuzzMoves(fr, pos)
			}
			wl, wc := ref.Components(pos, r)
			copy(refLabels, wl)
			gl, gc := inc.Components(pos, r)
			requireSameLabels(t, s, gl, gc, refLabels, wc)
			if err := inc.checkInternalState(pos); err != nil {
				t.Fatalf("step %d: %v", s, err)
			}
		}
	})
}

// FuzzFrontierRelabel drives random dirty sets — subsets of agents nudged
// while the rest hold still, so the masked frontier recheck (not a full
// rescan) does the work — and checks the label pass and informed-set flood
// against the full path, including steps with zero flips where the kernel
// reuses cached labels wholesale.
func FuzzFrontierRelabel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 0, 3, 0, 20, 9, 9, 9, 9, 0, 0, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{0, 20, 0, 1, 0, 30, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &fuzzReader{data: data}
		pos, r := fuzzScenario(fr)
		k := len(pos)
		inc := NewIncremental(k)
		ref := NewIncremental(k)
		ref.SetFullRebuild(true)
		incInf, refInf := bitset.New(k), bitset.New(k)
		src := fr.int(k)
		incInf.Add(src)
		refInf.Add(src)
		refLabels := make([]int32, k)
		steps := 2 + fr.int(12)
		for s := 0; s < steps; s++ {
			if s > 0 {
				// Dirty set: a few agents take one-cell-scale nudges; the
				// stream decides how many, sometimes zero (the label-reuse
				// fast path).
				dirty := fr.int(1 + k/3)
				for d := 0; d < dirty; d++ {
					i := fr.int(k)
					pos[i].X += int32(fr.int(3)) - 1
					pos[i].Y += int32(fr.int(3)) - 1
				}
			}
			wl, wc := ref.Components(pos, r)
			copy(refLabels, wl)
			gl, gc := inc.Components(pos, r)
			requireSameLabels(t, s, gl, gc, refLabels, wc)
			if err := inc.checkInternalState(pos); err != nil {
				t.Fatalf("step %d: %v", s, err)
			}
			refNew := ref.Flood(pos, r, refInf, nil)
			incNew := inc.Flood(pos, r, incInf, nil)
			if len(refNew) != len(incNew) {
				t.Fatalf("step %d: %d newly informed, reference %d", s, len(incNew), len(refNew))
			}
			for i := range refNew {
				if refNew[i] != incNew[i] {
					t.Fatalf("step %d: newly[%d]=%d, reference %d", s, i, incNew[i], refNew[i])
				}
			}
			if !incInf.Equal(refInf) {
				t.Fatalf("step %d: informed set diverged", s)
			}
		}
	})
}
