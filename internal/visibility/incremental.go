package visibility

import (
	"math/bits"
	"runtime"
	"sync"

	"mobilenet/internal/bitset"
	"mobilenet/internal/grid"
	"mobilenet/internal/prof"
	"mobilenet/internal/unionfind"
)

// cellSlack is the spare capacity every loose-CSR bucket is laid out with:
// an agent entering a cell takes a spare slot in O(1), and only a bucket
// that outgrows its slack forces a relayout of the slabs.
const cellSlack = 2

// padFor returns the pair-cache padding for radius r and population k:
// candidate pairs are collected out to distance r+pad, and the cache stays
// valid while the cumulative per-step drift keeps every uncached pair's
// separation above r (see Incremental). Larger pads buy longer rescan
// horizons at the price of more cached pairs per agent; the floor keeps
// small radii from rescanning every other step and the cap bounds the
// cache near the B(r+pad) ball growth. Populations matter because the
// frontier recheck streams the whole cache: while it fits in cache memory
// the marginal pair is nearly free and a wider pad (fewer rescans) wins,
// but once the cache spills, every extra candidate costs two DRAM-latency
// position loads per step and the balance tips toward narrow pads with
// more frequent — but sequential and batched — rescans. The value is a
// pure tuning knob either way: results are bit-identical for every pad
// because exact distances decide all edges.
func padFor(r, k int) int {
	p := r
	if p < 4 {
		p = 4
	}
	if k <= 1<<18 && p < 6 {
		p = 6
	}
	if p > 16 {
		p = 16
	}
	return p
}

// Incremental is a drop-in component labeller that maintains its spatial
// index and candidate-pair structure across steps instead of rebuilding
// them from scratch: under bounded per-step motion (the paper's lazy walk
// moves an agent at most one lattice step per tick) almost all bucket
// contents and almost all pair distances are unchanged between steps, and
// the from-scratch rebuild is the dominant cost of every engine step (see
// BENCH_phases.json).
//
// Three mechanisms carry the savings:
//
//   - Dirty-cell index maintenance: agents are bucketed into a loose CSR —
//     order/starts slabs with per-cell slack — and a step only touches the
//     buckets of agents whose cell actually changed (an O(1) swap-remove
//     plus slot insert each). Bucket member order becomes arbitrary, which
//     is safe because labels are a pure function of the partition (see
//     Components).
//
//   - A padded candidate-pair cache with a drift certificate: at a rescan,
//     every pair within distance r+pad is recorded once with a pass bit
//     (distance <= r). A pair farther than r+pad can close its gap by at
//     most twice the per-step maximum displacement per step, so while the
//     cumulative closure stays within pad, no uncached pair can become an
//     edge and the per-step work is a flat recheck of cached pairs only.
//     Teleports (trace loop wraps, test churn) blow the budget and force a
//     rescan automatically.
//
//   - Frontier relabelling: a pair with both endpoints unmoved this step
//     keeps its cached pass bit without a distance check, so per-step exact
//     distance work is confined to the frontier — pairs incident to a moved
//     agent. When no pass bit flips, the partition is provably unchanged
//     and the cached labels are returned wholesale, skipping the label
//     pass; the spread fast path (Flood) similarly returns nothing.
//
// Results are bit-for-bit identical to Labeller: every edge decision is an
// exact distance comparison, and the dense label pass assigns labels by
// first appearance in agent index order — a function of the partition
// alone — so index layout, pair order and rescan cadence cannot influence
// the output. The differential and fuzz tests in this package pin that
// equivalence; SetFullRebuild routes calls through a retained from-scratch
// Labeller for those tests and for ablations.
//
// An Incremental is reusable across steps but not safe for concurrent use.
// The zero value is not usable; construct with NewIncremental.
type Incremental struct {
	full     *Labeller
	fullMode bool

	k     int
	r     int
	valid bool // incremental state matches prevPos under (k, r)

	// Window geometry: cells are 1<<shift on a side (always a power of two
	// so bucket indexing is shift/mask work, never division), the bucket
	// grid is gw x gh cells, and the window origin is (minX, minY). An
	// agent leaving the window forces a full re-anchor.
	shift      uint
	gw, gh     int
	minX, minY int32

	// Loose CSR: bucket c owns slots [csrStarts[c], csrStarts[c+1]) of
	// csrOrder, of which the first csrCount[c] are live; slotOf[i] is agent
	// i's slot and cellOf[i] its bucket. csrStale marks the layout lazily
	// dirty: once a bucket overflows its slack, per-step surgery stops
	// (cellOf alone keeps tracking geometry) and the slabs are relaid in one
	// pass at the next rescan — the only consumer of the layout — instead of
	// immediately. scanPos mirrors csrOrder with each live slot's position,
	// gathered once per rescan so the stencil scan reads positions
	// sequentially instead of chasing agent ids through pos.
	csrStarts []int32
	csrCount  []int32
	csrOrder  []int32
	cellOf    []int32
	slotOf    []int32
	csrStale  bool
	scanPos   []grid.Point

	// Pair cache: flat (a, b) candidate pairs within r+pad at the last
	// rescan, with one pass bit each (distance <= r as of prevPos). remain
	// is the drift budget left before the certificate expires.
	pad       int
	remain    int
	pairs     []int32
	passBits  []uint64
	pairsHigh int // candidate high-water mark for headroom growth

	prevPos   []grid.Point
	movedList []int32
	movedMask []uint64

	dsu       *unionfind.DSU
	labels    []int32
	rootLabel []int32
	count     int

	labelsClean bool // labels/count match the current partition
	floodClean  bool // partition unchanged since the last Flood

	// flipOn lists the pairs whose pass bit flipped on during the last
	// recheck; sweepAll marks steps (rescans, re-anchors) whose fresh pair
	// enumeration records no flips. Components can only merge along
	// flipped-on edges, which is what lets Flood skip its whole-population
	// sweep when none of them reaches an informed component.
	flipOn   []int32
	sweepAll bool

	// lastInformed guards the Flood fast path: skipping is only sound when
	// the same informed set comes back unchanged (it only ever grows, and
	// only through Flood, in engine use).
	lastInformed    *bitset.Set
	lastInformedLen int

	rootMark     []uint64 // flood scratch: marked DSU roots
	compInformed []bool   // FloodWithLabels scratch

	par       int
	prof      *prof.StepProfile
	shards    [][]int32  // per-worker pair buffers for the parallel rescan
	shardBits [][]uint64 // per-worker pass-bit buffers, bit i = shard pair i
	shardNP   []int      // per-worker pair counts for bit concatenation
}

// NewIncremental returns an incremental labeller sized for populations of k
// agents. It transparently reinitialises if later called with a different
// population size or radius.
func NewIncremental(k int) *Incremental {
	x := &Incremental{full: NewLabeller(k), r: -2}
	x.ensureK(k)
	return x
}

// SetParallelism configures the worker count of the rescan and of the
// retained full-rebuild path, with Labeller.SetParallelism semantics:
// 0 automatic, 1 sequential, p > 1 up to p workers. Results are bit-for-bit
// identical at every setting.
func (x *Incremental) SetParallelism(p int) {
	if p < 0 {
		p = 0
	}
	x.par = p
	x.full.SetParallelism(p)
}

// SetProfile attaches a step-phase profiler. The incremental path stays
// inside the fixed phase vocabulary: move application, cell surgery and
// slab relayouts lap into prof.Index; pair rescans, frontier rechecks,
// unions and the label pass lap into prof.Label; Flood work lands in the
// caller's spread lap. A nil profile keeps every lap a branch.
func (x *Incremental) SetProfile(p *prof.StepProfile) {
	x.prof = p
	x.full.SetProfile(p)
}

// SetFullRebuild routes all subsequent calls through the retained
// from-scratch Labeller (true) or the incremental kernel (false, the
// default). Outputs are bit-for-bit identical either way — the flag exists
// so differential tests and ablation benches can hold the reference and
// the kernel side by side on one type.
func (x *Incremental) SetFullRebuild(on bool) {
	if on && !x.fullMode {
		// Returning to incremental mode later must not trust state that
		// stopped tracking positions while the full path served calls.
		x.valid = false
	}
	x.fullMode = on
}

func (x *Incremental) ensureK(k int) {
	if len(x.prevPos) >= k {
		return
	}
	x.prevPos = make([]grid.Point, k)
	x.cellOf = make([]int32, k)
	x.slotOf = make([]int32, k)
	x.movedList = make([]int32, 0, k)
	x.movedMask = make([]uint64, (k+63)/64)
	x.labels = make([]int32, k)
	x.rootLabel = make([]int32, k)
	x.rootMark = make([]uint64, (k+63)/64)
	x.dsu = unionfind.New(k)
	x.valid = false
}

// workers resolves the rescan worker count for the current bucket grid,
// with the Labeller's policy: sequential below autoParallelK agents unless
// parallelism was requested explicitly.
func (x *Incremental) workers() int {
	p := x.par
	if p == 0 {
		if x.k < autoParallelK {
			return 1
		}
		p = runtime.GOMAXPROCS(0)
	}
	if p > maxShards {
		p = maxShards
	}
	if p > x.gh {
		p = x.gh
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Components labels the connected components of G(r) over the given agent
// positions, exactly like Labeller.Components: a dense label per agent in
// first-appearance order plus the component count, identical at every
// parallelism setting. The returned slice is owned by the Incremental and
// valid until the next call.
//
// Positions may change arbitrarily between calls — the kernel derives the
// moved set itself by comparing against its retained previous positions,
// so callers never report motion and cannot misreport it. Bounded motion
// is a performance regime, not a correctness requirement.
func (x *Incremental) Components(pos []grid.Point, r int) (labels []int32, count int) {
	if x.fullMode {
		return x.full.Components(pos, r)
	}
	k := len(pos)
	if k == 0 {
		return x.labels[:0], 0
	}
	x.ensureK(k)
	if r < 0 || k == 1 {
		// Trivial regimes bypass the incremental machinery entirely (and
		// invalidate it: it no longer tracks positions).
		x.valid = false
		out := x.labels[:k]
		for i := range out {
			out[i] = int32(i)
		}
		x.prof.Lap(prof.Label)
		return out, k
	}
	x.step(pos, r)
	if !x.labelsClean {
		x.labelPass()
	}
	x.prof.Lap(prof.Label)
	return x.labels[:x.k], x.count
}

// Flood spreads an informed set through the current components: after
// advancing the kernel to pos, every uninformed agent sharing a component
// with an informed one is added to informed, its index appended to newly
// (ascending), and the extended slice returned. The spread works directly
// on union-find roots — component labels are never materialised — and when
// the partition and the informed set are both unchanged since the last
// Flood, it returns immediately.
//
// Equivalent by construction to labelling plus a component flood (which is
// exactly what it does in full-rebuild mode, via FloodWithLabels); the
// differential harness pins the equivalence.
func (x *Incremental) Flood(pos []grid.Point, r int, informed *bitset.Set, newly []int32) []int32 {
	if x.fullMode {
		labels, count := x.full.Components(pos, r)
		return x.FloodWithLabels(labels, count, informed, newly)
	}
	k := len(pos)
	if k == 0 {
		return newly
	}
	x.ensureK(k)
	if r < 0 || k == 1 {
		// Singleton components spread nothing.
		x.valid = false
		x.prof.Lap(prof.Label)
		return newly
	}
	x.step(pos, r)
	x.prof.Lap(prof.Label)
	if x.floodClean && informed == x.lastInformed && informed.Len() == x.lastInformedLen {
		return newly
	}
	// Mark the roots of informed agents, then sweep uninformed agents whose
	// root is marked. Both passes iterate the informed set's bit words
	// directly — set bits for the mark, cleared bits for the sweep — instead
	// of testing membership agent by agent, and neither needs a prior
	// CompressAll: the recheck's pair replay splices chains as it unions
	// (Rem's algorithm), so every Find walk is a step or two.
	numWords := (k + 63) / 64
	mark := x.rootMark[:numWords]
	clear(mark)
	d := x.dsu
	words := informed.Words()
	for wi := 0; wi < len(words) && wi < numWords; wi++ {
		for w := words[wi]; w != 0; w &= w - 1 {
			j := wi<<6 + bits.TrailingZeros64(w)
			if j >= k {
				break
			}
			root := d.Find(j)
			mark[root>>6] |= 1 << (uint(root) & 63)
		}
	}
	// A recheck step can only merge components along edges whose pass bit
	// flipped on, and the previous flood left every informed component
	// fully informed, so if no flipped-on edge landed in a marked component
	// the sweep cannot find anyone to inform and is skipped wholesale.
	// Rescans and re-anchors re-enumerate pairs without recording flips
	// (sweepAll), and an informed set edited outside Flood voids the
	// saturation invariant, so both force the sweep.
	if !x.sweepAll && informed == x.lastInformed && informed.Len() == x.lastInformedLen {
		spread := false
		for i := 0; i+1 < len(x.flipOn); i += 2 {
			// Post-union both endpoints share a root; one lookup decides.
			root := d.Find(int(x.flipOn[i]))
			if mark[root>>6]&(1<<(uint(root)&63)) != 0 {
				spread = true
				break
			}
		}
		if !spread {
			x.floodClean = true
			return newly
		}
	}
	for wi := 0; wi < numWords; wi++ {
		var iw uint64
		if wi < len(words) {
			iw = words[wi]
		}
		for w := ^iw; w != 0; w &= w - 1 {
			j := wi<<6 + bits.TrailingZeros64(w)
			if j >= k {
				break
			}
			root := d.Find(j)
			if mark[root>>6]&(1<<(uint(root)&63)) != 0 {
				informed.Add(j)
				newly = append(newly, int32(j))
			}
		}
	}
	x.floodClean = true
	x.lastInformed = informed
	x.lastInformedLen = informed.Len()
	return newly
}

// FloodWithLabels spreads an informed set through an existing labelling
// without advancing the kernel: uninformed agents whose label matches an
// informed agent's are added to informed and appended to newly (ascending).
// It is the pure flood primitive engines use on steps where they computed
// labels anyway for component observables.
func (x *Incremental) FloodWithLabels(labels []int32, count int, informed *bitset.Set, newly []int32) []int32 {
	if count == 0 {
		return newly
	}
	if cap(x.compInformed) < count {
		x.compInformed = make([]bool, count)
	}
	ci := x.compInformed[:count]
	for i := range ci {
		ci[i] = false
	}
	for i := range labels {
		if informed.Contains(i) {
			ci[labels[i]] = true
		}
	}
	for i, lb := range labels {
		if ci[lb] && !informed.Contains(i) {
			informed.Add(i)
			newly = append(newly, int32(i))
		}
	}
	return newly
}

// step advances the incremental state to pos: applies moves to the loose
// CSR, spends drift budget, and re-establishes the partition in the DSU
// via rescan or frontier recheck. Callers have already excluded the
// trivial regimes (k < 2, r < 0). step is idempotent: a second call with
// unchanged positions finds an empty moved set and returns immediately,
// which is what makes Components-then-Flood on one step cost one pass.
func (x *Incremental) step(pos []grid.Point, r int) {
	k := len(pos)
	if !x.valid || k != x.k || r != x.r {
		x.rebuildAll(pos, r)
		return
	}

	moved := x.movedList[:0]
	maxDisp := 0
	outOfWindow := false
	prev := x.prevPos
	loX, loY := x.minX, x.minY
	hiX := clampWindowHi(loX, x.gw, x.shift)
	hiY := clampWindowHi(loY, x.gh, x.shift)
	for i := range pos {
		p := pos[i]
		if p == prev[i] {
			continue
		}
		// Displacement must use the exact 64-bit metric: int32 arithmetic
		// would wrap on extreme teleports, understate maxDisp, and let the
		// drift certificate survive a step it cannot cover.
		d := grid.ManhattanPoints(p, prev[i])
		if d > maxDisp {
			maxDisp = d
		}
		// The moved list only feeds recheck's frontier mask, which switches
		// itself off at half the population; once past that threshold the
		// list's contents are never read, so stop paying for them. (The
		// capped length still reads as "mask off" downstream.)
		if 2*len(moved) < k {
			moved = append(moved, int32(i))
		}
		prev[i] = p
		if p.X < loX || p.X >= hiX || p.Y < loY || p.Y >= hiY {
			outOfWindow = true
			continue
		}
		c := int32(uint32(p.Y-loY)>>x.shift)*int32(x.gw) + int32(uint32(p.X-loX)>>x.shift)
		if c != x.cellOf[i] {
			// O(1) cell surgery keeps the layout live until the first
			// overflow of the step; after that the layout is stale anyway,
			// so further surgery would be wasted — cellOf alone tracks the
			// geometry and the next rescan relays out the slabs wholesale.
			if !outOfWindow && !x.csrStale && !x.moveCell(int32(i), x.cellOf[i], c) {
				x.csrStale = true
			}
			x.cellOf[i] = c
		}
	}
	x.movedList = moved
	if len(moved) == 0 {
		x.prof.Lap(prof.Index)
		return
	}
	if outOfWindow {
		// The window no longer covers the population; re-anchor from
		// scratch. (The wasted cell surgery above is harmless: rebuildAll
		// recomputes cellOf and relays out the slabs.)
		x.rebuildAll(pos, r)
		return
	}
	x.prof.Lap(prof.Index)

	x.remain -= 2 * maxDisp
	var dirty bool
	if x.remain < 0 {
		x.rescan(pos, r)
		dirty = true
	} else {
		dirty = x.recheck(pos, r)
	}
	if dirty {
		x.labelsClean = false
		x.floodClean = false
	}
}

// rebuildAll re-derives everything from the current positions: window
// geometry, loose CSR layout, pair cache and partition.
func (x *Incremental) rebuildAll(pos []grid.Point, r int) {
	k := len(pos)
	x.ensureK(k)
	x.k, x.r = k, r
	x.pad = padFor(r, k)
	copy(x.prevPos[:k], pos)

	minX, minY := pos[0].X, pos[0].Y
	maxX, maxY := minX, minY
	for _, p := range pos[1:] {
		if p.X < minX {
			minX = p.X
		} else if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		} else if p.Y > maxY {
			maxY = p.Y
		}
	}
	// Cell side: the smallest power of two >= r+pad (powers of two keep
	// bucket indexing divisionless), doubled until the bucket grid passes
	// the same O(k) cell cap as the full path, so slab clearing stays
	// proportional to the population. One margin cell on each side absorbs
	// bounding-box drift without re-anchoring.
	side := r + x.pad
	if side < 1 {
		side = 1
	}
	shift := uint(bits.Len(uint(side - 1)))
	maxCells := 2 * k
	if maxCells < 64 {
		maxCells = 64
	}
	spanX := int64(maxX) - int64(minX)
	spanY := int64(maxY) - int64(minY)
	w := int(spanX>>shift) + 3
	h := int(spanY>>shift) + 3
	for w > maxCells || h > maxCells || w*h > maxCells {
		shift++
		w = int(spanX>>shift) + 3
		h = int(spanY>>shift) + 3
	}
	x.shift, x.gw, x.gh = shift, w, h
	cell := int32(1) << shift
	// Clamp the origin so the margin cell never underflows int32 (grid
	// coordinates are non-negative, but fuzzed positions roam).
	x.minX = clampOriginMargin(minX, cell)
	x.minY = clampOriginMargin(minY, cell)

	cellOf := x.cellOf[:k]
	for i, p := range pos {
		cellOf[i] = int32(uint32(p.Y-x.minY)>>shift)*int32(w) + int32(uint32(p.X-x.minX)>>shift)
	}
	x.relayout()
	x.prof.Lap(prof.Index)
	x.rescan(pos, r)
	x.valid = true
	x.labelsClean = false
	x.floodClean = false
}

// clampOriginMargin returns lo minus one margin cell, saturating so the
// subtraction cannot wrap below the int32 range.
func clampOriginMargin(lo, cell int32) int32 {
	if int64(lo)-int64(cell) < int64(-1<<31) {
		return -1 << 31
	}
	return lo - cell
}

// clampWindowHi returns the window's exclusive high edge lo + cells<<shift,
// saturating at the int32 maximum: positions are int32, so a window whose
// true edge lies beyond it covers every representable coordinate (bar the
// maximum itself, whose spurious re-anchor is correct and rare).
func clampWindowHi(lo int32, cells int, shift uint) int32 {
	hi := int64(lo) + int64(cells)<<shift
	if hi > int64(1<<31-1) {
		return 1<<31 - 1
	}
	return int32(hi)
}

// relayout rebuilds the loose-CSR slabs from cellOf: per-cell capacities
// are the current counts plus cellSlack spare slots, so subsequent cell
// changes go back to O(1) surgery.
func (x *Incremental) relayout() {
	numCells := x.gw * x.gh
	if cap(x.csrCount) < numCells {
		x.csrCount = make([]int32, numCells)
		x.csrStarts = make([]int32, numCells+1)
	}
	counts := x.csrCount[:numCells]
	clear(counts)
	k := x.k
	cellOf := x.cellOf[:k]
	for _, c := range cellOf {
		counts[c]++
	}
	starts := x.csrStarts[:numCells+1]
	slot := int32(0)
	for c := 0; c < numCells; c++ {
		starts[c] = slot
		slot += counts[c] + cellSlack
	}
	starts[numCells] = slot
	if cap(x.csrOrder) < int(slot) {
		x.csrOrder = make([]int32, slot)
		x.scanPos = make([]grid.Point, slot)
	}
	order := x.csrOrder[:slot]
	clear(counts)
	slotOf := x.slotOf[:k]
	for i := 0; i < k; i++ {
		c := cellOf[i]
		s := starts[c] + counts[c]
		order[s] = int32(i)
		slotOf[i] = s
		counts[c]++
	}
	x.csrStale = false
}

// moveCell moves agent i from bucket `from` to bucket `to` in O(1): the
// agent's slot is backfilled with its bucket's last live member, and the
// agent takes the first spare slot of the destination. It reports false
// when the destination bucket is full, which forces a relayout.
func (x *Incremental) moveCell(i, from, to int32) bool {
	starts, counts, order, slotOf := x.csrStarts, x.csrCount, x.csrOrder, x.slotOf
	if counts[to] >= starts[to+1]-starts[to] {
		return false
	}
	last := starts[from] + counts[from] - 1
	s := slotOf[i]
	moved := order[last]
	order[s] = moved
	slotOf[moved] = s
	counts[from]--
	ns := starts[to] + counts[to]
	order[ns] = i
	slotOf[i] = ns
	counts[to]++
	return true
}

// gatherScan copies each live slot's position out of pos into the scanPos
// mirror for bucket rows [rowLo, rowHi). This is the rescan's only
// id-indexed walk over pos: one random load per agent, after which the
// whole stencil scan reads positions in slot order — spatially adjacent
// agents adjacent in memory — instead of re-chasing every agent id for
// every candidate check.
func (x *Incremental) gatherScan(pos []grid.Point, rowLo, rowHi int) {
	w := x.gw
	starts, counts, order, sp := x.csrStarts, x.csrCount, x.csrOrder, x.scanPos
	for c := rowLo * w; c < rowHi*w; c++ {
		s0 := starts[c]
		for s := s0; s < s0+counts[c]; s++ {
			sp[s] = pos[order[s]]
		}
	}
}

// appendCandidates scans bucket rows [rowLo, rowHi) of the loose CSR and
// appends every candidate pair within distance rPad as a flat (a, b) pair,
// recording each pair's pass bit (exact distance <= r) in pass as it goes —
// the one distance computation serves both decisions, so the finalize pass
// never re-touches positions. np is the number of pairs already recorded in
// pass (the bit cursor); positions are read from the scanPos mirror, which
// gatherScan must have filled for these rows. Ownership follows the full
// path's 5-stencil: within-cell pairs plus the four forward neighbour cells
// cover every candidate exactly once, because cells have side >= r+pad.
//
// The neighbour scans are fused inline rather than factored into a helper:
// at operating density a bucket holds only a few agents, so a
// per-neighbour function call (slices in, slices out, for a possibly-empty
// cell) costs more than the distance checks it performs.
func (x *Incremental) appendCandidates(r, rPad, rowLo, rowHi int, out []int32, pass []uint64, np int) ([]int32, []uint64, int) {
	w, h := x.gw, x.gh
	starts, counts, order, sp := x.csrStarts, x.csrCount, x.csrOrder, x.scanPos
	for cy := rowLo; cy < rowHi; cy++ {
		base := cy * w
		for cx := 0; cx < w; cx++ {
			c := base + cx
			n := counts[c]
			if n == 0 {
				continue
			}
			s0 := starts[c]
			bp := sp[s0 : s0+n]
			bo := order[s0 : s0+n]
			for i := 0; i < len(bp); i++ {
				pi := bp[i]
				for j := i + 1; j < len(bp); j++ {
					if d := grid.ManhattanPoints(pi, bp[j]); d <= rPad {
						out = append(out, bo[i], bo[j])
						if np&63 == 0 {
							pass = append(pass, 0)
						}
						if d <= r {
							pass[np>>6] |= 1 << (uint(np) & 63)
						}
						np++
					}
				}
			}
			// East neighbour.
			if cx+1 < w {
				if cn := counts[c+1]; cn > 0 {
					t0 := starts[c+1]
					tp := sp[t0 : t0+cn]
					to := order[t0 : t0+cn]
					for i := 0; i < len(bp); i++ {
						pi := bp[i]
						for j := 0; j < len(tp); j++ {
							if d := grid.ManhattanPoints(pi, tp[j]); d <= rPad {
								out = append(out, bo[i], to[j])
								if np&63 == 0 {
									pass = append(pass, 0)
								}
								if d <= r {
									pass[np>>6] |= 1 << (uint(np) & 63)
								}
								np++
							}
						}
					}
				}
			}
			// Southern row: south-west, south, south-east, clipped at the
			// grid edges.
			if cy+1 < h {
				lo := c + w - 1
				if cx == 0 {
					lo++
				}
				hi := c + w + 1
				if cx+1 >= w {
					hi--
				}
				for nc := lo; nc <= hi; nc++ {
					cn := counts[nc]
					if cn == 0 {
						continue
					}
					t0 := starts[nc]
					tp := sp[t0 : t0+cn]
					to := order[t0 : t0+cn]
					for i := 0; i < len(bp); i++ {
						pi := bp[i]
						for j := 0; j < len(tp); j++ {
							if d := grid.ManhattanPoints(pi, tp[j]); d <= rPad {
								out = append(out, bo[i], to[j])
								if np&63 == 0 {
									pass = append(pass, 0)
								}
								if d <= r {
									pass[np>>6] |= 1 << (uint(np) & 63)
								}
								np++
							}
						}
					}
				}
			}
		}
	}
	return out, pass, np
}

// rescan rebuilds the pair cache from the loose CSR — candidates out to
// r+pad, pass bits at exact distance r — resets the drift budget, and
// re-establishes the partition. A stale layout (deferred bucket overflow)
// is repaired here first: rescans are the layout's only consumer, so one
// relayout per rescan replaces one per overflowing step. The enumeration
// parallelises over bucket row strips exactly like the full path's union
// phase; the finalize pass (union replay of the passing pairs) is
// sequential either way, and the partition is order-independent, so
// parallelism cannot change results.
func (x *Incremental) rescan(pos []grid.Point, r int) {
	if x.csrStale {
		x.relayout()
		x.prof.Lap(prof.Index)
	}
	x.sweepAll = true
	x.remain = x.pad
	rPad := r + x.pad

	// Headroom growth: the cache is reallocated only when a new candidate
	// high-water mark would exceed half the capacity, so steady-state
	// rescans append within capacity and allocate nothing. Pass bits grow
	// by append alongside, retaining their backing across rescans.
	if need := 4 * x.pairsHigh; cap(x.pairs) < need {
		x.pairs = make([]int32, 0, need)
	}
	pairs := x.pairs[:0]
	pass := x.passBits[:0]
	var np int
	if nw := x.workers(); nw > 1 {
		pairs, pass, np = x.scanParallel(pos, r, rPad, nw, pairs, pass)
	} else {
		x.gatherScan(pos, 0, x.gh)
		pairs, pass, np = x.appendCandidates(r, rPad, 0, x.gh, pairs, pass, 0)
	}
	x.pairs = pairs
	x.passBits = pass
	if np > x.pairsHigh {
		x.pairsHigh = np
	}

	d := x.dsu
	d.Reset()
	for w, bw := range pass {
		for bw != 0 {
			pi := w<<6 + bits.TrailingZeros64(bw)
			bw &= bw - 1
			d.Union(int(pairs[2*pi]), int(pairs[2*pi+1]))
		}
	}
}

// scanParallel fans the candidate enumeration across nw bucket-row strips
// balanced by slab size — each worker gathers its own rows' scanPos mirror
// (strip slot ranges are disjoint) and emits pairs plus pass bits into its
// shard — then concatenates the per-strip buffers in strip order.
func (x *Incremental) scanParallel(pos []grid.Point, r, rPad, nw int, out []int32, pass []uint64) ([]int32, []uint64, int) {
	for len(x.shards) < nw {
		x.shards = append(x.shards, make([]int32, 0, 1024))
		x.shardBits = append(x.shardBits, make([]uint64, 0, 16))
	}
	for len(x.shardNP) < nw {
		x.shardNP = append(x.shardNP, 0)
	}
	w, h := x.gw, x.gh
	bounds := make([]int, nw+1)
	bounds[nw] = h
	row := 0
	for s := 1; s < nw; s++ {
		// Slab offsets approximate cumulative agent count well enough for
		// balancing (slack is uniform across cells).
		target := x.csrStarts[x.gw*x.gh] * int32(s) / int32(nw)
		for row < h && x.csrStarts[row*w] < target {
			row++
		}
		bounds[s] = row
	}
	// Gather first, scan second, with a barrier between: a strip's stencil
	// reads its boundary row's southern neighbours, which another strip's
	// gather owns, so the mirror must be complete before any strip scans.
	var wg sync.WaitGroup
	for s := 0; s < nw; s++ {
		rowLo, rowHi := bounds[s], bounds[s+1]
		if rowLo >= rowHi {
			continue
		}
		wg.Add(1)
		go func(rowLo, rowHi int) {
			defer wg.Done()
			x.gatherScan(pos, rowLo, rowHi)
		}(rowLo, rowHi)
	}
	wg.Wait()
	for s := 0; s < nw; s++ {
		rowLo, rowHi := bounds[s], bounds[s+1]
		if rowLo >= rowHi {
			x.shards[s] = x.shards[s][:0]
			x.shardNP[s] = 0
			continue
		}
		wg.Add(1)
		go func(s, rowLo, rowHi int) {
			defer wg.Done()
			x.shards[s], x.shardBits[s], x.shardNP[s] =
				x.appendCandidates(r, rPad, rowLo, rowHi, x.shards[s][:0], x.shardBits[s][:0], 0)
		}(s, rowLo, rowHi)
	}
	wg.Wait()
	np := 0
	for s := 0; s < nw; s++ {
		out = append(out, x.shards[s]...)
		pass = appendBits(pass, np, x.shardBits[s], x.shardNP[s])
		np += x.shardNP[s]
	}
	return out, pass, np
}

// appendBits appends the first srcN bits of src onto dst, which currently
// holds dstN bits, returning the extended slice. Bits of src beyond srcN
// must be zero (the shard emitters only ever set real pair bits), so
// spill-over past the destination's final word is provably empty.
func appendBits(dst []uint64, dstN int, src []uint64, srcN int) []uint64 {
	if srcN == 0 {
		return dst
	}
	need := (dstN + srcN + 63) / 64
	for len(dst) < need {
		dst = append(dst, 0)
	}
	w, off := dstN>>6, uint(dstN&63)
	sw := (srcN + 63) / 64
	if off == 0 {
		copy(dst[w:w+sw], src[:sw])
		return dst
	}
	for i := 0; i < sw; i++ {
		dst[w+i] |= src[i] << off
		if w+i+1 < need {
			dst[w+i+1] = src[i] >> (64 - off)
		}
	}
	return dst
}

// recheck re-derives the pass bit of every cached pair on the frontier —
// pairs with at least one endpoint moved this step — reusing the cached
// bit for fully unmoved pairs, and replays all passing pairs into the
// reset forest. It reports whether any bit flipped (iff the partition may
// have changed). When most agents moved (the lazy walk moves half the
// population every step, putting ~3/4 of cached pairs on the frontier)
// the moved-mask test costs more than the distance checks it saves, so
// the frontier filter turns itself off.
func (x *Incremental) recheck(pos []grid.Point, r int) bool {
	useMask := 2*len(x.movedList) < x.k
	mask := x.movedMask
	if useMask {
		for _, i := range x.movedList {
			mask[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	x.sweepAll = false
	flipOn := x.flipOn[:0]
	pairs := x.pairs
	pass := x.passBits
	nPairs := len(pairs) / 2
	flips := 0
	d := x.dsu
	d.Reset()
	for pi := 0; pi < nPairs; pi++ {
		a, b := pairs[2*pi], pairs[2*pi+1]
		w, m := pi>>6, uint64(1)<<(uint(pi)&63)
		if useMask &&
			mask[a>>6]&(1<<(uint(a)&63)) == 0 &&
			mask[b>>6]&(1<<(uint(b)&63)) == 0 {
			if pass[w]&m != 0 {
				d.Union(int(a), int(b))
			}
			continue
		}
		now := grid.ManhattanPoints(pos[a], pos[b]) <= r
		if now != (pass[w]&m != 0) {
			pass[w] ^= m
			flips++
			if now {
				flipOn = append(flipOn, a, b)
			}
		}
		if now {
			d.Union(int(a), int(b))
		}
	}
	if useMask {
		for _, i := range x.movedList {
			mask[i>>6] = 0
		}
	}
	x.flipOn = flipOn
	return flips > 0
}

// labelPass assigns the dense first-appearance labels from the current
// forest — the same deterministic pass as the full path, so equal
// partitions yield equal labels.
func (x *Incremental) labelPass() {
	k := x.k
	x.count = x.dsu.DenseLabels(x.labels[:k], x.rootLabel[:k])
	x.labelsClean = true
}
