package visibility

// Differential harness for the incremental connectivity kernel: the
// incremental path (sequential and parallel) must produce labels and
// informed bitsets byte-identical to the retained full-rebuild path, every
// step, across all five mobility models and the paper-relevant radii. It
// extends the crosscheck property test (which pins the full path against
// the O(k²) brute force) one level up the stack: brute force proves the
// reference, this harness proves the kernel against the reference, and
// periodic brute-force spot checks close the loop.
//
// Churn matters as much as smooth motion: the pair cache's drift
// certificate and the window re-anchor only fire on large displacements,
// so the run teleports agents mid-stream — the trace-replay model's loop
// wrap provides natural teleports, and explicit mid-run scatters hit every
// model — and verifies the kernel recovers bit-exactly.

import (
	"fmt"
	"testing"

	"mobilenet/internal/bitset"
	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/rng"
)

// checkInternalState is the white-box oracle shared by the differential
// harness and the fuzz targets: it verifies the loose-CSR and pair-cache
// invariants of an incremental-mode kernel against a from-scratch
// recomputation over the current positions. It returns nil when the kernel
// holds no incremental state (full mode, trivial regimes, never stepped).
func (x *Incremental) checkInternalState(pos []grid.Point) error {
	if x.fullMode || !x.valid || x.k != len(pos) || x.k < 2 || x.r < 0 {
		return nil
	}
	k := x.k
	for i := 0; i < k; i++ {
		if x.prevPos[i] != pos[i] {
			return fmt.Errorf("agent %d: prevPos %v != pos %v", i, x.prevPos[i], pos[i])
		}
	}
	numCells := x.gw * x.gh
	// Dirty-cell CSR: cellOf matches the geometry, slots round-trip, and
	// per-cell membership equals a recount.
	liveSeen := 0
	for i := 0; i < k; i++ {
		p := pos[i]
		c := int32(uint32(p.Y-x.minY)>>x.shift)*int32(x.gw) + int32(uint32(p.X-x.minX)>>x.shift)
		if c < 0 || int(c) >= numCells {
			return fmt.Errorf("agent %d: cell %d outside bucket grid %dx%d", i, c, x.gw, x.gh)
		}
		if x.cellOf[i] != c {
			return fmt.Errorf("agent %d: cellOf %d, geometry says %d", i, x.cellOf[i], c)
		}
		// Slot round-trips are only an invariant of a live layout: once a
		// bucket overflow marks the CSR stale, surgery stops and only cellOf
		// (checked above, always) tracks geometry until the next rescan
		// relays the slabs out.
		if x.csrStale {
			continue
		}
		s := x.slotOf[i]
		if s < x.csrStarts[c] || s >= x.csrStarts[c]+x.csrCount[c] {
			return fmt.Errorf("agent %d: slot %d outside live range of cell %d", i, s, c)
		}
		if x.csrOrder[s] != int32(i) {
			return fmt.Errorf("agent %d: slot %d holds agent %d", i, s, x.csrOrder[s])
		}
	}
	if !x.csrStale {
		for c := 0; c < numCells; c++ {
			liveSeen += int(x.csrCount[c])
			if x.csrCount[c]+cellSlack > x.csrStarts[c+1]-x.csrStarts[c] {
				// Capacity may be tighter than count+slack only for cells laid
				// out before members left; it must never be exceeded.
				if x.csrCount[c] > x.csrStarts[c+1]-x.csrStarts[c] {
					return fmt.Errorf("cell %d: count %d exceeds capacity %d",
						c, x.csrCount[c], x.csrStarts[c+1]-x.csrStarts[c])
				}
			}
		}
		if liveSeen != k {
			return fmt.Errorf("CSR holds %d live members for %d agents", liveSeen, k)
		}
	}
	// Pair cache: no duplicates, pass bits exact, and every true edge
	// cached with its bit set (candidate completeness).
	type pk struct{ a, b int32 }
	cached := make(map[pk]bool, len(x.pairs)/2)
	for pi := 0; pi < len(x.pairs)/2; pi++ {
		a, b := x.pairs[2*pi], x.pairs[2*pi+1]
		if a > b {
			a, b = b, a
		}
		key := pk{a, b}
		if _, dup := cached[key]; dup {
			return fmt.Errorf("pair (%d,%d) cached twice", a, b)
		}
		pass := x.passBits[pi>>6]&(1<<(uint(pi)&63)) != 0
		if want := grid.ManhattanPoints(pos[a], pos[b]) <= x.r; pass != want {
			return fmt.Errorf("pair (%d,%d): pass bit %v, distance says %v", a, b, pass, want)
		}
		cached[key] = true
	}
	for a := int32(0); a < int32(k); a++ {
		for b := a + 1; b < int32(k); b++ {
			if grid.ManhattanPoints(pos[a], pos[b]) <= x.r && !cached[pk{a, b}] {
				return fmt.Errorf("edge (%d,%d) at distance %d not in pair cache (r=%d, pad=%d, remain=%d)",
					a, b, grid.ManhattanPoints(pos[a], pos[b]), x.r, x.pad, x.remain)
			}
		}
	}
	return nil
}

// diffVariant is one kernel under test plus its informed set.
type diffVariant struct {
	name     string
	x        *Incremental
	informed *bitset.Set
	newly    []int32
}

func newDiffVariant(name string, k, par int, fullRebuild bool) *diffVariant {
	x := NewIncremental(k)
	x.SetParallelism(par)
	x.SetFullRebuild(fullRebuild)
	v := &diffVariant{name: name, x: x, informed: bitset.New(k)}
	v.informed.Add(0) // agent 0 is the rumor source throughout
	return v
}

func TestDifferentialIncrementalVsFullRebuild(t *testing.T) {
	t.Parallel()
	const side, k, steps = 48, 150, 256
	g := grid.MustNew(side)
	// A short looping trace wraps twice within the run, teleporting every
	// agent back to its recorded start mid-stream.
	models := []mobility.Model{
		mobility.LazyWalk{},
		mobility.RandomWaypoint{Pause: 1},
		mobility.LevyFlight{},
		mobility.Ballistic{},
		mobility.TraceReplay{Trace: recordModelTrace(t, g, k, 100, 1789), Loop: true},
	}
	for _, m := range models {
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			st, err := m.Bind(g, k, rng.New(20110601))
			if err != nil {
				t.Fatal(err)
			}
			pos := make([]grid.Point, k)
			st.Place(pos)
			churnSrc := rng.New(9899)

			type radiusSet struct {
				r        int
				ref      *diffVariant // retained full-rebuild path
				variants []*diffVariant
			}
			sets := make([]*radiusSet, len(crossCheckRadii))
			for ri, r := range crossCheckRadii {
				sets[ri] = &radiusSet{
					r:   r,
					ref: newDiffVariant("full", k, 1, true),
					variants: []*diffVariant{
						newDiffVariant("inc-seq", k, 1, false),
						newDiffVariant("inc-par", k, 3, false),
					},
				}
			}

			refLabels := make([]int32, k)
			for s := 0; s <= steps; s++ {
				if s > 0 {
					st.Step(pos)
					if s == 85 || s == 170 {
						// Mid-run churn: scatter an eighth of the agents to
						// fresh uniform positions, stressing budget blowout
						// and dirty-cell surgery in one step.
						for c := 0; c < k/8; c++ {
							i := churnSrc.Intn(k)
							pos[i] = grid.Point{X: int32(churnSrc.Intn(side)), Y: int32(churnSrc.Intn(side))}
						}
					}
				}
				for _, rs := range sets {
					wl, wc := rs.ref.x.Components(pos, rs.r)
					copy(refLabels, wl)
					for _, v := range rs.variants {
						gl, gc := v.x.Components(pos, rs.r)
						if gc != wc {
							t.Fatalf("t=%d r=%d %s: count %d, full %d", s, rs.r, v.name, gc, wc)
						}
						for i := 0; i < k; i++ {
							if gl[i] != refLabels[i] {
								t.Fatalf("t=%d r=%d %s agent %d: label %d, full %d",
									s, rs.r, v.name, i, gl[i], refLabels[i])
							}
						}
						if err := v.x.checkInternalState(pos); err != nil {
							t.Fatalf("t=%d r=%d %s: internal state: %v", s, rs.r, v.name, err)
						}
					}
					// Spot-check the reference itself against brute force at
					// a coarse cadence (the crosscheck test owns the dense
					// version of this assertion).
					if s%64 == 0 {
						bl, bc := bruteComponents(pos, rs.r)
						if bc != wc {
							t.Fatalf("t=%d r=%d: full count %d, brute %d", s, rs.r, wc, bc)
						}
						for i := range bl {
							if int(refLabels[i]) != bl[i] {
								t.Fatalf("t=%d r=%d agent %d: full label %d, brute %d",
									s, rs.r, i, refLabels[i], bl[i])
							}
						}
					}
					// Informed-set differential: flood every variant and
					// require byte-identical growth.
					rs.ref.newly = rs.ref.x.Flood(pos, rs.r, rs.ref.informed, rs.ref.newly[:0])
					for _, v := range rs.variants {
						v.newly = v.x.Flood(pos, rs.r, v.informed, v.newly[:0])
						if len(v.newly) != len(rs.ref.newly) {
							t.Fatalf("t=%d r=%d %s: %d newly informed, full %d",
								s, rs.r, v.name, len(v.newly), len(rs.ref.newly))
						}
						for i := range v.newly {
							if v.newly[i] != rs.ref.newly[i] {
								t.Fatalf("t=%d r=%d %s: newly[%d]=%d, full %d",
									s, rs.r, v.name, i, v.newly[i], rs.ref.newly[i])
							}
						}
						if !v.informed.Equal(rs.ref.informed) {
							t.Fatalf("t=%d r=%d %s: informed set diverged from full path", s, rs.r, v.name)
						}
					}
				}
			}
		})
	}
}

// TestFloodWithLabelsMatchesFlood pins the two spread primitives to each
// other on the engines' exact interleaving: on "observed" steps an engine
// labels first and floods through FloodWithLabels; on plain steps it calls
// Flood. Both orders must grow the informed set identically.
func TestFloodWithLabelsMatchesFlood(t *testing.T) {
	t.Parallel()
	const side, k, steps, r = 32, 120, 96, 2
	g := grid.MustNew(side)
	st, err := mobility.LazyWalk{}.Bind(g, k, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]grid.Point, k)
	st.Place(pos)

	viaFlood := newDiffVariant("flood", k, 1, false)
	viaLabels := newDiffVariant("labels", k, 1, false)
	for s := 0; s <= steps; s++ {
		if s > 0 {
			st.Step(pos)
		}
		viaFlood.newly = viaFlood.x.Flood(pos, r, viaFlood.informed, viaFlood.newly[:0])
		labels, count := viaLabels.x.Components(pos, r)
		viaLabels.newly = viaLabels.x.FloodWithLabels(labels, count, viaLabels.informed, viaLabels.newly[:0])
		if !viaFlood.informed.Equal(viaLabels.informed) {
			t.Fatalf("t=%d: Flood and Components+FloodWithLabels diverged", s)
		}
		if len(viaFlood.newly) != len(viaLabels.newly) {
			t.Fatalf("t=%d: newly lists differ: %d vs %d", s, len(viaFlood.newly), len(viaLabels.newly))
		}
	}
	if viaFlood.informed.Len() != k {
		t.Fatalf("flood never completed: %d of %d informed", viaFlood.informed.Len(), k)
	}
}
