package visibility

import (
	"testing"
	"testing/quick"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/walk"
)

// pt builds a grid.Point tersely for test fixtures.
func pt(x, y int32) grid.Point { return grid.Point{X: x, Y: y} }

// bruteComponents computes component labels by Floyd-Warshall-style
// transitive closure, the obviously-correct reference.
func bruteComponents(pos []grid.Point, r int) ([]int, int) {
	k := len(pos)
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			x = parent[x]
		}
		return x
	}
	if r >= 0 {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if grid.ManhattanPoints(pos[i], pos[j]) <= r {
					ri, rj := find(i), find(j)
					if ri != rj {
						parent[ri] = rj
					}
				}
			}
		}
	}
	labels := make([]int, k)
	index := map[int]int{}
	for i := 0; i < k; i++ {
		root := find(i)
		l, ok := index[root]
		if !ok {
			l = len(index)
			index[root] = l
		}
		labels[i] = l
	}
	return labels, len(index)
}

func sameGrouping(a []int32, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a {
			if (a[i] == a[j]) != (b[i] == b[j]) {
				return false
			}
		}
	}
	return true
}

func TestComponentsAgainstBruteForce(t *testing.T) {
	t.Parallel()
	src := rng.New(1)
	l := NewLabeller(40)
	for trial := 0; trial < 50; trial++ {
		k := 1 + src.Intn(40)
		pos := make([]grid.Point, k)
		for i := range pos {
			pos[i] = grid.Point{X: int32(src.Intn(32)), Y: int32(src.Intn(32))}
		}
		for _, r := range []int{0, 1, 2, 3, 5, 8, 64} {
			labels, count := l.Components(pos, r)
			want, wantCount := bruteComponents(pos, r)
			if count != wantCount {
				t.Fatalf("trial %d r=%d: count %d, want %d", trial, r, count, wantCount)
			}
			if !sameGrouping(labels, want) {
				t.Fatalf("trial %d r=%d: grouping mismatch\npos=%v\ngot=%v\nwant=%v",
					trial, r, pos, labels, want)
			}
		}
	}
}

func TestComponentsR0CoLocation(t *testing.T) {
	t.Parallel()
	pos := []grid.Point{pt(3, 3), pt(3, 3), pt(4, 3), pt(3, 3), pt(9, 9)}
	l := NewLabeller(len(pos))
	labels, count := l.Components(pos, 0)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[3] {
		t.Error("co-located agents not grouped")
	}
	if labels[0] == labels[2] || labels[0] == labels[4] || labels[2] == labels[4] {
		t.Error("distinct nodes grouped at r=0")
	}
}

func TestComponentsNegativeRadius(t *testing.T) {
	t.Parallel()
	pos := []grid.Point{pt(1, 1), pt(1, 1), pt(1, 1)}
	l := NewLabeller(3)
	labels, count := l.Components(pos, -1)
	if count != 3 {
		t.Fatalf("negative radius: count = %d, want all singletons", count)
	}
	if labels[0] == labels[1] || labels[1] == labels[2] {
		t.Error("negative radius connected agents")
	}
}

func TestComponentsChainTransitivity(t *testing.T) {
	t.Parallel()
	// Chain of agents spaced exactly r apart: all one component even though
	// the endpoints are far apart.
	pos := []grid.Point{pt(0, 0), pt(2, 0), pt(4, 0), pt(6, 0), pt(8, 0)}
	l := NewLabeller(len(pos))
	_, count := l.Components(pos, 2)
	if count != 1 {
		t.Fatalf("chain with spacing=r: %d components, want 1", count)
	}
	// Spacing r+1 disconnects everything.
	_, count = l.Components(pos, 1)
	if count != len(pos) {
		t.Fatalf("chain with spacing>r: %d components, want %d", count, len(pos))
	}
}

func TestComponentsExactManhattanBoundary(t *testing.T) {
	t.Parallel()
	// Diagonal pair at Manhattan distance 2 (Chebyshev 1): connected at
	// r=2, not at r=1. This distinguishes Manhattan from Chebyshev.
	pos := []grid.Point{pt(5, 5), pt(6, 6)}
	l := NewLabeller(2)
	if _, count := l.Components(pos, 2); count != 1 {
		t.Error("diagonal pair at L1 distance 2 not connected at r=2")
	}
	if _, count := l.Components(pos, 1); count != 2 {
		t.Error("diagonal pair at L1 distance 2 connected at r=1")
	}
}

func TestComponentsSingleAndEmpty(t *testing.T) {
	t.Parallel()
	l := NewLabeller(4)
	labels, count := l.Components([]grid.Point{pt(0, 0)}, 5)
	if count != 1 || labels[0] != 0 {
		t.Errorf("single agent: labels=%v count=%d", labels, count)
	}
	labels, count = l.Components(nil, 3)
	if count != 0 || len(labels) != 0 {
		t.Errorf("empty: labels=%v count=%d", labels, count)
	}
}

func TestLabellerRegrows(t *testing.T) {
	t.Parallel()
	l := NewLabeller(2)
	pos := make([]grid.Point, 50)
	for i := range pos {
		pos[i] = grid.Point{X: int32(i), Y: 0}
	}
	labels, count := l.Components(pos, 1)
	if count != 1 {
		t.Fatalf("regrown labeller: count=%d, want 1", count)
	}
	if len(labels) != 50 {
		t.Fatalf("labels length %d", len(labels))
	}
}

func TestLabelsDeterministicOrder(t *testing.T) {
	t.Parallel()
	pos := []grid.Point{pt(9, 9), pt(0, 0), pt(9, 9), pt(1, 0)}
	l := NewLabeller(len(pos))
	labels, _ := l.Components(pos, 1)
	// First appearance order: agent0 gets label 0, agent1 label 1, agent2
	// joins agent0, agent3 joins agent1.
	if labels[0] != 0 || labels[1] != 1 || labels[2] != 0 || labels[3] != 1 {
		t.Errorf("labels = %v, want [0 1 0 1]", labels)
	}
}

func TestReusedLabellerMatchesFresh(t *testing.T) {
	t.Parallel()
	src := rng.New(9)
	reused := NewLabeller(30)
	for trial := 0; trial < 30; trial++ {
		k := 1 + src.Intn(30)
		pos := make([]grid.Point, k)
		for i := range pos {
			pos[i] = grid.Point{X: int32(src.Intn(16)), Y: int32(src.Intn(16))}
		}
		r := src.Intn(4)
		fresh := NewLabeller(k)
		gotL, gotC := reused.Components(pos, r)
		gotCopy := make([]int32, len(gotL))
		copy(gotCopy, gotL)
		wantL, wantC := fresh.Components(pos, r)
		if gotC != wantC {
			t.Fatalf("trial %d: reused count %d != fresh %d", trial, gotC, wantC)
		}
		for i := range wantL {
			if gotCopy[i] != wantL[i] {
				t.Fatalf("trial %d: label[%d] %d != %d", trial, i, gotCopy[i], wantL[i])
			}
		}
	}
}

// TestParallelMatchesSequential pins the parallel labelling contract:
// whatever worker count is forced, the returned label slice is bit-for-bit
// identical to the sequential path's, across population sizes that land on
// either side of every strip boundary.
func TestParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	src := rng.New(77)
	seq := NewLabeller(1)
	seq.SetParallelism(1)
	for _, p := range []int{2, 3, 8, 64} {
		par := NewLabeller(1)
		par.SetParallelism(p)
		for trial := 0; trial < 40; trial++ {
			k := 1 + src.Intn(500)
			side := 8 + src.Intn(120)
			pos := make([]grid.Point, k)
			for i := range pos {
				pos[i] = grid.Point{X: int32(src.Intn(side)), Y: int32(src.Intn(side))}
			}
			for _, r := range []int{-1, 0, 1, 3, 9} {
				want, wantC := seq.Components(pos, r)
				wantCopy := append([]int32(nil), want...)
				got, gotC := par.Components(pos, r)
				if gotC != wantC {
					t.Fatalf("p=%d trial=%d r=%d: count %d != sequential %d", p, trial, r, gotC, wantC)
				}
				for i := range wantCopy {
					if got[i] != wantCopy[i] {
						t.Fatalf("p=%d trial=%d r=%d: label[%d] = %d, sequential %d",
							p, trial, r, i, got[i], wantCopy[i])
					}
				}
			}
		}
	}
}

// TestSetParallelismNeverChangesResults drives one labeller through
// alternating parallelism settings mid-life, the way a reused engine
// labeller would see them, and checks against brute force throughout.
func TestSetParallelismNeverChangesResults(t *testing.T) {
	t.Parallel()
	src := rng.New(31)
	l := NewLabeller(64)
	for trial := 0; trial < 30; trial++ {
		l.SetParallelism(trial % 5) // cycles auto, 1, 2, 3, 4
		k := 2 + src.Intn(64)
		pos := make([]grid.Point, k)
		for i := range pos {
			pos[i] = grid.Point{X: int32(src.Intn(40)), Y: int32(src.Intn(40))}
		}
		r := src.Intn(6)
		labels, count := l.Components(pos, r)
		want, wantCount := bruteComponents(pos, r)
		if count != wantCount || !sameGrouping(labels, want) {
			t.Fatalf("trial %d (par=%d) r=%d: mismatch vs brute force", trial, trial%5, r)
		}
	}
}

// TestComponentsSteadyStateAllocs pins the zero-allocation guarantee the
// package doc makes for the sequential hot path — and with it the fix for
// the old bucket pool's unbounded retention: the CSR index owns exactly one
// order slice and one offset slice, both sized O(k), so a one-off dense
// step can no longer pin memory beyond that.
func TestComponentsSteadyStateAllocs(t *testing.T) {
	src := rng.New(12)
	const k = 2048
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(256)), Y: int32(src.Intn(256))}
	}
	l := NewLabeller(k)
	l.Components(pos, 8) // warm up: first call may size the offset array
	for _, r := range []int{0, 1, 8} {
		allocs := testing.AllocsPerRun(20, func() {
			l.Components(pos, r)
		})
		if allocs != 0 {
			t.Errorf("r=%d: %v allocs per steady-state Components call, want 0", r, allocs)
		}
	}

	// The incremental kernel carries the same pledge, on both of its
	// steady-state paths: repeated calls with unchanged positions (empty
	// moved set, cached labels) and stepped positions under the lazy walk
	// (cell surgery plus frontier recheck, with periodic in-capacity
	// rescans as the drift budget runs out).
	for _, r := range []int{0, 1, 8} {
		inc := NewIncremental(k)
		inc.Components(pos, r)
		allocs := testing.AllocsPerRun(20, func() {
			inc.Components(pos, r)
		})
		if allocs != 0 {
			t.Errorf("r=%d: %v allocs per static incremental call, want 0", r, allocs)
		}
	}
	g := grid.MustNew(256)
	walkSrc := rng.New(77)
	buf := make([]uint64, 0, k)
	stepped := NewIncremental(k)
	for warm := 0; warm < 32; warm++ {
		// Warm past the pair-cache high-water mark so measured rescans
		// reuse capacity.
		walk.StepAll(g, pos, buf, walkSrc)
		stepped.Components(pos, 8)
	}
	allocs := testing.AllocsPerRun(20, func() {
		walk.StepAll(g, pos, buf, walkSrc)
		stepped.Components(pos, 8)
	})
	if allocs != 0 {
		t.Errorf("%v allocs per stepped incremental call, want 0", allocs)
	}
}

// TestComponentsCoarsenedCells forces the cell-coarsening path: positions
// spread over a span vastly larger than the population would normally
// occupy, so the bucket grid must cap its resolution and fall back to
// coarser cells without losing pairs (including the r=0 equality groups).
func TestComponentsCoarsenedCells(t *testing.T) {
	t.Parallel()
	src := rng.New(8)
	l := NewLabeller(64)
	for trial := 0; trial < 20; trial++ {
		k := 2 + src.Intn(48)
		pos := make([]grid.Point, k)
		for i := range pos {
			// Half the agents cluster near the origin, half scatter across
			// a ~100k-wide span; duplicates for the r=0 groups.
			switch src.Intn(3) {
			case 0:
				pos[i] = grid.Point{X: int32(src.Intn(6)), Y: int32(src.Intn(6))}
			case 1:
				pos[i] = grid.Point{X: int32(src.Intn(100000)), Y: int32(src.Intn(100000))}
			default:
				pos[i] = pos[src.Intn(i+1)]
			}
		}
		for _, r := range []int{0, 2, 7} {
			labels, count := l.Components(pos, r)
			want, wantCount := bruteComponents(pos, r)
			if count != wantCount || !sameGrouping(labels, want) {
				t.Fatalf("trial %d r=%d: coarsened grid mismatch vs brute force", trial, r)
			}
		}
	}
}

func TestFloorRadius(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   float64
		want int
	}{
		{0, 0}, {0.9, 0}, {1, 1}, {2.7, 2}, {15.999, 15}, {-0.5, -1},
	}
	for _, tc := range cases {
		if got := FloorRadius(tc.in); got != tc.want {
			t.Errorf("FloorRadius(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSizesAndMaxSize(t *testing.T) {
	t.Parallel()
	labels := []int32{0, 1, 0, 2, 0, 1}
	sizes := Sizes(labels, 3, nil)
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Errorf("Sizes = %v", sizes)
	}
	if got := MaxSize(labels, 3); got != 3 {
		t.Errorf("MaxSize = %d, want 3", got)
	}
	if got := MaxSize(nil, 0); got != 0 {
		t.Errorf("MaxSize(empty) = %d", got)
	}
	// Buffer reuse path.
	buf := make([]int32, 0, 8)
	sizes2 := Sizes(labels, 3, buf)
	if len(sizes2) != 3 || sizes2[0] != 3 {
		t.Errorf("Sizes with buffer = %v", sizes2)
	}
}

// Property: labelling agrees with brute force on random configurations.
func TestQuickComponentsCorrect(t *testing.T) {
	t.Parallel()
	l := NewLabeller(16)
	f := func(raw []uint16, rRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		pos := make([]grid.Point, len(raw))
		for i, v := range raw {
			pos[i] = grid.Point{X: int32(v % 24), Y: int32((v >> 8) % 24)}
		}
		r := int(rRaw % 8)
		labels, count := l.Components(pos, r)
		want, wantCount := bruteComponents(pos, r)
		return count == wantCount && sameGrouping(labels, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkComponentsSparse(b *testing.B) {
	src := rng.New(1)
	const k = 256
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(128)), Y: int32(src.Intn(128))}
	}
	l := NewLabeller(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Components(pos, 8) // r near percolation for n=16384, k=256
	}
}

func BenchmarkComponentsR0(b *testing.B) {
	src := rng.New(1)
	const k = 256
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(128)), Y: int32(src.Intn(128))}
	}
	l := NewLabeller(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Components(pos, 0)
	}
}
