package trace

import (
	"bytes"
	"strings"
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/walk"
)

func pt(x, y int32) grid.Point { return grid.Point{X: x, Y: y} }

func TestNewRecorderValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewRecorder(0, []grid.Point{pt(0, 0)}); err == nil {
		t.Error("side=0 accepted")
	}
	if _, err := NewRecorder(4, nil); err == nil {
		t.Error("no agents accepted")
	}
	if _, err := NewRecorder(4, []grid.Point{pt(4, 0)}); err == nil {
		t.Error("off-grid start accepted")
	}
	if _, err := NewRecorder(4, []grid.Point{pt(-1, 0)}); err == nil {
		t.Error("negative start accepted")
	}
}

func TestMoveApply(t *testing.T) {
	t.Parallel()
	p := pt(5, 5)
	cases := map[Move]grid.Point{
		Stay:  pt(5, 5),
		Left:  pt(4, 5),
		Right: pt(6, 5),
		Up:    pt(5, 4),
		Down:  pt(5, 6),
	}
	for m, want := range cases {
		if got := m.Apply(p); got != want {
			t.Errorf("%d.Apply = %v, want %v", m, got, want)
		}
	}
}

func TestRecordRejectsJumpsAndSizeMismatch(t *testing.T) {
	t.Parallel()
	r, err := NewRecorder(8, []grid.Point{pt(1, 1), pt(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Record([]grid.Point{pt(1, 1)}); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := r.Record([]grid.Point{pt(3, 3), pt(2, 2)}); err == nil {
		t.Error("diagonal jump accepted")
	}
	if r.Steps() != 0 {
		t.Errorf("failed records advanced steps to %d", r.Steps())
	}
	// A rejected record must not corrupt subsequent recording.
	if err := r.Record([]grid.Point{pt(1, 2), pt(2, 2)}); err != nil {
		t.Fatalf("valid record rejected after failure: %v", err)
	}
	if r.Steps() != 1 {
		t.Errorf("Steps = %d, want 1", r.Steps())
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	t.Parallel()
	// Drive a real population, record every step, then replay and compare.
	g := grid.MustNew(12)
	pop := newWalkPop(g, 6, rng.New(5))
	rec, err := NewRecorder(12, pop.Positions())
	if err != nil {
		t.Fatal(err)
	}
	history := [][]grid.Point{clonePos(pop.Positions())}
	const steps = 200
	for s := 0; s < steps; s++ {
		pop.Step()
		if err := rec.Record(pop.Positions()); err != nil {
			t.Fatal(err)
		}
		history = append(history, clonePos(pop.Positions()))
	}
	tr := rec.Trace()
	if tr.K() != 6 || tr.Steps() != steps || tr.Side() != 12 {
		t.Fatalf("trace shape: k=%d steps=%d side=%d", tr.K(), tr.Steps(), tr.Side())
	}
	rp := tr.Replay()
	for s := 0; s <= steps; s++ {
		for i, want := range history[s] {
			if got := rp.Positions()[i]; got != want {
				t.Fatalf("replay t=%d agent %d: %v != %v", s, i, got, want)
			}
		}
		advanced := rp.Step()
		if s < steps && !advanced {
			t.Fatalf("replay ended early at t=%d", s)
		}
		if s == steps && advanced {
			t.Fatal("replay advanced past the end")
		}
	}
}

func TestTraceImmutableAfterRecorderReuse(t *testing.T) {
	t.Parallel()
	r, err := NewRecorder(8, []grid.Point{pt(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Record([]grid.Point{pt(2, 1)}); err != nil {
		t.Fatal(err)
	}
	tr := r.Trace()
	// Further recording must not affect the frozen trace.
	if err := r.Record([]grid.Point{pt(2, 2)}); err != nil {
		t.Fatal(err)
	}
	if tr.Steps() != 1 {
		t.Errorf("frozen trace grew to %d steps", tr.Steps())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(10)
	pop := newWalkPop(g, 4, rng.New(7))
	rec, err := NewRecorder(10, pop.Positions())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 50; s++ {
		pop.Step()
		if err := rec.Record(pop.Positions()); err != nil {
			t.Fatal(err)
		}
	}
	tr := rec.Trace()

	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != tr.K() || back.Steps() != tr.Steps() || back.Side() != tr.Side() {
		t.Fatalf("shape mismatch after round trip")
	}
	// Replays must coincide exactly.
	r1, r2 := tr.Replay(), back.Replay()
	for {
		for i := range r1.Positions() {
			if r1.Positions()[i] != r2.Positions()[i] {
				t.Fatalf("replay mismatch at t=%d agent %d", r1.Time(), i)
			}
		}
		a1, a2 := r1.Step(), r2.Step()
		if a1 != a2 {
			t.Fatal("replay lengths differ")
		}
		if !a1 {
			break
		}
	}
}

func TestReadRejectsCorruptInputs(t *testing.T) {
	t.Parallel()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXX0123456789012345"),
		"truncated": append([]byte("MTR1"), 1, 0, 0),
		"zero side": mustBytes(t, 0, 1, 1),
		"zero k":    mustBytes(t, 4, 0, 1),
	}
	for name, data := range cases {
		name, data := name, data
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if _, err := Read(bytes.NewReader(data)); err == nil {
				t.Errorf("corrupt input %q accepted", name)
			}
		})
	}
}

func TestReadRejectsBadMoveByte(t *testing.T) {
	t.Parallel()
	// Valid header, one agent at (0,0), one step with move byte 9.
	var buf bytes.Buffer
	buf.WriteString("MTR1")
	writeU32 := func(v uint32) {
		var b [4]byte
		b[0] = byte(v)
		b[1] = byte(v >> 8)
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
		buf.Write(b[:])
	}
	writeU32(4) // side
	writeU32(1) // k
	writeU32(1) // steps
	writeU32(0) // x
	writeU32(0) // y
	buf.WriteByte(9)
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "invalid move") {
		t.Errorf("bad move byte: err = %v", err)
	}
}

func TestReadRejectsOffGridStart(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	buf.WriteString("MTR1")
	writeU32 := func(v uint32) {
		var b [4]byte
		b[0] = byte(v)
		b[1] = byte(v >> 8)
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
		buf.Write(b[:])
	}
	writeU32(4) // side
	writeU32(1) // k
	writeU32(0) // steps
	writeU32(7) // x off grid
	writeU32(0) // y
	if _, err := Read(&buf); err == nil {
		t.Error("off-grid start accepted")
	}
}

func mustBytes(t *testing.T, side, k, steps uint32) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("MTR1")
	for _, v := range []uint32{side, k, steps} {
		buf.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	}
	return buf.Bytes()
}

// walkPop drives k independent lazy walkers — a stand-in for an
// agent.Population, which these tests can no longer import: agent depends
// on mobility, which depends on this package.
type walkPop struct {
	g   *grid.Grid
	pos []grid.Point
	src *rng.Source
}

func newWalkPop(g *grid.Grid, k int, src *rng.Source) *walkPop {
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(g.Side())), Y: int32(src.Intn(g.Side()))}
	}
	return &walkPop{g: g, pos: pos, src: src}
}

func (p *walkPop) Step() {
	for i := range p.pos {
		p.pos[i] = walk.Step(p.g, p.pos[i], p.src)
	}
}

func (p *walkPop) Positions() []grid.Point { return p.pos }

func clonePos(pos []grid.Point) []grid.Point {
	out := make([]grid.Point, len(pos))
	copy(out, pos)
	return out
}

func BenchmarkRecord(b *testing.B) {
	g := grid.MustNew(64)
	pop := newWalkPop(g, 64, rng.New(1))
	rec, err := NewRecorder(64, pop.Positions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop.Step()
		if err := rec.Record(pop.Positions()); err != nil {
			b.Fatal(err)
		}
	}
}
