// Package trace records and replays agent trajectories. A Recorder
// captures the full position history of a population (delta-encoded: lazy
// walks move at most one step per tick, so each move fits in 3 bits); a
// Replayer feeds a recorded history back step by step. Traces serve three
// purposes: regression-testing determinism, debugging rare dissemination
// events by re-running the exact trajectory with more instrumentation, and
// exchanging workloads between tools via the compact binary encoding.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mobilenet/internal/grid"
)

// Move encodes one agent's displacement in one step.
type Move uint8

// Move values. Stay is the zero value.
const (
	Stay Move = iota
	Left
	Right
	Up   // decreasing Y
	Down // increasing Y
	numMoves
)

// Apply returns the point reached by taking the move from p. It does not
// clamp: recorded moves are valid by construction.
func (m Move) Apply(p grid.Point) grid.Point {
	switch m {
	case Left:
		p.X--
	case Right:
		p.X++
	case Up:
		p.Y--
	case Down:
		p.Y++
	}
	return p
}

// delta computes the move from a to b; ok is false when the displacement
// is not a unit step or stay.
func delta(a, b grid.Point) (Move, bool) {
	dx, dy := b.X-a.X, b.Y-a.Y
	switch {
	case dx == 0 && dy == 0:
		return Stay, true
	case dx == -1 && dy == 0:
		return Left, true
	case dx == 1 && dy == 0:
		return Right, true
	case dx == 0 && dy == -1:
		return Up, true
	case dx == 0 && dy == 1:
		return Down, true
	default:
		return Stay, false
	}
}

// Recorder accumulates a trajectory trace for k agents.
type Recorder struct {
	side  int
	start []grid.Point
	prev  []grid.Point
	moves []Move // k moves per recorded step, concatenated
	steps int
}

// NewRecorder starts a trace from the given initial positions on a grid of
// the given side. The positions are copied.
func NewRecorder(side int, initial []grid.Point) (*Recorder, error) {
	if side <= 0 {
		return nil, fmt.Errorf("trace: side must be positive, got %d", side)
	}
	if len(initial) == 0 {
		return nil, errors.New("trace: no agents")
	}
	for i, p := range initial {
		if p.X < 0 || p.Y < 0 || int(p.X) >= side || int(p.Y) >= side {
			return nil, fmt.Errorf("trace: agent %d starts off-grid at %v", i, p)
		}
	}
	start := make([]grid.Point, len(initial))
	copy(start, initial)
	prev := make([]grid.Point, len(initial))
	copy(prev, initial)
	return &Recorder{side: side, start: start, prev: prev}, nil
}

// K returns the number of agents.
func (r *Recorder) K() int { return len(r.start) }

// Steps returns the number of recorded steps.
func (r *Recorder) Steps() int { return r.steps }

// Record appends one synchronized step given the new positions of all
// agents. It rejects position sets of the wrong size or with non-unit
// displacements.
func (r *Recorder) Record(pos []grid.Point) error {
	if len(pos) != len(r.prev) {
		return fmt.Errorf("trace: got %d positions, want %d", len(pos), len(r.prev))
	}
	base := len(r.moves)
	r.moves = append(r.moves, make([]Move, len(pos))...)
	for i, p := range pos {
		m, ok := delta(r.prev[i], p)
		if !ok {
			r.moves = r.moves[:base]
			return fmt.Errorf("trace: agent %d jumped %v -> %v", i, r.prev[i], p)
		}
		r.moves[base+i] = m
	}
	copy(r.prev, pos)
	r.steps++
	return nil
}

// Trace freezes the recording into an immutable, replayable trace.
func (r *Recorder) Trace() *Trace {
	moves := make([]Move, len(r.moves))
	copy(moves, r.moves)
	start := make([]grid.Point, len(r.start))
	copy(start, r.start)
	return &Trace{side: r.side, start: start, moves: moves, steps: r.steps}
}

// Trace is an immutable recorded trajectory set.
type Trace struct {
	side  int
	start []grid.Point
	moves []Move
	steps int
}

// K returns the number of agents.
func (t *Trace) K() int { return len(t.start) }

// Steps returns the number of steps.
func (t *Trace) Steps() int { return t.steps }

// Side returns the grid side the trace was recorded on.
func (t *Trace) Side() int { return t.side }

// Start returns the recorded initial position of agent i.
func (t *Trace) Start(i int) grid.Point { return t.start[i] }

// MoveAt returns agent i's recorded move at the given step (0-based). It
// exists so trace-driven consumers (the mobility.TraceReplay model) can
// advance agents on independent clocks, which a Replayer's single shared
// clock cannot express.
func (t *Trace) MoveAt(step, i int) Move { return t.moves[step*len(t.start)+i] }

// Replayer walks through a trace step by step.
type Replayer struct {
	t   *Trace
	pos []grid.Point
	at  int
}

// Replay starts a replay at time 0.
func (t *Trace) Replay() *Replayer {
	pos := make([]grid.Point, len(t.start))
	copy(pos, t.start)
	return &Replayer{t: t, pos: pos}
}

// Positions returns the current positions; the slice is owned by the
// replayer and must not be modified.
func (r *Replayer) Positions() []grid.Point { return r.pos }

// Time returns the current replay time.
func (r *Replayer) Time() int { return r.at }

// Step advances the replay one step; it reports false at the end of the
// trace.
func (r *Replayer) Step() bool {
	if r.at >= r.t.steps {
		return false
	}
	base := r.at * len(r.pos)
	for i := range r.pos {
		r.pos[i] = r.t.moves[base+i].Apply(r.pos[i])
	}
	r.at++
	return true
}

// Binary format:
//
//	magic "MTR1" | uint32 side | uint32 k | uint32 steps
//	k * (uint32 x, uint32 y) start positions
//	steps*k moves, 1 byte each (values 0..4)
//
// The byte-per-move layout favours simplicity over maximal density; traces
// compress extremely well with any general-purpose compressor if needed.
var magic = [4]byte{'M', 'T', 'R', '1'}

// WriteTo serialises the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.Write(magic[:])); err != nil {
		return n, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(t.side))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(t.start)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.steps))
	if err := count(bw.Write(hdr[:])); err != nil {
		return n, err
	}
	var pt [8]byte
	for _, p := range t.start {
		binary.LittleEndian.PutUint32(pt[0:], uint32(p.X))
		binary.LittleEndian.PutUint32(pt[4:], uint32(p.Y))
		if err := count(bw.Write(pt[:])); err != nil {
			return n, err
		}
	}
	for _, m := range t.moves {
		if err := bw.WriteByte(byte(m)); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// Read deserialises a trace written by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	side := int(binary.LittleEndian.Uint32(hdr[0:]))
	k := int(binary.LittleEndian.Uint32(hdr[4:]))
	steps := int(binary.LittleEndian.Uint32(hdr[8:]))
	if side <= 0 || k <= 0 || steps < 0 {
		return nil, fmt.Errorf("trace: invalid header side=%d k=%d steps=%d", side, k, steps)
	}
	const maxMoves = 1 << 30
	if int64(k)*int64(steps) > maxMoves {
		return nil, fmt.Errorf("trace: trace too large (%d moves)", int64(k)*int64(steps))
	}
	start := make([]grid.Point, k)
	var pt [8]byte
	for i := range start {
		if _, err := io.ReadFull(br, pt[:]); err != nil {
			return nil, fmt.Errorf("trace: reading start positions: %w", err)
		}
		start[i] = grid.Point{
			X: int32(binary.LittleEndian.Uint32(pt[0:])),
			Y: int32(binary.LittleEndian.Uint32(pt[4:])),
		}
		if start[i].X < 0 || int(start[i].X) >= side || start[i].Y < 0 || int(start[i].Y) >= side {
			return nil, fmt.Errorf("trace: start position %v off-grid (side %d)", start[i], side)
		}
	}
	moves := make([]Move, k*steps)
	buf := make([]byte, 4096)
	for off := 0; off < len(moves); {
		want := len(moves) - off
		if want > len(buf) {
			want = len(buf)
		}
		got, err := io.ReadFull(br, buf[:want])
		if err != nil {
			return nil, fmt.Errorf("trace: reading moves: %w", err)
		}
		for i := 0; i < got; i++ {
			if buf[i] >= byte(numMoves) {
				return nil, fmt.Errorf("trace: invalid move byte %d", buf[i])
			}
			moves[off+i] = Move(buf[i])
		}
		off += got
	}
	return &Trace{side: side, start: start, moves: moves, steps: steps}, nil
}
