// Package unionfind implements a disjoint-set union (DSU) structure using
// Rem's algorithm with splicing over index-ordered parents. The simulator
// rebuilds the connected components of the visibility graph G_t(r) at every
// time step, so the structure is designed for cheap bulk Reset, fast
// edge-list replay, and zero allocation after construction.
//
// The parent array maintains the invariant parent[x] <= x (every link
// points to a smaller index, so the canonical representative of a set is
// its minimum element). Rem's union interleaves the two walks and splices
// each visited node directly toward the other side's parent, compressing
// paths as a side effect of the union itself; on the visibility workload's
// quasi-spatially-ordered edge lists it is measurably faster than the
// classic find-find-link with union by rank it replaced. The index-ordered
// invariant additionally allows CompressAll to flatten the whole forest in
// one ascending sequential pass, which the labellers' dense label passes
// exploit. Which element roots a set is an internal detail either way:
// callers observe only the partition, and component labels are assigned by
// first appearance, so the link-rule change is invisible in outputs.
package unionfind

// DSU is a disjoint-set forest over elements [0, n). The zero value is an
// empty forest; use New to create one with elements.
type DSU struct {
	parent []int32
	sets   int
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	d := &DSU{parent: make([]int32, n)}
	d.Reset()
	return d
}

// Reset restores every element to its own singleton set, retaining the
// allocated capacity.
func (d *DSU) Reset() {
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	d.sets = len(d.parent)
}

// Len returns the number of elements in the universe.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the canonical representative of x's set, applying path
// halving as it walks. Halving preserves the parent[x] <= x invariant:
// it only ever rewrites a parent to a still-smaller ancestor.
func (d *DSU) Find(x int) int {
	p := d.parent
	for p[x] != int32(x) {
		p[x] = p[p[x]] // path halving
		x = int(p[x])
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already in the same set). This is Rem's
// algorithm: walk both parent chains toward the common ancestor, always
// advancing the side with the larger parent and splicing it onto the other
// side's chain, so every union also shortens the paths it touched.
func (d *DSU) Union(x, y int) bool {
	p := d.parent
	rx, ry := int32(x), int32(y)
	for p[rx] != p[ry] {
		if p[rx] > p[ry] {
			if rx == p[rx] { // rx is a root: hang it below ry's chain
				p[rx] = p[ry]
				d.sets--
				return true
			}
			z := p[rx]
			p[rx] = p[ry] // splice
			rx = z
		} else {
			if ry == p[ry] {
				p[ry] = p[rx]
				d.sets--
				return true
			}
			z := p[ry]
			p[ry] = p[rx]
			ry = z
		}
	}
	return false
}

// UnionEdges applies Union to every flat (pairs[2i], pairs[2i+1]) pair.
// Replaying the spanning edges recorded from another forest over the same
// universe reproduces that forest's partition, which is how the visibility
// labeller merges per-shard union results back into its master forest. A
// trailing unpaired element is ignored.
func (d *DSU) UnionEdges(pairs []int32) {
	for i := 0; i+1 < len(pairs); i += 2 {
		d.Union(int(pairs[i]), int(pairs[i+1]))
	}
}

// CompressAll flattens every parent chain so that parent[x] is x's root,
// in one ascending pass: parent[x] < x for every non-root, so by the time
// x is visited its parent's entry already holds a root. After the call,
// Find costs a single array read, which is what the labellers' dense label
// passes rely on instead of per-element chain walks.
func (d *DSU) CompressAll() {
	p := d.parent
	for x := range p {
		p[x] = p[p[x]]
	}
}

// DenseLabels flattens the forest and writes, for each element i < len(out),
// a dense component label into out, returning the number of components seen.
// rootLabel is caller-owned scratch with len(rootLabel) >= len(out). Callers
// labelling a k-prefix of a larger forest (a labeller reusing capacity) may
// pass short slices: parent[x] <= x guarantees a prefix element's root lies
// inside the prefix, so the pass never reads beyond it. The flatten is fused
// into the labelling loop: visiting elements in ascending order, every
// non-root's parent entry already holds a root by the time it is read
// (parent[x] < x for non-roots), so parent[parent[i]] is i's root and a
// single pass replaces CompressAll plus a Find per element. Labels are
// assigned by first appearance in index order, so they are a pure function
// of the partition, never of union order.
func (d *DSU) DenseLabels(out, rootLabel []int32) int {
	p := d.parent[:len(out)]
	rl := rootLabel[:len(p)]
	for i := range rl {
		rl[i] = -1
	}
	next := int32(0)
	for i := range p {
		r := p[p[i]]
		p[i] = r
		if rl[r] < 0 {
			rl[r] = next
			next++
		}
		out[i] = rl[r]
	}
	return int(next)
}

// Connected reports whether x and y are in the same set.
func (d *DSU) Connected(x, y int) bool {
	return d.Find(x) == d.Find(y)
}

// ComponentSizes returns a map from canonical representative to set size.
func (d *DSU) ComponentSizes() map[int]int {
	sizes := make(map[int]int, d.sets)
	for i := range d.parent {
		sizes[d.Find(i)]++
	}
	return sizes
}

// Components groups the universe by set, returning one slice of members per
// component. Member order within a component is ascending.
func (d *DSU) Components() [][]int {
	index := make(map[int]int, d.sets)
	comps := make([][]int, 0, d.sets)
	for i := range d.parent {
		r := d.Find(i)
		ci, ok := index[r]
		if !ok {
			ci = len(comps)
			index[r] = ci
			comps = append(comps, nil)
		}
		comps[ci] = append(comps[ci], i)
	}
	return comps
}

// Labels writes, for each element i, a small dense component label into out
// (len(out) must be >= Len) and returns the number of components. Labels are
// assigned in order of first appearance, so they are deterministic for a
// given partition regardless of union order.
func (d *DSU) Labels(out []int32) int {
	next := int32(0)
	seen := make(map[int]int32, d.sets)
	for i := range d.parent {
		r := d.Find(i)
		l, ok := seen[r]
		if !ok {
			l = next
			seen[r] = l
			next++
		}
		out[i] = l
	}
	return int(next)
}
