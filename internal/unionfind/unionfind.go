// Package unionfind implements a disjoint-set union (DSU) structure with
// union by rank and path halving. The simulator rebuilds the connected
// components of the visibility graph G_t(r) at every time step, so the
// structure is designed for cheap bulk Reset and zero allocation after
// construction.
package unionfind

// DSU is a disjoint-set forest over elements [0, n). The zero value is an
// empty forest; use New to create one with elements.
type DSU struct {
	parent []int32
	rank   []uint8
	sets   int
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		rank:   make([]uint8, n),
	}
	d.Reset()
	return d
}

// Reset restores every element to its own singleton set, retaining the
// allocated capacity.
func (d *DSU) Reset() {
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.rank[i] = 0
	}
	d.sets = len(d.parent)
}

// Len returns the number of elements in the universe.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the canonical representative of x's set, applying path
// halving as it walks.
func (d *DSU) Find(x int) int {
	p := d.parent
	for p[x] != int32(x) {
		p[x] = p[p[x]] // path halving
		x = int(p[x])
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = int32(rx)
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.sets--
	return true
}

// UnionEdges applies Union to every flat (pairs[2i], pairs[2i+1]) pair.
// Replaying the spanning edges recorded from another forest over the same
// universe reproduces that forest's partition, which is how the visibility
// labeller merges per-shard union results back into its master forest. A
// trailing unpaired element is ignored.
func (d *DSU) UnionEdges(pairs []int32) {
	for i := 0; i+1 < len(pairs); i += 2 {
		d.Union(int(pairs[i]), int(pairs[i+1]))
	}
}

// Connected reports whether x and y are in the same set.
func (d *DSU) Connected(x, y int) bool {
	return d.Find(x) == d.Find(y)
}

// ComponentSizes returns a map from canonical representative to set size.
func (d *DSU) ComponentSizes() map[int]int {
	sizes := make(map[int]int, d.sets)
	for i := range d.parent {
		sizes[d.Find(i)]++
	}
	return sizes
}

// Components groups the universe by set, returning one slice of members per
// component. Member order within a component is ascending.
func (d *DSU) Components() [][]int {
	index := make(map[int]int, d.sets)
	comps := make([][]int, 0, d.sets)
	for i := range d.parent {
		r := d.Find(i)
		ci, ok := index[r]
		if !ok {
			ci = len(comps)
			index[r] = ci
			comps = append(comps, nil)
		}
		comps[ci] = append(comps[ci], i)
	}
	return comps
}

// Labels writes, for each element i, a small dense component label into out
// (len(out) must be >= Len) and returns the number of components. Labels are
// assigned in order of first appearance, so they are deterministic for a
// given union history.
func (d *DSU) Labels(out []int32) int {
	next := int32(0)
	seen := make(map[int]int32, d.sets)
	for i := range d.parent {
		r := d.Find(i)
		l, ok := seen[r]
		if !ok {
			l = next
			seen[r] = l
			next++
		}
		out[i] = l
	}
	return int(next)
}
