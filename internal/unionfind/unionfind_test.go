package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	t.Parallel()
	d := New(5)
	if d.Len() != 5 || d.Sets() != 5 {
		t.Fatalf("Len=%d Sets=%d, want 5/5", d.Len(), d.Sets())
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Errorf("Find(%d) = %d before any union", i, d.Find(i))
		}
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if d.Connected(i, j) {
				t.Errorf("%d and %d connected in fresh DSU", i, j)
			}
		}
	}
}

func TestUnionBasics(t *testing.T) {
	t.Parallel()
	d := New(6)
	if !d.Union(0, 1) {
		t.Error("first Union(0,1) reported no-op")
	}
	if d.Union(1, 0) {
		t.Error("repeat Union(1,0) reported merge")
	}
	if !d.Connected(0, 1) {
		t.Error("0,1 not connected after union")
	}
	if d.Sets() != 5 {
		t.Errorf("Sets = %d, want 5", d.Sets())
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if !d.Connected(1, 2) {
		t.Error("transitive connectivity broken")
	}
	if d.Sets() != 3 {
		t.Errorf("Sets = %d, want 3", d.Sets())
	}
}

func TestReset(t *testing.T) {
	t.Parallel()
	d := New(8)
	d.Union(0, 7)
	d.Union(3, 4)
	d.Reset()
	if d.Sets() != 8 {
		t.Fatalf("Sets after Reset = %d", d.Sets())
	}
	if d.Connected(0, 7) || d.Connected(3, 4) {
		t.Fatal("connections survived Reset")
	}
}

func TestComponentSizes(t *testing.T) {
	t.Parallel()
	d := New(7)
	d.Union(0, 1)
	d.Union(1, 2)
	d.Union(4, 5)
	sizes := d.ComponentSizes()
	var got []int
	for _, s := range sizes {
		got = append(got, s)
	}
	// Expect sizes {3, 2, 1, 1} in some order.
	counts := map[int]int{}
	for _, s := range got {
		counts[s]++
	}
	if counts[3] != 1 || counts[2] != 1 || counts[1] != 2 || len(got) != 4 {
		t.Fatalf("component sizes = %v", got)
	}
}

func TestComponents(t *testing.T) {
	t.Parallel()
	d := New(5)
	d.Union(0, 2)
	d.Union(2, 4)
	comps := d.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	total := 0
	for _, c := range comps {
		total += len(c)
		for i := 1; i < len(c); i++ {
			if c[i-1] >= c[i] {
				t.Fatalf("component %v not ascending", c)
			}
			if !d.Connected(c[0], c[i]) {
				t.Fatalf("component %v members not connected", c)
			}
		}
	}
	if total != 5 {
		t.Fatalf("components cover %d elements, want 5", total)
	}
}

func TestLabelsDense(t *testing.T) {
	t.Parallel()
	d := New(6)
	d.Union(1, 3)
	d.Union(4, 5)
	labels := make([]int32, 6)
	n := d.Labels(labels)
	if n != 4 {
		t.Fatalf("Labels returned %d components, want 4", n)
	}
	// Labels are dense [0, n) and consistent with Connected.
	seen := map[int32]bool{}
	for i := 0; i < 6; i++ {
		if labels[i] < 0 || int(labels[i]) >= n {
			t.Fatalf("label[%d] = %d out of range", i, labels[i])
		}
		seen[labels[i]] = true
		for j := 0; j < 6; j++ {
			if (labels[i] == labels[j]) != d.Connected(i, j) {
				t.Fatalf("labels disagree with Connected at (%d,%d)", i, j)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("only %d distinct labels used, want %d", len(seen), n)
	}
}

// TestDenseLabelsMatchesLabels pins the fused flatten-and-label pass to the
// map-based reference across random union sequences, including the k-prefix
// form the visibility labellers use on a capacity-sized forest, and checks
// the fused pass leaves the forest fully flattened.
func TestDenseLabelsMatchesLabels(t *testing.T) {
	t.Parallel()
	src := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(40)
		k := 1 + src.Intn(n) // label a prefix of the universe
		d := New(n)
		ref := New(n)
		for e := src.Intn(3 * n); e > 0; e-- {
			a, b := src.Intn(k), src.Intn(k) // unions stay inside the prefix
			d.Union(a, b)
			ref.Union(a, b)
		}
		want := make([]int32, n)
		wantN := ref.Labels(want)
		got := make([]int32, k)
		scratch := make([]int32, k)
		gotN := d.DenseLabels(got, scratch)
		// The reference labels the whole universe; restricted to the prefix
		// (where all unions happened) the first-appearance order coincides.
		for i := 0; i < k; i++ {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): DenseLabels[%d] = %d, Labels %d",
					trial, n, k, i, got[i], want[i])
			}
		}
		if wantPrefix := distinct(want[:k]); gotN != wantPrefix {
			t.Fatalf("trial %d: DenseLabels count %d, want %d", trial, gotN, wantPrefix)
		}
		_ = wantN
		for i := 0; i < k; i++ {
			if r := d.Find(i); d.Find(r) != r || int(d.parent[i]) != r {
				t.Fatalf("trial %d: forest not flattened at %d", trial, i)
			}
		}
	}
}

func distinct(labels []int32) int {
	seen := map[int32]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

// TestUnionEdges checks the spanning-edge replay contract the parallel
// labeller relies on: applying the successful unions recorded from one
// forest to a fresh forest reproduces the partition exactly, and a trailing
// unpaired element is ignored.
func TestUnionEdges(t *testing.T) {
	t.Parallel()
	src := New(12) // forest whose union history we record
	var edges []int32
	for _, p := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {5, 6}, {6, 5}, {9, 10}, {2, 0}, {10, 11}} {
		if src.Union(p[0], p[1]) {
			edges = append(edges, int32(p[0]), int32(p[1]))
		}
	}
	replay := New(12)
	replay.UnionEdges(edges)
	if replay.Sets() != src.Sets() {
		t.Fatalf("replayed forest has %d sets, original %d", replay.Sets(), src.Sets())
	}
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if replay.Connected(i, j) != src.Connected(i, j) {
				t.Errorf("connectivity(%d,%d) differs after replay", i, j)
			}
		}
	}

	trailing := New(4)
	trailing.UnionEdges([]int32{0, 1, 3}) // the lone 3 must be ignored
	if !trailing.Connected(0, 1) || trailing.Sets() != 3 {
		t.Errorf("trailing element handling: sets=%d", trailing.Sets())
	}
	trailing.UnionEdges(nil) // no-op
	if trailing.Sets() != 3 {
		t.Errorf("nil edge list changed the forest")
	}
}

func TestZeroElements(t *testing.T) {
	t.Parallel()
	d := New(0)
	if d.Len() != 0 || d.Sets() != 0 {
		t.Fatalf("empty DSU Len=%d Sets=%d", d.Len(), d.Sets())
	}
	if got := d.Components(); len(got) != 0 {
		t.Fatalf("empty DSU has components %v", got)
	}
}

// Property: after an arbitrary sequence of unions, Sets() equals the number
// of distinct components found by brute-force reachability, and Connected is
// an equivalence relation.
func TestQuickDSUMatchesBruteForce(t *testing.T) {
	t.Parallel()
	const n = 24
	f := func(pairs []uint16) bool {
		d := New(n)
		// Reference: adjacency + transitive closure via repeated passes.
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		var refFind func(x int) int
		refFind = func(x int) int {
			for ref[x] != x {
				x = ref[x]
			}
			return x
		}
		for _, pr := range pairs {
			a := int(pr) % n
			b := int(pr>>8) % n
			merged := d.Union(a, b)
			ra, rb := refFind(a), refFind(b)
			if (ra != rb) != merged {
				return false
			}
			if ra != rb {
				ref[ra] = rb
			}
		}
		distinct := map[int]bool{}
		for i := 0; i < n; i++ {
			distinct[refFind(i)] = true
			for j := 0; j < n; j++ {
				if d.Connected(i, j) != (refFind(i) == refFind(j)) {
					return false
				}
			}
		}
		return d.Sets() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Find is stable (idempotent) and Union decreases Sets by exactly
// 0 or 1.
func TestQuickFindStableUnionCounts(t *testing.T) {
	t.Parallel()
	const n = 16
	f := func(pairs []uint16) bool {
		d := New(n)
		for _, pr := range pairs {
			a := int(pr) % n
			b := int(pr>>8) % n
			before := d.Sets()
			merged := d.Union(a, b)
			after := d.Sets()
			if merged && before-after != 1 {
				return false
			}
			if !merged && before != after {
				return false
			}
			r := d.Find(a)
			if d.Find(r) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionFindCycle(b *testing.B) {
	d := New(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Reset()
		for j := 0; j < 1023; j++ {
			d.Union(j, j+1)
		}
		if d.Sets() != 1 {
			b.Fatal("unexpected component count")
		}
	}
}
