package unionfind

// Ablation benchmarks for the DSU design choices (union by rank + path
// halving) against a naive linked-parent forest, quantifying why the
// per-step component rebuild can afford a full Reset+rebuild cycle.

import (
	"testing"

	"mobilenet/internal/rng"
)

// naiveDSU has neither rank nor compression: worst-case linear chains.
type naiveDSU struct {
	parent []int32
}

func newNaive(n int) *naiveDSU {
	d := &naiveDSU{parent: make([]int32, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

func (d *naiveDSU) find(x int) int {
	for d.parent[x] != int32(x) {
		x = int(d.parent[x])
	}
	return x
}

func (d *naiveDSU) union(x, y int) {
	rx, ry := d.find(x), d.find(y)
	if rx != ry {
		d.parent[rx] = int32(ry)
	}
}

// adversarialPairs builds a union workload with long chains plus random
// queries, the shape a per-step component rebuild produces.
func adversarialPairs(n, m int, seed uint64) [][2]int {
	src := rng.New(seed)
	pairs := make([][2]int, m)
	for i := range pairs {
		if i < n-1 {
			pairs[i] = [2]int{i, i + 1} // chain
		} else {
			pairs[i] = [2]int{src.Intn(n), src.Intn(n)}
		}
	}
	return pairs
}

func BenchmarkAblationRankHalving(b *testing.B) {
	const n = 4096
	pairs := adversarialPairs(n, 2*n, 7)
	d := New(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Reset()
		for _, pr := range pairs {
			d.Union(pr[0], pr[1])
		}
		for j := 0; j < n; j++ {
			d.Find(j)
		}
	}
}

func BenchmarkAblationNaiveForest(b *testing.B) {
	const n = 4096
	pairs := adversarialPairs(n, 2*n, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := newNaive(n)
		for _, pr := range pairs {
			d.union(pr[0], pr[1])
		}
		for j := 0; j < n; j++ {
			d.find(j)
		}
	}
}

// The naive baseline must produce the same connectivity.
func TestAblationNaiveAgrees(t *testing.T) {
	t.Parallel()
	const n = 128
	pairs := adversarialPairs(n, 2*n, 11)
	fast := New(n)
	slow := newNaive(n)
	for _, pr := range pairs {
		fast.Union(pr[0], pr[1])
		slow.union(pr[0], pr[1])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if fast.Connected(i, j) != (slow.find(i) == slow.find(j)) {
				t.Fatalf("connectivity differs at (%d,%d)", i, j)
			}
		}
	}
}
