// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The generator is xoshiro256** seeded through splitmix64, the combination
// recommended by the xoshiro authors. It is deliberately not the standard
// library generator: the simulator needs (a) cheap splittable streams so
// that every agent can own an independent generator regardless of how many
// other agents exist (this keeps runs reproducible when parameters change),
// and (b) allocation-free bounded integers on the hot path of the random
// walk.
//
// None of the types in this package are safe for concurrent use; callers
// that fan out across goroutines must Split one stream per goroutine.
package rng

import "math/bits"

// splitmix64 advances the given state and returns the next output of the
// splitmix64 sequence. It is used for seeding and for stream derivation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed returns the seed for replicate rep of sweep point from the
// master seed. The derivation is position-based (not draw-based): the seed
// of a replicate depends only on (master, point, rep), never on how many
// other replicates ran or in what order, so parallel collections are
// scheduling-independent. The experiment runner and the simulation service
// share this derivation.
func DeriveSeed(master uint64, point, rep int) uint64 {
	x := master ^ (uint64(point)+1)*0x9e3779b97f4a7c15 ^ (uint64(rep)+1)*0xbf58476d1ce4e5b9
	// One splitmix64 finalisation round to decorrelate nearby inputs.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Source is a xoshiro256** generator. The zero value is NOT a valid
// generator (its state would be all zero, a fixed point of xoshiro);
// construct Sources with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source deterministically derived from seed. Distinct seeds
// give statistically independent streams; the same seed always yields the
// same sequence.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the receiver to the stream derived from seed, as if it had
// been freshly created by New(seed).
func (r *Source) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// All-zero state is unreachable: splitmix64 outputs of a fixed walk
	// are never simultaneously zero, but guard anyway for safety.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9

	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)

	return result
}

// Split derives a new Source that is statistically independent of the
// receiver and of any other stream previously split from it. The receiver's
// own sequence advances by one.
func (r *Source) Split() *Source {
	seed := r.Uint64()
	return New(seed ^ 0xd2b74407b1ce6e93)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. The implementation is Lemire's unbiased multiply-shift rejection
// method, which avoids both modulo bias and division on the fast path.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed integer in [0, n). It panics if
// n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// Lemire's method: multiply a 64-bit random by n and keep the high
	// word; reject the small biased region of the low word.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed float64 in [0, 1) with 53 bits of
// precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped (p <= 0 never fires; p >= 1 always fires).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm fills out with a uniformly random permutation of [0, len(out)) using
// the Fisher-Yates shuffle, and returns out. Passing a shared buffer keeps
// hot loops allocation-free.
func (r *Source) Perm(out []int) []int {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
