package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	t.Parallel()
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("sequence diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	t.Parallel()
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestReseedRestartsSequence(t *testing.T) {
	t.Parallel()
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, step %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	t.Parallel()
	parent := New(99)
	child1 := parent.Split()
	child2 := parent.Split()
	// Children must differ from each other and from the parent stream.
	c1, c2 := child1.Uint64(), child2.Uint64()
	if c1 == c2 {
		t.Fatalf("two Split children produced identical first outputs %d", c1)
	}
}

func TestSplitReproducible(t *testing.T) {
	t.Parallel()
	p1 := New(5)
	p2 := New(5)
	c1 := p1.Split()
	c2 := p2.Split()
	for i := 0; i < 100; i++ {
		if got, want := c1.Uint64(), c2.Uint64(); got != want {
			t.Fatalf("split streams from equal parents diverged at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	t.Parallel()
	r := New(3)
	for _, n := range []int{1, 2, 3, 5, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	t.Parallel()
	const n = 10
	const draws = 100000
	r := New(123)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d: count %d too far from expectation %.0f", v, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	r := New(11)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %.4f, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	t.Parallel()
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) did not fire")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) fired")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) did not fire")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	t.Parallel()
	r := New(29)
	const draws = 200000
	const p = 0.3
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Errorf("Bernoulli(%.1f) empirical rate %.4f", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	r := New(31)
	buf := make([]int, 50)
	for trial := 0; trial < 20; trial++ {
		r.Perm(buf)
		seen := make(map[int]bool, len(buf))
		for _, v := range buf {
			if v < 0 || v >= len(buf) || seen[v] {
				t.Fatalf("Perm produced invalid permutation: %v", buf)
			}
			seen[v] = true
		}
	}
}

// Property: Intn stays within range for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 32; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: equal seeds produce equal 32-step prefixes (full determinism).
func TestQuickDeterminism(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 32; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(5)
	}
	_ = sink
}
