package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mobilenet/internal/scenario"
	"mobilenet/internal/simserve"
	"mobilenet/internal/sweep"
)

// testWorker boots one in-process mobiserved worker behind an HTTP
// listener and returns its service and address.
func testWorker(t *testing.T, cfg simserve.Config) (*simserve.Server, *httptest.Server) {
	t.Helper()
	s := simserve.New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// testSweep is the shared fleet workload: 6 distinct broadcast points
// small enough to finish in milliseconds each.
func testSweep() sweep.Spec {
	return sweep.Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 8,
			Radius: 1, Seed: 1, Metrics: []string{scenario.MetricCurve}},
		Axes: []sweep.Axis{{Field: "seed", From: i64(1), To: i64(6), Step: i64(1)}},
	}
}

func i64(v int64) *int64 { return &v }

// coordinator builds a coordinator server whose sweeps shard across the
// given worker addresses, wired exactly as cmd/mobiserved wires it:
// executor lookups probe the coordinator's cache, fetched payloads
// persist back into it.
func coordinator(t *testing.T, workers []string, tweak func(*Config)) (*simserve.Server, *Executor) {
	t.Helper()
	var coord *simserve.Server
	ccfg := Config{
		Workers:   workers,
		RetryBase: time.Millisecond, RetryCap: 4 * time.Millisecond,
		DownFor: 50 * time.Millisecond,
		Lookup:  func(hash string) ([]byte, bool) { return coord.Result(hash) },
		Persist: func(hash string, payload []byte) { coord.PutResult(hash, payload) },
	}
	if tweak != nil {
		tweak(&ccfg)
	}
	exec, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	coord = simserve.New(simserve.Config{Workers: 2, Executor: exec})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		coord.Shutdown(ctx)
	})
	return coord, exec
}

func waitSweep(t *testing.T, s *simserve.Server, sp sweep.Spec) []byte {
	t.Helper()
	ticket, err := s.SubmitSweep(sp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	result, err := s.WaitSweep(ctx, ticket.SweepID)
	if err != nil {
		t.Fatal(err)
	}
	return result
}

// TestFleetSweepByteIdentical is the acceptance pin: a sweep sharded
// across two workers assembles to the exact bytes a single-process run of
// the same spec produces, and every point payload on the coordinator is
// byte-identical to the single process's.
func TestFleetSweepByteIdentical(t *testing.T) {
	t.Parallel()
	_, w1 := testWorker(t, simserve.Config{Workers: 2})
	_, w2 := testWorker(t, simserve.Config{Workers: 2})
	coord, _ := coordinator(t, []string{w1.URL, w2.URL}, nil)

	fleetResult := waitSweep(t, coord, testSweep())

	solo := simserve.New(simserve.Config{Workers: 2})
	defer solo.Shutdown(context.Background())
	soloResult := waitSweep(t, solo, testSweep())

	if !bytes.Equal(fleetResult, soloResult) {
		t.Fatalf("fleet sweep result differs from single-process run: %d vs %d bytes",
			len(fleetResult), len(soloResult))
	}
	points, err := testSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		fp, ok := coord.Result(p.Hash)
		if !ok {
			t.Fatalf("point %s not persisted on the coordinator", p.Hash)
		}
		sp, ok := solo.Result(p.Hash)
		if !ok {
			t.Fatalf("point %s missing on the solo server", p.Hash)
		}
		if !bytes.Equal(fp, sp) {
			t.Fatalf("point %s payload differs between fleet and solo", p.Hash)
		}
	}
}

// TestFleetShardsAcrossWorkers pins that both workers actually execute
// points (rendezvous spread) and that together they ran each distinct
// point exactly once (structural dedup).
func TestFleetShardsAcrossWorkers(t *testing.T) {
	t.Parallel()
	s1, w1 := testWorker(t, simserve.Config{Workers: 2})
	s2, w2 := testWorker(t, simserve.Config{Workers: 2})
	coord, _ := coordinator(t, []string{w1.URL, w2.URL}, nil)

	waitSweep(t, coord, testSweep())

	// Each worker's cache holds exactly the points rendezvous sent it —
	// no point on both (dedup is structural), none anywhere else. The
	// expected split is derived from Rank itself: with 6 points and
	// ephemeral test ports the draw occasionally sends all 6 to one
	// worker, which is correct placement, not a sharding failure (the
	// statistical spread is pinned deterministically by TestRankSpreads).
	points, _ := testSweep().Expand()
	for _, p := range points {
		_, ok1 := s1.Result(p.Hash)
		_, ok2 := s2.Result(p.Hash)
		if ok1 == ok2 {
			t.Errorf("point %s on both or neither worker (w1=%v w2=%v): dedup is not structural", p.Hash, ok1, ok2)
		}
		want := Rank([]string{w1.URL, w2.URL}, p.Hash)[0]
		if (want == 0) != ok1 {
			t.Errorf("point %s landed off its rendezvous home", p.Hash)
		}
	}
}

// TestWorkerKillReroute is the failover pin: with one of two workers dead,
// the sweep still completes — the dead worker's points re-route to the
// survivor — and the reroute hook counts at least one failover.
func TestWorkerKillReroute(t *testing.T) {
	t.Parallel()
	_, w1 := testWorker(t, simserve.Config{Workers: 2})
	_, w2 := testWorker(t, simserve.Config{Workers: 2})
	var rerouted atomic.Uint64
	coord, _ := coordinator(t, []string{w1.URL, w2.URL}, func(c *Config) {
		c.Attempts = 2
		c.OnReroute = func(string) { rerouted.Add(1) }
	})

	// Kill whichever worker rendezvous made home to at least one point
	// (with ephemeral test ports the draw occasionally homes every point
	// on one worker — killing the idle one would exercise nothing).
	points, _ := testSweep().Expand()
	homes := make([]int, 2)
	for _, p := range points {
		homes[Rank([]string{w1.URL, w2.URL}, p.Hash)[0]]++
	}
	if homes[1] > 0 {
		w2.Close()
	} else {
		w1.Close()
	}

	result := waitSweep(t, coord, testSweep())
	if len(result) == 0 {
		t.Fatal("empty sweep result")
	}
	if rerouted.Load() == 0 {
		t.Fatal("no reroutes counted though a worker was dead")
	}
	// Every point must be served despite the death.
	for _, p := range points {
		if _, ok := coord.Result(p.Hash); !ok {
			t.Fatalf("point %s missing after failover", p.Hash)
		}
	}
}

// TestOverlappingSweepsConverge pins fleet-wide dedup across clients: two
// concurrent submissions of the same sweep converge on one execution per
// distinct point (the workers' jobs-served counters sum to the distinct
// point count, not twice it).
func TestOverlappingSweepsConverge(t *testing.T) {
	t.Parallel()
	s1, w1 := testWorker(t, simserve.Config{Workers: 2})
	s2, w2 := testWorker(t, simserve.Config{Workers: 2})
	coord, _ := coordinator(t, []string{w1.URL, w2.URL}, nil)

	t1, err := coord.SubmitSweep(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := coord.SubmitSweep(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	r1, err := coord.WaitSweep(ctx, t1.SweepID)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := coord.WaitSweep(ctx, t2.SweepID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatal("overlapping sweeps assembled different results")
	}
	points, _ := testSweep().Expand()
	if ran := countJobs(t, s1) + countJobs(t, s2); ran != len(points) {
		t.Fatalf("fleet executed %d jobs for %d distinct points; overlap was not deduplicated", ran, len(points))
	}
}

// countJobs reads a worker's jobs-served counter off its own metrics
// exposition — the same surface the load generator differs.
func countJobs(t *testing.T, s *simserve.Server) int {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	var n int
	for _, line := range bytes.Split([]byte(body), []byte("\n")) {
		if bytes.HasPrefix(line, []byte("mobiserved_jobs_served_total ")) {
			if _, err := fmt.Sscan(string(line[len("mobiserved_jobs_served_total "):]), &n); err != nil {
				t.Fatal(err)
			}
		}
	}
	return n
}

// TestNoWorkers pins the constructor's validation.
func TestNoWorkers(t *testing.T) {
	t.Parallel()
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty worker set")
	}
}
