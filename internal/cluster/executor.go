package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"mobilenet/internal/simserve"
	"mobilenet/internal/sweep"
)

// Config wires an Executor to its fleet and its coordinator.
type Config struct {
	// Workers are the fleet's addresses (host:port). At least one.
	Workers []string
	// HTTPClient overrides the per-round-trip HTTP client (nil selects a
	// 10s-timeout default). Tests point it at httptest servers.
	HTTPClient *http.Client

	// Attempts bounds tries per worker before failing over to the next in
	// the point's rendezvous order; 0 selects 4. Backoff between attempts
	// is capped exponential with jitter: RetryBase (0 selects 5ms) doubling
	// to RetryCap (0 selects 200ms) — the service's established retry
	// conventions.
	Attempts  int
	RetryBase time.Duration
	RetryCap  time.Duration

	// DownFor is how long a worker that exhausted its attempts is skipped
	// before being tried again; 0 selects 5s. The health probe loop
	// (ProbeLoop) clears the mark early when the worker answers /healthz.
	DownFor time.Duration

	// Concurrency is the in-flight point bound the executor advertises to
	// the sweep dispatcher; 0 selects 4 x len(Workers) (each worker's own
	// pool is its real limit — the coordinator just keeps them all fed).
	Concurrency int

	// Lookup probes the coordinator's own tiered cache before any network
	// hop; Persist writes a fetched payload back into it (so the
	// coordinator serves /v1/results/{hash} for sweep points, and its disk
	// store accumulates the fleet's work). Either may be nil.
	Lookup  func(hash string) ([]byte, bool)
	Persist func(hash string, payload []byte)

	// OnReroute observes each failover: the worker abandoned after
	// exhausting its attempts. OnDispatch observes each successful remote
	// execution with the worker that served it and the end-to-end dispatch
	// duration. Either may be nil.
	OnReroute  func(worker string)
	OnDispatch func(worker string, d time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Attempts <= 0 {
		c.Attempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 200 * time.Millisecond
	}
	if c.DownFor <= 0 {
		c.DownFor = 5 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4 * len(c.Workers)
	}
	return c
}

// Executor shards sweep points across the fleet. It implements
// simserve.PointExecutor (and simserve.Concurrency); plug it into
// simserve.Config.Executor on the coordinator.
type Executor struct {
	cfg     Config
	clients []*Client

	mu        sync.Mutex
	downUntil []time.Time // per worker; zero = up
	inflight  map[string]*flight

	rng   *rand.Rand // jitter source, guarded by mu
	now   func() time.Time
	sleep func(time.Duration)
}

// flight is one in-progress distinct point: the first requester executes,
// later requesters (overlapping sweeps) wait and share the outcome.
type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// New validates the config and returns an Executor.
func New(cfg Config) (*Executor, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	cfg = cfg.withDefaults()
	e := &Executor{
		cfg:       cfg,
		clients:   make([]*Client, len(cfg.Workers)),
		downUntil: make([]time.Time, len(cfg.Workers)),
		inflight:  make(map[string]*flight),
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
		now:       time.Now,
		sleep:     time.Sleep,
	}
	for i, w := range cfg.Workers {
		e.clients[i] = NewClient(w, cfg.HTTPClient)
	}
	return e, nil
}

// PointConcurrency implements simserve.Concurrency.
func (e *Executor) PointConcurrency() int { return e.cfg.Concurrency }

// ExecutePoint implements simserve.PointExecutor: coordinator cache, then
// in-flight coalescing, then the point's rendezvous-ordered failover chain.
func (e *Executor) ExecutePoint(p sweep.Point, opts simserve.SubmitOptions, progress simserve.PointProgress) ([]byte, bool, error) {
	if e.cfg.Lookup != nil {
		if payload, ok := e.cfg.Lookup(p.Hash); ok {
			return payload, true, nil
		}
	}

	// Coalesce overlapping sweeps' requests for the same distinct point:
	// one network execution, shared by everyone who asked while it ran.
	e.mu.Lock()
	if f, ok := e.inflight[p.Hash]; ok {
		e.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		return f.payload, true, nil
	}
	f := &flight{done: make(chan struct{})}
	e.inflight[p.Hash] = f
	e.mu.Unlock()

	payload, cached, err := e.dispatch(p, progress)
	f.payload, f.err = payload, err
	e.mu.Lock()
	delete(e.inflight, p.Hash)
	e.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, false, err
	}
	if e.cfg.Persist != nil {
		e.cfg.Persist(p.Hash, payload)
	}
	return payload, cached, nil
}

// dispatch walks the point's failover chain: its rendezvous-ranked
// workers, each tried Attempts times with jittered capped-exponential
// backoff. A worker that exhausts its attempts is marked down (skipped by
// other points until DownFor elapses or the probe loop clears it) and the
// point re-routes to the next in its chain — the counter hook fires once
// per such failover. Permanent errors (the point itself is bad) surface
// immediately: no other worker would answer differently.
func (e *Executor) dispatch(p sweep.Point, progress simserve.PointProgress) ([]byte, bool, error) {
	started := false
	start := func() {
		if !started {
			started = true
			if progress.Started != nil {
				progress.Started()
			}
		}
	}
	cancelled := progress.Cancelled
	if cancelled == nil {
		cancelled = func() bool { return false }
	}

	order := Rank(e.cfg.Workers, p.Hash)
	attempted := make([]bool, len(e.cfg.Workers))
	var lastErr error
	for round := 0; round < 2; round++ {
		// Round 0 honours down marks; round 1 is desperation — it attempts
		// only the workers round 0 skipped as down, so a point is never
		// failed with workers left unattempted (a mass down-marking must
		// not fail points while the fleet is actually recovering).
		skipped := false
		for _, wi := range order {
			if cancelled() {
				return nil, false, errors.New("cluster: sweep cancelled")
			}
			if round == 0 && e.isDown(wi) {
				skipped = true
				lastErr = fmt.Errorf("cluster: worker %s marked down", e.cfg.Workers[wi])
				continue
			}
			if round == 1 && attempted[wi] {
				continue
			}
			attempted[wi] = true
			t0 := e.now()
			payload, cachedOnWorker, err := e.tryWorker(wi, p, start, cancelled)
			if err == nil {
				if e.cfg.OnDispatch != nil {
					e.cfg.OnDispatch(e.cfg.Workers[wi], e.now().Sub(t0))
				}
				return payload, cachedOnWorker, nil
			}
			if permanent(err) {
				return nil, false, err
			}
			lastErr = err
			e.markDown(wi)
			if e.cfg.OnReroute != nil {
				e.cfg.OnReroute(e.cfg.Workers[wi])
			}
		}
		if !skipped {
			break
		}
	}
	return nil, false, fmt.Errorf("cluster: every worker failed for point %s: %w", p.Hash, lastErr)
}

// tryWorker runs the point on one worker with the bounded-retry backoff.
func (e *Executor) tryWorker(wi int, p sweep.Point, start func(), cancelled func() bool) ([]byte, bool, error) {
	var lastErr error
	for attempt := 0; attempt < e.cfg.Attempts; attempt++ {
		if attempt > 0 {
			e.sleep(e.backoff(attempt))
			if cancelled() {
				return nil, false, errPermanent{errors.New("cluster: sweep cancelled")}
			}
		}
		start()
		payload, cached, err := e.clients[wi].RunPoint(p.Spec, cancelled)
		if err == nil {
			return payload, cached, nil
		}
		if permanent(err) {
			return nil, false, err
		}
		lastErr = err
	}
	return nil, false, lastErr
}

// backoff returns the jittered delay before retry attempt n (n >= 1):
// base·2^(n-1) capped, then d/2 + rand(d) — the service's retry shape.
func (e *Executor) backoff(n int) time.Duration {
	d := e.cfg.RetryBase << (n - 1)
	if d > e.cfg.RetryCap || d <= 0 {
		d = e.cfg.RetryCap
	}
	e.mu.Lock()
	j := time.Duration(e.rng.Int63n(int64(d)))
	e.mu.Unlock()
	return d/2 + j
}

func (e *Executor) isDown(wi int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now().Before(e.downUntil[wi])
}

func (e *Executor) markDown(wi int) {
	e.mu.Lock()
	e.downUntil[wi] = e.now().Add(e.cfg.DownFor)
	e.mu.Unlock()
}

func (e *Executor) clearDown(wi int) {
	e.mu.Lock()
	e.downUntil[wi] = time.Time{}
	e.mu.Unlock()
}

// Healthy reports the workers currently not marked down (for logs and the
// coordinator's fleet gauge).
func (e *Executor) Healthy() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, until := range e.downUntil {
		if !e.now().Before(until) {
			n++
		}
	}
	return n
}

// ProbeLoop polls every worker's /healthz on the interval until stop is
// closed, marking failures down and clearing recovered workers early —
// without it, a down mark only expires by timeout. The coordinator daemon
// runs one; tests and short-lived embedders may skip it.
func (e *Executor) ProbeLoop(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			for wi, c := range e.clients {
				if err := c.Healthy(); err != nil {
					e.markDown(wi)
				} else {
					e.clearDown(wi)
				}
			}
		}
	}
}
