// Package cluster is the fleet layer over the simulation service: a
// coordinator-side executor that shards a sweep's distinct points across N
// mobiserved workers by rendezvous (highest-random-weight) hashing on the
// point's content hash. Placement is a pure function of (point hash,
// worker set): every coordinator — and every overlapping sweep on the same
// coordinator — sends a given point to the same worker, so fleet-wide
// deduplication is structural (each distinct point has one home, whose
// in-flight coalescing and tiered cache collapse repeats), not a protocol.
// When a worker dies, its points re-route to the next worker in that
// point's preference order with bounded retries, and only that worker's
// 1/N share moves — the rendezvous property that makes failover cheap.
package cluster

import (
	"hash/fnv"
	"sort"
)

// score is the rendezvous weight of one (worker, key) pair: a 64-bit
// FNV-1a over the worker address, a separator and the key. FNV is not
// cryptographic, which is fine — placement needs a stable, well-mixed
// function, not an unforgeable one (keys are already SHA-256 content
// hashes, so adversarial clustering would require inverting those first).
func score(worker, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(worker))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// Rank returns worker indices ordered best-first by rendezvous score for
// key. The full order — not just the winner — is the point's failover
// chain: index 0 is its home, index 1 absorbs it if the home is down, and
// so on. Ties (astronomically unlikely with distinct addresses) break by
// index so the order stays deterministic.
func Rank(workers []string, key string) []int {
	type ranked struct {
		idx int
		s   uint64
	}
	rs := make([]ranked, len(workers))
	for i, w := range workers {
		rs[i] = ranked{idx: i, s: score(w, key)}
	}
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].s != rs[b].s {
			return rs[a].s > rs[b].s
		}
		return rs[a].idx < rs[b].idx
	})
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.idx
	}
	return out
}
