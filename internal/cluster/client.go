package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mobilenet/internal/scenario"
	"mobilenet/internal/simserve"
)

// errPermanent wraps failures no amount of retrying or re-routing fixes —
// the worker understood the request and rejected it (4xx), or the job ran
// and failed. Re-running the same spec elsewhere would fail identically
// (execution is deterministic), so the executor surfaces these instead of
// burning the failover chain on them.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// permanent reports whether err came from the permanent class.
func permanent(err error) bool {
	var p errPermanent
	return errors.As(err, &p)
}

// Poll pacing for a dispatched job: start tight (points at sweep scale are
// often milliseconds) and back off to a cap so long points do not hammer
// the worker.
const (
	pollBase = 2 * time.Millisecond
	pollCap  = 100 * time.Millisecond
)

// queueFullRetry paces resubmission against a worker's full run queue.
// Backpressure is flow control, not failure: the worker is alive and
// draining, so the client waits rather than triggering failover (which
// would break the one-home-per-point dedup for no capacity gain).
const queueFullRetry = 5 * time.Millisecond

// Client speaks the mobiserved HTTP API to one worker. The zero value is
// unusable; construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the worker at addr (host:port or a full
// http:// base URL). The http.Client bounds each round trip, not a whole
// job's run: polls are individual requests.
func NewClient(addr string, hc *http.Client) *Client {
	base := addr
	if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: base, hc: hc}
}

// Addr returns the worker's base URL.
func (c *Client) Addr() string { return c.base }

// Healthy probes the worker's liveness endpoint.
func (c *Client) Healthy() error {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: worker %s health %d", c.base, resp.StatusCode)
	}
	return nil
}

// RunPoint executes one canonical spec on the worker end to end: submit,
// absorb queue-full backpressure, poll the job, and fetch the result
// payload by hash — the exact bytes the worker computed and cached.
// cancelled aborts between round trips (the job keeps running on the
// worker; its result stays in the worker's cache for whoever asks next).
// The returned cached flag reports the worker answered without running
// anything. Errors are permanent (errPermanent: 4xx, failed or cancelled
// jobs) or transient (everything else — transport failures, 5xx); the
// caller owns retry and failover policy.
func (c *Client) RunPoint(spec scenario.Spec, cancelled func() bool) (payload []byte, cached bool, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, false, errPermanent{err}
	}
	var ticket simserve.Ticket
	for {
		status, err := c.postJSON("/v1/run", body, &ticket)
		if err != nil {
			return nil, false, err
		}
		if status == http.StatusServiceUnavailable {
			// Queue full: wait for the worker to drain, unless the sweep
			// died meanwhile.
			if cancelled != nil && cancelled() {
				return nil, false, errPermanent{errors.New("cluster: sweep cancelled")}
			}
			time.Sleep(queueFullRetry)
			continue
		}
		if status != http.StatusOK && status != http.StatusAccepted {
			return nil, false, errPermanent{fmt.Errorf("cluster: worker %s rejected the point: %d", c.base, status)}
		}
		break
	}
	if !ticket.Cached {
		if err := c.pollJob(ticket.JobID, cancelled); err != nil {
			return nil, false, err
		}
	}
	payload, err = c.fetchResult(ticket.Hash)
	if err != nil {
		return nil, false, err
	}
	return payload, ticket.Cached, nil
}

// postJSON posts body and decodes a JSON response into out (when the
// status carries one). Transport errors return as-is (transient).
func (c *Client) postJSON(path string, body []byte, out any) (int, error) {
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, nil
}

// pollJob waits for a job to finish, backing the poll interval off from
// pollBase to pollCap. A failed or cancelled job is a permanent error
// carrying the worker's message.
func (c *Client) pollJob(id string, cancelled func() bool) error {
	interval := pollBase
	for {
		resp, err := c.hc.Get(c.base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var v simserve.JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch v.Status {
		case simserve.StatusDone:
			return nil
		case simserve.StatusFailed, simserve.StatusCancelled:
			return errPermanent{fmt.Errorf("cluster: worker %s job %s %s: %s", c.base, id, v.Status, v.Error)}
		}
		if cancelled != nil && cancelled() {
			return errPermanent{errors.New("cluster: sweep cancelled")}
		}
		time.Sleep(interval)
		if interval *= 2; interval > pollCap {
			interval = pollCap
		}
	}
}

// fetchResult fetches the exact cached payload bytes for a hash.
func (c *Client) fetchResult(hash string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + "/v1/results/" + hash)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The worker finished the job but no longer holds the payload —
		// eviction raced us. Transient: a resubmission recomputes it.
		return nil, fmt.Errorf("cluster: worker %s has no payload for %s (status %d)", c.base, hash, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
