package cluster

import (
	"fmt"
	"testing"
)

// TestRankDeterministic pins that placement is a pure function of the
// (worker set, key) pair: same inputs, same full order, on every call.
func TestRankDeterministic(t *testing.T) {
	t.Parallel()
	workers := []string{"a:1", "b:2", "c:3", "d:4"}
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("%064d", i)
		first := Rank(workers, key)
		for trial := 0; trial < 3; trial++ {
			again := Rank(workers, key)
			for j := range first {
				if again[j] != first[j] {
					t.Fatalf("key %s: order changed between calls: %v vs %v", key, first, again)
				}
			}
		}
		// The order is a permutation of all indices.
		seen := make(map[int]bool)
		for _, wi := range first {
			if wi < 0 || wi >= len(workers) || seen[wi] {
				t.Fatalf("key %s: %v is not a permutation", key, first)
			}
			seen[wi] = true
		}
	}
}

// TestRankSpreads sanity-checks the load split: across many keys every
// worker wins a non-trivial share (a broken hash that sends everything to
// one worker would defeat the whole sharding design).
func TestRankSpreads(t *testing.T) {
	t.Parallel()
	workers := []string{"w0:80", "w1:80", "w2:80", "w3:80"}
	wins := make([]int, len(workers))
	const keys = 4000
	for i := 0; i < keys; i++ {
		wins[Rank(workers, fmt.Sprintf("%064x", i*2654435761))[0]]++
	}
	for wi, n := range wins {
		if n < keys/len(workers)/2 {
			t.Fatalf("worker %d won only %d of %d keys: %v", wi, n, keys, wins)
		}
	}
}

// TestRankMinimalDisruption pins the rendezvous property that makes
// failover cheap: removing one worker moves ONLY the keys it owned —
// every other key keeps its winner.
func TestRankMinimalDisruption(t *testing.T) {
	t.Parallel()
	workers := []string{"w0:80", "w1:80", "w2:80", "w3:80"}
	without3 := workers[:3]
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("%064x", uint64(i)*11400714819323198485)
		full := Rank(workers, key)
		if full[0] == 3 {
			continue // owned by the removed worker; allowed to move
		}
		if got := Rank(without3, key)[0]; got != full[0] {
			t.Fatalf("key %s moved from %d to %d though worker 3 never owned it", key, full[0], got)
		}
	}
}

// TestRankFailoverIsNextRank pins that a dead home's keys land exactly on
// the next worker in that key's preference order — the invariant the
// executor's re-route loop relies on for structural dedup during failover
// (every coordinator agrees where a dead worker's points go).
func TestRankFailoverIsNextRank(t *testing.T) {
	t.Parallel()
	workers := []string{"w0:80", "w1:80", "w2:80", "w3:80"}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i*6364136223846793005)
		full := Rank(workers, key)
		home := full[0]
		survivors := append([]string{}, workers...)
		survivors = append(survivors[:home], survivors[home+1:]...)
		// Rank among survivors must elect the worker that was full[1].
		wantAddr := workers[full[1]]
		if got := survivors[Rank(survivors, key)[0]]; got != wantAddr {
			t.Fatalf("key %s: survivors elected %s, want next-in-chain %s", key, got, wantAddr)
		}
	}
}
