// Package barrier implements the extension the paper names as future work
// in Section 4: information dissemination on planar domains with mobility
// barriers. A Domain is a grid with a set of blocked nodes; agents walk
// with the same 1/5-lazy kernel but a move into a blocked node is replaced
// by staying put, which keeps the uniform distribution over free nodes
// stationary (every free->free edge remains symmetric with probability
// 1/5).
//
// Communication is unchanged: two agents within Manhattan distance r
// exchange rumors regardless of walls. This models radio that penetrates
// obstacles which block only movement (fences, water, cliffs); fully
// opaque barriers would also need line-of-sight pruning in the visibility
// graph, which is out of scope here and noted in DESIGN.md.
package barrier

import (
	"fmt"

	"mobilenet/internal/bitset"
	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/visibility"
)

// Domain is a grid with blocked nodes. Construct with NewDomain and the
// obstacle builders; the zero value is not usable.
type Domain struct {
	g       *grid.Grid
	blocked *bitset.Set
	free    int // number of free nodes
}

// NewDomain returns a fully open domain over g.
func NewDomain(g *grid.Grid) (*Domain, error) {
	if g == nil {
		return nil, fmt.Errorf("barrier: nil grid")
	}
	return &Domain{g: g, blocked: bitset.New(g.N()), free: g.N()}, nil
}

// Grid returns the underlying grid.
func (d *Domain) Grid() *grid.Grid { return d.g }

// FreeNodes returns the number of unblocked nodes.
func (d *Domain) FreeNodes() int { return d.free }

// Blocked reports whether p is blocked. Points off the grid count as
// blocked.
func (d *Domain) Blocked(p grid.Point) bool {
	if !d.g.Contains(p) {
		return true
	}
	return d.blocked.Contains(int(d.g.ID(p)))
}

// Block marks p as blocked; it reports whether the state changed.
func (d *Domain) Block(p grid.Point) bool {
	if !d.g.Contains(p) {
		return false
	}
	if d.blocked.Add(int(d.g.ID(p))) {
		d.free--
		return true
	}
	return false
}

// Unblock clears a blocked node; it reports whether the state changed.
func (d *Domain) Unblock(p grid.Point) bool {
	if !d.g.Contains(p) {
		return false
	}
	if d.blocked.Remove(int(d.g.ID(p))) {
		d.free++
		return true
	}
	return false
}

// AddWall blocks the vertical line x = col, leaving a centred gap of the
// given width. It returns an error when the column is off-grid or the gap
// exceeds the side.
func (d *Domain) AddWall(col, gapWidth int) error {
	side := d.g.Side()
	if col < 0 || col >= side {
		return fmt.Errorf("barrier: wall column %d outside grid side %d", col, side)
	}
	if gapWidth < 0 || gapWidth > side {
		return fmt.Errorf("barrier: gap width %d invalid for side %d", gapWidth, side)
	}
	gapLo := (side - gapWidth) / 2
	gapHi := gapLo + gapWidth
	for y := 0; y < side; y++ {
		if y >= gapLo && y < gapHi {
			continue
		}
		d.Block(grid.Point{X: int32(col), Y: int32(y)})
	}
	return nil
}

// AddRandomObstacles blocks approximately density*n nodes chosen uniformly
// at random (already-blocked choices are skipped, so the final blocked
// fraction can be slightly below the request). Density must lie in [0, 1).
func (d *Domain) AddRandomObstacles(density float64, src *rng.Source) error {
	if density < 0 || density >= 1 {
		return fmt.Errorf("barrier: obstacle density %v outside [0,1)", density)
	}
	if src == nil {
		return fmt.Errorf("barrier: nil randomness source")
	}
	target := int(density * float64(d.g.N()))
	side := d.g.Side()
	for i := 0; i < target; i++ {
		d.Block(grid.Point{X: int32(src.Intn(side)), Y: int32(src.Intn(side))})
	}
	return nil
}

// floodFrom flood-fills the free region containing start and returns the
// visited set and its size.
func (d *Domain) floodFrom(start grid.Point) (*bitset.Set, int) {
	seen := bitset.New(d.g.N())
	stack := []grid.Point{start}
	seen.Add(int(d.g.ID(start)))
	count := 0
	var buf []grid.Point
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		buf = d.g.Neighbors(p, buf[:0])
		for _, q := range buf {
			if d.Blocked(q) {
				continue
			}
			if seen.Add(int(d.g.ID(q))) {
				stack = append(stack, q)
			}
		}
	}
	return seen, count
}

// FreeConnected reports whether the free region is a single connected
// component (4-neighbour connectivity). Note that random obstacle fields
// almost always enclose small free pockets, so for agent placement
// LargestFreeComponent is usually the right notion.
func (d *Domain) FreeConnected() bool {
	if d.free == 0 {
		return false
	}
	_, count := d.floodFrom(d.someFreeNode())
	return count == d.free
}

func (d *Domain) someFreeNode() grid.Point {
	side := int32(d.g.Side())
	for y := int32(0); y < side; y++ {
		for x := int32(0); x < side; x++ {
			if p := (grid.Point{X: x, Y: y}); !d.Blocked(p) {
				return p
			}
		}
	}
	return grid.Point{X: -1, Y: -1} // unreachable: callers check free > 0
}

// LargestFreeComponent returns the node set of the largest connected free
// component and its size. It returns (nil, 0) on fully blocked domains.
func (d *Domain) LargestFreeComponent() (*bitset.Set, int) {
	if d.free == 0 {
		return nil, 0
	}
	visited := bitset.New(d.g.N())
	var best *bitset.Set
	bestSize := 0
	side := int32(d.g.Side())
	for y := int32(0); y < side; y++ {
		for x := int32(0); x < side; x++ {
			p := grid.Point{X: x, Y: y}
			if d.Blocked(p) || visited.Contains(int(d.g.ID(p))) {
				continue
			}
			comp, size := d.floodFrom(p)
			visited.UnionWith(comp)
			if size > bestSize {
				best, bestSize = comp, size
			}
		}
	}
	return best, bestSize
}

// Step advances one lazy-walk step from p, treating blocked nodes like grid
// boundaries (the move is replaced by staying).
func (d *Domain) Step(p grid.Point, src *rng.Source) grid.Point {
	q := p
	switch src.Intn(5) {
	case 0:
		q.X--
	case 1:
		q.X++
	case 2:
		q.Y--
	case 3:
		q.Y++
	default:
		return p
	}
	if d.Blocked(q) {
		return p
	}
	return q
}

// PlaceUniform returns k agents placed uniformly at random on free nodes.
// It uses rejection sampling, which stays cheap for the obstacle densities
// the experiments use (< 50%).
func (d *Domain) PlaceUniform(k int, src *rng.Source) ([]grid.Point, error) {
	if k <= 0 {
		return nil, fmt.Errorf("barrier: k must be positive, got %d", k)
	}
	if d.free == 0 {
		return nil, fmt.Errorf("barrier: no free nodes to place agents on")
	}
	side := d.g.Side()
	out := make([]grid.Point, k)
	for i := range out {
		for {
			p := grid.Point{X: int32(src.Intn(side)), Y: int32(src.Intn(side))}
			if !d.Blocked(p) {
				out[i] = p
				break
			}
		}
	}
	return out, nil
}

// PlaceUniformConnected places k agents uniformly at random on the largest
// connected free component, the physically sensible placement for
// dissemination studies on obstacle fields (enclosed pockets can never be
// reached by mobility).
func (d *Domain) PlaceUniformConnected(k int, src *rng.Source) ([]grid.Point, error) {
	if k <= 0 {
		return nil, fmt.Errorf("barrier: k must be positive, got %d", k)
	}
	comp, size := d.LargestFreeComponent()
	if size == 0 {
		return nil, fmt.Errorf("barrier: no free nodes to place agents on")
	}
	side := d.g.Side()
	out := make([]grid.Point, k)
	for i := range out {
		for {
			p := grid.Point{X: int32(src.Intn(side)), Y: int32(src.Intn(side))}
			if comp.Contains(int(d.g.ID(p))) {
				out[i] = p
				break
			}
		}
	}
	return out, nil
}

// Config parameterises a broadcast on a domain with barriers.
type Config struct {
	// Domain is the arena with obstacles. Required.
	Domain *Domain
	// K is the number of agents. Required.
	K int
	// Radius is the transmission radius (communication ignores walls; see
	// the package comment).
	Radius int
	// Seed drives placement and motion.
	Seed uint64
	// MaxSteps caps the run. Required to be positive: barrier domains have
	// no general closed-form envelope to derive a default from (a narrow
	// gap can slow dissemination arbitrarily).
	MaxSteps int
	// ConnectedPlacement places agents on the largest connected free
	// component instead of all free nodes, guaranteeing mobility can
	// eventually inform everyone at r=0 (random obstacle fields enclose
	// unreachable pockets otherwise).
	ConnectedPlacement bool
}

func (c *Config) validate() error {
	if c.Domain == nil {
		return fmt.Errorf("barrier: config requires a domain")
	}
	if c.K <= 0 {
		return fmt.Errorf("barrier: K must be positive, got %d", c.K)
	}
	if c.Radius < 0 {
		return fmt.Errorf("barrier: negative radius %d", c.Radius)
	}
	if c.MaxSteps <= 0 {
		return fmt.Errorf("barrier: MaxSteps must be positive (no default on barrier domains)")
	}
	return nil
}

// Result summarises a barrier broadcast run.
type Result struct {
	// Steps is the broadcast time (valid when Completed).
	Steps int
	// Completed is false when MaxSteps was reached first.
	Completed bool
	// Informed is the number of informed agents at the end.
	Informed int
}

// RunBroadcast runs a single-rumor broadcast from agent 0 on the domain.
func RunBroadcast(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	src := rng.New(cfg.Seed)
	var pos []grid.Point
	var err error
	if cfg.ConnectedPlacement {
		pos, err = cfg.Domain.PlaceUniformConnected(cfg.K, src)
	} else {
		pos, err = cfg.Domain.PlaceUniform(cfg.K, src)
	}
	if err != nil {
		return Result{}, err
	}
	informed := make([]bool, cfg.K)
	informed[0] = true
	nInf := 1
	lab := visibility.NewLabeller(cfg.K)

	var compScratch []bool
	exchange := func() {
		if nInf == cfg.K {
			return
		}
		labels, count := lab.Components(pos, cfg.Radius)
		if cap(compScratch) < count {
			compScratch = make([]bool, count)
		}
		compInf := compScratch[:count]
		for i := range compInf {
			compInf[i] = false
		}
		for i, inf := range informed {
			if inf {
				compInf[labels[i]] = true
			}
		}
		for i := range informed {
			if !informed[i] && compInf[labels[i]] {
				informed[i] = true
				nInf++
			}
		}
	}

	exchange()
	t := 0
	for nInf < cfg.K && t < cfg.MaxSteps {
		for i := range pos {
			pos[i] = cfg.Domain.Step(pos[i], src)
		}
		t++
		exchange()
	}
	return Result{Steps: t, Completed: nInf == cfg.K, Informed: nInf}, nil
}
