package barrier

import (
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
)

func pt(x, y int32) grid.Point { return grid.Point{X: x, Y: y} }

func openDomain(t *testing.T, side int) *Domain {
	t.Helper()
	d, err := NewDomain(grid.MustNew(side))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDomain(t *testing.T) {
	t.Parallel()
	if _, err := NewDomain(nil); err == nil {
		t.Error("nil grid accepted")
	}
	d := openDomain(t, 8)
	if d.FreeNodes() != 64 {
		t.Errorf("FreeNodes = %d, want 64", d.FreeNodes())
	}
	if d.Blocked(pt(3, 3)) {
		t.Error("open domain has blocked node")
	}
	if !d.Blocked(pt(-1, 0)) || !d.Blocked(pt(8, 0)) {
		t.Error("off-grid not treated as blocked")
	}
}

func TestBlockUnblock(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 8)
	if !d.Block(pt(2, 2)) {
		t.Error("first Block reported no change")
	}
	if d.Block(pt(2, 2)) {
		t.Error("second Block reported change")
	}
	if d.FreeNodes() != 63 {
		t.Errorf("FreeNodes = %d after one block", d.FreeNodes())
	}
	if !d.Blocked(pt(2, 2)) {
		t.Error("node not blocked")
	}
	if !d.Unblock(pt(2, 2)) {
		t.Error("Unblock reported no change")
	}
	if d.Unblock(pt(2, 2)) {
		t.Error("second Unblock reported change")
	}
	if d.FreeNodes() != 64 {
		t.Errorf("FreeNodes = %d after unblock", d.FreeNodes())
	}
	if d.Block(pt(-1, 5)) || d.Unblock(pt(99, 5)) {
		t.Error("off-grid block/unblock reported change")
	}
}

func TestAddWall(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 9)
	if err := d.AddWall(4, 3); err != nil {
		t.Fatal(err)
	}
	// Gap of width 3 centred: rows 3,4,5 free; rest blocked.
	for y := int32(0); y < 9; y++ {
		blocked := d.Blocked(pt(4, y))
		wantBlocked := y < 3 || y > 5
		if blocked != wantBlocked {
			t.Errorf("wall col row %d: blocked=%v, want %v", y, blocked, wantBlocked)
		}
	}
	if d.FreeNodes() != 81-6 {
		t.Errorf("FreeNodes = %d, want 75", d.FreeNodes())
	}
	if err := d.AddWall(-1, 2); err == nil {
		t.Error("off-grid wall accepted")
	}
	if err := d.AddWall(2, 100); err == nil {
		t.Error("oversized gap accepted")
	}
}

func TestAddWallFullGapBlocksNothing(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 6)
	if err := d.AddWall(3, 6); err != nil {
		t.Fatal(err)
	}
	if d.FreeNodes() != 36 {
		t.Errorf("gap=side wall blocked %d nodes", 36-d.FreeNodes())
	}
}

func TestAddRandomObstacles(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 16)
	if err := d.AddRandomObstacles(0.2, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	blocked := 256 - d.FreeNodes()
	if blocked < 30 || blocked > 52 {
		t.Errorf("density 0.2 blocked %d/256 nodes", blocked)
	}
	if err := d.AddRandomObstacles(-0.1, rng.New(1)); err == nil {
		t.Error("negative density accepted")
	}
	if err := d.AddRandomObstacles(1.0, rng.New(1)); err == nil {
		t.Error("density 1 accepted")
	}
	if err := d.AddRandomObstacles(0.1, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestFreeConnected(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 8)
	if !d.FreeConnected() {
		t.Error("open domain not connected")
	}
	// Wall with a gap keeps it connected.
	if err := d.AddWall(4, 2); err != nil {
		t.Fatal(err)
	}
	if !d.FreeConnected() {
		t.Error("gapped wall disconnected the domain")
	}
	// Sealing the gap splits it.
	d2 := openDomain(t, 8)
	if err := d2.AddWall(4, 0); err != nil {
		t.Fatal(err)
	}
	if d2.FreeConnected() {
		t.Error("solid wall left the domain connected")
	}
}

func TestFreeConnectedEmpty(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 2)
	for y := int32(0); y < 2; y++ {
		for x := int32(0); x < 2; x++ {
			d.Block(pt(x, y))
		}
	}
	if d.FreeConnected() {
		t.Error("fully blocked domain reported connected")
	}
}

func TestStepRespectsWalls(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 5)
	// Box agent into a single free cell surrounded by walls.
	for _, p := range []grid.Point{pt(1, 2), pt(3, 2), pt(2, 1), pt(2, 3)} {
		d.Block(p)
	}
	src := rng.New(3)
	pos := pt(2, 2)
	for i := 0; i < 500; i++ {
		pos = d.Step(pos, src)
		if pos != pt(2, 2) {
			t.Fatalf("agent escaped the box to %v", pos)
		}
	}
}

func TestStepNeverEntersBlocked(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 16)
	if err := d.AddRandomObstacles(0.3, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	pos, err := d.PlaceUniform(1, src)
	if err != nil {
		t.Fatal(err)
	}
	p := pos[0]
	for i := 0; i < 20000; i++ {
		q := d.Step(p, src)
		if d.Blocked(q) {
			t.Fatalf("stepped onto blocked node %v", q)
		}
		if grid.ManhattanPoints(p, q) > 1 {
			t.Fatalf("jumped from %v to %v", p, q)
		}
		p = q
	}
}

func TestPlaceUniformAvoidsWalls(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 10)
	if err := d.AddWall(5, 2); err != nil {
		t.Fatal(err)
	}
	pos, err := d.PlaceUniform(200, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pos {
		if d.Blocked(p) {
			t.Fatalf("agent placed on blocked node %v", p)
		}
	}
	if _, err := d.PlaceUniform(0, rng.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestLargestFreeComponent(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 8)
	// Solid wall splits 8x8 into 4*8=32 and 3*8=24 free nodes.
	if err := d.AddWall(4, 0); err != nil {
		t.Fatal(err)
	}
	comp, size := d.LargestFreeComponent()
	if size != 32 {
		t.Fatalf("largest component size = %d, want 32", size)
	}
	// All members left of the wall.
	count := 0
	comp.ForEach(func(id int) bool {
		x := id % 8
		if x >= 4 {
			t.Fatalf("largest component contains node right of wall (x=%d)", x)
		}
		count++
		return true
	})
	if count != 32 {
		t.Fatalf("component bitset has %d members", count)
	}
	// Fully blocked domain.
	d2 := openDomain(t, 2)
	for y := int32(0); y < 2; y++ {
		for x := int32(0); x < 2; x++ {
			d2.Block(pt(x, y))
		}
	}
	if comp, size := d2.LargestFreeComponent(); comp != nil || size != 0 {
		t.Errorf("blocked domain: comp=%v size=%d", comp, size)
	}
}

func TestPlaceUniformConnected(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 10)
	if err := d.AddWall(5, 0); err != nil {
		t.Fatal(err)
	}
	// Largest side is x<5 (5 columns vs 4).
	pos, err := d.PlaceUniformConnected(100, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pos {
		if p.X >= 5 {
			t.Fatalf("agent placed off the largest component at %v", p)
		}
		if d.Blocked(p) {
			t.Fatalf("agent on blocked node %v", p)
		}
	}
	if _, err := d.PlaceUniformConnected(0, rng.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
	// Fully blocked domain errors.
	d2 := openDomain(t, 2)
	for y := int32(0); y < 2; y++ {
		for x := int32(0); x < 2; x++ {
			d2.Block(pt(x, y))
		}
	}
	if _, err := d2.PlaceUniformConnected(1, rng.New(1)); err == nil {
		t.Error("fully blocked domain accepted")
	}
}

func TestConnectedPlacementBroadcastCompletesOnSplitDomain(t *testing.T) {
	t.Parallel()
	// With a solid wall, plain placement eventually deadlocks (agents on
	// both sides) but connected placement always completes.
	d := openDomain(t, 10)
	if err := d.AddWall(5, 0); err != nil {
		t.Fatal(err)
	}
	res, err := RunBroadcast(Config{
		Domain: d, K: 8, Seed: 11, MaxSteps: 500000, ConnectedPlacement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("connected placement did not complete: %+v", res)
	}
}

func TestRunBroadcastValidation(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 8)
	bad := []Config{
		{K: 4, MaxSteps: 10},
		{Domain: d, K: 0, MaxSteps: 10},
		{Domain: d, K: 4, Radius: -1, MaxSteps: 10},
		{Domain: d, K: 4, MaxSteps: 0},
	}
	for i, c := range bad {
		if _, err := RunBroadcast(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunBroadcastOpenDomainCompletes(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 8)
	res, err := RunBroadcast(Config{Domain: d, K: 6, Seed: 1, MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Informed != 6 {
		t.Fatalf("open-domain broadcast: %+v", res)
	}
}

func TestRunBroadcastThroughGap(t *testing.T) {
	t.Parallel()
	d := openDomain(t, 12)
	if err := d.AddWall(6, 2); err != nil {
		t.Fatal(err)
	}
	res, err := RunBroadcast(Config{Domain: d, K: 8, Seed: 3, MaxSteps: 500000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("gapped-wall broadcast incomplete: %+v", res)
	}
}

func TestRunBroadcastBlockedBySolidWallMobility(t *testing.T) {
	t.Parallel()
	// Solid wall, radius 0: the rumor cannot cross by movement and there
	// is no radio bridge, so with agents on both sides the broadcast must
	// NOT complete. Seed chosen so both sides are populated (checked).
	d := openDomain(t, 10)
	if err := d.AddWall(5, 0); err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	pos, err := d.PlaceUniform(8, src)
	if err != nil {
		t.Fatal(err)
	}
	left, right := 0, 0
	for _, p := range pos {
		if p.X < 5 {
			left++
		} else {
			right++
		}
	}
	if left == 0 || right == 0 {
		t.Skip("all agents landed on one side; geometry untestable with this seed")
	}
	res, err := RunBroadcast(Config{Domain: d, K: 8, Seed: 11, MaxSteps: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatalf("broadcast crossed a solid wall at r=0: %+v", res)
	}
	if res.Informed < 1 || res.Informed >= 8 {
		t.Errorf("informed = %d, want partial dissemination", res.Informed)
	}
}

func TestRunBroadcastRadioBridgesWall(t *testing.T) {
	t.Parallel()
	// Same solid wall, but a transmission radius wide enough to bridge the
	// one-node-thick wall: broadcast completes (communication penetrates).
	d := openDomain(t, 10)
	if err := d.AddWall(5, 0); err != nil {
		t.Fatal(err)
	}
	res, err := RunBroadcast(Config{Domain: d, K: 12, Radius: 4, Seed: 13, MaxSteps: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("radio did not bridge the wall: %+v", res)
	}
}

func TestBarrierDeterministic(t *testing.T) {
	t.Parallel()
	mk := func() Result {
		d := openDomain(t, 10)
		if err := d.AddRandomObstacles(0.15, rng.New(21)); err != nil {
			t.Fatal(err)
		}
		res, err := RunBroadcast(Config{Domain: d, K: 5, Seed: 17, MaxSteps: 300000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("barrier broadcast not deterministic: %+v vs %+v", a, b)
	}
}

func BenchmarkBarrierBroadcast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := NewDomain(grid.MustNew(24))
		if err != nil {
			b.Fatal(err)
		}
		if err := d.AddWall(12, 4); err != nil {
			b.Fatal(err)
		}
		if _, err := RunBroadcast(Config{Domain: d, K: 12, Seed: uint64(i), MaxSteps: 1 << 20}); err != nil {
			b.Fatal(err)
		}
	}
}
