package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mobilenet/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordAgainstClosedForm(t *testing.T) {
	t.Parallel()
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	t.Parallel()
	var w Welford
	if w.Variance() != 0 || w.StdErr() != 0 || w.Mean() != 0 {
		t.Error("empty Welford nonzero stats")
	}
	// Regression: Min/Max of an empty accumulator used to return 0,
	// indistinguishable from a legitimate 0 observation. They are NaN now,
	// matching Quantile's empty-input convention.
	if !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) {
		t.Errorf("empty Welford Min/Max = %v/%v, want NaN/NaN", w.Min(), w.Max())
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Errorf("single-point variance = %v", w.Variance())
	}
	if w.Mean() != 3 || w.Min() != 3 || w.Max() != 3 {
		t.Error("single-point stats wrong")
	}
	// A legitimate zero observation stays distinguishable from empty.
	var z Welford
	z.Add(0)
	if z.Min() != 0 || z.Max() != 0 {
		t.Errorf("zero-observation Min/Max = %v/%v, want 0/0", z.Min(), z.Max())
	}
}

// TestQuantileNaNQ is the regression test for the NaN-q hole: every
// comparison against NaN is false, so a NaN q slipped past the q < 0 and
// q > 1 clamps and propagated into the position arithmetic.
func TestQuantileNaNQ(t *testing.T) {
	t.Parallel()
	if got := Quantile([]float64{1, 2, 3}, math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(xs, NaN) = %v, want NaN", got)
	}
	if got := Quantile([]float64{42}, math.NaN()); !math.IsNaN(got) {
		t.Errorf("single-element Quantile(xs, NaN) = %v, want NaN", got)
	}
}

func TestTCritical95(t *testing.T) {
	t.Parallel()
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 0}, // no spread from fewer than two observations
		{2, 12.706}, {3, 4.303}, {4, 3.182}, {5, 2.776},
		{11, 2.228}, {31, 2.042},
		// Step buckets are conservative: each returns the value at its
		// smallest df, never narrower than the exact interval.
		{35, 2.042}, {50, 2.021}, {100, 2.000}, {200, 1.96},
	}
	for _, tc := range cases {
		if got := TCritical95(tc.n); got != tc.want {
			t.Errorf("TCritical95(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
	// Conservative against the exact mid-range values the old buckets
	// understated: t(31)=2.040, t(41)=2.020, t(61)=2.000.
	for _, tc := range []struct {
		n     int
		exact float64
	}{{32, 2.040}, {42, 2.020}, {62, 2.000}} {
		if got := TCritical95(tc.n); got < tc.exact {
			t.Errorf("TCritical95(%d) = %v, narrower than exact %v", tc.n, got, tc.exact)
		}
	}
	// Monotone non-increasing in n: more replicates never widen the
	// critical value.
	prev := TCritical95(2)
	for n := 3; n <= 300; n++ {
		cur := TCritical95(n)
		if cur > prev {
			t.Fatalf("TCritical95 not monotone at n=%d: %v > %v", n, cur, prev)
		}
		prev = cur
	}
}

// TestSummarizeSmallNUsesStudentT pins the CI switch: at n = 4 the
// interval must use t(3) = 3.182, not the normal 1.96.
func TestSummarizeSmallNUsesStudentT(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	wantHalf := 3.182 * w.StdErr()
	if !almostEqual(s.CIHigh-s.Mean, wantHalf, 1e-12) || !almostEqual(s.Mean-s.CILow, wantHalf, 1e-12) {
		t.Errorf("CI half-width = %v, want %v (Student-t)", s.CIHigh-s.Mean, wantHalf)
	}
}

func TestQuantile(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
		{-0.5, 1}, {1.5, 5}, // clamped
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
	if got := Quantile([]float64{42}, 0.9); got != 42 {
		t.Errorf("single-element quantile = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	t.Parallel()
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	if _, err := Summarize(nil); err != ErrNoData {
		t.Fatalf("Summarize(nil) err = %v", err)
	}
	s, err := Summarize([]float64{1, 2, 3, 4, 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.CILow >= s.Mean || s.CIHigh <= s.Mean {
		t.Errorf("CI does not bracket mean: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestFitLinearExact(t *testing.T) {
	t.Parallel()
	// y = 3 + 2x exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9, 11}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 3, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if fit.SlopeErr > 1e-9 {
		t.Errorf("SlopeErr = %v for exact fit", fit.SlopeErr)
	}
}

func TestFitLinearErrors(t *testing.T) {
	t.Parallel()
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("identical x should fail")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestFitPowerLaw(t *testing.T) {
	t.Parallel()
	// y = 5 * x^-0.5 exactly.
	xs := []float64{1, 4, 16, 64, 256}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, -0.5)
	}
	fit, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Alpha, -0.5, 1e-9) {
		t.Errorf("Alpha = %v, want -0.5", fit.Alpha)
	}
	if !almostEqual(fit.C(), 5, 1e-9) {
		t.Errorf("C = %v, want 5", fit.C())
	}
	if fit.String() == "" {
		t.Error("empty String()")
	}
}

func TestFitPowerLawSkipsNonPositive(t *testing.T) {
	t.Parallel()
	xs := []float64{-1, 0, 1, 2, 4, 8}
	ys := []float64{5, 5, 1, 2, 4, 8}
	fit, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 4 {
		t.Errorf("N = %d, want 4 (non-positive filtered)", fit.N)
	}
	if !almostEqual(fit.Alpha, 1, 1e-9) {
		t.Errorf("Alpha = %v, want 1", fit.Alpha)
	}
}

func TestChiSquareUniform(t *testing.T) {
	t.Parallel()
	// Perfectly uniform counts: tiny statistic, not rejected.
	uniform := []int{1000, 1000, 1000, 1000}
	stat, rej, err := ChiSquareUniform(uniform, 0.01)
	if err != nil || rej || stat != 0 {
		t.Errorf("uniform: stat=%v rej=%v err=%v", stat, rej, err)
	}
	// Extremely skewed counts: rejected.
	skewed := []int{4000, 0, 0, 0}
	_, rej, err = ChiSquareUniform(skewed, 0.01)
	if err != nil || !rej {
		t.Errorf("skewed: rej=%v err=%v", rej, err)
	}
	// Error cases.
	if _, _, err := ChiSquareUniform([]int{5}, 0.05); err == nil {
		t.Error("single bucket should fail")
	}
	if _, _, err := ChiSquareUniform([]int{1, -1}, 0.05); err == nil {
		t.Error("negative count should fail")
	}
	if _, _, err := ChiSquareUniform([]int{0, 0}, 0.05); err == nil {
		t.Error("all-zero counts should fail")
	}
}

func TestChiSquareSamplingBehavior(t *testing.T) {
	t.Parallel()
	// Random uniform assignment should rarely be rejected at alpha=0.001.
	src := rng.New(7)
	counts := make([]int, 20)
	for i := 0; i < 20000; i++ {
		counts[src.Intn(20)]++
	}
	_, rej, err := ChiSquareUniform(counts, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if rej {
		t.Error("uniform sample rejected at alpha=0.001")
	}
}

func TestNormalQuantile(t *testing.T) {
	t.Parallel()
	cases := []struct{ p, want, tol float64 }{
		{0.5, 0, 1e-9},
		{0.975, 1.959964, 1e-5},
		{0.025, -1.959964, 1e-5},
		{0.99, 2.326348, 1e-5},
		{0.001, -3.090232, 1e-5},
	}
	for _, tc := range cases {
		if got := NormalQuantile(tc.p); !almostEqual(got, tc.want, tc.tol) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("boundary quantiles not infinite")
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	t.Parallel()
	src := rng.New(42)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + 2*src.Float64()
	}
	lo, hi, err := BootstrapMedianCI(xs, 500, 0.95, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Fatalf("CI inverted: [%v, %v]", lo, hi)
	}
	med := Median(xs)
	if med < lo || med > hi {
		t.Errorf("median %v outside CI [%v, %v]", med, lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("CI suspiciously wide: [%v, %v]", lo, hi)
	}
}

func TestBootstrapErrors(t *testing.T) {
	t.Parallel()
	if _, _, err := BootstrapMedianCI(nil, 100, 0.95, nil); err != ErrNoData {
		t.Errorf("nil data err = %v", err)
	}
	xs := []float64{1, 2, 3}
	if _, _, err := BootstrapMedianCI(xs, 1, 0.95, nil); err == nil {
		t.Error("iters=1 should fail")
	}
	if _, _, err := BootstrapMedianCI(xs, 100, 0, nil); err == nil {
		t.Error("conf=0 should fail")
	}
	if _, _, err := BootstrapMedianCI(xs, 100, 1, nil); err == nil {
		t.Error("conf=1 should fail")
	}
	// nil source falls back to internal deterministic stream.
	lo1, hi1, err := BootstrapMedianCI(xs, 100, 0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapMedianCI(xs, 100, 0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("nil-source bootstrap not deterministic")
	}
}

// Property: Welford mean/variance agree with two-pass formulas.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	t.Parallel()
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		var w Welford
		sum := 0.0
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		if !almostEqual(w.Mean(), mean, 1e-9) {
			return false
		}
		if len(xs) >= 2 {
			var ss float64
			for _, x := range xs {
				ss += (x - mean) * (x - mean)
			}
			if !almostEqual(w.Variance(), ss/float64(len(xs)-1), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	t.Parallel()
	f := func(raw []int8, q1Raw, q2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		if v1 > v2 {
			return false
		}
		lo, hi := Quantile(xs, 0), Quantile(xs, 1)
		return v1 >= lo && v2 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
