// Package stats provides the statistical machinery the experiment harness
// uses to turn raw Monte-Carlo samples into the summaries reported in
// EXPERIMENTS.md: streaming moments, quantiles, bootstrap confidence
// intervals, least-squares power-law fits (log-log regression), and a
// chi-square uniformity test.
//
// Everything here is exact or classical approximation — no external numeric
// libraries are used.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by summaries of empty samples.
var ErrNoData = errors.New("stats: no data")

// Welford accumulates count, mean and variance in one streaming pass using
// Welford's algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for empty accumulators).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or NaN for an empty accumulator —
// matching Quantile's empty-input convention, so an empty sample is
// distinguishable from a legitimate 0 observation.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation, or NaN for an empty accumulator
// (see Min).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Variance returns the unbiased sample variance; it is 0 for n < 2.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Summary is a compact description of a sample.
type Summary struct {
	N             int
	Mean, StdDev  float64
	Min, Max      float64
	Median        float64
	Q25, Q75      float64
	CILow, CIHigh float64 // Student-t 95% CI of the mean
}

// Summarize computes a Summary of xs. It returns ErrNoData for empty input.
// The confidence interval uses the Student-t critical value for the sample
// size (TCritical95): the normal z = 1.96 badly understates the interval at
// the small replicate counts (n <= 10) common in sweeps.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	med := Quantile(xs, 0.5)
	s := Summary{
		N:      w.N(),
		Mean:   w.Mean(),
		StdDev: w.StdDev(),
		Min:    w.Min(),
		Max:    w.Max(),
		Median: med,
		Q25:    Quantile(xs, 0.25),
		Q75:    Quantile(xs, 0.75),
	}
	half := TCritical95(w.N()) * w.StdErr()
	s.CILow, s.CIHigh = s.Mean-half, s.Mean+half
	return s, nil
}

// tTable95 holds the two-sided 95% Student-t critical values for 1..30
// degrees of freedom.
var tTable95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for a
// sample of size n (n-1 degrees of freedom): an exact table for df <= 30,
// a conservative step table up to df = 120 — each bucket returns the
// value at its smallest df, so the interval is never narrower than
// nominal — and the normal limit z = 1.96 beyond, where the exact value
// is within 1% (t(121) ≈ 1.980). n < 2 yields 0 — a single observation
// carries no spread, so the interval collapses onto the mean.
func TCritical95(n int) float64 {
	df := n - 1
	switch {
	case df < 1:
		return 0
	case df <= 30:
		return tTable95[df-1]
	case df <= 40:
		return 2.042 // t(30): upper bound for df in (30, 40]
	case df <= 60:
		return 2.021 // t(40): upper bound for df in (40, 60]
	case df <= 120:
		return 2.000 // t(60): upper bound for df in (60, 120]
	default:
		return 1.96
	}
}

// String renders the summary in a single line for logs and tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g±%.3g median=%.3g [%.3g,%.3g]",
		s.N, s.Mean, s.Mean-s.CILow, s.Median, s.Min, s.Max)
}

// Quantile returns the q-th sample quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics. The input is not modified. It
// returns NaN for empty input or a NaN q, and clamps q to [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q != q {
		// Explicit NaN guard: both clamp comparisons below are false for
		// NaN, which would otherwise flow into the index arithmetic.
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// PowerFit is the result of fitting y = C * x^Alpha by least squares on
// log-transformed data.
type PowerFit struct {
	Alpha    float64 // exponent (slope in log-log space)
	LogC     float64 // intercept in log space
	R2       float64 // coefficient of determination in log space
	AlphaErr float64 // standard error of the slope
	N        int
}

// C returns the multiplicative constant exp(LogC).
func (p PowerFit) C() float64 { return math.Exp(p.LogC) }

// String renders the fit compactly.
func (p PowerFit) String() string {
	return fmt.Sprintf("y = %.3g * x^%.3f (±%.3f, R²=%.3f, n=%d)",
		p.C(), p.Alpha, p.AlphaErr, p.R2, p.N)
}

// FitPowerLaw fits y = C*x^alpha through (xs[i], ys[i]) pairs with xs, ys
// strictly positive. It returns an error when fewer than two valid points
// exist or when all xs coincide.
func FitPowerLaw(xs, ys []float64) (PowerFit, error) {
	if len(xs) != len(ys) {
		return PowerFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	lin, err := FitLinear(lx, ly)
	if err != nil {
		return PowerFit{}, err
	}
	return PowerFit{
		Alpha:    lin.Slope,
		LogC:     lin.Intercept,
		R2:       lin.R2,
		AlphaErr: lin.SlopeErr,
		N:        lin.N,
	}, nil
}

// LinearFit is the result of ordinary least squares y = Intercept + Slope*x.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64
	SlopeErr         float64
	N                int
}

// FitLinear performs ordinary least squares. It needs at least two points
// with distinct x values.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, ErrNoData
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: all x values identical")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	// Residual sum of squares and derived statistics.
	var rss float64
	for i := 0; i < n; i++ {
		r := ys[i] - (intercept + slope*xs[i])
		rss += r * r
	}
	r2 := 1.0
	if syy > 0 {
		r2 = 1 - rss/syy
	}
	var slopeErr float64
	if n > 2 {
		slopeErr = math.Sqrt(rss / float64(n-2) / sxx)
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, SlopeErr: slopeErr, N: n}, nil
}

// ChiSquareUniform computes the chi-square statistic of observed counts
// against the uniform distribution over len(counts) buckets, and reports
// whether uniformity is rejected at significance alpha using the normal
// approximation to the chi-square distribution (valid for the large bucket
// counts the simulator uses).
func ChiSquareUniform(counts []int, alpha float64) (stat float64, rejected bool, err error) {
	k := len(counts)
	if k < 2 {
		return 0, false, errors.New("stats: need at least 2 buckets")
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, false, errors.New("stats: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, false, ErrNoData
	}
	expect := float64(total) / float64(k)
	for _, c := range counts {
		d := float64(c) - expect
		stat += d * d / expect
	}
	// Wilson-Hilferty approximation of the chi-square quantile.
	df := float64(k - 1)
	z := normalQuantile(1 - alpha)
	h := 2.0 / (9.0 * df)
	crit := df * math.Pow(1-h+z*math.Sqrt(h), 3)
	return stat, stat > crit, nil
}

// normalQuantile returns the p-th quantile of the standard normal
// distribution using the Acklam rational approximation (|error| < 1.15e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormalQuantile exposes the standard normal quantile function.
func NormalQuantile(p float64) float64 { return normalQuantile(p) }
