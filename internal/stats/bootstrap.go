package stats

import (
	"errors"

	"mobilenet/internal/rng"
)

// BootstrapCI estimates a percentile bootstrap confidence interval for an
// arbitrary statistic of a sample. statFn receives a resampled copy of the
// data on every iteration; conf is the two-sided confidence level (e.g.
// 0.95). The resampling stream is driven by src so results are reproducible.
func BootstrapCI(xs []float64, statFn func([]float64) float64, iters int, conf float64, src *rng.Source) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrNoData
	}
	if iters < 2 {
		return 0, 0, errors.New("stats: bootstrap needs >= 2 iterations")
	}
	if conf <= 0 || conf >= 1 {
		return 0, 0, errors.New("stats: confidence level must be in (0,1)")
	}
	if src == nil {
		src = rng.New(0x60075)
	}
	resample := make([]float64, len(xs))
	vals := make([]float64, iters)
	for it := 0; it < iters; it++ {
		for i := range resample {
			resample[i] = xs[src.Intn(len(xs))]
		}
		vals[it] = statFn(resample)
	}
	alpha := (1 - conf) / 2
	return Quantile(vals, alpha), Quantile(vals, 1-alpha), nil
}

// BootstrapMedianCI is BootstrapCI specialised to the median, the statistic
// the experiment tables report (medians are robust to the heavy upper tails
// of broadcast-time distributions).
func BootstrapMedianCI(xs []float64, iters int, conf float64, src *rng.Source) (lo, hi float64, err error) {
	return BootstrapCI(xs, Median, iters, conf, src)
}
