package core

import (
	"testing"

	"mobilenet/internal/grid"
)

func testConfig(side, k int, radius int, seed uint64) Config {
	return Config{
		Grid:   grid.MustNew(side),
		K:      k,
		Radius: radius,
		Seed:   seed,
		Source: 0,
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil grid", Config{K: 4}},
		{"zero k", Config{Grid: g}},
		{"negative k", Config{Grid: g, K: -1}},
		{"source too high", Config{Grid: g, K: 4, Source: 4}},
		{"source too low", Config{Grid: g, K: 4, Source: -2}},
		{"negative max steps", Config{Grid: g, K: 4, MaxSteps: -1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if _, err := NewBroadcast(tc.cfg); err == nil {
				t.Errorf("NewBroadcast accepted invalid config %+v", tc.cfg)
			}
			if _, err := NewGossip(tc.cfg); err == nil {
				t.Errorf("NewGossip accepted invalid config %+v", tc.cfg)
			}
		})
	}
}

func TestDefaultMaxStepsPositive(t *testing.T) {
	t.Parallel()
	cfg := testConfig(16, 4, 0, 1)
	if got := cfg.maxSteps(); got < 4096 {
		t.Errorf("default maxSteps = %d, want >= 4096", got)
	}
	cfg.MaxSteps = 77
	if got := cfg.maxSteps(); got != 77 {
		t.Errorf("explicit maxSteps = %d, want 77", got)
	}
}

func TestBroadcastCompletesSmall(t *testing.T) {
	t.Parallel()
	res, err := RunBroadcast(testConfig(8, 4, 0, 42))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("broadcast did not complete: %+v", res)
	}
	if res.Steps < 0 {
		t.Fatalf("negative broadcast time %d", res.Steps)
	}
}

func TestBroadcastSingleAgentInstant(t *testing.T) {
	t.Parallel()
	res, err := RunBroadcast(testConfig(8, 1, 0, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 0 {
		t.Fatalf("single agent broadcast: %+v, want instant completion", res)
	}
}

func TestBroadcastGiantRadiusInstant(t *testing.T) {
	t.Parallel()
	// Radius covering the whole grid: everyone is one component at t=0.
	cfg := testConfig(8, 10, 14, 3) // diameter of 8x8 grid is 14
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 0 {
		t.Fatalf("grid-wide radius should broadcast at t=0: %+v", res)
	}
}

func TestBroadcastRandomSource(t *testing.T) {
	t.Parallel()
	cfg := testConfig(8, 6, 0, 5)
	cfg.Source = SourceRandom
	b, err := NewBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.SourceAgent() < 0 || b.SourceAgent() >= 6 {
		t.Fatalf("random source out of range: %d", b.SourceAgent())
	}
	if !b.Informed(b.SourceAgent()) {
		t.Fatal("source not informed at t=0")
	}
}

func TestBroadcastMonotoneInformedCurve(t *testing.T) {
	t.Parallel()
	cfg := testConfig(12, 8, 0, 11)
	cfg.RecordCurve = true
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InformedCurve) == 0 {
		t.Fatal("empty informed curve despite RecordCurve")
	}
	if res.InformedCurve[0] < 1 {
		t.Errorf("curve starts at %d, want >= 1", res.InformedCurve[0])
	}
	for i := 1; i < len(res.InformedCurve); i++ {
		if res.InformedCurve[i] < res.InformedCurve[i-1] {
			t.Fatalf("informed count decreased at step %d: %d -> %d",
				i, res.InformedCurve[i-1], res.InformedCurve[i])
		}
	}
	last := res.InformedCurve[len(res.InformedCurve)-1]
	if res.Completed && last != 8 {
		t.Errorf("completed run ends with %d informed, want 8", last)
	}
}

func TestBroadcastMaxStepsCap(t *testing.T) {
	t.Parallel()
	// Large grid, 2 agents, tiny cap: cannot complete.
	cfg := testConfig(64, 2, 0, 13)
	cfg.MaxSteps = 3
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Skip("improbable instant meeting; skipping")
	}
	if res.Steps != 3 {
		t.Errorf("capped run Steps = %d, want 3", res.Steps)
	}
}

func TestBroadcastDeterministicBySeed(t *testing.T) {
	t.Parallel()
	cfg := testConfig(10, 6, 1, 99)
	r1, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Steps != r2.Steps || r1.Source != r2.Source {
		t.Fatalf("same seed, different results: %+v vs %+v", r1, r2)
	}
}

func TestBroadcastFrontierMonotone(t *testing.T) {
	t.Parallel()
	cfg := testConfig(12, 8, 0, 17)
	cfg.RecordFrontier = true
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FrontierTrace) == 0 {
		t.Fatal("no frontier trace")
	}
	for i := 1; i < len(res.FrontierTrace); i++ {
		if res.FrontierTrace[i] < res.FrontierTrace[i-1] {
			t.Fatalf("frontier retreated at step %d", i)
		}
	}
	// Frontier advances by at most 1 per step (agents move at speed 1).
	for i := 1; i < len(res.FrontierTrace); i++ {
		if res.FrontierTrace[i]-res.FrontierTrace[i-1] > 1 {
			t.Fatalf("frontier jumped by %d at step %d",
				res.FrontierTrace[i]-res.FrontierTrace[i-1], i)
		}
	}
}

func TestBroadcastCoverage(t *testing.T) {
	t.Parallel()
	cfg := testConfig(6, 8, 0, 23)
	cfg.TrackInformedArea = true
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("broadcast incomplete")
	}
	// In the dynamic model coverage and broadcast are incomparable (the
	// paper notes T_C can be reached while agents remain uninformed), so we
	// only check that coverage happened and is plausibly timed.
	if res.CoverageSteps < 0 {
		t.Fatal("coverage never completed despite area tracking")
	}
	// Covering 36 nodes takes at least ceil(36/k)-1 steps even if all 8
	// agents were informed from the start and never overlapped.
	if min := cfg.Grid.N()/8 - 1; res.CoverageSteps < min {
		t.Errorf("T_C=%d below physical floor %d", res.CoverageSteps, min)
	}
}

func TestBroadcastStepByStepMatchesRun(t *testing.T) {
	t.Parallel()
	cfg := testConfig(10, 5, 0, 31)
	b1, err := NewBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !b1.Done() {
		b1.Step()
	}
	res2, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Time() != res2.Steps {
		t.Fatalf("manual stepping T_B=%d, Run T_B=%d", b1.Time(), res2.Steps)
	}
}

func TestBroadcastTrackComponents(t *testing.T) {
	t.Parallel()
	cfg := testConfig(6, 10, 2, 37)
	cfg.TrackComponents = true
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxComponent < 1 || res.MaxComponent > 10 {
		t.Errorf("MaxComponent = %d out of [1,10]", res.MaxComponent)
	}
}

func TestExplicitPlacement(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	// All agents stacked on one node: broadcast completes at t=0.
	stack := make([]grid.Point, 5)
	for i := range stack {
		stack[i] = grid.Point{X: 3, Y: 3}
	}
	cfg := Config{Grid: g, K: 5, Radius: 0, Seed: 1, Source: 0, Placement: stack}
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 0 {
		t.Fatalf("stacked placement should broadcast instantly: %+v", res)
	}
	// Gossip too.
	gres, err := RunGossip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !gres.Completed || gres.Steps != 0 {
		t.Fatalf("stacked gossip: %+v", gres)
	}
}

func TestExplicitPlacementSpread(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(16)
	// Two agents at opposite corners at r=0: cannot complete at t=0.
	cfg := Config{
		Grid: g, K: 2, Radius: 0, Seed: 7, Source: 0,
		Placement: []grid.Point{{X: 0, Y: 0}, {X: 15, Y: 15}},
		MaxSteps:  1,
	}
	b, err := NewBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Done() {
		t.Fatal("corner-separated agents informed at t=0")
	}
	if b.Population().Position(0) != (grid.Point{X: 0, Y: 0}) {
		t.Fatal("placement not applied")
	}
}

func TestPlacementValidation(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	// Wrong length.
	cfg := Config{Grid: g, K: 3, Placement: []grid.Point{{X: 0, Y: 0}}}
	if _, err := NewBroadcast(cfg); err == nil {
		t.Error("short placement accepted")
	}
	// Off-grid point.
	cfg = Config{Grid: g, K: 1, Placement: []grid.Point{{X: 9, Y: 0}}}
	if _, err := NewBroadcast(cfg); err == nil {
		t.Error("off-grid placement accepted")
	}
}

func TestCellReachTracking(t *testing.T) {
	t.Parallel()
	cfg := testConfig(16, 8, 0, 71)
	cfg.CellSide = 4
	b, err := NewBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !b.Done() {
		b.Step()
	}
	rep := b.CellReach()
	if rep == nil {
		t.Fatal("CellReach nil despite CellSide")
	}
	if rep.Cells != 16 || rep.CellSide != 4 {
		t.Fatalf("tessellation shape wrong: %+v", rep)
	}
	if rep.SourceCell < 0 || rep.SourceCell >= rep.Cells {
		t.Fatalf("source cell %d out of range", rep.SourceCell)
	}
	// The source's cell is reached at t=0.
	if rep.ReachTimes[rep.SourceCell] != 0 {
		t.Errorf("source cell reach time = %d, want 0", rep.ReachTimes[rep.SourceCell])
	}
	// Reach times are bounded by the run length and non-negative once set.
	for c, rt := range rep.ReachTimes {
		if rt >= 0 && rt > b.Time() {
			t.Errorf("cell %d reach time %d exceeds run length %d", c, rt, b.Time())
		}
	}
	if rep.MaxReach < 0 || rep.MaxReach > b.Time() {
		t.Errorf("MaxReach = %d", rep.MaxReach)
	}
	if rep.Reached < 1 {
		t.Error("no cells reached")
	}
}

func TestCellReachDisabled(t *testing.T) {
	t.Parallel()
	b, err := NewBroadcast(testConfig(8, 4, 0, 73))
	if err != nil {
		t.Fatal(err)
	}
	if b.CellReach() != nil {
		t.Error("CellReach non-nil without CellSide")
	}
}

func TestCellReachNegativeCellSideRejected(t *testing.T) {
	t.Parallel()
	cfg := testConfig(8, 4, 0, 79)
	cfg.CellSide = -1
	if _, err := NewBroadcast(cfg); err == nil {
		t.Error("negative CellSide accepted")
	}
}

func TestReachByCellDistance(t *testing.T) {
	t.Parallel()
	// Hand-built report: 3x3 cells, source at center (cell 4).
	rep := &CellReachReport{
		Cells:      9,
		SourceCell: 4,
		ReachTimes: []int{9, 5, 9, 5, 0, 5, 9, 5, -1},
	}
	prof := rep.ReachByCellDistance(3)
	if len(prof) != 2 {
		t.Fatalf("profile length %d, want 2", len(prof))
	}
	if prof[0] != 0 {
		t.Errorf("ring 0 mean = %v, want 0", prof[0])
	}
	// Ring 1: seven reached cells (one unreached) with times 9,5,9,5,5,9,5:
	// mean = 47/7.
	want := 47.0 / 7.0
	if diff := prof[1] - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ring 1 mean = %v, want %v", prof[1], want)
	}
	if rep.ReachByCellDistance(0) != nil {
		t.Error("perRow=0 should return nil")
	}
}

func TestInitialSpread(t *testing.T) {
	t.Parallel()
	cfg := testConfig(16, 8, 0, 41)
	d, err := InitialSpread(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 || d > cfg.Grid.Diameter() {
		t.Errorf("initial spread %d outside [0, %d]", d, cfg.Grid.Diameter())
	}
	// Deterministic per seed.
	d2, err := InitialSpread(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d != d2 {
		t.Errorf("InitialSpread not deterministic: %d vs %d", d, d2)
	}
	if _, err := InitialSpread(Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestGossipCompletesSmall(t *testing.T) {
	t.Parallel()
	res, err := RunGossip(testConfig(8, 4, 0, 43))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("gossip did not complete: %+v", res)
	}
}

func TestGossipSingleAgent(t *testing.T) {
	t.Parallel()
	res, err := RunGossip(testConfig(8, 1, 0, 47))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 0 {
		t.Fatalf("single-agent gossip: %+v", res)
	}
}

func TestGossipGiantRadiusInstant(t *testing.T) {
	t.Parallel()
	cfg := testConfig(8, 6, 14, 53)
	res, err := RunGossip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 0 {
		t.Fatalf("grid-wide radius gossip: %+v, want instant", res)
	}
}

func TestGossipRumorMonotonicity(t *testing.T) {
	t.Parallel()
	cfg := testConfig(10, 6, 0, 59)
	g, err := NewGossip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every agent must always know its own rumor, and counts never shrink.
	prev := make([]int, 6)
	for i := 0; i < 6; i++ {
		if !g.Knows(i, i) {
			t.Fatalf("agent %d lost its own rumor at t=0", i)
		}
		prev[i] = g.RumorCount(i)
	}
	for step := 0; step < 200 && !g.Done(); step++ {
		g.Step()
		for i := 0; i < 6; i++ {
			c := g.RumorCount(i)
			if c < prev[i] {
				t.Fatalf("agent %d forgot rumors: %d -> %d at t=%d", i, prev[i], c, g.Time())
			}
			if !g.Knows(i, i) {
				t.Fatalf("agent %d lost its own rumor", i)
			}
			prev[i] = c
		}
	}
}

func TestGossipAtLeastBroadcast(t *testing.T) {
	t.Parallel()
	// With identical seeds the trajectories coincide, and gossip (all k
	// rumors everywhere) cannot finish before the slowest single rumor.
	// We check the weaker, deterministic claim: T_G >= T_B for the rumor
	// originating at the gossip's slowest agent is hard to extract, so we
	// assert T_G >= max over a few broadcast sources.
	side, k := 10, 5
	var maxTB int
	for srcIdx := 0; srcIdx < k; srcIdx++ {
		cfg := testConfig(side, k, 0, 61)
		cfg.Source = srcIdx
		res, err := RunBroadcast(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("broadcast incomplete")
		}
		if res.Steps > maxTB {
			maxTB = res.Steps
		}
	}
	gres, err := RunGossip(testConfig(side, k, 0, 61))
	if err != nil {
		t.Fatal(err)
	}
	if !gres.Completed {
		t.Fatal("gossip incomplete")
	}
	if gres.Steps < maxTB {
		t.Errorf("T_G=%d < max T_B=%d with shared trajectories", gres.Steps, maxTB)
	}
}

func TestPartialGossip(t *testing.T) {
	t.Parallel()
	cfg := testConfig(10, 8, 0, 83)
	g, err := NewPartialGossip(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalRumors() != 3 {
		t.Fatalf("TotalRumors = %d, want 3", g.TotalRumors())
	}
	// Agents 0-2 hold rumors 0-2; agents 3+ hold nothing initially (unless
	// the t=0 exchange already reached them).
	for i := 0; i < 3; i++ {
		if !g.Knows(i, i) {
			t.Errorf("agent %d missing its own rumor", i)
		}
	}
	res := g.Run()
	if !res.Completed {
		t.Fatalf("partial gossip incomplete: %+v", res)
	}
	for i := 0; i < 8; i++ {
		if g.RumorCount(i) != 3 {
			t.Errorf("agent %d knows %d/3 rumors after completion", i, g.RumorCount(i))
		}
	}
}

func TestPartialGossipValidation(t *testing.T) {
	t.Parallel()
	cfg := testConfig(8, 4, 0, 89)
	if _, err := NewPartialGossip(cfg, -1); err == nil {
		t.Error("negative rumor count accepted")
	}
	if _, err := NewPartialGossip(cfg, 5); err == nil {
		t.Error("rumors > k accepted")
	}
	// rumors = 0 selects |M| = k.
	g, err := NewPartialGossip(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalRumors() != 4 {
		t.Errorf("default TotalRumors = %d, want 4", g.TotalRumors())
	}
}

func TestPartialGossipSingleRumorMatchesBroadcastBound(t *testing.T) {
	t.Parallel()
	// |M| = 1 gossip is exactly broadcast from agent 0 (same seed, same
	// trajectories, same exchange rule), so the times must coincide.
	cfg := testConfig(10, 6, 0, 97)
	gres, err := RunPartialGossip(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !gres.Completed || !bres.Completed {
		t.Fatal("runs incomplete")
	}
	if gres.Steps != bres.Steps {
		t.Errorf("single-rumor gossip T=%d != broadcast T=%d", gres.Steps, bres.Steps)
	}
}

func TestPartialGossipFewerRumorsNotSlower(t *testing.T) {
	t.Parallel()
	// With shared trajectories, knowing-everything with fewer rumors is a
	// weaker condition: T_G(|M|=2) <= T_G(|M|=k).
	cfg := testConfig(10, 6, 0, 101)
	small, err := RunPartialGossip(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunPartialGossip(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !small.Completed || !full.Completed {
		t.Fatal("runs incomplete")
	}
	if small.Steps > full.Steps {
		t.Errorf("T_G(|M|=2)=%d > T_G(|M|=k)=%d with shared trajectories", small.Steps, full.Steps)
	}
}

func TestGossipDeterministicBySeed(t *testing.T) {
	t.Parallel()
	cfg := testConfig(9, 5, 1, 67)
	r1, err := RunGossip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunGossip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same seed, different gossip results: %+v vs %+v", r1, r2)
	}
}

// Radius monotonicity in distribution: a larger radius can only help. With
// a shared seed the trajectories are identical, and since information flow
// at radius r1 is a subset of flow at radius r2 >= r1, T_B must be
// non-increasing in r for the same trajectory realisation.
func TestBroadcastRadiusMonotoneSharedSeed(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 6; seed++ {
		var prev int
		for i, r := range []int{0, 1, 2, 4} {
			cfg := testConfig(12, 8, r, 100+seed)
			res, err := RunBroadcast(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatal("incomplete")
			}
			if i > 0 && res.Steps > prev {
				t.Errorf("seed %d: T_B increased from %d to %d when r grew to %d",
					seed, prev, res.Steps, r)
			}
			prev = res.Steps
		}
	}
}

func BenchmarkBroadcastSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(32, 16, 0, uint64(i))
		if _, err := RunBroadcast(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGossipSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(24, 12, 0, uint64(i))
		if _, err := RunGossip(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
