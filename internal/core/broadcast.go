package core

import (
	"mobilenet/internal/agent"
	"mobilenet/internal/bitset"
	"mobilenet/internal/grid"
	"mobilenet/internal/obs"
	"mobilenet/internal/prof"
	"mobilenet/internal/rng"
	"mobilenet/internal/visibility"
)

// Broadcast simulates the spread of a single rumor from one source agent to
// the whole population. Construct with NewBroadcast, then either call Run
// for the full simulation or Step to drive it manually.
type Broadcast struct {
	cfg Config
	pop *agent.Population
	lab *visibility.Incremental

	// informed is the informed set as a bitset; the spread path floods it
	// directly through the labeller's union-find roots (visibility.Flood),
	// so ordinary steps never materialise component labels.
	informed *bitset.Set
	newly    []int32 // per-step newly-informed scratch, reused
	moved    []int32 // per-step moved-agent scratch, reused
	src      int

	area      *bitset.Set // informed area I(t); nil unless tracked
	frontierX int32

	curve    []int
	frontier []int32
	maxComp  int

	cells      *cellTracker // Theorem 1 tessellation bookkeeping; nil when off
	sourceCell int

	coverageStep int // first step with |I(t)| = n; -1 until then

	obsr        *obs.Recorder
	sizeScratch []int32 // component-size buffer for the largest observable
	lastComps   int     // component count at the last observed step
	lastLargest int     // largest component size at the last observed step
}

// NewBroadcast validates cfg, places the population and performs the time-0
// rumor exchange (the rumor floods the source's component of G_0(r) before
// anyone moves, per the paper's model).
func NewBroadcast(cfg Config) (*Broadcast, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	pop, err := agent.NewWithModel(cfg.Grid, cfg.K, src, cfg.Mobility)
	if err != nil {
		return nil, err
	}
	for i, p := range cfg.Placement {
		pop.SetPosition(i, p)
	}
	b := &Broadcast{
		cfg:          cfg,
		pop:          pop,
		lab:          cfg.newLabeller(),
		informed:     bitset.New(cfg.K),
		newly:        make([]int32, 0, cfg.K),
		moved:        make([]int32, 0, cfg.K),
		coverageStep: -1,
		frontierX:    -1,
		obsr:         cfg.Observer,
	}
	b.src = cfg.Source
	if b.src == SourceRandom {
		b.src = src.Intn(cfg.K)
	}
	b.informed.Add(b.src)
	if cfg.TrackInformedArea || cfg.RecordFrontier || (b.obsr != nil && b.obsr.NeedsCoverage()) {
		b.area = bitset.New(cfg.Grid.N())
	}
	if b.obsr != nil && b.obsr.NeedsComponents() {
		b.sizeScratch = make([]int32, 0, cfg.K)
	}
	if cfg.CellSide > 0 {
		b.cells = newCellTracker(cfg.Grid, cfg.CellSide)
		b.sourceCell = int(b.cells.tess.CellOf(pop.Position(b.src)))
	}
	// Time-0 exchange on the initial configuration. The mark anchors the
	// profiler so the time-0 flood and record are attributed like any step
	// (the labeller laps index/label internally). No moved report exists
	// yet, so the area trackers take their one full pass here.
	cfg.Profile.Mark()
	b.exchange(nil, false)
	b.record()
	return b, nil
}

// exchange floods the rumor through the connected components of the current
// visibility graph and updates the informed-area trackers.
//
// The fast path never materialises component labels: visibility.Flood
// spreads the informed bitset directly over the labeller's union-find
// forest, returning the newly informed agents. Labels are computed only
// when component statistics were requested for this step, in which case the
// flood reuses them (FloodWithLabels) instead of touching the forest again.
// Component work is skipped entirely once everyone is informed (the
// coverage-continuation phase only needs positions), unless component
// statistics force it.
//
// moved, when movedOK, lists exactly the agents whose position changed in
// the step that preceded this exchange; the area trackers then update from
// moved agents and newly informed agents only, instead of sweeping the
// whole informed set. An informed agent that did not move contributed its
// node the moment it became informed or last moved, so the sweep adds
// nothing new — the t=0 full pass anchors the induction.
func (b *Broadcast) exchange(moved []int32, movedOK bool) {
	// An observer wanting component observables at this step forces the
	// labelling even in the coverage-continuation phase, where it is
	// otherwise skipped once everyone is informed.
	observeComps := b.obsr != nil && b.obsr.NeedsComponents() && b.obsr.Wants(b.pop.Time())
	k := b.pop.K()
	b.newly = b.newly[:0]
	if b.cfg.TrackComponents || observeComps {
		labels, count := b.lab.Components(b.pop.Positions(), b.cfg.Radius)
		// One size pass serves both the running maximum and the per-step
		// observables.
		var m int
		m, b.sizeScratch = visibility.MaxSizeScratch(labels, count, b.sizeScratch)
		if b.cfg.TrackComponents && m > b.maxComp {
			b.maxComp = m
		}
		if observeComps {
			b.lastComps = count
			b.lastLargest = m
		}
		if b.informed.Len() < k {
			b.newly = b.lab.FloodWithLabels(labels, count, b.informed, b.newly)
		}
	} else if b.informed.Len() < k {
		b.newly = b.lab.Flood(b.pop.Positions(), b.cfg.Radius, b.informed, b.newly)
	}
	if b.area != nil {
		g := b.pop.Grid()
		pos := b.pop.Positions()
		if movedOK {
			// Incremental area update: only a moved informed agent or a
			// newly informed one can stand on a node the area lacks.
			for _, i := range moved {
				if b.informed.Contains(int(i)) {
					b.touchArea(g, pos[i])
				}
			}
			for _, i := range b.newly {
				b.touchArea(g, pos[i])
			}
		} else {
			for i := 0; i < k; i++ {
				if b.informed.Contains(i) {
					b.touchArea(g, pos[i])
				}
			}
		}
		if b.coverageStep < 0 && b.area.Len() == g.N() {
			b.coverageStep = b.pop.Time()
		}
	}
	if b.cells != nil && !b.cells.allReached() {
		t := b.pop.Time()
		pos := b.pop.Positions()
		if movedOK {
			for _, i := range moved {
				if b.informed.Contains(int(i)) {
					b.cells.observe(pos[i], t)
				}
			}
			for _, i := range b.newly {
				b.cells.observe(pos[i], t)
			}
		} else {
			for i := 0; i < k; i++ {
				if b.informed.Contains(i) {
					b.cells.observe(pos[i], t)
				}
			}
		}
	}
	// Everything since the labeller's label lap (or the step's move lap
	// when labelling was skipped) is dissemination work.
	b.cfg.Profile.Lap(prof.Spread)
}

// touchArea adds one agent position to the informed area and advances the
// frontier.
func (b *Broadcast) touchArea(g *grid.Grid, p grid.Point) {
	b.area.Add(int(g.ID(p)))
	if p.X > b.frontierX {
		b.frontierX = p.X
	}
}

func (b *Broadcast) record() {
	if b.cfg.RecordCurve {
		b.curve = append(b.curve, b.informed.Len())
	}
	if b.cfg.RecordFrontier {
		b.frontier = append(b.frontier, b.frontierX)
	}
	if t := b.pop.Time(); b.obsr != nil && b.obsr.Wants(t) {
		covered := 0
		if b.area != nil {
			covered = b.area.Len()
		}
		b.obsr.Record(t, obs.Sample{
			Informed:   b.informed.Len(),
			Components: b.lastComps,
			Largest:    b.lastLargest,
			Covered:    covered,
			Nodes:      b.pop.Grid().N(),
		})
	}
	b.cfg.Profile.Lap(prof.Observe)
}

// Step advances the system one time unit: all agents move synchronously,
// then rumors flood the new components. Models that report per-step moves
// feed the incremental area trackers; the trajectory is bit-identical
// either way (see agent.Population.StepMoved).
func (b *Broadcast) Step() {
	p := b.cfg.Profile
	p.Mark()
	moved, ok := b.pop.StepMoved(b.moved[:0])
	b.moved = moved
	p.Lap(prof.Move)
	b.exchange(moved, ok)
	b.record()
	p.StepDone()
}

// Done reports whether every agent is informed.
func (b *Broadcast) Done() bool { return b.informed.Len() == b.pop.K() }

// Time returns the current simulation time.
func (b *Broadcast) Time() int { return b.pop.Time() }

// InformedCount returns the number of informed agents.
func (b *Broadcast) InformedCount() int { return b.informed.Len() }

// Informed reports whether agent i knows the rumor.
func (b *Broadcast) Informed(i int) bool { return b.informed.Contains(i) }

// SourceAgent returns the index of the source agent.
func (b *Broadcast) SourceAgent() int { return b.src }

// Population exposes the underlying population (read-only use expected).
func (b *Broadcast) Population() *agent.Population { return b.pop }

// InformedArea returns the number of grid nodes in I(t), or 0 when area
// tracking is disabled.
func (b *Broadcast) InformedArea() int {
	if b.area == nil {
		return 0
	}
	return b.area.Len()
}

// FrontierX returns the rightmost x-coordinate of the informed area, or -1
// when area tracking is disabled.
func (b *Broadcast) FrontierX() int32 { return b.frontierX }

// BroadcastResult summarises a completed (or capped) broadcast run.
type BroadcastResult struct {
	// Steps is the broadcast time T_B: the first time step at which every
	// agent is informed. Valid only when Completed.
	Steps int
	// Completed is false when the run hit MaxSteps before full dissemination.
	Completed bool
	// Source is the index of the source agent.
	Source int
	// InformedCurve holds the informed count after each step, starting with
	// t=0 (present only with Config.RecordCurve).
	InformedCurve []int
	// FrontierTrace holds the rightmost informed-area x-coordinate after
	// each step, starting with t=0 (present only with Config.RecordFrontier).
	FrontierTrace []int32
	// CoverageSteps is T_C, the first time the informed area covers every
	// grid node; -1 if not reached or not tracked.
	CoverageSteps int
	// MaxComponent is the largest visibility component observed (present
	// only with Config.TrackComponents).
	MaxComponent int
}

// Run advances the simulation until every agent is informed or the step cap
// is reached, and returns the result. When Config.TrackInformedArea is set,
// the run continues after full information until the grid is covered (to
// measure T_C), still subject to the step cap.
func (b *Broadcast) Run() BroadcastResult {
	stepCap := b.cfg.maxSteps()
	for !b.Done() && b.pop.Time() < stepCap && !b.cfg.Cancel.Stop() {
		b.Step()
	}
	res := BroadcastResult{
		Steps:         b.pop.Time(),
		Completed:     b.Done(),
		Source:        b.src,
		InformedCurve: b.curve,
		FrontierTrace: b.frontier,
		CoverageSteps: -1,
		MaxComponent:  b.maxComp,
	}
	// The coverage continuation is keyed on the config flags, not on
	// b.area: an observer that merely records the coverage fraction
	// allocates the area bitset too, but must not change the run's
	// semantics (no continuation past full dissemination, CoverageSteps
	// stays -1).
	if b.cfg.TrackInformedArea || b.cfg.RecordFrontier {
		for b.coverageStep < 0 && b.pop.Time() < stepCap && !b.cfg.Cancel.Stop() {
			b.Step()
		}
		res.CoverageSteps = b.coverageStep
		res.MaxComponent = b.maxComp
	}
	return res
}

// RunBroadcast is the one-shot convenience wrapper used by most experiments.
func RunBroadcast(cfg Config) (BroadcastResult, error) {
	b, err := NewBroadcast(cfg)
	if err != nil {
		return BroadcastResult{}, err
	}
	return b.Run(), nil
}

// distanceToAll returns the Manhattan distance from the source agent to the
// farthest agent at time 0; exposed through helper for the Theorem 2
// geometry experiment (E17).
func distanceToAll(g *grid.Grid, pos []grid.Point, from int) int {
	best := 0
	for i := range pos {
		if i == from {
			continue
		}
		if d := grid.ManhattanPoints(pos[from], pos[i]); d > best {
			best = d
		}
	}
	return best
}

// InitialSpread places a fresh population per cfg and returns the distance
// from the source to the farthest agent, without running the simulation.
// This isolates the geometric premise of Theorem 2: with probability
// 1 - 2^-(k-1) some agent starts at distance >= sqrt(n)/2 from the source.
func InitialSpread(cfg Config) (int, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	src := rng.New(cfg.Seed)
	pop, err := agent.New(cfg.Grid, cfg.K, src)
	if err != nil {
		return 0, err
	}
	s := cfg.Source
	if s == SourceRandom {
		s = src.Intn(cfg.K)
	}
	return distanceToAll(cfg.Grid, pop.Positions(), s), nil
}
