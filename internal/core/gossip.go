package core

import (
	"fmt"

	"mobilenet/internal/agent"
	"mobilenet/internal/bitset"
	"mobilenet/internal/obs"
	"mobilenet/internal/prof"
	"mobilenet/internal/rng"
	"mobilenet/internal/visibility"
)

// Gossip simulates the multi-rumor problem of the paper's §2: at time 0 a
// set M of distinct rumors is held by distinct agents (the classical gossip
// problem assigns one rumor to every agent, |M| = k), and within each
// component of G_t(r) agents exchange everything they know. The gossip time
// T_G is the first time every agent knows every rumor (paper, Definition 1
// and Corollary 2).
type Gossip struct {
	cfg   Config
	pop   *agent.Population
	lab   *visibility.Incremental
	total int // |M|, number of distinct rumors

	rumors  []*bitset.Set // rumors[i] = M_{a_i}(t)
	haveAll int           // number of agents knowing all rumors
	scratch *bitset.Set   // component-union accumulator
	members [][]int32     // component membership scratch, indexed by label

	obsr *obs.Recorder
}

// NewGossip starts the all-to-all problem (one rumor per agent) and
// performs the time-0 exchange.
func NewGossip(cfg Config) (*Gossip, error) {
	return NewPartialGossip(cfg, 0)
}

// NewPartialGossip starts a gossip with the given number of distinct
// rumors, held by agents 0..rumors-1 (the paper's §2 assumes w.l.o.g. at
// most one rumor per agent). rumors = 0 selects the classical |M| = k.
func NewPartialGossip(cfg Config, rumors int) (*Gossip, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rumors < 0 || rumors > cfg.K {
		return nil, fmt.Errorf("core: rumor count %d outside [0,%d]", rumors, cfg.K)
	}
	if rumors == 0 {
		rumors = cfg.K
	}
	src := rng.New(cfg.Seed)
	pop, err := agent.NewWithModel(cfg.Grid, cfg.K, src, cfg.Mobility)
	if err != nil {
		return nil, err
	}
	for i, p := range cfg.Placement {
		pop.SetPosition(i, p)
	}
	g := &Gossip{
		cfg:     cfg,
		pop:     pop,
		lab:     cfg.newLabeller(),
		total:   rumors,
		rumors:  make([]*bitset.Set, cfg.K),
		scratch: bitset.New(rumors),
		obsr:    cfg.Observer,
	}
	for i := range g.rumors {
		g.rumors[i] = bitset.New(rumors)
		if i < rumors {
			g.rumors[i].Add(i)
		}
	}
	for i := range g.rumors {
		if g.rumors[i].Len() == g.total {
			g.haveAll++
		}
	}
	cfg.Profile.Mark()
	g.exchange()
	return g, nil
}

// exchange merges rumor sets within every current component.
func (g *Gossip) exchange() {
	k := g.pop.K()
	labels, count := g.lab.Components(g.pop.Positions(), g.cfg.Radius)

	// Group members by component label, reusing the scratch slices.
	if cap(g.members) < count {
		g.members = make([][]int32, count)
	}
	g.members = g.members[:count]
	for i := range g.members {
		g.members[i] = g.members[i][:0]
	}
	for i := 0; i < k; i++ {
		g.members[labels[i]] = append(g.members[labels[i]], int32(i))
	}

	for _, m := range g.members {
		if len(m) < 2 {
			continue
		}
		// Skip components where every member already knows everything:
		// nothing can change.
		complete := true
		for _, ai := range m {
			if g.rumors[ai].Len() != g.total {
				complete = false
				break
			}
		}
		if complete {
			continue
		}
		// Union all member sets, then install the union into each member.
		g.scratch.Clear()
		for _, ai := range m {
			g.scratch.UnionWith(g.rumors[ai])
		}
		full := g.scratch.Len() == g.total
		for _, ai := range m {
			if g.rumors[ai].Len() == g.scratch.Len() {
				continue // already equal: sets only grow, equal size => equal
			}
			wasFull := g.rumors[ai].Len() == g.total
			g.rumors[ai].CopyFrom(g.scratch)
			if full && !wasFull {
				g.haveAll++
			}
		}
	}
	g.cfg.Profile.Lap(prof.Spread)
	if t := g.pop.Time(); g.obsr != nil && g.obsr.Wants(t) {
		largest := 0
		if g.obsr.NeedsComponents() {
			for _, m := range g.members {
				if len(m) > largest {
					largest = len(m)
				}
			}
		}
		g.obsr.Record(t, obs.Sample{
			Informed:   g.haveAll,
			Components: count,
			Largest:    largest,
		})
	}
	g.cfg.Profile.Lap(prof.Observe)
}

// Step advances the system one time unit.
func (g *Gossip) Step() {
	p := g.cfg.Profile
	p.Mark()
	g.pop.Step()
	p.Lap(prof.Move)
	g.exchange()
	p.StepDone()
}

// Done reports whether every agent knows every rumor.
func (g *Gossip) Done() bool { return g.haveAll == g.pop.K() }

// Time returns the current simulation time.
func (g *Gossip) Time() int { return g.pop.Time() }

// TotalRumors returns |M|, the number of distinct rumors in the system.
func (g *Gossip) TotalRumors() int { return g.total }

// RumorCount returns how many rumors agent i currently knows.
func (g *Gossip) RumorCount(i int) int { return g.rumors[i].Len() }

// Knows reports whether agent i knows rumor j.
func (g *Gossip) Knows(i, j int) bool { return g.rumors[i].Contains(j) }

// GossipResult summarises a gossip run.
type GossipResult struct {
	// Steps is the gossip time T_G. Valid only when Completed.
	Steps int
	// Completed is false when the run hit MaxSteps first.
	Completed bool
}

// Run advances until gossip completes or the step cap is reached.
func (g *Gossip) Run() GossipResult {
	stepCap := g.cfg.maxSteps()
	for !g.Done() && g.pop.Time() < stepCap && !g.cfg.Cancel.Stop() {
		g.Step()
	}
	return GossipResult{Steps: g.pop.Time(), Completed: g.Done()}
}

// RunGossip is the one-shot convenience wrapper for the classical
// all-to-all problem.
func RunGossip(cfg Config) (GossipResult, error) {
	g, err := NewGossip(cfg)
	if err != nil {
		return GossipResult{}, err
	}
	return g.Run(), nil
}

// RunPartialGossip is the one-shot wrapper for |M| = rumors distinct
// rumors (0 selects |M| = k).
func RunPartialGossip(cfg Config, rumors int) (GossipResult, error) {
	g, err := NewPartialGossip(cfg, rumors)
	if err != nil {
		return GossipResult{}, err
	}
	return g.Run(), nil
}
