package core

import (
	"mobilenet/internal/grid"
)

// cellTracker records, per tessellation cell, the first time an informed
// agent occupied a node of the cell — the quantity t_Q of the paper's
// Theorem 1 proof ("a cell Q is reached at time t_Q if t_Q is the first
// time when a node of the cell hosts an agent informed of the rumor").
type cellTracker struct {
	tess  *grid.Tessellation
	reach []int // first reach time per cell, -1 until reached
	left  int   // cells not yet reached
}

func newCellTracker(g *grid.Grid, cellSide int) *cellTracker {
	tess := grid.NewTessellation(g, cellSide)
	reach := make([]int, tess.Cells())
	for i := range reach {
		reach[i] = -1
	}
	return &cellTracker{tess: tess, reach: reach, left: tess.Cells()}
}

// observe marks the cell containing p as reached at time t (no-op when the
// cell was reached earlier).
func (c *cellTracker) observe(p grid.Point, t int) {
	cell := c.tess.CellOf(p)
	if c.reach[cell] < 0 {
		c.reach[cell] = t
		c.left--
	}
}

// allReached reports whether every cell has been reached.
func (c *cellTracker) allReached() bool { return c.left == 0 }

// CellReachReport is the tessellation view of a broadcast run.
type CellReachReport struct {
	// CellSide is the tessellation cell side used.
	CellSide int
	// Cells is the number of cells.
	Cells int
	// Reached is the number of cells reached by an informed agent.
	Reached int
	// ReachTimes holds the first reach time per cell (-1 for unreached),
	// indexed by grid.CellID order.
	ReachTimes []int
	// MaxReach is the largest reach time among reached cells (the time at
	// which the last cell was first touched), or -1 when nothing was
	// reached.
	MaxReach int
	// SourceCell is the cell containing the source agent at time 0.
	SourceCell int
}

// AllCellsReached reports whether every tessellation cell has hosted an
// informed agent; it returns true vacuously when cell tracking is off.
// Broadcast completion does not imply exploration completion: the last
// stragglers may be informed before some far cell is ever visited, so
// exploration studies keep stepping past Done() until this returns true.
func (b *Broadcast) AllCellsReached() bool {
	return b.cells == nil || b.cells.allReached()
}

// CellReach returns the tessellation report, or nil when cell tracking was
// not enabled.
func (b *Broadcast) CellReach() *CellReachReport {
	if b.cells == nil {
		return nil
	}
	out := make([]int, len(b.cells.reach))
	copy(out, b.cells.reach)
	maxReach := -1
	reached := 0
	for _, t := range out {
		if t >= 0 {
			reached++
			if t > maxReach {
				maxReach = t
			}
		}
	}
	return &CellReachReport{
		CellSide:   b.cells.tess.CellSide(),
		Cells:      b.cells.tess.Cells(),
		Reached:    reached,
		ReachTimes: out,
		MaxReach:   maxReach,
		SourceCell: b.sourceCell,
	}
}

// ReachByCellDistance aggregates reach times by the Chebyshev cell-grid
// distance from the source cell, returning the mean reach time per distance
// ring. Rings with no reached cells carry -1. This is the observable behind
// the Theorem 1 picture: the rumor spreads cell to cell, so reach times
// should grow essentially linearly with cell distance.
func (r *CellReachReport) ReachByCellDistance(perRow int) []float64 {
	if perRow <= 0 || r.Cells == 0 {
		return nil
	}
	sx := r.SourceCell % perRow
	sy := r.SourceCell / perRow
	maxD := 0
	dist := make([]int, r.Cells)
	for c := 0; c < r.Cells; c++ {
		dx := c%perRow - sx
		if dx < 0 {
			dx = -dx
		}
		dy := c/perRow - sy
		if dy < 0 {
			dy = -dy
		}
		d := dx
		if dy > d {
			d = dy
		}
		dist[c] = d
		if d > maxD {
			maxD = d
		}
	}
	sums := make([]float64, maxD+1)
	counts := make([]int, maxD+1)
	for c, t := range r.ReachTimes {
		if t < 0 {
			continue
		}
		sums[dist[c]] += float64(t)
		counts[dist[c]]++
	}
	out := make([]float64, maxD+1)
	for d := range out {
		if counts[d] == 0 {
			out[d] = -1
			continue
		}
		out[d] = sums[d] / float64(counts[d])
	}
	return out
}
