package core

// Property-based tests of the dissemination invariants, run across random
// configurations via testing/quick.

import (
	"testing"
	"testing/quick"

	"mobilenet/internal/grid"
)

// Property: across random small configurations, the informed count is
// non-decreasing step to step, broadcast always terminates within the
// default cap, and the final informed count equals k.
func TestQuickBroadcastInvariants(t *testing.T) {
	t.Parallel()
	f := func(seedRaw uint32, kRaw, sideRaw, rRaw uint8) bool {
		side := int(sideRaw%12) + 4 // 4..15
		k := int(kRaw%10) + 2       // 2..11
		r := int(rRaw % 4)          // 0..3
		cfg := Config{
			Grid:        grid.MustNew(side),
			K:           k,
			Radius:      r,
			Seed:        uint64(seedRaw),
			Source:      0,
			RecordCurve: true,
		}
		b, err := NewBroadcast(cfg)
		if err != nil {
			return false
		}
		prev := b.InformedCount()
		if prev < 1 {
			return false
		}
		for !b.Done() && b.Time() < 1<<20 {
			b.Step()
			cur := b.InformedCount()
			if cur < prev || cur > k {
				return false
			}
			prev = cur
		}
		return b.Done() && b.InformedCount() == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: gossip rumor sets grow monotonically per agent, every agent
// keeps its own rumor, and completion means full sets everywhere.
func TestQuickGossipInvariants(t *testing.T) {
	t.Parallel()
	f := func(seedRaw uint32, kRaw, sideRaw uint8) bool {
		side := int(sideRaw%10) + 4 // 4..13
		k := int(kRaw%8) + 2        // 2..9
		cfg := Config{
			Grid:   grid.MustNew(side),
			K:      k,
			Radius: 0,
			Seed:   uint64(seedRaw),
		}
		g, err := NewGossip(cfg)
		if err != nil {
			return false
		}
		prev := make([]int, k)
		for i := 0; i < k; i++ {
			if !g.Knows(i, i) {
				return false
			}
			prev[i] = g.RumorCount(i)
		}
		for !g.Done() && g.Time() < 1<<20 {
			g.Step()
			for i := 0; i < k; i++ {
				c := g.RumorCount(i)
				if c < prev[i] || c > k || !g.Knows(i, i) {
					return false
				}
				prev[i] = c
			}
		}
		if !g.Done() {
			return false
		}
		for i := 0; i < k; i++ {
			if g.RumorCount(i) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: with identical seeds, a larger radius never yields a strictly
// larger broadcast time (information flow at radius r is a subset of flow
// at radius r' >= r over the same trajectories).
func TestQuickRadiusMonotonicity(t *testing.T) {
	t.Parallel()
	f := func(seedRaw uint32, kRaw, sideRaw, rRaw uint8) bool {
		side := int(sideRaw%10) + 6 // 6..15
		k := int(kRaw%8) + 2
		r := int(rRaw % 3)
		base := Config{Grid: grid.MustNew(side), K: k, Radius: r, Seed: uint64(seedRaw), Source: 0}
		lo, err := RunBroadcast(base)
		if err != nil || !lo.Completed {
			return false
		}
		base.Radius = r + 2
		hi, err := RunBroadcast(base)
		if err != nil || !hi.Completed {
			return false
		}
		return hi.Steps <= lo.Steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
