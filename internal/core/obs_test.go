package core

import (
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/obs"
)

// observedBroadcast builds a broadcast with every broadcast observable
// enabled and the recorder capped, for the allocation pins below.
func observedBroadcast(tb testing.TB, k int) (*Broadcast, *obs.Recorder) {
	tb.Helper()
	rec := obs.NewRecorder(obs.Spec{
		Observables: []string{obs.Informed, obs.Components, obs.Largest, obs.Coverage},
		Every:       1,
		MaxPoints:   512,
	})
	b, err := NewBroadcast(Config{
		Grid:        grid.MustNew(64),
		K:           k,
		Radius:      1,
		Seed:        7,
		Source:      0,
		Parallelism: 1,
		Observer:    rec,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return b, rec
}

// TestObservedStepNoAllocs pins the tentpole's acceptance criterion: with
// observation enabled (all four broadcast observables, cadence 1), the
// steady-state step loop performs zero allocations per step.
func TestObservedStepNoAllocs(t *testing.T) {
	b, _ := observedBroadcast(t, 64)
	// Warm up: grow the labeller and scratch slabs to steady state.
	for i := 0; i < 64; i++ {
		b.Step()
	}
	allocs := testing.AllocsPerRun(256, func() { b.Step() })
	if allocs != 0 {
		t.Errorf("observed broadcast step allocates %.2f per step, want 0", allocs)
	}
}

// TestObservedBroadcastSeries sanity-checks the recorded series shape on a
// full run: informed is monotone non-decreasing from 1 and the coverage
// fraction stays within [0, 1].
func TestObservedBroadcastSeries(t *testing.T) {
	t.Parallel()
	b, rec := observedBroadcast(t, 32)
	res := b.Run()
	if !res.Completed {
		t.Fatal("broadcast did not complete")
	}
	s := rec.Series()
	informed := s.Values[obs.Informed]
	if len(informed) == 0 || informed[0] < 1 {
		t.Fatalf("informed series %v", informed)
	}
	for i := 1; i < len(informed); i++ {
		if informed[i] < informed[i-1] {
			t.Fatalf("informed series not monotone at %d: %v", i, informed)
		}
	}
	for _, c := range s.Values[obs.Coverage] {
		if c < 0 || c > 1 {
			t.Fatalf("coverage fraction %v out of range", c)
		}
	}
	for i, largest := range s.Values[obs.Largest] {
		if comps := s.Values[obs.Components][i]; largest < 1 || comps < 1 {
			t.Fatalf("component observables empty at sample %d: largest=%v comps=%v", i, largest, comps)
		}
	}
}

// TestCoverageObservableKeepsRunSemantics is the regression test for the
// continuation leak: observing the coverage fraction allocates the
// informed-area bitset, but must not switch the run into the
// coverage-continuation phase or report a CoverageSteps the config never
// requested.
func TestCoverageObservableKeepsRunSemantics(t *testing.T) {
	t.Parallel()
	cfg := Config{Grid: grid.MustNew(32), K: 8, Radius: 1, Seed: 5, Source: 0, Parallelism: 1}
	plain, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed := cfg
	observed.Observer = obs.NewRecorder(obs.Spec{Observables: []string{obs.Coverage}, Every: 1})
	got, err := RunBroadcast(observed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps != plain.Steps || got.Completed != plain.Completed {
		t.Errorf("observed run diverged: steps %d vs %d", got.Steps, plain.Steps)
	}
	if got.CoverageSteps != -1 {
		t.Errorf("coverage observable leaked CoverageSteps = %d, want -1", got.CoverageSteps)
	}
}

// BenchmarkObservedBroadcastStep measures the per-step cost of the fully
// observed step loop; run with -benchmem to see the zero-allocation
// contract in the report.
func BenchmarkObservedBroadcastStep(b *testing.B) {
	br, _ := observedBroadcast(b, 256)
	for i := 0; i < 64; i++ {
		br.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Step()
	}
}

// BenchmarkBroadcastStepBaseline is the unobserved twin of the benchmark
// above, so the observation overhead is a one-line comparison.
func BenchmarkBroadcastStepBaseline(b *testing.B) {
	br, err := NewBroadcast(Config{
		Grid: grid.MustNew(64), K: 256, Radius: 1, Seed: 7, Source: 0, Parallelism: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		br.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Step()
	}
}
