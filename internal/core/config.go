// Package core implements the paper's information-dissemination process:
// k agents perform independent lazy random walks on an n-node grid, and at
// every time step each rumor floods the entire connected component of the
// visibility graph G_t(r) containing an informed agent. The package
// measures the quantities the paper's theorems bound — the broadcast time
// T_B, the gossip time T_G, the coverage time T_C, and the informed-area
// frontier of the Theorem 2 lower-bound argument.
package core

import (
	"fmt"
	"math"

	"mobilenet/internal/cancel"
	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/obs"
	"mobilenet/internal/prof"
	"mobilenet/internal/theory"
	"mobilenet/internal/visibility"
)

// SourceRandom selects a uniformly random source agent in Config.Source.
const SourceRandom = -1

// Config parameterises a dissemination run.
type Config struct {
	// Grid is the arena. Required.
	Grid *grid.Grid
	// K is the number of agents. Required, positive.
	K int
	// Radius is the transmission radius r >= 0 in Manhattan distance.
	Radius int
	// Seed drives all randomness of the run (placement and motion).
	Seed uint64
	// Source is the index of the initially informed agent, or SourceRandom.
	// Only used by broadcast (gossip starts every agent with its own rumor).
	Source int
	// MaxSteps caps the simulation length; 0 selects a generous default of
	// 64 * (n/sqrt(k)) * (log2(n)+1) steps, far above the Õ(n/√k) bound.
	MaxSteps int

	// Mobility selects the motion model the population follows; nil selects
	// the paper's lazy random walk (mobility.LazyWalk), which reproduces
	// the pre-subsystem stepping path bit for bit under equal seeds. The
	// theoretical bounds quoted elsewhere in this package are proved for
	// the lazy walk only; other models are experimental contrasts.
	Mobility mobility.Model

	// Parallelism sets the component labeller's worker count: 0 selects
	// the automatic policy (parallel union phase above an internal
	// population threshold), 1 forces the sequential path, larger values
	// request up to that many workers. Results are bit-for-bit identical
	// at every setting; this is purely an execution knob.
	Parallelism int

	// TrackInformedArea enables the informed-area bitset I(t): the set of
	// grid nodes visited by informed agents. Required for frontier and
	// coverage measurements; costs one bitset write per informed agent step.
	TrackInformedArea bool
	// RecordCurve records the number of informed agents after every step.
	RecordCurve bool
	// RecordFrontier records the rightmost informed-area x-coordinate after
	// every step (implies TrackInformedArea).
	RecordFrontier bool
	// TrackComponents records the largest visibility component seen.
	TrackComponents bool
	// CellSide, when positive, tessellates the grid into CellSide-sided
	// cells and records the first time an informed agent enters each cell —
	// the bookkeeping of the paper's Theorem 1 proof (cells of side
	// l = sqrt(14 n log³n / (c3 k))). See theory.CellSide for the paper's
	// value.
	CellSide int

	// Observer, when non-nil, receives a per-step observation sample after
	// every exchange (including the time-0 one), at the recorder's own
	// cadence. Observables the engine cannot fill are recorded as zero;
	// requesting component observables forces component labelling even in
	// phases the engine could otherwise skip it, and requesting coverage
	// forces informed-area tracking (but never the coverage-continuation
	// phase — run semantics are unchanged). A capped recorder allocates
	// nothing in the step loop; an uncapped one only on amortised slab
	// growth (see obs.Recorder.Record).
	Observer *obs.Recorder

	// Profile, when non-nil, accumulates per-phase wall-clock time (move,
	// index, label, spread, observe) across the run's steps. Purely an
	// execution knob: results are identical with or without it, and a nil
	// profile keeps the step loop allocation-free with only a branch per
	// phase boundary. One replicate per profile; not reset by the engine.
	Profile *prof.StepProfile

	// Cancel, when non-nil, is consulted in the run loop's condition: once
	// it reports stopped (it polls its context with amortized cost, see
	// internal/cancel) the run halts at the next step boundary and the
	// result reports Completed false at the current step count. Purely an
	// execution knob — a run that finishes without the check firing is
	// bit-for-bit identical to an uncancellable one — and a nil check
	// keeps the loop condition a constant-false branch.
	Cancel *cancel.Check

	// FullRelabel forces the component labeller to rebuild its spatial
	// index and relabel from scratch every step instead of maintaining
	// them incrementally. Results are bit-for-bit identical either way —
	// the differential tests in internal/visibility pin that — so this is
	// purely an execution knob, kept for ablation measurements and as a
	// bisection lever when diagnosing a suspected kernel fault.
	FullRelabel bool

	// Placement, when non-nil, overrides the mobility model's initial
	// placement with explicit agent positions (len == K, all on-grid).
	// Deterministic placements support scenario construction and
	// regression tests; the paper's model corresponds to leaving this nil.
	// Models with per-agent motion state (waypoint destinations, trace
	// clocks) keep the state they derived at placement time, so overriding
	// composes best with the memoryless models (lazy, levy).
	Placement []grid.Point
}

func (c *Config) validate() error {
	if c.Grid == nil {
		return fmt.Errorf("core: config requires a grid")
	}
	if c.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", c.K)
	}
	if c.Source != SourceRandom && (c.Source < 0 || c.Source >= c.K) {
		return fmt.Errorf("core: source %d out of range [0,%d)", c.Source, c.K)
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("core: negative MaxSteps %d", c.MaxSteps)
	}
	if c.CellSide < 0 {
		return fmt.Errorf("core: negative CellSide %d", c.CellSide)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: negative Parallelism %d", c.Parallelism)
	}
	if c.Placement != nil {
		if len(c.Placement) != c.K {
			return fmt.Errorf("core: placement has %d positions for %d agents", len(c.Placement), c.K)
		}
		for i, p := range c.Placement {
			if !c.Grid.Contains(p) {
				return fmt.Errorf("core: placement %d at %v is off-grid", i, p)
			}
		}
	}
	return nil
}

// newLabeller builds the engine's component labeller with the configured
// parallelism and profiler applied. Engines get the incremental kernel by
// default; FullRelabel routes every call through the retained from-scratch
// path (identical results, see visibility.Incremental).
func (c *Config) newLabeller() *visibility.Incremental {
	l := visibility.NewIncremental(c.K)
	l.SetParallelism(c.Parallelism)
	l.SetProfile(c.Profile)
	l.SetFullRebuild(c.FullRelabel)
	return l
}

// maxSteps resolves the step cap, applying the default when unset.
func (c *Config) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	n := c.Grid.N()
	scale := theory.BroadcastScale(n, c.K)
	cap := 64 * scale * (math.Log2(float64(n)) + 1)
	if cap < 4096 {
		cap = 4096
	}
	return int(cap)
}
