package tableio

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Broadcast times", "k", "T_B", "note")
	t.AddRow(8, 1234.5678, "below r_c")
	t.AddRow(16, 900.0, "below r_c")
	t.AddRow(32, 640, "pipe|char")
	return t
}

func TestAddRowFormatting(t *testing.T) {
	t.Parallel()
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow(1.0, 2.5, "x")
	if tb.Rows[0][0] != "1" {
		t.Errorf("integral float rendered as %q, want 1", tb.Rows[0][0])
	}
	if tb.Rows[0][1] != "2.5" {
		t.Errorf("float rendered as %q", tb.Rows[0][1])
	}
	// Short row padded.
	tb.AddRow("only")
	if len(tb.Rows[1]) != 3 {
		t.Errorf("short row not padded: %v", tb.Rows[1])
	}
	// float32 path.
	tb.AddRow(float32(1.25), 0, 0)
	if tb.Rows[2][0] != "1.25" {
		t.Errorf("float32 rendered as %q", tb.Rows[2][0])
	}
}

func TestTextAligned(t *testing.T) {
	t.Parallel()
	out := sample().Text()
	if !strings.Contains(out, "Broadcast times") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Separator dashes under each column.
	if !strings.HasPrefix(lines[2], "--") {
		t.Errorf("separator line: %q", lines[2])
	}
	// Header columns appear in order.
	if !strings.Contains(lines[1], "k") || !strings.Contains(lines[1], "T_B") {
		t.Errorf("header line: %q", lines[1])
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	t.Parallel()
	out := sample().Markdown()
	if !strings.Contains(out, `pipe\|char`) {
		t.Error("pipe not escaped in markdown")
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Error("missing separator row")
	}
	if !strings.Contains(out, "**Broadcast times**") {
		t.Error("missing bold title")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	t.Parallel()
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d, want 4:\n%s", len(lines), out)
	}
	if lines[0] != "k,T_B,note" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "pipe|char") {
		t.Errorf("CSV row 3 = %q", lines[3])
	}
}

func TestEmptyTable(t *testing.T) {
	t.Parallel()
	tb := NewTable("", "x")
	if out := tb.Text(); !strings.Contains(out, "x") {
		t.Errorf("empty table text: %q", out)
	}
	if out := tb.Markdown(); !strings.Contains(out, "| x |") {
		t.Errorf("empty table markdown: %q", out)
	}
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x\n" {
		t.Errorf("empty table CSV: %q", b.String())
	}
}

func TestRowsLongerThanHeader(t *testing.T) {
	t.Parallel()
	tb := NewTable("t", "a")
	tb.AddRow("1", "2", "3")
	out := tb.Text()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cells dropped: %q", out)
	}
}
