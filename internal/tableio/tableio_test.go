package tableio

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Broadcast times", "k", "T_B", "note")
	t.AddRow(8, 1234.5678, "below r_c")
	t.AddRow(16, 900.0, "below r_c")
	t.AddRow(32, 640, "pipe|char")
	return t
}

func TestAddRowFormatting(t *testing.T) {
	t.Parallel()
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow(1.0, 2.5, "x")
	if tb.Rows[0][0] != "1" {
		t.Errorf("integral float rendered as %q, want 1", tb.Rows[0][0])
	}
	if tb.Rows[0][1] != "2.5" {
		t.Errorf("float rendered as %q", tb.Rows[0][1])
	}
	// Short row padded.
	tb.AddRow("only")
	if len(tb.Rows[1]) != 3 {
		t.Errorf("short row not padded: %v", tb.Rows[1])
	}
	// float32 path.
	tb.AddRow(float32(1.25), 0, 0)
	if tb.Rows[2][0] != "1.25" {
		t.Errorf("float32 rendered as %q", tb.Rows[2][0])
	}
}

func TestTextAligned(t *testing.T) {
	t.Parallel()
	out := sample().Text()
	if !strings.Contains(out, "Broadcast times") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Separator dashes under each column.
	if !strings.HasPrefix(lines[2], "--") {
		t.Errorf("separator line: %q", lines[2])
	}
	// Header columns appear in order.
	if !strings.Contains(lines[1], "k") || !strings.Contains(lines[1], "T_B") {
		t.Errorf("header line: %q", lines[1])
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	t.Parallel()
	out := sample().Markdown()
	if !strings.Contains(out, `pipe\|char`) {
		t.Error("pipe not escaped in markdown")
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Error("missing separator row")
	}
	if !strings.Contains(out, "**Broadcast times**") {
		t.Error("missing bold title")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	t.Parallel()
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d, want 4:\n%s", len(lines), out)
	}
	if lines[0] != "k,T_B,note" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "pipe|char") {
		t.Errorf("CSV row 3 = %q", lines[3])
	}
}

func TestEmptyTable(t *testing.T) {
	t.Parallel()
	tb := NewTable("", "x")
	if out := tb.Text(); !strings.Contains(out, "x") {
		t.Errorf("empty table text: %q", out)
	}
	if out := tb.Markdown(); !strings.Contains(out, "| x |") {
		t.Errorf("empty table markdown: %q", out)
	}
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x\n" {
		t.Errorf("empty table CSV: %q", b.String())
	}
}

func TestRowsLongerThanHeader(t *testing.T) {
	t.Parallel()
	tb := NewTable("t", "a")
	tb.AddRow("1", "2", "3")
	out := tb.Text()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cells dropped: %q", out)
	}
}

// sweepTable builds a fixed table shaped exactly like the sweep layer's
// Result.Table() output (axis columns first, then replicate statistics),
// the form the golden files pin.
func sweepTable() *Table {
	t := NewTable("sweep 9f86d081884c",
		"agents", "mobility", "reps", "mean_steps", "stddev", "median",
		"ci95_low", "ci95_high", "all_completed", "hash")
	// CI cells use the Student-t critical value for n = 4 replicates
	// (t(3) = 3.182), matching stats.Summarize.
	t.AddRow(8, "lazy", 4, 2048.25, 101.5, 2040.0, 1886.76, 2209.74, true, "9f86d081884c")
	t.AddRow(8, "ballistic", 4, 1765.5, 88.875, 1760.0, 1624.1, 1906.9, true, "60303ae22b99")
	t.AddRow(32, "lazy", 4, 1024.75, 55.0625, 1020.0, 937.15, 1112.35, false, "fd61a03af4f7")
	t.AddRow(32, "ballistic", 4, 880.0, 41.125, 876.5, 814.57, 945.43, true, "a4e624d686e0")
	return t
}

// TestSweepTableGoldens pins the CSV and JSON encodings of a sweep table
// to golden files: any change to cell formatting or encoding shape is a
// visible diff in testdata/, not a silent behaviour change for consumers
// of `mobisim -sweep -csv` or the sweep service payloads.
func TestSweepTableGoldens(t *testing.T) {
	t.Parallel()
	cases := []struct {
		golden string
		render func(*Table, io.Writer) error
	}{
		{"sweep_table.csv", func(tb *Table, w io.Writer) error { return tb.WriteCSV(w) }},
		{"sweep_table.json", func(tb *Table, w io.Writer) error { return tb.WriteJSON(w) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.golden, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := tc.render(sweepTable(), &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (regenerate by writing buf): %v", err)
			}
			if buf.String() != string(want) {
				t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s",
					tc.golden, buf.String(), want)
			}
		})
	}
}

// TestJSONMatchesCSVCells guards the invariant the golden files rely on:
// the JSON rows are exactly the CSV cells.
func TestJSONMatchesCSVCells(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	tb := sample()
	if decoded.Title != tb.Title {
		t.Errorf("title %q", decoded.Title)
	}
	if !reflect.DeepEqual(decoded.Columns, tb.Columns) {
		t.Errorf("columns %v", decoded.Columns)
	}
	if !reflect.DeepEqual(decoded.Rows, tb.Rows) {
		t.Errorf("rows %v != %v", decoded.Rows, tb.Rows)
	}
}

func TestWriteJSONEmptyTable(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := NewTable("", "a", "b").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rows": []`) {
		t.Errorf("empty table rows not an empty array:\n%s", buf.String())
	}
}
