// Package tableio renders the result tables of the experiment and sweep
// layers in the four forms the repository emits: aligned plain text
// (terminal), Markdown (EXPERIMENTS.md), CSV and JSON (results/ directory
// and the sweep CLI/service, for external tooling). The CSV and JSON
// encodings are deterministic functions of the table, pinned by golden
// files in testdata/.
package tableio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple rectangular table with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable constructs a table with the given columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row, formatting each cell with %v. Rows shorter than the
// header are padded with empty cells; longer rows are accepted as-is.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, formatFloat(v))
		case float32:
			row = append(row, formatFloat(float64(v)))
		default:
			row = append(row, fmt.Sprintf("%v", c))
		}
	}
	for len(row) < len(t.Columns) {
		row = append(row, "")
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: integers without decimals, other
// values with four significant digits.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	n := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, c := range t.Columns {
		if len(c) > w[i] {
			w[i] = len(c)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteText renders the table as aligned plain text.
func (t *Table) WriteText(w io.Writer) error {
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width, cell)
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(widths))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// Text renders the table as a string.
func (t *Table) Text() string {
	var b strings.Builder
	_ = t.WriteText(&b) // strings.Builder never errors
	return b.String()
}

// WriteMarkdown renders the table as GitHub-flavoured Markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", `\|`) }
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cols, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// Markdown renders the table as a Markdown string.
func (t *Table) Markdown() string {
	var b strings.Builder
	_ = t.WriteMarkdown(&b)
	return b.String()
}

// WriteCSV renders the table as CSV (header row first; the title is not
// included).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTable is the JSON encoding of a Table: title, column names and the
// row cells as rendered strings, exactly as the CSV form would emit them.
type jsonTable struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// WriteJSON renders the table as a JSON object {title, columns, rows}.
// Cells keep the table's rendered string form so the JSON and CSV
// encodings of a table always agree cell for cell.
func (t *Table) WriteJSON(w io.Writer) error {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonTable{Title: t.Title, Columns: t.Columns, Rows: rows})
}
