package percolation

import (
	"math"
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/theory"
	"mobilenet/internal/visibility"
)

func pt(x, y int32) grid.Point { return grid.Point{X: x, Y: y} }

func TestSnapshotHandComputed(t *testing.T) {
	t.Parallel()
	// Two pairs and one singleton at r=1.
	pos := []grid.Point{pt(0, 0), pt(0, 1), pt(5, 5), pt(5, 6), pt(9, 0)}
	c := Snapshot(pos, 1, nil)
	if c.Components != 3 {
		t.Errorf("Components = %d, want 3", c.Components)
	}
	if c.MaxSize != 2 || c.SecondSize != 2 {
		t.Errorf("MaxSize/SecondSize = %d/%d, want 2/2", c.MaxSize, c.SecondSize)
	}
	if c.Isolated != 1 {
		t.Errorf("Isolated = %d, want 1", c.Isolated)
	}
	if math.Abs(c.MeanSize-5.0/3.0) > 1e-12 {
		t.Errorf("MeanSize = %v", c.MeanSize)
	}
	if math.Abs(c.GiantFraction-0.4) > 1e-12 {
		t.Errorf("GiantFraction = %v", c.GiantFraction)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	t.Parallel()
	c := Snapshot(nil, 3, nil)
	if c.Components != 0 || c.MaxSize != 0 {
		t.Errorf("empty snapshot: %+v", c)
	}
}

func TestSnapshotAllConnected(t *testing.T) {
	t.Parallel()
	pos := []grid.Point{pt(0, 0), pt(1, 0), pt(2, 0)}
	c := Snapshot(pos, 2, visibility.NewLabeller(3))
	if c.Components != 1 || c.MaxSize != 3 || c.GiantFraction != 1 || c.SecondSize != 0 {
		t.Errorf("connected snapshot: %+v", c)
	}
}

func TestSweepValidation(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	bad := []Sweep{
		{K: 4, Radii: []int{1}},
		{Grid: g, K: 0, Radii: []int{1}},
		{Grid: g, K: 4},
		{Grid: g, K: 4, Radii: []int{-1}},
		{Grid: g, K: 4, Radii: []int{1}, Replicates: -1},
	}
	for i, s := range bad {
		s := s
		if _, err := s.Run(); err == nil {
			t.Errorf("case %d: invalid sweep accepted", i)
		}
	}
}

func TestSweepGiantTransition(t *testing.T) {
	t.Parallel()
	// n=4096, k=256: r_c = sqrt(16) = 4. Far below r_c the giant fraction
	// is tiny; far above it is near 1.
	g := grid.MustNew(64)
	k := 256
	rc := theory.PercolationRadius(g.N(), k)
	s := Sweep{
		Grid:       g,
		K:          k,
		Radii:      []int{0, int(rc / 2), int(rc * 3)},
		Replicates: 6,
		Seed:       1,
	}
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MeanGiantFraction > 0.1 {
		t.Errorf("r=0 giant fraction %.3f, want tiny", rows[0].MeanGiantFraction)
	}
	if rows[1].MeanGiantFraction > 0.5 {
		t.Errorf("r=rc/2 giant fraction %.3f, want subcritical", rows[1].MeanGiantFraction)
	}
	if rows[2].MeanGiantFraction < 0.9 {
		t.Errorf("r=3rc giant fraction %.3f, want supercritical", rows[2].MeanGiantFraction)
	}
	// Giant fraction is monotone in r for this sweep.
	if !(rows[0].MeanGiantFraction <= rows[1].MeanGiantFraction &&
		rows[1].MeanGiantFraction <= rows[2].MeanGiantFraction) {
		t.Errorf("giant fraction not monotone: %+v", rows)
	}
}

func TestSweepRowShape(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(16)
	s := Sweep{Grid: g, K: 8, Radii: []int{0, 2}, Replicates: 3, Seed: 2}
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.MeanMaxSize < 1 || row.MeanMaxSize > 8 {
			t.Errorf("r=%d: MeanMaxSize %v out of [1,8]", row.Radius, row.MeanMaxSize)
		}
		if row.MaxMaxSize < int(row.MeanMaxSize) {
			t.Errorf("r=%d: MaxMaxSize %d below mean %v", row.Radius, row.MaxMaxSize, row.MeanMaxSize)
		}
		if row.MeanComponents < 1 || row.MeanComponents > 8 {
			t.Errorf("r=%d: MeanComponents %v", row.Radius, row.MeanComponents)
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(16)
	mk := func() []SweepRow {
		s := Sweep{Grid: g, K: 12, Radii: []int{1, 3}, Replicates: 4, Seed: 9}
		rows, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sweep not deterministic: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestEstimateRC(t *testing.T) {
	t.Parallel()
	// n=4096, k=256: theory r_c = 4. The empirical 0.5-crossing should land
	// within a small constant factor of it.
	g := grid.MustNew(64)
	rc, err := EstimateRC(g, 256, 6, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := theory.PercolationRadius(g.N(), 256)
	if float64(rc) < want/2 || float64(rc) > want*3 {
		t.Errorf("empirical r_c = %d, theory %v — outside [0.5, 3]x band", rc, want)
	}
}

func TestEstimateRCMonotoneInK(t *testing.T) {
	t.Parallel()
	// Denser populations percolate at smaller radii.
	g := grid.MustNew(48)
	rcSparse, err := EstimateRC(g, 64, 5, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	rcDense, err := EstimateRC(g, 512, 5, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rcDense >= rcSparse {
		t.Errorf("r_c did not shrink with density: k=64 -> %d, k=512 -> %d", rcSparse, rcDense)
	}
}

func TestEstimateRCValidation(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(16)
	if _, err := EstimateRC(nil, 8, 2, 0.5, 1); err == nil {
		t.Error("nil grid accepted")
	}
	if _, err := EstimateRC(g, 1, 2, 0.5, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := EstimateRC(g, 8, 0, 0.5, 1); err == nil {
		t.Error("replicates=0 accepted")
	}
	if _, err := EstimateRC(g, 8, 2, 0, 1); err == nil {
		t.Error("threshold=0 accepted")
	}
	if _, err := EstimateRC(g, 8, 2, 1.5, 1); err == nil {
		t.Error("threshold>1 accepted")
	}
}

func TestEstimateRCDeterministic(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(32)
	a, err := EstimateRC(g, 64, 4, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateRC(g, 64, 4, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("EstimateRC not deterministic: %d vs %d", a, b)
	}
}

func TestMaxIslandOverTime(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(32)
	k := 16
	gamma := visibility.FloorRadius(theory.IslandGamma(g.N(), k))
	maxIsland, err := MaxIslandOverTime(g, k, gamma, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if maxIsland < 1 || maxIsland > k {
		t.Errorf("max island %d out of [1,%d]", maxIsland, k)
	}
	// Errors for bad inputs.
	if _, err := MaxIslandOverTime(nil, 4, 1, 10, 1); err == nil {
		t.Error("nil grid accepted")
	}
	if _, err := MaxIslandOverTime(g, 0, 1, 10, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := MaxIslandOverTime(g, 4, 1, -1, 1); err == nil {
		t.Error("negative steps accepted")
	}
}

func TestMaxIslandZeroSteps(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(16)
	// steps=0 still censuses the initial configuration.
	m, err := MaxIslandOverTime(g, 8, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m < 1 {
		t.Errorf("zero-step island census %d, want >= 1", m)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	g := grid.MustNew(64)
	s := Sweep{Grid: g, K: 256, Radii: []int{4}, Replicates: 1, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Seed = uint64(i)
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
