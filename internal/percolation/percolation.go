// Package percolation analyses the static structure of the visibility
// graph G_0(r) over uniformly placed agents: component-size statistics as a
// function of the transmission radius. The paper's sparse regime is defined
// by r below the percolation point r_c ≈ sqrt(n/k), where no component
// exceeds a logarithmic number of agents w.h.p.; above r_c a giant
// component appears. Experiment E4 sweeps r/r_c through the transition and
// Experiment E5 checks Lemma 6's island-size cap at gamma = sqrt(n/(4e^6 k)).
package percolation

import (
	"fmt"
	"sort"

	"mobilenet/internal/agent"
	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/visibility"
)

// Census summarises the component structure of one placement at one radius.
type Census struct {
	// Components is the number of connected components.
	Components int
	// MaxSize is the size of the largest component.
	MaxSize int
	// SecondSize is the size of the second-largest component (0 if none).
	SecondSize int
	// MeanSize is the average component size.
	MeanSize float64
	// GiantFraction is MaxSize/k, the fraction of agents in the largest
	// component — the classical percolation order parameter.
	GiantFraction float64
	// Isolated is the number of singleton components.
	Isolated int
}

// Snapshot computes a Census of the visibility graph over the given
// positions at radius r.
func Snapshot(pos []grid.Point, r int, lab *visibility.Labeller) Census {
	if lab == nil {
		lab = visibility.NewLabeller(len(pos))
	}
	labels, count := lab.Components(pos, r)
	if count == 0 {
		return Census{}
	}
	sizes := visibility.Sizes(labels, count, nil)
	sorted := make([]int, len(sizes))
	for i, s := range sizes {
		sorted[i] = int(s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	c := Census{
		Components: count,
		MaxSize:    sorted[0],
		MeanSize:   float64(len(pos)) / float64(count),
	}
	if count > 1 {
		c.SecondSize = sorted[1]
	}
	for _, s := range sorted {
		if s == 1 {
			c.Isolated++
		}
	}
	c.GiantFraction = float64(c.MaxSize) / float64(len(pos))
	return c
}

// Sweep runs repeated random placements of k agents on g and computes the
// census at each requested radius, averaging over replicates.
type Sweep struct {
	// Grid is the arena. Required.
	Grid *grid.Grid
	// K is the number of agents. Required.
	K int
	// Radii is the list of radii to census. Required, each >= 0.
	Radii []int
	// Replicates is the number of independent placements (default 8).
	Replicates int
	// Seed drives the placements.
	Seed uint64
}

// SweepRow is the aggregate census for one radius.
type SweepRow struct {
	Radius            int
	MeanMaxSize       float64
	MaxMaxSize        int
	MeanGiantFraction float64
	MeanComponents    float64
	MeanIsolated      float64
}

func (s *Sweep) validate() error {
	if s.Grid == nil {
		return fmt.Errorf("percolation: sweep requires a grid")
	}
	if s.K <= 0 {
		return fmt.Errorf("percolation: K must be positive, got %d", s.K)
	}
	if len(s.Radii) == 0 {
		return fmt.Errorf("percolation: no radii to sweep")
	}
	for _, r := range s.Radii {
		if r < 0 {
			return fmt.Errorf("percolation: negative radius %d", r)
		}
	}
	if s.Replicates < 0 {
		return fmt.Errorf("percolation: negative replicates %d", s.Replicates)
	}
	return nil
}

// Run executes the sweep and returns one row per radius, in input order.
func (s *Sweep) Run() ([]SweepRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	reps := s.Replicates
	if reps == 0 {
		reps = 8
	}
	master := rng.New(s.Seed)
	lab := visibility.NewLabeller(s.K)
	rows := make([]SweepRow, len(s.Radii))
	for i, r := range s.Radii {
		rows[i].Radius = r
	}
	for rep := 0; rep < reps; rep++ {
		pop, err := agent.New(s.Grid, s.K, master.Split())
		if err != nil {
			return nil, err
		}
		for i, r := range s.Radii {
			c := Snapshot(pop.Positions(), r, lab)
			rows[i].MeanMaxSize += float64(c.MaxSize)
			rows[i].MeanGiantFraction += c.GiantFraction
			rows[i].MeanComponents += float64(c.Components)
			rows[i].MeanIsolated += float64(c.Isolated)
			if c.MaxSize > rows[i].MaxMaxSize {
				rows[i].MaxMaxSize = c.MaxSize
			}
		}
	}
	for i := range rows {
		rows[i].MeanMaxSize /= float64(reps)
		rows[i].MeanGiantFraction /= float64(reps)
		rows[i].MeanComponents /= float64(reps)
		rows[i].MeanIsolated /= float64(reps)
	}
	return rows, nil
}

// EstimateRC estimates the empirical percolation radius: the smallest
// integer radius at which the mean giant-component fraction over the given
// replicates reaches the threshold (classically 0.5). It binary-searches
// over r in [0, diameter]; monotonicity of the giant fraction in r makes
// the search valid.
func EstimateRC(g *grid.Grid, k, replicates int, threshold float64, seed uint64) (int, error) {
	if g == nil {
		return 0, fmt.Errorf("percolation: nil grid")
	}
	if k <= 1 {
		return 0, fmt.Errorf("percolation: need k >= 2, got %d", k)
	}
	if replicates <= 0 {
		return 0, fmt.Errorf("percolation: replicates must be positive, got %d", replicates)
	}
	if threshold <= 0 || threshold > 1 {
		return 0, fmt.Errorf("percolation: threshold %v outside (0,1]", threshold)
	}
	// Fixed placements shared across probe radii keep the search monotone.
	master := rng.New(seed)
	pops := make([][]grid.Point, replicates)
	for i := range pops {
		pop, err := agent.New(g, k, master.Split())
		if err != nil {
			return 0, err
		}
		pos := make([]grid.Point, k)
		copy(pos, pop.Positions())
		pops[i] = pos
	}
	lab := visibility.NewLabeller(k)
	meanGiant := func(r int) float64 {
		total := 0.0
		for _, pos := range pops {
			total += Snapshot(pos, r, lab).GiantFraction
		}
		return total / float64(len(pops))
	}
	lo, hi := 0, g.Diameter()
	if meanGiant(hi) < threshold {
		return 0, fmt.Errorf("percolation: giant fraction below %v even at full radius", threshold)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if meanGiant(mid) >= threshold {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// MaxIslandOverTime simulates a population for the given number of steps
// and returns the largest island (component at radius gammaRadius) observed
// at any step, the Lemma 6 observable.
func MaxIslandOverTime(g *grid.Grid, k, gammaRadius, steps int, seed uint64) (int, error) {
	if g == nil {
		return 0, fmt.Errorf("percolation: nil grid")
	}
	if k <= 0 {
		return 0, fmt.Errorf("percolation: K must be positive, got %d", k)
	}
	if steps < 0 {
		return 0, fmt.Errorf("percolation: negative steps %d", steps)
	}
	pop, err := agent.New(g, k, rng.New(seed))
	if err != nil {
		return 0, err
	}
	lab := visibility.NewLabeller(k)
	maxIsland := 0
	for t := 0; t <= steps; t++ {
		labels, count := lab.Components(pop.Positions(), gammaRadius)
		if m := visibility.MaxSize(labels, count); m > maxIsland {
			maxIsland = m
		}
		if t < steps {
			pop.Step()
		}
	}
	return maxIsland, nil
}
