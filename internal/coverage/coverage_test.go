package coverage

import (
	"testing"

	"mobilenet/internal/grid"
)

func TestValidation(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	bad := []Config{
		{Walkers: 2},
		{Grid: g, Walkers: 0},
		{Grid: g, Walkers: -1},
		{Grid: g, Walkers: 2, MaxSteps: -5},
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCoverSmallGrid(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{Grid: grid.MustNew(6), Walkers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("coverage incomplete: %+v", res)
	}
	if res.Covered != 36 {
		t.Errorf("covered %d nodes, want 36", res.Covered)
	}
}

func TestSingleWalkerCovers(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{Grid: grid.MustNew(4), Walkers: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("single walker did not cover 4x4 grid: %+v", res)
	}
}

func TestCurveMonotoneAndBounded(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	res, err := Run(Config{Grid: g, Walkers: 3, Seed: 3, RecordCurve: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 {
		t.Fatal("no curve recorded")
	}
	if res.Curve[0] < 1 || res.Curve[0] > 3 {
		t.Errorf("initial coverage %d outside [1,3]", res.Curve[0])
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i] < res.Curve[i-1] {
			t.Fatalf("coverage decreased at step %d", i)
		}
		// k walkers can add at most k new nodes per step.
		if res.Curve[i]-res.Curve[i-1] > 3 {
			t.Fatalf("coverage jumped by %d (> k) at step %d", res.Curve[i]-res.Curve[i-1], i)
		}
		if res.Curve[i] > g.N() {
			t.Fatalf("coverage exceeds n at step %d", i)
		}
	}
	if last := res.Curve[len(res.Curve)-1]; last != g.N() {
		t.Errorf("final curve value %d, want %d", last, g.N())
	}
}

func TestMoreWalkersNotSlowerOnAverage(t *testing.T) {
	t.Parallel()
	mean := func(k int) float64 {
		total := 0
		const reps = 10
		for seed := uint64(0); seed < reps; seed++ {
			res, err := Run(Config{Grid: grid.MustNew(16), Walkers: k, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatal("incomplete coverage")
			}
			total += res.Steps
		}
		return float64(total) / reps
	}
	m2, m16 := mean(2), mean(16)
	if m16 >= m2 {
		t.Errorf("cover time did not drop with 8x walkers: k=2 %.1f, k=16 %.1f", m2, m16)
	}
}

func TestMaxStepsCap(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{Grid: grid.MustNew(64), Walkers: 1, Seed: 5, MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("64x64 grid cannot be covered in 10 steps")
	}
	if res.Steps != 10 {
		t.Errorf("Steps = %d, want 10", res.Steps)
	}
	if res.Covered < 1 || res.Covered > 11 {
		t.Errorf("covered %d nodes in 10 steps by 1 walker", res.Covered)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	t.Parallel()
	c := Config{Grid: grid.MustNew(10), Walkers: 4, Seed: 7}
	r1, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Steps != r2.Steps || r1.Covered != r2.Covered {
		t.Fatalf("not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestFractionTime(t *testing.T) {
	t.Parallel()
	curve := []int{10, 20, 40, 80, 100}
	if got := FractionTime(curve, 100, 0.5); got != 3 {
		t.Errorf("FractionTime(0.5) = %d, want 3", got)
	}
	if got := FractionTime(curve, 100, 1.0); got != 4 {
		t.Errorf("FractionTime(1.0) = %d, want 4", got)
	}
	if got := FractionTime(curve, 100, 0.05); got != 0 {
		t.Errorf("FractionTime(0.05) = %d, want 0", got)
	}
	if got := FractionTime([]int{1, 2}, 100, 0.9); got != -1 {
		t.Errorf("unreachable fraction = %d, want -1", got)
	}
	if got := FractionTime(curve, 0, 0.5); got != 0 {
		t.Errorf("n=0 = %d, want 0", got)
	}
}

func BenchmarkCoverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Grid: grid.MustNew(16), Walkers: 8, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
