// Package coverage measures cover times of multiple independent random
// walks: the first time every grid node has been visited by at least one
// walk. The paper's Section 4 derives the high-probability bound
// O((n log^2 n)/k + n log n), improving earlier expectation-only results;
// Experiment E12 validates the 1/k decay and the n log n floor.
package coverage

import (
	"fmt"

	"mobilenet/internal/bitset"
	"mobilenet/internal/cancel"
	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/obs"
	"mobilenet/internal/prof"
	"mobilenet/internal/rng"
	"mobilenet/internal/theory"
)

// Config parameterises a cover-time run.
type Config struct {
	// Grid is the arena. Required.
	Grid *grid.Grid
	// Walkers is the number of independent random walks k. Required.
	Walkers int
	// Seed drives placement and motion.
	Seed uint64
	// MaxSteps caps the run; 0 derives a default from the paper's bound
	// with a 64x headroom.
	MaxSteps int
	// RecordCurve enables recording of the covered-node count per step.
	RecordCurve bool
	// Mobility selects the walkers' motion model; nil selects the paper's
	// lazy walk the §4 cover-time bound is proved for.
	Mobility mobility.Model
	// Observer, when non-nil, receives a per-step sample (including t=0)
	// at the recorder's cadence: the covered-node count as "informed" and
	// the covered fraction as "coverage".
	Observer *obs.Recorder
	// Profile, when non-nil, accumulates per-phase step timings. Coverage
	// runs exercise only the move, spread (visit marking) and observe
	// phases; a nil profile costs a branch per phase.
	Profile *prof.StepProfile
	// Cancel, when non-nil, halts the run loop at a step boundary once its
	// context is cancelled (see core.Config.Cancel); nil costs a
	// constant-false branch.
	Cancel *cancel.Check
}

func (c *Config) validate() error {
	if c.Grid == nil {
		return fmt.Errorf("coverage: config requires a grid")
	}
	if c.Walkers <= 0 {
		return fmt.Errorf("coverage: walkers must be positive, got %d", c.Walkers)
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("coverage: negative MaxSteps %d", c.MaxSteps)
	}
	return nil
}

func (c *Config) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	v := int(64 * theory.CoverTimeBound(c.Grid.N(), c.Walkers))
	if v < 4096 {
		v = 4096
	}
	return v
}

// Result summarises a cover-time run.
type Result struct {
	// Steps is the cover time: the first step at which every node has been
	// visited. Valid only when Completed.
	Steps int
	// Completed is false when MaxSteps was reached with nodes unvisited.
	Completed bool
	// Covered is the number of visited nodes at the end.
	Covered int
	// Curve, when requested, holds the covered count after each step
	// (starting with t=0, the initial placement).
	Curve []int
}

// Run measures the cover time of k independent lazy random walks started at
// uniformly random nodes.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	g := cfg.Grid
	src := rng.New(cfg.Seed)
	k := cfg.Walkers
	model := cfg.Mobility
	if model == nil {
		model = mobility.Default()
	}
	mob, err := model.Bind(g, k, src)
	if err != nil {
		return Result{}, err
	}
	pos := make([]grid.Point, k)
	mob.Place(pos)
	visited := bitset.New(g.N())
	for i := range pos {
		visited.Add(int(g.ID(pos[i])))
	}
	// Models that report per-step moves let the visit marking touch only
	// agents that actually moved: an unmoved walker's node was marked the
	// step it arrived. The lazy walk holds ~1/5 of the walkers still each
	// step; trajectories are bit-identical either way.
	ms, incremental := mob.(mobility.MovedStepper)
	var moved []int32
	if incremental {
		moved = make([]int32, 0, k)
	}
	res := Result{}
	observe := func(t int) {
		if cfg.Observer != nil && cfg.Observer.Wants(t) {
			cfg.Observer.Record(t, obs.Sample{
				Informed: visited.Len(),
				Covered:  visited.Len(),
				Nodes:    g.N(),
			})
		}
		cfg.Profile.Lap(prof.Observe)
	}
	if cfg.RecordCurve {
		res.Curve = append(res.Curve, visited.Len())
	}
	cfg.Profile.Mark()
	observe(0)
	stepCap := cfg.maxSteps()
	t := 0
	for visited.Len() < g.N() && t < stepCap && !cfg.Cancel.Stop() {
		cfg.Profile.Mark()
		if incremental {
			moved = ms.StepMoved(pos, moved[:0])
			cfg.Profile.Lap(prof.Move)
			for _, i := range moved {
				visited.Add(int(g.ID(pos[i])))
			}
		} else {
			mob.Step(pos)
			cfg.Profile.Lap(prof.Move)
			for i := range pos {
				visited.Add(int(g.ID(pos[i])))
			}
		}
		t++
		if cfg.RecordCurve {
			res.Curve = append(res.Curve, visited.Len())
		}
		cfg.Profile.Lap(prof.Spread)
		observe(t)
		cfg.Profile.StepDone()
	}
	res.Steps = t
	res.Covered = visited.Len()
	res.Completed = visited.Len() == g.N()
	return res, nil
}

// FractionTime returns the first step at which the walks have covered at
// least the given fraction of nodes, extracted from a recorded curve; it
// returns -1 when the curve never reaches the fraction.
func FractionTime(curve []int, n int, fraction float64) int {
	if n <= 0 || fraction <= 0 {
		return 0
	}
	target := int(fraction * float64(n))
	if target < 1 {
		target = 1
	}
	for t, c := range curve {
		if c >= target {
			return t
		}
	}
	return -1
}
