package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expX04 isolates the complement result the paper cites (Peres et al.,
// SODA 2011): above the percolation point the broadcast time is
// polylogarithmic. For each k the sweep runs the same system at r = 0
// (subcritical baseline, Θ̃(n/√k)) and at r = 1.5 r_c(n, k) (supercritical),
// showing the regime separation side by side.
func expX04() Experiment {
	e := Experiment{
		ID:    "X4",
		Title: "Supercritical regime contrast (Peres et al.)",
		Claim: "Above r_c the broadcast time collapses to polylog scale at every k, while the r=0 baseline follows Θ̃(n/√k)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(128)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(8)
		ks := []int{16, 64, 256}

		polylog := math.Log2(float64(n)) * math.Log2(float64(n))
		table := tableio.NewTable(
			fmt.Sprintf("Sub- vs supercritical broadcast, n=%d, %d reps", n, reps),
			"k", "r_c", "r_sup=1.5r_c", "median T_B(r=0)", "median T_B(r_sup)", "collapse ratio", "T_B(r_sup)/log²n")
		sub := plot.Series{Name: "r=0 (subcritical)"}
		sup := plot.Series{Name: "r=1.5rc (supercritical)"}
		verdict := VerdictPass
		for pi, k := range ks {
			if 2*k > n {
				continue
			}
			k := k
			rc := theory.PercolationRadius(n, k)
			rSup := int(math.Ceil(1.5 * rc))
			base, err := sweepPoint(p.Seed, pi, reps, float64(k), func(seed uint64) (float64, error) {
				r, err := core.RunBroadcast(core.Config{Grid: g, K: k, Radius: 0, Seed: seed, Source: 0})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("X4: subcritical k=%d hit cap", k)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			fast, err := sweepPoint(p.Seed, 40+pi, reps, float64(k), func(seed uint64) (float64, error) {
				r, err := core.RunBroadcast(core.Config{Grid: g, K: k, Radius: rSup, Seed: seed, Source: 0})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("X4: supercritical k=%d hit cap", k)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			collapse := (fast.Sum.Median + 1) / (base.Sum.Median + 1)
			normalised := fast.Sum.Median / polylog
			table.AddRow(k, rc, rSup, base.Sum.Median, fast.Sum.Median, collapse, normalised)
			sub.X = append(sub.X, float64(k))
			sub.Y = append(sub.Y, base.Sum.Median)
			sup.X = append(sup.X, float64(k))
			sup.Y = append(sup.Y, fast.Sum.Median+1) // keep log axis happy at 0
			if collapse > 0.1 {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			if normalised > 1 {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			p.logf("X4: k=%d T_B(0)=%.0f T_B(%d)=%.0f", k, base.Sum.Median, rSup, fast.Sum.Median)
		}
		res.Tables = append(res.Tables, table)
		res.Verdict = verdict
		res.AddFinding("supercritical broadcast completes within the log²n band at every k — the polylog regime of Peres et al.")
		res.AddFinding("the same simulator spans both regimes; only the radius changes")

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("X4: regime separation (n=%d)", n),
			XLabel: "k", YLabel: "T_B", LogX: true, LogY: true,
			Series: []plot.Series{sub, sup},
		})
		return res, nil
	}
	return e
}
