package experiments

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/predator"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE13 validates the paper's Section 4 predator-prey bound: with k
// predators (k = Ω(log n)) chasing moving preys, the extinction time is
// O((n log²n)/k).
func expE13() Experiment {
	e := Experiment{
		ID:    "E13",
		Title: "Predator-prey extinction time (§4)",
		Claim: "Extinction time = O((n log²n)/k): ~1/k decay in the predator count",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(48)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(8)
		ks := []int{8, 16, 32, 64, 128}

		table := tableio.NewTable(
			fmt.Sprintf("Extinction time, n=%d, preys m=k, %d reps", n, reps),
			"k predators", "median extinction", "mean", "bound (n ln²n)/k", "measured/bound")
		var pts []pointSummary
		bound := plot.Series{Name: "paper bound"}
		verdict := VerdictPass
		for pi, k := range ks {
			k := k
			pt, err := sweepPoint(p.Seed, pi, reps, float64(k), func(seed uint64) (float64, error) {
				r, err := predator.RunExtinction(predator.Config{
					Grid: g, Predators: k, Preys: k, Radius: 0, Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("E13: extinction k=%d hit cap", k)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			env := theory.ExtinctionBound(n, k)
			table.AddRow(k, pt.Sum.Median, pt.Sum.Mean, env, pt.Sum.Median/env)
			pts = append(pts, pt)
			bound.X = append(bound.X, float64(k))
			bound.Y = append(bound.Y, env)
			if pt.Sum.Median > env {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			p.logf("E13: k=%d extinction=%.0f bound=%.0f", k, pt.Sum.Median, env)
		}
		res.Tables = append(res.Tables, table)

		fit, err := fitMedians(pts)
		if err != nil {
			return nil, err
		}
		res.AddFinding("power-law fit of extinction time vs k: %s (bound predicts ≈ -1)", fit)
		res.Verdict = worstVerdict(verdict, exponentVerdict(fit.Alpha, -1.0, 0.35, 0.6))

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E13: extinction time vs predators (n=%d)", n),
			XLabel: "k predators", YLabel: "extinction time", LogX: true, LogY: true,
			Series: []plot.Series{medianSeries("measured", pts), bound},
		})
		return res, nil
	}
	return e
}
