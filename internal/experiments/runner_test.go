package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"mobilenet/internal/rng"
)

func TestRepSeedMatchesSharedDerivation(t *testing.T) {
	t.Parallel()
	// The experiment runner and the simulation service must agree on the
	// derivation, or cached service results would diverge from sweeps.
	for point := 0; point < 4; point++ {
		for rep := 0; rep < 4; rep++ {
			if got, want := repSeed(42, point, rep), rng.DeriveSeed(42, point, rep); got != want {
				t.Fatalf("repSeed(42,%d,%d) = %d, DeriveSeed = %d", point, rep, got, want)
			}
		}
	}
}

func TestRunRepsOrderAndDeterminism(t *testing.T) {
	t.Parallel()
	const reps = 32
	fn := func(seed uint64) (float64, error) { return float64(seed % 1000), nil }
	a, err := runReps(7, 3, reps, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runReps(7, 3, reps, fn)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < reps; rep++ {
		want := float64(repSeed(7, 3, rep) % 1000)
		if a[rep] != want || b[rep] != want {
			t.Fatalf("rep %d: got %v/%v, want %v", rep, a[rep], b[rep], want)
		}
	}
}

// TestRunRepsAbortsOnFirstError pins the documented cancellation contract:
// once a replicate fails, dispatch stops, so nowhere near all replicates
// run. Each worker can observe at most one failing call before exiting, so
// the number of calls is bounded by the worker count, not by reps.
func TestRunRepsAbortsOnFirstError(t *testing.T) {
	t.Parallel()
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		t.Skip("needs a parallel runner")
	}
	reps := workers * 16
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := runReps(1, 0, reps, func(seed uint64) (float64, error) {
		calls.Add(1)
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := calls.Load(); n > int64(workers) {
		t.Errorf("%d replicates ran after the first error (workers: %d)", n, workers)
	}
}

// TestRunRepsReturnsLowestFailedReplicate checks the deterministic error
// choice when several replicates fail.
func TestRunRepsReturnsLowestFailedReplicate(t *testing.T) {
	t.Parallel()
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs a parallel runner")
	}
	seedToRep := map[uint64]int{}
	const reps = 8
	for rep := 0; rep < reps; rep++ {
		seedToRep[repSeed(5, 0, rep)] = rep
	}
	_, err := runReps(5, 0, reps, func(seed uint64) (float64, error) {
		if rep := seedToRep[seed]; rep >= 2 {
			return 0, fmt.Errorf("rep %d failed", rep)
		}
		return 1, nil
	})
	if err == nil {
		t.Fatal("no error surfaced")
	}
	// Replicates 2..7 all fail; the reported error must be replicate 2's
	// whenever replicate 2 ran at all (it always runs: dispatch is in
	// order and only stops after a failure is observed).
	if got := err.Error(); got != "rep 2 failed" {
		t.Errorf("err = %q, want rep 2's error", got)
	}
}

func TestRunRepsRejectsNonPositiveReps(t *testing.T) {
	t.Parallel()
	if _, err := runReps(1, 0, 0, func(uint64) (float64, error) { return 0, nil }); err == nil {
		t.Error("reps=0 accepted")
	}
}
