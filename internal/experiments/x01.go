package experiments

import (
	"fmt"

	"mobilenet/internal/barrier"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/rng"
	"mobilenet/internal/tableio"
)

// expX01 implements the paper's stated future work (§4): dissemination on
// planar domains with mobility barriers. It compares broadcast times on an
// open grid, a wall with a narrowing gap, and random obstacle fields.
func expX01() Experiment {
	e := Experiment{
		ID:    "X1",
		Title: "Mobility barriers (paper §4 future work)",
		Claim: "Barriers slow dissemination monotonically with constriction; narrow gaps dominate T_B (extension, not a paper theorem)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(64)
		const k = 32
		reps := p.reps(8)
		maxSteps := 400 * side * side // generous: gap domains are slow

		type scenario struct {
			name  string
			build func(seed uint64) (*barrier.Domain, error)
		}
		scenarios := []scenario{
			{"open", func(uint64) (*barrier.Domain, error) {
				return barrier.NewDomain(grid.MustNew(side))
			}},
			{"wall gap=side/4", func(uint64) (*barrier.Domain, error) {
				d, err := barrier.NewDomain(grid.MustNew(side))
				if err != nil {
					return nil, err
				}
				return d, d.AddWall(side/2, side/4)
			}},
			{"wall gap=2", func(uint64) (*barrier.Domain, error) {
				d, err := barrier.NewDomain(grid.MustNew(side))
				if err != nil {
					return nil, err
				}
				return d, d.AddWall(side/2, 2)
			}},
			{"obstacles 10%", func(seed uint64) (*barrier.Domain, error) {
				d, err := barrier.NewDomain(grid.MustNew(side))
				if err != nil {
					return nil, err
				}
				return d, d.AddRandomObstacles(0.10, rng.New(seed^0xb2))
			}},
			{"obstacles 25%", func(seed uint64) (*barrier.Domain, error) {
				d, err := barrier.NewDomain(grid.MustNew(side))
				if err != nil {
					return nil, err
				}
				return d, d.AddRandomObstacles(0.25, rng.New(seed^0xb3))
			}},
		}

		table := tableio.NewTable(
			fmt.Sprintf("Broadcast with mobility barriers, side=%d, k=%d, r=0, %d reps", side, k, reps),
			"scenario", "median T_B", "mean", "completed", "slowdown vs open")
		bars := plot.Series{Name: "median T_B"}
		var openMedian float64
		verdict := VerdictPass
		for pi, sc := range scenarios {
			sc := sc
			vals, err := runReps(p.Seed, pi, reps, func(seed uint64) (float64, error) {
				d, err := sc.build(seed)
				if err != nil {
					return 0, err
				}
				// Random obstacle fields enclose unreachable free pockets,
				// so agents go on the largest connected free component.
				r, err := barrier.RunBroadcast(barrier.Config{
					Domain: d, K: k, Radius: 0, Seed: seed, MaxSteps: maxSteps,
					ConnectedPlacement: true,
				})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return float64(maxSteps), nil // censored observation
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			// Replicate closures run concurrently, so completions are
			// counted from the returned values: censored runs carry the
			// sentinel maxSteps (a run completing at exactly maxSteps is
			// miscounted as censored, which is harmlessly conservative).
			completed := 0
			for _, v := range vals {
				if v < float64(maxSteps) {
					completed++
				}
			}
			pt := summarizePoint(float64(pi), vals)
			if pi == 0 {
				openMedian = pt.Sum.Median
			}
			slow := pt.Sum.Median / openMedian
			table.AddRow(sc.name, pt.Sum.Median, pt.Sum.Mean,
				fmt.Sprintf("%d/%d", completed, reps), slow)
			bars.X = append(bars.X, float64(pi))
			bars.Y = append(bars.Y, pt.Sum.Median)
			if completed < reps {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			p.logf("X1: %s median=%.0f (%d/%d complete)", sc.name, pt.Sum.Median, completed, reps)
		}
		res.Tables = append(res.Tables, table)

		// Shape check: the narrow gap must slow dissemination relative to
		// the open domain, and must not be faster than the wide gap. A
		// FAIL needs statistical backing — with fewer than 4 replicates
		// the medians are too noisy to refute the claim, so violations
		// only warn.
		shapeFail := VerdictFail
		if reps < 4 {
			shapeFail = VerdictWarn
		}
		switch {
		case bars.Y[2] < 0.8*bars.Y[0]:
			verdict = worstVerdict(verdict, shapeFail)
		case bars.Y[2] <= bars.Y[0]:
			verdict = worstVerdict(verdict, VerdictWarn)
		}
		if bars.Y[1] > bars.Y[2] {
			verdict = worstVerdict(verdict, VerdictWarn)
		}
		res.Verdict = verdict
		res.AddFinding("narrow gaps dominate broadcast time; moderate random obstacle fields cost little (walk remains rapidly mixing)")
		res.AddFinding("communication penetrates walls in this model (radio vs mobility barriers) — see internal/barrier package comment")

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("X1: T_B under mobility barriers (side=%d, k=%d)", side, k),
			XLabel: "scenario index", YLabel: "median T_B", LogY: true,
			Series: []plot.Series{bars},
		})
		return res, nil
	}
	return e
}
