package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/scenario"
	"mobilenet/internal/sweep"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE03 is the headline experiment: below the percolation radius the
// broadcast time does not depend on r (beyond polylog factors), while above
// r_c it collapses to the polylogarithmic supercritical regime of Peres et
// al. The radius axis of one SweepSpec crosses r_c so both behaviours and
// the transition are visible in one table.
func expE03() Experiment {
	e := Experiment{
		ID:    "E3",
		Title: "Broadcast time vs transmission radius",
		Claim: "Below r_c ≈ sqrt(n/k), T_B stays within polylog factors of n/√k regardless of r; above r_c it collapses (headline result + Peres et al. contrast)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(128)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		const k = 64
		if n < 2*k {
			return nil, fmt.Errorf("E3: grid too small for k=%d at scale %.2f", k, p.scale())
		}
		reps := p.reps(10)
		rc := theory.PercolationRadius(n, k)
		// Radii as fractions of r_c, crossing the transition.
		fractions := []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0, 1.25, 1.5, 2.0}
		radii := make([]int, 0, len(fractions))
		seen := map[int]bool{}
		for _, f := range fractions {
			r := int(math.Round(f * rc))
			if !seen[r] {
				seen[r] = true
				radii = append(radii, r)
			}
		}

		sp := sweep.Spec{
			Label: fmt.Sprintf("E3: T_B vs r (n=%d, k=%d)", n, k),
			Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: n, Agents: k,
				Seed: p.Seed, Source: 0, Reps: reps},
			Axes: []sweep.Axis{{Field: "radius", Values: intValues(radii)}},
		}
		_, pts, err := runScenarioSweep(p, "E3", sp, true)
		if err != nil {
			return nil, err
		}

		table := tableio.NewTable(
			fmt.Sprintf("Median T_B vs r, n=%d, k=%d, r_c=%.1f, %d reps", n, k, rc, reps),
			"r", "r/r_c", "median T_B", "mean", "T_B(r)/T_B(0)")
		tb0 := pts[0].Sum.Median
		for i, pt := range pts {
			r := radii[i]
			ratio := 0.0
			if tb0 > 0 {
				ratio = pt.Sum.Median / tb0
			}
			table.AddRow(r, float64(r)/rc, pt.Sum.Median, pt.Sum.Mean, ratio)
			p.logf("E3: r=%d (%.2f r_c) median T_B=%.0f", r, float64(r)/rc, pt.Sum.Median)
		}
		res.Tables = append(res.Tables, table)

		// Verdict parts:
		// (a) subcritical band: for r <= r_c/2 the ratio T_B(0)/T_B(r) stays
		//     within a polylog band (log2(n)^2 is the generous finite-size
		//     reading of Θ̃).
		// (b) supercritical collapse: at r >= 1.5 r_c, T_B drops by at least
		//     an order of magnitude relative to r=0.
		polylogBand := math.Log2(float64(n)) * math.Log2(float64(n))
		verdict := VerdictPass
		var worstSub float64 = 1
		for i, r := range radii {
			if float64(r) <= rc/2 && pts[i].Sum.Median > 0 {
				if ratio := tb0 / pts[i].Sum.Median; ratio > worstSub {
					worstSub = ratio
				}
			}
		}
		res.AddFinding("largest subcritical slowdown factor T_B(0)/T_B(r) for r ≤ r_c/2: %.2f (polylog band %.0f)", worstSub, polylogBand)
		if worstSub > polylogBand {
			verdict = VerdictFail
		} else if worstSub > polylogBand/4 {
			verdict = VerdictWarn
		}

		collapse := math.Inf(1)
		for i, r := range radii {
			if float64(r) >= 1.5*rc && pts[i].Sum.Median >= 0 {
				c := (pts[i].Sum.Median + 1) / (tb0 + 1)
				if c < collapse {
					collapse = c
				}
			}
		}
		if !math.IsInf(collapse, 1) {
			res.AddFinding("supercritical collapse: T_B(r≥1.5r_c)/T_B(0) = %.4f (expect ≪ 1)", collapse)
			if collapse > 0.25 {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
		}
		res.Verdict = verdict

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E3: T_B vs r (n=%d, k=%d, r_c=%.1f)", n, k, rc),
			XLabel: "transmission radius r", YLabel: "T_B", LogY: true,
			Series: []plot.Series{medianSeries("median T_B", pts)},
		})
		return res, nil
	}
	return e
}
