package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/grid"
	"mobilenet/internal/percolation"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE04 maps the percolation transition of the static visibility graph:
// the giant-component fraction as a function of r/r_c, and the logarithmic
// component-size ceiling below the transition.
func expE04() Experiment {
	e := Experiment{
		ID:    "E4",
		Title: "Percolation structure of G_0(r)",
		Claim: "Components stay O(log k) below r_c ≈ sqrt(n/k); a giant component appears above r_c (sparse-regime premise)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(64)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		k := n / 16 // density keeping r_c = 4 at full scale
		if k < 8 {
			k = 8
		}
		reps := p.reps(8)
		rc := theory.PercolationRadius(n, k)
		fractions := []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0}
		radii := make([]int, 0, len(fractions))
		seen := map[int]bool{}
		for _, f := range fractions {
			r := int(math.Round(f * rc))
			if r < 0 || seen[r] {
				continue
			}
			seen[r] = true
			radii = append(radii, r)
		}

		sweep := percolation.Sweep{
			Grid: g, K: k, Radii: radii, Replicates: reps, Seed: p.Seed,
		}
		rows, err := sweep.Run()
		if err != nil {
			return nil, err
		}

		logK := math.Log(float64(k))
		table := tableio.NewTable(
			fmt.Sprintf("Component census, n=%d, k=%d, r_c=%.1f, %d reps", n, k, rc, reps),
			"r", "r/r_c", "mean max comp", "max max comp", "giant fraction", "mean #comps", "max/log k")
		giant := plot.Series{Name: "giant fraction"}
		for _, row := range rows {
			table.AddRow(row.Radius, float64(row.Radius)/rc, row.MeanMaxSize,
				row.MaxMaxSize, row.MeanGiantFraction, row.MeanComponents,
				row.MeanMaxSize/logK)
			giant.X = append(giant.X, float64(row.Radius)/rc)
			giant.Y = append(giant.Y, row.MeanGiantFraction)
			p.logf("E4: r=%d giant=%.3f maxcomp=%.1f", row.Radius, row.MeanGiantFraction, row.MeanMaxSize)
		}
		res.Tables = append(res.Tables, table)

		// Verdicts: subcritical rows (r <= 0.5 r_c) must have small giant
		// fraction and max component within a generous log multiple;
		// supercritical rows (r >= 1.5 r_c) must contain a true giant.
		verdict := VerdictPass
		for _, row := range rows {
			frac := float64(row.Radius) / rc
			switch {
			case frac <= 0.5:
				if row.MeanGiantFraction > 0.25 {
					verdict = worstVerdict(verdict, VerdictFail)
				}
				if float64(row.MaxMaxSize) > 6*logK {
					verdict = worstVerdict(verdict, VerdictWarn)
				}
			case frac >= 1.5:
				if row.MeanGiantFraction < 0.5 {
					verdict = worstVerdict(verdict, VerdictWarn)
				}
			}
		}
		res.Verdict = verdict
		res.AddFinding("subcritical max component stays within ~6 log k; giant component emerges near r_c as predicted")

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E4: percolation transition (n=%d, k=%d)", n, k),
			XLabel: "r / r_c", YLabel: "giant component fraction",
			Series: []plot.Series{giant},
		})
		return res, nil
	}
	return e
}
