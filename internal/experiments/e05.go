package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/grid"
	"mobilenet/internal/percolation"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
	"mobilenet/internal/visibility"
)

// expE05 validates Lemma 6's island bound. The paper's island parameter
// gamma = sqrt(n/(4 e^6 k)) is below one grid unit at laptop scale (the e^6
// makes it asymptotic), so in addition to the literal gamma (which floors
// to radius 0) the experiment probes the same structural claim at the
// larger radii r_c/4 and r_c/2: any component at a radius a constant
// fraction below r_c must stay logarithmic in size throughout the run.
// This substitution is recorded in DESIGN.md §2.
func expE05() Experiment {
	e := Experiment{
		ID:    "E5",
		Title: "Island sizes over time (Lemma 6)",
		Claim: "No island of parameter gamma (and, structurally, of any radius ≤ r_c/2) exceeds O(log n) agents during the run, w.h.p.",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(128)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		steps := p.scaledCount(40000, 2000)
		logN := math.Log(float64(n))

		table := tableio.NewTable(
			fmt.Sprintf("Max island size over %d steps, n=%d", steps, n),
			"k", "radius", "radius meaning", "max island", "log n", "max/log n")

		verdict := VerdictPass
		ks := []int{64, 256}
		pi := 0
		for _, k := range ks {
			if 2*k > n {
				continue
			}
			gamma := theory.IslandGamma(n, k)
			rc := theory.PercolationRadius(n, k)
			probes := []struct {
				radius int
				label  string
			}{
				{visibility.FloorRadius(gamma), fmt.Sprintf("gamma=%.2f (paper)", gamma)},
				{int(rc / 4), "r_c/4"},
				{int(rc / 2), "r_c/2"},
			}
			for _, probe := range probes {
				maxIsland, err := percolation.MaxIslandOverTime(g, k, probe.radius, steps, repSeed(p.Seed, pi, 0))
				if err != nil {
					return nil, err
				}
				ratio := float64(maxIsland) / logN
				table.AddRow(k, probe.radius, probe.label, maxIsland, logN, ratio)
				p.logf("E5: k=%d r=%d max island=%d (%.2f log n)", k, probe.radius, maxIsland, ratio)
				// Generous finite-size ceiling: 3 log n. Exceeding it at
				// radii ≤ r_c/2 contradicts the logarithmic-islands regime.
				if ratio > 3 {
					verdict = worstVerdict(verdict, VerdictWarn)
				}
				if ratio > 6 {
					verdict = worstVerdict(verdict, VerdictFail)
				}
				pi++
			}
		}
		res.Tables = append(res.Tables, table)
		res.Verdict = verdict
		res.AddFinding("gamma < 1 grid unit at this scale (the paper's 4e^6 constant is asymptotic); structural probes at r_c/4 and r_c/2 stand in — see DESIGN.md")
		return res, nil
	}
	return e
}
