package experiments

import (
	"fmt"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/stats"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expX02 instruments the cell-by-cell exploration process at the heart of
// the Theorem 1 proof: tessellate the grid, record when the rumor first
// reaches each cell, and verify the proof's picture — reach times grow
// essentially linearly with cell distance from the source (the rumor
// spreads cell to adjacent cell), and every cell is reached well before the
// broadcast completes.
func expX02() Experiment {
	e := Experiment{
		ID:    "X2",
		Title: "Cell-by-cell exploration (Theorem 1 mechanism)",
		Claim: "Rumor reach times grow ~linearly with tessellation-cell distance from the source; exploration completes on the T_B timescale",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(128)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		const k = 64
		if n < 2*k {
			return nil, fmt.Errorf("X2: grid too small at scale %.2f", p.scale())
		}
		reps := p.reps(6)
		// The paper's cell side l = sqrt(14 n log³n/(c3 k)) exceeds the grid
		// at laptop scale (its constants are asymptotic); report it and use
		// a practical side/8 tessellation for the measurement. Substitution
		// documented in DESIGN.md §2.
		paperCell := theory.CellSide(n, k, theory.DefaultC3)
		cellSide := side / 8
		if cellSide < 2 {
			cellSide = 2
		}
		perRow := (side + cellSide - 1) / cellSide

		// Average the distance profile over replicates.
		var profSum []float64
		var profCount []int
		reachRatio := 0.0 // MaxReach / T_B, averaged
		for rep := 0; rep < reps; rep++ {
			cfg := core.Config{
				Grid: g, K: k, Radius: 0,
				Seed: repSeed(p.Seed, 0, rep), Source: 0,
				CellSide: cellSide,
			}
			b, err := core.NewBroadcast(cfg)
			if err != nil {
				return nil, err
			}
			bres := b.Run()
			if !bres.Completed {
				return nil, fmt.Errorf("X2: rep %d incomplete", rep)
			}
			// Broadcast completion does not imply every cell was visited by
			// an informed agent; keep stepping until exploration finishes.
			explCap := 10 * bres.Steps
			if explCap < 4096 {
				explCap = 4096
			}
			for !b.AllCellsReached() && b.Time() < explCap {
				b.Step()
			}
			report := b.CellReach()
			if report == nil {
				return nil, fmt.Errorf("X2: missing cell report")
			}
			if report.Reached != report.Cells {
				return nil, fmt.Errorf("X2: only %d/%d cells reached within %d steps",
					report.Reached, report.Cells, explCap)
			}
			reachRatio += float64(report.MaxReach) / float64(maxI(bres.Steps, 1))
			prof := report.ReachByCellDistance(perRow)
			if len(prof) > len(profSum) {
				grow := make([]float64, len(prof))
				copy(grow, profSum)
				profSum = grow
				growC := make([]int, len(prof))
				copy(growC, profCount)
				profCount = growC
			}
			for d, v := range prof {
				if v >= 0 {
					profSum[d] += v
					profCount[d]++
				}
			}
		}
		reachRatio /= float64(reps)

		table := tableio.NewTable(
			fmt.Sprintf("Mean reach time by cell distance, n=%d, k=%d, cell=%d (paper l=%.0f > side)", n, k, cellSide, paperCell),
			"cell distance", "mean reach time")
		series := plot.Series{Name: "mean reach time"}
		var xs, ys []float64
		for d := range profSum {
			if profCount[d] == 0 {
				continue
			}
			mean := profSum[d] / float64(profCount[d])
			table.AddRow(d, mean)
			series.X = append(series.X, float64(d))
			series.Y = append(series.Y, mean)
			if d > 0 {
				xs = append(xs, float64(d))
				ys = append(ys, mean)
			}
			p.logf("X2: distance %d mean reach %.0f", d, mean)
		}
		res.Tables = append(res.Tables, table)

		verdict := VerdictPass
		fit, err := stats.FitLinear(xs, ys)
		if err != nil {
			return nil, err
		}
		res.AddFinding("linear fit of reach time vs cell distance: slope %.1f steps/cell, R²=%.3f (Theorem 1's cell-to-cell spreading)", fit.Slope, fit.R2)
		if fit.Slope <= 0 {
			verdict = worstVerdict(verdict, VerdictFail)
		}
		if fit.R2 < 0.7 {
			verdict = worstVerdict(verdict, VerdictWarn)
		}
		res.AddFinding("last cell reached at %.2f x T_B on average — exploration and broadcast complete on the same timescale (Theorem 1's T* picture)", reachRatio)
		if reachRatio > 3 {
			verdict = worstVerdict(verdict, VerdictWarn)
		}
		res.Verdict = verdict

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("X2: reach time vs cell distance (n=%d, k=%d)", n, k),
			XLabel: "cell distance from source", YLabel: "mean reach time",
			Series: []plot.Series{series},
		})
		return res, nil
	}
	return e
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
