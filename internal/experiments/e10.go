package experiments

import (
	"fmt"

	"mobilenet/internal/core"
	"mobilenet/internal/frog"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
)

// expE10 validates the paper's Section 4 claim that the Frog model (only
// informed agents move) obeys the same Θ̃(n/√k) broadcast bound, and
// contrasts it with the fully dynamic model at identical parameters.
func expE10() Experiment {
	e := Experiment{
		ID:    "E10",
		Title: "Frog model broadcast time (§4)",
		Claim: "Frog-model T_B = Θ̃(n/√k): same -0.5 exponent as the dynamic model",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(96)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(8)
		ks := []int{16, 32, 64, 128, 256}

		table := tableio.NewTable(
			fmt.Sprintf("Frog vs dynamic broadcast, n=%d, r=0, %d reps", n, reps),
			"k", "median frog T_B", "median dynamic T_B", "frog/dynamic")
		var frogPts, dynPts []pointSummary
		for pi, k := range ks {
			if 2*k > n {
				continue
			}
			k := k
			fr, err := sweepPoint(p.Seed, pi, reps, float64(k), func(seed uint64) (float64, error) {
				r, err := frog.RunFrog(frog.Config{Grid: g, K: k, Radius: 0, Seed: seed, Source: 0})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("E10: frog k=%d hit cap", k)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			dyn, err := sweepPoint(p.Seed, 50+pi, reps, float64(k), func(seed uint64) (float64, error) {
				r, err := core.RunBroadcast(core.Config{Grid: g, K: k, Radius: 0, Seed: seed, Source: 0})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("E10: dynamic k=%d hit cap", k)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			table.AddRow(k, fr.Sum.Median, dyn.Sum.Median, fr.Sum.Median/dyn.Sum.Median)
			frogPts = append(frogPts, fr)
			dynPts = append(dynPts, dyn)
			p.logf("E10: k=%d frog=%.0f dynamic=%.0f", k, fr.Sum.Median, dyn.Sum.Median)
		}
		res.Tables = append(res.Tables, table)

		fit, err := fitMedians(frogPts)
		if err != nil {
			return nil, err
		}
		res.AddFinding("frog-model power-law fit vs k: %s (target -0.5)", fit)
		res.AddFinding("frog T_B exceeds dynamic T_B pointwise (fewer moving agents), same scaling shape")
		// The frog model's activation phase (few movers early) steepens the
		// finite-size slope at small k, so the pass band is wider than the
		// dynamic model's; the fail band still excludes Wang-style -1.
		res.Verdict = exponentVerdict(fit.Alpha, -0.5, 0.3, 0.55)

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E10: frog vs dynamic T_B (n=%d)", n),
			XLabel: "k", YLabel: "T_B", LogX: true, LogY: true,
			Series: []plot.Series{
				medianSeries("frog", frogPts),
				medianSeries("dynamic", dynPts),
			},
		})
		return res, nil
	}
	return e
}
