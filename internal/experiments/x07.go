package experiments

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/tableio"
	"mobilenet/internal/visibility"
	"mobilenet/internal/walk"
)

// expX07 is the boundary ablation. The paper's Lemma 1 handles the grid
// boundary with the reflection principle, arguing it changes hitting
// probabilities only by constants. Running identical broadcasts on the
// bounded grid and on the torus (no boundary at all) makes that claim
// measurable: the two medians should agree within a small constant factor
// at every k.
func expX07() Experiment {
	e := Experiment{
		ID:    "X7",
		Title: "Boundary ablation: bounded grid vs torus",
		Claim: "Boundary effects cost only constants: bounded-grid and torus broadcast times agree within a small factor (Lemma 1's reflection argument)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(96)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(8)
		ks := []int{16, 64, 256}

		table := tableio.NewTable(
			fmt.Sprintf("Bounded vs torus broadcast (r=0), n=%d, %d reps", n, reps),
			"k", "median T_B bounded", "median T_B torus", "bounded/torus")
		verdict := VerdictPass
		for pi, k := range ks {
			if 2*k > n {
				continue
			}
			k := k
			stepCap := 4000 * side * side / k // generous Õ(n/√k) headroom
			bounded, err := sweepPoint(p.Seed, pi, reps, float64(k), func(seed uint64) (float64, error) {
				return kernelBroadcastTime(g, k, walk.Step, seed, stepCap)
			})
			if err != nil {
				return nil, err
			}
			torus, err := sweepPoint(p.Seed, 30+pi, reps, float64(k), func(seed uint64) (float64, error) {
				return kernelBroadcastTime(g, k, walk.TorusStep, seed, stepCap)
			})
			if err != nil {
				return nil, err
			}
			ratio := bounded.Sum.Median / torus.Sum.Median
			table.AddRow(k, bounded.Sum.Median, torus.Sum.Median, ratio)
			// Boundaries slow meetings slightly (reflection concentrates
			// walks); a ratio far from 1 in either direction would
			// contradict the constants-only claim.
			if ratio > 3 || ratio < 1.0/3 {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			if ratio > 8 || ratio < 1.0/8 {
				verdict = worstVerdict(verdict, VerdictFail)
			}
			p.logf("X7: k=%d bounded=%.0f torus=%.0f ratio=%.2f", k, bounded.Sum.Median, torus.Sum.Median, ratio)
		}
		res.Tables = append(res.Tables, table)
		res.Verdict = verdict
		res.AddFinding("removing the boundary entirely moves T_B by a small constant factor — consistent with the reflection-principle treatment in Lemma 1")
		return res, nil
	}
	return e
}

// kernelBroadcastTime runs an r=0 broadcast under an arbitrary step kernel
// and returns the completion time (error if the cap is hit).
func kernelBroadcastTime(g *grid.Grid, k int, stepFn func(*grid.Grid, grid.Point, *rng.Source) grid.Point, seed uint64, stepCap int) (float64, error) {
	src := rng.New(seed)
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(g.Side())), Y: int32(src.Intn(g.Side()))}
	}
	informed := make([]bool, k)
	informed[0] = true
	n := 1
	lab := visibility.NewLabeller(k)
	exchange := func() {
		if n == k {
			return
		}
		labels, count := lab.Components(pos, 0)
		compInf := make([]bool, count)
		for i, inf := range informed {
			if inf {
				compInf[labels[i]] = true
			}
		}
		for i := range informed {
			if !informed[i] && compInf[labels[i]] {
				informed[i] = true
				n++
			}
		}
	}
	exchange()
	for t := 1; t <= stepCap; t++ {
		for i := range pos {
			pos[i] = stepFn(g, pos[i], src)
		}
		exchange()
		if n == k {
			return float64(t), nil
		}
	}
	if n == k {
		return 0, nil
	}
	return 0, fmt.Errorf("experiments: kernel broadcast hit cap %d with %d/%d informed", stepCap, n, k)
}
