package experiments

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/tableio"
	"mobilenet/internal/visibility"
	"mobilenet/internal/walk"
)

// expX08 is the synchrony ablation. The paper's model moves all agents in
// lockstep; the continuous-time models it cites in related work (Kesten &
// Sidoravicius's walkers with i.i.d. Poisson clocks) update asynchronously.
// The experiment compares the synchronous scheduler against a random
// sequential one (per time unit, k single-agent updates with the agent
// drawn uniformly at random — the discrete Poissonization), at identical
// parameters and rates. If the Θ̃(n/√k) behaviour depended on synchrony it
// would be a fragile artifact; the ratio staying near 1 shows it does not.
func expX08() Experiment {
	e := Experiment{
		ID:    "X8",
		Title: "Synchrony ablation: lockstep vs random sequential updates",
		Claim: "Broadcast time is insensitive to the update discipline: asynchronous (Poissonized) scheduling matches the synchronous model within a small constant",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(96)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(8)
		ks := []int{16, 64, 256}

		table := tableio.NewTable(
			fmt.Sprintf("Synchronous vs asynchronous broadcast (r=0), n=%d, %d reps", n, reps),
			"k", "median T_B sync", "median T_B async", "sync/async")
		verdict := VerdictPass
		for pi, k := range ks {
			if 2*k > n {
				continue
			}
			k := k
			stepCap := 4000 * side * side / k
			sync, err := sweepPoint(p.Seed, pi, reps, float64(k), func(seed uint64) (float64, error) {
				return kernelBroadcastTime(g, k, walk.Step, seed, stepCap)
			})
			if err != nil {
				return nil, err
			}
			async, err := sweepPoint(p.Seed, 60+pi, reps, float64(k), func(seed uint64) (float64, error) {
				return asyncBroadcastTime(g, k, seed, stepCap)
			})
			if err != nil {
				return nil, err
			}
			ratio := sync.Sum.Median / async.Sum.Median
			table.AddRow(k, sync.Sum.Median, async.Sum.Median, ratio)
			if ratio > 3 || ratio < 1.0/3 {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			if ratio > 8 || ratio < 1.0/8 {
				verdict = worstVerdict(verdict, VerdictFail)
			}
			p.logf("X8: k=%d sync=%.0f async=%.0f ratio=%.2f", k, sync.Sum.Median, async.Sum.Median, ratio)
		}
		res.Tables = append(res.Tables, table)
		res.Verdict = verdict
		res.AddFinding("random sequential updates at the same per-agent rate reproduce the synchronous broadcast time within a small constant — the paper's lockstep assumption is a convenience, not a crutch")
		res.AddFinding("this bridges toward the continuous-time walkers of Kesten-Sidoravicius cited in the paper's related work")
		return res, nil
	}
	return e
}

// asyncBroadcastTime runs an r=0 broadcast under random sequential updates:
// each time unit performs k single-agent moves with the mover drawn
// uniformly (so every agent still takes one step per unit in expectation),
// then rumors flood components. Returns the completion time in time units.
func asyncBroadcastTime(g *grid.Grid, k int, seed uint64, stepCap int) (float64, error) {
	src := rng.New(seed)
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(g.Side())), Y: int32(src.Intn(g.Side()))}
	}
	informed := make([]bool, k)
	informed[0] = true
	n := 1
	lab := visibility.NewLabeller(k)
	var compScratch []bool
	exchange := func() {
		if n == k {
			return
		}
		labels, count := lab.Components(pos, 0)
		if cap(compScratch) < count {
			compScratch = make([]bool, count)
		}
		compInf := compScratch[:count]
		for i := range compInf {
			compInf[i] = false
		}
		for i, inf := range informed {
			if inf {
				compInf[labels[i]] = true
			}
		}
		for i := range informed {
			if !informed[i] && compInf[labels[i]] {
				informed[i] = true
				n++
			}
		}
	}
	exchange()
	for t := 1; t <= stepCap; t++ {
		for u := 0; u < k; u++ {
			i := src.Intn(k)
			pos[i] = walk.Step(g, pos[i], src)
		}
		exchange()
		if n == k {
			return float64(t), nil
		}
	}
	return 0, fmt.Errorf("experiments: async broadcast hit cap %d with %d/%d informed", stepCap, n, k)
}
