package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/rng"
	"mobilenet/internal/stats"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
	"mobilenet/internal/walk"
)

// expE08 validates both halves of Lemma 2: the range of an l-step walk is
// Ω(l/log l) with probability > 1/2, and the displacement tail obeys
// P[dist ≥ λ√l] ≤ 2 exp(-λ²/2).
func expE08() Experiment {
	e := Experiment{
		ID:    "E8",
		Title: "Walk range and displacement (Lemma 2)",
		Claim: "Range ≥ c2·l/log l w.p. > 1/2; displacement tail P[≥ λ√l] ≤ 2e^(-λ²/2)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		trials := p.scaledCount(300, 60)
		lengths := []int{64, 256, 1024, 4096}

		rangeTable := tableio.NewTable(
			fmt.Sprintf("Walk range, %d trials per length", trials),
			"l", "median range", "l/ln l", "median/(l/ln l)", "frac ≥ c2·l/ln l")
		rangeSeries := plot.Series{Name: "median range / (l/ln l)"}
		verdict := VerdictPass
		for pi, l := range lengths {
			l := l
			// Arena sized so the boundary is rarely touched: 6 sqrt(l).
			side := 6 * int(math.Sqrt(float64(l)))
			if side < 16 {
				side = 16
			}
			g, err := grid.New(side)
			if err != nil {
				return nil, err
			}
			vals, err := runReps(p.Seed, 200+pi, trials, func(seed uint64) (float64, error) {
				w := walk.NewWalker(g, g.Center(), rng.New(seed), true)
				for i := 0; i < l; i++ {
					w.Step()
				}
				return float64(w.Range()), nil
			})
			if err != nil {
				return nil, err
			}
			med := stats.Median(vals)
			lnL := math.Log(float64(l))
			bound := theory.RangeLowerBound(l, theory.DefaultC2)
			above := 0
			for _, v := range vals {
				if v >= bound {
					above++
				}
			}
			frac := float64(above) / float64(len(vals))
			rangeTable.AddRow(l, med, float64(l)/lnL, med/(float64(l)/lnL), frac)
			rangeSeries.X = append(rangeSeries.X, float64(l))
			rangeSeries.Y = append(rangeSeries.Y, med/(float64(l)/lnL))
			if frac <= 0.5 {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			p.logf("E8: l=%d median range=%.0f frac>=bound %.2f", l, med, frac)
		}
		res.Tables = append(res.Tables, rangeTable)

		// Displacement tail at fixed l.
		const l = 1024
		side := 6 * int(math.Sqrt(float64(l)))
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		lambdas := []float64{1, 1.5, 2, 2.5, 3}
		exceed := make([]int, len(lambdas))
		dispTrials := p.scaledCount(2000, 300)
		disp, err := runReps(p.Seed, 300, dispTrials, func(seed uint64) (float64, error) {
			w := walk.NewWalker(g, g.Center(), rng.New(seed), false)
			for i := 0; i < l; i++ {
				w.Step()
			}
			return float64(w.MaxDisplacement()), nil
		})
		if err != nil {
			return nil, err
		}
		for _, d := range disp {
			for j, lam := range lambdas {
				if d >= lam*math.Sqrt(float64(l)) {
					exceed[j]++
				}
			}
		}
		tailTable := tableio.NewTable(
			fmt.Sprintf("Displacement tail at l=%d, %d trials", l, dispTrials),
			"lambda", "measured P[dist ≥ λ√l]", "bound 2e^(-λ²/2)")
		for j, lam := range lambdas {
			got := float64(exceed[j]) / float64(dispTrials)
			bound := theory.DisplacementTail(lam)
			tailTable.AddRow(lam, got, bound)
			if got > bound+3*math.Sqrt(bound*(1-bound)/float64(dispTrials))+0.02 {
				verdict = worstVerdict(verdict, VerdictFail)
			}
		}
		res.Tables = append(res.Tables, tailTable)
		res.Verdict = verdict
		res.AddFinding("median range tracks l/ln l with a stable constant; displacement tail under the Gaussian envelope")

		res.Figures = append(res.Figures, plot.Figure{
			Title:  "E8: range constant vs walk length",
			XLabel: "l", YLabel: "median range / (l/ln l)", LogX: true,
			Series: []plot.Series{rangeSeries},
		})
		return res, nil
	}
	return e
}
