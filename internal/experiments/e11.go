package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
)

// expE11 validates the paper's Section 4 claim T_C ≈ T_B: the time for
// informed agents to visit every grid node tracks the broadcast time within
// polylog factors.
func expE11() Experiment {
	e := Experiment{
		ID:    "E11",
		Title: "Coverage time vs broadcast time (§4)",
		Claim: "T_C ≈ T_B = Õ(n/√k): informed-agent coverage completes within polylog factors of broadcast",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(64)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(8)
		ks := []int{16, 32, 64, 128}

		table := tableio.NewTable(
			fmt.Sprintf("Coverage vs broadcast, n=%d, r=0, %d reps", n, reps),
			"k", "median T_B", "median T_C", "T_C/T_B")
		var tcPts, tbPts []pointSummary
		verdict := VerdictPass
		polylogBand := math.Log2(float64(n)) * math.Log2(float64(n))
		for pi, k := range ks {
			if 2*k > n {
				continue
			}
			k := k
			// One run yields both T_B and T_C; two sweepPoint passes with
			// identical seeds would duplicate work, so collect pairs here.
			tbVals := make([]float64, reps)
			tcVals := make([]float64, reps)
			for rep := 0; rep < reps; rep++ {
				r, err := core.RunBroadcast(core.Config{
					Grid: g, K: k, Radius: 0,
					Seed: repSeed(p.Seed, pi, rep), Source: 0,
					TrackInformedArea: true,
				})
				if err != nil {
					return nil, err
				}
				if !r.Completed || r.CoverageSteps < 0 {
					return nil, fmt.Errorf("E11: k=%d rep=%d incomplete (T_B done=%v, T_C=%d)",
						k, rep, r.Completed, r.CoverageSteps)
				}
				tbVals[rep] = float64(r.Steps)
				tcVals[rep] = float64(r.CoverageSteps)
			}
			tb := summarizePoint(float64(k), tbVals)
			tc := summarizePoint(float64(k), tcVals)
			ratio := tc.Sum.Median / math.Max(1, tb.Sum.Median)
			table.AddRow(k, tb.Sum.Median, tc.Sum.Median, ratio)
			tbPts = append(tbPts, tb)
			tcPts = append(tcPts, tc)
			if ratio > polylogBand || ratio < 1/polylogBand {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			p.logf("E11: k=%d T_B=%.0f T_C=%.0f", k, tb.Sum.Median, tc.Sum.Median)
		}
		res.Tables = append(res.Tables, table)

		fit, err := fitMedians(tcPts)
		if err != nil {
			return nil, err
		}
		// T_C = max(T_B, post-broadcast cover phase). The cover phase is a
		// 1/k term (E12), and it dominates until k reaches ~log^4 n — far
		// beyond laptop-scale k. The claim under test is therefore the
		// RATIO band (checked above); the fitted exponent legitimately sits
		// anywhere between the cover-phase -1 and the broadcast -0.5.
		res.AddFinding("coverage-time power-law fit vs k: %s (between -1 cover phase and -0.5 broadcast regime)", fit)
		if fit.Alpha < -1.15 || fit.Alpha > -0.3 {
			verdict = worstVerdict(verdict, VerdictWarn)
		}
		res.AddFinding("T_C/T_B ratios stay within the polylog band at every k — the §4 claim T_C ≈ T_B")
		res.Verdict = verdict

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E11: T_C and T_B vs k (n=%d)", n),
			XLabel: "k", YLabel: "time", LogX: true, LogY: true,
			Series: []plot.Series{
				medianSeries("median T_C", tcPts),
				medianSeries("median T_B", tbPts),
			},
		})
		return res, nil
	}
	return e
}
