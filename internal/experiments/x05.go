package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
)

// expX05 sweeps the rumor count |M| of the paper's §2 general gossip
// setting: T_G(|M|) interpolates between broadcast (|M| = 1) and the
// classical all-to-all (|M| = k). Since T_G(|M|) is the maximum of |M|
// dependent broadcast-like completions, it should grow only sub-
// logarithmically with |M| — all within the Θ̃(n/√k) class of Corollary 2.
func expX05() Experiment {
	e := Experiment{
		ID:    "X5",
		Title: "Gossip vs rumor count (§2 general setting)",
		Claim: "T_G(|M|) grows from T_B to the all-to-all time by at most a small (log-like) factor — every |M| obeys the same Θ̃(n/√k) bound",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(64)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		const k = 64
		if n < 2*k {
			return nil, fmt.Errorf("X5: grid too small at scale %.2f", p.scale())
		}
		reps := p.reps(8)
		rumorCounts := []int{1, 2, 4, 16, 64}

		table := tableio.NewTable(
			fmt.Sprintf("Gossip time vs rumor count, n=%d, k=%d, r=0, %d reps", n, k, reps),
			"|M|", "median T_G", "mean", "T_G(|M|)/T_G(1)")
		var pts []pointSummary
		var base float64
		for pi, m := range rumorCounts {
			m := m
			pt, err := sweepPoint(p.Seed, pi, reps, float64(m), func(seed uint64) (float64, error) {
				r, err := core.RunPartialGossip(core.Config{
					Grid: g, K: k, Radius: 0, Seed: seed,
				}, m)
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("X5: gossip |M|=%d hit cap", m)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			if pi == 0 {
				base = pt.Sum.Median
			}
			table.AddRow(m, pt.Sum.Median, pt.Sum.Mean, pt.Sum.Median/math.Max(1, base))
			pts = append(pts, pt)
			p.logf("X5: |M|=%d median T_G=%.0f", m, pt.Sum.Median)
		}
		res.Tables = append(res.Tables, table)

		verdict := VerdictPass
		// Monotone (non-decreasing medians, modest noise tolerance) and a
		// bounded total growth: |M| from 1 to k should cost well under the
		// polylog band.
		growth := pts[len(pts)-1].Sum.Median / math.Max(1, base)
		res.AddFinding("T_G(|M|=k)/T_G(|M|=1) = %.2f — the all-to-all problem costs a small factor over broadcast", growth)
		if growth > math.Log2(float64(n)) {
			verdict = worstVerdict(verdict, VerdictWarn)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Sum.Median < pts[i-1].Sum.Median*0.7 {
				verdict = worstVerdict(verdict, VerdictWarn)
				res.AddFinding("non-monotone dip at |M|=%d (noise beyond tolerance)", int(pts[i].X))
			}
		}
		res.Verdict = verdict

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("X5: T_G vs rumor count (n=%d, k=%d)", n, k),
			XLabel: "|M|", YLabel: "median T_G", LogX: true,
			Series: []plot.Series{medianSeries("median T_G", pts)},
		})
		return res, nil
	}
	return e
}
