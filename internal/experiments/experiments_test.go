package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	t.Parallel()
	all := All()
	if len(all) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete: %+v", e.ID, e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestExtensionsRegistry(t *testing.T) {
	t.Parallel()
	exts := Extensions()
	if len(exts) != 8 {
		t.Fatalf("got %d extensions, want 8", len(exts))
	}
	for _, e := range exts {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("extension %q incomplete", e.ID)
		}
		got, ok := Get(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("Get(%q) failed", e.ID)
		}
	}
	// Extension IDs resolve case-insensitively and zero-padded.
	for _, id := range []string{"x1", "X01", " x1 "} {
		if e, ok := Get(id); !ok || e.ID != "X1" {
			t.Errorf("Get(%q) = (%q, %v)", id, e.ID, ok)
		}
	}
	if _, ok := Get("X9"); ok {
		t.Error("Get(X9) should fail")
	}
	if _, ok := Get(""); ok {
		t.Error("Get(empty) should fail")
	}
}

func TestGetNormalisesIDs(t *testing.T) {
	t.Parallel()
	for _, id := range []string{"E1", "e1", " E1 ", "1", "E01", "e01"} {
		e, ok := Get(id)
		if !ok || e.ID != "E1" {
			t.Errorf("Get(%q) = (%q, %v), want E1", id, e.ID, ok)
		}
	}
	if _, ok := Get("E99"); ok {
		t.Error("Get(E99) should fail")
	}
	if _, ok := Get("bogus"); ok {
		t.Error("Get(bogus) should fail")
	}
}

func TestIDsSorted(t *testing.T) {
	t.Parallel()
	ids := IDs()
	if len(ids) != 17 {
		t.Fatalf("IDs() returned %d", len(ids))
	}
	if ids[0] != "E1" || ids[9] != "E10" || ids[16] != "E17" {
		t.Errorf("IDs order wrong: %v", ids)
	}
}

func TestVerdictString(t *testing.T) {
	t.Parallel()
	cases := map[Verdict]string{
		VerdictPass: "PASS", VerdictWarn: "WARN", VerdictFail: "FAIL",
		Verdict(0): "Verdict(0)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestWorstVerdict(t *testing.T) {
	t.Parallel()
	if got := worstVerdict(VerdictPass, VerdictWarn); got != VerdictWarn {
		t.Errorf("worst(Pass, Warn) = %v", got)
	}
	if got := worstVerdict(VerdictFail, VerdictWarn); got != VerdictFail {
		t.Errorf("worst(Fail, Warn) = %v", got)
	}
	if got := worstVerdict(VerdictPass, VerdictPass); got != VerdictPass {
		t.Errorf("worst(Pass, Pass) = %v", got)
	}
}

func TestExponentVerdict(t *testing.T) {
	t.Parallel()
	if got := exponentVerdict(-0.55, -0.5, 0.2, 0.35); got != VerdictPass {
		t.Errorf("in pass band: %v", got)
	}
	if got := exponentVerdict(-0.8, -0.5, 0.2, 0.35); got != VerdictWarn {
		t.Errorf("in warn band: %v", got)
	}
	if got := exponentVerdict(-1.2, -0.5, 0.2, 0.35); got != VerdictFail {
		t.Errorf("in fail band: %v", got)
	}
}

func TestParamsDefaults(t *testing.T) {
	t.Parallel()
	var p Params
	if p.scale() != 1 {
		t.Errorf("zero Scale -> %v, want 1", p.scale())
	}
	if (Params{Scale: 1.5}).scale() != 1 {
		t.Errorf("over-1 Scale not clamped")
	}
	if (Params{Scale: 0.25}).scale() != 0.25 {
		t.Errorf("valid Scale altered")
	}
	if p.reps(8) != 8 {
		t.Errorf("default reps not used")
	}
	if (Params{Reps: 3}).reps(8) != 3 {
		t.Errorf("explicit reps ignored")
	}
	if p.reps(0) != 2 {
		t.Errorf("reps floor not applied")
	}
	if got := (Params{Scale: 0.01}).scaledSide(128); got < 16 {
		t.Errorf("scaledSide below floor: %d", got)
	}
	if got := (Params{}).scaledSide(128); got != 128 {
		t.Errorf("full-scale side = %d", got)
	}
	if got := (Params{Scale: 0.5}).scaledCount(100, 10); got != 50 {
		t.Errorf("scaledCount = %d, want 50", got)
	}
	if got := (Params{Scale: 0.01}).scaledCount(100, 10); got != 10 {
		t.Errorf("scaledCount floor = %d, want 10", got)
	}
}

func TestRepSeedProperties(t *testing.T) {
	t.Parallel()
	// Deterministic and (practically) collision-free across nearby inputs.
	seen := map[uint64]bool{}
	for point := 0; point < 20; point++ {
		for rep := 0; rep < 20; rep++ {
			s1 := repSeed(42, point, rep)
			s2 := repSeed(42, point, rep)
			if s1 != s2 {
				t.Fatal("repSeed not deterministic")
			}
			if seen[s1] {
				t.Fatalf("seed collision at point=%d rep=%d", point, rep)
			}
			seen[s1] = true
		}
	}
	if repSeed(1, 0, 0) == repSeed(2, 0, 0) {
		t.Error("different masters give same seed")
	}
}

func TestRunRepsOrderAndErrors(t *testing.T) {
	t.Parallel()
	vals, err := runReps(7, 0, 8, func(seed uint64) (float64, error) {
		return float64(seed % 1000), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 8 {
		t.Fatalf("got %d values", len(vals))
	}
	// Replicate order must match the deterministic seeds.
	for rep, v := range vals {
		if want := float64(repSeed(7, 0, rep) % 1000); v != want {
			t.Errorf("rep %d out of order: %v != %v", rep, v, want)
		}
	}
	if _, err := runReps(7, 0, 0, func(uint64) (float64, error) { return 0, nil }); err == nil {
		t.Error("reps=0 accepted")
	}
}

func TestSummarizePointPanicsOnEmpty(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("summarizePoint(empty) did not panic")
		}
	}()
	summarizePoint(1, nil)
}

func TestResultRendering(t *testing.T) {
	t.Parallel()
	e := Experiment{ID: "EX", Title: "demo", Claim: "c"}
	r := e.newResult()
	r.AddFinding("found %d things", 3)
	text := r.Text()
	for _, want := range []string{"EX", "demo", "PASS", "found 3 things"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	var md strings.Builder
	if err := r.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "### EX — demo") {
		t.Errorf("markdown header missing:\n%s", md.String())
	}
}

// Smoke-run the cheap experiments end to end at tiny scale. The expensive
// sweeps (E1-E3, E10) are exercised by the repository benchmarks instead.
func TestSmokeCheapExperiments(t *testing.T) {
	t.Parallel()
	for _, id := range []string{"E4", "E6", "E7", "E16", "E17"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			res, err := e.Run(Params{Scale: 0.1, Reps: 2, Seed: 5})
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if len(res.Tables) == 0 {
				t.Errorf("%s produced no tables", id)
			}
			if res.Verdict < VerdictPass || res.Verdict > VerdictFail {
				t.Errorf("%s verdict unset", id)
			}
			if res.ID != id {
				t.Errorf("result ID %q != %q", res.ID, id)
			}
		})
	}
}

func TestSmokeE12SmallScale(t *testing.T) {
	t.Parallel()
	e, _ := Get("E12")
	res, err := e.Run(Params{Scale: 0.15, Reps: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || len(res.Figures) == 0 {
		t.Error("E12 output incomplete")
	}
}

// TestSmokeFullSuite runs every experiment (paper suite + extensions) end
// to end at a tiny scale. Verdicts are not asserted — small grids are
// noisy — but every runner must produce tables without error.
func TestSmokeFullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite smoke skipped in -short mode")
	}
	t.Parallel()
	suite := append(All(), Extensions()...)
	for _, e := range suite {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(Params{Scale: 0.08, Reps: 2, Seed: 31})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Tables) == 0 {
				t.Errorf("%s produced no tables", e.ID)
			}
			for _, table := range res.Tables {
				if len(table.Rows) == 0 {
					t.Errorf("%s produced an empty table %q", e.ID, table.Title)
				}
			}
			if res.Verdict < VerdictPass || res.Verdict > VerdictFail {
				t.Errorf("%s verdict out of range: %d", e.ID, int(res.Verdict))
			}
			// Text and Markdown rendering must not fail or be empty.
			if res.Text() == "" {
				t.Errorf("%s empty text rendering", e.ID)
			}
		})
	}
}
