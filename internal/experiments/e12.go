package experiments

import (
	"fmt"

	"mobilenet/internal/coverage"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE12 validates the paper's Section 4 cover-time bound for k independent
// random walks: O((n log^2 n)/k + n log n). The measured cover time must
// stay under the envelope, decay like 1/k while the first term dominates,
// and flatten toward the n log n floor for large k.
func expE12() Experiment {
	e := Experiment{
		ID:    "E12",
		Title: "Cover time of k random walks (§4)",
		Claim: "Cover time = O((n log²n)/k + n log n): ~1/k decay then an n log n floor",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(48)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(8)
		ks := []int{1, 2, 4, 8, 16, 32, 64}

		table := tableio.NewTable(
			fmt.Sprintf("Cover time, n=%d, %d reps", n, reps),
			"k", "median cover time", "mean", "bound (n ln²n)/k + n ln n", "measured/bound")
		var pts []pointSummary
		bound := plot.Series{Name: "paper bound"}
		verdict := VerdictPass
		for pi, k := range ks {
			k := k
			pt, err := sweepPoint(p.Seed, pi, reps, float64(k), func(seed uint64) (float64, error) {
				r, err := coverage.Run(coverage.Config{Grid: g, Walkers: k, Seed: seed})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("E12: cover k=%d hit cap", k)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			env := theory.CoverTimeBound(n, k)
			table.AddRow(k, pt.Sum.Median, pt.Sum.Mean, env, pt.Sum.Median/env)
			pts = append(pts, pt)
			bound.X = append(bound.X, float64(k))
			bound.Y = append(bound.Y, env)
			if pt.Sum.Median > env {
				// The paper's bound has an unspecified constant; exceeding
				// the constant-1 envelope is only a warning.
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			p.logf("E12: k=%d cover=%.0f bound=%.0f", k, pt.Sum.Median, env)
		}
		res.Tables = append(res.Tables, table)

		// Decay exponent over the small-k regime where the 1/k term rules.
		var smallK []pointSummary
		for _, pt := range pts {
			if pt.X <= 16 {
				smallK = append(smallK, pt)
			}
		}
		fit, err := fitMedians(smallK)
		if err != nil {
			return nil, err
		}
		res.AddFinding("small-k power-law fit of cover time vs k: %s (1/k term predicts ≈ -1 with log-floor flattening)", fit)
		// The floor flattens the fit; accept anything meaningfully steeper
		// than -0.4 and not steeper than -1.3.
		if fit.Alpha > -0.4 || fit.Alpha < -1.3 {
			verdict = worstVerdict(verdict, VerdictWarn)
		}
		res.Verdict = verdict

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E12: cover time vs k (n=%d)", n),
			XLabel: "k", YLabel: "cover time", LogX: true, LogY: true,
			Series: []plot.Series{medianSeries("measured", pts), bound},
		})
		return res, nil
	}
	return e
}
