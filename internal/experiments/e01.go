package experiments

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/scenario"
	"mobilenet/internal/sweep"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE01 validates the k-dependence of Theorems 1 and 2: at fixed n and
// r = 0, the broadcast time decays as k^(-1/2) up to polylog factors. The
// measurement is one declarative SweepSpec — an agents axis over a fixed
// broadcast base — with the sweep layer's built-in log-log fit as the
// scaling-law check.
func expE01() Experiment {
	e := Experiment{
		ID:    "E1",
		Title: "Broadcast time vs k (r=0)",
		Claim: "T_B = Θ̃(n/√k): at fixed n the log-log slope of T_B vs k is ≈ -0.5 (Theorems 1-2)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(128)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(12)
		var ks []int
		for _, k := range []int{8, 16, 32, 64, 128, 256, 512} {
			if 2*k <= n { // stay in the paper's sparse regime n >= 2k
				ks = append(ks, k)
			}
		}

		sp := sweep.Spec{
			Label: fmt.Sprintf("E1: T_B vs k (n=%d, r=0)", n),
			Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: n, Agents: ks[0],
				Radius: 0, Seed: p.Seed, Source: 0, Reps: reps},
			Axes: []sweep.Axis{{Field: "agents", Values: intValues(ks)}},
			Fit:  "agents",
		}
		swres, pts, err := runScenarioSweep(p, "E1", sp, true)
		if err != nil {
			return nil, err
		}

		table := tableio.NewTable(
			fmt.Sprintf("Median T_B, n=%d, r=0, %d reps", n, reps),
			"k", "median T_B", "mean", "stddev", "n/sqrt(k)", "T_B/(n/sqrt(k))")
		envelope := plot.Series{Name: "n/sqrt(k)"}
		for i, pt := range pts {
			k := ks[i]
			scale := theory.BroadcastScale(n, k)
			table.AddRow(k, pt.Sum.Median, pt.Sum.Mean, pt.Sum.StdDev, scale, pt.Sum.Median/scale)
			envelope.X = append(envelope.X, float64(k))
			envelope.Y = append(envelope.Y, scale)
			p.logf("E1: k=%d median T_B=%.0f (%d reps)", k, pt.Sum.Median, reps)
		}
		res.Tables = append(res.Tables, table)

		fit := swres.Fit
		res.AddFinding("power-law fit of median T_B vs k: %s", fit)
		res.AddFinding("paper predicts exponent -0.5 (±polylog drift); Wang et al. [28] would predict ≈ -1")
		res.Verdict = exponentVerdict(fit.Alpha, -0.5, 0.2, 0.35)

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E1: T_B vs k (n=%d, r=0)", n),
			XLabel: "k", YLabel: "T_B", LogX: true, LogY: true,
			Series: []plot.Series{medianSeries("median T_B", pts), envelope},
		})
		return res, nil
	}
	return e
}
