package experiments

import (
	"fmt"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE01 validates the k-dependence of Theorems 1 and 2: at fixed n and
// r = 0, the broadcast time decays as k^(-1/2) up to polylog factors.
func expE01() Experiment {
	e := Experiment{
		ID:    "E1",
		Title: "Broadcast time vs k (r=0)",
		Claim: "T_B = Θ̃(n/√k): at fixed n the log-log slope of T_B vs k is ≈ -0.5 (Theorems 1-2)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(128)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(12)
		ks := []int{8, 16, 32, 64, 128, 256, 512}

		table := tableio.NewTable(
			fmt.Sprintf("Median T_B, n=%d, r=0, %d reps", n, reps),
			"k", "median T_B", "mean", "stddev", "n/sqrt(k)", "T_B/(n/sqrt(k))")
		var pts []pointSummary
		envelope := plot.Series{Name: "n/sqrt(k)"}
		for pi, k := range ks {
			if 2*k > n {
				continue // stay in the paper's sparse regime n >= 2k
			}
			k := k
			pt, err := sweepPoint(p.Seed, pi, reps, float64(k), func(seed uint64) (float64, error) {
				r, err := core.RunBroadcast(core.Config{
					Grid: g, K: k, Radius: 0, Seed: seed, Source: 0,
				})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("E1: broadcast k=%d seed=%d hit step cap", k, seed)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			scale := theory.BroadcastScale(n, k)
			table.AddRow(k, pt.Sum.Median, pt.Sum.Mean, pt.Sum.StdDev, scale, pt.Sum.Median/scale)
			pts = append(pts, pt)
			envelope.X = append(envelope.X, float64(k))
			envelope.Y = append(envelope.Y, scale)
			p.logf("E1: k=%d median T_B=%.0f (%d reps)", k, pt.Sum.Median, reps)
		}
		res.Tables = append(res.Tables, table)

		fit, err := fitMedians(pts)
		if err != nil {
			return nil, err
		}
		res.AddFinding("power-law fit of median T_B vs k: %s", fit)
		res.AddFinding("paper predicts exponent -0.5 (±polylog drift); Wang et al. [28] would predict ≈ -1")
		res.Verdict = exponentVerdict(fit.Alpha, -0.5, 0.2, 0.35)

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E1: T_B vs k (n=%d, r=0)", n),
			XLabel: "k", YLabel: "T_B", LogX: true, LogY: true,
			Series: []plot.Series{medianSeries("median T_B", pts), envelope},
		})
		return res, nil
	}
	return e
}
