package experiments

import (
	"fmt"

	"mobilenet/internal/plot"
	"mobilenet/internal/stats"
)

// pointSummary couples one sweep coordinate with its replicate statistics.
type pointSummary struct {
	X      float64
	Values []float64
	Sum    stats.Summary
}

// sweepPoint runs one sweep coordinate: reps replicates of fn with
// deterministic seeds, summarised.
func sweepPoint(master uint64, idx, reps int, x float64, fn func(seed uint64) (float64, error)) (pointSummary, error) {
	vals, err := runReps(master, idx, reps, fn)
	if err != nil {
		return pointSummary{}, err
	}
	s, err := stats.Summarize(vals)
	if err != nil {
		return pointSummary{}, err
	}
	return pointSummary{X: x, Values: vals, Sum: s}, nil
}

// summarizePoint wraps precomputed replicate values as a pointSummary. It
// panics on empty input; callers always supply at least one replicate.
func summarizePoint(x float64, vals []float64) pointSummary {
	s, err := stats.Summarize(vals)
	if err != nil {
		panic(fmt.Sprintf("experiments: summarizePoint on empty sample: %v", err))
	}
	return pointSummary{X: x, Values: vals, Sum: s}
}

// fitMedians fits a power law through the (X, median) pairs of a sweep.
func fitMedians(pts []pointSummary) (stats.PowerFit, error) {
	if len(pts) < 2 {
		return stats.PowerFit{}, fmt.Errorf("experiments: need >= 2 sweep points, have %d", len(pts))
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Sum.Median
	}
	return stats.FitPowerLaw(xs, ys)
}

// medianSeries converts sweep points to a plot series of medians.
func medianSeries(name string, pts []pointSummary) plot.Series {
	s := plot.Series{Name: name}
	for _, p := range pts {
		s.X = append(s.X, p.X)
		s.Y = append(s.Y, p.Sum.Median)
	}
	return s
}

// exponentVerdict classifies a fitted exponent against a target with a pass
// band and a fail band (outside the warn band).
func exponentVerdict(alpha, target, passTol, failTol float64) Verdict {
	d := alpha - target
	if d < 0 {
		d = -d
	}
	switch {
	case d <= passTol:
		return VerdictPass
	case d <= failTol:
		return VerdictWarn
	default:
		return VerdictFail
	}
}

// worstVerdict returns the most severe of two verdicts.
func worstVerdict(a, b Verdict) Verdict {
	if b > a {
		return b
	}
	return a
}
