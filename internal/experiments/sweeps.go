package experiments

import (
	"fmt"
	"sync"

	"mobilenet/internal/plot"
	"mobilenet/internal/scenario"
	"mobilenet/internal/stats"
	"mobilenet/internal/sweep"
)

// pointSummary couples one sweep coordinate with its replicate statistics.
type pointSummary struct {
	X      float64
	Values []float64
	Sum    stats.Summary
}

// sweepPoint runs one sweep coordinate: reps replicates of fn with
// deterministic seeds, summarised.
func sweepPoint(master uint64, idx, reps int, x float64, fn func(seed uint64) (float64, error)) (pointSummary, error) {
	vals, err := runReps(master, idx, reps, fn)
	if err != nil {
		return pointSummary{}, err
	}
	s, err := stats.Summarize(vals)
	if err != nil {
		return pointSummary{}, err
	}
	return pointSummary{X: x, Values: vals, Sum: s}, nil
}

// summarizePoint wraps precomputed replicate values as a pointSummary. It
// panics on empty input; callers always supply at least one replicate.
func summarizePoint(x float64, vals []float64) pointSummary {
	s, err := stats.Summarize(vals)
	if err != nil {
		panic(fmt.Sprintf("experiments: summarizePoint on empty sample: %v", err))
	}
	return pointSummary{X: x, Values: vals, Sum: s}
}

// intValues converts an int slice to sweep axis values.
func intValues(vs []int) []any {
	out := make([]any, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

// runScenarioSweep executes a SweepSpec through the sweep subsystem with
// the experiment conventions: progress lines go to Params.Log, and (when
// requireCompleted) a replicate that hits its step cap is an error rather
// than a data point. It returns the sweep result plus each point
// re-summarised as a pointSummary keyed by its first-axis value, the
// shape the fit/figure helpers consume.
func runScenarioSweep(p Params, id string, sp sweep.Spec, requireCompleted bool) (*sweep.Result, []pointSummary, error) {
	// OnPoint fires from the sweep pool's goroutines, but Params.Log is a
	// plain io.Writer with no concurrency contract — serialise the lines.
	var logMu sync.Mutex
	res, err := sweep.Run(sp, sweep.Options{
		RequireCompleted: requireCompleted,
		OnPoint: func(pt sweep.Point, r *scenario.Result) {
			logMu.Lock()
			defer logMu.Unlock()
			p.logf("%s: point %d done (%d reps)", id, pt.Index, len(r.Reps))
		},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", id, err)
	}
	pts := make([]pointSummary, len(res.Points))
	for i, pr := range res.Points {
		x, ok := pr.Values[0].(int64)
		if !ok {
			return nil, nil, fmt.Errorf("%s: sweep point %d has non-numeric first axis value %v", id, i, pr.Values[0])
		}
		pts[i] = summarizePoint(float64(x), sweep.Steps(pr.Result))
	}
	return res, pts, nil
}

// fitMedians fits a power law through the (X, median) pairs of a sweep.
func fitMedians(pts []pointSummary) (stats.PowerFit, error) {
	if len(pts) < 2 {
		return stats.PowerFit{}, fmt.Errorf("experiments: need >= 2 sweep points, have %d", len(pts))
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Sum.Median
	}
	return stats.FitPowerLaw(xs, ys)
}

// medianSeries converts sweep points to a plot series of medians.
func medianSeries(name string, pts []pointSummary) plot.Series {
	s := plot.Series{Name: name}
	for _, p := range pts {
		s.X = append(s.X, p.X)
		s.Y = append(s.Y, p.Sum.Median)
	}
	return s
}

// exponentVerdict classifies a fitted exponent against a target with a pass
// band and a fail band (outside the warn band).
func exponentVerdict(alpha, target, passTol, failTol float64) Verdict {
	d := alpha - target
	if d < 0 {
		d = -d
	}
	switch {
	case d <= passTol:
		return VerdictPass
	case d <= failTol:
		return VerdictWarn
	default:
		return VerdictFail
	}
}

// worstVerdict returns the most severe of two verdicts.
func worstVerdict(a, b Verdict) Verdict {
	if b > a {
		return b
	}
	return a
}
