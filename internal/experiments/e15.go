package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
)

// expE15 probes Lemma 7, the engine of the lower bound: the rightmost
// coordinate of the informed area advances diffusively, not ballistically.
// The paper's literal window gamma²/(144 log n) degenerates below one step
// at laptop scale (see DESIGN.md §2), so the experiment measures the
// maximum frontier advance over windows of W steps for growing W and
// checks that it scales like sqrt(W)·polylog rather than W.
func expE15() Experiment {
	e := Experiment{
		ID:    "E15",
		Title: "Informed-frontier speed (Lemma 7)",
		Claim: "Frontier advance over W steps is O(sqrt(W)·log n), far below the ballistic W — the mechanism behind Theorem 2",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(128)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		const k = 64
		if n < 2*k {
			return nil, fmt.Errorf("E15: grid too small at scale %.2f", p.scale())
		}
		reps := p.reps(6)
		windows := []int{16, 64, 256, 1024}

		// Collect frontier traces from reps broadcast runs.
		traces := make([][]int32, 0, reps)
		for rep := 0; rep < reps; rep++ {
			r, err := core.RunBroadcast(core.Config{
				Grid: g, K: k, Radius: 0,
				Seed: repSeed(p.Seed, 0, rep), Source: 0,
				RecordFrontier: true,
			})
			if err != nil {
				return nil, err
			}
			if len(r.FrontierTrace) == 0 {
				return nil, fmt.Errorf("E15: empty frontier trace")
			}
			traces = append(traces, r.FrontierTrace)
		}

		table := tableio.NewTable(
			fmt.Sprintf("Max frontier advance per window, n=%d, k=%d, %d runs", n, k, reps),
			"window W", "max advance", "advance/W (ballistic=1)", "advance/(sqrt(W)·ln n)")
		speeds := plot.Series{Name: "max advance / W"}
		diffusive := plot.Series{Name: "max advance / (sqrt(W) ln n)"}
		lnN := math.Log(float64(n))
		verdict := VerdictPass
		var lastBallistic float64
		for _, w := range windows {
			maxAdv := 0
			for _, tr := range traces {
				for start := 0; start+w < len(tr); start += w / 2 {
					adv := int(tr[start+w] - tr[start])
					if adv > maxAdv {
						maxAdv = adv
					}
				}
			}
			ball := float64(maxAdv) / float64(w)
			diff := float64(maxAdv) / (math.Sqrt(float64(w)) * lnN)
			table.AddRow(w, maxAdv, ball, diff)
			speeds.X = append(speeds.X, float64(w))
			speeds.Y = append(speeds.Y, ball)
			diffusive.X = append(diffusive.X, float64(w))
			diffusive.Y = append(diffusive.Y, diff)
			lastBallistic = ball
			p.logf("E15: W=%d max advance=%d (%.3f W)", w, maxAdv, ball)
		}
		res.Tables = append(res.Tables, table)

		// Sub-ballistic verdict: at the largest window the frontier covers
		// well under half the ballistic distance, and the diffusive
		// normalisation stays O(1).
		if lastBallistic > 0.5 {
			verdict = worstVerdict(verdict, VerdictFail)
		} else if lastBallistic > 0.25 {
			verdict = worstVerdict(verdict, VerdictWarn)
		}
		for i := range diffusive.Y {
			if diffusive.Y[i] > 3 {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
		}
		res.Verdict = verdict
		res.AddFinding("frontier speed per step falls as the window grows — diffusive, not ballistic, exactly as Lemma 7 requires")
		res.AddFinding("the paper's literal window gamma²/(144 ln n) < 1 step at this n, k; the sqrt(W) envelope is the scale-appropriate reading (DESIGN.md §2)")

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E15: frontier advance scaling (n=%d, k=%d)", n, k),
			XLabel: "window W", YLabel: "normalised advance", LogX: true,
			Series: []plot.Series{speeds, diffusive},
		})
		return res, nil
	}
	return e
}
