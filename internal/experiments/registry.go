package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// All returns the full experiment suite in canonical order E1..E17.
func All() []Experiment {
	return []Experiment{
		expE01(), expE02(), expE03(), expE04(), expE05(), expE06(),
		expE07(), expE08(), expE09(), expE10(), expE11(), expE12(),
		expE13(), expE14(), expE15(), expE16(), expE17(),
	}
}

// Extensions returns the extension suite X1..X8: studies beyond the
// paper's theorems (its §4 future work, design ablations, and quantitative
// complements). They are not part of All() — the paper suite stays the
// paper suite — and are run via cmd/experiments -run X<n> or
// cmd/paperrepro (which includes them unless -ext=false).
func Extensions() []Experiment {
	return []Experiment{expX01(), expX02(), expX03(), expX04(), expX05(), expX06(), expX07(), expX08()}
}

// Get returns the experiment with the given ID (case-insensitive, with or
// without the leading "E"/"X"; bare numbers resolve to the paper suite).
func Get(id string) (Experiment, bool) {
	norm := strings.ToUpper(strings.TrimSpace(id))
	if norm == "" {
		return Experiment{}, false
	}
	if norm[0] != 'E' && norm[0] != 'X' {
		norm = "E" + norm
	}
	// Strip leading zeros after the prefix so "E01" matches "E1".
	if num, err := strconv.Atoi(norm[1:]); err == nil {
		norm = fmt.Sprintf("%c%d", norm[0], num)
	}
	pool := All()
	if norm[0] == 'X' {
		pool = Extensions()
	}
	for _, e := range pool {
		if e.ID == norm {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted list of experiment identifiers.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	sort.Slice(ids, func(i, j int) bool {
		ni, _ := strconv.Atoi(ids[i][1:])
		nj, _ := strconv.Atoi(ids[j][1:])
		return ni < nj
	})
	return ids
}
