package experiments

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/percolation"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expX06 measures the empirical percolation radius — the 0.5-crossing of
// the giant-component fraction — across densities and grid sizes, and
// checks that it tracks the paper's r_c ≈ sqrt(n/k) with a stable constant.
// This quantifies the threshold that E4 only brackets.
func expX06() Experiment {
	e := Experiment{
		ID:    "X6",
		Title: "Empirical percolation threshold",
		Claim: "The giant-component 0.5-crossing scales as sqrt(n/k): the ratio r̂_c / sqrt(n/k) is a constant across n and k",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		reps := p.reps(6)

		table := tableio.NewTable(
			fmt.Sprintf("Empirical r_c (giant fraction 0.5 crossing), %d reps", reps),
			"n", "k", "sqrt(n/k)", "empirical r_c", "ratio")
		ratios := plot.Series{Name: "empirical r_c / sqrt(n/k)"}
		var minRatio, maxRatio float64
		settings := []struct {
			baseSide int
			k        int
		}{
			{64, 64}, {64, 256}, {64, 1024},
			{96, 256}, {128, 256},
		}
		for pi, s := range settings {
			side := p.scaledSide(s.baseSide)
			g, err := grid.New(side)
			if err != nil {
				return nil, err
			}
			n := g.N()
			k := s.k
			if 2*k > n {
				// Keep the sparse-regime guarantee when scaled down.
				k = n / 2
			}
			rcHat, err := percolation.EstimateRC(g, k, reps, 0.5, repSeed(p.Seed, pi, 0))
			if err != nil {
				return nil, err
			}
			pred := theory.PercolationRadius(n, k)
			ratio := float64(rcHat) / pred
			table.AddRow(n, k, pred, rcHat, ratio)
			ratios.X = append(ratios.X, float64(pi))
			ratios.Y = append(ratios.Y, ratio)
			if pi == 0 || ratio < minRatio {
				minRatio = ratio
			}
			if ratio > maxRatio {
				maxRatio = ratio
			}
			p.logf("X6: n=%d k=%d empirical rc=%d (%.2f sqrt(n/k))", n, k, rcHat, ratio)
		}
		res.Tables = append(res.Tables, table)

		spread := maxRatio / minRatio
		res.AddFinding("ratio r̂_c/sqrt(n/k) spans [%.2f, %.2f] (spread %.2fx) across a 16x density range and a 4x size range", minRatio, maxRatio, spread)
		verdict := VerdictPass
		if spread > 1.6 {
			verdict = VerdictWarn
		}
		if spread > 2.5 {
			verdict = VerdictFail
		}
		res.Verdict = verdict
		res.AddFinding("the sqrt(n/k) scaling of the percolation point — the premise of the paper's regime split — holds with a stable constant")

		res.Figures = append(res.Figures, plot.Figure{
			Title:  "X6: percolation-threshold constant across settings",
			XLabel: "setting index", YLabel: "empirical r_c / sqrt(n/k)",
			Series: []plot.Series{ratios},
		})
		return res, nil
	}
	return e
}
