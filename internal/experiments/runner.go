package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"mobilenet/internal/rng"
)

// repSeed derives the seed for replicate rep of a sweep point from the
// master seed. The derivation is position-based (not draw-based) so results
// are independent of scheduling and of how many other points run; it is
// shared with the simulation service via rng.DeriveSeed.
func repSeed(master uint64, point, rep int) uint64 {
	return rng.DeriveSeed(master, point, rep)
}

// runReps evaluates fn for reps replicates (passing each its deterministic
// seed) with bounded parallelism and returns the per-replicate values in
// replicate order. The first error aborts the collection: on the serial
// path it returns immediately, and on the parallel path a done signal stops
// the dispatch of further replicates and idles the workers (replicates
// already inside fn finish their call; fn takes no cancellation handle).
// When several replicates fail, the error of the lowest-numbered failed
// replicate is returned, matching the serial path's choice.
func runReps(master uint64, point, reps int, fn func(seed uint64) (float64, error)) ([]float64, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiments: reps must be positive, got %d", reps)
	}
	out := make([]float64, reps)
	errs := make([]error, reps)
	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	if workers <= 1 {
		for rep := 0; rep < reps; rep++ {
			v, err := fn(repSeed(master, point, rep))
			if err != nil {
				return nil, err
			}
			out[rep] = v
		}
		return out, nil
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
		done = make(chan struct{})
		once sync.Once
	)
	fail := func() { once.Do(func() { close(done) }) }
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range next {
				out[rep], errs[rep] = fn(repSeed(master, point, rep))
				if errs[rep] != nil {
					fail()
					return
				}
			}
		}()
	}
dispatch:
	for rep := 0; rep < reps; rep++ {
		select {
		case next <- rep:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
