package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// repSeed derives the seed for replicate rep of a sweep point from the
// master seed. The derivation is position-based (not draw-based) so results
// are independent of scheduling and of how many other points run.
func repSeed(master uint64, point, rep int) uint64 {
	x := master ^ (uint64(point)+1)*0x9e3779b97f4a7c15 ^ (uint64(rep)+1)*0xbf58476d1ce4e5b9
	// One splitmix64 finalisation round to decorrelate nearby inputs.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// runReps evaluates fn for reps replicates (passing each its deterministic
// seed) with bounded parallelism and returns the per-replicate values in
// replicate order. The first error aborts the collection.
func runReps(master uint64, point, reps int, fn func(seed uint64) (float64, error)) ([]float64, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiments: reps must be positive, got %d", reps)
	}
	out := make([]float64, reps)
	errs := make([]error, reps)
	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	if workers <= 1 {
		for rep := 0; rep < reps; rep++ {
			v, err := fn(repSeed(master, point, rep))
			if err != nil {
				return nil, err
			}
			out[rep] = v
		}
		return out, nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range next {
				out[rep], errs[rep] = fn(repSeed(master, point, rep))
			}
		}()
	}
	for rep := 0; rep < reps; rep++ {
		next <- rep
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
