package experiments

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/tableio"
	"mobilenet/internal/visibility"
	"mobilenet/internal/walk"
)

// expX03 is the laziness ablation: why does the paper use the 1/5-lazy
// kernel instead of the plain simple random walk? On the bipartite grid a
// non-lazy walk preserves coordinate parity, so two walks whose initial
// separation is odd can NEVER meet on a node — r=0 dissemination deadlocks
// for roughly half the agent pairs. The experiment measures (a) pairwise
// meeting frequency by initial-parity class and (b) full-broadcast success
// rates, for both kernels.
func expX03() Experiment {
	e := Experiment{
		ID:    "X3",
		Title: "Laziness ablation: parity deadlock of the simple walk",
		Claim: "Non-lazy walks never meet from odd initial separation (broadcast deadlocks at r=0); the paper's lazy kernel is load-bearing",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		trials := p.scaledCount(2000, 300)
		const d = 8        // even separation
		const dOdd = d + 1 // odd separation
		const horizon = 4096

		// Part (a): pairwise meeting frequency by kernel and parity.
		type cell struct {
			kernel string
			sep    int
			stepFn func(*grid.Grid, grid.Point, *rng.Source) grid.Point
		}
		cells := []cell{
			{"lazy", d, walk.Step},
			{"lazy", dOdd, walk.Step},
			{"simple", d, walk.SimpleStep},
			{"simple", dOdd, walk.SimpleStep},
		}
		meetTable := tableio.NewTable(
			fmt.Sprintf("Pairwise meeting frequency within %d steps, %d trials", horizon, trials),
			"kernel", "initial separation", "parity", "meet frequency")
		freqs := make([]float64, len(cells))
		for ci, c := range cells {
			c := c
			g := grid.MustNew(6 * dOdd)
			vals, err := runReps(p.Seed, ci, trials, func(seed uint64) (float64, error) {
				src := rng.New(seed)
				ctr := g.Center()
				a := grid.Point{X: ctr.X - int32(c.sep)/2, Y: ctr.Y}
				b := grid.Point{X: a.X + int32(c.sep), Y: ctr.Y}
				for t := 0; t < horizon; t++ {
					a = c.stepFn(g, a, src)
					b = c.stepFn(g, b, src)
					if a == b {
						return 1, nil
					}
				}
				return 0, nil
			})
			if err != nil {
				return nil, err
			}
			sum := 0.0
			for _, v := range vals {
				sum += v
			}
			freqs[ci] = sum / float64(len(vals))
			parity := "even"
			if c.sep%2 == 1 {
				parity = "odd"
			}
			meetTable.AddRow(c.kernel, c.sep, parity, freqs[ci])
			p.logf("X3: %s sep=%d meet freq %.4f", c.kernel, c.sep, freqs[ci])
		}
		res.Tables = append(res.Tables, meetTable)

		verdict := VerdictPass
		// Lazy kernel: both parities meet at comparable, substantial rates
		// (the lazy walk diffuses at 4/5 speed, so the absolute frequency
		// sits below the simple walk's — only positivity and parity
		// balance matter here). Simple kernel: odd parity never meets.
		if freqs[0] < 0.1 || freqs[1] < 0.1 {
			verdict = worstVerdict(verdict, VerdictWarn)
		}
		if ratio := freqs[0] / (freqs[1] + 1e-12); ratio < 0.5 || ratio > 2 {
			verdict = worstVerdict(verdict, VerdictWarn)
		}
		if freqs[3] != 0 {
			verdict = worstVerdict(verdict, VerdictFail)
			res.AddFinding("UNEXPECTED: simple walks met from odd separation %d times", int(freqs[3]*float64(trials)))
		} else {
			res.AddFinding("simple walks from odd separation met in 0/%d trials — the parity obstruction is exact", trials)
		}

		// Part (b): broadcast success at r=0 under both kernels.
		side := p.scaledSide(32)
		g := grid.MustNew(side)
		const k = 12
		breps := p.reps(8)
		stepCap := 200 * side * side
		bTable := tableio.NewTable(
			fmt.Sprintf("Broadcast completion at r=0, side=%d, k=%d, cap=%d steps, %d reps", side, k, stepCap, breps),
			"kernel", "completed runs", "median informed at end")
		for bi, kernel := range []struct {
			name string
			fn   func(*grid.Grid, grid.Point, *rng.Source) grid.Point
		}{{"lazy", walk.Step}, {"simple", walk.SimpleStep}} {
			kernel := kernel
			completed := 0
			informedCounts := make([]float64, breps)
			for rep := 0; rep < breps; rep++ {
				inf, done := simpleKernelBroadcast(g, k, kernel.fn, repSeed(p.Seed, 50+bi, rep), stepCap)
				informedCounts[rep] = float64(inf)
				if done {
					completed++
				}
			}
			pt := summarizePoint(float64(bi), informedCounts)
			bTable.AddRow(kernel.name, fmt.Sprintf("%d/%d", completed, breps), pt.Sum.Median)
			p.logf("X3: kernel=%s completed %d/%d", kernel.name, completed, breps)
			if kernel.name == "lazy" && completed < breps {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			if kernel.name == "simple" && completed == breps {
				// All k agents sharing one parity class has probability
				// 2^-(k-1); universal completion would contradict the
				// obstruction.
				verdict = worstVerdict(verdict, VerdictWarn)
				res.AddFinding("unexpected: simple-kernel broadcast completed in every replicate")
			}
		}
		res.Tables = append(res.Tables, bTable)
		res.Verdict = verdict
		res.AddFinding("the 1/5-lazy kernel is not a convenience: it is what makes r=0 dissemination possible at all")
		return res, nil
	}
	return e
}

// simpleKernelBroadcast runs a minimal r=0 broadcast with an arbitrary step
// kernel and returns the informed count and completion flag.
func simpleKernelBroadcast(g *grid.Grid, k int, stepFn func(*grid.Grid, grid.Point, *rng.Source) grid.Point, seed uint64, stepCap int) (informedCount int, done bool) {
	src := rng.New(seed)
	pos := make([]grid.Point, k)
	for i := range pos {
		pos[i] = grid.Point{X: int32(src.Intn(g.Side())), Y: int32(src.Intn(g.Side()))}
	}
	informed := make([]bool, k)
	informed[0] = true
	n := 1
	lab := visibility.NewLabeller(k)
	exchange := func() {
		if n == k {
			return
		}
		labels, count := lab.Components(pos, 0)
		compInf := make([]bool, count)
		for i, inf := range informed {
			if inf {
				compInf[labels[i]] = true
			}
		}
		for i := range informed {
			if !informed[i] && compInf[labels[i]] {
				informed[i] = true
				n++
			}
		}
	}
	exchange()
	for t := 0; t < stepCap && n < k; t++ {
		for i := range pos {
			pos[i] = stepFn(g, pos[i], src)
		}
		exchange()
	}
	return n, n == k
}
