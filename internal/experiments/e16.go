package experiments

import (
	"fmt"

	"mobilenet/internal/agent"
	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/stats"
	"mobilenet/internal/tableio"
)

// expE16 validates the model premise stated in the paper's §2: the lazy
// walk kernel (move to each neighbour w.p. 1/5) keeps the uniform placement
// stationary, so "at any time step the agents are placed uniformly and
// independently at random". A large population is marched forward and node
// occupancy is chi-square tested at several times.
func expE16() Experiment {
	e := Experiment{
		ID:    "E16",
		Title: "Stationarity of the lazy walk (§2)",
		Claim: "Uniform occupancy is preserved at every time step under the 1/5-lazy kernel",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(32)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		k := p.scaledCount(16*n, 4*n) // many agents per node for test power
		pop, err := agent.New(g, k, rng.New(repSeed(p.Seed, 0, 0)))
		if err != nil {
			return nil, err
		}

		// Bucket occupancy into super-cells of 4x4 nodes to keep expected
		// counts per bucket comfortably above chi-square validity limits.
		cell := 4
		if side < 8 {
			cell = 1
		}
		tess := grid.NewTessellation(g, cell)
		occupancy := func() []int {
			counts := make([]int, tess.Cells())
			for i := 0; i < pop.K(); i++ {
				counts[tess.CellOf(pop.Position(i))]++
			}
			return counts
		}

		checkpoints := []int{0, 64, 512, 2048}
		table := tableio.NewTable(
			fmt.Sprintf("Chi-square occupancy test, n=%d, k=%d agents, %d buckets", n, k, tess.Cells()),
			"t", "chi-square", "df", "rejected at alpha=0.01")
		verdict := VerdictPass
		for _, t := range checkpoints {
			for pop.Time() < t {
				pop.Step()
			}
			counts := occupancy()
			stat, rejected, err := stats.ChiSquareUniform(counts, 0.01)
			if err != nil {
				return nil, err
			}
			table.AddRow(t, stat, len(counts)-1, rejected)
			if rejected {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			p.logf("E16: t=%d chi2=%.1f rejected=%v", t, stat, rejected)
		}
		res.Tables = append(res.Tables, table)
		res.Verdict = verdict
		res.AddFinding("occupancy indistinguishable from uniform at every checkpoint — the paper's stationarity premise holds exactly")
		return res, nil
	}
	return e
}
