package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
)

// expE09 validates Corollary 2: the gossip time (every agent learns every
// one of the k initial rumors) obeys the same Θ̃(n/√k) bound as broadcast.
// Broadcast and gossip runs share seeds, so the ratio T_G/T_B isolates the
// multi-rumor overhead, which must stay polylogarithmic.
func expE09() Experiment {
	e := Experiment{
		ID:    "E9",
		Title: "Gossip vs broadcast time (Corollary 2)",
		Claim: "T_G = Θ̃(n/√k): gossip stays within polylog factors of broadcast at the same (n, k)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(64)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(8)
		ks := []int{16, 32, 64, 128}

		table := tableio.NewTable(
			fmt.Sprintf("Gossip vs broadcast, n=%d, r=0, %d reps", n, reps),
			"k", "median T_B", "median T_G", "T_G/T_B")
		var gossipPts, bcastPts []pointSummary
		verdict := VerdictPass
		polylogBand := math.Log2(float64(n)) * math.Log2(float64(n))
		for pi, k := range ks {
			if 2*k > n {
				continue
			}
			k := k
			bc, err := sweepPoint(p.Seed, pi, reps, float64(k), func(seed uint64) (float64, error) {
				r, err := core.RunBroadcast(core.Config{Grid: g, K: k, Radius: 0, Seed: seed, Source: 0})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("E9: broadcast k=%d hit cap", k)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			go_, err := sweepPoint(p.Seed, pi, reps, float64(k), func(seed uint64) (float64, error) {
				r, err := core.RunGossip(core.Config{Grid: g, K: k, Radius: 0, Seed: seed})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("E9: gossip k=%d hit cap", k)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			ratio := go_.Sum.Median / math.Max(1, bc.Sum.Median)
			table.AddRow(k, bc.Sum.Median, go_.Sum.Median, ratio)
			bcastPts = append(bcastPts, bc)
			gossipPts = append(gossipPts, go_)
			if ratio > polylogBand {
				verdict = worstVerdict(verdict, VerdictFail)
			} else if ratio > polylogBand/4 {
				verdict = worstVerdict(verdict, VerdictWarn)
			}
			p.logf("E9: k=%d T_B=%.0f T_G=%.0f ratio=%.2f", k, bc.Sum.Median, go_.Sum.Median, ratio)
		}
		res.Tables = append(res.Tables, table)

		gfit, err := fitMedians(gossipPts)
		if err != nil {
			return nil, err
		}
		res.AddFinding("gossip power-law fit vs k: %s (broadcast target -0.5)", gfit)
		verdict = worstVerdict(verdict, exponentVerdict(gfit.Alpha, -0.5, 0.25, 0.4))
		res.Verdict = verdict

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E9: T_G and T_B vs k (n=%d)", n),
			XLabel: "k", YLabel: "time", LogX: true, LogY: true,
			Series: []plot.Series{
				medianSeries("median T_G", gossipPts),
				medianSeries("median T_B", bcastPts),
			},
		})
		return res, nil
	}
	return e
}
