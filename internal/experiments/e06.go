package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/plot"
	"mobilenet/internal/scenario"
	"mobilenet/internal/sweep"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE06 validates Lemma 3: the probability that two walks starting at
// distance d meet within d^2 steps at a node of the shared lens D is at
// least c3/log d — equivalently, p(d)·max(1, ln d) is bounded below by a
// positive constant. The measurement rides the sweep subsystem via the
// scenario layer's "meeting" engine: one replicate is one trial, a
// distance is one sweep point (radius axis), and p(d) is the completed
// fraction of a point's replicates.
func expE06() Experiment {
	e := Experiment{
		ID:    "E6",
		Title: "Two-walk meeting probability (Lemma 3)",
		Claim: "P[meet in D within d²] ≥ c3/max(1, log d): the product p(d)·log d stays bounded below by a constant",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		trials := p.scaledCount(3000, 300)
		ds := []int{2, 4, 8, 16, 32, 64}

		sp := sweep.Spec{
			Label: "E6: meeting probability vs d",
			Base: scenario.Spec{Engine: scenario.EngineMeeting, Nodes: 64, Agents: 2,
				Radius: ds[0], Seed: p.Seed, Reps: trials},
			Axes: []sweep.Axis{{Field: "radius", Values: intValues(ds)}},
		}
		// Not meeting within the horizon is a legitimate trial outcome,
		// so capped replicates must NOT be errors here.
		swres, _, err := runScenarioSweep(p, "E6", sp, false)
		if err != nil {
			return nil, err
		}

		table := tableio.NewTable(
			fmt.Sprintf("Meeting probability, %d trials per distance", trials),
			"d", "T=d^2", "p(d)", "p(d)*max(1,ln d)", "bound c3/max(1,ln d)")
		product := plot.Series{Name: "p(d)·max(1,ln d)"}
		minProduct := math.Inf(1)
		for i, pr := range swres.Points {
			d := ds[i]
			met := 0
			for _, rep := range pr.Result.Reps {
				if rep.Completed {
					met++
				}
			}
			prob := float64(met) / float64(len(pr.Result.Reps))
			logD := math.Max(1, math.Log(float64(d)))
			prod := prob * logD
			bound := theory.MeetingLowerBound(d, theory.DefaultC3)
			table.AddRow(d, d*d, prob, prod, bound)
			product.X = append(product.X, float64(d))
			product.Y = append(product.Y, prod)
			if prod < minProduct {
				minProduct = prod
			}
			p.logf("E6: d=%d p=%.4f p*logd=%.4f", d, prob, prod)
		}
		res.Tables = append(res.Tables, table)

		res.AddFinding("min over d of p(d)·max(1, ln d) = %.4f (calibrated c3 = %.2f)", minProduct, theory.DefaultC3)
		switch {
		case minProduct >= theory.DefaultC3:
			res.Verdict = VerdictPass
		case minProduct >= theory.DefaultC3/2:
			res.Verdict = VerdictWarn
		default:
			res.Verdict = VerdictFail
		}

		res.Figures = append(res.Figures, plot.Figure{
			Title:  "E6: meeting probability scaled by log d",
			XLabel: "initial distance d", YLabel: "p(d)·max(1,ln d)", LogX: true,
			Series: []plot.Series{product},
		})
		return res, nil
	}
	return e
}
