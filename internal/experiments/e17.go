package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE17 validates the geometric premise of Theorem 2: with probability at
// least 1 - 2^-(k-1), some agent starts at Manhattan distance >= sqrt(n)/2
// from the rumor source.
func expE17() Experiment {
	e := Experiment{
		ID:    "E17",
		Title: "Far-agent probability (Theorem 2 premise)",
		Claim: "P[max distance from source ≥ √n/2] ≥ 1 - 2^-(k-1) under uniform placement",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(64)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		threshold := math.Sqrt(float64(n)) / 2
		trials := p.scaledCount(3000, 400)
		ks := []int{2, 3, 4, 6, 8, 16}

		table := tableio.NewTable(
			fmt.Sprintf("Far-agent frequency, n=%d, threshold=%.1f, %d trials", n, threshold, trials),
			"k", "empirical P[far agent]", "bound 1-2^-(k-1)", "margin")
		measured := plot.Series{Name: "measured"}
		bound := plot.Series{Name: "paper bound"}
		verdict := VerdictPass
		for pi, k := range ks {
			k := k
			vals, err := runReps(p.Seed, pi, trials, func(seed uint64) (float64, error) {
				d, err := core.InitialSpread(core.Config{Grid: g, K: k, Seed: seed, Source: 0})
				if err != nil {
					return 0, err
				}
				if float64(d) >= threshold {
					return 1, nil
				}
				return 0, nil
			})
			if err != nil {
				return nil, err
			}
			hits := 0.0
			for _, v := range vals {
				hits += v
			}
			freq := hits / float64(len(vals))
			b := theory.FarAgentProbability(k)
			sigma := math.Sqrt(b*(1-b)/float64(trials)) + 1e-9
			table.AddRow(k, freq, b, freq-b)
			measured.X = append(measured.X, float64(k))
			measured.Y = append(measured.Y, freq)
			bound.X = append(bound.X, float64(k))
			bound.Y = append(bound.Y, b)
			if freq < b-4*sigma-0.01 {
				verdict = worstVerdict(verdict, VerdictFail)
			}
			p.logf("E17: k=%d freq=%.4f bound=%.4f", k, freq, b)
		}
		res.Tables = append(res.Tables, table)
		res.Verdict = verdict
		res.AddFinding("the empirical far-agent frequency dominates the 1-2^-(k-1) bound at every k")

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E17: far-agent probability (n=%d)", n),
			XLabel: "k", YLabel: "P[far agent]",
			Series: []plot.Series{measured, bound},
		})
		return res, nil
	}
	return e
}
