package experiments

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/scenario"
	"mobilenet/internal/sweep"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE02 validates the n-dependence of Theorems 1 and 2: at fixed k and
// r = 0 the broadcast time grows linearly in n (slope ≈ 1 in log-log).
// The measurement is a SweepSpec with a nodes axis over a fixed broadcast
// base, fitted by the sweep layer.
func expE02() Experiment {
	e := Experiment{
		ID:    "E2",
		Title: "Broadcast time vs n (r=0)",
		Claim: "T_B = Θ̃(n/√k): at fixed k the log-log slope of T_B vs n is ≈ 1 (Theorems 1-2)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		const k = 64
		reps := p.reps(10)
		var ns []int
		seen := map[int]bool{}
		for _, baseSide := range []int{32, 48, 64, 96, 128, 192} {
			g, err := grid.New(p.scaledSide(baseSide))
			if err != nil {
				return nil, err
			}
			// Scaling can collapse neighbouring sides onto one grid; keep
			// each realised n once, and stay in the sparse regime n >= 2k.
			if n := g.N(); n >= 2*k && !seen[n] {
				seen[n] = true
				ns = append(ns, n)
			}
		}
		if len(ns) < 2 {
			return nil, fmt.Errorf("E2: not enough sweep points at scale %.2f", p.scale())
		}

		sp := sweep.Spec{
			Label: fmt.Sprintf("E2: T_B vs n (k=%d, r=0)", k),
			Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: ns[0], Agents: k,
				Radius: 0, Seed: p.Seed, Source: 0, Reps: reps},
			Axes: []sweep.Axis{{Field: "nodes", Values: intValues(ns)}},
			Fit:  "nodes",
		}
		swres, pts, err := runScenarioSweep(p, "E2", sp, true)
		if err != nil {
			return nil, err
		}

		table := tableio.NewTable(
			fmt.Sprintf("Median T_B, k=%d, r=0, %d reps", k, reps),
			"side", "n", "median T_B", "mean", "n/sqrt(k)", "T_B/(n/sqrt(k))")
		envelope := plot.Series{Name: "n/sqrt(k)"}
		for i, pt := range pts {
			n := ns[i]
			g, err := grid.FromNodes(n)
			if err != nil {
				return nil, err
			}
			scale := theory.BroadcastScale(n, k)
			table.AddRow(g.Side(), n, pt.Sum.Median, pt.Sum.Mean, scale, pt.Sum.Median/scale)
			envelope.X = append(envelope.X, float64(n))
			envelope.Y = append(envelope.Y, scale)
			p.logf("E2: n=%d median T_B=%.0f", n, pt.Sum.Median)
		}
		res.Tables = append(res.Tables, table)

		fit := swres.Fit
		res.AddFinding("power-law fit of median T_B vs n: %s", fit)
		res.AddFinding("paper predicts exponent 1.0 (±polylog drift)")
		res.Verdict = exponentVerdict(fit.Alpha, 1.0, 0.2, 0.35)

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E2: T_B vs n (k=%d, r=0)", k),
			XLabel: "n", YLabel: "T_B", LogX: true, LogY: true,
			Series: []plot.Series{medianSeries("median T_B", pts), envelope},
		})
		return res, nil
	}
	return e
}
