package experiments

import (
	"fmt"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE02 validates the n-dependence of Theorems 1 and 2: at fixed k and
// r = 0 the broadcast time grows linearly in n (slope ≈ 1 in log-log).
func expE02() Experiment {
	e := Experiment{
		ID:    "E2",
		Title: "Broadcast time vs n (r=0)",
		Claim: "T_B = Θ̃(n/√k): at fixed k the log-log slope of T_B vs n is ≈ 1 (Theorems 1-2)",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		const k = 64
		reps := p.reps(10)
		baseSides := []int{32, 48, 64, 96, 128, 192}
		table := tableio.NewTable(
			fmt.Sprintf("Median T_B, k=%d, r=0, %d reps", k, reps),
			"side", "n", "median T_B", "mean", "n/sqrt(k)", "T_B/(n/sqrt(k))")
		var pts []pointSummary
		envelope := plot.Series{Name: "n/sqrt(k)"}
		for pi, baseSide := range baseSides {
			side := p.scaledSide(baseSide)
			g, err := grid.New(side)
			if err != nil {
				return nil, err
			}
			n := g.N()
			if n < 2*k {
				continue
			}
			pt, err := sweepPoint(p.Seed, pi, reps, float64(n), func(seed uint64) (float64, error) {
				r, err := core.RunBroadcast(core.Config{
					Grid: g, K: k, Radius: 0, Seed: seed, Source: 0,
				})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("E2: broadcast n=%d seed=%d hit step cap", n, seed)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			scale := theory.BroadcastScale(n, k)
			table.AddRow(side, n, pt.Sum.Median, pt.Sum.Mean, scale, pt.Sum.Median/scale)
			pts = append(pts, pt)
			envelope.X = append(envelope.X, float64(n))
			envelope.Y = append(envelope.Y, scale)
			p.logf("E2: n=%d median T_B=%.0f", n, pt.Sum.Median)
		}
		if len(pts) < 2 {
			return nil, fmt.Errorf("E2: not enough sweep points at scale %.2f", p.scale())
		}
		res.Tables = append(res.Tables, table)

		fit, err := fitMedians(pts)
		if err != nil {
			return nil, err
		}
		res.AddFinding("power-law fit of median T_B vs n: %s", fit)
		res.AddFinding("paper predicts exponent 1.0 (±polylog drift)")
		res.Verdict = exponentVerdict(fit.Alpha, 1.0, 0.2, 0.35)

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E2: T_B vs n (k=%d, r=0)", k),
			XLabel: "n", YLabel: "T_B", LogX: true, LogY: true,
			Series: []plot.Series{medianSeries("median T_B", pts), envelope},
		})
		return res, nil
	}
	return e
}
