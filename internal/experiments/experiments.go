// Package experiments defines the canonical validation suite E1-E17 that
// plays the role of the paper's evaluation section (the paper itself is
// pure theory, so every experiment here validates one theorem, lemma or
// corollary at finite size — see DESIGN.md §2 and §5 for the mapping).
//
// Each experiment produces tables (the "rows the paper would report"),
// optional figures, prose findings, and a verdict comparing the measured
// shape against the theoretical prediction.
package experiments

import (
	"fmt"
	"io"
	"math"
)

// Verdict classifies how the measurement relates to the paper's claim.
type Verdict int

// Verdict values. Ordered: Pass < Warn < Fail.
const (
	// VerdictPass means the measured shape matches the claim.
	VerdictPass Verdict = iota + 1
	// VerdictWarn means the measurement is consistent but with caveats
	// (e.g. finite-size drift beyond the nominal band).
	VerdictWarn
	// VerdictFail means the measurement contradicts the claim.
	VerdictFail
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "PASS"
	case VerdictWarn:
		return "WARN"
	case VerdictFail:
		return "FAIL"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Params tunes an experiment run.
type Params struct {
	// Reps is the number of Monte-Carlo replicates per sweep point;
	// 0 selects the experiment's default.
	Reps int
	// Seed is the master seed; every replicate derives its own seed
	// deterministically from it. Zero is a valid seed.
	Seed uint64
	// Scale in (0, 1] shrinks problem sizes for quick runs (benchmarks use
	// small scales); 0 selects full scale 1.0.
	Scale float64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (p Params) scale() float64 {
	if p.Scale <= 0 || p.Scale > 1 {
		return 1
	}
	return p.Scale
}

func (p Params) reps(def int) int {
	if p.Reps > 0 {
		return p.Reps
	}
	if def < 2 {
		def = 2
	}
	return def
}

func (p Params) logf(format string, args ...any) {
	if p.Log != nil {
		fmt.Fprintf(p.Log, format+"\n", args...)
	}
}

// scaledSide shrinks a grid side by sqrt(scale) so the node count scales
// linearly with Params.Scale, clamped to a workable minimum.
func (p Params) scaledSide(base int) int {
	s := p.scale()
	if s >= 1 {
		return base
	}
	side := int(float64(base) * math.Sqrt(s))
	if side < 16 {
		side = 16
	}
	return side
}

// scaledCount shrinks an integer count (trials, steps) linearly with scale,
// clamped below.
func (p Params) scaledCount(base, min int) int {
	v := int(float64(base) * p.scale())
	if v < min {
		v = min
	}
	return v
}
