package experiments

import (
	"fmt"
	"io"
	"strings"

	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
)

// Result is the output of one experiment run.
type Result struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Title is a short human-readable name.
	Title string
	// Claim restates the paper claim under test.
	Claim string
	// Tables holds the numeric results (at least one).
	Tables []*tableio.Table
	// Figures holds optional chart descriptions.
	Figures []plot.Figure
	// Findings holds prose observations (fit exponents, ratios, etc.).
	Findings []string
	// Verdict summarises agreement with the claim.
	Verdict Verdict
}

// AddFinding appends a formatted finding line.
func (r *Result) AddFinding(format string, args ...any) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

// WriteText renders the full result in terminal form, including ASCII
// figures.
func (r *Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s [%s]\nClaim: %s\n\n",
		r.ID, r.Title, r.Verdict, r.Claim); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.WriteText(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, f := range r.Figures {
		if _, err := io.WriteString(w, f.ASCII(64, 16)); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, finding := range r.Findings {
		if _, err := fmt.Fprintf(w, "- %s\n", finding); err != nil {
			return err
		}
	}
	return nil
}

// Text renders the result as a string.
func (r *Result) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

// WriteMarkdown renders the result as a Markdown section (figures are
// referenced by file name, not embedded; the caller writes SVGs).
func (r *Result) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n**Verdict: %s.** %s\n\n",
		r.ID, r.Title, r.Verdict, r.Claim); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.WriteMarkdown(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, finding := range r.Findings {
		if _, err := fmt.Fprintf(w, "- %s\n", finding); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	// ID is the canonical identifier ("E1" .. "E17").
	ID string
	// Title is a short name for listings.
	Title string
	// Claim restates the paper claim under test.
	Claim string
	// Run executes the experiment.
	Run func(Params) (*Result, error)
}

// newResult seeds a Result with the experiment's metadata.
func (e Experiment) newResult() *Result {
	return &Result{ID: e.ID, Title: e.Title, Claim: e.Claim, Verdict: VerdictPass}
}
