package experiments

import (
	"fmt"

	"mobilenet/internal/core"
	"mobilenet/internal/grid"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE14 settles the disagreement the paper calls out: Wang et al. [28]
// claimed an infection time of Θ((n log n log k)/k) — a 1/k decay — while
// the paper proves Θ̃(n/√k). The experiment fits the measured k-exponent
// with a confidence interval and checks which prediction survives.
func expE14() Experiment {
	e := Experiment{
		ID:    "E14",
		Title: "Refutation of the Wang et al. [28] claim",
		Claim: "Measured T_B decays like k^-0.5, not k^-1: the fitted exponent's CI excludes -1 and brackets -0.5",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		side := p.scaledSide(64)
		g, err := grid.New(side)
		if err != nil {
			return nil, err
		}
		n := g.N()
		reps := p.reps(12)
		ks := []int{8, 16, 32, 64, 128, 256}

		table := tableio.NewTable(
			fmt.Sprintf("Measured vs predicted broadcast time, n=%d, %d reps", n, reps),
			"k", "median T_B", "paper n/sqrt(k)", "Wang (n ln n ln k)/k",
			"measured/paper", "measured/Wang")
		var pts []pointSummary
		paperSeries := plot.Series{Name: "paper n/sqrt(k)"}
		wangSeries := plot.Series{Name: "Wang claim"}
		for pi, k := range ks {
			if 2*k > n {
				continue
			}
			k := k
			pt, err := sweepPoint(p.Seed, pi, reps, float64(k), func(seed uint64) (float64, error) {
				r, err := core.RunBroadcast(core.Config{Grid: g, K: k, Radius: 0, Seed: seed, Source: 0})
				if err != nil {
					return 0, err
				}
				if !r.Completed {
					return 0, fmt.Errorf("E14: broadcast k=%d hit cap", k)
				}
				return float64(r.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			paper := theory.BroadcastScale(n, k)
			wang := theory.WangInfectionClaim(n, k)
			wangRatio := 0.0
			if wang > 0 {
				wangRatio = pt.Sum.Median / wang
			}
			table.AddRow(k, pt.Sum.Median, paper, wang, pt.Sum.Median/paper, wangRatio)
			pts = append(pts, pt)
			paperSeries.X = append(paperSeries.X, float64(k))
			paperSeries.Y = append(paperSeries.Y, paper)
			wangSeries.X = append(wangSeries.X, float64(k))
			wangSeries.Y = append(wangSeries.Y, wang)
			p.logf("E14: k=%d median=%.0f paper=%.0f wang=%.0f", k, pt.Sum.Median, paper, wang)
		}
		res.Tables = append(res.Tables, table)

		fit, err := fitMedians(pts)
		if err != nil {
			return nil, err
		}
		ciLo := fit.Alpha - 2*fit.AlphaErr
		ciHi := fit.Alpha + 2*fit.AlphaErr
		res.AddFinding("fitted exponent: %.3f, 95%% CI [%.3f, %.3f]", fit.Alpha, ciLo, ciHi)
		excludesWang := ciLo > -1 || ciHi < -1
		bracketsPaper := ciLo <= -0.5+0.25 && ciHi >= -0.5-0.25
		res.AddFinding("CI excludes Wang's -1: %v; CI consistent with paper's -0.5 (±0.25 polylog drift): %v",
			excludesWang, bracketsPaper)
		switch {
		case excludesWang && bracketsPaper:
			res.Verdict = VerdictPass
		case excludesWang:
			res.Verdict = VerdictWarn
		default:
			res.Verdict = VerdictFail
		}
		res.AddFinding("the measured/Wang ratio grows with k (the claimed bound decays too fast), confirming the paper's refutation")

		res.Figures = append(res.Figures, plot.Figure{
			Title:  fmt.Sprintf("E14: measured T_B vs both predictions (n=%d)", n),
			XLabel: "k", YLabel: "T_B", LogX: true, LogY: true,
			Series: []plot.Series{medianSeries("measured", pts), paperSeries, wangSeries},
		})
		return res, nil
	}
	return e
}
