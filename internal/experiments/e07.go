package experiments

import (
	"fmt"
	"math"

	"mobilenet/internal/meeting"
	"mobilenet/internal/plot"
	"mobilenet/internal/tableio"
	"mobilenet/internal/theory"
)

// expE07 validates Lemma 1: a walk visits a node at distance d within d^2
// steps with probability at least c1/max(1, log d).
func expE07() Experiment {
	e := Experiment{
		ID:    "E7",
		Title: "Hitting probability (Lemma 1)",
		Claim: "P[hit node at distance d within d²] ≥ c1/max(1, log d): p(d)·log d bounded below",
	}
	e.Run = func(p Params) (*Result, error) {
		res := e.newResult()
		trials := p.scaledCount(3000, 300)
		ds := []int{2, 4, 8, 16, 32, 64}

		table := tableio.NewTable(
			fmt.Sprintf("Hitting probability, %d trials per distance", trials),
			"d", "T=d^2", "p(d)", "p(d)*max(1,ln d)", "bound c1/max(1,ln d)")
		product := plot.Series{Name: "p(d)·max(1,ln d)"}
		minProduct := math.Inf(1)
		for pi, d := range ds {
			prob, err := meeting.HittingProbability(meeting.Trial{
				Distance: d,
				Trials:   trials,
				Seed:     repSeed(p.Seed, 100+pi, 0),
			})
			if err != nil {
				return nil, err
			}
			logD := math.Max(1, math.Log(float64(d)))
			prod := prob * logD
			bound := theory.HittingLowerBound(d, theory.DefaultC1)
			table.AddRow(d, d*d, prob, prod, bound)
			product.X = append(product.X, float64(d))
			product.Y = append(product.Y, prod)
			if prod < minProduct {
				minProduct = prod
			}
			p.logf("E7: d=%d p=%.4f p*logd=%.4f", d, prob, prod)
		}
		res.Tables = append(res.Tables, table)

		res.AddFinding("min over d of p(d)·max(1, ln d) = %.4f (calibrated c1 = %.2f)", minProduct, theory.DefaultC1)
		switch {
		case minProduct >= theory.DefaultC1:
			res.Verdict = VerdictPass
		case minProduct >= theory.DefaultC1/2:
			res.Verdict = VerdictWarn
		default:
			res.Verdict = VerdictFail
		}

		res.Figures = append(res.Figures, plot.Figure{
			Title:  "E7: hitting probability scaled by log d",
			XLabel: "distance d", YLabel: "p(d)·max(1,ln d)", LogX: true,
			Series: []plot.Series{product},
		})
		return res, nil
	}
	return e
}
