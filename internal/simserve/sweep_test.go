package simserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobilenet/internal/scenario"
	"mobilenet/internal/sweep"
)

func contextWithTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}

func testSweepSpec() sweep.Spec {
	return sweep.Spec{
		Label: "k x r grid",
		Base:  scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 21, Reps: 2},
		Axes: []sweep.Axis{
			{Field: "agents", Values: []any{4, 8}},
			{Field: "radius", Values: []any{0, 1}},
		},
	}
}

func postSweep(t *testing.T, ts *httptest.Server, sp sweep.Spec) (SweepTicket, int) {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ticket SweepTicket
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&ticket); err != nil {
			t.Fatal(err)
		}
	}
	return ticket, resp.StatusCode
}

func pollSweep(t *testing.T, ts *httptest.Server, id string) SweepView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v SweepView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusDone || v.Status == StatusFailed {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish in time", id)
	return SweepView{}
}

// TestSweepEndToEndOverHTTP drives the acceptance criterion: a sweep run
// over POST /v1/sweeps produces per-point results byte-identical to both
// the library sweep path and direct scenario runs, and resubmitting the
// sweep is served point by point from the result cache.
func TestSweepEndToEndOverHTTP(t *testing.T) {
	t.Parallel()
	_, ts := testServer(t, Config{Workers: 4})
	sp := testSweepSpec()

	ticket, code := postSweep(t, ts, sp)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if ticket.Points != 4 || ticket.SweepID == "" || ticket.Hash == "" {
		t.Fatalf("ticket %+v", ticket)
	}
	wantHash, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ticket.Hash != wantHash {
		t.Errorf("ticket hash %s, want %s", ticket.Hash, wantHash)
	}

	view := pollSweep(t, ts, ticket.SweepID)
	if view.Status != StatusDone {
		t.Fatalf("sweep failed: %s", view.Error)
	}
	if view.PointsDone != 4 || len(view.Points) != 4 {
		t.Fatalf("progress %+v", view)
	}

	// The service's sweep result must match the library's byte for byte.
	libRes, err := sweep.Run(sp, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	libBytes, err := json.Marshal(libRes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(view.Result, libBytes) {
		t.Errorf("service sweep result diverges from library:\n%s\nvs\n%s", view.Result, libBytes)
	}

	// Each per-point payload must match a direct scenario run byte for
	// byte, and be fetchable under the point's content hash.
	var decoded sweep.Result
	if err := json.Unmarshal(view.Result, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, p := range decoded.Points {
		direct, err := scenario.Run(p.Spec)
		if err != nil {
			t.Fatal(err)
		}
		directBytes, err := json.Marshal(direct)
		if err != nil {
			t.Fatal(err)
		}
		pointBytes, err := json.Marshal(p.Result)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pointBytes, directBytes) {
			t.Errorf("point %d result diverges from direct scenario run", p.Index)
		}
		cached, code := getBody(t, ts.URL+"/v1/results/"+p.Hash)
		if code != http.StatusOK {
			t.Fatalf("point %d result not fetchable: %d", p.Index, code)
		}
		if !bytes.Equal(bytes.TrimSpace(cached), directBytes) {
			t.Errorf("point %d /v1/results payload diverges", p.Index)
		}
	}

	// Resubmission: every point is answered from the result cache.
	ticket2, code := postSweep(t, ts, sp)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit returned %d", code)
	}
	view2 := pollSweep(t, ts, ticket2.SweepID)
	if view2.Status != StatusDone {
		t.Fatalf("resubmitted sweep failed: %s", view2.Error)
	}
	if view2.PointsCached != 4 {
		t.Errorf("resubmission served %d of 4 points from cache", view2.PointsCached)
	}
	for _, p := range view2.Points {
		if !p.Cached || p.Status != StatusDone {
			t.Errorf("point %d not served from cache: %+v", p.Index, p)
		}
	}
	if !bytes.Equal(view2.Result, view.Result) {
		t.Error("cached resubmission produced different sweep result bytes")
	}
}

// TestSweepOverlapDedup pins point-level dedup across different sweeps:
// a second sweep sharing half its points with a finished one only runs
// the new half.
func TestSweepOverlapDedup(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 4})
	first := sweep.Spec{
		Base: scenario.Spec{Engine: scenario.EngineCoverage, Nodes: 64, Agents: 2, Seed: 5},
		Axes: []sweep.Axis{{Field: "agents", Values: []any{2, 4}}},
	}
	ticket, _ := postSweep(t, ts, first)
	if v := pollSweep(t, ts, ticket.SweepID); v.Status != StatusDone {
		t.Fatalf("first sweep failed: %s", v.Error)
	}
	second := first
	second.Axes = []sweep.Axis{{Field: "agents", Values: []any{2, 4, 8, 16}}}
	ticket2, _ := postSweep(t, ts, second)
	v := pollSweep(t, ts, ticket2.SweepID)
	if v.Status != StatusDone {
		t.Fatalf("second sweep failed: %s", v.Error)
	}
	if v.PointsCached != 2 {
		t.Errorf("overlapping sweep served %d points from cache, want 2", v.PointsCached)
	}
	if s.sweepPointsCached.Load() != 2 {
		t.Errorf("sweep_points_cached counter = %d", s.sweepPointsCached.Load())
	}
}

// TestSweepDuplicatePointsShareOneSubmission pins in-sweep dedup: points
// that canonicalise identically are submitted once.
func TestSweepDuplicatePointsShareOneSubmission(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 2})
	sp := sweep.Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 9},
		Mode: sweep.ModeZip,
		// Rumors is irrelevant to broadcast, so both points are the same
		// canonical scenario.
		Axes: []sweep.Axis{{Field: "rumors", Values: []any{0, 1}}},
	}
	ticket, _ := postSweep(t, ts, sp)
	v := pollSweep(t, ts, ticket.SweepID)
	if v.Status != StatusDone {
		t.Fatalf("sweep failed: %s", v.Error)
	}
	if got := s.cacheMisses.Load(); got != 1 {
		t.Errorf("duplicate points caused %d cache misses, want 1", got)
	}
	if v.Points[0].Hash != v.Points[1].Hash {
		t.Error("duplicate points have different hashes")
	}
}

// TestSweepFirstErrorSemantics mirrors the library regression test at the
// service level: an invalid point fails the sweep with the lowest-indexed
// point's error.
func TestSweepFailureSurfacesLowestPoint(t *testing.T) {
	t.Parallel()
	_, ts := testServer(t, Config{Workers: 2, MaxSteps: 500})
	// Points 1+ exceed the server's effective step bound via max_steps.
	sp := sweep.Spec{
		Base: scenario.Spec{Engine: scenario.EngineCoverage, Nodes: 64, Agents: 2, Seed: 5, MaxSteps: 400},
		Axes: []sweep.Axis{{Field: "max_steps", Values: []any{400, 600, 700}}},
	}
	_, code := postSweep(t, ts, sp)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized sweep point accepted with %d", code)
	}
	// Runtime failures (not admission failures) surface through the view:
	// submit a sweep whose later point exceeds the queue structurally.
	_, ts2 := testServer(t, Config{Workers: 1, QueueDepth: 4})
	sp2 := sweep.Spec{
		Base: scenario.Spec{Engine: scenario.EngineCoverage, Nodes: 64, Agents: 2, Seed: 5},
		Axes: []sweep.Axis{{Field: "reps", Values: []any{1, 8, 8, 8}}},
	}
	ticket, code := postSweep(t, ts2, sp2)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	v := pollSweep(t, ts2, ticket.SweepID)
	if v.Status != StatusFailed {
		t.Fatalf("sweep with unservable points finished %s", v.Status)
	}
	// Points 1-3 are identical (8 reps > queue depth 4); the lowest
	// failed index is 1.
	if !strings.Contains(v.Error, "point 1") {
		t.Errorf("sweep error %q does not name the lowest-indexed failed point", v.Error)
	}
	if v.Points[0].Status != StatusDone {
		t.Errorf("healthy point 0 reported %s", v.Points[0].Status)
	}
}

func TestSweepHTTPErrors(t *testing.T) {
	t.Parallel()
	_, ts := testServer(t, Config{Workers: 1, MaxSweepPoints: 4})
	// Malformed body.
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed sweep returned %d", resp.StatusCode)
	}
	// Expansion above the server's point bound.
	sp := sweep.Spec{
		Base: scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 4, Seed: 1},
		Axes: []sweep.Axis{{Field: "seed", From: i64p(0), To: i64p(15), Step: i64p(1)}},
	}
	if _, code := postSweep(t, ts, sp); code != http.StatusBadRequest {
		t.Errorf("oversized sweep returned %d", code)
	}
	// Unknown sweep id.
	if _, code := getBody(t, ts.URL+"/v1/sweeps/sweep-999"); code != http.StatusNotFound {
		t.Errorf("unknown sweep returned %d", code)
	}
}

func i64p(v int64) *int64 { return &v }

func TestSweepMetricsExposed(t *testing.T) {
	t.Parallel()
	_, ts := testServer(t, Config{Workers: 2})
	ticket, _ := postSweep(t, ts, testSweepSpec())
	if v := pollSweep(t, ts, ticket.SweepID); v.Status != StatusDone {
		t.Fatalf("sweep failed: %s", v.Error)
	}
	body, code := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics returned %d", code)
	}
	for _, metric := range []string{
		"mobiserved_sweeps_served_total 1",
		"mobiserved_sweeps_failed_total 0",
		"mobiserved_sweep_points_cached_total",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("metrics missing %q:\n%s", metric, body)
		}
	}
}

// TestSweepShutdown pins that Shutdown drains in-flight sweeps instead of
// leaking their dispatchers, and that new sweeps are rejected after.
func TestSweepShutdownRejectsNewSweeps(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	ticket, code := postSweep(t, ts, testSweepSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The in-flight sweep either completed or failed cleanly — it must
	// not be stuck queued/running.
	v, ok := s.Sweep(ticket.SweepID)
	if !ok {
		t.Fatal("sweep record lost")
	}
	if v.Status != StatusDone && v.Status != StatusFailed {
		t.Errorf("sweep left in state %s after shutdown", v.Status)
	}
	if _, err := s.SubmitSweep(testSweepSpec()); err == nil {
		t.Error("sweep accepted after shutdown")
	}
}
