package simserve

import (
	"net/http"
	"time"

	"mobilenet/internal/chaos"
	"mobilenet/internal/prof"
	"mobilenet/internal/scenario"
	"mobilenet/internal/telemetry"
)

// Request-lifecycle stages recorded into the mobiserved_stage_seconds
// histogram family. The taxonomy follows one submission through the
// service: admission (parse-side validation, canonicalisation, hashing,
// bounds and cache probes), queue wait (task enqueue to worker pickup),
// per-replicate execution (Runner.RunRep), result assembly (Assemble plus
// JSON encoding), and the cache write; sweep expansion/dedup and series
// rendering are the two batch-side stages that happen outside the
// single-run path. Keeping queue wait separate from execution is the
// point of the split: a saturated server shows queue-wait p99 exploding
// while execution stays flat, and no single end-to-end number can tell
// those apart.
const (
	stageAdmission    = "admission"
	stageQueueWait    = "queue_wait"
	stageExecute      = "execute"
	stageAssemble     = "assemble"
	stageCacheWrite   = "cache_write"
	stageSweepExpand  = "sweep_expand"
	stageSeriesRender = "series_render"
)

// httpRoutes are the route labels of the mobiserved_http_request_seconds
// histogram family, in registration (and therefore exposition) order.
var httpRoutes = []string{"run", "jobs", "results", "series", "sweep_submit", "sweeps", "healthz", "metrics", "trace"}

// Load-shedding reasons, the label values of mobiserved_shed_total. Shed
// counters are bumped only at the HTTP layer: a sweep dispatcher's
// internal queue-full retries are flow control, not shed client work.
const (
	shedQueueFull   = "queue_full"
	shedRateLimited = "rate_limited"
)

// initMetrics builds the server's telemetry registry. Registration order
// is exposition order: the original hand-written /metrics families come
// first (byte for byte — names, HELP and TYPE lines pinned by
// TestMetricsGoldenExposition), then the hardening counters (panics
// recovered, cancellations, shed, chaos injections), then the histogram
// families, which materialise lazily, series by series, as
// instrumentation fires. The cache hit rate is derived from the two
// counters at scrape time — the server stores only the counters.
func (s *Server) initMetrics() {
	m := telemetry.NewRegistry()
	s.metrics = m
	m.IntGaugeFunc("mobiserved_queue_depth", "Replicate tasks waiting for a worker.",
		func() int64 { return int64(s.QueueDepth()) })
	m.IntGaugeFunc("mobiserved_workers", "Size of the worker pool.",
		func() int64 { return int64(s.cfg.Workers) })
	s.jobsServed = m.Counter("mobiserved_jobs_served_total", "Jobs completed successfully.")
	s.jobsFailed = m.Counter("mobiserved_jobs_failed_total", "Jobs that ended in an error.")
	s.cacheHits = m.Counter("mobiserved_cache_hits_total", "Submissions answered from the result cache.")
	s.cacheMisses = m.Counter("mobiserved_cache_misses_total", "Submissions that had to run.")
	m.GaugeFunc("mobiserved_cache_hit_rate", "Fraction of submissions answered from cache.",
		func() float64 {
			hits, misses := s.cacheHits.Load(), s.cacheMisses.Load()
			if hits+misses == 0 {
				return 0
			}
			return float64(hits) / float64(hits+misses)
		})
	m.IntGaugeFunc("mobiserved_cache_entries", "Results currently cached.",
		func() int64 { return int64(s.cache.Len()) })
	s.sweepsServed = m.Counter("mobiserved_sweeps_served_total", "Sweeps completed successfully.")
	s.sweepsFailed = m.Counter("mobiserved_sweeps_failed_total", "Sweeps that ended in an error.")
	s.sweepPointsCached = m.Counter("mobiserved_sweep_points_cached_total", "Sweep points answered from the result cache.")
	s.seriesServed = m.Counter("mobiserved_series_served_total", "Observed-series payloads served.")
	s.panicsRecovered = m.Counter("mobiserved_panics_recovered_total",
		"Engine panics caught at the worker's replicate boundary.")
	s.jobsCancelled = m.Counter("mobiserved_jobs_cancelled_total",
		"Jobs stopped before completion (deadline expiry or shutdown).")
	s.shed = make(map[string]*telemetry.Counter)
	for _, reason := range []string{shedQueueFull, shedRateLimited} {
		s.shed[reason] = m.Counter("mobiserved_shed_total",
			"Submissions shed at the HTTP layer by reason.",
			telemetry.Label{Name: "reason", Value: reason})
	}
	// Disk-store families exist only when a spill tier is configured, so
	// the memory-only /metrics body — the one TestMetricsGoldenExposition
	// pins — is untouched. Counters are read from the store's own
	// snapshot: the store already counts its outcomes, and mirroring them
	// through gauge functions keeps one source of truth.
	if st := s.cfg.Store; st != nil {
		m.IntGaugeFunc("mobiserved_store_entries", "Results held in the disk store.",
			func() int64 { return int64(st.Stats().Entries) })
		m.IntGaugeFunc("mobiserved_store_bytes", "Payload bytes held in the disk store.",
			func() int64 { return st.Stats().Bytes })
		m.CounterFunc("mobiserved_store_hits_total", "Reads served from the disk store.",
			func() uint64 { return st.Stats().Hits })
		m.CounterFunc("mobiserved_store_misses_total", "Disk-store probes that found nothing.",
			func() uint64 { return st.Stats().Misses })
		m.CounterFunc("mobiserved_store_evictions_total", "Entries evicted from the disk store for space.",
			func() uint64 { return st.Stats().Evictions })
		m.CounterFunc("mobiserved_store_corrupt_total", "Torn or corrupt disk entries detected and dropped.",
			func() uint64 { return st.Stats().Corrupt })
		m.CounterFunc("mobiserved_store_write_errors_total", "Disk-store commits that failed.",
			func() uint64 { return st.Stats().WriteErrors })
		m.CounterFunc("mobiserved_store_dropped_writes_total", "Spill writes shed because the write-behind queue was full.",
			func() uint64 { return s.cache.droppedWrites.Load() })
	}
	// Chaos-injection counters exist only for the points the injector
	// arms, so a production /metrics body never mentions chaos. The
	// OnFire observer is the injector's single notification seam.
	if s.chaos != nil {
		fired := make(map[string]*telemetry.Counter)
		for _, point := range chaos.Points() {
			if !s.chaos.Active(point) {
				continue
			}
			fired[point] = m.Counter("mobiserved_chaos_injections_total",
				"Chaos faults injected by point.",
				telemetry.Label{Name: "point", Value: point})
		}
		s.chaos.OnFire(func(point string) {
			if c := fired[point]; c != nil {
				c.Add(1)
			}
		})
	}

	const stageHelp = "Request-lifecycle stage latency in seconds."
	s.stages = make(map[string]*telemetry.Histogram)
	for _, stage := range []string{
		stageAdmission, stageQueueWait, stageExecute, stageAssemble,
		stageCacheWrite, stageSweepExpand, stageSeriesRender,
	} {
		s.stages[stage] = m.Histogram("mobiserved_stage_seconds", stageHelp, telemetry.Label{Name: "stage", Value: stage})
	}
	s.httpHists = make(map[string]*telemetry.Histogram)
	for _, route := range httpRoutes {
		s.httpHists[route] = m.Histogram("mobiserved_http_request_seconds",
			"HTTP request latency in seconds by route.", telemetry.Label{Name: "route", Value: route})
	}
	// Step-phase histograms: one series per (engine, phase) pair. The label
	// set is fixed at construction — the engine registry crossed with the
	// prof phase vocabulary — never derived from request content, so its
	// cardinality is bounded by design. Workers feed each replicate's
	// profiled per-phase total here, so the unit is seconds per replicate:
	// compare phases within an engine family to see where step time goes.
	s.phaseHists = make(map[string]map[string]*telemetry.Histogram)
	for _, engine := range scenario.Engines() {
		byPhase := make(map[string]*telemetry.Histogram, int(prof.NumPhases))
		for _, phase := range prof.PhaseNames() {
			byPhase[phase] = m.Histogram("mobiserved_engine_phase_seconds",
				"Per-replicate step-phase wall-clock seconds by engine.",
				telemetry.Label{Name: "engine", Value: engine},
				telemetry.Label{Name: "phase", Value: phase})
		}
		s.phaseHists[engine] = byPhase
	}
}

// recordPhases feeds one replicate's profiled per-phase totals into the
// mobiserved_engine_phase_seconds family. Phases the replicate never
// spent time in are absent from the breakdown and observe nothing, so
// their series stay unmaterialised.
func (s *Server) recordPhases(engine string, b *prof.Breakdown) {
	byPhase := s.phaseHists[engine]
	if b == nil || byPhase == nil {
		return
	}
	for phase, sec := range b.Seconds {
		if h := byPhase[phase]; h != nil {
			h.Record(time.Duration(sec * float64(time.Second)))
		}
	}
}

// Metrics returns the server's telemetry registry so the embedding daemon
// can register process-level gauges (uptime, build info) into the same
// /metrics exposition. Register before serving traffic; the registry's
// write paths are concurrency-safe but registration is construction-time
// API.
func (s *Server) Metrics() *telemetry.Registry {
	return s.metrics
}

// handleMetrics renders the registry in the Prometheus text exposition
// format (hand-rolled kernel: the repo takes no dependencies). The body
// starts with the exact pre-telemetry metric families and appends the
// stage and HTTP latency histograms as their series materialise.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}
